/**
 * @file
 * The late-binding showcase (paper Section 2.1).
 *
 * "In Smalltalk, the quintessential late binding language, it is easy
 * to define a general sort routine — one which will even work for
 * lists of datatypes which are not yet defined."
 *
 * One quicksort routine orders small integers and user-defined Pair
 * objects: the `<` in its inner loop is an abstract instruction whose
 * meaning is resolved per-execution by the ITLB — a primitive
 * comparison for integers, a method call into Pair's `<` for pairs.
 * The compiler never knew, and the sort was compiled exactly once.
 *
 * The workload arrives through the unified engine API: a ProgramSpec
 * in, a RunOutcome out, with the engine's machine left open for
 * statistics inspection.
 */

#include <cstdio>

#include "api/engine.hpp"

using namespace com;

int
main()
{
    api::ComEngine engine;
    api::ProgramSpec program = api::ProgramSpec::workload("sort");

    std::printf("running the polymorphic-sort workload (%zu source "
                "bytes)...\n",
                program.source.size());
    api::RunOutcome r = engine.run(program);
    std::printf("run ok: %s\n", r.ok ? "yes" : "no");
    std::printf("result: %s (2 = both the integer array and the Pair "
                "array came out ordered)\n",
                r.resultText.c_str());

    // The proof of late binding: the same `<` token resolved to more
    // than one method during the run.
    core::Machine &machine = engine.machine();
    std::printf("\nmethod lookups (ITLB backing store): %llu, of "
                "which failures: %llu\n",
                (unsigned long long)machine.methods().lookups(),
                (unsigned long long)machine.methods().failures());
    std::printf("ITLB: %llu hits / %llu misses (%.2f%% hit ratio) — "
                "the late-binding tax the hardware absorbed\n",
                (unsigned long long)machine.itlb().hits(),
                (unsigned long long)machine.itlb().misses(),
                machine.itlb().hitRatio() * 100.0);
    std::printf("calls executed: %llu (every Pair `<` was a method "
                "call; every integer `<` stayed one instruction)\n",
                (unsigned long long)machine.pipeline().calls());
    return 0;
}
