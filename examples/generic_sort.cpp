/**
 * @file
 * The late-binding showcase (paper Section 2.1).
 *
 * "In Smalltalk, the quintessential late binding language, it is easy
 * to define a general sort routine — one which will even work for
 * lists of datatypes which are not yet defined."
 *
 * One quicksort routine orders small integers and user-defined Pair
 * objects: the `<` in its inner loop is an abstract instruction whose
 * meaning is resolved per-execution by the ITLB — a primitive
 * comparison for integers, a method call into Pair's `<` for pairs.
 * The compiler never knew, and the sort was compiled exactly once.
 */

#include <cstdio>

#include "core/machine.hpp"
#include "lang/compiler_com.hpp"
#include "lang/workloads.hpp"

using namespace com;

int
main()
{
    core::Machine machine;
    machine.installStandardLibrary();
    lang::ComCompiler compiler(machine);

    const lang::Workload &w = lang::workload("sort");
    std::printf("compiling the polymorphic-sort workload (%zu source "
                "bytes)...\n",
                w.source.size());
    lang::CompiledProgram p = compiler.compileSource(w.source);
    std::printf("  %zu methods installed, %zu instructions emitted\n",
                p.methodsInstalled, p.instructionsEmitted);

    core::RunResult r =
        machine.call(p.entryVaddr, machine.constants().nilWord(), {});
    std::printf("run: %s\n", r.message.c_str());
    std::printf("result: %s (2 = both the integer array and the Pair "
                "array came out ordered)\n",
                machine.describeWord(machine.lastResult()).c_str());

    // The proof of late binding: the same `<` token resolved to more
    // than one method during the run.
    std::printf("\nmethod lookups (ITLB backing store): %llu, of "
                "which failures: %llu\n",
                (unsigned long long)machine.methods().lookups(),
                (unsigned long long)machine.methods().failures());
    std::printf("ITLB: %llu hits / %llu misses (%.2f%% hit ratio) — "
                "the late-binding tax the hardware absorbed\n",
                (unsigned long long)machine.itlb().hits(),
                (unsigned long long)machine.itlb().misses(),
                machine.itlb().hitRatio() * 100.0);
    std::printf("calls executed: %llu (every Pair `<` was a method "
                "call; every integer `<` stayed one instruction)\n",
                (unsigned long long)machine.pipeline().calls());
    return 0;
}
