/**
 * @file
 * The Fith machine (paper Section 5): run a program, inspect the
 * trace.
 *
 * Fith combines the syntax of Forth with the semantics of Smalltalk:
 * every word dispatches on the class of the top of stack. This example
 * runs either the file named on the command line or a built-in demo
 * through the unified engine API, then prints the stack, the output
 * and the trace statistics that fed the paper's cache experiments.
 *
 * Usage: fith_repl [program.fith]
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "api/engine.hpp"

using namespace com;

namespace {

const char *kDemo = R"(
\ The same selector, three meanings: Int, Float and Atom dispatch.
:: Int   twice 2 * ;
:: Float twice 2.0 * ;
:: Atom  twice dup ;

21 twice .
1.5 twice .
'hello twice . .

\ A recursive definition on integers:
:: Int tri dup 1 <= IF ELSE dup 1 - tri + THEN ;
10 tri .
)";

} // namespace

int
main(int argc, char **argv)
{
    std::string source = kDemo;
    std::string name = "demo";
    if (argc > 1) {
        std::ifstream f(argv[1]);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::ostringstream os;
        os << f.rdbuf();
        source = os.str();
        name = argv[1];
    }

    api::FithEngine engine;
    engine.setTracing(true);
    api::RunOutcome r =
        engine.run(api::ProgramSpec::fith(name, source));

    std::printf("ok: %s, steps: %llu\n", r.ok ? "yes" : "no",
                (unsigned long long)r.operations);
    if (!r.ok)
        std::printf("error: %s\n", r.error.c_str());
    std::printf("output: %s\n", r.output.c_str());

    const fith::FithMachine &fm = engine.machine();
    std::printf("stack depth at end: %zu\n", fm.stack().size());

    std::printf("\ntrace: %zu records (address, opcode, TOS class)\n",
                fm.trace().size());
    std::printf("  distinct (opcode, class) keys: %zu  "
                "(the ITLB working set)\n",
                fm.trace().distinctKeys());
    std::printf("  distinct instruction addresses: %zu  "
                "(the icache working set)\n",
                fm.trace().distinctAddresses());
    std::printf("  abstract dispatches: %llu, method lookups: %llu\n",
                (unsigned long long)fm.dispatches(),
                (unsigned long long)fm.lookups());
    return 0;
}
