/**
 * @file
 * Non-LIFO contexts and XFER (paper Sections 2.3, 3.3, 5).
 *
 * "The contexts in COM support a general control transfer similar to
 * Lampson's XFER instruction. This control transfer supports block
 * contexts in Smalltalk, process switch, and interrupts."
 *
 * Two coroutines ping-pong control with xfer: a producer generates
 * squares, a consumer accumulates them. Their contexts outlive strict
 * stack discipline (non-LIFO), so they are reclaimed by the garbage
 * collector, not by returns — exactly the split the paper's context
 * machinery is designed around. The example prints the context pool's
 * LIFO/GC statistics afterwards.
 */

#include <cstdio>

#include "core/assembler.hpp"
#include "core/machine.hpp"
#include "mem/fp_address.hpp"

using namespace com;

int
main()
{
    core::MachineConfig cfg;
    cfg.contextPoolSize = 64;
    core::Machine m(cfg);
    core::Assembler as(m);

    // The consumer coroutine: accumulates c5 += c6 five times, then
    // halts. Slot 4 holds the producer's context pointer; slots 5/6
    // are the shared accumulator and mailbox (written by the producer
    // via at:put: on the consumer's context object).
    std::uint64_t consumer_code = m.makeMethodObject(as.assemble(R"(
    loop:
        add   c5, c5, c6    ; consume the mailbox value
        add   c7, c7, =1
        lt    c8, c7, =5
        jf    c8, @done
        xfer  c4            ; hand control back to the producer
        jmp   @loop
    done:
        halt
    )"));

    // The producer: computes i*i into the consumer's mailbox, then
    // xfers to it. Slot 4: consumer context pointer. Slot 7: i.
    std::uint64_t producer_code = m.makeMethodObject(as.assemble(R"(
    loop:
        add   c7, c7, =1
        mul   c8, c7, c7
        atput c8, c4, =6    ; store into consumer context slot 6
        xfer  c4            ; transfer to the consumer
        jmp   @loop
    )"));

    // Hand-build the two coroutine contexts (a runtime kernel would do
    // this; the machine only provides the primitives).
    obj::ContextPool &pool = m.contextPool();
    obj::ContextPool::Ctx consumer = pool.allocate();
    obj::ContextPool::Ctx producer = pool.allocate();

    auto set = [&](mem::AbsAddr base, std::uint64_t slot, mem::Word w) {
        m.memory().poke(base + slot, w);
    };
    // Consumer: RIP = start of consumer code, counters zeroed,
    // slot 4 -> producer.
    set(consumer.abs, obj::kCtxRip,
        mem::Word::fromPointer(
            static_cast<std::uint32_t>(consumer_code)));
    set(consumer.abs, 4,
        mem::Word::fromPointer(
            static_cast<std::uint32_t>(producer.vaddr)));
    set(consumer.abs, 5, mem::Word::fromInt(0));
    set(consumer.abs, 7, mem::Word::fromInt(0));

    // Producer: RIP = its code, slot 4 -> consumer.
    set(producer.abs, obj::kCtxRip,
        mem::Word::fromPointer(
            static_cast<std::uint32_t>(producer_code)));
    set(producer.abs, 4,
        mem::Word::fromPointer(
            static_cast<std::uint32_t>(consumer.vaddr)));
    set(producer.abs, 7, mem::Word::fromInt(0));

    // A bootstrap that xfers into the producer.
    std::uint64_t boot_code = m.makeMethodObject(as.assemble(R"(
        xfer  c4
        halt
    )"));
    core::RunResult r =
        m.call(boot_code, m.constants().nilWord(),
               {mem::Word::fromPointer(
                   static_cast<std::uint32_t>(producer.vaddr))});

    // The run ends with the consumer's halt.
    std::printf("run ended: %s (halt is the expected stop)\n",
                r.message.c_str());
    mem::Word acc = m.peekData(consumer.vaddr, 5);
    std::printf("consumer accumulated: %s (1+4+9+16+25 = 55)\n",
                m.describeWord(acc).c_str());

    std::printf("\ncontext pool: %llu allocations, %llu LIFO frees, "
                "%llu GC frees so far\n",
                (unsigned long long)pool.allocations(),
                (unsigned long long)pool.lifoFrees(),
                (unsigned long long)pool.gcFrees());

    // Drop our references and collect: the coroutine contexts are
    // non-LIFO garbage now.
    set(consumer.abs, 4, mem::Word());
    set(producer.abs, 4, mem::Word());
    auto gc = m.collectGarbage();
    std::printf("after GC: %llu contexts reclaimed by the collector "
                "(non-LIFO), %llu heap objects swept\n",
                (unsigned long long)gc.sweptContexts,
                (unsigned long long)gc.sweptObjects);
    return 0;
}
