/**
 * @file
 * The small object problem (paper Section 2.2).
 *
 * An image-processing-flavoured scenario: thousands of tiny geometry
 * objects and a couple of megaword images coexist in one name space.
 * Fixed segmentation must choose between wasting segment numbers and
 * grouping objects (losing protection); floating point addresses give
 * every object its own bounds-checked segment. The example also grows
 * an image past its exponent and shows a stale pointer being repaired
 * by the growth trap.
 */

#include <cstdio>

#include "mem/absolute_space.hpp"
#include "mem/fp_address.hpp"
#include "mem/multics_address.hpp"
#include "mem/segment_table.hpp"
#include "mem/tagged_memory.hpp"
#include "sim/rng.hpp"
#include "sim/strutil.hpp"

using namespace com;

int
main()
{
    // One global absolute space; one team.
    mem::TaggedMemory memory;
    mem::AbsoluteSpace space(0, 34);
    mem::SegmentTable team(mem::kFp32, space, 0);
    sim::Rng rng(2026);

    // 50,000 small geometry objects (points, spans, runs)...
    std::printf("allocating 50,000 small objects (1..16 words)...\n");
    for (int i = 0; i < 50'000; ++i)
        team.allocateObject(rng.skewedSize(16), 100);

    // ...and two 4-megaword images in the same team space.
    std::printf("allocating two 4M-word images...\n");
    std::uint64_t image_a = team.allocateObject(1ull << 22, 101);
    std::uint64_t image_b = team.allocateObject(1ull << 22, 101);
    (void)image_b;

    std::printf("  descriptors live: %zu, absolute words allocated: "
                "%llu M\n",
                team.numDescriptors(),
                (unsigned long long)(space.wordsAllocated() >> 20));
    std::printf("  image A lives at %s\n",
                mem::FpAddress::toString(mem::kFp32, image_a).c_str());

    // Fixed segmentation, for contrast.
    mem::FixedSegAllocator multics(mem::kMultics36, 0);
    for (int i = 0; i < 50'000; ++i)
        multics.allocate(rng.skewedSize(16));
    auto big = multics.allocate(1ull << 22);
    std::printf("\nMULTICS-style 18/18: %llu of 262144 segment numbers "
                "used by the small objects alone; the 4M image needed "
                "%llu segments (split)\n",
                (unsigned long long)multics.segmentsUsed(),
                (unsigned long long)big.segments);

    // Bounds protection: one word past an object's length traps.
    std::uint64_t tiny = team.allocateObject(3, 100);
    mem::XlateResult oob = team.translate(tiny, 3);
    std::printf("\nper-object protection: accessing word 3 of a "
                "3-word object -> %s\n",
                oob.status == mem::XlateStatus::Bounds
                    ? "bounds fault (caught)" : "no fault (!)");

    // Growth: the image doubles; the old pointer becomes an alias.
    std::printf("\ngrowing image A from 4M to 8M words...\n");
    std::uint64_t image_a2 =
        team.growObject(image_a, 1ull << 23, memory);
    std::printf("  new canonical name: %s\n",
                mem::FpAddress::toString(mem::kFp32, image_a2).c_str());

    mem::XlateResult old_ok = team.translate(image_a, 1000);
    std::printf("  old pointer, offset 1000: %s (within the old "
                "exponent's bounds)\n",
                old_ok.ok() ? "still valid" : "fault");

    mem::XlateResult trap = team.translate(image_a, 5ull << 20);
    if (trap.status == mem::XlateStatus::GrowthTrap) {
        std::printf("  old pointer, offset 5M: growth trap; the "
                    "system replaces the pointer with %s and the "
                    "access retries\n",
                    mem::FpAddress::toString(mem::kFp32, trap.newVaddr)
                        .c_str());
    }

    // Capability sharing: a read-only alias for another team.
    mem::SegmentTable other_team(mem::kFp32, space, 1);
    std::uint64_t shared =
        team.shareWith(other_team, image_a2, /*writable=*/false);
    mem::XlateResult write_try =
        other_team.translate(shared, 0, /*want_write=*/true);
    std::printf("\ncapability sharing: team 1 got a read-only name for "
                "image A; its write attempt -> %s\n",
                write_try.status == mem::XlateStatus::ProtFault
                    ? "protection fault (capability enforced)"
                    : "allowed (!)");
    return 0;
}
