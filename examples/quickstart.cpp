/**
 * @file
 * Quickstart: run a small COM assembly program through the unified
 * engine API, read the result and the machine's statistics.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "api/engine.hpp"

using namespace com;

int
main()
{
    // 1. A COM engine wraps a machine with default (paper)
    //    configuration: 512-entry 2-way ITLB, 4096-entry 2-way
    //    instruction cache, 32-block context cache, floating point
    //    addresses — standard library installed.
    api::ComEngine engine;

    // 2. A program is pure data: language + source (+ arguments).
    //    Context slots per Figure 8: c2 = result pointer, c3 =
    //    receiver, c4.. = arguments, then temporaries. This one sums
    //    the squares 1..n, where n arrives as arg2 (c4).
    api::ProgramSpec program = api::ProgramSpec::comAssembly(
        "sum-squares", R"(
        move  c6, =0        ; sum
        move  c7, =1        ; i
    loop:
        mul   c8, c7, c7    ; i*i  (an abstract instruction: the same
                            ;       token would dispatch a method for
                            ;       non-integer operands)
        add   c6, c6, c8
        add   c7, c7, =1
        le    c9, c7, c4
        jt    c9, @loop
        putres.r c2, c6     ; store through the result pointer, return
    )");
    program.args = {mem::Word::fromInt(10)};

    // 3. Run it. The engine owns compile -> install -> execute ->
    //    collect-stats; the outcome carries everything observable.
    api::RunOutcome r = engine.run(program);

    std::printf("finished: %s\n", r.ok ? "yes" : "no");
    std::printf("result:   %s (expected 385)\n", r.resultText.c_str());
    std::printf("instructions: %llu, cycles: %llu, CPI: %.2f\n",
                (unsigned long long)r.operations,
                (unsigned long long)r.cycles,
                engine.machine().pipeline().cpi());
    std::printf("ITLB hit ratio: %.2f%%\n",
                engine.machine().itlb().hitRatio() * 100.0);

    // 4. reset() hands back a like-new machine (bit-identical to a
    //    fresh one) without reconstructing the 64 M-word absolute
    //    space — the mechanism the serving pool (api/session.hpp)
    //    is built on.
    engine.reset();
    std::printf("after reset: %llu cycles on the clock\n",
                (unsigned long long)engine.machine().pipeline().cycles());
    return 0;
}
