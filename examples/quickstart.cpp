/**
 * @file
 * Quickstart: assemble a small COM program, run it, read the result
 * and the machine's statistics.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "core/assembler.hpp"
#include "core/machine.hpp"

using namespace com;

int
main()
{
    // 1. A machine with default (paper) configuration: 512-entry 2-way
    //    ITLB, 4096-entry 2-way instruction cache, 32-block context
    //    cache, floating point addresses.
    core::Machine machine;
    machine.installStandardLibrary();

    // 2. Assemble a method. Context slots per Figure 8: c2 = result
    //    pointer, c3 = receiver, c4.. = arguments, then temporaries.
    //    This one sums the squares 1..n, where n arrives as arg2 (c4).
    core::Assembler as(machine);
    std::uint64_t entry = machine.makeMethodObject(as.assemble(R"(
        move  c6, =0        ; sum
        move  c7, =1        ; i
    loop:
        mul   c8, c7, c7    ; i*i  (an abstract instruction: the same
                            ;       token would dispatch a method for
                            ;       non-integer operands)
        add   c6, c6, c8
        add   c7, c7, =1
        le    c9, c7, c4
        jt    c9, @loop
        putres.r c2, c6     ; store through the result pointer, return
    )"));

    // 3. Call it: receiver nil, one argument.
    core::RunResult r = machine.call(entry, machine.constants().nilWord(),
                                     {mem::Word::fromInt(10)});

    std::printf("finished: %s\n", r.finished ? "yes" : "no");
    std::printf("result:   %s (expected 385)\n",
                machine.describeWord(machine.lastResult()).c_str());
    std::printf("instructions: %llu, cycles: %llu, CPI: %.2f\n",
                (unsigned long long)r.instructions,
                (unsigned long long)r.cycles,
                machine.pipeline().cpi());
    std::printf("ITLB hit ratio: %.2f%%\n",
                machine.itlb().hitRatio() * 100.0);
    return 0;
}
