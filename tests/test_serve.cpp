/**
 * @file
 * The serving layer: EnginePool accounting (checkouts/waits/resets/
 * timeouts/idle under contention and not), tryCheckoutFor timeouts,
 * empty-session fatal()s, and the serve::Scheduler — batch coalescing
 * (same-source requests share ONE session checkout), deadline expiry
 * (an Expired response, never a hang), queue-full admission rejects,
 * checksum verification of every served response, and the metrics
 * module's histogram arithmetic.
 *
 * Scheduler tests construct with autoStart=false, queue a
 * deterministic backlog, then start() — so coalescing assertions do
 * not race the workers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/session.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "sim/logging.hpp"

using namespace com;
using namespace std::chrono_literals;

namespace {

// ---------------------------------------------------------------------
// EnginePool accounting
// ---------------------------------------------------------------------

TEST(EnginePool, AccountingUncontended)
{
    api::EnginePool::Config cfg;
    cfg.comEngines = 2;
    cfg.stackEngines = 1;
    cfg.fithEngines = 0;
    api::EnginePool pool(cfg);

    EXPECT_EQ(pool.capacity(api::EngineKind::Com), 2u);
    EXPECT_EQ(pool.idle(api::EngineKind::Com), 2u);
    EXPECT_EQ(pool.checkouts(), 0u);
    EXPECT_EQ(pool.waits(), 0u);
    EXPECT_EQ(pool.resets(), 0u);
    EXPECT_EQ(pool.timeouts(), 0u);

    {
        api::Session a = pool.checkout(api::EngineKind::Com);
        EXPECT_EQ(pool.idle(api::EngineKind::Com), 1u);
        api::Session b = pool.checkout(api::EngineKind::Com);
        EXPECT_EQ(pool.idle(api::EngineKind::Com), 0u);
        EXPECT_EQ(pool.checkouts(), 2u);
        // Engines were idle both times: no waits.
        EXPECT_EQ(pool.waits(), 0u);
        EXPECT_EQ(pool.resets(), 0u);
    }
    // Both sessions released: two resets, both engines idle again.
    EXPECT_EQ(pool.idle(api::EngineKind::Com), 2u);
    EXPECT_EQ(pool.resets(), 2u);
    EXPECT_EQ(pool.checkouts(), 2u);
    EXPECT_EQ(pool.waits(), 0u);
    EXPECT_EQ(pool.timeouts(), 0u);
    // The stack engine was never touched.
    EXPECT_EQ(pool.idle(api::EngineKind::Stack), 1u);
}

TEST(EnginePool, AccountingContended)
{
    api::EnginePool::Config cfg;
    cfg.comEngines = 1;
    cfg.stackEngines = 0;
    cfg.fithEngines = 0;
    api::EnginePool pool(cfg);

    api::Session held = pool.checkout(api::EngineKind::Com);
    EXPECT_EQ(pool.waits(), 0u);

    std::atomic<bool> got{false};
    std::thread contender([&] {
        api::Session s = pool.checkout(api::EngineKind::Com);
        got.store(true);
    });
    // The contender registers its wait before blocking; release only
    // after the wait is visible so the count is deterministic.
    for (int i = 0; i < 10000 && pool.waits() == 0; ++i)
        std::this_thread::sleep_for(1ms);
    ASSERT_EQ(pool.waits(), 1u);
    EXPECT_FALSE(got.load());

    held.release();
    contender.join();
    EXPECT_TRUE(got.load());
    EXPECT_EQ(pool.checkouts(), 2u);
    EXPECT_EQ(pool.waits(), 1u);
    EXPECT_EQ(pool.resets(), 2u);
    EXPECT_EQ(pool.idle(api::EngineKind::Com), 1u);
}

TEST(EnginePool, TryCheckoutForTimesOutAndRecovers)
{
    api::EnginePool::Config cfg;
    cfg.comEngines = 1;
    cfg.stackEngines = 0;
    cfg.fithEngines = 0;
    api::EnginePool pool(cfg);

    api::Session held = pool.checkout(api::EngineKind::Com);
    api::Session timed_out =
        pool.tryCheckoutFor(api::EngineKind::Com, 5ms);
    EXPECT_FALSE(timed_out);
    EXPECT_EQ(pool.timeouts(), 1u);
    EXPECT_EQ(pool.waits(), 1u);
    EXPECT_EQ(pool.checkouts(), 1u); // the timed-out try is not one

    held.release();
    api::Session ok = pool.tryCheckoutFor(api::EngineKind::Com, 5ms);
    EXPECT_TRUE(static_cast<bool>(ok));
    EXPECT_EQ(pool.checkouts(), 2u);
    EXPECT_EQ(pool.timeouts(), 1u);
}

TEST(EnginePool, EmptySessionFatalsInsteadOfUB)
{
    api::ProgramSpec spec = api::ProgramSpec::workload("fib");
    api::Session empty;
    EXPECT_THROW(empty.run(spec), sim::FatalError);
    EXPECT_THROW(empty.engine(), sim::FatalError);

    api::EnginePool::Config cfg;
    cfg.comEngines = 1;
    api::EnginePool pool(cfg);
    api::Session released = pool.checkout(api::EngineKind::Com);
    released.release();
    EXPECT_THROW(released.run(spec), sim::FatalError);
    EXPECT_THROW(released.engine(), sim::FatalError);

    api::Session moved_from = pool.checkout(api::EngineKind::Com);
    api::Session moved_to = std::move(moved_from);
    EXPECT_THROW(moved_from.run(spec), sim::FatalError);
    EXPECT_TRUE(moved_to.run(spec).matches(spec));
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

serve::Scheduler::Config
comOnlyConfig(std::size_t engines = 1)
{
    serve::Scheduler::Config cfg;
    cfg.shards = 1;
    cfg.workersPerShard = 1;
    cfg.maxBatch = 16;
    cfg.autoStart = false;
    cfg.pool.comEngines = engines;
    cfg.pool.stackEngines = 0;
    cfg.pool.fithEngines = 0;
    return cfg;
}

TEST(ServeScheduler, SameSourceBatchSharesOneCheckout)
{
    serve::Scheduler scheduler(comOnlyConfig());
    api::ProgramSpec spec = api::ProgramSpec::workload("fib");

    constexpr std::size_t kRequests = 8;
    std::vector<std::future<serve::Response>> futures;
    for (std::size_t i = 0; i < kRequests; ++i)
        futures.push_back(
            scheduler.submit(api::EngineKind::Com, spec));
    // Nothing runs before start(): the backlog is deterministic.
    EXPECT_EQ(scheduler.pool(0).checkouts(), 0u);

    scheduler.start();
    for (auto &f : futures) {
        serve::Response r = f.get();
        EXPECT_EQ(r.status, serve::ResponseStatus::Ok);
        EXPECT_TRUE(r.outcome.matches(spec)) << r.error;
        EXPECT_EQ(r.batchSize, kRequests);
    }
    // Join the workers: promises resolve before the end-of-batch
    // checkin, so pool counters are only settled after stop().
    scheduler.stop();
    // The whole batch rode one session checkout (one compile, one
    // reset) — the amortization the scheduler exists for.
    EXPECT_EQ(scheduler.pool(0).checkouts(), 1u);
    EXPECT_EQ(scheduler.pool(0).resets(), 1u);

    serve::Metrics::Snapshot m = scheduler.metricsSnapshot();
    EXPECT_EQ(m.served, kRequests);
    EXPECT_EQ(m.batches, 1u);
    EXPECT_EQ(m.maxBatch, kRequests);
    EXPECT_DOUBLE_EQ(m.meanBatch, static_cast<double>(kRequests));
    EXPECT_EQ(m.latency.count, kRequests);
}

TEST(ServeScheduler, DistinctSourcesFormDistinctBatches)
{
    serve::Scheduler scheduler(comOnlyConfig());
    api::ProgramSpec fib = api::ProgramSpec::workload("fib");
    api::ProgramSpec sieve = api::ProgramSpec::workload("sieve");

    std::vector<std::future<serve::Response>> futures;
    // Interleaved like an open-loop arrival stream would be.
    futures.push_back(scheduler.submit(api::EngineKind::Com, fib));
    futures.push_back(scheduler.submit(api::EngineKind::Com, sieve));
    futures.push_back(scheduler.submit(api::EngineKind::Com, fib));
    futures.push_back(scheduler.submit(api::EngineKind::Com, sieve));
    futures.push_back(scheduler.submit(api::EngineKind::Com, fib));

    scheduler.start();
    for (auto &f : futures)
        EXPECT_EQ(f.get().status, serve::ResponseStatus::Ok);
    scheduler.stop();

    // Two batches — 3x fib coalesced, 2x sieve coalesced — despite
    // the interleaved arrival order.
    EXPECT_EQ(scheduler.pool(0).checkouts(), 2u);
    serve::Metrics::Snapshot m = scheduler.metricsSnapshot();
    EXPECT_EQ(m.batches, 2u);
    EXPECT_EQ(m.maxBatch, 3u);
}

TEST(ServeScheduler, MaxBatchBoundsCoalescing)
{
    serve::Scheduler::Config cfg = comOnlyConfig();
    cfg.maxBatch = 3;
    serve::Scheduler scheduler(cfg);
    api::ProgramSpec spec = api::ProgramSpec::workload("fib");

    std::vector<std::future<serve::Response>> futures;
    for (int i = 0; i < 7; ++i)
        futures.push_back(
            scheduler.submit(api::EngineKind::Com, spec));
    scheduler.start();
    for (auto &f : futures)
        EXPECT_EQ(f.get().status, serve::ResponseStatus::Ok);
    scheduler.stop();

    // 7 requests at batch<=3: 3+3+1 = three checkouts.
    EXPECT_EQ(scheduler.pool(0).checkouts(), 3u);
    serve::Metrics::Snapshot m = scheduler.metricsSnapshot();
    EXPECT_EQ(m.batches, 3u);
    EXPECT_EQ(m.maxBatch, 3u);
}

TEST(ServeScheduler, ExpiredDeadlineReturnsExpiredNotAHang)
{
    serve::Scheduler scheduler(comOnlyConfig());
    api::ProgramSpec spec = api::ProgramSpec::workload("fib");

    // Already expired at submit time; queued behind nothing.
    std::future<serve::Response> dead = scheduler.submit(
        api::EngineKind::Com, spec, serve::Clock::now() - 1ms);
    // A live request after it must still be served.
    std::future<serve::Response> live =
        scheduler.submit(api::EngineKind::Com, spec);

    scheduler.start();
    serve::Response dead_r = dead.get();
    EXPECT_EQ(dead_r.status, serve::ResponseStatus::Expired);
    EXPECT_FALSE(dead_r.error.empty());
    EXPECT_EQ(dead_r.batchSize, 0u); // never reached an engine

    serve::Response live_r = live.get();
    EXPECT_EQ(live_r.status, serve::ResponseStatus::Ok);
    EXPECT_TRUE(live_r.outcome.matches(spec));

    serve::Metrics::Snapshot m = scheduler.metricsSnapshot();
    EXPECT_EQ(m.expired, 1u);
    EXPECT_EQ(m.served, 1u);
}

TEST(ServeScheduler, QueueFullAdmissionRejects)
{
    serve::Scheduler::Config cfg = comOnlyConfig();
    cfg.queueCapacity = 2;
    serve::Scheduler scheduler(cfg);
    api::ProgramSpec spec = api::ProgramSpec::workload("fib");

    std::future<serve::Response> a =
        scheduler.trySubmit(api::EngineKind::Com, spec);
    std::future<serve::Response> b =
        scheduler.trySubmit(api::EngineKind::Com, spec);
    std::future<serve::Response> c =
        scheduler.trySubmit(api::EngineKind::Com, spec);

    // The third future resolved immediately: queue full.
    ASSERT_EQ(c.wait_for(0s), std::future_status::ready);
    serve::Response rejected = c.get();
    EXPECT_EQ(rejected.status, serve::ResponseStatus::Rejected);
    EXPECT_EQ(rejected.error, "queue full");

    scheduler.start();
    EXPECT_EQ(a.get().status, serve::ResponseStatus::Ok);
    EXPECT_EQ(b.get().status, serve::ResponseStatus::Ok);

    serve::Metrics::Snapshot m = scheduler.metricsSnapshot();
    EXPECT_EQ(m.rejected, 1u);
    EXPECT_EQ(m.served, 2u);
    EXPECT_EQ(m.submitted, 3u);
}

TEST(ServeScheduler, UnservableKindIsRejectedNotFatal)
{
    // The pool holds zero fith engines: a fith request must resolve
    // Rejected at submit time. Letting a worker discover it would
    // fatal() inside the worker thread and terminate the process.
    serve::Scheduler scheduler(comOnlyConfig()); // com engines only
    scheduler.start();
    api::ProgramSpec fith_spec =
        api::ProgramSpec::fith("f", "1 2 + .");

    std::future<serve::Response> tried =
        scheduler.trySubmit(api::EngineKind::Fith, fith_spec);
    ASSERT_EQ(tried.wait_for(0s), std::future_status::ready);
    serve::Response r = tried.get();
    EXPECT_EQ(r.status, serve::ResponseStatus::Rejected);
    EXPECT_NE(r.error.find("no fith engines"), std::string::npos)
        << r.error;

    std::future<serve::Response> blocked =
        scheduler.submit(api::EngineKind::Fith, fith_spec);
    ASSERT_EQ(blocked.wait_for(0s), std::future_status::ready);
    EXPECT_EQ(blocked.get().status, serve::ResponseStatus::Rejected);

    // The scheduler is unharmed: servable kinds still serve.
    api::ProgramSpec spec = api::ProgramSpec::workload("fib");
    serve::Response ok =
        scheduler.submit(api::EngineKind::Com, spec).get();
    EXPECT_EQ(ok.status, serve::ResponseStatus::Ok);
    EXPECT_TRUE(ok.outcome.matches(spec));
}

TEST(ServeScheduler, StopBeforeStartDrainsAsRejected)
{
    api::ProgramSpec spec = api::ProgramSpec::workload("fib");
    std::future<serve::Response> orphan;
    {
        serve::Scheduler scheduler(comOnlyConfig());
        orphan = scheduler.submit(api::EngineKind::Com, spec);
        // Destroyed without ever starting: the future must still
        // resolve (no caller left waiting forever).
    }
    ASSERT_EQ(orphan.wait_for(0s), std::future_status::ready);
    EXPECT_EQ(orphan.get().status, serve::ResponseStatus::Rejected);
}

TEST(ServeScheduler, FailuresAreReportedNotServed)
{
    serve::Scheduler scheduler(comOnlyConfig());

    // A wrong expected checksum must come back Failed — the serving
    // layer verifies responses, it does not take the engine's word.
    api::ProgramSpec wrong = api::ProgramSpec::workload("fib");
    wrong.expected = wrong.expected + 1;
    std::future<serve::Response> mismatch =
        scheduler.trySubmit(api::EngineKind::Com, wrong);

    api::ProgramSpec broken = api::ProgramSpec::smalltalk(
        "broken", "main [ ^1 + ]]] ]");
    std::future<serve::Response> compile_error =
        scheduler.trySubmit(api::EngineKind::Com, broken);

    scheduler.start();
    serve::Response r = mismatch.get();
    EXPECT_EQ(r.status, serve::ResponseStatus::Failed);
    EXPECT_NE(r.error.find("checksum mismatch"), std::string::npos)
        << r.error;

    r = compile_error.get();
    EXPECT_EQ(r.status, serve::ResponseStatus::Failed);
    EXPECT_FALSE(r.error.empty());

    serve::Metrics::Snapshot m = scheduler.metricsSnapshot();
    EXPECT_EQ(m.failed, 2u);
    EXPECT_EQ(m.served, 0u);
}

TEST(ServeScheduler, ShardRouterIsStableAndReported)
{
    serve::Scheduler::Config cfg = comOnlyConfig();
    cfg.shards = 4;
    cfg.workersPerShard = 1;
    serve::Scheduler scheduler(cfg);
    ASSERT_EQ(scheduler.shardCount(), 4u);
    EXPECT_EQ(scheduler.workerCount(), 4u);

    std::vector<api::ProgramSpec> specs = {
        api::ProgramSpec::workload("fib"),
        api::ProgramSpec::workload("sieve"),
        api::ProgramSpec::workload("sort"),
        api::ProgramSpec::workload("bank"),
    };
    std::vector<std::future<serve::Response>> futures;
    std::vector<std::size_t> expected_shards;
    for (const api::ProgramSpec &spec : specs) {
        EXPECT_EQ(scheduler.shardFor(spec), scheduler.shardFor(spec));
        expected_shards.push_back(scheduler.shardFor(spec));
        futures.push_back(
            scheduler.submit(api::EngineKind::Com, spec));
    }
    scheduler.start();
    for (std::size_t i = 0; i < futures.size(); ++i) {
        serve::Response r = futures[i].get();
        EXPECT_EQ(r.status, serve::ResponseStatus::Ok);
        EXPECT_EQ(r.shard, expected_shards[i]);
    }
}

TEST(ServeScheduler, ConcurrentSubmittersMixedKinds)
{
    // The TSan-facing test: many submitting threads, multiple shards
    // and workers, all three engine kinds, every response verified.
    serve::Scheduler::Config cfg;
    cfg.shards = 2;
    cfg.workersPerShard = 2;
    cfg.maxBatch = 4;
    cfg.pool.comEngines = 1;
    cfg.pool.stackEngines = 1;
    cfg.pool.fithEngines = 1;
    serve::Scheduler scheduler(cfg); // autoStart

    const std::vector<std::pair<api::EngineKind, api::ProgramSpec>>
        requests = {
            {api::EngineKind::Com, api::ProgramSpec::workload("fib")},
            {api::EngineKind::Stack,
             api::ProgramSpec::workload("bank")},
            {api::EngineKind::Fith,
             api::ProgramSpec::fith("fith-fib",
                                    ":: Int fib dup 2 < IF ELSE dup 1 "
                                    "- fib swap 2 - fib + THEN ;\n"
                                    "10 fib drop")},
            {api::EngineKind::Com,
             api::ProgramSpec::workload("dictionary")},
        };

    constexpr unsigned kThreads = 4;
    constexpr unsigned kPerThread = 6;
    std::atomic<unsigned> failures{0};
    std::vector<std::thread> submitters;
    for (unsigned t = 0; t < kThreads; ++t)
        submitters.emplace_back([&, t] {
            for (unsigned i = 0; i < kPerThread; ++i) {
                const auto &req = requests[(t + i) % requests.size()];
                serve::Response r =
                    scheduler.submit(req.first, req.second).get();
                if (r.status != serve::ResponseStatus::Ok ||
                    !r.outcome.matches(req.second))
                    failures.fetch_add(1);
            }
        });
    for (std::thread &t : submitters)
        t.join();

    EXPECT_EQ(failures.load(), 0u);
    serve::Metrics::Snapshot m = scheduler.metricsSnapshot();
    EXPECT_EQ(m.served, kThreads * kPerThread);
    EXPECT_EQ(m.failed + m.rejected + m.expired, 0u);
    EXPECT_GE(m.batches, 1u);
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

TEST(ServeMetrics, HistogramMomentsAreExactPercentilesBucketed)
{
    serve::LatencyHistogram h;
    for (int i = 0; i < 99; ++i)
        h.record(0.001); // 1 ms
    h.record(0.1); // one 100 ms outlier

    serve::LatencyHistogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 100u);
    EXPECT_NEAR(s.meanSeconds, (99 * 0.001 + 0.1) / 100.0, 1e-9);
    EXPECT_NEAR(s.maxSeconds, 0.1, 1e-9);
    // Percentiles resolve to the containing power-of-two bucket.
    EXPECT_GE(s.p50Seconds, 0.0005);
    EXPECT_LE(s.p50Seconds, 0.002);
    EXPECT_GE(s.p99Seconds, s.p50Seconds);
    // The p99 sample < the 100ms outlier at rank 100 of 100... p99
    // lands on rank 99: still the 1 ms bucket.
    EXPECT_LE(s.p99Seconds, 0.002);
}

TEST(ServeMetrics, EmptyHistogramSnapshotsToZero)
{
    serve::LatencyHistogram h;
    serve::LatencyHistogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.meanSeconds, 0.0);
    EXPECT_EQ(s.p99Seconds, 0.0);
}

TEST(ServeMetrics, BatchAndQueueCounters)
{
    serve::Metrics m;
    m.recordBatch(4);
    m.recordBatch(2);
    // 3 enqueues and a 2-element dequeue: gauge 1, high-water 3 —
    // exact totals even when several shard queues feed one Metrics.
    m.countEnqueued();
    m.countEnqueued();
    m.countEnqueued();
    m.countDequeued(2);
    m.addBusyNanos(500'000'000); // 0.5 s busy

    serve::Metrics::Snapshot s = m.snapshot(1.0, 1);
    EXPECT_EQ(s.batches, 2u);
    EXPECT_DOUBLE_EQ(s.meanBatch, 3.0);
    EXPECT_EQ(s.maxBatch, 4u);
    EXPECT_EQ(s.maxQueueDepth, 3u);
    EXPECT_EQ(s.queueDepth, 1u);
    EXPECT_NEAR(s.utilization, 0.5, 1e-9);
}

// ---------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------

serve::ServeRequest
makeQueued(const api::ProgramSpec &spec)
{
    serve::ServeRequest req;
    req.kind = api::EngineKind::Com;
    req.spec = spec;
    req.submitted = serve::Clock::now();
    return req;
}

TEST(ServeQueue, RejectsWhenFullAndKeepsTheRequest)
{
    serve::RequestQueue q(1);
    api::ProgramSpec spec = api::ProgramSpec::workload("fib");
    EXPECT_TRUE(q.tryPush(makeQueued(spec)));
    serve::ServeRequest second = makeQueued(spec);
    EXPECT_FALSE(q.tryPush(std::move(second)));
    // The refused request is intact: its promise is still usable.
    second.promise.set_value(serve::Response{});
    EXPECT_EQ(q.depth(), 1u);
}

TEST(ServeQueue, PopBatchCoalescesByKindAndSource)
{
    serve::RequestQueue q(16);
    api::ProgramSpec fib = api::ProgramSpec::workload("fib");
    api::ProgramSpec sieve = api::ProgramSpec::workload("sieve");
    ASSERT_TRUE(q.tryPush(makeQueued(fib)));
    ASSERT_TRUE(q.tryPush(makeQueued(sieve)));
    ASSERT_TRUE(q.tryPush(makeQueued(fib)));

    std::vector<serve::ServeRequest> batch = q.popBatch(8);
    ASSERT_EQ(batch.size(), 2u); // both fibs, not the sieve between
    EXPECT_EQ(batch[0].spec.source, fib.source);
    EXPECT_EQ(batch[1].spec.source, fib.source);
    EXPECT_EQ(q.depth(), 1u);
    for (serve::ServeRequest &r : batch)
        r.promise.set_value(serve::Response{});

    batch = q.popBatch(8);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].spec.source, sieve.source);
    batch[0].promise.set_value(serve::Response{});

    q.close();
    EXPECT_TRUE(q.popBatch(8).empty());
}

// ---------------------------------------------------------------
// Snapshot::merge — two hand-built snapshots fold into exact sums,
// recomputed (not averaged) derived values, and bucket-wise latency.
// ---------------------------------------------------------------

TEST(ServeMetrics, SnapshotMergeSumsCountersExactly)
{
    serve::Metrics::Snapshot a;
    a.submitted = 100;
    a.served = 90;
    a.failed = 4;
    a.rejected = 3;
    a.expired = 3;
    a.batches = 30;
    a.batchedRequests = 90;
    a.meanBatch = 3.0;
    a.maxBatch = 8;
    a.maxQueueDepth = 12;
    a.queueDepth = 2;
    a.workers = 4;
    a.wallSeconds = 10.0;
    a.busySeconds = 24.0;
    a.workerSeconds = 40.0;
    a.utilization = 0.6;
    a.cacheHits = 50;
    a.cacheMisses = 10;
    a.cacheInstalls = 10;
    a.cacheEvictions = 1;
    a.warmStarts = 40;
    a.warmStartNanos = 80'000'000; // 2 ms mean
    a.warmStartMeanSeconds = 0.002;

    serve::Metrics::Snapshot b;
    b.submitted = 50;
    b.served = 45;
    b.failed = 1;
    b.rejected = 2;
    b.expired = 2;
    b.batches = 10;
    b.batchedRequests = 50;
    b.meanBatch = 5.0;
    b.maxBatch = 6;
    b.maxQueueDepth = 20;
    b.queueDepth = 3;
    b.workers = 2;
    b.wallSeconds = 8.0;
    b.busySeconds = 8.0;
    b.workerSeconds = 16.0;
    b.utilization = 0.5;
    b.cacheHits = 20;
    b.cacheMisses = 5;
    b.cacheInstalls = 5;
    b.cacheEvictions = 0;
    b.warmStarts = 10;
    b.warmStartNanos = 70'000'000; // 7 ms mean
    b.warmStartMeanSeconds = 0.007;

    a.merge(b);

    EXPECT_EQ(a.submitted, 150u);
    EXPECT_EQ(a.served, 135u);
    EXPECT_EQ(a.failed, 5u);
    EXPECT_EQ(a.rejected, 5u);
    EXPECT_EQ(a.expired, 5u);
    EXPECT_EQ(a.batches, 40u);
    EXPECT_EQ(a.batchedRequests, 140u);
    // Recomputed from summed ingredients: 140/40, NOT (3+5)/2.
    EXPECT_DOUBLE_EQ(a.meanBatch, 3.5);
    EXPECT_EQ(a.maxBatch, 8u);
    // Queue depths sum — each process's peak is its own shards'
    // backlog, and the combined system's worst case is both at once.
    EXPECT_EQ(a.maxQueueDepth, 32u);
    EXPECT_EQ(a.queueDepth, 5u);
    EXPECT_EQ(a.workers, 6u);
    // Parallel processes overlap: walls take the max, not the sum.
    EXPECT_DOUBLE_EQ(a.wallSeconds, 10.0);
    EXPECT_DOUBLE_EQ(a.busySeconds, 32.0);
    EXPECT_DOUBLE_EQ(a.workerSeconds, 56.0);
    // 32/56, NOT (0.6+0.5)/2.
    EXPECT_DOUBLE_EQ(a.utilization, 32.0 / 56.0);
    EXPECT_EQ(a.cacheHits, 70u);
    EXPECT_EQ(a.cacheMisses, 15u);
    EXPECT_EQ(a.cacheInstalls, 15u);
    EXPECT_EQ(a.cacheEvictions, 1u);
    EXPECT_EQ(a.warmStarts, 50u);
    EXPECT_EQ(a.warmStartNanos, 150'000'000u);
    // 150 ms over 50 starts = 3 ms, NOT (2 ms + 7 ms)/2.
    EXPECT_DOUBLE_EQ(a.warmStartMeanSeconds, 0.003);
}

TEST(ServeMetrics, SnapshotMergeCombinesLatencyBucketwise)
{
    serve::LatencyHistogram ha;
    ha.record(0.001);
    ha.record(0.001);
    ha.record(0.004);
    serve::LatencyHistogram hb;
    hb.record(0.002);
    hb.record(0.064);

    serve::LatencyHistogram both;
    for (double v : {0.001, 0.001, 0.004, 0.002, 0.064})
        both.record(v);

    serve::Metrics::Snapshot a;
    a.latency = ha.snapshot();
    serve::Metrics::Snapshot b;
    b.latency = hb.snapshot();
    a.merge(b);

    serve::LatencyHistogram::Snapshot want = both.snapshot();
    EXPECT_EQ(a.latency.count, want.count);
    EXPECT_EQ(a.latency.buckets, want.buckets);
    EXPECT_DOUBLE_EQ(a.latency.maxSeconds, want.maxSeconds);
    // The merged mean is count-weighted from the two sums; recording
    // into one histogram quantizes identically, so they agree.
    EXPECT_NEAR(a.latency.meanSeconds, want.meanSeconds, 1e-9);
    EXPECT_DOUBLE_EQ(a.latency.p50Seconds, want.p50Seconds);
    EXPECT_DOUBLE_EQ(a.latency.p95Seconds, want.p95Seconds);
    EXPECT_DOUBLE_EQ(a.latency.p99Seconds, want.p99Seconds);
}

TEST(ServeMetrics, SnapshotMergeWithEmptyIsIdentity)
{
    serve::Metrics::Snapshot a;
    a.submitted = 7;
    a.served = 7;
    a.batches = 2;
    a.batchedRequests = 7;
    a.meanBatch = 3.5;
    a.busySeconds = 1.0;
    a.workerSeconds = 4.0;
    a.utilization = 0.25;

    serve::Metrics::Snapshot empty;
    a.merge(empty);

    EXPECT_EQ(a.submitted, 7u);
    EXPECT_DOUBLE_EQ(a.meanBatch, 3.5);
    EXPECT_DOUBLE_EQ(a.utilization, 0.25);

    // And the other direction: empty.merge(a) == a's counters.
    serve::Metrics::Snapshot fresh;
    fresh.merge(a);
    EXPECT_EQ(fresh.submitted, 7u);
    EXPECT_DOUBLE_EQ(fresh.meanBatch, 3.5);
    EXPECT_DOUBLE_EQ(fresh.utilization, 0.25);
}

} // namespace
