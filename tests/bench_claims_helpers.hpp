/**
 * @file
 * Helpers for the paper-claim regression tests: run a workload on a
 * fresh COM and hand back the machine for inspection.
 */

#ifndef COMSIM_TESTS_BENCH_CLAIMS_HELPERS_HPP
#define COMSIM_TESTS_BENCH_CLAIMS_HELPERS_HPP

#include <memory>

#include "baseline/method_cache.hpp"
#include "core/machine.hpp"
#include "lang/compiler_com.hpp"
#include "lang/workloads.hpp"
#include "mem/multics_address.hpp"
#include "sim/rng.hpp"

namespace com::claims {

/** Run @p w on a fresh machine; return the run result. */
inline core::RunResult
runOnCom(const lang::Workload &w)
{
    core::MachineConfig cfg;
    cfg.contextPoolSize = 4096;
    core::Machine m(cfg);
    m.installStandardLibrary();
    lang::ComCompiler cc(m);
    lang::CompiledProgram p = cc.compileSource(w.source);
    return m.call(p.entryVaddr, m.constants().nilWord(), {});
}

/** Run @p w and return the machine afterwards (for statistics). */
inline std::unique_ptr<core::Machine>
machineAfter(const lang::Workload &w)
{
    core::MachineConfig cfg;
    cfg.contextPoolSize = 4096;
    auto m = std::make_unique<core::Machine>(cfg);
    m->installStandardLibrary();
    lang::ComCompiler cc(*m);
    lang::CompiledProgram p = cc.compileSource(w.source);
    core::RunResult r =
        m->call(p.entryVaddr, m->constants().nilWord(), {});
    if (!r.finished)
        sim::panic("workload '", w.name, "' did not finish: ",
                   r.message);
    return m;
}

} // namespace com::claims

#endif // COMSIM_TESTS_BENCH_CLAIMS_HELPERS_HPP
