/**
 * @file
 * Helpers for the paper-claim regression tests: run a workload through
 * the unified engine API and hand back the engine for inspection of
 * its machine's statistics.
 */

#ifndef COMSIM_TESTS_BENCH_CLAIMS_HELPERS_HPP
#define COMSIM_TESTS_BENCH_CLAIMS_HELPERS_HPP

#include <memory>

#include "api/engine.hpp"
#include "baseline/method_cache.hpp"
#include "lang/workloads.hpp"
#include "mem/multics_address.hpp"
#include "sim/rng.hpp"

namespace com::claims {

/** Run @p w on a fresh COM engine; return the outcome. */
inline api::RunOutcome
runOnCom(const lang::Workload &w)
{
    api::ComEngine engine;
    return engine.run(api::ProgramSpec::workload(w.name));
}

/** Run @p w and return the engine afterwards (for statistics). */
inline std::unique_ptr<api::ComEngine>
engineAfter(const lang::Workload &w)
{
    auto engine = std::make_unique<api::ComEngine>();
    api::RunOutcome r =
        engine->run(api::ProgramSpec::workload(w.name));
    if (!r.ok)
        sim::panic("workload '", w.name, "' did not finish: ", r.error);
    return engine;
}

} // namespace com::claims

#endif // COMSIM_TESTS_BENCH_CLAIMS_HELPERS_HPP
