/**
 * @file
 * The multi-process shard router (net/router.hpp): requests flow
 * through to forked comsim_served workers, a SIGKILLed worker is
 * restarted without dropping other connections, and drain shuts both
 * workers down cleanly (run() returns 0).
 *
 * These tests fork real worker processes, so they need the
 * comsim_served binary next to the test executable (the normal CMake
 * layout). When it is missing the suite skips rather than fails.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/router.hpp"

using namespace com;

namespace {

/** comsim_served next to this test binary, or "" if absent. */
std::string
workerBinary()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    std::string path(buf);
    std::size_t slash = path.find_last_of('/');
    path = path.substr(0, slash + 1) + "comsim_served";
    return ::access(path.c_str(), X_OK) == 0 ? path : "";
}

/** A Router over two real workers plus the thread running it. */
class RouterFixture
{
  public:
    RouterFixture()
    {
        net::Router::Config cfg;
        cfg.port = 0;
        cfg.workers = 2;
        cfg.workerPath = workerBinary();
        router_ = std::make_unique<net::Router>(cfg);
        thread_ = std::thread([this] { exit_ = router_->run(); });
    }

    ~RouterFixture()
    {
        if (thread_.joinable()) {
            router_->requestDrain();
            thread_.join();
        }
    }

    net::Router &router() { return *router_; }
    int exitCode() const { return exit_; }

    net::Client::Config
    clientConfig() const
    {
        net::Client::Config cfg;
        cfg.port = router_->port();
        return cfg;
    }

    int
    shutdown()
    {
        router_->requestDrain();
        thread_.join();
        return exit_;
    }

  private:
    std::unique_ptr<net::Router> router_;
    std::thread thread_;
    int exit_ = -1;
};

/** Distinct sources so requests land on both shards. */
api::ProgramSpec
specFor(int i)
{
    std::string src = std::to_string(i) + " 1 + dup .";
    api::ProgramSpec spec = api::ProgramSpec::fith("add", src);
    spec.hasExpected = true;
    spec.expected = i + 1;
    return spec;
}

TEST(NetRouter, RoutesRequestsToWorkers)
{
    if (workerBinary().empty())
        GTEST_SKIP() << "comsim_served not built next to tests";

    RouterFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()))
        << client.error();

    for (int i = 0; i < 10; ++i) {
        serve::Response r =
            client.run(api::EngineKind::Fith, specFor(i));
        ASSERT_EQ(r.status, serve::ResponseStatus::Ok) << r.error;
        EXPECT_TRUE(r.outcome.ok);
    }
    EXPECT_EQ(fx.shutdown(), 0);
}

TEST(NetRouter, AggregatesMetricsAcrossWorkers)
{
    if (workerBinary().empty())
        GTEST_SKIP() << "comsim_served not built next to tests";

    RouterFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()));

    constexpr int kRequests = 12;
    for (int i = 0; i < kRequests; ++i) {
        serve::Response r =
            client.run(api::EngineKind::Fith, specFor(i));
        ASSERT_EQ(r.status, serve::ResponseStatus::Ok) << r.error;
    }

    serve::Metrics::Snapshot snap;
    ASSERT_TRUE(client.metrics(&snap)) << client.error();
    EXPECT_EQ(snap.served, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(snap.submitted, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(fx.shutdown(), 0);
}

TEST(NetRouter, RestartsKilledWorker)
{
    if (workerBinary().empty())
        GTEST_SKIP() << "comsim_served not built next to tests";

    RouterFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()));

    // Warm both shards first.
    for (int i = 0; i < 6; ++i) {
        serve::Response r =
            client.run(api::EngineKind::Fith, specFor(i));
        ASSERT_EQ(r.status, serve::ResponseStatus::Ok) << r.error;
    }

    pid_t victim = fx.router().workerPid(0);
    ASSERT_GT(victim, 0);
    ASSERT_EQ(::kill(victim, SIGKILL), 0);

    // The router notices the death via EOF and respawns; requests to
    // BOTH shards must keep succeeding (the replacement may need a
    // connect retry internally, which the router hides from us).
    for (int i = 0; i < 12; ++i) {
        serve::Response r =
            client.run(api::EngineKind::Fith, specFor(i));
        ASSERT_EQ(r.status, serve::ResponseStatus::Ok)
            << "request " << i << ": " << r.error;
    }

    EXPECT_GE(fx.router().restarts(), 1u);
    pid_t replacement = fx.router().workerPid(0);
    EXPECT_GT(replacement, 0);
    EXPECT_NE(replacement, victim);
    EXPECT_EQ(fx.shutdown(), 0);
}

TEST(NetRouter, DrainExitsZeroWithIdleWorkers)
{
    if (workerBinary().empty())
        GTEST_SKIP() << "comsim_served not built next to tests";

    RouterFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()));
    serve::Response r = client.run(api::EngineKind::Fith, specFor(1));
    ASSERT_EQ(r.status, serve::ResponseStatus::Ok) << r.error;
    client.close();
    EXPECT_EQ(fx.shutdown(), 0);
}

} // namespace
