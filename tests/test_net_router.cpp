/**
 * @file
 * The multi-process shard router (net/router.hpp): requests flow
 * through to forked comsim_served workers, a SIGKILLed worker is
 * restarted without dropping other connections, and drain shuts both
 * workers down cleanly (run() returns 0).
 *
 * These tests fork real worker processes, so they need the
 * comsim_served binary next to the test executable (the normal CMake
 * layout). When it is missing the suite skips rather than fails.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/router.hpp"

using namespace com;

namespace {

/** comsim_served next to this test binary, or "" if absent. */
std::string
workerBinary()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    std::string path(buf);
    std::size_t slash = path.find_last_of('/');
    path = path.substr(0, slash + 1) + "comsim_served";
    return ::access(path.c_str(), X_OK) == 0 ? path : "";
}

/** A Router over two real workers plus the thread running it. */
class RouterFixture
{
  public:
    RouterFixture()
    {
        net::Router::Config cfg;
        cfg.port = 0;
        cfg.workers = 2;
        cfg.workerPath = workerBinary();
        router_ = std::make_unique<net::Router>(cfg);
        thread_ = std::thread([this] { exit_ = router_->run(); });
    }

    ~RouterFixture()
    {
        if (thread_.joinable()) {
            router_->requestDrain();
            thread_.join();
        }
    }

    net::Router &router() { return *router_; }
    int exitCode() const { return exit_; }

    net::Client::Config
    clientConfig() const
    {
        net::Client::Config cfg;
        cfg.port = router_->port();
        return cfg;
    }

    int
    shutdown()
    {
        router_->requestDrain();
        thread_.join();
        return exit_;
    }

  private:
    std::unique_ptr<net::Router> router_;
    std::thread thread_;
    int exit_ = -1;
};

/** Distinct sources so requests land on both shards. */
api::ProgramSpec
specFor(int i)
{
    std::string src = std::to_string(i) + " 1 + dup .";
    api::ProgramSpec spec = api::ProgramSpec::fith("add", src);
    spec.hasExpected = true;
    spec.expected = i + 1;
    return spec;
}

TEST(NetRouter, RoutesRequestsToWorkers)
{
    if (workerBinary().empty())
        GTEST_SKIP() << "comsim_served not built next to tests";

    RouterFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()))
        << client.error();

    for (int i = 0; i < 10; ++i) {
        serve::Response r =
            client.run(api::EngineKind::Fith, specFor(i));
        ASSERT_EQ(r.status, serve::ResponseStatus::Ok) << r.error;
        EXPECT_TRUE(r.outcome.ok);
    }
    EXPECT_EQ(fx.shutdown(), 0);
}

TEST(NetRouter, AggregatesMetricsAcrossWorkers)
{
    if (workerBinary().empty())
        GTEST_SKIP() << "comsim_served not built next to tests";

    RouterFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()));

    constexpr int kRequests = 12;
    for (int i = 0; i < kRequests; ++i) {
        serve::Response r =
            client.run(api::EngineKind::Fith, specFor(i));
        ASSERT_EQ(r.status, serve::ResponseStatus::Ok) << r.error;
    }

    serve::Metrics::Snapshot snap;
    ASSERT_TRUE(client.metrics(&snap)) << client.error();
    EXPECT_EQ(snap.served, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(snap.submitted, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(fx.shutdown(), 0);
}

TEST(NetRouter, RestartsKilledWorker)
{
    if (workerBinary().empty())
        GTEST_SKIP() << "comsim_served not built next to tests";

    RouterFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()));

    // Warm both shards first.
    for (int i = 0; i < 6; ++i) {
        serve::Response r =
            client.run(api::EngineKind::Fith, specFor(i));
        ASSERT_EQ(r.status, serve::ResponseStatus::Ok) << r.error;
    }

    pid_t victim = fx.router().workerPid(0);
    ASSERT_GT(victim, 0);
    ASSERT_EQ(::kill(victim, SIGKILL), 0);

    // The router notices the death via EOF and respawns; requests to
    // BOTH shards must keep succeeding (the replacement may need a
    // connect retry internally, which the router hides from us).
    for (int i = 0; i < 12; ++i) {
        serve::Response r =
            client.run(api::EngineKind::Fith, specFor(i));
        ASSERT_EQ(r.status, serve::ResponseStatus::Ok)
            << "request " << i << ": " << r.error;
    }

    EXPECT_GE(fx.router().restarts(), 1u);
    pid_t replacement = fx.router().workerPid(0);
    EXPECT_GT(replacement, 0);
    EXPECT_NE(replacement, victim);
    EXPECT_EQ(fx.shutdown(), 0);
}

TEST(NetRouter, TraceFanOutConcatenatesWorkerSpans)
{
    if (workerBinary().empty())
        GTEST_SKIP() << "comsim_served not built next to tests";

    RouterFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()));

    constexpr int kRequests = 10;
    for (int i = 0; i < kRequests; ++i) {
        serve::Response r =
            client.run(api::EngineKind::Fith, specFor(i));
        ASSERT_EQ(r.status, serve::ResponseStatus::Ok) << r.error;
    }

    // One TraceRequest fans out to every worker; the response is the
    // concatenation of their flight recorders — every served request
    // appears exactly once, whichever worker ran it.
    std::vector<serve::FlightSpan> spans;
    ASSERT_TRUE(client.trace(&spans)) << client.error();
    ASSERT_EQ(spans.size(), static_cast<std::size_t>(kRequests));
    for (const serve::FlightSpan &s : spans) {
        EXPECT_EQ(s.status, serve::ResponseStatus::Ok);
        EXPECT_EQ(s.program, "add");
    }

    // Runs keep working on the same connection after a trace.
    serve::Response r = client.run(api::EngineKind::Fith, specFor(1));
    EXPECT_EQ(r.status, serve::ResponseStatus::Ok);
    EXPECT_EQ(fx.shutdown(), 0);
}

TEST(NetRouter, MetricsDeltasSurviveWorkerRestart)
{
    if (workerBinary().empty())
        GTEST_SKIP() << "comsim_served not built next to tests";

    RouterFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()));

    // A before/after metrics window with a worker restart inside it:
    // the restarted worker re-reports from zero, so the fleet-merged
    // "after" counters can be SMALLER than "before". The clamped
    // delta path (LatencyHistogram::Snapshot::delta + clamped counter
    // diffs, what bench_serve and comsim_stat use) must yield a sane
    // window, never 2^64 wrap-around garbage.
    constexpr int kBefore = 12;
    for (int i = 0; i < kBefore; ++i) {
        serve::Response r =
            client.run(api::EngineKind::Fith, specFor(i));
        ASSERT_EQ(r.status, serve::ResponseStatus::Ok) << r.error;
    }
    serve::Metrics::Snapshot before;
    ASSERT_TRUE(client.metrics(&before)) << client.error();
    EXPECT_EQ(before.served, static_cast<std::uint64_t>(kBefore));

    pid_t victim = fx.router().workerPid(0);
    ASSERT_GT(victim, 0);
    ASSERT_EQ(::kill(victim, SIGKILL), 0);

    constexpr int kAfter = 12;
    for (int i = 0; i < kAfter; ++i) {
        serve::Response r =
            client.run(api::EngineKind::Fith, specFor(i));
        ASSERT_EQ(r.status, serve::ResponseStatus::Ok) << r.error;
    }
    EXPECT_GE(fx.router().restarts(), 1u);

    serve::Metrics::Snapshot after;
    ASSERT_TRUE(client.metrics(&after)) << client.error();

    using Hist = serve::LatencyHistogram::Snapshot;
    for (const Hist &d : {Hist::delta(after.latency, before.latency),
                          Hist::delta(after.queueWait, before.queueWait),
                          Hist::delta(after.execute, before.execute)}) {
        // The window really held at most kAfter completions (the
        // killed worker's lost history clamps away, it cannot
        // inflate the delta).
        EXPECT_LE(d.count, static_cast<std::uint64_t>(kAfter));
        std::uint64_t total = 0;
        for (std::uint64_t b : d.buckets)
            total += b;
        EXPECT_EQ(total, d.count);
    }
    auto diff = [](std::uint64_t a, std::uint64_t b) {
        return a >= b ? a - b : 0;
    };
    EXPECT_LE(diff(after.served, before.served),
              static_cast<std::uint64_t>(kAfter));
    EXPECT_EQ(fx.shutdown(), 0);
}

TEST(NetRouter, HttpScrapeAggregatesTheFleet)
{
    if (workerBinary().empty())
        GTEST_SKIP() << "comsim_served not built next to tests";

    RouterFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()));
    constexpr int kRequests = 8;
    for (int i = 0; i < kRequests; ++i) {
        serve::Response r =
            client.run(api::EngineKind::Fith, specFor(i));
        ASSERT_EQ(r.status, serve::ResponseStatus::Ok) << r.error;
    }

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(fx.router().port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    std::string get = "GET /metrics HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::send(fd, get.data(), get.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(get.size()));
    std::string resp;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
        resp.append(chunk, static_cast<std::size_t>(n));
    ::close(fd);

    EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK", 0), 0u) << resp;
    // The body is the fleet-MERGED snapshot: both workers' served
    // counts summed.
    EXPECT_NE(resp.find("comsim_requests_served_total 8"),
              std::string::npos)
        << resp;
    EXPECT_EQ(fx.shutdown(), 0);
}

TEST(NetRouter, DrainExitsZeroWithIdleWorkers)
{
    if (workerBinary().empty())
        GTEST_SKIP() << "comsim_served not built next to tests";

    RouterFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()));
    serve::Response r = client.run(api::EngineKind::Fith, specFor(1));
    ASSERT_EQ(r.status, serve::ResponseStatus::Ok) << r.error;
    client.close();
    EXPECT_EQ(fx.shutdown(), 0);
}

} // namespace
