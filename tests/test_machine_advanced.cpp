/**
 * @file
 * Advanced machine integration tests: growth traps through at:,
 * method redefinition (smooth extensibility), privileged as:, the
 * cycle-accounting identity, GC under context pressure, and the
 * host-routine standard library.
 */

#include <gtest/gtest.h>

#include "core/assembler.hpp"
#include "core/machine.hpp"
#include "lang/compiler_com.hpp"

using namespace com;
using core::Assembler;
using core::GuestFault;
using core::Machine;
using core::RunResult;
using mem::Word;

namespace {

core::MachineConfig
smallConfig()
{
    core::MachineConfig cfg;
    cfg.contextPoolSize = 128;
    return cfg;
}

} // namespace

TEST(MachineAdvanced, GrowthTrapRepairsPointerDuringAt)
{
    Machine m(smallConfig());
    m.installStandardLibrary();
    Assembler as(m);

    // Allocate an 8-word array, grow it to 100 (new name), then read
    // index 50 through the STALE pointer: the growth trap must repair
    // it transparently.
    std::uint64_t obj = m.heap().allocateInstance(
        m.classes().arrayClass(), 8);
    std::uint64_t grown = m.segments().growObject(obj, 100, m.memory());
    ASSERT_NE(obj, grown);
    mem::XlateResult wr = m.segments().translate(grown, 50, true);
    m.memory().poke(wr.abs, Word::fromInt(777));

    std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
        at    c6, c4, =50
        putres.r c2, c6
    )"));
    RunResult r = m.call(entry, m.constants().nilWord(),
                         {Word::fromPointer(
                             static_cast<std::uint32_t>(obj))});
    ASSERT_TRUE(r.finished) << r.message;
    EXPECT_EQ(m.lastResult().asInt(), 777);
    EXPECT_GT(m.pipeline().trapCycles(), 0u);
}

TEST(MachineAdvanced, RedefinitionTakesEffectWithoutRecompiling)
{
    // "if at some time, it is decided to change the implementation of
    //  a routine ... no object code need ever be modified."
    Machine m(smallConfig());
    Assembler as(m);
    mem::ClassId int_cls = static_cast<mem::ClassId>(mem::Tag::SmallInt);

    as.assembleMethod(int_cls, "f", R"(
        mul c5, c3, =2
        putres.r c2, c5
    )");
    std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
        msg "f", c6, c4, c0
        putres.r c2, c6
    )"));
    RunResult r1 = m.call(entry, m.constants().nilWord(),
                          {Word::fromInt(10)});
    ASSERT_TRUE(r1.finished);
    EXPECT_EQ(m.lastResult().asInt(), 20);

    // Redefine f; the SAME entry object now means triple.
    as.assembleMethod(int_cls, "f", R"(
        mul c5, c3, =3
        putres.r c2, c5
    )");
    RunResult r2 = m.call(entry, m.constants().nilWord(),
                          {Word::fromInt(10)});
    ASSERT_TRUE(r2.finished);
    EXPECT_EQ(m.lastResult().asInt(), 30);
}

TEST(MachineAdvanced, OverridingAPrimitiveToken)
{
    // The same '+' token: primitive for integers, user method for a
    // class that redefines it — with no compiler involvement.
    Machine m(smallConfig());
    m.installStandardLibrary();
    lang::ComCompiler cc(m);
    lang::CompiledProgram p = cc.compileSource(R"(
class Weird [
    | v |
    v: x [ v := x ]
    + other [ ^v - other ]
]
main [ | w |
    w := Weird new.
    w v: 100.
    ^(w + 1) + (2 + 3)
]
)");
    RunResult r = m.call(p.entryVaddr, m.constants().nilWord(), {});
    ASSERT_TRUE(r.finished) << r.message;
    EXPECT_EQ(m.lastResult().asInt(), 104); // (100-1) + 5
}

TEST(MachineAdvanced, PrivilegedAsForgingFaultsWithoutPrivilege)
{
    core::MachineConfig cfg = smallConfig();
    cfg.privileged = false;
    Machine m(cfg);
    Assembler as(m);
    std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
        as    c6, c4, =5      ; retag int as ObjectPtr: forging
        putres.r c2, c6
    )"));
    RunResult r = m.call(entry, m.constants().nilWord(),
                         {Word::fromInt(0x1234)});
    EXPECT_EQ(r.fault, GuestFault::PrivilegedAs);
}

TEST(MachineAdvanced, PrivilegedAsAllowedWithPrivilege)
{
    Machine m(smallConfig()); // privileged by default
    Assembler as(m);
    std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
        as    c6, c4, =1      ; retag pointer bits as an integer: fine
        putres.r c2, c6
    )"));
    RunResult r = m.call(entry, m.constants().nilWord(),
                         {Word::fromInt(77)});
    ASSERT_TRUE(r.finished);
    EXPECT_EQ(m.lastResult().asInt(), 77);
}

TEST(MachineAdvanced, CycleAccountingIdentity)
{
    // Every cycle must be attributable: base + branch + call + stalls
    // + traps == total. Run a workload with all features exercised.
    Machine m(smallConfig());
    m.installStandardLibrary();
    lang::ComCompiler cc(m);
    lang::CompiledProgram p = cc.compileSource(R"(
class T [
    go: n [ | a |
        a := Array new: 8.
        0 to: 7 do: [ :i | a at: i put: i * n ].
        ^(a at: 3) + (a at: 5)
    ]
]
main [ | t s |
    t := T new.
    s := 0.
    1 to: 50 do: [ :k | s := s + (t go: k) ].
    ^s
]
)");
    RunResult r = m.call(p.entryVaddr, m.constants().nilWord(), {});
    ASSERT_TRUE(r.finished) << r.message;

    const core::Pipeline &pl = m.pipeline();
    std::uint64_t accounted = 2 * pl.instructions() +
                              pl.branchDelays() + pl.callOverhead() +
                              pl.itlbStalls() + pl.icacheStalls() +
                              pl.atlbStalls() + pl.memoryStalls() +
                              pl.contextStalls() + pl.trapCycles();
    EXPECT_EQ(pl.cycles(), accounted);
}

TEST(MachineAdvanced, ContextPoolPressureTriggersGc)
{
    // Deep recursion with a small pool: the machine must collect
    // rather than dying, because returns free LIFO contexts and old
    // xfer garbage is collectable.
    core::MachineConfig cfg;
    cfg.contextPoolSize = 64;
    Machine m(cfg);
    m.installStandardLibrary();
    lang::ComCompiler cc(m);
    lang::CompiledProgram p = cc.compileSource(R"(
class R [
    down: n [
        n = 0 ifTrue: [ ^0 ].
        ^(self down: n - 1) + 1
    ]
]
main [ ^R new down: 50 ]
)");
    RunResult r = m.call(p.entryVaddr, m.constants().nilWord(), {});
    ASSERT_TRUE(r.finished) << r.message;
    EXPECT_EQ(m.lastResult().asInt(), 50);
}

TEST(MachineAdvanced, PoolExhaustionFaultsCleanly)
{
    core::MachineConfig cfg;
    cfg.contextPoolSize = 16; // depth 100 cannot fit
    Machine m(cfg);
    m.installStandardLibrary();
    lang::ComCompiler cc(m);
    lang::CompiledProgram p = cc.compileSource(R"(
class R [
    down: n [
        n = 0 ifTrue: [ ^0 ].
        ^(self down: n - 1) + 1
    ]
]
main [ ^R new down: 100 ]
)");
    RunResult r = m.call(p.entryVaddr, m.constants().nilWord(), {});
    EXPECT_EQ(r.fault, GuestFault::ContextOverflow);
}

TEST(MachineAdvanced, BoundsFaultSurfacesFromGuestCode)
{
    Machine m(smallConfig());
    m.installStandardLibrary();
    lang::ComCompiler cc(m);
    lang::CompiledProgram p = cc.compileSource(R"(
main [ | a |
    a := Array new: 4.
    ^a at: 9
]
)");
    RunResult r = m.call(p.entryVaddr, m.constants().nilWord(), {});
    EXPECT_EQ(r.fault, GuestFault::Bounds);
}

TEST(MachineAdvanced, PrintAccumulatesGuestOutput)
{
    Machine m(smallConfig());
    m.installStandardLibrary();
    lang::ComCompiler cc(m);
    lang::CompiledProgram p = cc.compileSource(R"(
main [
    42 print.
    'hello' print.
    #sym print.
    ^0
]
)");
    RunResult r = m.call(p.entryVaddr, m.constants().nilWord(), {});
    ASSERT_TRUE(r.finished) << r.message;
    EXPECT_EQ(m.output(), "42\n'hello'\nsym\n");
}

TEST(MachineAdvanced, ReferenceCountsSplitContextVsHeap)
{
    Machine m(smallConfig());
    m.installStandardLibrary();
    lang::ComCompiler cc(m);
    lang::CompiledProgram p = cc.compileSource(R"(
main [ | a s |
    a := Array new: 16.
    s := 0.
    0 to: 15 do: [ :i | a at: i put: i. s := s + (a at: i) ].
    ^s
]
)");
    RunResult r = m.call(p.entryVaddr, m.constants().nilWord(), {});
    ASSERT_TRUE(r.finished);
    EXPECT_GT(m.contextRefs(), 0u);
    EXPECT_GT(m.heapRefs(), 0u);
    // Context references dominate (the paper's 91% claim).
    EXPECT_GT(m.contextRefs(), m.heapRefs());
}

TEST(MachineAdvanced, StringsAreGuestObjects)
{
    Machine m(smallConfig());
    m.installStandardLibrary();
    lang::ComCompiler cc(m);
    lang::CompiledProgram p = cc.compileSource(R"(
main [ | s |
    s := 'abc'.
    ^(s at: 0) + (s at: 2)
]
)");
    RunResult r = m.call(p.entryVaddr, m.constants().nilWord(), {});
    ASSERT_TRUE(r.finished) << r.message;
    EXPECT_EQ(m.lastResult().asInt(), 'a' + 'c');
}

TEST(MachineAdvanced, GrowHostRoutineReturnsNewName)
{
    Machine m(smallConfig());
    m.installStandardLibrary();
    lang::ComCompiler cc(m);
    lang::CompiledProgram p = cc.compileSource(R"(
main [ | a b |
    a := Array new: 4.
    a at: 2 put: 42.
    b := a grow: 200.
    ^b at: 2
]
)");
    RunResult r = m.call(p.entryVaddr, m.constants().nilWord(), {});
    ASSERT_TRUE(r.finished) << r.message;
    EXPECT_EQ(m.lastResult().asInt(), 42);
}
