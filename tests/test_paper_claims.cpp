/**
 * @file
 * Automated regression checks of the headline paper reproductions:
 * if a refactor breaks a *shape-level* result from EXPERIMENTS.md,
 * these tests fail. They run on reduced trace sizes to stay fast.
 */

#include <gtest/gtest.h>

#include "bench_claims_helpers.hpp"
#include "fith/fith_programs.hpp"
#include "lang/workloads.hpp"
#include "trace/cache_sim.hpp"

using namespace com;

namespace {

const trace::Trace &
suiteTrace()
{
    static const trace::Trace t = fith::collectSuiteTrace(42, 120'000);
    return t;
}

} // namespace

TEST(PaperClaims, Fig10ItlbHits99PercentAt512TwoWay)
{
    trace::SweepPoint p = trace::simulateItlb(suiteTrace(), 512, 2);
    EXPECT_GE(p.hitRatio, 0.99);
}

TEST(PaperClaims, Fig10TwoWayBeatsDirectMappedAtSmallSizes)
{
    for (std::size_t size : {32u, 64u, 128u}) {
        trace::SweepPoint one = trace::simulateItlb(suiteTrace(),
                                                    size, 1);
        trace::SweepPoint two = trace::simulateItlb(suiteTrace(),
                                                    size, 2);
        EXPECT_GT(two.hitRatio, one.hitRatio) << size;
    }
}

TEST(PaperClaims, Fig11IcacheNeedsThousandsOfEntries)
{
    trace::SweepPoint small = trace::simulateIcache(suiteTrace(),
                                                    128, 2);
    trace::SweepPoint big = trace::simulateIcache(suiteTrace(),
                                                  4096, 2);
    EXPECT_LT(small.hitRatio, 0.9);
    EXPECT_GE(big.hitRatio, 0.95);
}

TEST(PaperClaims, StackMachineNeedsSubstantiallyMoreInstructions)
{
    // Reproduce the Section 5 comparison on two call-heavy workloads.
    for (const char *name : {"fib", "bank"}) {
        api::ProgramSpec spec = api::ProgramSpec::workload(name);
        api::RunOutcome com_run =
            claims::runOnCom(lang::workload(name));
        ASSERT_TRUE(com_run.ok) << com_run.error;

        api::StackEngine stack;
        api::RunOutcome stack_run = stack.run(spec);
        ASSERT_TRUE(stack_run.ok) << stack_run.error;

        double ratio = static_cast<double>(stack_run.operations) /
                       static_cast<double>(com_run.operations);
        EXPECT_GT(ratio, 1.4) << name;
        EXPECT_LT(ratio, 2.6) << name;
    }
}

TEST(PaperClaims, ContextReferencesDominate)
{
    // ">91% of all memory references are to contexts."
    auto e = claims::engineAfter(lang::workload("richards"));
    core::Machine &m = e->machine();
    double ctx = static_cast<double>(m.contextRefs());
    double heap = static_cast<double>(m.heapRefs());
    EXPECT_GT(ctx / (ctx + heap), 0.91);
}

TEST(PaperClaims, ContextAllocationsDominate)
{
    // "85% of all object allocations and deallocations involve
    //  contexts."
    auto e = claims::engineAfter(lang::workload("bintree"));
    core::Machine &m = e->machine();
    double ctx = static_cast<double>(m.contextPool().allocations());
    double heap = static_cast<double>(m.heap().allocations());
    EXPECT_GT(ctx / (ctx + heap), 0.85);
}

TEST(PaperClaims, ContextCacheAlmostNeverMissesAt32Blocks)
{
    auto e = claims::engineAfter(lang::workload("sort"));
    core::Machine &m = e->machine();
    std::uint64_t returns = m.contextCache().returnHits() +
                            m.contextCache().returnMisses();
    ASSERT_GT(returns, 100u);
    EXPECT_LE(m.contextCache().returnMisses(), returns / 100);
    EXPECT_EQ(m.contextCache().forcedEvictions(), 0u);
}

TEST(PaperClaims, MulticsFailsThePopulationFloatingPointHandles)
{
    mem::FixedSegAllocator multics(mem::kMultics36, 0);
    sim::Rng rng(7);
    std::uint64_t failures = 0;
    for (int i = 0; i < 300'000; ++i)
        if (!multics.allocate(rng.skewedSize(64)).ok)
            ++failures;
    EXPECT_GT(failures, 0u);

    mem::AbsoluteSpace space(0, 36);
    mem::SegmentTable fp(mem::kFp36, space, 0);
    sim::Rng rng2(7);
    for (int i = 0; i < 300'000; ++i)
        fp.allocateObject(rng2.skewedSize(64), 1);
    EXPECT_EQ(fp.numDescriptors(), 300'000u);
}

TEST(PaperClaims, ItlbEliminatesSoftwareLookupCost)
{
    // The association is pipelined with execution: residual cost per
    // send must be far below the software caches'.
    auto lineup = baseline::methodCacheLineup(suiteTrace());
    double software = lineup[1].instructionsPerSend;
    double hardware = lineup[3].instructionsPerSend;
    EXPECT_LT(hardware, software / 10.0);
}
