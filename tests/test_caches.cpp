/**
 * @file
 * Cache model tests: generic set-associative behaviour, replacement
 * policies, the ITLB, the ATLB (including invalidation on mapping
 * changes) and the memory hierarchy.
 */

#include <gtest/gtest.h>

#include "cache/atlb.hpp"
#include "cache/itlb.hpp"
#include "cache/set_assoc.hpp"
#include "mem/hierarchy.hpp"
#include "mem/segment_table.hpp"
#include "mem/tagged_memory.hpp"
#include "sim/rng.hpp"

using namespace com;
using cache::ReplPolicy;
using cache::SetAssocCache;

TEST(SetAssoc, HitAfterInsert)
{
    SetAssocCache<std::uint64_t, int> c(4, 2, ReplPolicy::Lru);
    c.insert(42, 7);
    int *v = c.lookup(42);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, 7);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 0u);
}

TEST(SetAssoc, MissOnAbsent)
{
    SetAssocCache<std::uint64_t, int> c(4, 2, ReplPolicy::Lru);
    EXPECT_EQ(c.lookup(1), nullptr);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssoc, LruEvictsLeastRecentlyUsed)
{
    // One set, two ways: keys 0, 8, 16 all map to set 0 (8 sets? no:
    // num_sets=1 forces everything into one set).
    SetAssocCache<std::uint64_t, int> c(1, 2, ReplPolicy::Lru);
    c.insert(1, 1);
    c.insert(2, 2);
    c.lookup(1);           // 1 is now more recent than 2
    auto ev = c.insert(3, 3);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->key, 2u); // 2 was LRU
    EXPECT_NE(c.probe(1), nullptr);
    EXPECT_EQ(c.probe(2), nullptr);
}

TEST(SetAssoc, FifoEvictsOldestInsertion)
{
    SetAssocCache<std::uint64_t, int> c(1, 2, ReplPolicy::Fifo);
    c.insert(1, 1);
    c.insert(2, 2);
    c.lookup(1); // FIFO ignores recency
    auto ev = c.insert(3, 3);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->key, 1u);
}

TEST(SetAssoc, DirectMappedConflicts)
{
    // Direct-mapped with identity hashing: keys that share low bits
    // conflict — the behaviour Figure 10's 1-way curve exhibits.
    SetAssocCache<std::uint64_t, int> c(8, 1, ReplPolicy::Lru);
    c.insert(0, 0);
    c.insert(8, 8); // same set as 0
    EXPECT_EQ(c.probe(0), nullptr);
    EXPECT_NE(c.probe(8), nullptr);
}

TEST(SetAssoc, PowerOfTwoSetsEnforced)
{
    using C = SetAssocCache<std::uint64_t, int>;
    EXPECT_THROW(C(3, 2, ReplPolicy::Lru), sim::FatalError);
    EXPECT_THROW(C(4, 0, ReplPolicy::Lru), sim::FatalError);
}

TEST(SetAssoc, ResetStatsKeepsContents)
{
    SetAssocCache<std::uint64_t, int> c(4, 2, ReplPolicy::Lru);
    c.insert(5, 5);
    c.lookup(5);
    c.resetStats();
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_NE(c.probe(5), nullptr); // still resident (warmup support)
}

TEST(SetAssoc, HigherAssociativityNeverHurtsOneSetWorkload)
{
    // Property: replaying the same cyclic key stream, a fully
    // associative cache of N entries hits at least as often as a
    // direct-mapped cache of N entries under LRU with cyclic reuse
    // distance < N.
    for (std::size_t n : {4u, 8u, 16u}) {
        SetAssocCache<std::uint64_t, int> direct(n, 1,
                                                 ReplPolicy::Lru);
        SetAssocCache<std::uint64_t, int> full(1, n, ReplPolicy::Lru);
        sim::Rng rng(n);
        for (int i = 0; i < 5000; ++i) {
            std::uint64_t key = rng.below(n - 1) * 16; // conflict-prone
            if (!direct.lookup(key))
                direct.insert(key, 0);
            if (!full.lookup(key))
                full.insert(key, 0);
        }
        EXPECT_GE(full.hitRatio(), direct.hitRatio());
    }
}

// ---------------------------------------------------------------------
// ITLB
// ---------------------------------------------------------------------

TEST(ItlbTest, KeyEqualityAndFill)
{
    cache::Itlb itlb(8, 2);
    cache::ItlbKey k{3, 1, 1, 0};
    EXPECT_EQ(itlb.lookup(k), nullptr);
    cache::MethodEntry e;
    e.primitive = true;
    e.functionUnit = 3;
    itlb.fill(k, e);
    cache::MethodEntry *hit = itlb.lookup(k);
    ASSERT_NE(hit, nullptr);
    EXPECT_TRUE(hit->primitive);
    // Different class tuple: different entry.
    cache::ItlbKey k2{3, 1, 2, 0};
    EXPECT_EQ(itlb.lookup(k2), nullptr);
}

TEST(ItlbTest, WithEntriesSplitsWays)
{
    cache::Itlb itlb = cache::Itlb::withEntries(512, 2);
    EXPECT_EQ(itlb.capacity(), 512u);
    EXPECT_THROW(cache::Itlb::withEntries(100, 3), sim::FatalError);
}

// ---------------------------------------------------------------------
// ATLB
// ---------------------------------------------------------------------

namespace {

struct AtlbEnv
{
    mem::TaggedMemory memory;
    mem::AbsoluteSpace space{0, 26};
    mem::SegmentTable table{mem::kFp32, space, 0};
    cache::Atlb atlb{16, 2, 4};

    AtlbEnv() { atlb.watch(table); }
};

} // namespace

TEST(AtlbTest, MissThenHitWithLatency)
{
    AtlbEnv env;
    std::uint64_t v = env.table.allocateObject(8, 7);
    std::uint64_t lat = 0;
    mem::XlateResult r1 = env.atlb.translate(env.table, v, 0, false,
                                             &lat);
    ASSERT_TRUE(r1.ok());
    EXPECT_EQ(lat, 4u); // walk penalty
    mem::XlateResult r2 = env.atlb.translate(env.table, v, 0, false,
                                             &lat);
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(lat, 0u); // cached
    EXPECT_EQ(r1.abs, r2.abs);
}

TEST(AtlbTest, InvalidatedOnGrowth)
{
    AtlbEnv env;
    std::uint64_t v = env.table.allocateObject(8, 7);
    env.atlb.translate(env.table, v); // fill
    std::uint64_t v2 = env.table.growObject(v, 100, env.memory);
    // The stale entry must be gone: a fresh translate walks again and
    // sees the forwarded base.
    std::uint64_t lat = 0;
    mem::XlateResult r = env.atlb.translate(env.table, v, 0, false,
                                            &lat);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(lat, 4u);
    EXPECT_EQ(r.abs, env.table.translate(v2, 0).abs);
}

TEST(AtlbTest, AppliesBoundsAndProtectionFromCachedDescriptor)
{
    AtlbEnv env;
    std::uint64_t v = env.table.allocateObject(8, 7);
    env.atlb.translate(env.table, v); // fill
    EXPECT_EQ(env.atlb.translate(env.table, v, 8).status,
              mem::XlateStatus::Bounds);

    mem::SegmentTable other(mem::kFp32, env.space, 1);
    env.atlb.watch(other);
    std::uint64_t ro = env.table.shareWith(other, v, false);
    EXPECT_EQ(env.atlb.translate(other, ro, 0, true).status,
              mem::XlateStatus::ProtFault);
}

// ---------------------------------------------------------------------
// Memory hierarchy
// ---------------------------------------------------------------------

TEST(Hierarchy, MissThenHitLatencies)
{
    std::vector<mem::LevelConfig> levels = {
        {"l1", 4, 8, 2, 1, ReplPolicy::Lru},
        {"main", 64, 64, 4, 5, ReplPolicy::Lru},
    };
    mem::MemoryHierarchy h(levels, 50);

    mem::AccessResult first = h.access(1000, false);
    EXPECT_EQ(first.hitLevel, -1);
    EXPECT_EQ(first.latency, 1u + 5u + 50u); // probed both, then backing

    mem::AccessResult second = h.access(1000, false);
    EXPECT_EQ(second.hitLevel, 0);
    EXPECT_EQ(second.latency, 1u);

    // A neighbour in the same L1 block also hits (block = 4 words).
    mem::AccessResult third = h.access(1001, false);
    EXPECT_EQ(third.hitLevel, 0);
}

TEST(Hierarchy, DirtyEvictionCountsWriteback)
{
    std::vector<mem::LevelConfig> levels = {
        {"l1", 1, 1, 1, 1, ReplPolicy::Lru}, // one block total
    };
    mem::MemoryHierarchy h(levels, 10);
    h.access(0, true);  // dirty block 0
    h.access(64, false); // evicts dirty block 0
    EXPECT_EQ(h.totalWritebacks(), 1u);
}

TEST(Hierarchy, InclusiveFillServesUpperLevels)
{
    std::vector<mem::LevelConfig> levels = {
        {"l1", 4, 4, 1, 1, ReplPolicy::Lru},
        {"l2", 16, 64, 4, 4, ReplPolicy::Lru},
    };
    mem::MemoryHierarchy h(levels, 40);
    h.access(512, false); // fills both levels
    // Evict from tiny L1 with conflicting accesses.
    h.access(512 + 16, false);
    h.access(512 + 32, false);
    h.access(512 + 48, false);
    h.access(512 + 64, false);
    // 512 may be out of L1 now, but L2 (big blocks) still holds it.
    mem::AccessResult r = h.access(512, false);
    EXPECT_LE(r.hitLevel, 1);
    EXPECT_NE(r.hitLevel, -1);
}

TEST(Hierarchy, MeanLatencyDropsWithLocality)
{
    std::vector<mem::LevelConfig> levels = {
        {"main", 64, 256, 4, 2, ReplPolicy::Lru},
    };
    mem::MemoryHierarchy h(levels, 30);
    // Touch a small working set repeatedly.
    for (int round = 0; round < 20; ++round)
        for (mem::AbsAddr a = 0; a < 512; a += 8)
            h.access(a, false);
    EXPECT_LT(h.meanLatency(), 5.0);
    EXPECT_GT(h.meanLatency(), 2.0 - 0.001);
}
