/**
 * @file
 * LatencyHistogram::Snapshot algebra (serve/metrics.hpp): merge(a, b)
 * must equal the histogram of the concatenated samples — buckets,
 * count, mean and max — and delta(after, before) must recover just
 * the samples recorded between two snapshots of one growing
 * histogram, clamping instead of underflowing when a worker restart
 * resets the counters. These are the invariants the router's
 * cross-process aggregation and the benchmark's before/after windows
 * lean on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "serve/metrics.hpp"

using namespace com;
using serve::LatencyHistogram;
using Snap = serve::LatencyHistogram::Snapshot;

namespace {

/** Deterministic LCG so the property trials are reproducible. */
class Lcg
{
  public:
    explicit Lcg(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
        return state_ >> 33;
    }

    /** A latency sample spanning many buckets (µs to minutes). */
    double
    nextSeconds()
    {
        // 2^(0..31) microseconds, jittered within the bucket.
        double us = static_cast<double>(1u << (next() % 32)) *
                    (1.0 + static_cast<double>(next() % 100) / 100.0);
        return us * 1e-6;
    }

  private:
    std::uint64_t state_;
};

Snap
histogramOf(const std::vector<double> &samples)
{
    LatencyHistogram h;
    for (double s : samples)
        h.record(s);
    return h.snapshot();
}

/** merge(a, b) == histogram(a ++ b), field by field. */
void
expectMergeMatchesConcatenation(const std::vector<double> &a,
                                const std::vector<double> &b)
{
    std::vector<double> both = a;
    both.insert(both.end(), b.begin(), b.end());
    Snap ref = histogramOf(both);

    Snap merged = histogramOf(a);
    merged.merge(histogramOf(b));

    EXPECT_EQ(merged.count, ref.count);
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i)
        EXPECT_EQ(merged.buckets[i], ref.buckets[i]) << "bucket " << i;
    EXPECT_DOUBLE_EQ(merged.maxSeconds, ref.maxSeconds);
    // Weighted-mean merge vs direct mean differ only in rounding;
    // scale the tolerance so huge (top-bucket) samples pass too.
    EXPECT_NEAR(merged.meanSeconds, ref.meanSeconds,
                1e-9 * std::max(1.0, ref.meanSeconds));
    // Percentiles derive from the buckets alone, so identical
    // buckets must yield identical percentiles.
    EXPECT_DOUBLE_EQ(merged.p50Seconds, ref.p50Seconds);
    EXPECT_DOUBLE_EQ(merged.p95Seconds, ref.p95Seconds);
    EXPECT_DOUBLE_EQ(merged.p99Seconds, ref.p99Seconds);
}

TEST(ObsHistogram, MergeEqualsHistogramOfConcatenatedSamples)
{
    Lcg rng(12345);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<double> a, b;
        std::size_t na = rng.next() % 200;
        std::size_t nb = rng.next() % 200;
        for (std::size_t i = 0; i < na; ++i)
            a.push_back(rng.nextSeconds());
        for (std::size_t i = 0; i < nb; ++i)
            b.push_back(rng.nextSeconds());
        expectMergeMatchesConcatenation(a, b);
    }
}

TEST(ObsHistogram, MergeEmptyWithEmptyIsEmpty)
{
    Snap merged;
    merged.merge(Snap{});
    EXPECT_EQ(merged.count, 0u);
    EXPECT_DOUBLE_EQ(merged.meanSeconds, 0.0);
    EXPECT_DOUBLE_EQ(merged.maxSeconds, 0.0);
    EXPECT_DOUBLE_EQ(merged.p50Seconds, 0.0);
    for (std::uint64_t b : merged.buckets)
        EXPECT_EQ(b, 0u);
}

TEST(ObsHistogram, MergeEmptyWithNonemptyIsIdentity)
{
    std::vector<double> samples = {0.001, 0.010, 0.100};
    expectMergeMatchesConcatenation({}, samples);
    expectMergeMatchesConcatenation(samples, {});
}

TEST(ObsHistogram, MergeHandlesTopBucketOverflow)
{
    // ~31.7 years: far past the last bucket boundary, so both
    // samples land in the clamped top bucket. Merge must keep them
    // there and keep the moments exact.
    std::vector<double> a = {1e9};
    std::vector<double> b = {1e9, 2e9};
    expectMergeMatchesConcatenation(a, b);

    Snap merged = histogramOf(a);
    merged.merge(histogramOf(b));
    EXPECT_EQ(merged.buckets[LatencyHistogram::kBuckets - 1], 3u);
    EXPECT_DOUBLE_EQ(merged.maxSeconds, 2e9);
}

TEST(ObsHistogram, DeltaRecoversTheWindowSamples)
{
    LatencyHistogram h;
    std::vector<double> before_samples = {0.002, 0.004, 0.050};
    std::vector<double> window_samples = {0.001, 0.030, 0.030, 1.5};
    for (double s : before_samples)
        h.record(s);
    Snap before = h.snapshot();
    for (double s : window_samples)
        h.record(s);
    Snap after = h.snapshot();

    Snap ref = histogramOf(window_samples);
    Snap d = Snap::delta(after, before);
    EXPECT_EQ(d.count, ref.count);
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i)
        EXPECT_EQ(d.buckets[i], ref.buckets[i]) << "bucket " << i;
    EXPECT_NEAR(d.meanSeconds, ref.meanSeconds, 1e-9);
    EXPECT_DOUBLE_EQ(d.p50Seconds, ref.p50Seconds);
    // The max cannot be windowed from counters; delta documents it
    // as after's lifetime max (an upper bound for the interval).
    EXPECT_DOUBLE_EQ(d.maxSeconds, after.maxSeconds);
}

TEST(ObsHistogram, DeltaOfIdenticalSnapshotsIsEmpty)
{
    LatencyHistogram h;
    h.record(0.003);
    h.record(0.004);
    Snap snap = h.snapshot();
    Snap d = Snap::delta(snap, snap);
    EXPECT_EQ(d.count, 0u);
    for (std::uint64_t b : d.buckets)
        EXPECT_EQ(b, 0u);
    EXPECT_DOUBLE_EQ(d.meanSeconds, 0.0);
}

TEST(ObsHistogram, DeltaClampsAfterWorkerRestart)
{
    // A restarted worker re-reports from zero, so "after" can be
    // SMALLER than "before". The delta must clamp at zero instead of
    // wrapping to 2^64-garbage.
    LatencyHistogram big;
    for (int i = 0; i < 50; ++i)
        big.record(0.010);
    Snap before = big.snapshot();

    LatencyHistogram fresh;
    fresh.record(0.002); // the restarted worker's single sample
    Snap after = fresh.snapshot();

    Snap d = Snap::delta(after, before);
    // The one bucket that grew (2ms lands lower than 10ms) keeps its
    // sample; the shrunken bucket clamps to zero; count stays the
    // clamped bucket sum so percentiles remain consistent.
    EXPECT_EQ(d.count, 1u);
    std::uint64_t total = 0;
    for (std::uint64_t b : d.buckets)
        total += b;
    EXPECT_EQ(total, d.count);
    EXPECT_LT(d.meanSeconds, 0.010);
    EXPECT_GE(d.meanSeconds, 0.0);
}

TEST(ObsHistogram, MetricsSnapshotMergeFoldsStageHistograms)
{
    serve::Metrics a;
    serve::Metrics b;
    a.queueWait().record(0.001);
    a.execute().record(0.002);
    b.queueWait().record(0.004);
    b.verify().record(0.0005);

    serve::Metrics::Snapshot sa = a.snapshot(1.0, 2);
    serve::Metrics::Snapshot sb = b.snapshot(1.0, 2);
    sa.merge(sb);

    EXPECT_EQ(sa.queueWait.count, 2u);
    EXPECT_EQ(sa.execute.count, 1u);
    EXPECT_EQ(sa.verify.count, 1u);
    EXPECT_EQ(sa.poolWait.count, 0u);
    EXPECT_EQ(sa.warmRestore.count, 0u);
    EXPECT_NEAR(sa.queueWait.meanSeconds, 0.0025, 1e-9);
}

} // namespace
