/**
 * @file
 * Floating point address tests (paper Section 2.2, Figure 2),
 * including the paper's own worked example and parameterized
 * round-trip properties across formats.
 */

#include <gtest/gtest.h>

#include "mem/fp_address.hpp"
#include "sim/logging.hpp"
#include "sim/rng.hpp"

using namespace com;
using mem::FpAddress;
using mem::FpFormat;

TEST(FpAddress, PaperWorkedExample0x8345)
{
    // "the 16-bit floating point address 0x8345 has an exponent of 8.
    //  Thus the offset field is the byte 0x45 and the segment number
    //  is 0x83" (exponent 8 combined with integer part 3).
    mem::FpDecoded d = FpAddress::decode(mem::kFp16, 0x8345);
    EXPECT_EQ(d.exponent, 8u);
    EXPECT_EQ(d.offset, 0x45u);
    EXPECT_EQ(d.segField, 0x3u);
    // The descriptor key combines exponent and integer part.
    std::uint64_t key = FpAddress::segKey(mem::kFp16, 0x8345);
    std::uint64_t exp, field;
    FpAddress::splitSegKey(mem::kFp16, key, exp, field);
    EXPECT_EQ(exp, 8u);
    EXPECT_EQ(field, 3u);
}

TEST(FpAddress, Paper36BitCapacities)
{
    // "a 36 bit floating point address, consisting of a 5 bit exponent
    //  and 31 bit mantissa, accommodates 8 billion segments and
    //  supports segments of up to 2 billion words long."
    EXPECT_EQ(mem::kFp36.maxSegmentWords(), 1ull << 31); // 2 G words
    // Total names across all exponents: sum of 2^(31-e) ~ 2^32.
    EXPECT_GT(mem::kFp36.numSegmentNames(), 4'000'000'000ull);
}

TEST(FpAddress, ComposeDecodeRoundTrip)
{
    std::uint64_t raw = FpAddress::compose(mem::kFp32, 8, 0x1234, 0x45);
    mem::FpDecoded d = FpAddress::decode(mem::kFp32, raw);
    EXPECT_EQ(d.exponent, 8u);
    EXPECT_EQ(d.segField, 0x1234u);
    EXPECT_EQ(d.offset, 0x45u);
}

TEST(FpAddress, ComposeRejectsOversizedOffset)
{
    EXPECT_THROW(FpAddress::compose(mem::kFp32, 4, 1, 16),
                 sim::PanicError);
}

TEST(FpAddress, ComposeRejectsOversizedExponent)
{
    EXPECT_THROW(FpAddress::compose(mem::kFp32, 28, 0, 0),
                 sim::PanicError);
}

TEST(FpAddress, ExponentForSizes)
{
    EXPECT_EQ(FpAddress::exponentFor(mem::kFp32, 1), 0u);
    EXPECT_EQ(FpAddress::exponentFor(mem::kFp32, 2), 1u);
    EXPECT_EQ(FpAddress::exponentFor(mem::kFp32, 3), 2u);
    EXPECT_EQ(FpAddress::exponentFor(mem::kFp32, 32), 5u);
    EXPECT_EQ(FpAddress::exponentFor(mem::kFp32, 33), 6u);
}

TEST(FpAddress, AddOffsetStaysInSegmentWithinExponent)
{
    std::uint64_t base = FpAddress::compose(mem::kFp32, 8, 7, 0);
    for (std::uint64_t i = 0; i < 256; ++i) {
        std::uint64_t a = FpAddress::addOffset(
            mem::kFp32, base, static_cast<std::int64_t>(i));
        EXPECT_EQ(FpAddress::segKey(mem::kFp32, a),
                  FpAddress::segKey(mem::kFp32, base));
        EXPECT_EQ(FpAddress::decode(mem::kFp32, a).offset, i);
    }
    // One more word carries into the integer part: different segment.
    std::uint64_t over = FpAddress::addOffset(mem::kFp32, base, 256);
    EXPECT_NE(FpAddress::segKey(mem::kFp32, over),
              FpAddress::segKey(mem::kFp32, base));
}

TEST(FpAddress, ToStringIsReadable)
{
    std::uint64_t raw = FpAddress::compose(mem::kFp16, 8, 3, 0x45);
    EXPECT_EQ(FpAddress::toString(mem::kFp16, raw),
              "fp[e=8 seg=0x3 off=0x45]");
}

// ---------------------------------------------------------------------
// Property sweep: random compose/decode round trips per format.
// ---------------------------------------------------------------------

class FpFormatProperty : public ::testing::TestWithParam<FpFormat>
{
};

TEST_P(FpFormatProperty, RandomRoundTrips)
{
    const FpFormat fmt = GetParam();
    sim::Rng rng(fmt.expBits * 1000 + fmt.mantissaBits);
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t exp = rng.below(fmt.maxExponent() + 1);
        std::uint64_t max_field = 1ull << (fmt.mantissaBits - exp);
        std::uint64_t field = rng.below(max_field);
        std::uint64_t off = rng.below(1ull << exp);
        std::uint64_t raw = FpAddress::compose(fmt, exp, field, off);
        mem::FpDecoded d = FpAddress::decode(fmt, raw);
        ASSERT_EQ(d.exponent, exp);
        ASSERT_EQ(d.segField, field);
        ASSERT_EQ(d.offset, off);
        ASSERT_LE(raw, (1ull << fmt.width()) - 1);
    }
}

TEST_P(FpFormatProperty, SegKeysDisambiguateAcrossExponents)
{
    // The same mantissa bits under different exponents must name
    // different descriptors (that is the point of combining the
    // exponent into the key).
    const FpFormat fmt = GetParam();
    for (std::uint64_t e1 = 0; e1 < fmt.maxExponent(); ++e1) {
        // Segment field 0 exists for every exponent.
        std::uint64_t a = FpAddress::compose(fmt, e1, 0, 0);
        std::uint64_t b = FpAddress::compose(fmt, e1 + 1, 0, 0);
        ASSERT_NE(FpAddress::segKey(fmt, a), FpAddress::segKey(fmt, b));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, FpFormatProperty,
    ::testing::Values(mem::kFp16, mem::kFp32, mem::kFp36,
                      FpFormat{3, 12}, FpFormat{6, 40}),
    [](const ::testing::TestParamInfo<FpFormat> &info) {
        return "e" + std::to_string(info.param.expBits) + "m" +
               std::to_string(info.param.mantissaBits);
    });
