/**
 * @file
 * Context cache tests (paper Sections 2.3, 3.6, Figure 7): access
 * vectors, clear-on-allocate, call/return vector movement, copy-back,
 * process-switch survival and the context pool's one-reference
 * free-list discipline.
 */

#include <gtest/gtest.h>

#include "cache/context_cache.hpp"
#include "mem/absolute_space.hpp"
#include "mem/segment_table.hpp"
#include "mem/tagged_memory.hpp"
#include "obj/context.hpp"

using namespace com;
using cache::ContextCache;
using cache::CtxVia;
using mem::Word;

namespace {

mem::AbsAddr
ctxAbs(int i)
{
    return static_cast<mem::AbsAddr>(0x10000 + i * 32);
}

} // namespace

TEST(ContextCache, AllocateClearsAndSetsVectors)
{
    mem::TaggedMemory memory;
    // Pre-dirty the backing store to prove clear-on-allocate.
    memory.poke(ctxAbs(0) + 5, Word::fromInt(77));

    ContextCache cc(memory, 8, 32, 2);
    EXPECT_EQ(cc.allocateNext(ctxAbs(0)), 0u); // no stall: free block
    EXPECT_NE(cc.nextVector(), 0u);
    EXPECT_EQ(cc.currentVector(), 0u);
    // The block was cleared in one operation: no stale data, no
    // fault-in from memory.
    EXPECT_TRUE(cc.read(CtxVia::Next, 5).isUninit());
    EXPECT_EQ(cc.allocations(), 1u);
}

TEST(ContextCache, CallMovesNextToCurrent)
{
    mem::TaggedMemory memory;
    ContextCache cc(memory, 8, 32, 2);
    cc.allocateNext(ctxAbs(0));
    std::uint64_t next_vec = cc.nextVector();
    cc.callAdvance();
    EXPECT_EQ(cc.currentVector(), next_vec);
    EXPECT_EQ(cc.nextVector(), 0u);
    EXPECT_EQ(cc.currentAbs(), ctxAbs(0));
}

TEST(ContextCache, ReturnRecyclesCurrentAsNext)
{
    mem::TaggedMemory memory;
    ContextCache cc(memory, 8, 32, 2);
    // caller = ctx0 becomes current; callee = ctx1.
    cc.allocateNext(ctxAbs(0));
    cc.callAdvance();
    cc.allocateNext(ctxAbs(1));
    cc.callAdvance(); // ctx1 current
    cc.allocateNext(ctxAbs(2));

    std::uint64_t callee_vec = cc.currentVector();
    std::uint64_t stall = cc.returnRestore(ctxAbs(0));
    EXPECT_EQ(stall, 0u); // caller resident: directory hit
    EXPECT_EQ(cc.returnHits(), 1u);
    // "the current vector is moved back to the next vector".
    EXPECT_EQ(cc.nextVector(), callee_vec);
    EXPECT_EQ(cc.currentAbs(), ctxAbs(0));
}

TEST(ContextCache, ReturnFaultsInCopiedBackCaller)
{
    mem::TaggedMemory memory;
    ContextCache cc(memory, 4, 32, 0); // tiny, no background copyback
    cc.allocateNext(ctxAbs(0));
    cc.callAdvance();
    cc.write(CtxVia::Current, 7, Word::fromInt(42));

    // Bury ctx0 under enough allocations to evict it.
    for (int i = 1; i <= 4; ++i) {
        cc.allocateNext(ctxAbs(i));
        cc.callAdvance();
    }
    EXPECT_FALSE(cc.isResident(ctxAbs(0)));

    std::uint64_t stall = cc.returnRestore(ctxAbs(0));
    EXPECT_GT(stall, 0u);
    EXPECT_EQ(cc.returnMisses(), 1u);
    // The contents survived the round trip through memory.
    EXPECT_EQ(cc.read(CtxVia::Current, 7).asInt(), 42);
}

TEST(ContextCache, ProcessSwitchPreservesResidentContexts)
{
    // Advantage 2: "Since it associates on absolute addresses the
    // context cache need not be invalidated on a process switch."
    mem::TaggedMemory memory;
    ContextCache cc(memory, 8, 32, 2);
    cc.allocateNext(ctxAbs(0)); // process A
    cc.callAdvance();
    cc.write(CtxVia::Current, 3, Word::fromInt(111));
    cc.allocateNext(ctxAbs(1));

    // Switch to process B.
    cc.switchTo(ctxAbs(10), ctxAbs(11));
    cc.write(CtxVia::Current, 3, Word::fromInt(222));

    // Switch back: process A's context is still resident — no stall.
    std::uint64_t stall = cc.switchTo(ctxAbs(0), ctxAbs(1));
    EXPECT_EQ(stall, 0u);
    EXPECT_EQ(cc.read(CtxVia::Current, 3).asInt(), 111);
}

TEST(ContextCache, MaintainCopiesBackAtLowWater)
{
    mem::TaggedMemory memory;
    ContextCache cc(memory, 4, 32, 2);
    for (int i = 0; i < 3; ++i) {
        cc.allocateNext(ctxAbs(i));
        cc.callAdvance();
    }
    ASSERT_LE(cc.freeBlocks(), 2u);
    std::uint64_t before = cc.copybacks();
    cc.maintain();
    EXPECT_EQ(cc.copybacks(), before + 1);
    EXPECT_GE(cc.freeBlocks(), 2u);
}

TEST(ContextCache, MaintainPrefetchesReturnChain)
{
    mem::TaggedMemory memory;
    ContextCache cc(memory, 8, 32, 2);
    // Seed memory with two contexts that are NOT resident.
    memory.poke(ctxAbs(5) + 1, Word::fromInt(55));
    memory.poke(ctxAbs(6) + 1, Word::fromInt(66));
    cc.allocateNext(ctxAbs(0));
    cc.callAdvance();
    ASSERT_GT(cc.freeBlocks(), 4u); // more than half free
    cc.maintain({ctxAbs(5), ctxAbs(6)});
    EXPECT_TRUE(cc.isResident(ctxAbs(5)));
    EXPECT_TRUE(cc.isResident(ctxAbs(6)));
}

TEST(ContextCache, DiscardDropsWithoutWriteback)
{
    mem::TaggedMemory memory;
    ContextCache cc(memory, 8, 32, 2);
    cc.allocateNext(ctxAbs(0));
    cc.write(CtxVia::Next, 4, Word::fromInt(9));
    cc.discard(ctxAbs(0));
    EXPECT_FALSE(cc.isResident(ctxAbs(0)));
    // The dead value never reached memory.
    EXPECT_TRUE(memory.peek(ctxAbs(0) + 4).isUninit());
}

TEST(ContextCache, FlushAllWritesDirtyBlocks)
{
    mem::TaggedMemory memory;
    ContextCache cc(memory, 8, 32, 2);
    cc.allocateNext(ctxAbs(0));
    cc.write(CtxVia::Next, 4, Word::fromInt(1234));
    cc.flushAll();
    EXPECT_EQ(memory.peek(ctxAbs(0) + 4).asInt(), 1234);
}

TEST(ContextCache, VectorsAreSingletonOrEmpty)
{
    mem::TaggedMemory memory;
    ContextCache cc(memory, 8, 32, 2);
    cc.allocateNext(ctxAbs(0));
    cc.callAdvance();
    cc.allocateNext(ctxAbs(1));
    auto popcount = [](std::uint64_t v) {
        int n = 0;
        while (v) {
            v &= v - 1;
            ++n;
        }
        return n;
    };
    EXPECT_EQ(popcount(cc.currentVector()), 1);
    EXPECT_EQ(popcount(cc.nextVector()), 1);
    EXPECT_EQ(cc.currentVector() & cc.nextVector(), 0u);
    EXPECT_EQ((cc.currentVector() | cc.nextVector()) & cc.freeVector(),
              0u);
}

// ---------------------------------------------------------------------
// Context pool: the one-memory-reference free list (Section 2.3).
// ---------------------------------------------------------------------

namespace {

struct PoolEnv
{
    mem::TaggedMemory memory;
    mem::AbsoluteSpace space{0, 24};
    mem::SegmentTable table{mem::kFp32, space, 0};
    obj::ContextPool pool{table, memory, 18, 16};
};

} // namespace

TEST(ContextPool, AllocateIsOneMemoryReference)
{
    PoolEnv env;
    std::uint64_t reads = env.memory.reads();
    env.pool.allocate();
    EXPECT_EQ(env.memory.reads(), reads + 1);
}

TEST(ContextPool, FreeIsOneMemoryReference)
{
    PoolEnv env;
    auto ctx = env.pool.allocate();
    std::uint64_t writes = env.memory.writes();
    env.pool.free(ctx.vaddr, true);
    EXPECT_EQ(env.memory.writes(), writes + 1);
}

TEST(ContextPool, LifoRecyclingReusesMostRecentFree)
{
    PoolEnv env;
    auto a = env.pool.allocate();
    auto b = env.pool.allocate();
    env.pool.free(b.vaddr, true);
    env.pool.free(a.vaddr, true);
    auto c = env.pool.allocate();
    EXPECT_EQ(c.vaddr, a.vaddr); // most recently freed comes first
}

TEST(ContextPool, ExhaustionIsFatal)
{
    PoolEnv env;
    for (int i = 0; i < 16; ++i)
        env.pool.allocate();
    EXPECT_THROW(env.pool.allocate(), sim::FatalError);
}

TEST(ContextPool, TracksLifoVersusGcFrees)
{
    PoolEnv env;
    auto a = env.pool.allocate();
    auto b = env.pool.allocate();
    env.pool.free(a.vaddr, true);
    env.pool.free(b.vaddr, false);
    EXPECT_EQ(env.pool.lifoFrees(), 1u);
    EXPECT_EQ(env.pool.gcFrees(), 1u);
}

TEST(ContextPool, AbsVaddrMappingRoundTrips)
{
    PoolEnv env;
    auto a = env.pool.allocate();
    EXPECT_EQ(env.pool.absOf(a.vaddr), a.abs);
    EXPECT_EQ(env.pool.vaddrOf(a.abs), a.vaddr);
    EXPECT_TRUE(env.pool.containsAbs(a.abs));
    EXPECT_FALSE(env.pool.containsAbs(a.abs + 16 * 32));
}

TEST(ContextPool, HighWaterTracksPeak)
{
    PoolEnv env;
    auto a = env.pool.allocate();
    auto b = env.pool.allocate();
    env.pool.free(b.vaddr, true);
    env.pool.free(a.vaddr, true);
    EXPECT_EQ(env.pool.highWater(), 2u);
    EXPECT_EQ(env.pool.liveCount(), 0u);
}
