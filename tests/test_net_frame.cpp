/**
 * @file
 * The wire-protocol frame codec (net/frame.hpp): round trips of every
 * frame type across field combinations, rejection of truncated /
 * oversized / garbage streams without poisoning the connection, a
 * corruption sweep (every payload byte of a valid frame flipped must
 * never crash, only decode-or-reject), version-mismatch refusal, and
 * the fixed-offset request-id patching the router forwards by.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "mem/word.hpp"
#include "net/frame.hpp"

using namespace com;
using net::DecodeStatus;
using net::FrameType;
using net::FrameView;

namespace {

net::RunRequestFrame
sampleRequest()
{
    net::RunRequestFrame req;
    req.requestId = 0x1122334455667788ull;
    req.kind = api::EngineKind::Stack;
    req.language = api::Language::Smalltalk;
    req.name = "fib";
    req.source = "fib := [:n | ...]";
    req.args = {mem::Word(7, mem::Tag::SmallInt),
                mem::Word(0x1234, mem::Tag::ObjectPtr)};
    req.hasExpected = true;
    req.expected = -42;
    req.deadlineMs = 1500;
    return req;
}

/** Peek one whole frame out of @p bytes, asserting success. */
FrameView
peekOk(const std::string &bytes)
{
    FrameView view;
    std::size_t consumed = 0;
    EXPECT_EQ(net::peekFrame(bytes, &view, &consumed),
              DecodeStatus::Frame);
    EXPECT_EQ(consumed, bytes.size());
    return view;
}

TEST(NetFrame, RunRequestRoundTripsEveryField)
{
    net::RunRequestFrame req = sampleRequest();
    std::string bytes = net::encodeRunRequest(req);
    FrameView view = peekOk(bytes);
    EXPECT_EQ(view.type, FrameType::RunRequest);
    EXPECT_EQ(view.requestId, req.requestId);

    net::RunRequestFrame back;
    ASSERT_TRUE(net::decodeRunRequest(view, &back));
    EXPECT_EQ(back.requestId, req.requestId);
    EXPECT_EQ(back.kind, req.kind);
    EXPECT_EQ(back.language, req.language);
    EXPECT_EQ(back.name, req.name);
    EXPECT_EQ(back.source, req.source);
    ASSERT_EQ(back.args.size(), req.args.size());
    for (std::size_t i = 0; i < req.args.size(); ++i) {
        EXPECT_EQ(back.args[i].bits(), req.args[i].bits());
        EXPECT_EQ(back.args[i].tag(), req.args[i].tag());
    }
    EXPECT_TRUE(back.hasExpected);
    EXPECT_EQ(back.expected, req.expected);
    EXPECT_EQ(back.deadlineMs, req.deadlineMs);
}

TEST(NetFrame, RunRequestRoundTripsEmptyAndNoExpected)
{
    net::RunRequestFrame req; // all defaults: empty strings, no args
    std::string bytes = net::encodeRunRequest(req);
    net::RunRequestFrame back;
    ASSERT_TRUE(net::decodeRunRequest(peekOk(bytes), &back));
    EXPECT_EQ(back.requestId, 0u);
    EXPECT_TRUE(back.name.empty());
    EXPECT_TRUE(back.source.empty());
    EXPECT_TRUE(back.args.empty());
    EXPECT_FALSE(back.hasExpected);
    EXPECT_EQ(back.deadlineMs, 0u);
}

TEST(NetFrame, SpecConversionRoundTrips)
{
    api::ProgramSpec spec =
        api::ProgramSpec::fith("fith:add", "1 2 + .");
    spec.args = {mem::Word(9, mem::Tag::SmallInt)};
    spec.hasExpected = true;
    spec.expected = 3;

    net::RunRequestFrame req = net::RunRequestFrame::fromSpec(
        5, api::EngineKind::Fith, spec, 250);
    api::ProgramSpec back = req.toSpec();
    EXPECT_EQ(back.language, spec.language);
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.source, spec.source);
    ASSERT_EQ(back.args.size(), 1u);
    EXPECT_EQ(back.args[0].bits(), 9u);
    EXPECT_TRUE(back.hasExpected);
    EXPECT_EQ(back.expected, 3);
}

TEST(NetFrame, RunResponseRoundTripsEveryField)
{
    net::RunResponseFrame resp;
    resp.requestId = 99;
    resp.status = serve::ResponseStatus::Failed;
    resp.ok = true;
    resp.result = mem::Word(0xBEEF, mem::Tag::SmallInt);
    resp.resultText = "48879";
    resp.output = "line one\nline two\n";
    resp.outcomeError = "guest trap";
    resp.error = "checksum mismatch";
    resp.engine = "stack";
    resp.program = "fib";
    resp.operations = 1234567;
    resp.cycles = 7654321;
    resp.latencySeconds = 0.251;
    resp.batchSize = 8;
    resp.shard = 3;

    std::string bytes = net::encodeRunResponse(resp);
    FrameView view = peekOk(bytes);
    EXPECT_EQ(view.type, FrameType::RunResponse);

    net::RunResponseFrame back;
    ASSERT_TRUE(net::decodeRunResponse(view, &back));
    EXPECT_EQ(back.requestId, resp.requestId);
    EXPECT_EQ(back.status, resp.status);
    EXPECT_EQ(back.ok, resp.ok);
    EXPECT_EQ(back.result.bits(), resp.result.bits());
    EXPECT_EQ(back.result.tag(), resp.result.tag());
    EXPECT_EQ(back.resultText, resp.resultText);
    EXPECT_EQ(back.output, resp.output);
    EXPECT_EQ(back.outcomeError, resp.outcomeError);
    EXPECT_EQ(back.error, resp.error);
    EXPECT_EQ(back.engine, resp.engine);
    EXPECT_EQ(back.program, resp.program);
    EXPECT_EQ(back.operations, resp.operations);
    EXPECT_EQ(back.cycles, resp.cycles);
    EXPECT_DOUBLE_EQ(back.latencySeconds, resp.latencySeconds);
    EXPECT_EQ(back.batchSize, resp.batchSize);
    EXPECT_EQ(back.shard, resp.shard);
}

TEST(NetFrame, ResponseConversionRoundTrips)
{
    serve::Response r;
    r.status = serve::ResponseStatus::Ok;
    r.outcome.ok = true;
    r.outcome.result = mem::Word(21, mem::Tag::SmallInt);
    r.outcome.resultText = "21";
    r.outcome.output = "out";
    r.outcome.operations = 10;
    r.outcome.cycles = 20;
    r.outcome.engine = "com";
    r.outcome.program = "p";
    r.latencySeconds = 0.5;
    r.batchSize = 2;
    r.shard = 1;

    net::RunResponseFrame frame =
        net::RunResponseFrame::fromResponse(7, r);
    serve::Response back = frame.toResponse();
    EXPECT_EQ(back.status, r.status);
    EXPECT_EQ(back.outcome.ok, r.outcome.ok);
    EXPECT_EQ(back.outcome.result.bits(), r.outcome.result.bits());
    EXPECT_EQ(back.outcome.output, r.outcome.output);
    EXPECT_EQ(back.outcome.operations, r.outcome.operations);
    EXPECT_DOUBLE_EQ(back.latencySeconds, r.latencySeconds);
    EXPECT_EQ(back.batchSize, r.batchSize);
    EXPECT_EQ(back.shard, r.shard);
}

TEST(NetFrame, ErrorFrameRoundTrips)
{
    net::ErrorFrame err;
    err.requestId = 11;
    err.code = net::ErrorCode::WorkerLost;
    err.message = "worker died too often";
    std::string bytes = net::encodeError(err);
    FrameView view = peekOk(bytes);
    EXPECT_EQ(view.type, FrameType::Error);
    net::ErrorFrame back;
    ASSERT_TRUE(net::decodeError(view, &back));
    EXPECT_EQ(back.requestId, err.requestId);
    EXPECT_EQ(back.code, err.code);
    EXPECT_EQ(back.message, err.message);
}

TEST(NetFrame, MetricsRoundTripsHistogramBuckets)
{
    net::MetricsResponseFrame m;
    m.requestId = 4;
    m.snapshot.submitted = 100;
    m.snapshot.served = 90;
    m.snapshot.failed = 1;
    m.snapshot.rejected = 5;
    m.snapshot.expired = 4;
    m.snapshot.batches = 30;
    m.snapshot.meanBatch = 3.0;
    m.snapshot.maxBatch = 8;
    m.snapshot.utilization = 0.75;
    m.snapshot.batchedRequests = 90;
    m.snapshot.workers = 4;
    m.snapshot.wallSeconds = 2.5;
    m.snapshot.busySeconds = 7.5;
    m.snapshot.workerSeconds = 10.0;
    m.snapshot.cacheHits = 42;
    m.snapshot.warmStarts = 17;
    m.snapshot.warmStartNanos = 12345678;
    m.snapshot.latency.count = 90;
    m.snapshot.latency.meanSeconds = 0.01;
    m.snapshot.latency.maxSeconds = 0.2;
    m.snapshot.latency.buckets[3] = 50;
    m.snapshot.latency.buckets[10] = 40;

    std::string bytes = net::encodeMetricsResponse(m);
    FrameView view = peekOk(bytes);
    EXPECT_EQ(view.type, FrameType::MetricsResponse);

    net::MetricsResponseFrame back;
    ASSERT_TRUE(net::decodeMetricsResponse(view, &back));
    EXPECT_EQ(back.snapshot.submitted, 100u);
    EXPECT_EQ(back.snapshot.served, 90u);
    EXPECT_EQ(back.snapshot.rejected, 5u);
    EXPECT_DOUBLE_EQ(back.snapshot.meanBatch, 3.0);
    EXPECT_DOUBLE_EQ(back.snapshot.busySeconds, 7.5);
    EXPECT_EQ(back.snapshot.workers, 4u);
    EXPECT_EQ(back.snapshot.cacheHits, 42u);
    EXPECT_EQ(back.snapshot.warmStartNanos, 12345678u);
    EXPECT_EQ(back.snapshot.latency.count, 90u);
    EXPECT_EQ(back.snapshot.latency.buckets[3], 50u);
    EXPECT_EQ(back.snapshot.latency.buckets[10], 40u);
}

TEST(NetFrame, MetricsRoundTripsStageHistograms)
{
    // v2: the five per-stage histograms travel with the snapshot,
    // buckets and moments intact, so the router can merge them
    // exactly across worker processes.
    net::MetricsResponseFrame m;
    m.requestId = 6;
    m.snapshot.queueWait.count = 10;
    m.snapshot.queueWait.meanSeconds = 0.002;
    m.snapshot.queueWait.maxSeconds = 0.02;
    m.snapshot.queueWait.buckets[5] = 7;
    m.snapshot.queueWait.buckets[9] = 3;
    m.snapshot.poolWait.count = 10;
    m.snapshot.poolWait.buckets[2] = 10;
    m.snapshot.warmRestore.count = 4;
    m.snapshot.warmRestore.buckets[1] = 4;
    m.snapshot.execute.count = 9;
    m.snapshot.execute.meanSeconds = 0.5;
    m.snapshot.execute.buckets[19] = 9;
    m.snapshot.verify.count = 9;
    m.snapshot.verify.buckets[0] = 9;

    net::MetricsResponseFrame back;
    ASSERT_TRUE(net::decodeMetricsResponse(
        peekOk(net::encodeMetricsResponse(m)), &back));
    EXPECT_EQ(back.snapshot.queueWait.count, 10u);
    EXPECT_DOUBLE_EQ(back.snapshot.queueWait.meanSeconds, 0.002);
    EXPECT_DOUBLE_EQ(back.snapshot.queueWait.maxSeconds, 0.02);
    EXPECT_EQ(back.snapshot.queueWait.buckets[5], 7u);
    EXPECT_EQ(back.snapshot.queueWait.buckets[9], 3u);
    EXPECT_EQ(back.snapshot.poolWait.buckets[2], 10u);
    EXPECT_EQ(back.snapshot.warmRestore.buckets[1], 4u);
    EXPECT_DOUBLE_EQ(back.snapshot.execute.meanSeconds, 0.5);
    EXPECT_EQ(back.snapshot.execute.buckets[19], 9u);
    EXPECT_EQ(back.snapshot.verify.buckets[0], 9u);
}

TEST(NetFrame, RunResponseRoundTripsWarmRestoreSeconds)
{
    net::RunResponseFrame resp;
    resp.requestId = 12;
    resp.status = serve::ResponseStatus::Ok;
    resp.warmRestoreSeconds = 0.00125;
    net::RunResponseFrame back;
    ASSERT_TRUE(net::decodeRunResponse(
        peekOk(net::encodeRunResponse(resp)), &back));
    EXPECT_DOUBLE_EQ(back.warmRestoreSeconds, 0.00125);
}

serve::FlightSpan
sampleSpan()
{
    serve::FlightSpan s;
    s.seq = 41;
    s.submitNanos = 123456789;
    s.queueUs = 10;
    s.poolUs = 20;
    s.warmUs = 30;
    s.execUs = 40;
    s.verifyUs = 50;
    s.totalUs = 150;
    s.status = serve::ResponseStatus::Failed;
    s.kind = api::EngineKind::Fith;
    s.shard = 3;
    s.batchSize = 6;
    s.slow = false;
    s.program = "hot-loop";
    return s;
}

TEST(NetFrame, TraceRequestEncodes)
{
    FrameView view = peekOk(net::encodeTraceRequest(31337));
    EXPECT_EQ(view.type, FrameType::TraceRequest);
    EXPECT_EQ(view.requestId, 31337u);
}

TEST(NetFrame, TraceResponseRoundTripsEveryField)
{
    net::TraceResponseFrame f;
    f.requestId = 21;
    f.spans.push_back(sampleSpan());
    serve::FlightSpan slow = sampleSpan();
    slow.slow = true;
    // Slow-capture spans keep names past the ring's 24-char pack;
    // the wire codec must carry them whole.
    slow.program = std::string(40, 'z');
    f.spans.push_back(slow);

    std::string bytes = net::encodeTraceResponse(f);
    FrameView view = peekOk(bytes);
    EXPECT_EQ(view.type, FrameType::TraceResponse);

    net::TraceResponseFrame back;
    ASSERT_TRUE(net::decodeTraceResponse(view, &back));
    EXPECT_EQ(back.requestId, 21u);
    ASSERT_EQ(back.spans.size(), 2u);
    const serve::FlightSpan &a = back.spans[0];
    const serve::FlightSpan &in = f.spans[0];
    EXPECT_EQ(a.seq, in.seq);
    EXPECT_EQ(a.submitNanos, in.submitNanos);
    EXPECT_EQ(a.queueUs, in.queueUs);
    EXPECT_EQ(a.poolUs, in.poolUs);
    EXPECT_EQ(a.warmUs, in.warmUs);
    EXPECT_EQ(a.execUs, in.execUs);
    EXPECT_EQ(a.verifyUs, in.verifyUs);
    EXPECT_EQ(a.totalUs, in.totalUs);
    EXPECT_EQ(a.status, in.status);
    EXPECT_EQ(a.kind, in.kind);
    EXPECT_EQ(a.shard, in.shard);
    EXPECT_EQ(a.batchSize, in.batchSize);
    EXPECT_FALSE(a.slow);
    EXPECT_EQ(a.program, "hot-loop");
    EXPECT_TRUE(back.spans[1].slow);
    EXPECT_EQ(back.spans[1].program, std::string(40, 'z'));
}

TEST(NetFrame, TraceResponseRoundTripsEmpty)
{
    net::TraceResponseFrame f;
    f.requestId = 1;
    net::TraceResponseFrame back;
    ASSERT_TRUE(net::decodeTraceResponse(
        peekOk(net::encodeTraceResponse(f)), &back));
    EXPECT_TRUE(back.spans.empty());
}

TEST(NetFrame, TraceResponseRejectsLyingSpanCount)
{
    // A count the payload cannot possibly hold must be rejected
    // before any reserve() — a 4-byte lie must not cost gigabytes.
    net::TraceResponseFrame f;
    f.requestId = 2;
    f.spans.push_back(sampleSpan());
    std::string bytes = net::encodeTraceResponse(f);
    std::uint32_t huge = 0xFFFFFFFFu;
    // Payload layout: u64 request id, then the u32 span count.
    std::memcpy(&bytes[net::kHeaderSize + 8], &huge, sizeof(huge));

    net::TraceResponseFrame back;
    EXPECT_FALSE(net::decodeTraceResponse(peekOk(bytes), &back));
}

TEST(NetFrame, TraceResponseRejectsBadEnumBytes)
{
    net::TraceResponseFrame f;
    f.requestId = 3;
    f.spans.push_back(sampleSpan());
    std::string pristine = net::encodeTraceResponse(f);
    // First span starts at payload offset 12; status and kind are
    // the two bytes after its six u32 durations and two u64s.
    std::size_t status_at = net::kHeaderSize + 12 + 40;

    std::string bad_status = pristine;
    bad_status[status_at] = 9; // > Failed
    net::TraceResponseFrame back;
    EXPECT_FALSE(
        net::decodeTraceResponse(peekOk(bad_status), &back));

    std::string bad_kind = pristine;
    bad_kind[status_at + 1] = 7; // >= kNumEngineKinds
    EXPECT_FALSE(net::decodeTraceResponse(peekOk(bad_kind), &back));
}

TEST(NetFrame, TraceResponseTruncationIsSkippableNotFatal)
{
    net::TraceResponseFrame f;
    f.requestId = 4;
    f.spans.push_back(sampleSpan());
    std::string bytes = net::encodeTraceResponse(f);
    std::string cut = bytes.substr(0, bytes.size() - 3);
    std::uint32_t len =
        static_cast<std::uint32_t>(cut.size() - net::kHeaderSize);
    std::memcpy(&cut[8], &len, sizeof(len));

    FrameView view;
    std::size_t consumed = 0;
    ASSERT_EQ(net::peekFrame(cut, &view, &consumed),
              DecodeStatus::Frame);
    net::TraceResponseFrame back;
    EXPECT_FALSE(net::decodeTraceResponse(view, &back));
}

TEST(NetFrame, TraceCorruptionSweepNeverCrashes)
{
    net::TraceResponseFrame f;
    f.requestId = 5;
    f.spans.push_back(sampleSpan());
    serve::FlightSpan second = sampleSpan();
    second.program = "other";
    f.spans.push_back(second);
    std::string pristine = net::encodeTraceResponse(f);
    for (std::size_t i = net::kHeaderSize; i < pristine.size(); ++i) {
        for (unsigned char flip : {0x00, 0xFF, 0x80, 0x01}) {
            std::string bytes = pristine;
            bytes[i] = static_cast<char>(bytes[i] ^ flip);
            FrameView view;
            std::size_t consumed = 0;
            if (net::peekFrame(bytes, &view, &consumed) !=
                DecodeStatus::Frame)
                continue;
            net::TraceResponseFrame back;
            (void)net::decodeTraceResponse(view, &back);
        }
    }
}

TEST(NetFrame, TruncatedStreamsWantMoreBytes)
{
    std::string bytes = net::encodeRunRequest(sampleRequest());
    // Every proper prefix is NeedMore — never an error, never a frame.
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        FrameView view;
        std::size_t consumed = 0;
        EXPECT_EQ(net::peekFrame(
                      reinterpret_cast<const unsigned char *>(
                          bytes.data()),
                      len, &view, &consumed),
                  DecodeStatus::NeedMore)
            << "at prefix length " << len;
    }
}

TEST(NetFrame, GarbageIsBadMagicEvenPartially)
{
    std::string garbage = "GET / HTTP/1.1\r\n";
    FrameView view;
    std::size_t consumed = 0;
    EXPECT_EQ(net::peekFrame(garbage, &view, &consumed),
              DecodeStatus::BadMagic);
    // Even before a whole header arrives, wrong leading bytes are
    // already BadMagic (a server need not buffer 12 bytes of HTTP
    // before rejecting it).
    std::string partial = "GE";
    EXPECT_EQ(net::peekFrame(partial, &view, &consumed),
              DecodeStatus::BadMagic);
}

TEST(NetFrame, OversizedLengthIsRejected)
{
    std::string bytes = net::encodeRunRequest(sampleRequest());
    std::uint32_t huge = net::kMaxPayloadBytes + 1;
    std::memcpy(&bytes[8], &huge, sizeof(huge)); // length field (LE)
    FrameView view;
    std::size_t consumed = 0;
    EXPECT_EQ(net::peekFrame(bytes, &view, &consumed),
              DecodeStatus::TooLarge);
}

TEST(NetFrame, VersionMismatchIsRefused)
{
    std::string bytes = net::encodeRunRequest(sampleRequest());
    bytes[4] = static_cast<char>(net::kProtocolVersion + 1);
    FrameView view;
    std::size_t consumed = 0;
    EXPECT_EQ(net::peekFrame(bytes, &view, &consumed),
              DecodeStatus::BadVersion);
}

TEST(NetFrame, MalformedPayloadIsSkippableNotFatal)
{
    // Truncate the payload but fix the header length to match: the
    // frame peeks fine (header is valid) but the typed decode fails,
    // so a server can skip it and keep the connection.
    std::string bytes = net::encodeRunRequest(sampleRequest());
    std::string cut = bytes.substr(0, bytes.size() - 5);
    std::uint32_t len =
        static_cast<std::uint32_t>(cut.size() - net::kHeaderSize);
    std::memcpy(&cut[8], &len, sizeof(len));

    FrameView view;
    std::size_t consumed = 0;
    ASSERT_EQ(net::peekFrame(cut, &view, &consumed),
              DecodeStatus::Frame);
    net::RunRequestFrame back;
    EXPECT_FALSE(net::decodeRunRequest(view, &back));
}

TEST(NetFrame, CorruptionSweepNeverCrashes)
{
    // Flip every payload byte of a valid frame through a few values:
    // the decoder must always either succeed or reject — reading out
    // of bounds or crashing is the bug this sweeps for.
    std::string pristine = net::encodeRunRequest(sampleRequest());
    for (std::size_t i = net::kHeaderSize; i < pristine.size(); ++i) {
        for (unsigned char flip : {0x00, 0xFF, 0x80, 0x01}) {
            std::string bytes = pristine;
            bytes[i] = static_cast<char>(bytes[i] ^ flip);
            FrameView view;
            std::size_t consumed = 0;
            if (net::peekFrame(bytes, &view, &consumed) !=
                DecodeStatus::Frame)
                continue; // header corrupted; rejected earlier
            net::RunRequestFrame back;
            (void)net::decodeRunRequest(view, &back);
        }
    }
    // Same sweep through the response decoder.
    net::RunResponseFrame resp;
    resp.requestId = 1;
    resp.output = "abc";
    resp.engine = "com";
    pristine = net::encodeRunResponse(resp);
    for (std::size_t i = net::kHeaderSize; i < pristine.size(); ++i) {
        for (unsigned char flip : {0x00, 0xFF, 0x80, 0x01}) {
            std::string bytes = pristine;
            bytes[i] = static_cast<char>(bytes[i] ^ flip);
            FrameView view;
            std::size_t consumed = 0;
            if (net::peekFrame(bytes, &view, &consumed) !=
                DecodeStatus::Frame)
                continue;
            net::RunResponseFrame back;
            (void)net::decodeRunResponse(view, &back);
        }
    }
}

TEST(NetFrame, PipelinedFramesPeekOneAtATime)
{
    std::string a = net::encodeRunRequest(sampleRequest());
    std::string b = net::encodeMetricsRequest(77);
    std::string stream = a + b;

    FrameView view;
    std::size_t consumed = 0;
    ASSERT_EQ(net::peekFrame(stream, &view, &consumed),
              DecodeStatus::Frame);
    EXPECT_EQ(view.type, FrameType::RunRequest);
    EXPECT_EQ(consumed, a.size());
    stream.erase(0, consumed);
    ASSERT_EQ(net::peekFrame(stream, &view, &consumed),
              DecodeStatus::Frame);
    EXPECT_EQ(view.type, FrameType::MetricsRequest);
    EXPECT_EQ(view.requestId, 77u);
}

TEST(NetFrame, PatchRequestIdRewritesInPlace)
{
    net::RunRequestFrame req = sampleRequest();
    std::string bytes = net::encodeRunRequest(req);
    std::string patched = bytes;
    net::patchRequestId(patched, 0xAABBCCDDEEFF0011ull);

    FrameView view = peekOk(patched);
    EXPECT_EQ(view.requestId, 0xAABBCCDDEEFF0011ull);
    net::RunRequestFrame back;
    ASSERT_TRUE(net::decodeRunRequest(view, &back));
    EXPECT_EQ(back.requestId, 0xAABBCCDDEEFF0011ull);
    // Everything but the id is untouched.
    EXPECT_EQ(back.source, req.source);
    EXPECT_EQ(patched.substr(net::kRequestIdOffset + 8),
              bytes.substr(net::kRequestIdOffset + 8));
}

} // namespace
