/**
 * @file
 * Machine::reset() parity: a reset machine must be guest-visibly
 * indistinguishable from a freshly constructed one — same cycles,
 * same cache statistics, same output, bit for bit — or the engine
 * pool's reuse would silently change what the simulator measures.
 *
 * The proof runs one workload on a machine that previously ran a
 * *different* workload and was reset, against the same workload on a
 * fresh machine, and compares every observable statistic, under both
 * decoded-cache settings (satellite of the same PR: the host fast
 * path must survive reset too).
 */

#include <gtest/gtest.h>

#include "api/engine.hpp"
#include "api/program_cache.hpp"
#include "lang/compiler_com.hpp"
#include "lang/workloads.hpp"

using namespace com;

namespace {

/** Everything guest-visible we can observe after a run. */
struct Snapshot
{
    core::RunResult result;
    mem::Word lastResult;
    std::string output;

    std::uint64_t cycles, instructions, calls, returns;
    std::uint64_t branchDelays, callOverhead;
    std::uint64_t itlbStalls, icacheStalls, atlbStalls;
    std::uint64_t memoryStalls, contextStalls, trapCycles;

    std::uint64_t itlbHits, itlbMisses;
    std::uint64_t icacheHits, icacheMisses;
    std::uint64_t atlbHits, atlbMisses;

    std::uint64_t ctxAllocations, ctxCopybacks;
    std::uint64_t ctxReturnHits, ctxReturnMisses, ctxForced;

    std::uint64_t contextRefs, heapRefs;
    std::uint64_t heapLive, ctxLive;

    // Host-side; equal anyway because the simulation is deterministic.
    std::uint64_t decodedHits;
};

Snapshot
snapshotOf(core::Machine &m, const core::RunResult &r)
{
    Snapshot s;
    s.result = r;
    s.lastResult = m.lastResult();
    s.output = m.output();

    const core::Pipeline &p = m.pipeline();
    s.cycles = p.cycles();
    s.instructions = p.instructions();
    s.calls = p.calls();
    s.returns = p.returns();
    s.branchDelays = p.branchDelays();
    s.callOverhead = p.callOverhead();
    s.itlbStalls = p.itlbStalls();
    s.icacheStalls = p.icacheStalls();
    s.atlbStalls = p.atlbStalls();
    s.memoryStalls = p.memoryStalls();
    s.contextStalls = p.contextStalls();
    s.trapCycles = p.trapCycles();

    s.itlbHits = m.itlb().hits();
    s.itlbMisses = m.itlb().misses();
    s.icacheHits = m.icache().hits();
    s.icacheMisses = m.icache().misses();
    s.atlbHits = m.atlb().stats().counterValue("hits");
    s.atlbMisses = m.atlb().stats().counterValue("misses");

    s.ctxAllocations = m.contextCache().allocations();
    s.ctxCopybacks = m.contextCache().copybacks();
    s.ctxReturnHits = m.contextCache().returnHits();
    s.ctxReturnMisses = m.contextCache().returnMisses();
    s.ctxForced = m.contextCache().forcedEvictions();

    s.contextRefs = m.contextRefs();
    s.heapRefs = m.heapRefs();
    s.heapLive = m.heap().liveCount();
    s.ctxLive = m.contextPool().liveCount();

    s.decodedHits = m.decodedCache().hits();
    return s;
}

void
expectParity(const Snapshot &reset, const Snapshot &fresh,
             const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(reset.result.fault, fresh.result.fault);
    EXPECT_EQ(reset.result.finished, fresh.result.finished);
    EXPECT_EQ(reset.result.instructions, fresh.result.instructions);
    EXPECT_EQ(reset.result.cycles, fresh.result.cycles);
    EXPECT_EQ(reset.result.message, fresh.result.message);
    EXPECT_EQ(reset.lastResult, fresh.lastResult);
    EXPECT_EQ(reset.output, fresh.output);

    EXPECT_EQ(reset.cycles, fresh.cycles);
    EXPECT_EQ(reset.instructions, fresh.instructions);
    EXPECT_EQ(reset.calls, fresh.calls);
    EXPECT_EQ(reset.returns, fresh.returns);
    EXPECT_EQ(reset.branchDelays, fresh.branchDelays);
    EXPECT_EQ(reset.callOverhead, fresh.callOverhead);
    EXPECT_EQ(reset.itlbStalls, fresh.itlbStalls);
    EXPECT_EQ(reset.icacheStalls, fresh.icacheStalls);
    EXPECT_EQ(reset.atlbStalls, fresh.atlbStalls);
    EXPECT_EQ(reset.memoryStalls, fresh.memoryStalls);
    EXPECT_EQ(reset.contextStalls, fresh.contextStalls);
    EXPECT_EQ(reset.trapCycles, fresh.trapCycles);

    EXPECT_EQ(reset.itlbHits, fresh.itlbHits);
    EXPECT_EQ(reset.itlbMisses, fresh.itlbMisses);
    EXPECT_EQ(reset.icacheHits, fresh.icacheHits);
    EXPECT_EQ(reset.icacheMisses, fresh.icacheMisses);
    EXPECT_EQ(reset.atlbHits, fresh.atlbHits);
    EXPECT_EQ(reset.atlbMisses, fresh.atlbMisses);

    EXPECT_EQ(reset.ctxAllocations, fresh.ctxAllocations);
    EXPECT_EQ(reset.ctxCopybacks, fresh.ctxCopybacks);
    EXPECT_EQ(reset.ctxReturnHits, fresh.ctxReturnHits);
    EXPECT_EQ(reset.ctxReturnMisses, fresh.ctxReturnMisses);
    EXPECT_EQ(reset.ctxForced, fresh.ctxForced);

    EXPECT_EQ(reset.contextRefs, fresh.contextRefs);
    EXPECT_EQ(reset.heapRefs, fresh.heapRefs);
    EXPECT_EQ(reset.heapLive, fresh.heapLive);
    EXPECT_EQ(reset.ctxLive, fresh.ctxLive);

    EXPECT_EQ(reset.decodedHits, fresh.decodedHits);
}

core::MachineConfig
configFor(bool decoded)
{
    core::MachineConfig cfg;
    cfg.contextPoolSize = 4096;
    cfg.enableDecodedCache = decoded;
    return cfg;
}

/** Compile and run @p name on @p m (library already installed). */
core::RunResult
runWorkload(core::Machine &m, const std::string &name)
{
    lang::ComCompiler cc(m);
    lang::CompiledProgram p =
        cc.compileSource(lang::workload(name).source);
    return m.call(p.entryVaddr, m.constants().nilWord(), {});
}

Snapshot
freshRun(const std::string &name, bool decoded)
{
    core::Machine m(configFor(decoded));
    m.installStandardLibrary();
    core::RunResult r = runWorkload(m, name);
    return snapshotOf(m, r);
}

Snapshot
resetRun(const std::string &first, const std::string &second,
         bool decoded)
{
    core::Machine m(configFor(decoded));
    m.installStandardLibrary();
    core::RunResult warm = runWorkload(m, first);
    EXPECT_TRUE(warm.finished) << warm.message;

    m.reset();
    m.installStandardLibrary();
    core::RunResult r = runWorkload(m, second);
    return snapshotOf(m, r);
}

struct ResetCase
{
    const char *first;  ///< workload run before the reset
    const char *second; ///< workload whose statistics are compared
};

class ResetParity : public ::testing::TestWithParam<ResetCase>
{
};

TEST_P(ResetParity, ResetMachineMatchesFreshMachine)
{
    const ResetCase c = GetParam();
    for (bool decoded : {true, false}) {
        Snapshot fresh = freshRun(c.second, decoded);
        Snapshot reset = resetRun(c.first, c.second, decoded);
        EXPECT_TRUE(fresh.result.finished) << fresh.result.message;
        expectParity(reset, fresh,
                     std::string(c.first) + " -> reset -> " + c.second +
                         (decoded ? " (decoded)" : " (reference)"));
    }
}

// Different profiles on either side of the reset: data-heavy after
// call-heavy, late-binding after data-heavy, allocation-heavy after
// control-heavy, and a workload after itself.
INSTANTIATE_TEST_SUITE_P(
    Profiles, ResetParity,
    ::testing::Values(ResetCase{"fib", "sieve"},
                      ResetCase{"sieve", "sort"},
                      ResetCase{"richards", "bintree"},
                      ResetCase{"sieve", "sieve"}),
    [](const ::testing::TestParamInfo<ResetCase> &info) {
        return std::string(info.param.first) + "_then_" +
               info.param.second;
    });

TEST(MachineReset, ClearsEverythingObservable)
{
    core::Machine m(configFor(true));
    m.installStandardLibrary();
    core::RunResult r = runWorkload(m, "fib");
    ASSERT_TRUE(r.finished) << r.message;
    ASSERT_GT(m.pipeline().cycles(), 0u);

    m.reset();
    EXPECT_EQ(m.pipeline().cycles(), 0u);
    EXPECT_EQ(m.pipeline().instructions(), 0u);
    EXPECT_EQ(m.output(), "");
    EXPECT_EQ(m.heap().liveCount(), 0u);
    EXPECT_EQ(m.contextPool().liveCount(), 0u);
    EXPECT_EQ(m.itlb().hits() + m.itlb().misses(), 0u);
    EXPECT_EQ(m.icache().hits() + m.icache().misses(), 0u);
    EXPECT_EQ(m.contextCache().allocations(), 0u);
    EXPECT_EQ(m.decodedCache().hits(), 0u);
    EXPECT_EQ(m.contextRefs(), 0u);
    EXPECT_EQ(m.heapRefs(), 0u);
    EXPECT_EQ(m.memory().reads() + m.memory().writes(), 0u);
    EXPECT_EQ(m.absoluteSpace().wordsAllocated(),
              core::Machine(configFor(true))
                  .absoluteSpace()
                  .wordsAllocated());
}

TEST(MachineReset, EngineResetReusesTheMachineAcrossPrograms)
{
    // The api-level contract bench_serve relies on: checkout, run,
    // reset, run something else, repeatedly, on one machine.
    api::ComEngine engine;
    core::Machine *machine = &engine.machine();
    for (const char *name : {"fib", "sieve", "bank", "fib"}) {
        api::ProgramSpec spec = api::ProgramSpec::workload(name);
        api::RunOutcome out = engine.run(spec);
        EXPECT_TRUE(out.matches(spec)) << name << ": " << out.error;
        engine.reset();
        // Same machine object, like-new state.
        EXPECT_EQ(&engine.machine(), machine);
        EXPECT_EQ(machine->pipeline().cycles(), 0u);
    }
}

TEST(MachineReset, WarmStartedEngineMatchesColdEngine)
{
    // Warm-image on/off parity at the engine level: across resets, an
    // engine warm-starting from a shared program cache must report
    // exactly what a cacheless engine reports — cycles, operations,
    // result and guest output — or the cache would change what the
    // serving layer measures.
    auto cache = std::make_shared<api::ProgramCache>(8);
    api::ComEngine cold;
    api::ComEngine warm;
    warm.setProgramCache(cache);
    for (const char *name : {"fib", "sieve", "fib", "sieve", "fib"}) {
        api::ProgramSpec spec = api::ProgramSpec::workload(name);
        api::RunOutcome c = cold.run(spec);
        api::RunOutcome w = warm.run(spec);
        EXPECT_TRUE(c.matches(spec)) << name << ": " << c.error;
        EXPECT_TRUE(w.matches(spec)) << name << ": " << w.error;
        EXPECT_EQ(w.cycles, c.cycles) << name;
        EXPECT_EQ(w.operations, c.operations) << name;
        EXPECT_EQ(w.resultText, c.resultText) << name;
        EXPECT_EQ(w.output, c.output) << name;
        cold.reset();
        warm.reset();
    }
    // The later rounds really did warm-start.
    api::ProgramCache::Counters k = cache->counters();
    EXPECT_EQ(k.installs, 2u);
    EXPECT_EQ(k.hits, 3u);
    EXPECT_EQ(k.warmStarts, 3u);
}

TEST(MachineReset, WarmReplayLeavesMachineBitIdentical)
{
    // A warm hit replays the recorded run by restoring its post-run
    // image. The machine must land in the *exact* state an actual
    // execution produces: a second program run in the same dirty
    // session inherits that state (warm TLBs, cache contents, heap),
    // so its guest statistics expose any divergence.
    auto cache = std::make_shared<api::ProgramCache>(8);
    api::ComEngine cold;
    api::ComEngine warm;
    warm.setProgramCache(cache);
    api::ProgramSpec fib = api::ProgramSpec::workload("fib");
    api::ProgramSpec sieve = api::ProgramSpec::workload("sieve");

    // Prime: the first run records fib's post-run image.
    ASSERT_TRUE(warm.run(fib).matches(fib));
    warm.reset();

    api::RunOutcome wf = warm.run(fib); // replayed from the image
    api::RunOutcome ws = warm.run(sieve); // executed on restored state
    api::RunOutcome cf = cold.run(fib);
    api::RunOutcome cs = cold.run(sieve);
    EXPECT_EQ(cache->counters().warmStarts, 1u);

    for (const auto &[w, c] : {std::pair(wf, cf), std::pair(ws, cs)}) {
        EXPECT_EQ(w.cycles, c.cycles);
        EXPECT_EQ(w.operations, c.operations);
        EXPECT_EQ(w.resultText, c.resultText);
        EXPECT_EQ(w.output, c.output);
    }

    // Machine-level observables after both sessions ran fib + sieve.
    // (The decoded-instruction memo is host-side telemetry, not guest
    // state, and is deliberately not part of an image — skip it.)
    core::Machine &wm = warm.machine();
    core::Machine &cm = cold.machine();
    EXPECT_EQ(wm.pipeline().cycles(), cm.pipeline().cycles());
    EXPECT_EQ(wm.pipeline().instructions(),
              cm.pipeline().instructions());
    EXPECT_EQ(wm.pipeline().calls(), cm.pipeline().calls());
    EXPECT_EQ(wm.pipeline().memoryStalls(), cm.pipeline().memoryStalls());
    EXPECT_EQ(wm.itlb().hits(), cm.itlb().hits());
    EXPECT_EQ(wm.itlb().misses(), cm.itlb().misses());
    EXPECT_EQ(wm.icache().hits(), cm.icache().hits());
    EXPECT_EQ(wm.icache().misses(), cm.icache().misses());
    EXPECT_EQ(wm.contextCache().allocations(),
              cm.contextCache().allocations());
    EXPECT_EQ(wm.contextCache().copybacks(),
              cm.contextCache().copybacks());
    EXPECT_EQ(wm.heap().liveCount(), cm.heap().liveCount());
    EXPECT_EQ(wm.contextPool().liveCount(), cm.contextPool().liveCount());
    EXPECT_EQ(wm.contextRefs(), cm.contextRefs());
    EXPECT_EQ(wm.heapRefs(), cm.heapRefs());
    EXPECT_EQ(wm.output(), cm.output());
}

} // namespace
