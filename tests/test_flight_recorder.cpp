/**
 * @file
 * The flight recorder (serve/flight_recorder.hpp): seqlock ring
 * round-trips every span field, wraparound keeps the newest spans,
 * the slow capture keeps full spans past the threshold, and a
 * concurrent reader never sees a torn span (the TSan job runs the
 * Trace* suites under the race detector). TraceScheduler covers the
 * scheduler integration: traceSpans() describes served requests and
 * the stage histograms count them.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "serve/flight_recorder.hpp"
#include "serve/scheduler.hpp"

using namespace com;
using serve::FlightRecorder;
using serve::FlightSpan;

namespace {

/** A span whose fields are all derived from @p i, so a reader can
 *  tell a torn blend of two spans from a consistent one. */
FlightSpan
spanFor(std::uint32_t i)
{
    FlightSpan s;
    s.submitNanos = i * 1000ull;
    s.queueUs = i;
    s.poolUs = i + 1;
    s.warmUs = i + 2;
    s.execUs = i + 3;
    s.verifyUs = i + 4;
    s.totalUs = i + 5;
    s.status = serve::ResponseStatus::Ok;
    s.kind = api::EngineKind::Fith;
    s.shard = static_cast<std::uint16_t>(i % 7);
    s.batchSize = i % 31 + 1;
    s.program = "prog-" + std::to_string(i);
    return s;
}

/** All duration fields consistent with one spanFor() write? */
bool
consistent(const FlightSpan &s)
{
    std::uint32_t i = s.queueUs;
    return s.submitNanos == i * 1000ull && s.poolUs == i + 1 &&
           s.warmUs == i + 2 && s.execUs == i + 3 &&
           s.verifyUs == i + 4 && s.totalUs == i + 5 &&
           s.shard == i % 7 && s.batchSize == i % 31 + 1;
}

TEST(TraceRecorder, RoundTripsEveryField)
{
    FlightRecorder rec(8, serve::Clock::now(),
                       std::chrono::nanoseconds(0));
    FlightSpan in = spanFor(42);
    in.status = serve::ResponseStatus::Failed;
    in.kind = api::EngineKind::Stack;
    rec.record(in);

    std::vector<FlightSpan> out = rec.collect();
    ASSERT_EQ(out.size(), 1u);
    const FlightSpan &s = out[0];
    EXPECT_EQ(s.seq, 0u);
    EXPECT_EQ(s.submitNanos, in.submitNanos);
    EXPECT_EQ(s.queueUs, in.queueUs);
    EXPECT_EQ(s.poolUs, in.poolUs);
    EXPECT_EQ(s.warmUs, in.warmUs);
    EXPECT_EQ(s.execUs, in.execUs);
    EXPECT_EQ(s.verifyUs, in.verifyUs);
    EXPECT_EQ(s.totalUs, in.totalUs);
    EXPECT_EQ(s.status, serve::ResponseStatus::Failed);
    EXPECT_EQ(s.kind, api::EngineKind::Stack);
    EXPECT_EQ(s.shard, in.shard);
    EXPECT_EQ(s.batchSize, in.batchSize);
    EXPECT_FALSE(s.slow);
    EXPECT_EQ(s.program, "prog-42");
}

TEST(TraceRecorder, RingKeepsTheNewestSpans)
{
    constexpr std::size_t kCapacity = 8;
    FlightRecorder rec(kCapacity, serve::Clock::now(),
                       std::chrono::nanoseconds(0));
    for (std::uint32_t i = 1; i <= 20; ++i)
        rec.record(spanFor(i));

    std::vector<FlightSpan> out = rec.collect();
    ASSERT_EQ(out.size(), kCapacity);
    // Oldest first, and exactly the last kCapacity completions
    // (seq is the 0-based completion number within the shard).
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].seq, 20 - kCapacity + i);
        EXPECT_TRUE(consistent(out[i])) << "span " << i;
    }
}

TEST(TraceRecorder, RingTruncatesLongProgramNames)
{
    FlightRecorder rec(4, serve::Clock::now(),
                       std::chrono::nanoseconds(0));
    std::string longname(FlightRecorder::kProgramChars + 10, 'x');
    FlightSpan s = spanFor(1);
    s.program = longname;
    rec.record(s);

    std::vector<FlightSpan> out = rec.collect();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].program,
              longname.substr(0, FlightRecorder::kProgramChars));
}

TEST(TraceRecorder, ZeroCapacityDisablesTheRing)
{
    FlightRecorder rec(0, serve::Clock::now(),
                       std::chrono::nanoseconds(0));
    rec.record(spanFor(1));
    EXPECT_TRUE(rec.collect().empty());
}

TEST(TraceRecorder, SlowCaptureKeepsFullSpans)
{
    // Threshold 1ms; the ring is off, so everything collected comes
    // from the slow capture.
    FlightRecorder rec(0, serve::Clock::now(),
                       std::chrono::milliseconds(1));
    std::string longname(FlightRecorder::kProgramChars + 16, 'y');

    FlightSpan fast = spanFor(1);
    fast.totalUs = 500; // under threshold
    rec.record(fast);

    FlightSpan slow = spanFor(2);
    slow.totalUs = 5000; // over threshold
    slow.program = longname;
    rec.record(slow);

    std::vector<FlightSpan> out = rec.collect();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].slow);
    EXPECT_EQ(out[0].totalUs, 5000u);
    // Slow capture keeps the FULL name, not the ring truncation.
    EXPECT_EQ(out[0].program, longname);
}

TEST(TraceRecorder, SlowCaptureIsBoundedNewestWin)
{
    FlightRecorder rec(0, serve::Clock::now(),
                       std::chrono::microseconds(1));
    const std::uint32_t total = FlightRecorder::kMaxSlowSpans + 10;
    for (std::uint32_t i = 1; i <= total; ++i) {
        FlightSpan s = spanFor(i);
        s.totalUs = 1000 + i; // all over threshold
        rec.record(s);
    }
    std::vector<FlightSpan> out = rec.collect();
    ASSERT_EQ(out.size(), FlightRecorder::kMaxSlowSpans);
    // The survivors are the newest, oldest first.
    EXPECT_EQ(out.front().totalUs, 1000u + 11u);
    EXPECT_EQ(out.back().totalUs, 1000u + total);
}

TEST(TraceRecorder, ConcurrentWritersAndReaderSeeNoTornSpans)
{
    constexpr int kWriters = 4;
    constexpr std::uint32_t kPerWriter = 2000;
    FlightRecorder rec(64, serve::Clock::now(),
                       std::chrono::nanoseconds(0));

    std::atomic<bool> stop{false};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_acquire)) {
            for (const FlightSpan &s : rec.collect())
                // A torn read would blend two spanFor() payloads;
                // every collected span must be self-consistent.
                ASSERT_TRUE(consistent(s))
                    << "torn span at seq " << s.seq;
        }
    });

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w)
        writers.emplace_back([&rec, w] {
            for (std::uint32_t i = 0; i < kPerWriter; ++i)
                rec.record(spanFor(
                    static_cast<std::uint32_t>(w) * kPerWriter + i));
        });
    for (std::thread &t : writers)
        t.join();
    stop.store(true, std::memory_order_release);
    reader.join();

    std::vector<FlightSpan> out = rec.collect();
    EXPECT_EQ(out.size(), 64u);
    for (const FlightSpan &s : out)
        EXPECT_TRUE(consistent(s));
}

/** Serve a few fith programs through a real scheduler. */
serve::Scheduler::Config
schedulerConfig()
{
    serve::Scheduler::Config cfg;
    cfg.shards = 2;
    cfg.workersPerShard = 2;
    cfg.pool.fithEngines = 2;
    cfg.flightRecorderCapacity = 32;
    return cfg;
}

api::ProgramSpec
addSpec(int i)
{
    std::string src = std::to_string(i) + " 1 + dup .";
    api::ProgramSpec spec = api::ProgramSpec::fith("add", src);
    spec.hasExpected = true;
    spec.expected = i + 1;
    return spec;
}

TEST(TraceScheduler, TraceSpansDescribeServedRequests)
{
    serve::Scheduler sched(schedulerConfig());
    constexpr int kRequests = 10;
    std::vector<std::future<serve::Response>> futures;
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(
            sched.submit(api::EngineKind::Fith, addSpec(i)));
    for (auto &f : futures)
        EXPECT_EQ(f.get().status, serve::ResponseStatus::Ok);

    std::vector<FlightSpan> spans = sched.traceSpans();
    ASSERT_EQ(spans.size(), static_cast<std::size_t>(kRequests));
    for (const FlightSpan &s : spans) {
        EXPECT_EQ(s.status, serve::ResponseStatus::Ok);
        EXPECT_EQ(s.kind, api::EngineKind::Fith);
        EXPECT_EQ(s.program, "add");
        EXPECT_LT(s.shard, 2u);
        EXPECT_GE(s.batchSize, 1u);
        // Stages are sub-intervals of the whole span.
        EXPECT_LE(s.execUs, s.totalUs);
        EXPECT_LE(s.queueUs, s.totalUs);
    }
    // Ordered by submit time.
    for (std::size_t i = 1; i < spans.size(); ++i)
        EXPECT_GE(spans[i].submitNanos, spans[i - 1].submitNanos);
}

TEST(TraceScheduler, StageHistogramsCountCompletedRequests)
{
    serve::Scheduler sched(schedulerConfig());
    constexpr int kRequests = 8;
    std::vector<std::future<serve::Response>> futures;
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(
            sched.submit(api::EngineKind::Fith, addSpec(i)));
    for (auto &f : futures)
        EXPECT_EQ(f.get().status, serve::ResponseStatus::Ok);

    serve::Metrics::Snapshot m = sched.metricsSnapshot();
    // Every completed request crossed the queue and reached an
    // engine, so these stage counts all equal the request count.
    EXPECT_EQ(m.queueWait.count, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(m.poolWait.count, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(m.execute.count, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(m.verify.count, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(m.latency.count, static_cast<std::uint64_t>(kRequests));
    // Execution took nonzero wall time in aggregate.
    EXPECT_GT(m.execute.meanSeconds, 0.0);
}

TEST(TraceScheduler, SlowThresholdCapturesEverythingWhenTiny)
{
    serve::Scheduler::Config cfg = schedulerConfig();
    cfg.flightRecorderCapacity = 0; // slow capture only
    cfg.slowThreshold = std::chrono::nanoseconds(1);
    serve::Scheduler sched(cfg);
    auto f = sched.submit(api::EngineKind::Fith, addSpec(1));
    EXPECT_EQ(f.get().status, serve::ResponseStatus::Ok);

    std::vector<FlightSpan> spans = sched.traceSpans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_TRUE(spans[0].slow);
}

TEST(TraceScheduler, DumpTextNamesTheProgram)
{
    serve::Scheduler sched(schedulerConfig());
    auto f = sched.submit(api::EngineKind::Fith, addSpec(3));
    EXPECT_EQ(f.get().status, serve::ResponseStatus::Ok);

    std::string dump = sched.traceDumpText();
    EXPECT_NE(dump.find("flight recorder"), std::string::npos);
    EXPECT_NE(dump.find("add"), std::string::npos);
}

TEST(TraceScheduler, EmptyRecorderDumpsHeaderOnly)
{
    serve::Scheduler sched(schedulerConfig());
    std::string dump = sched.traceDumpText();
    EXPECT_NE(dump.find("flight recorder"), std::string::npos);
}

} // namespace
