/**
 * @file
 * Timing-parity regression tests for the interpreter fast path.
 *
 * The decoded-instruction cache (core/decoded_cache.hpp) and the flat
 * dispatch tables are host-side optimizations only: guest-visible
 * timing — cycle counts, pipeline breakdowns, ITLB / i-cache / ATLB
 * hit rates, context-cache traffic — and fault behavior must be
 * bit-identical with the fast path on or off. These tests run the same
 * workloads under both MachineConfig::enableDecodedCache settings and
 * compare every observable statistic.
 *
 * Superblock threaded code (core/superblock.hpp) carries the same
 * contract one level up: whole straight-line sequences execute through
 * pre-bound superinstruction chains, and the suite additionally runs
 * every workload with superblocks on, off, and toggled mid-run
 * (continuing a capped run after flipping the switch), expecting
 * bit-identical guest observables throughout.
 *
 * CI's parity smoke job sets COMSIM_FORCE_SUPERBLOCKS=on|off to pin
 * the *default* superblock setting for tests that do not vary it
 * explicitly, so the whole suite runs under both dispatch tiers.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "core/assembler.hpp"
#include "core/machine.hpp"
#include "lang/compiler_com.hpp"
#include "lang/workloads.hpp"

using namespace com;

namespace {

/** Everything guest-visible we can observe after a run. */
struct Snapshot
{
    core::RunResult result;
    mem::Word lastResult;
    std::string output;

    std::uint64_t cycles, instructions, calls, returns;
    std::uint64_t branchDelays, callOverhead;
    std::uint64_t itlbStalls, icacheStalls, atlbStalls;
    std::uint64_t memoryStalls, contextStalls, trapCycles;

    std::uint64_t itlbHits, itlbMisses;
    std::uint64_t icacheHits, icacheMisses;
    std::uint64_t atlbHits, atlbMisses;

    std::uint64_t ctxAllocations, ctxCopybacks;
    std::uint64_t ctxReturnHits, ctxReturnMisses, ctxForced;

    std::uint64_t contextRefs, heapRefs;

    std::uint64_t decodedHits; ///< host-side; not compared, asserted >0
    std::uint64_t sbBlocks;    ///< host-side; engagement check only
    std::uint64_t sbEpoch;     ///< host-side; retirement check only
};

Snapshot
snapshotOf(core::Machine &m, const core::RunResult &r)
{
    Snapshot s;
    s.result = r;
    s.lastResult = m.lastResult();
    s.output = m.output();

    const core::Pipeline &p = m.pipeline();
    s.cycles = p.cycles();
    s.instructions = p.instructions();
    s.calls = p.calls();
    s.returns = p.returns();
    s.branchDelays = p.branchDelays();
    s.callOverhead = p.callOverhead();
    s.itlbStalls = p.itlbStalls();
    s.icacheStalls = p.icacheStalls();
    s.atlbStalls = p.atlbStalls();
    s.memoryStalls = p.memoryStalls();
    s.contextStalls = p.contextStalls();
    s.trapCycles = p.trapCycles();

    s.itlbHits = m.itlb().hits();
    s.itlbMisses = m.itlb().misses();
    s.icacheHits = m.icache().hits();
    s.icacheMisses = m.icache().misses();
    s.atlbHits = m.atlb().stats().counterValue("hits");
    s.atlbMisses = m.atlb().stats().counterValue("misses");

    s.ctxAllocations = m.contextCache().allocations();
    s.ctxCopybacks = m.contextCache().copybacks();
    s.ctxReturnHits = m.contextCache().returnHits();
    s.ctxReturnMisses = m.contextCache().returnMisses();
    s.ctxForced = m.contextCache().forcedEvictions();

    s.contextRefs = m.contextRefs();
    s.heapRefs = m.heapRefs();

    s.decodedHits = m.decodedCache().hits();
    s.sbBlocks = m.superblockCache().size();
    s.sbEpoch = m.superblockCache().epoch();
    return s;
}

/** Compare every guest-visible field of two snapshots. */
void
expectParity(const Snapshot &fast, const Snapshot &ref,
             const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(fast.result.fault, ref.result.fault);
    EXPECT_EQ(fast.result.finished, ref.result.finished);
    EXPECT_EQ(fast.result.capped, ref.result.capped);
    EXPECT_EQ(fast.result.instructions, ref.result.instructions);
    EXPECT_EQ(fast.result.cycles, ref.result.cycles);
    EXPECT_EQ(fast.result.message, ref.result.message);
    EXPECT_EQ(fast.lastResult, ref.lastResult);
    EXPECT_EQ(fast.output, ref.output);

    EXPECT_EQ(fast.cycles, ref.cycles);
    EXPECT_EQ(fast.instructions, ref.instructions);
    EXPECT_EQ(fast.calls, ref.calls);
    EXPECT_EQ(fast.returns, ref.returns);
    EXPECT_EQ(fast.branchDelays, ref.branchDelays);
    EXPECT_EQ(fast.callOverhead, ref.callOverhead);
    EXPECT_EQ(fast.itlbStalls, ref.itlbStalls);
    EXPECT_EQ(fast.icacheStalls, ref.icacheStalls);
    EXPECT_EQ(fast.atlbStalls, ref.atlbStalls);
    EXPECT_EQ(fast.memoryStalls, ref.memoryStalls);
    EXPECT_EQ(fast.contextStalls, ref.contextStalls);
    EXPECT_EQ(fast.trapCycles, ref.trapCycles);

    EXPECT_EQ(fast.itlbHits, ref.itlbHits);
    EXPECT_EQ(fast.itlbMisses, ref.itlbMisses);
    EXPECT_EQ(fast.icacheHits, ref.icacheHits);
    EXPECT_EQ(fast.icacheMisses, ref.icacheMisses);
    EXPECT_EQ(fast.atlbHits, ref.atlbHits);
    EXPECT_EQ(fast.atlbMisses, ref.atlbMisses);

    EXPECT_EQ(fast.ctxAllocations, ref.ctxAllocations);
    EXPECT_EQ(fast.ctxCopybacks, ref.ctxCopybacks);
    EXPECT_EQ(fast.ctxReturnHits, ref.ctxReturnHits);
    EXPECT_EQ(fast.ctxReturnMisses, ref.ctxReturnMisses);
    EXPECT_EQ(fast.ctxForced, ref.ctxForced);

    EXPECT_EQ(fast.contextRefs, ref.contextRefs);
    EXPECT_EQ(fast.heapRefs, ref.heapRefs);
}

core::MachineConfig
configFor(bool decoded)
{
    core::MachineConfig cfg;
    cfg.contextPoolSize = 4096;
    cfg.enableDecodedCache = decoded;
    // CI's parity smoke pins the default dispatch tier; tests that
    // vary superblocks explicitly overwrite the field afterwards and
    // are unaffected.
    if (const char *force = std::getenv("COMSIM_FORCE_SUPERBLOCKS"))
        cfg.enableSuperblocks = std::string(force) != "off";
    return cfg;
}

Snapshot
runWith(const core::MachineConfig &cfg, const std::string &name)
{
    core::Machine m(cfg);
    m.installStandardLibrary();
    lang::ComCompiler cc(m);
    lang::CompiledProgram p =
        cc.compileSource(lang::workload(name).source);
    core::RunResult r =
        m.call(p.entryVaddr, m.constants().nilWord(), {});
    return snapshotOf(m, r);
}

Snapshot
runWorkload(const std::string &name, bool decoded)
{
    return runWith(configFor(decoded), name);
}

/** Run with superblocks pinned on/off (low threshold: engage early). */
Snapshot
runWorkloadSb(const std::string &name, bool superblocks)
{
    core::MachineConfig cfg = configFor(true);
    cfg.enableSuperblocks = superblocks;
    cfg.superblockThreshold = 4;
    return runWith(cfg, name);
}

/**
 * Like runWorkload, but through the warm-start path: compile on one
 * machine, capture the image, restore it onto a second machine (which
 * has its own standard library installed, like a pooled engine after
 * reset) and run there. Bit-identity with the fresh-compile path is
 * the program cache's correctness contract.
 */
Snapshot
runWorkloadWarm(const std::string &name, bool decoded)
{
    core::MachineConfig cfg = configFor(decoded);

    core::Machine compiler(cfg);
    compiler.installStandardLibrary();
    lang::ComCompiler cc(compiler);
    lang::CompiledProgram p =
        cc.compileSource(lang::workload(name).source);
    std::shared_ptr<const core::Machine::Image> img =
        compiler.captureImage();

    core::Machine m(cfg);
    m.installStandardLibrary();
    m.restoreImage(*img);
    core::RunResult r =
        m.call(p.entryVaddr, m.constants().nilWord(), {});
    return snapshotOf(m, r);
}

class WorkloadParity : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadParity, FastPathMatchesReference)
{
    const std::string name = GetParam();
    Snapshot fast = runWorkload(name, true);
    Snapshot ref = runWorkload(name, false);

    EXPECT_TRUE(fast.result.finished) << fast.result.message;
    // The fast path must actually have engaged, or this test proves
    // nothing.
    EXPECT_GT(fast.decodedHits, 0u);
    EXPECT_EQ(ref.decodedHits, 0u);

    expectParity(fast, ref, name);
}

TEST_P(WorkloadParity, WarmImageMatchesFreshCompile)
{
    const std::string name = GetParam();
    for (bool decoded : {true, false}) {
        SCOPED_TRACE(decoded ? "decoded-cache on"
                             : "decoded-cache off");
        Snapshot warm = runWorkloadWarm(name, decoded);
        Snapshot fresh = runWorkload(name, decoded);
        EXPECT_TRUE(warm.result.finished) << warm.result.message;
        expectParity(warm, fresh, name + "/warm-vs-fresh");
    }
}

TEST_P(WorkloadParity, SuperblocksMatchInterpreter)
{
    const std::string name = GetParam();
    Snapshot sb = runWorkloadSb(name, true);
    Snapshot ref = runWorkloadSb(name, false);

    EXPECT_TRUE(sb.result.finished) << sb.result.message;
    // Blocks must actually have been promoted, or this proves nothing.
    EXPECT_GT(sb.sbBlocks, 0u);
    EXPECT_EQ(ref.sbBlocks, 0u);

    expectParity(sb, ref, name + "/superblocks-vs-interpreter");
}

TEST_P(WorkloadParity, SuperblocksToggledMidRunMatch)
{
    // Flip the dispatch tier every few thousand instructions of one
    // continuous run (continuing after each cap): translated blocks
    // must hand over mid-method and be re-entered warm, with guest
    // observables identical to a pure-interpreter run.
    const std::string name = GetParam();
    core::MachineConfig cfg = configFor(true);
    cfg.superblockThreshold = 4;

    auto toggledRun = [&](bool toggle) {
        cfg.enableSuperblocks = toggle;
        core::Machine m(cfg);
        m.installStandardLibrary();
        lang::ComCompiler cc(m);
        lang::CompiledProgram p =
            cc.compileSource(lang::workload(name).source);
        bool on = toggle;
        core::RunResult r =
            m.call(p.entryVaddr, m.constants().nilWord(), {}, 512);
        while (r.capped) {
            if (toggle) {
                on = !on;
                m.setSuperblocksEnabled(on);
            }
            r = m.run(512);
        }
        return snapshotOf(m, r);
    };

    Snapshot toggled = toggledRun(true);
    Snapshot ref = toggledRun(false);
    EXPECT_TRUE(toggled.result.finished) << toggled.result.message;
    EXPECT_GT(toggled.sbBlocks, 0u);
    expectParity(toggled, ref, name + "/toggled-vs-interpreter");
}

// sieve (data-access heavy), fib (call/return heavy), sort (late
// binding), richards (control heavy): the profiles that stress every
// fast-path branch.
INSTANTIATE_TEST_SUITE_P(AllProfiles, WorkloadParity,
                         ::testing::Values("sieve", "fib", "sort",
                                           "richards"));

TEST(TimingParity, FaultBehaviorIdentical)
{
    // A send nothing understands: the DoesNotUnderstand path must
    // report the same fault, detail and timing either way.
    auto run = [](bool decoded) {
        core::Machine m(configFor(decoded));
        m.installStandardLibrary();
        core::Assembler as(m);
        std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
            move   c8, =7
            msg    "frobnicate:", c9, c8, c8
            putres.r c2, c9
        )"));
        core::RunResult r =
            m.call(entry, m.constants().nilWord(), {});
        return snapshotOf(m, r);
    };
    Snapshot fast = run(true);
    Snapshot ref = run(false);
    EXPECT_EQ(fast.result.fault, core::GuestFault::DoesNotUnderstand);
    expectParity(fast, ref, "doesNotUnderstand");
}

TEST(TimingParity, SelfModifiedCodeInvalidatesDecodings)
{
    // Execute a method, overwrite its first word through the guest
    // store path (which must invalidate any memoized decoding), and
    // execute it again: both configurations must fault identically —
    // the fast path may not serve the stale decoding.
    auto run = [](bool decoded) {
        core::Machine m(configFor(decoded));
        m.installStandardLibrary();
        core::Assembler as(m);
        std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
            move   c8, =41
            add    c9, c8, =1
            putres.r c2, c9
        )"));
        core::RunResult first =
            m.call(entry, m.constants().nilWord(), {});
        EXPECT_TRUE(first.finished);
        EXPECT_EQ(m.lastResult().asInt(), 42);

        // Guest-path store over the first instruction word.
        core::GuestFault f = m.indexedStore(
            mem::Word::fromPointer(static_cast<std::uint32_t>(entry)),
            0, mem::Word::fromInt(1234));
        EXPECT_EQ(f, core::GuestFault::None);

        core::RunResult second =
            m.call(entry, m.constants().nilWord(), {});
        return std::make_pair(snapshotOf(m, second), second);
    };
    auto [fast, fastR] = run(true);
    auto [ref, refR] = run(false);
    EXPECT_EQ(fastR.fault, core::GuestFault::ExecuteData);
    EXPECT_EQ(refR.fault, core::GuestFault::ExecuteData);
    expectParity(fast, ref, "selfModify");
}

TEST(TimingParity, StoreIntoTranslatedBlockRetiresIt)
{
    // Like SelfModifiedCodeInvalidatesDecodings, one tier up: run a
    // method hot enough to translate (threshold 1: first entry), store
    // over its first word through the guest path, and re-call. The
    // store must retire the superblock over the invalidation bus —
    // serving the stale chain would execute dead code — and fault
    // behavior and timing must match the interpreter exactly.
    auto run = [](bool superblocks) {
        core::MachineConfig cfg = configFor(true);
        cfg.enableSuperblocks = superblocks;
        cfg.superblockThreshold = 1;
        core::Machine m(cfg);
        m.installStandardLibrary();
        core::Assembler as(m);
        std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
            move   c8, =41
            add    c9, c8, =1
            putres.r c2, c9
        )"));
        core::RunResult first =
            m.call(entry, m.constants().nilWord(), {});
        EXPECT_TRUE(first.finished);
        EXPECT_EQ(m.lastResult().asInt(), 42);
        if (superblocks) {
            EXPECT_GT(m.superblockCache().size(), 0u);
            EXPECT_EQ(m.superblockCache().storeInvalidations(), 0u);
        }

        core::GuestFault f = m.indexedStore(
            mem::Word::fromPointer(static_cast<std::uint32_t>(entry)),
            0, mem::Word::fromInt(1234));
        EXPECT_EQ(f, core::GuestFault::None);
        if (superblocks)
            EXPECT_GT(m.superblockCache().storeInvalidations(), 0u);

        core::RunResult second =
            m.call(entry, m.constants().nilWord(), {});
        EXPECT_EQ(second.fault, core::GuestFault::ExecuteData);
        return snapshotOf(m, second);
    };
    Snapshot sb = run(true);
    Snapshot ref = run(false);
    expectParity(sb, ref, "storeIntoTranslatedBlock");
}

TEST(TimingParity, GcPressureRetiresSuperblocksExactly)
{
    // Garbage collections retire every superblock (swept segments can
    // be recycled onto fresh objects). The nastiest case is a
    // collection fired from *inside* a running block — the 'collect'
    // host routine does not transfer control, so the runner is still
    // mid-chain when its own block moves to the graveyard and must
    // side-exit on the epoch check. Loop so the hot path is
    // re-translated and re-killed several times; timing must match
    // the interpreter bit for bit throughout.
    auto run = [](bool superblocks) {
        core::MachineConfig cfg = configFor(true);
        cfg.enableSuperblocks = superblocks;
        cfg.superblockThreshold = 1;
        core::Machine m(cfg);
        m.installStandardLibrary();
        core::Assembler as(m);
        std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
            move   c8, =0
        loop:
            add    c8, c8, =1
            move   c10, =nil
            msg    "collect", c9, c10, c0
            lt     c9, c8, =5
            jt     c9, @loop
            putres.r c2, c8
        )"));
        core::RunResult r =
            m.call(entry, m.constants().nilWord(), {});
        EXPECT_TRUE(r.finished) << r.message;
        EXPECT_EQ(m.lastResult().asInt(), 5);
        return snapshotOf(m, r);
    };
    Snapshot sb = run(true);
    Snapshot ref = run(false);
    EXPECT_GT(sb.sbEpoch, 0u); // collections really retired blocks
    expectParity(sb, ref, "gcPressure");
}

TEST(TimingParity, WarmImageSurvivesSelfModifyingRun)
{
    // A cached image is shared by every consumer that warm-starts
    // from it. One consumer runs the program and then overwrites its
    // code through the guest store path; a second consumer restoring
    // the same image must still see the pristine code (the restored
    // pages are copy-on-write, so the first consumer's scribble can
    // never leak into the shared image).
    core::MachineConfig cfg = configFor(true);
    core::Machine compiler(cfg);
    compiler.installStandardLibrary();
    core::Assembler as(compiler);
    std::uint64_t entry = compiler.makeMethodObject(as.assemble(R"(
        move   c8, =41
        add    c9, c8, =1
        putres.r c2, c9
    )"));
    std::shared_ptr<const core::Machine::Image> img =
        compiler.captureImage();

    core::Machine a(cfg);
    a.installStandardLibrary();
    a.restoreImage(*img);
    core::RunResult r1 = a.call(entry, a.constants().nilWord(), {});
    EXPECT_TRUE(r1.finished) << r1.message;
    EXPECT_EQ(a.lastResult().asInt(), 42);
    core::GuestFault f = a.indexedStore(
        mem::Word::fromPointer(static_cast<std::uint32_t>(entry)), 0,
        mem::Word::fromInt(1234));
    EXPECT_EQ(f, core::GuestFault::None);
    core::RunResult r2 = a.call(entry, a.constants().nilWord(), {});
    EXPECT_EQ(r2.fault, core::GuestFault::ExecuteData);

    core::Machine b(cfg);
    b.installStandardLibrary();
    b.restoreImage(*img);
    core::RunResult r3 = b.call(entry, b.constants().nilWord(), {});
    EXPECT_TRUE(r3.finished) << r3.message;
    EXPECT_EQ(b.lastResult().asInt(), 42);
}

} // namespace
