/**
 * @file
 * Infrastructure tests: tagged words, stats, RNG determinism, string
 * utilities, logging error types, tagged memory and pipeline
 * accounting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/pipeline.hpp"
#include "mem/tagged_memory.hpp"
#include "mem/word.hpp"
#include "sim/logging.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/strutil.hpp"

using namespace com;
using mem::Tag;
using mem::Word;

TEST(WordTest, TagsAndPayloadsRoundTrip)
{
    EXPECT_EQ(Word::fromInt(-5).asInt(), -5);
    EXPECT_FLOAT_EQ(Word::fromFloat(2.5f).asFloat(), 2.5f);
    EXPECT_EQ(Word::fromAtom(9).asAtom(), 9u);
    EXPECT_EQ(Word::fromPointer(0x1234).asPointer(), 0x1234u);
    EXPECT_TRUE(Word().isUninit());
}

TEST(WordTest, WrongTagExtractionPanics)
{
    EXPECT_THROW(Word::fromInt(1).asFloat(), sim::PanicError);
    EXPECT_THROW(Word::fromAtom(1).asPointer(), sim::PanicError);
}

TEST(WordTest, IdentityComparesBitsAndTag)
{
    EXPECT_EQ(Word::fromInt(1), Word::fromInt(1));
    // Same bits, different tag: different objects.
    EXPECT_FALSE(Word::fromInt(1) == Word::fromAtom(1));
}

TEST(WordTest, PrimitiveClassIsZeroExtendedTag)
{
    EXPECT_EQ(Word::fromInt(1).primitiveClass(),
              static_cast<mem::ClassId>(Tag::SmallInt));
    EXPECT_EQ(Word::fromFloat(1).primitiveClass(),
              static_cast<mem::ClassId>(Tag::Float));
}

TEST(Stats, CounterAndRatioDump)
{
    sim::Counter hits, total;
    hits += 3;
    total += 4;
    sim::StatGroup g("test");
    g.addCounter("hits", &hits, "h");
    g.addRatio("ratio", &hits, &total);
    EXPECT_EQ(g.counterValue("hits"), 3u);
    EXPECT_DOUBLE_EQ(g.ratioValue("ratio"), 0.75);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("test.hits 3"), std::string::npos);
}

TEST(Stats, HistogramMoments)
{
    sim::Histogram h(8, 2);
    for (std::uint64_t v : {1u, 3u, 3u, 9u})
        h.sample(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 9u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_EQ(h.bin(0), 1u); // [0,2): {1}
    EXPECT_EQ(h.bin(1), 2u); // [2,4): {3,3}
}

TEST(Rng, DeterministicAndUniform)
{
    sim::Rng a(7), b(7), c(8);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
    // below() respects the bound.
    sim::Rng r(1);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(17), 17u);
}

TEST(Rng, SkewedSizeIsLogUniform)
{
    // The paper's population: "great numbers of small segments and a
    // lesser number of large segments". skewedSize is log-uniform, so
    // half the samples land in the bottom half of the *octaves* (tiny
    // sizes) while the top octave — half the value range — gets only
    // ~1/20 of the samples.
    sim::Rng r(3);
    int bottom_octaves = 0, top_octave = 0;
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t s = r.skewedSize(1 << 20);
        ASSERT_GE(s, 1u);
        ASSERT_LE(s, 1u << 20);
        if (s <= (1 << 10))
            ++bottom_octaves;
        if (s > (1 << 19))
            ++top_octave;
    }
    EXPECT_GT(bottom_octaves, 4000);
    EXPECT_LT(top_octave, 1000);
    EXPECT_GT(top_octave, 0); // large objects do occur
}

TEST(Strutil, FormattingHelpers)
{
    EXPECT_EQ(sim::format("%d-%s", 5, "x"), "5-x");
    EXPECT_EQ(sim::percent(0.12345), "12.35%");
    EXPECT_EQ(sim::padLeft("ab", 4), "  ab");
    EXPECT_EQ(sim::padRight("ab", 4), "ab  ");
    EXPECT_EQ(sim::trim("  x y \n"), "x y");
    auto toks = sim::splitTokens("a  b\tc");
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(toks[2], "c");
}

TEST(Logging, PanicAndFatalAreDistinctTypes)
{
    EXPECT_THROW(sim::panic("x"), sim::PanicError);
    EXPECT_THROW(sim::fatal("y"), sim::FatalError);
    EXPECT_NO_THROW(sim::panicIf(false, "no"));
    EXPECT_THROW(sim::fatalIf(true, "yes"), sim::FatalError);
}

TEST(TaggedMemoryTest, SparseDefaultsAndHooks)
{
    mem::TaggedMemory m;
    EXPECT_TRUE(m.read(1'000'000).isUninit());
    int hook_calls = 0;
    m.setRefHook([&](mem::RefKind, mem::AbsAddr) { ++hook_calls; });
    m.write(5, Word::fromInt(9));
    m.read(5);
    EXPECT_EQ(hook_calls, 2);
    m.clearRefHook();
    // peek/poke bypass counting.
    std::uint64_t reads = m.reads();
    m.peek(5);
    EXPECT_EQ(m.reads(), reads);
}

TEST(TaggedMemoryTest, CopyAndClearBlock)
{
    mem::TaggedMemory m;
    for (int i = 0; i < 8; ++i)
        m.poke(100 + static_cast<mem::AbsAddr>(i), Word::fromInt(i));
    m.copy(200, 100, 8);
    EXPECT_EQ(m.peek(207).asInt(), 7);
    m.clearBlock(200, 8);
    EXPECT_TRUE(m.peek(203).isUninit());
}

TEST(PipelineTest, CostsAccumulateAsSpecified)
{
    core::Pipeline p;
    p.issue();
    p.issue();
    EXPECT_EQ(p.cycles(), 4u);
    p.chargeBranchDelay();
    EXPECT_EQ(p.cycles(), 5u);
    p.chargeCall(2);
    EXPECT_EQ(p.cycles(), 9u); // +2 overhead +2 operands
    p.chargeReturn();
    EXPECT_EQ(p.cycles(), 9u); // returns are free beyond base
    p.stallMemory(7);
    EXPECT_EQ(p.memoryStalls(), 7u);
    EXPECT_DOUBLE_EQ(p.cpi(), 8.0);
    p.reset();
    EXPECT_EQ(p.cycles(), 0u);
}

TEST(PipelineTest, StaircaseRendersFiveStages)
{
    core::Pipeline p;
    p.issue("add");
    p.issue("sub");
    std::ostringstream os;
    p.renderStaircase(os, 2);
    std::string s = os.str();
    EXPECT_NE(s.find("Fetch"), std::string::npos);
    EXPECT_NE(s.find("ITLB"), std::string::npos);
    EXPECT_NE(s.find("Write"), std::string::npos);
    EXPECT_NE(s.find("add"), std::string::npos);
}
