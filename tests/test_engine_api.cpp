/**
 * @file
 * The unified engine API: every seed workload must produce its
 * checksum through the ProgramSpec/Engine surface on all back ends
 * that accept it, sessions must lease engines exclusively and return
 * them like-new, and the pool must survive concurrent checkout from
 * more threads than it has engines.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "api/engine.hpp"
#include "api/session.hpp"
#include "fith/fith_programs.hpp"
#include "lang/workloads.hpp"

using namespace com;

namespace {

// ---------------------------------------------------------------------
// ProgramSpec
// ---------------------------------------------------------------------

TEST(ProgramSpec, WorkloadCarriesTheChecksum)
{
    api::ProgramSpec spec = api::ProgramSpec::workload("sieve");
    EXPECT_EQ(spec.language, api::Language::Smalltalk);
    EXPECT_EQ(spec.name, "sieve");
    EXPECT_TRUE(spec.hasExpected);
    EXPECT_EQ(spec.expected, 78);
}

TEST(ProgramSpec, WorkloadNamesListTheSuite)
{
    std::vector<std::string> names = lang::workloadNames();
    EXPECT_EQ(names.size(), lang::workloads().size());
    EXPECT_NE(std::find(names.begin(), names.end(), "sieve"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "richards"),
              names.end());
    EXPECT_NE(lang::findWorkload("sieve"), nullptr);
    EXPECT_EQ(lang::findWorkload("no-such-workload"), nullptr);
}

// ---------------------------------------------------------------------
// Engines
// ---------------------------------------------------------------------

class WorkloadOnEngines
    : public ::testing::TestWithParam<lang::Workload>
{
};

TEST_P(WorkloadOnEngines, ComAndStackAgreeOnTheChecksum)
{
    api::ProgramSpec spec = api::ProgramSpec::workload(GetParam().name);
    for (api::EngineKind kind :
         {api::EngineKind::Com, api::EngineKind::Stack}) {
        std::unique_ptr<api::Engine> engine = api::makeEngine(kind);
        ASSERT_TRUE(engine->supports(spec.language));
        api::RunOutcome out = engine->run(spec);
        EXPECT_TRUE(out.matches(spec))
            << engine->name() << " on " << spec.name << ": "
            << (out.ok ? "checksum mismatch, got " + out.resultText
                       : out.error);
        EXPECT_EQ(out.engine, engine->name());
        EXPECT_EQ(out.program, spec.name);
        EXPECT_GT(out.operations, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadOnEngines,
    ::testing::ValuesIn(lang::workloads()),
    [](const ::testing::TestParamInfo<lang::Workload> &info) {
        return info.param.name;
    });

TEST(EngineApi, FithEngineRunsTheStandardSuite)
{
    api::FithEngine engine;
    for (const fith::FithProgram &p : fith::standardPrograms()) {
        api::RunOutcome out =
            engine.run(api::ProgramSpec::fith(p.name, p.source));
        EXPECT_TRUE(out.ok) << p.name << ": " << out.error;
        EXPECT_GT(out.operations, 0u) << p.name;
    }
}

TEST(EngineApi, EnginesRejectLanguagesTheyCannotRun)
{
    api::ProgramSpec fith_spec = api::ProgramSpec::fith("f", "1 2 + .");
    api::ProgramSpec asm_spec =
        api::ProgramSpec::comAssembly("a", "putres.r c2, =7");

    api::StackEngine stack;
    EXPECT_FALSE(stack.supports(api::Language::Fith));
    EXPECT_FALSE(stack.run(fith_spec).ok);
    EXPECT_FALSE(stack.run(fith_spec).error.empty());

    api::FithEngine fith;
    EXPECT_FALSE(fith.supports(api::Language::ComAssembly));
    EXPECT_FALSE(fith.run(asm_spec).ok);

    api::ComEngine com;
    EXPECT_TRUE(com.supports(api::Language::ComAssembly));
    EXPECT_FALSE(com.supports(api::Language::Fith));
    EXPECT_FALSE(com.run(fith_spec).ok);
}

TEST(EngineApi, ComEngineRunsAssemblyWithArguments)
{
    api::ComEngine engine;
    api::ProgramSpec spec = api::ProgramSpec::comAssembly(
        "sum-squares", R"(
        move  c6, =0
        move  c7, =1
    loop:
        mul   c8, c7, c7
        add   c6, c6, c8
        add   c7, c7, =1
        le    c9, c7, c4
        jt    c9, @loop
        putres.r c2, c6
    )");
    spec.args = {mem::Word::fromInt(10)};
    api::RunOutcome out = engine.run(spec);
    ASSERT_TRUE(out.ok) << out.error;
    ASSERT_TRUE(out.result.isInt());
    EXPECT_EQ(out.result.asInt(), 385);
    EXPECT_EQ(out.resultText, "385");
}

TEST(EngineApi, RepeatRunsReuseTheCompiledProgram)
{
    // The engine memoizes compilation: the second run of the same
    // spec installs no new methods (same lookup table size) and still
    // produces the checksum.
    api::ComEngine engine;
    api::ProgramSpec spec = api::ProgramSpec::workload("fib");
    api::RunOutcome first = engine.run(spec);
    ASSERT_TRUE(first.matches(spec)) << first.error;
    std::size_t selectors = engine.machine().selectors().size();
    api::RunOutcome second = engine.run(spec);
    EXPECT_TRUE(second.matches(spec)) << second.error;
    EXPECT_EQ(engine.machine().selectors().size(), selectors);
    EXPECT_EQ(first.result, second.result);
}

TEST(EngineApi, OutputIsPerRun)
{
    api::ComEngine engine;
    api::ProgramSpec spec = api::ProgramSpec::smalltalk(
        "print", "main [ 42 print. ^0 ]");
    EXPECT_EQ(engine.run(spec).output, "42\n");
    EXPECT_EQ(engine.run(spec).output, "42\n"); // not "42\n42\n"
}

TEST(EngineApi, MalformedProgramsFailTheOutcomeNotTheProcess)
{
    // Compile errors fatal() inside the compilers; run() must contain
    // them (a serving thread cannot afford an escaping exception).
    api::ProgramSpec bad_st = api::ProgramSpec::smalltalk(
        "broken", "main [ ^1 + ]]] ]");
    api::ProgramSpec bad_asm =
        api::ProgramSpec::comAssembly("broken", "frobnicate c1, c2");

    api::ComEngine com;
    api::RunOutcome out = com.run(bad_st);
    EXPECT_FALSE(out.ok);
    EXPECT_FALSE(out.error.empty());
    out = com.run(bad_asm);
    EXPECT_FALSE(out.ok);
    EXPECT_FALSE(out.error.empty());
    // The engine survives: a good program still runs afterwards.
    api::ProgramSpec good = api::ProgramSpec::workload("fib");
    EXPECT_TRUE(com.run(good).matches(good));

    api::StackEngine stack;
    out = stack.run(bad_st);
    EXPECT_FALSE(out.ok);
    EXPECT_FALSE(out.error.empty());
    EXPECT_TRUE(stack.run(good).matches(good));
}

TEST(EngineApi, KindNamesRoundTrip)
{
    for (api::EngineKind kind :
         {api::EngineKind::Com, api::EngineKind::Stack,
          api::EngineKind::Fith}) {
        api::EngineKind parsed;
        ASSERT_TRUE(
            api::parseEngineKind(api::engineKindName(kind), parsed));
        EXPECT_EQ(parsed, kind);
        std::unique_ptr<api::Engine> engine = api::makeEngine(kind);
        EXPECT_STREQ(engine->name(), api::engineKindName(kind));
    }
    api::EngineKind k;
    EXPECT_FALSE(api::parseEngineKind("z80", k));
}

// ---------------------------------------------------------------------
// Sessions and the pool
// ---------------------------------------------------------------------

TEST(EnginePool, CheckoutRunReleaseRoundTrip)
{
    api::EnginePool::Config cfg;
    cfg.comEngines = 1;
    cfg.stackEngines = 1;
    cfg.fithEngines = 1;
    api::EnginePool pool(cfg);

    EXPECT_EQ(pool.idle(api::EngineKind::Com), 1u);
    {
        api::Session session = pool.checkout(api::EngineKind::Com);
        ASSERT_TRUE(session);
        EXPECT_EQ(pool.idle(api::EngineKind::Com), 0u);
        api::ProgramSpec spec = api::ProgramSpec::workload("fib");
        EXPECT_TRUE(session.run(spec).matches(spec));
    }
    EXPECT_EQ(pool.idle(api::EngineKind::Com), 1u);
    EXPECT_EQ(pool.checkouts(), 1u);
    EXPECT_EQ(pool.resets(), 1u);
}

TEST(EnginePool, CheckinHandsBackALikeNewEngine)
{
    api::EnginePool::Config cfg;
    cfg.comEngines = 1;
    api::EnginePool pool(cfg);

    {
        api::Session session = pool.checkout(api::EngineKind::Com);
        api::ProgramSpec spec = api::ProgramSpec::workload("sieve");
        ASSERT_TRUE(session.run(spec).matches(spec));
    }
    // The single engine comes back reset: zero cycles on the clock.
    api::Session session = pool.checkout(api::EngineKind::Com);
    auto &com = static_cast<api::ComEngine &>(session.engine());
    EXPECT_EQ(com.machine().pipeline().cycles(), 0u);
}

TEST(EnginePool, ConcurrentSessionsFromMoreThreadsThanEngines)
{
    // 8 threads contend for 2+1+1 engines; every request must still
    // produce its checksum, and nothing may deadlock.
    api::EnginePool::Config cfg;
    cfg.comEngines = 2;
    cfg.stackEngines = 1;
    cfg.fithEngines = 1;
    api::EnginePool pool(cfg);

    const std::vector<std::pair<api::EngineKind, api::ProgramSpec>>
        requests = {
            {api::EngineKind::Com, api::ProgramSpec::workload("fib")},
            {api::EngineKind::Stack,
             api::ProgramSpec::workload("bank")},
            {api::EngineKind::Fith,
             api::ProgramSpec::fith("fith-fib",
                                    ":: Int fib dup 2 < IF ELSE dup 1 "
                                    "- fib swap 2 - fib + THEN ;\n"
                                    "10 fib drop")},
            {api::EngineKind::Com,
             api::ProgramSpec::workload("dictionary")},
        };

    constexpr unsigned kThreads = 8;
    constexpr unsigned kPerThread = 6;
    std::atomic<unsigned> failures{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (unsigned i = 0; i < kPerThread; ++i) {
                const auto &req =
                    requests[(t + i) % requests.size()];
                api::Session session = pool.checkout(req.first);
                api::RunOutcome out = session.run(req.second);
                if (!out.matches(req.second))
                    failures.fetch_add(1);
            }
        });
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(pool.checkouts(), kThreads * kPerThread);
    EXPECT_EQ(pool.idle(api::EngineKind::Com), 2u);
    EXPECT_EQ(pool.idle(api::EngineKind::Stack), 1u);
    EXPECT_EQ(pool.idle(api::EngineKind::Fith), 1u);
}

TEST(EnginePool, SessionsMove)
{
    api::EnginePool::Config cfg;
    cfg.comEngines = 1;
    api::EnginePool pool(cfg);

    api::Session a = pool.checkout(api::EngineKind::Com);
    api::Session b = std::move(a);
    EXPECT_FALSE(a);
    ASSERT_TRUE(b);
    api::ProgramSpec spec = api::ProgramSpec::workload("fib");
    EXPECT_TRUE(b.run(spec).matches(spec));
    b.release();
    EXPECT_FALSE(b);
    EXPECT_EQ(pool.idle(api::EngineKind::Com), 1u);
}

} // namespace
