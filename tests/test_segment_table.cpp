/**
 * @file
 * Segment table tests: allocation, bounds, growth/aliasing traps,
 * capability sharing, buddy-allocator alignment (paper Sections 2.2,
 * 3.1).
 */

#include <gtest/gtest.h>

#include "mem/absolute_space.hpp"
#include "mem/fp_address.hpp"
#include "mem/segment_table.hpp"
#include "mem/tagged_memory.hpp"
#include "sim/rng.hpp"

using namespace com;
using mem::FpAddress;
using mem::XlateStatus;

namespace {

struct Env
{
    mem::TaggedMemory memory;
    mem::AbsoluteSpace space{0, 26};
    mem::SegmentTable table{mem::kFp32, space, 0};
};

} // namespace

TEST(SegmentTable, AllocateTranslateInBounds)
{
    Env env;
    std::uint64_t v = env.table.allocateObject(10, 42);
    for (std::uint64_t i = 0; i < 10; ++i) {
        mem::XlateResult r = env.table.translate(v, i);
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(r.cls, 42);
    }
}

TEST(SegmentTable, BoundsFaultBeyondLength)
{
    Env env;
    std::uint64_t v = env.table.allocateObject(10, 42);
    mem::XlateResult r = env.table.translate(v, 10);
    EXPECT_EQ(r.status, XlateStatus::Bounds);
}

TEST(SegmentTable, NoSegmentForUnmappedName)
{
    Env env;
    std::uint64_t v = FpAddress::compose(mem::kFp32, 5, 999, 0);
    EXPECT_EQ(env.table.translate(v).status, XlateStatus::NoSegment);
}

TEST(SegmentTable, SegmentsAlignedToTheirSize)
{
    // "All segments are aligned on absolute addresses which are
    //  multiples of their sizes so no add is required."
    Env env;
    sim::Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        std::uint64_t size = rng.skewedSize(4096);
        std::uint64_t v = env.table.allocateObject(size, 1);
        std::uint64_t exp = FpAddress::exponent(mem::kFp32, v);
        mem::XlateResult r = env.table.translate(v, 0);
        ASSERT_TRUE(r.ok());
        ASSERT_EQ(r.abs & ((1ull << exp) - 1), 0u)
            << "segment base not aligned to 2^" << exp;
    }
}

TEST(SegmentTable, FreeRecyclesNamesAndStorage)
{
    Env env;
    std::uint64_t before = env.space.wordsAllocated();
    std::vector<std::uint64_t> names;
    for (int i = 0; i < 64; ++i)
        names.push_back(env.table.allocateObject(16, 1));
    for (std::uint64_t v : names)
        env.table.freeObject(v);
    EXPECT_EQ(env.space.wordsAllocated(), before);
    EXPECT_EQ(env.table.numDescriptors(), 0u);
    // Freed names are reusable.
    std::uint64_t v = env.table.allocateObject(16, 1);
    EXPECT_TRUE(env.table.translate(v).ok());
}

TEST(SegmentTable, GrowWithinExponentExtendsInPlace)
{
    Env env;
    std::uint64_t v = env.table.allocateObject(10, 7);
    std::uint64_t v2 = env.table.growObject(v, 16, env.memory);
    EXPECT_EQ(v, v2); // 16 words still fit exponent 4
    EXPECT_TRUE(env.table.translate(v, 15).ok());
}

TEST(SegmentTable, GrowBeyondExponentCopiesAndAliases)
{
    Env env;
    std::uint64_t v = env.table.allocateObject(16, 7);
    mem::XlateResult r0 = env.table.translate(v, 3);
    env.memory.poke(r0.abs, mem::Word::fromInt(99));

    std::uint64_t v2 = env.table.growObject(v, 100, env.memory);
    EXPECT_NE(v, v2);
    // Contents copied.
    mem::XlateResult r1 = env.table.translate(v2, 3);
    ASSERT_TRUE(r1.ok());
    EXPECT_EQ(env.memory.peek(r1.abs).asInt(), 99);
    // Old name still valid within the old exponent's bounds...
    mem::XlateResult r2 = env.table.translate(v, 15);
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r2.abs, env.table.translate(v2, 15).abs);
    // ...and traps beyond them, supplying the replacement pointer.
    mem::XlateResult r3 = env.table.translate(v, 50);
    ASSERT_EQ(r3.status, XlateStatus::GrowthTrap);
    EXPECT_EQ(FpAddress::segKey(mem::kFp32, r3.newVaddr),
              FpAddress::segKey(mem::kFp32, v2));
}

TEST(SegmentTable, GrowthChainTrapsResolveToCanonical)
{
    Env env;
    std::uint64_t v1 = env.table.allocateObject(4, 7);
    std::uint64_t v2 = env.table.growObject(v1, 40, env.memory);
    std::uint64_t v3 = env.table.growObject(v2, 400, env.memory);
    EXPECT_NE(v2, v3);
    // The first name still works within its exponent.
    EXPECT_TRUE(env.table.translate(v1, 3).ok());
    // And the middle name traps to the newest.
    mem::XlateResult r = env.table.translate(v2, 100);
    ASSERT_EQ(r.status, XlateStatus::GrowthTrap);
    EXPECT_EQ(FpAddress::segKey(mem::kFp32, r.newVaddr),
              FpAddress::segKey(mem::kFp32, v3));
}

TEST(SegmentTable, ShareWithGrantsNarrowedCapability)
{
    Env env;
    mem::SegmentTable other(mem::kFp32, env.space, 1);
    std::uint64_t v = env.table.allocateObject(8, 7);
    std::uint64_t shared = env.table.shareWith(other, v, false);

    mem::XlateResult rd = other.translate(shared, 2, false);
    ASSERT_TRUE(rd.ok());
    EXPECT_EQ(rd.abs, env.table.translate(v, 2).abs);

    mem::XlateResult wr = other.translate(shared, 2, true);
    EXPECT_EQ(wr.status, XlateStatus::ProtFault);
}

TEST(SegmentTable, SharedNameDoesNotOwnStorage)
{
    Env env;
    mem::SegmentTable other(mem::kFp32, env.space, 1);
    std::uint64_t v = env.table.allocateObject(8, 7);
    std::uint64_t shared = env.table.shareWith(other, v, true);
    other.freeObject(shared);
    // The owner's name must still translate.
    EXPECT_TRUE(env.table.translate(v, 0).ok());
}

TEST(SegmentTable, ChangeListenerFiresOnGrowAndFree)
{
    Env env;
    std::vector<std::uint64_t> invalidated;
    env.table.addChangeListener(
        [&](std::uint32_t, std::uint64_t key) {
            invalidated.push_back(key);
        });
    std::uint64_t v = env.table.allocateObject(8, 7);
    env.table.growObject(v, 100, env.memory);
    EXPECT_EQ(invalidated.size(), 1u);
    env.table.freeObject(v);
    EXPECT_EQ(invalidated.size(), 2u);
}

// ---------------------------------------------------------------------
// Absolute space (buddy allocator) properties.
// ---------------------------------------------------------------------

TEST(AbsoluteSpace, AllocationsAreAlignedAndDisjoint)
{
    mem::AbsoluteSpace space(0, 20);
    sim::Rng rng(11);
    std::vector<std::pair<mem::AbsAddr, unsigned>> blocks;
    for (int i = 0; i < 200; ++i) {
        unsigned order = static_cast<unsigned>(rng.below(8));
        mem::AbsAddr a = space.allocate(order);
        ASSERT_EQ(a & ((1ull << order) - 1), 0u);
        for (auto &[b, bo] : blocks) {
            bool disjoint = a + (1ull << order) <= b ||
                            b + (1ull << bo) <= a;
            ASSERT_TRUE(disjoint) << "overlapping buddy blocks";
        }
        blocks.emplace_back(a, order);
    }
}

TEST(AbsoluteSpace, FreeCoalescesBackToOneBlock)
{
    mem::AbsoluteSpace space(0, 16);
    std::vector<mem::AbsAddr> blocks;
    for (int i = 0; i < 64; ++i)
        blocks.push_back(space.allocate(10)); // 64 x 1K = entire region
    EXPECT_EQ(space.wordsAllocated(), space.capacityWords());
    EXPECT_THROW(space.allocate(0), sim::FatalError);
    for (mem::AbsAddr a : blocks)
        space.free(a);
    EXPECT_EQ(space.wordsAllocated(), 0u);
    // After full coalescing a maximal allocation must succeed.
    mem::AbsAddr big = space.allocate(16);
    EXPECT_EQ(big, 0u);
}

TEST(AbsoluteSpace, DoubleFreePanics)
{
    mem::AbsoluteSpace space(0, 16);
    mem::AbsAddr a = space.allocate(4);
    space.free(a);
    EXPECT_THROW(space.free(a), sim::PanicError);
}

TEST(AbsoluteSpace, RandomAllocFreeConservesWords)
{
    mem::AbsoluteSpace space(1ull << 20, 18);
    sim::Rng rng(3);
    std::vector<mem::AbsAddr> live;
    std::uint64_t expected = 0;
    for (int i = 0; i < 3000; ++i) {
        if (live.empty() || rng.chance(0.6)) {
            unsigned order = static_cast<unsigned>(rng.below(6));
            live.push_back(space.allocate(order));
            expected += 1ull << order;
        } else {
            std::size_t k = static_cast<std::size_t>(
                rng.below(live.size()));
            mem::AbsAddr a = live[k];
            expected -= 1ull << space.orderOf(a);
            space.free(a);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
        }
        ASSERT_EQ(space.wordsAllocated(), expected);
    }
}
