/**
 * @file
 * FlagSet parsing regressions (bench/flags.hpp): the `--flag value`
 * form added alongside `--flag=value`, and error messages that name
 * the exact offending command-line token.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench/flags.hpp"

using namespace com;

namespace {

/** argv builder: keeps the strings alive, hands out char pointers. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args)
        : strings_(std::move(args))
    {
        strings_.insert(strings_.begin(), "test_binary");
        for (std::string &s : strings_)
            ptrs_.push_back(s.data());
    }

    int argc() const { return static_cast<int>(ptrs_.size()); }
    char **argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> strings_;
    std::vector<char *> ptrs_;
};

TEST(BenchFlags, EqualsFormParses)
{
    bench::FlagSet flags("test_binary", "flag parsing under test");
    std::uint64_t n = 0;
    std::string s;
    double d = 0.0;
    flags.addUint("count", &n, "");
    flags.addString("name", &s, "");
    flags.addDouble("rate", &d, "");

    Argv argv({"--count=42", "--name=fib", "--rate=1.5"});
    std::string err;
    ASSERT_TRUE(flags.tryParse(argv.argc(), argv.argv(), &err))
        << err;
    EXPECT_EQ(n, 42u);
    EXPECT_EQ(s, "fib");
    EXPECT_DOUBLE_EQ(d, 1.5);
}

TEST(BenchFlags, SpaceSeparatedFormParses)
{
    bench::FlagSet flags("test_binary", "flag parsing under test");
    std::uint64_t n = 0;
    std::string s;
    flags.addUint("count", &n, "");
    flags.addString("name", &s, "");

    Argv argv({"--count", "7", "--name", "sieve"});
    std::string err;
    ASSERT_TRUE(flags.tryParse(argv.argc(), argv.argv(), &err))
        << err;
    EXPECT_EQ(n, 7u);
    EXPECT_EQ(s, "sieve");
}

TEST(BenchFlags, MixedFormsParse)
{
    bench::FlagSet flags("test_binary", "flag parsing under test");
    std::uint64_t a = 0, b = 0;
    flags.addUint("alpha", &a, "");
    flags.addUint("beta", &b, "");

    Argv argv({"--alpha=1", "--beta", "2"});
    std::string err;
    ASSERT_TRUE(flags.tryParse(argv.argc(), argv.argv(), &err));
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u);
}

TEST(BenchFlags, UnknownFlagNamesTheToken)
{
    bench::FlagSet flags("test_binary", "flag parsing under test");
    std::uint64_t n = 0;
    flags.addUint("count", &n, "");

    Argv argv({"--bogus=3"});
    std::string err;
    EXPECT_FALSE(flags.tryParse(argv.argc(), argv.argv(), &err));
    EXPECT_NE(err.find("--bogus"), std::string::npos) << err;
    EXPECT_NE(err.find("--bogus=3"), std::string::npos) << err;
}

TEST(BenchFlags, UnknownFlagInSpaceFormDoesNotEatValue)
{
    // "--bogus 3": since --bogus is unknown it must NOT consume "3";
    // the error names the flag itself.
    bench::FlagSet flags("test_binary", "flag parsing under test");
    std::uint64_t n = 0;
    flags.addUint("count", &n, "");

    Argv argv({"--bogus", "3"});
    std::string err;
    EXPECT_FALSE(flags.tryParse(argv.argc(), argv.argv(), &err));
    EXPECT_NE(err.find("--bogus"), std::string::npos) << err;
}

TEST(BenchFlags, MissingValueNamesTheFlag)
{
    bench::FlagSet flags("test_binary", "flag parsing under test");
    std::uint64_t n = 0;
    flags.addUint("count", &n, "");

    Argv argv({"--count"});
    std::string err;
    EXPECT_FALSE(flags.tryParse(argv.argc(), argv.argv(), &err));
    EXPECT_NE(err.find("--count"), std::string::npos) << err;
    EXPECT_NE(err.find("value"), std::string::npos) << err;
}

TEST(BenchFlags, BadValueNamesValueAndToken)
{
    bench::FlagSet flags("test_binary", "flag parsing under test");
    std::uint64_t n = 0;
    flags.addUint("count", &n, "");

    Argv argv({"--count=banana"});
    std::string err;
    EXPECT_FALSE(flags.tryParse(argv.argc(), argv.argv(), &err));
    EXPECT_NE(err.find("banana"), std::string::npos) << err;
    EXPECT_NE(err.find("--count"), std::string::npos) << err;
}

TEST(BenchFlags, DuplicateFlagIsRejectedNamingTheToken)
{
    bench::FlagSet flags("test_binary", "flag parsing under test");
    std::uint64_t n = 0;
    std::string s;
    flags.addUint("count", &n, "");
    flags.addString("name", &s, "");

    // The second occurrence is the error, named verbatim — including
    // across the = and space-separated forms.
    Argv argv({"--count=1", "--name=fib", "--count", "2"});
    std::string err;
    EXPECT_FALSE(flags.tryParse(argv.argc(), argv.argv(), &err));
    EXPECT_NE(err.find("duplicate flag '--count'"), std::string::npos)
        << err;
    EXPECT_NE(err.find("'--count'"), std::string::npos) << err;
    // The first occurrence was applied before the duplicate stopped
    // the parse.
    EXPECT_EQ(n, 1u);
}

TEST(BenchFlags, NonFlagArgumentIsRejected)
{
    bench::FlagSet flags("test_binary", "flag parsing under test");
    std::uint64_t n = 0;
    flags.addUint("count", &n, "");

    Argv argv({"stray"});
    std::string err;
    EXPECT_FALSE(flags.tryParse(argv.argc(), argv.argv(), &err));
    EXPECT_NE(err.find("stray"), std::string::npos) << err;
}

TEST(BenchFlags, HelpIsReportedNotFatal)
{
    bench::FlagSet flags("test_binary", "flag parsing under test");
    std::uint64_t n = 0;
    flags.addUint("count", &n, "");

    Argv argv({"--help"});
    std::string err;
    EXPECT_TRUE(flags.tryParse(argv.argc(), argv.argv(), &err));
    EXPECT_TRUE(flags.helpRequested());
}

} // namespace
