/**
 * @file
 * Fith machine tests: tokenizing, control flow, per-class dispatch and
 * trace emission.
 */

#include <gtest/gtest.h>

#include "fith/fith.hpp"
#include "fith/fith_programs.hpp"

using namespace com;
using fith::FithMachine;
using fith::FithResult;

TEST(Fith, ArithmeticAndStack)
{
    FithMachine fm;
    FithResult r = fm.run("2 3 + 4 *");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(fm.pop().asInt(), 20);
}

TEST(Fith, MixedModeProducesFloat)
{
    FithMachine fm;
    FithResult r = fm.run("1 0.5 +");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FLOAT_EQ(fm.pop().asFloat(), 1.5f);
}

TEST(Fith, IfElseThen)
{
    FithMachine fm;
    ASSERT_TRUE(fm.run("5 3 < IF 111 ELSE 222 THEN").ok);
    EXPECT_EQ(fm.pop().asInt(), 222);
    ASSERT_TRUE(fm.run("3 5 < IF 111 ELSE 222 THEN").ok);
    EXPECT_EQ(fm.pop().asInt(), 111);
}

TEST(Fith, BeginUntilLoop)
{
    FithMachine fm;
    // Count down 10..1, summing into an accumulator.
    FithResult r = fm.run(
        "0 10 BEGIN dup rot + swap 1 - dup 0 = UNTIL drop");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(fm.pop().asInt(), 55);
}

TEST(Fith, DoLoopWithIndex)
{
    FithMachine fm;
    FithResult r = fm.run("0 10 0 DO I + LOOP");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(fm.pop().asInt(), 45);
}

TEST(Fith, ClassSpecificDispatch)
{
    FithMachine fm;
    FithResult r = fm.run(
        ":: Int describe drop 'integer ;\n"
        ":: Float describe drop 'floating ;\n"
        "42 describe 4.5 describe");
    ASSERT_TRUE(r.ok) << r.error;
    // TOS: result for float, below: result for int ('integer was
    // interned first, so its atom id is the smaller one).
    std::uint32_t for_float = fm.pop().asAtom();
    std::uint32_t for_int = fm.pop().asAtom();
    EXPECT_EQ(for_float, for_int + 1);
}

TEST(Fith, UniversalDefinitionFallsBack)
{
    FithMachine fm;
    FithResult r = fm.run(": sq dup * ;  7 sq  1.5 sq");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FLOAT_EQ(fm.pop().asFloat(), 2.25f);
    EXPECT_EQ(fm.pop().asInt(), 49);
}

TEST(Fith, RecursionWorks)
{
    FithMachine fm;
    FithResult r = fm.run(
        ":: Int fib dup 2 < IF ELSE dup 1 - fib swap 2 - fib + THEN ;\n"
        "12 fib");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(fm.pop().asInt(), 144);
}

TEST(Fith, DoesNotUnderstandReportsError)
{
    FithMachine fm;
    FithResult r = fm.run("42 frobnicate");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("not understood"), std::string::npos);
}

TEST(Fith, ArraysStoreAndFetch)
{
    FithMachine fm;
    FithResult r = fm.run("8 array dup dup 99 swap 3 ! 3 @ swap len");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(fm.pop().asInt(), 8);  // len
    EXPECT_EQ(fm.pop().asInt(), 99); // fetched value
}

TEST(Fith, TraceRecordsAddressOpcodeClass)
{
    FithMachine fm;
    fm.setTracing(true);
    ASSERT_TRUE(fm.run("1 2 +").ok);
    const auto &es = fm.trace().entries();
    ASSERT_GE(es.size(), 3u);
    // The '+' dispatch must record class Int.
    const trace::Entry &plus = es[2];
    EXPECT_EQ(plus.cls, static_cast<mem::ClassId>(fith::FithClass::Int));
}

TEST(Fith, StandardProgramsAllRun)
{
    for (const auto &p : fith::standardPrograms()) {
        FithMachine fm;
        FithResult r = fm.run(p.source);
        EXPECT_TRUE(r.ok) << p.name << ": " << r.error;
        EXPECT_GT(r.steps, 100u) << p.name;
    }
}

TEST(Fith, SieveCountsPrimes)
{
    FithMachine fm;
    for (const auto &p : fith::standardPrograms()) {
        if (p.name == "sieve") {
            ASSERT_TRUE(fm.run(p.source).ok);
            // 78 primes below 400 (the count loop starts at flag 2).
            EXPECT_EQ(fm.output(), "78 ");
        }
    }
}

TEST(Fith, SyntheticProgramRunsAndIsDeterministic)
{
    FithMachine a, b;
    std::string src = fith::syntheticProgram(7, 32, 50);
    ASSERT_TRUE(a.run(src).ok);
    ASSERT_TRUE(b.run(src).ok);
    EXPECT_EQ(a.dispatches(), b.dispatches());
    EXPECT_GT(a.dispatches(), 1000u);
}

TEST(Fith, SuiteTraceIsLargeAndDiverse)
{
    trace::Trace t = fith::collectSuiteTrace(42, 50'000);
    EXPECT_GE(t.size(), 50'000u);
    // Paper: the ITLB working set must stress caches of 8..512 entries.
    EXPECT_GT(t.distinctKeys(), 64u);
    EXPECT_GT(t.distinctAddresses(), 500u);
}
