/**
 * @file
 * The socket server's lifecycle (net/server.hpp + net/client.hpp):
 * request/response round trips over real TCP, concurrent clients
 * (exercised under TSan in CI), pipelined requests matched by id,
 * malformed-frame containment (Error frame, connection survives),
 * protocol-fatal streams (closed), the metrics frame, and graceful
 * drain — requestDrain() resolves every accepted request before
 * run() returns.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"

using namespace com;

namespace {

/** A tiny always-valid Fith program with a known checksum. */
api::ProgramSpec
addSpec()
{
    api::ProgramSpec spec = api::ProgramSpec::fith("add", "1 2 + dup .");
    spec.hasExpected = true;
    spec.expected = 3;
    return spec;
}

/** A Server on a free port plus the thread running its loop. */
class ServerFixture
{
  public:
    explicit ServerFixture(net::Server::Config cfg = {})
    {
        cfg.port = 0;
        if (cfg.scheduler.pool.fithEngines == 0)
            cfg.scheduler.pool.fithEngines = 2;
        server_ = std::make_unique<net::Server>(cfg);
        thread_ = std::thread([this] { server_->run(); });
    }

    ~ServerFixture()
    {
        if (thread_.joinable()) {
            server_->requestDrain();
            thread_.join();
        }
    }

    net::Server &server() { return *server_; }

    net::Client::Config
    clientConfig() const
    {
        net::Client::Config cfg;
        cfg.port = server_->port();
        return cfg;
    }

    /** Drain and join — asserts run() actually returns. */
    void
    shutdown()
    {
        server_->requestDrain();
        thread_.join();
    }

  private:
    std::unique_ptr<net::Server> server_;
    std::thread thread_;
};

TEST(NetServer, ServesOneRequest)
{
    ServerFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()))
        << client.error();

    serve::Response r = client.run(api::EngineKind::Fith, addSpec());
    EXPECT_EQ(r.status, serve::ResponseStatus::Ok);
    EXPECT_TRUE(r.outcome.ok);
    EXPECT_EQ(r.outcome.output, "3 ");
    EXPECT_GT(r.latencySeconds, 0.0);
}

TEST(NetServer, ManySequentialRequestsOneConnection)
{
    ServerFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()));
    for (int i = 0; i < 20; ++i) {
        serve::Response r =
            client.run(api::EngineKind::Fith, addSpec());
        ASSERT_EQ(r.status, serve::ResponseStatus::Ok) << r.error;
    }
}

TEST(NetServer, ConcurrentClients)
{
    net::Server::Config cfg;
    cfg.scheduler.shards = 2;
    cfg.scheduler.pool.fithEngines = 2;
    ServerFixture fx(cfg);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 10;
    std::atomic<int> ok{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            net::Client client;
            if (!client.connect(fx.clientConfig()))
                return;
            for (int i = 0; i < kPerThread; ++i) {
                serve::Response r =
                    client.run(api::EngineKind::Fith, addSpec());
                if (r.status == serve::ResponseStatus::Ok)
                    ok.fetch_add(1);
            }
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(ok.load(), kThreads * kPerThread);
}

TEST(NetServer, MetricsFrameReportsServedRequests)
{
    ServerFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()));
    for (int i = 0; i < 3; ++i)
        (void)client.run(api::EngineKind::Fith, addSpec());

    serve::Metrics::Snapshot snap;
    ASSERT_TRUE(client.metrics(&snap)) << client.error();
    EXPECT_EQ(snap.submitted, 3u);
    EXPECT_EQ(snap.served, 3u);
    EXPECT_GT(snap.latency.count, 0u);
}

/** A blocking raw socket for speaking hand-built bytes at a server. */
class RawConn
{
  public:
    explicit RawConn(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        connected_ =
            ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0;
    }
    ~RawConn()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return connected_; }

    void
    sendAll(const std::string &bytes)
    {
        std::size_t at = 0;
        while (at < bytes.size()) {
            ssize_t n = ::send(fd_, bytes.data() + at,
                               bytes.size() - at, MSG_NOSIGNAL);
            if (n <= 0)
                return;
            at += static_cast<std::size_t>(n);
        }
    }

    /** Block until one whole frame arrives; false on EOF. */
    bool
    readFrame(net::FrameView *view, std::string *hold)
    {
        for (;;) {
            std::size_t consumed = 0;
            if (net::peekFrame(buf_, view, &consumed) ==
                net::DecodeStatus::Frame) {
                hold->assign(buf_, 0, consumed);
                buf_.erase(0, consumed);
                std::size_t unused = 0;
                net::peekFrame(*hold, view, &unused);
                return true;
            }
            char chunk[4096];
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return false;
            buf_.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    bool connected_ = false;
    std::string buf_;
};

TEST(NetServer, MalformedPayloadGetsErrorFrameAndConnectionSurvives)
{
    ServerFixture fx;
    RawConn raw(fx.server().port());
    ASSERT_TRUE(raw.connected());

    // Hand-mangle a frame: valid header, truncated payload (header
    // length patched to match, so it peeks fine but decodes false).
    net::RunRequestFrame good = net::RunRequestFrame::fromSpec(
        1, api::EngineKind::Fith, addSpec(), 0);
    std::string bad = net::encodeRunRequest(good);
    bad.resize(bad.size() - 4);
    std::uint32_t len = static_cast<std::uint32_t>(
        bad.size() - net::kHeaderSize);
    bad[8] = static_cast<char>(len & 0xFF);
    bad[9] = static_cast<char>((len >> 8) & 0xFF);
    bad[10] = static_cast<char>((len >> 16) & 0xFF);
    bad[11] = static_cast<char>((len >> 24) & 0xFF);
    raw.sendAll(bad);

    net::FrameView view;
    std::string hold;
    ASSERT_TRUE(raw.readFrame(&view, &hold));
    EXPECT_EQ(view.type, net::FrameType::Error);
    net::ErrorFrame err;
    ASSERT_TRUE(net::decodeError(view, &err));
    EXPECT_EQ(err.code, net::ErrorCode::BadFrame);

    // The SAME connection still serves well-formed frames after the
    // bad one was skipped.
    good.requestId = 2;
    raw.sendAll(net::encodeRunRequest(good));
    ASSERT_TRUE(raw.readFrame(&view, &hold));
    EXPECT_EQ(view.type, net::FrameType::RunResponse);
    EXPECT_EQ(view.requestId, 2u);
    net::RunResponseFrame resp;
    ASSERT_TRUE(net::decodeRunResponse(view, &resp));
    EXPECT_EQ(resp.status, serve::ResponseStatus::Ok);
}

TEST(NetServer, GarbageStreamIsClosed)
{
    // Genuine garbage (an HTTP GET is NOT garbage any more — see
    // HttpGetIsAnsweredWithPrometheusText below).
    ServerFixture fx;
    RawConn raw(fx.server().port());
    ASSERT_TRUE(raw.connected());
    raw.sendAll("\x7f\x03XYZ not a frame, not http\r\n");

    // Best-effort Error frame, then EOF: readFrame returns the Error
    // first (if it arrived) and false after.
    net::FrameView view;
    std::string hold;
    bool got = raw.readFrame(&view, &hold);
    if (got) {
        EXPECT_EQ(view.type, net::FrameType::Error);
        EXPECT_FALSE(raw.readFrame(&view, &hold));
    }
}

TEST(NetServer, VersionMismatchIsRefused)
{
    ServerFixture fx;
    RawConn raw(fx.server().port());
    ASSERT_TRUE(raw.connected());

    std::string frame = net::encodeRunRequest(
        net::RunRequestFrame::fromSpec(1, api::EngineKind::Fith,
                                       addSpec(), 0));
    frame[4] = static_cast<char>(net::kProtocolVersion + 1);
    raw.sendAll(frame);

    net::FrameView view;
    std::string hold;
    bool got = raw.readFrame(&view, &hold);
    if (got) {
        EXPECT_EQ(view.type, net::FrameType::Error);
        net::ErrorFrame err;
        ASSERT_TRUE(net::decodeError(view, &err));
        EXPECT_EQ(err.code, net::ErrorCode::VersionMismatch);
        EXPECT_FALSE(raw.readFrame(&view, &hold));
    }
}

TEST(NetServer, PipelinedRequestsMatchById)
{
    ServerFixture fx;
    RawConn raw(fx.server().port());
    ASSERT_TRUE(raw.connected());

    // Send three requests back-to-back before reading anything;
    // responses must carry the matching ids (order may vary).
    std::string burst;
    for (std::uint64_t id = 10; id < 13; ++id)
        burst += net::encodeRunRequest(net::RunRequestFrame::fromSpec(
            id, api::EngineKind::Fith, addSpec(), 0));
    raw.sendAll(burst);

    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 3; ++i) {
        net::FrameView view;
        std::string hold;
        ASSERT_TRUE(raw.readFrame(&view, &hold));
        ASSERT_EQ(view.type, net::FrameType::RunResponse);
        net::RunResponseFrame resp;
        ASSERT_TRUE(net::decodeRunResponse(view, &resp));
        EXPECT_EQ(resp.status, serve::ResponseStatus::Ok);
        ids.push_back(resp.requestId);
    }
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, (std::vector<std::uint64_t>{10, 11, 12}));
}

TEST(NetServer, DrainResolvesEveryAcceptedRequest)
{
    net::Server::Config cfg;
    cfg.scheduler.pool.fithEngines = 1;
    cfg.scheduler.workersPerShard = 1;
    ServerFixture fx(cfg);

    // Saturate, then drain mid-flight: every accepted request must
    // still resolve (Ok here — no deadlines), and run() must return.
    constexpr int kThreads = 3;
    constexpr int kPerThread = 5;
    std::atomic<int> resolved{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            net::Client client;
            if (!client.connect(fx.clientConfig()))
                return;
            for (int i = 0; i < kPerThread; ++i) {
                serve::Response r =
                    client.run(api::EngineKind::Fith, addSpec());
                if (r.status == serve::ResponseStatus::Ok)
                    resolved.fetch_add(1);
            }
        });

    for (std::thread &t : threads)
        t.join();
    fx.shutdown(); // asserts run() returns
    EXPECT_EQ(resolved.load(), kThreads * kPerThread);
    EXPECT_TRUE(fx.server().draining());
}

TEST(NetServer, ReportsFramesServed)
{
    ServerFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()));
    (void)client.run(api::EngineKind::Fith, addSpec());
    serve::Metrics::Snapshot snap;
    (void)client.metrics(&snap);
    fx.shutdown();
    EXPECT_GE(fx.server().framesServed(), 2u);
}

TEST(NetServer, TraceFrameReturnsServedSpans)
{
    ServerFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()));
    constexpr int kRequests = 4;
    for (int i = 0; i < kRequests; ++i) {
        serve::Response r =
            client.run(api::EngineKind::Fith, addSpec());
        ASSERT_EQ(r.status, serve::ResponseStatus::Ok) << r.error;
    }

    std::vector<serve::FlightSpan> spans;
    ASSERT_TRUE(client.trace(&spans)) << client.error();
    ASSERT_EQ(spans.size(), static_cast<std::size_t>(kRequests));
    for (const serve::FlightSpan &s : spans) {
        EXPECT_EQ(s.status, serve::ResponseStatus::Ok);
        EXPECT_EQ(s.kind, api::EngineKind::Fith);
        EXPECT_EQ(s.program, "add");
    }

    // The same connection keeps serving runs after a trace.
    serve::Response r = client.run(api::EngineKind::Fith, addSpec());
    EXPECT_EQ(r.status, serve::ResponseStatus::Ok);
}

TEST(NetServer, HttpGetIsAnsweredWithPrometheusText)
{
    ServerFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()));
    for (int i = 0; i < 2; ++i)
        (void)client.run(api::EngineKind::Fith, addSpec());

    // Scrape like a Prometheus server would: plain HTTP GET on the
    // frame port, read to EOF (Connection: close).
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(fx.server().port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    std::string get =
        "GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n";
    ASSERT_EQ(::send(fd, get.data(), get.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(get.size()));
    std::string resp;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
        resp.append(chunk, static_cast<std::size_t>(n));
    ::close(fd);

    EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK", 0), 0u) << resp;
    EXPECT_NE(resp.find("Content-Type: text/plain"),
              std::string::npos);
    // The body is the Prometheus rendering of the live snapshot.
    EXPECT_NE(resp.find("comsim_requests_served_total 2"),
              std::string::npos)
        << resp;
    EXPECT_NE(resp.find("comsim_request_latency_seconds_count"),
              std::string::npos);

    // Frame clients are untouched by the scrape.
    serve::Response r = client.run(api::EngineKind::Fith, addSpec());
    EXPECT_EQ(r.status, serve::ResponseStatus::Ok);
}

TEST(NetServer, RequestTraceDumpWritesTheRecorderToStderr)
{
    ServerFixture fx;
    net::Client client;
    ASSERT_TRUE(client.connect(fx.clientConfig()));
    serve::Response r = client.run(api::EngineKind::Fith, addSpec());
    ASSERT_EQ(r.status, serve::ResponseStatus::Ok);
    client.close();

    // requestTraceDump is what the SIGUSR1 handler calls; the event
    // loop checks the flag at the top of every iteration, so the
    // dump lands before a subsequent drain lets run() return.
    testing::internal::CaptureStderr();
    fx.server().requestTraceDump();
    fx.shutdown();
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("flight recorder"), std::string::npos) << err;
    EXPECT_NE(err.find("add"), std::string::npos);
}

} // namespace
