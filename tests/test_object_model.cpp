/**
 * @file
 * Object model tests: selectors, class table, method dictionaries
 * (probe counting), object heap, and the mark-sweep collector's
 * handling of contexts and grown objects.
 */

#include <gtest/gtest.h>

#include "mem/absolute_space.hpp"
#include "mem/segment_table.hpp"
#include "mem/tagged_memory.hpp"
#include "obj/class_table.hpp"
#include "obj/context.hpp"
#include "obj/gc.hpp"
#include "obj/method_dictionary.hpp"
#include "obj/object_heap.hpp"
#include "obj/selector_table.hpp"

using namespace com;
using obj::ClassTable;
using obj::SelectorTable;

TEST(Selectors, InternIsIdempotent)
{
    SelectorTable t;
    EXPECT_EQ(t.intern("foo:"), t.intern("foo:"));
    EXPECT_NE(t.intern("foo:"), t.intern("bar:"));
    EXPECT_EQ(t.name(t.intern("foo:")), "foo:");
}

TEST(Selectors, ArityFollowsSpelling)
{
    EXPECT_EQ(SelectorTable::arityOf("size"), 0u);
    EXPECT_EQ(SelectorTable::arityOf("+"), 1u);
    EXPECT_EQ(SelectorTable::arityOf("at:"), 1u);
    EXPECT_EQ(SelectorTable::arityOf("at:put:"), 2u);
    EXPECT_EQ(SelectorTable::arityOf("setX:y:z:"), 3u);
}

TEST(Classes, PredefinedHierarchy)
{
    ClassTable ct;
    EXPECT_EQ(ct.byName("smallint"),
              static_cast<mem::ClassId>(mem::Tag::SmallInt));
    EXPECT_TRUE(ct.isKindOf(ct.arrayClass(), ct.objectClass()));
    EXPECT_FALSE(ct.isKindOf(ct.objectClass(), ct.arrayClass()));
}

TEST(Classes, FieldInheritanceAccumulates)
{
    ClassTable ct;
    mem::ClassId a = ct.define("A", ct.objectClass(), 2);
    mem::ClassId b = ct.define("B", a, 3);
    EXPECT_EQ(ct.totalFieldsOf(a), 2u);
    EXPECT_EQ(ct.totalFieldsOf(b), 5u);
}

TEST(Classes, DuplicateDefinitionIsFatal)
{
    ClassTable ct;
    ct.define("A", ct.objectClass(), 0);
    EXPECT_THROW(ct.define("A", ct.objectClass(), 0), sim::FatalError);
}

TEST(MethodDict, InsertFindAndChainWalk)
{
    ClassTable ct;
    mem::ClassId a = ct.define("A", ct.objectClass(), 0);
    mem::ClassId b = ct.define("B", a, 0);
    SelectorTable st;
    obj::MethodRegistry reg(ct);

    cache::MethodEntry e;
    e.primitive = false;
    e.methodVaddr = 0x1234;
    reg.install(a, st.intern("run"), e);

    // Found directly on A, inherited on B.
    auto ra = reg.lookup(a, st.intern("run"));
    ASSERT_NE(ra.entry, nullptr);
    EXPECT_EQ(ra.foundIn, a);
    auto rb = reg.lookup(b, st.intern("run"));
    ASSERT_NE(rb.entry, nullptr);
    EXPECT_EQ(rb.foundIn, a);
    EXPECT_GE(rb.classesWalked, 2u);

    // Overriding on B shadows A.
    cache::MethodEntry e2 = e;
    e2.methodVaddr = 0x5678;
    reg.install(b, st.intern("run"), e2);
    EXPECT_EQ(reg.lookup(b, st.intern("run")).entry->methodVaddr,
              0x5678u);
}

TEST(MethodDict, FailureCountsAsDoesNotUnderstand)
{
    ClassTable ct;
    SelectorTable st;
    obj::MethodRegistry reg(ct);
    auto r = reg.lookup(ct.objectClass(), st.intern("nope"));
    EXPECT_EQ(r.entry, nullptr);
    EXPECT_EQ(reg.failures(), 1u);
}

TEST(MethodDict, ManySelectorsSurviveGrowth)
{
    ClassTable ct;
    SelectorTable st;
    obj::MethodRegistry reg(ct);
    mem::ClassId a = ct.define("A", ct.objectClass(), 0);
    for (int i = 0; i < 500; ++i) {
        cache::MethodEntry e;
        e.methodVaddr = static_cast<std::uint64_t>(i);
        reg.install(a, st.intern("sel" + std::to_string(i)), e);
    }
    for (int i = 0; i < 500; ++i) {
        auto r = reg.lookup(a, st.intern("sel" + std::to_string(i)));
        ASSERT_NE(r.entry, nullptr);
        ASSERT_EQ(r.entry->methodVaddr, static_cast<std::uint64_t>(i));
    }
    // Probe counts are recorded for the miss-penalty evidence.
    EXPECT_GT(reg.probeHistogram().count(), 0u);
}

// ---------------------------------------------------------------------
// Heap + GC
// ---------------------------------------------------------------------

namespace {

struct GcEnv
{
    mem::TaggedMemory memory;
    mem::AbsoluteSpace space{0, 24};
    mem::SegmentTable table{mem::kFp32, space, 0};
    ClassTable classes;
    obj::ObjectHeap heap{table, memory, classes};
    obj::ContextPool pool{table, memory, classes.contextClass(), 32};
    obj::GarbageCollector gc{heap, pool};
    std::vector<std::uint64_t> roots;

    GcEnv()
    {
        gc.addRootProvider([this](std::vector<std::uint64_t> &out) {
            for (std::uint64_t r : roots)
                out.push_back(r);
        });
    }

    std::uint64_t
    newObj(std::uint64_t words)
    {
        return heap.allocateRaw(classes.arrayClass(), words);
    }

    void
    pointAt(std::uint64_t from, std::uint64_t slot, std::uint64_t to)
    {
        heap.writeField(from, slot,
                        mem::Word::fromPointer(
                            static_cast<std::uint32_t>(to)));
    }
};

} // namespace

TEST(Gc, UnreachableObjectsAreSwept)
{
    GcEnv env;
    std::uint64_t kept = env.newObj(4);
    env.newObj(4); // garbage
    env.roots.push_back(kept);
    auto r = env.gc.collect();
    EXPECT_EQ(r.sweptObjects, 1u);
    EXPECT_EQ(env.heap.liveCount(), 1u);
}

TEST(Gc, PointerChainsKeepObjectsAlive)
{
    GcEnv env;
    std::uint64_t a = env.newObj(4);
    std::uint64_t b = env.newObj(4);
    std::uint64_t c = env.newObj(4);
    env.pointAt(a, 0, b);
    env.pointAt(b, 0, c);
    env.roots.push_back(a);
    auto r = env.gc.collect();
    EXPECT_EQ(r.sweptObjects, 0u);
    EXPECT_EQ(r.markedObjects, 3u);
}

TEST(Gc, CyclesAreCollected)
{
    GcEnv env;
    std::uint64_t a = env.newObj(4);
    std::uint64_t b = env.newObj(4);
    env.pointAt(a, 0, b);
    env.pointAt(b, 0, a); // unreachable cycle
    auto r = env.gc.collect();
    EXPECT_EQ(r.sweptObjects, 2u);
}

TEST(Gc, ContextsSweptAsNonLifo)
{
    GcEnv env;
    auto ctx = env.pool.allocate();
    (void)ctx;
    auto r = env.gc.collect();
    EXPECT_EQ(r.sweptContexts, 1u);
    EXPECT_EQ(env.pool.gcFrees(), 1u);
}

TEST(Gc, RootedContextSurvivesAndItsReferentsToo)
{
    GcEnv env;
    auto ctx = env.pool.allocate();
    std::uint64_t obj = env.newObj(4);
    env.memory.poke(ctx.abs + 5,
                    mem::Word::fromPointer(
                        static_cast<std::uint32_t>(obj)));
    env.roots.push_back(ctx.vaddr);
    auto r = env.gc.collect();
    EXPECT_EQ(r.sweptContexts, 0u);
    EXPECT_EQ(r.sweptObjects, 0u);
    EXPECT_EQ(r.markedContexts, 1u);
}

TEST(Gc, GrownObjectAliasKeepsStorageAlive)
{
    GcEnv env;
    std::uint64_t old_name = env.newObj(8);
    std::uint64_t holder = env.newObj(2);
    env.pointAt(holder, 0, old_name); // program kept the OLD pointer
    std::uint64_t new_name =
        env.table.growObject(old_name, 100, env.memory);
    // The heap tracks the new name as a live object too.
    env.heap.liveObjects(); // (exercise accessor)
    env.roots.push_back(holder);
    auto r = env.gc.collect();
    // Neither name may be swept: the stale alias is reachable, and it
    // forwards to the canonical storage.
    EXPECT_TRUE(env.table.translate(old_name, 0).ok());
    EXPECT_TRUE(env.table.translate(new_name, 0).ok());
    (void)r;
}

TEST(Heap, FieldReadWriteRoundTrip)
{
    GcEnv env;
    mem::ClassId cls = env.classes.define("P", env.classes.objectClass(),
                                          2);
    std::uint64_t p = env.heap.allocateInstance(cls, 0);
    env.heap.writeField(p, 1, mem::Word::fromInt(77));
    EXPECT_EQ(env.heap.readField(p, 1).asInt(), 77);
    EXPECT_EQ(env.heap.classOf(p), cls);
    EXPECT_EQ(env.heap.lengthOf(p), 2u);
}

TEST(Heap, IndexedInstancesGetExtraWords)
{
    GcEnv env;
    std::uint64_t a =
        env.heap.allocateInstance(env.classes.arrayClass(), 10);
    EXPECT_EQ(env.heap.lengthOf(a), 10u);
}
