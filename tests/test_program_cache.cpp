/**
 * @file
 * The shard-level compiled-program cache (api/program_cache.hpp):
 * hit/miss/install/eviction accounting, survival across engine
 * resets, warm-start parity on all three engine kinds, the
 * per-engine memo LRU, and concurrent access from many serving
 * threads (the TSan job runs these suites with --gtest_filter
 * including ProgramCache*).
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/program_cache.hpp"
#include "api/session.hpp"
#include "fith/fith_programs.hpp"
#include "lang/workloads.hpp"
#include "serve/scheduler.hpp"

using namespace com;

namespace {

TEST(ProgramCache, CountsHitsMissesAndInstalls)
{
    api::ProgramCache cache(8);
    const std::string src = "main [ ^ 1 + 2 ]";

    EXPECT_EQ(cache.findCom(api::Language::Smalltalk, src), nullptr);
    api::ProgramCache::Counters k = cache.counters();
    EXPECT_EQ(k.misses, 1u);
    EXPECT_EQ(k.hits, 0u);

    cache.insertCom(api::Language::Smalltalk, src,
                    api::ProgramCache::ComEntry{nullptr, 42, {}, 0});
    auto hit = cache.findCom(api::Language::Smalltalk, src);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->entryVaddr, 42u);

    k = cache.counters();
    EXPECT_EQ(k.misses, 1u);
    EXPECT_EQ(k.hits, 1u);
    EXPECT_EQ(k.installs, 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ProgramCache, KeysAreNamespacedByEngineAndLanguage)
{
    // The same source text compiled by different engines (or as a
    // different language) must occupy distinct entries.
    api::ProgramCache cache(8);
    const std::string src = "main [ ^ 7 ]";
    cache.insertCom(api::Language::Smalltalk, src,
                    api::ProgramCache::ComEntry{nullptr, 1, {}, 0});
    EXPECT_EQ(cache.findStack(src), nullptr);
    EXPECT_EQ(cache.findFith(src), nullptr);
    EXPECT_EQ(cache.findCom(api::Language::ComAssembly, src), nullptr);
    EXPECT_NE(cache.findCom(api::Language::Smalltalk, src), nullptr);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ProgramCache, EvictsLeastRecentlyUsed)
{
    api::ProgramCache cache(2);
    auto entry = [] {
        return api::ProgramCache::ComEntry{nullptr, 0, {}, 0};
    };
    cache.insertCom(api::Language::Smalltalk, "a", entry());
    cache.insertCom(api::Language::Smalltalk, "b", entry());
    // Touch "a" so "b" is the LRU victim when "c" arrives.
    EXPECT_NE(cache.findCom(api::Language::Smalltalk, "a"), nullptr);
    cache.insertCom(api::Language::Smalltalk, "c", entry());

    EXPECT_EQ(cache.counters().evictions, 1u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_NE(cache.findCom(api::Language::Smalltalk, "a"), nullptr);
    EXPECT_NE(cache.findCom(api::Language::Smalltalk, "c"), nullptr);
    EXPECT_EQ(cache.findCom(api::Language::Smalltalk, "b"), nullptr);
}

TEST(ProgramCache, SurvivesEngineResets)
{
    // The whole point: compile once, then every post-reset rerun of
    // the same program warm-starts instead of recompiling.
    auto cache = std::make_shared<api::ProgramCache>(8);
    api::ComEngine engine;
    engine.setProgramCache(cache);
    api::ProgramSpec spec = api::ProgramSpec::workload("fib");

    constexpr int kRounds = 5;
    for (int i = 0; i < kRounds; ++i) {
        api::RunOutcome out = engine.run(spec);
        EXPECT_TRUE(out.matches(spec)) << out.error;
        engine.reset();
    }
    api::ProgramCache::Counters k = cache->counters();
    EXPECT_EQ(k.installs, 1u);
    EXPECT_EQ(k.misses, 1u);
    EXPECT_EQ(k.hits, kRounds - 1u);
    EXPECT_EQ(k.warmStarts, kRounds - 1u);
}

TEST(ProgramCache, OnlyTheFirstProgramAfterResetUsesTheCache)
{
    // A second program compiled into a dirty machine must not restore
    // a cached image (that would discard the first program), and its
    // artifact must not be installed (the image would not be
    // "stdlib + one program").
    auto cache = std::make_shared<api::ProgramCache>(8);
    api::ComEngine engine;
    engine.setProgramCache(cache);

    api::ProgramSpec fib = api::ProgramSpec::workload("fib");
    api::ProgramSpec sieve = api::ProgramSpec::workload("sieve");
    EXPECT_TRUE(engine.run(fib).matches(fib));
    EXPECT_TRUE(engine.run(sieve).matches(sieve));

    api::ProgramCache::Counters k = cache->counters();
    EXPECT_EQ(k.installs, 1u); // fib only
    EXPECT_EQ(k.misses, 1u);   // sieve never consulted the cache

    // And both programs still run correctly from the engine's memo.
    EXPECT_TRUE(engine.run(fib).matches(fib));
    EXPECT_TRUE(engine.run(sieve).matches(sieve));
}

TEST(ProgramCache, StackEngineWarmStartMatchesCold)
{
    auto cache = std::make_shared<api::ProgramCache>(8);
    api::StackEngine cold;
    api::StackEngine warm;
    warm.setProgramCache(cache);
    for (const char *name : {"sieve", "sieve", "sieve"}) {
        api::ProgramSpec spec = api::ProgramSpec::workload(name);
        api::RunOutcome c = cold.run(spec);
        api::RunOutcome w = warm.run(spec);
        EXPECT_TRUE(c.matches(spec)) << c.error;
        EXPECT_TRUE(w.matches(spec)) << w.error;
        EXPECT_EQ(w.cycles, c.cycles);
        EXPECT_EQ(w.operations, c.operations);
        EXPECT_EQ(w.resultText, c.resultText);
        EXPECT_EQ(w.output, c.output);
        cold.reset();
        warm.reset();
    }
    EXPECT_EQ(cache->counters().hits, 2u);
    EXPECT_EQ(cache->counters().installs, 1u);
}

TEST(ProgramCache, FithEngineWarmStartMatchesCold)
{
    auto cache = std::make_shared<api::ProgramCache>(32);
    api::FithEngine cold;
    api::FithEngine warm;
    warm.setProgramCache(cache);
    for (int round = 0; round < 2; ++round) {
        for (const fith::FithProgram &p : fith::standardPrograms()) {
            api::ProgramSpec spec =
                api::ProgramSpec::fith("fith:" + p.name, p.source);
            api::RunOutcome c = cold.run(spec);
            api::RunOutcome w = warm.run(spec);
            EXPECT_TRUE(c.ok) << p.name << ": " << c.error;
            EXPECT_TRUE(w.ok) << p.name << ": " << w.error;
            EXPECT_EQ(w.operations, c.operations) << p.name;
            EXPECT_EQ(w.resultText, c.resultText) << p.name;
            EXPECT_EQ(w.output, c.output) << p.name;
            cold.reset();
            warm.reset();
        }
    }
    EXPECT_GT(cache->counters().hits, 0u);
    EXPECT_EQ(cache->counters().installs,
              fith::standardPrograms().size());
}

TEST(ProgramCache, EngineMemoEvictsUnderPressure)
{
    // Satellite: the per-engine source -> entry memos are bounded.
    api::LruMemo<int> memo(2);
    memo.insert("a", 1);
    memo.insert("b", 2);
    EXPECT_NE(memo.find("a"), nullptr); // bump: "b" becomes LRU
    memo.insert("c", 3);
    EXPECT_EQ(memo.size(), 2u);
    EXPECT_EQ(memo.evictions(), 1u);
    EXPECT_EQ(memo.find("b"), nullptr);
    ASSERT_NE(memo.find("a"), nullptr);
    EXPECT_EQ(*memo.find("a"), 1);
    memo.clear();
    EXPECT_EQ(memo.size(), 0u);
    EXPECT_EQ(memo.evictions(), 1u); // cumulative across clear()

    // And the engines report it (fresh engines have evicted nothing).
    api::ComEngine engine;
    EXPECT_EQ(engine.memoEvictions(), 0u);
}

TEST(ProgramCacheConcurrency, SharedCacheServesManyEnginesAtOnce)
{
    // Many threads checking engines out of one pool, all funneling
    // through one shared cache: every outcome must still verify, and
    // the hot programs must have compiled far fewer times than they
    // ran. TSan covers the lock discipline.
    auto cache = std::make_shared<api::ProgramCache>(16);
    api::EnginePool::Config cfg;
    cfg.comEngines = 4;
    cfg.programCache = cache;
    api::EnginePool pool(cfg);

    const api::ProgramSpec specs[] = {
        api::ProgramSpec::workload("fib"),
        api::ProgramSpec::workload("sieve"),
    };
    constexpr int kThreads = 4;
    constexpr int kRunsPerThread = 8;
    std::vector<std::thread> threads;
    std::vector<int> failures(kThreads, 0);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int i = 0; i < kRunsPerThread; ++i) {
                api::Session s = pool.checkout(api::EngineKind::Com);
                const api::ProgramSpec &spec = specs[(t + i) % 2];
                if (!s.run(spec).matches(spec))
                    ++failures[t];
            }
        });
    for (std::thread &t : threads)
        t.join();

    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(failures[t], 0) << "thread " << t;
    api::ProgramCache::Counters k = cache->counters();
    // Two programs; concurrent cold misses may compile each a few
    // times, but the steady state must be hits.
    EXPECT_EQ(cache->size(), 2u);
    EXPECT_GT(k.hits, static_cast<std::uint64_t>(
                          kThreads * kRunsPerThread / 2));
    EXPECT_EQ(k.hits + k.misses,
              static_cast<std::uint64_t>(kThreads * kRunsPerThread));
}

TEST(ProgramCacheConcurrency, SchedulerShardsWarmStartIndependently)
{
    // End-to-end through the scheduler: per-shard caches, batch
    // coalescing off (--batch=1 equivalent) so every request pays a
    // full checkout and the warm-start path carries the load.
    serve::Scheduler::Config cfg;
    cfg.shards = 2;
    cfg.workersPerShard = 2;
    cfg.maxBatch = 1;
    cfg.programCacheCapacity = 16;
    cfg.pool.comEngines = 2;
    cfg.pool.stackEngines = 0;
    cfg.pool.fithEngines = 0;
    serve::Scheduler scheduler(cfg);

    const api::ProgramSpec specs[] = {
        api::ProgramSpec::workload("fib"),
        api::ProgramSpec::workload("sieve"),
        api::ProgramSpec::workload("bank"),
    };
    constexpr int kRequests = 48;
    std::vector<std::future<serve::Response>> futures;
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(
            scheduler.submit(api::EngineKind::Com, specs[i % 3]));
    int ok = 0;
    for (auto &f : futures)
        ok += f.get().status == serve::ResponseStatus::Ok;
    EXPECT_EQ(ok, kRequests);

    serve::Metrics::Snapshot m = scheduler.metricsSnapshot();
    EXPECT_GT(m.cacheHits, 0u);
    EXPECT_GT(m.cacheInstalls, 0u);
    EXPECT_EQ(m.cacheHits + m.cacheMisses,
              static_cast<std::uint64_t>(kRequests));
    EXPECT_GT(m.warmStarts, 0u);
}

} // namespace
