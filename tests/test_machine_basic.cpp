/**
 * @file
 * End-to-end machine tests: assembly programs through the full
 * interpretation path (fetch, operand read, ITLB dispatch, primitives,
 * method call/return, at:/at:put:).
 */

#include <gtest/gtest.h>

#include "core/assembler.hpp"
#include "core/machine.hpp"

using namespace com;
using core::Assembler;
using core::GuestFault;
using core::Machine;
using core::RunResult;
using mem::Word;

namespace {

/** Machine with a small pool for fast tests. */
core::MachineConfig
smallConfig()
{
    core::MachineConfig cfg;
    cfg.contextPoolSize = 256;
    return cfg;
}

} // namespace

TEST(MachineBasic, AddsIntegersAndReturns)
{
    Machine m(smallConfig());
    Assembler as(m);
    // Entry method: result <- arg2 + arg3 (slots 4 and 5), returned
    // through the arg0 result pointer (slot 2).
    std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
        add   c6, c4, c5
        putres.r c2, c6
    )"));
    RunResult r = m.call(entry, m.constants().nilWord(),
                         {Word::fromInt(2), Word::fromInt(40)});
    ASSERT_TRUE(r.finished) << r.message;
    EXPECT_EQ(m.lastResult().asInt(), 42);
    EXPECT_EQ(r.fault, GuestFault::None);
}

TEST(MachineBasic, MixedModeArithmeticIsPrimitive)
{
    Machine m(smallConfig());
    Assembler as(m);
    std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
        add   c6, c4, c5
        putres.r c2, c6
    )"));
    RunResult r = m.call(entry, m.constants().nilWord(),
                         {Word::fromInt(2), Word::fromFloat(0.5f)});
    ASSERT_TRUE(r.finished) << r.message;
    EXPECT_FLOAT_EQ(m.lastResult().asFloat(), 2.5f);
}

TEST(MachineBasic, LoopWithBackwardJump)
{
    Machine m(smallConfig());
    Assembler as(m);
    // Sum 1..10 with a loop: c6 = acc, c7 = i.
    std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
        move  c6, =0
        move  c7, =1
    loop:
        add   c6, c6, c7
        add   c7, c7, =1
        le    c8, c7, =10
        jt    c8, @loop
        putres.r c2, c6
    )"));
    RunResult r = m.call(entry, m.constants().nilWord(), {});
    ASSERT_TRUE(r.finished) << r.message;
    EXPECT_EQ(m.lastResult().asInt(), 55);
}

TEST(MachineBasic, MethodCallAndReturn)
{
    Machine m(smallConfig());
    Assembler as(m);
    // Install 'double' on SmallInt: result <- receiver * 2.
    as.assembleMethod(static_cast<mem::ClassId>(mem::Tag::SmallInt),
                      "double", R"(
        mul   c5, c3, =2
        putres.r c2, c5
    )");
    // Entry: c6 <- (arg2) double, then return c6 + 1.
    std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
        msg   "double", c6, c4, c0
        add   c7, c6, =1
        putres.r c2, c7
    )"));
    RunResult r = m.call(entry, m.constants().nilWord(),
                         {Word::fromInt(20)});
    ASSERT_TRUE(r.finished) << r.message;
    EXPECT_EQ(m.lastResult().asInt(), 41);
    EXPECT_EQ(m.pipeline().calls(), 1u);
    EXPECT_GE(m.pipeline().returns(), 1u);
}

TEST(MachineBasic, RecursiveFactorial)
{
    Machine m(smallConfig());
    Assembler as(m);
    as.assembleMethod(static_cast<mem::ClassId>(mem::Tag::SmallInt),
                      "fact", R"(
        le    c5, c3, =1
        jf    c5, @recurse
        putres.r c2, c3
    recurse:
        sub   c6, c3, =1
        msg   "fact", c7, c6, c0
        mul   c8, c3, c7
        putres.r c2, c8
    )");
    std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
        msg   "fact", c6, c4, c0
        putres.r c2, c6
    )"));
    RunResult r = m.call(entry, m.constants().nilWord(),
                         {Word::fromInt(10)});
    ASSERT_TRUE(r.finished) << r.message;
    EXPECT_EQ(m.lastResult().asInt(), 3628800);
}

TEST(MachineBasic, HeapObjectsViaAtPut)
{
    Machine m(smallConfig());
    m.installStandardLibrary();
    Assembler as(m);
    // Allocate a 5-element array, fill with squares, sum it.
    std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
        msg   "new:", c6, =#Array, =5
        move  c7, =0
    fill:
        mul   c8, c7, c7
        atput c8, c6, c7
        add   c7, c7, =1
        lt    c9, c7, =5
        jt    c9, @fill
        move  c10, =0
        move  c7, =0
    sum:
        at    c8, c6, c7
        add   c10, c10, c8
        add   c7, c7, =1
        lt    c9, c7, =5
        jt    c9, @sum
        putres.r c2, c10
    )"));
    RunResult r = m.call(entry, m.constants().nilWord(), {});
    ASSERT_TRUE(r.finished) << r.message;
    EXPECT_EQ(m.lastResult().asInt(), 0 + 1 + 4 + 9 + 16);
}

TEST(MachineBasic, DoesNotUnderstandFaults)
{
    Machine m(smallConfig());
    Assembler as(m);
    std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
        msg   "frobnicate", c6, c4, c0
        putres.r c2, c6
    )"));
    RunResult r = m.call(entry, m.constants().nilWord(),
                         {Word::fromInt(1)});
    EXPECT_FALSE(r.finished);
    EXPECT_EQ(r.fault, GuestFault::DoesNotUnderstand);
}

TEST(MachineBasic, InstructionSafetyExecuteData)
{
    Machine m(smallConfig());
    // A "method" of data words: executing it must trap.
    std::uint64_t obj = m.heap().allocateRaw(m.classes().methodClass(),
                                             2);
    mem::XlateResult xr = m.segments().translate(obj, 0, true);
    m.memory().poke(xr.abs, Word::fromInt(123));
    m.memory().poke(xr.abs + 1, Word::fromInt(456));
    RunResult r = m.call(obj, m.constants().nilWord(), {});
    EXPECT_EQ(r.fault, GuestFault::ExecuteData);
}

TEST(MachineBasic, DivideByZeroFaults)
{
    Machine m(smallConfig());
    Assembler as(m);
    std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
        div   c6, c4, =0
        putres.r c2, c6
    )"));
    RunResult r = m.call(entry, m.constants().nilWord(),
                         {Word::fromInt(5)});
    EXPECT_EQ(r.fault, GuestFault::DivideByZero);
}

TEST(MachineBasic, CallCostMatchesPaper)
{
    // "a method call with no operands only delays execution four clock
    // cycles ... An additional cycle is required for each operand."
    Machine m(smallConfig());
    Assembler as(m);
    as.assembleMethod(static_cast<mem::ClassId>(mem::Tag::SmallInt),
                      "idone", R"(
        putres.r c2, c3
    )");
    std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
        msg   "idone", c6, c4, c0
        putres.r c2, c6
    )"));
    RunResult r = m.call(entry, m.constants().nilWord(),
                         {Word::fromInt(7)});
    ASSERT_TRUE(r.finished) << r.message;
    // msg with a unary selector copies arg0 + receiver = 2 operands:
    // overhead = 2 (flush + ops) + 2 (copies).
    EXPECT_EQ(m.pipeline().callOverhead(), 4u);
    EXPECT_EQ(m.pipeline().calls(), 1u);
}

TEST(MachineBasic, ExtendedSendDispatches)
{
    Machine m(smallConfig());
    Assembler as(m);
    as.assembleMethod(static_cast<mem::ClassId>(mem::Tag::SmallInt),
                      "triple", R"(
        mul   c5, c3, =3
        putres.r c2, c5
    )");
    // Stage the send by hand: n2 = result addr, n3 = receiver.
    std::uint64_t entry = m.makeMethodObject(as.assemble(R"(
        movea n2, c6
        move  n3, c4
        send  "triple", 1
        putres.r c2, c6
    )"));
    RunResult r = m.call(entry, m.constants().nilWord(),
                         {Word::fromInt(14)});
    ASSERT_TRUE(r.finished) << r.message;
    EXPECT_EQ(m.lastResult().asInt(), 42);
}
