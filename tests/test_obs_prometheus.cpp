/**
 * @file
 * The Prometheus text renderer (serve/prometheus.hpp) keeps the
 * exposition-format contract: every sample is preceded by # HELP and
 * # TYPE lines, counters end in _total, and each histogram renders
 * cumulative buckets capped by a +Inf bucket that equals _count,
 * with _sum == mean * count. CI scrapes a live server and lints the
 * same invariants with an independent checker; these tests pin them
 * at the source.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "serve/metrics.hpp"
#include "serve/prometheus.hpp"

using namespace com;

namespace {

/** A snapshot with every family populated. */
serve::Metrics::Snapshot
sampleSnapshot()
{
    serve::Metrics m;
    m.countSubmitted();
    m.countSubmitted();
    m.countOutcome(true);
    m.countOutcome(false);
    m.countRejected();
    m.countExpired();
    m.recordBatch(3);
    m.countEnqueued();
    m.addBusyNanos(1500000000ull);
    m.latency().record(0.004);
    m.latency().record(0.032);
    m.latency().record(1.7);
    m.queueWait().record(0.001);
    m.poolWait().record(0.0002);
    m.warmRestore().record(0.0001);
    m.execute().record(0.003);
    m.verify().record(0.00005);
    serve::Metrics::Snapshot s = m.snapshot(2.5, 4);
    s.cacheHits = 5;
    s.cacheMisses = 2;
    s.cacheInstalls = 2;
    s.cacheEvictions = 1;
    s.warmStarts = 5;
    return s;
}

struct Parsed
{
    /** metric family name -> declared TYPE. */
    std::map<std::string, std::string> types;
    /** family names with a HELP line. */
    std::map<std::string, bool> helped;
    /** every sample line: name (with labels stripped) -> values. */
    std::multimap<std::string, double> samples;
    /** full sample lines, in order. */
    std::vector<std::string> lines;
};

Parsed
parse(const std::string &text)
{
    Parsed p;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        if (line[0] == '#') {
            std::string hash, what, name, rest;
            ls >> hash >> what >> name;
            if (what == "TYPE") {
                ls >> rest;
                p.types[name] = rest;
            } else if (what == "HELP") {
                p.helped[name] = true;
            } else {
                ADD_FAILURE() << "unknown comment line: " << line;
            }
            continue;
        }
        p.lines.push_back(line);
        std::string name;
        double value = 0.0;
        ls >> name >> value;
        std::string::size_type brace = name.find('{');
        if (brace != std::string::npos)
            name = name.substr(0, brace);
        p.samples.emplace(name, value);
    }
    return p;
}

/** The family a sample belongs to (histogram suffixes strip). */
std::string
familyOf(const std::string &sample)
{
    for (const char *suffix : {"_bucket", "_sum", "_count"}) {
        std::string s(suffix);
        if (sample.size() > s.size() &&
            sample.compare(sample.size() - s.size(), s.size(), s) == 0)
            return sample.substr(0, sample.size() - s.size());
    }
    return sample;
}

TEST(ObsPrometheus, EverySampleHasHelpAndType)
{
    Parsed p = parse(serve::renderPrometheus(sampleSnapshot()));
    ASSERT_FALSE(p.samples.empty());
    for (const auto &kv : p.samples) {
        std::string family = familyOf(kv.first);
        EXPECT_TRUE(p.types.count(family))
            << kv.first << " has no # TYPE";
        EXPECT_TRUE(p.helped.count(family))
            << kv.first << " has no # HELP";
    }
}

TEST(ObsPrometheus, CountersEndInTotal)
{
    Parsed p = parse(serve::renderPrometheus(sampleSnapshot()));
    for (const auto &kv : p.types) {
        if (kv.second == "counter") {
            EXPECT_NE(
                kv.first.find("_total"), std::string::npos)
                << kv.first << " is a counter without _total";
        }
    }
}

TEST(ObsPrometheus, CountersMatchTheSnapshot)
{
    serve::Metrics::Snapshot s = sampleSnapshot();
    Parsed p = parse(serve::renderPrometheus(s));
    auto value = [&](const std::string &name) {
        auto it = p.samples.find(name);
        EXPECT_NE(it, p.samples.end()) << name << " missing";
        return it == p.samples.end() ? -1.0 : it->second;
    };
    EXPECT_EQ(value("comsim_requests_submitted_total"), 2.0);
    EXPECT_EQ(value("comsim_requests_served_total"), 1.0);
    EXPECT_EQ(value("comsim_requests_failed_total"), 1.0);
    EXPECT_EQ(value("comsim_requests_rejected_total"), 1.0);
    EXPECT_EQ(value("comsim_requests_expired_total"), 1.0);
    EXPECT_EQ(value("comsim_cache_hits_total"), 5.0);
    EXPECT_EQ(value("comsim_queue_depth"), 1.0);
    EXPECT_EQ(value("comsim_workers"), 4.0);
}

TEST(ObsPrometheus, HistogramsAreCumulativeWithInfEqualToCount)
{
    serve::Metrics::Snapshot s = sampleSnapshot();
    Parsed p = parse(serve::renderPrometheus(s));

    const char *families[] = {
        "comsim_request_latency_seconds",
        "comsim_stage_queue_wait_seconds",
        "comsim_stage_pool_wait_seconds",
        "comsim_stage_warm_restore_seconds",
        "comsim_stage_execute_seconds",
        "comsim_stage_verify_seconds",
    };
    for (const char *family : families) {
        ASSERT_TRUE(p.types.count(family)) << family;
        EXPECT_EQ(p.types[family], "histogram") << family;

        // Bucket values must be non-decreasing in line order, and
        // the final (+Inf) bucket must equal _count.
        std::string bucket = std::string(family) + "_bucket";
        double prev = -1.0;
        double last = -1.0;
        bool saw_inf = false;
        for (const std::string &line : p.lines) {
            if (line.compare(0, bucket.size(), bucket) != 0)
                continue;
            double v = 0.0;
            std::sscanf(line.c_str() + line.find("} "), "} %lf", &v);
            EXPECT_GE(v, prev) << line;
            prev = v;
            last = v;
            if (line.find("+Inf") != std::string::npos)
                saw_inf = true;
        }
        EXPECT_TRUE(saw_inf) << family << " lacks a +Inf bucket";

        auto count = p.samples.find(std::string(family) + "_count");
        ASSERT_NE(count, p.samples.end()) << family;
        EXPECT_EQ(last, count->second) << family;

        auto sum = p.samples.find(std::string(family) + "_sum");
        ASSERT_NE(sum, p.samples.end()) << family;
        EXPECT_GE(sum->second, 0.0) << family;
    }

    // Spot-check one family's numbers against the snapshot.
    auto count = p.samples.find("comsim_request_latency_seconds_count");
    ASSERT_NE(count, p.samples.end());
    EXPECT_EQ(count->second, static_cast<double>(s.latency.count));
    auto sum = p.samples.find("comsim_request_latency_seconds_sum");
    ASSERT_NE(sum, p.samples.end());
    EXPECT_NEAR(sum->second,
                s.latency.meanSeconds *
                    static_cast<double>(s.latency.count),
                1e-6);
}

TEST(ObsPrometheus, EmptySnapshotStillRendersEveryFamily)
{
    // A freshly started server scrapes clean: zero counters, empty
    // histograms (just the +Inf bucket), no parse surprises.
    Parsed p = parse(serve::renderPrometheus(serve::Metrics::Snapshot{}));
    EXPECT_TRUE(p.samples.count("comsim_requests_served_total"));
    auto inf = p.samples.find("comsim_request_latency_seconds_count");
    ASSERT_NE(inf, p.samples.end());
    EXPECT_EQ(inf->second, 0.0);
    for (const auto &kv : p.samples) {
        std::string family = familyOf(kv.first);
        EXPECT_TRUE(p.types.count(family)) << kv.first;
    }
}

} // namespace
