/**
 * @file
 * Deadline-aware scheduling and overload control (PR 9): EDF queue
 * ordering — (priority, deadline, arrival) with FIFO degeneracy when
 * neither varies — displacement shedding on a full queue (lowest
 * priority evicted, never under Order::Fifo), the shed-retry-after
 * hint riding a v3 RunResponse over the wire (and dropped cleanly on
 * a v2 reply), the client's bounded shed-retry loop against a real
 * socket, the adaptive batch cap's hysteresis (pure function), and
 * the bounded coalescing scan that keeps a deep unique-source queue
 * from degenerating into O(n^2) dequeue work.
 *
 * Scheduler tests construct with autoStart=false and queue a
 * deterministic backlog before start(), like test_serve.cpp.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"

using namespace com;
using namespace std::chrono_literals;

namespace {

serve::ServeRequest
makeReq(const api::ProgramSpec &spec,
        serve::Priority priority = serve::Priority::Interactive,
        serve::Clock::time_point deadline = serve::kNoDeadline)
{
    serve::ServeRequest req;
    req.kind = api::EngineKind::Com;
    req.spec = spec;
    req.submitted = serve::Clock::now();
    req.deadline = deadline;
    req.priority = priority;
    return req;
}

/** A unique-source spec: no two share a batch key. */
api::ProgramSpec
uniqueSpec(std::size_t i)
{
    return api::ProgramSpec::fith("u" + std::to_string(i),
                                  std::to_string(i) + " .");
}

void
settle(std::vector<serve::ServeRequest> &batch)
{
    for (serve::ServeRequest &r : batch)
        r.promise.set_value(serve::Response{});
}

// ---------------------------------------------------------------------
// EDF ordering
// ---------------------------------------------------------------------

TEST(ServeEdf, PopsEarliestDeadlineFirstWithinAClass)
{
    serve::RequestQueue q(8);
    serve::Clock::time_point now = serve::Clock::now();
    // Arrival order deliberately scrambles deadline order; distinct
    // sources so popBatch(8) cannot coalesce them together.
    ASSERT_TRUE(q.tryPush(makeReq(uniqueSpec(0),
                                  serve::Priority::Interactive,
                                  now + 100ms)));
    ASSERT_TRUE(q.tryPush(makeReq(uniqueSpec(1),
                                  serve::Priority::Interactive,
                                  now + 10ms)));
    ASSERT_TRUE(q.tryPush(makeReq(uniqueSpec(2),
                                  serve::Priority::Interactive)));
    ASSERT_TRUE(q.tryPush(makeReq(uniqueSpec(3),
                                  serve::Priority::Interactive,
                                  now + 50ms)));

    // 10ms, 50ms, 100ms, then the deadline-less one (kNoDeadline is
    // time_point::max — it sorts after every real deadline).
    const char *want[] = {"u1", "u3", "u0", "u2"};
    for (const char *name : want) {
        std::vector<serve::ServeRequest> batch = q.popBatch(8);
        ASSERT_EQ(batch.size(), 1u);
        EXPECT_EQ(batch[0].spec.name, name);
        settle(batch);
    }
}

TEST(ServeEdf, PriorityClassesJumpTheQueue)
{
    serve::RequestQueue q(8);
    serve::Clock::time_point now = serve::Clock::now();
    // A best-effort request with the EARLIEST deadline still loses to
    // interactive and batch: priority dominates deadline.
    ASSERT_TRUE(q.tryPush(makeReq(uniqueSpec(0),
                                  serve::Priority::BestEffort,
                                  now + 1ms)));
    ASSERT_TRUE(q.tryPush(makeReq(uniqueSpec(1),
                                  serve::Priority::Batch,
                                  now + 500ms)));
    ASSERT_TRUE(q.tryPush(makeReq(uniqueSpec(2),
                                  serve::Priority::Interactive)));

    serve::Priority want[] = {serve::Priority::Interactive,
                              serve::Priority::Batch,
                              serve::Priority::BestEffort};
    for (serve::Priority p : want) {
        std::vector<serve::ServeRequest> batch = q.popBatch(8);
        ASSERT_EQ(batch.size(), 1u);
        EXPECT_EQ(batch[0].priority, p);
        settle(batch);
    }
}

TEST(ServeEdf, NoDeadlineSingleClassDegeneratesToFifo)
{
    // The EDF order must cost nothing when nothing differs: same
    // class, no deadlines -> exact arrival order.
    serve::RequestQueue q(8);
    for (std::size_t i = 0; i < 5; ++i)
        ASSERT_TRUE(q.tryPush(makeReq(uniqueSpec(i))));
    for (std::size_t i = 0; i < 5; ++i) {
        std::vector<serve::ServeRequest> batch = q.popBatch(8);
        ASSERT_EQ(batch.size(), 1u);
        EXPECT_EQ(batch[0].spec.name, "u" + std::to_string(i));
        settle(batch);
    }
}

TEST(ServeEdf, FifoOrderIgnoresPriorityAndDeadline)
{
    serve::RequestQueue q(8, nullptr,
                          serve::RequestQueue::Order::Fifo);
    serve::Clock::time_point now = serve::Clock::now();
    ASSERT_TRUE(q.tryPush(makeReq(uniqueSpec(0),
                                  serve::Priority::BestEffort,
                                  now + 500ms)));
    ASSERT_TRUE(q.tryPush(makeReq(uniqueSpec(1),
                                  serve::Priority::Interactive,
                                  now + 1ms)));
    std::vector<serve::ServeRequest> batch = q.popBatch(8);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].spec.name, "u0"); // arrival order, nothing else
    settle(batch);
    batch = q.popBatch(8);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].spec.name, "u1");
    settle(batch);
}

// ---------------------------------------------------------------------
// Displacement on a full queue
// ---------------------------------------------------------------------

TEST(ServeEdf, OfferDisplacesTheLeastUrgentRequest)
{
    serve::RequestQueue q(2);
    ASSERT_TRUE(q.tryPush(
        makeReq(uniqueSpec(0), serve::Priority::BestEffort)));
    ASSERT_TRUE(q.tryPush(
        makeReq(uniqueSpec(1), serve::Priority::BestEffort)));

    serve::ServeRequest displaced;
    serve::RequestQueue::Admit verdict = q.offer(
        makeReq(uniqueSpec(2), serve::Priority::Interactive),
        &displaced);
    EXPECT_EQ(verdict, serve::RequestQueue::Admit::Displaced);
    // The victim is the LAST in dequeue order — the later-arrived
    // best-effort request — and comes out intact (promise usable).
    EXPECT_EQ(displaced.spec.name, "u1");
    displaced.promise.set_value(serve::Response{});
    EXPECT_EQ(q.depth(), 2u);

    // The urgent request jumped to the head.
    std::vector<serve::ServeRequest> batch = q.popBatch(8);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].spec.name, "u2");
    settle(batch);
}

TEST(ServeEdf, OfferRefusesWhenNothingIsLessUrgent)
{
    serve::RequestQueue q(1);
    ASSERT_TRUE(q.tryPush(
        makeReq(uniqueSpec(0), serve::Priority::Interactive)));

    // Same class: Full, and the refused request stays intact.
    serve::ServeRequest displaced;
    serve::ServeRequest same =
        makeReq(uniqueSpec(1), serve::Priority::Interactive);
    EXPECT_EQ(q.offer(std::move(same), &displaced),
              serve::RequestQueue::Admit::Full);
    same.promise.set_value(serve::Response{});

    // Lower urgency than everything queued: also Full.
    serve::ServeRequest lower =
        makeReq(uniqueSpec(2), serve::Priority::Batch);
    EXPECT_EQ(q.offer(std::move(lower), &displaced),
              serve::RequestQueue::Admit::Full);
    lower.promise.set_value(serve::Response{});
    EXPECT_EQ(q.depth(), 1u);
}

TEST(ServeEdf, FifoOrderNeverDisplaces)
{
    serve::RequestQueue q(1, nullptr,
                          serve::RequestQueue::Order::Fifo);
    ASSERT_TRUE(q.tryPush(
        makeReq(uniqueSpec(0), serve::Priority::BestEffort)));
    serve::ServeRequest displaced;
    serve::ServeRequest urgent =
        makeReq(uniqueSpec(1), serve::Priority::Interactive);
    EXPECT_EQ(q.offer(std::move(urgent), &displaced),
              serve::RequestQueue::Admit::Full);
    urgent.promise.set_value(serve::Response{});
}

// ---------------------------------------------------------------------
// Deadline aging (the BestEffort starvation bound)
// ---------------------------------------------------------------------

TEST(ServeEdf, AgingBoundsBestEffortStarvationUnderSustainedOverload)
{
    // 50ms aging window. The best-effort request is backdated past
    // it (deterministic: no sleeping), modeling a request that has
    // already waited the window out under load.
    serve::RequestQueue q(16, nullptr,
                          serve::RequestQueue::Order::Edf,
                          serve::RequestQueue::kDefaultCoalesceScan,
                          50ms);
    serve::Clock::time_point now = serve::Clock::now();
    serve::ServeRequest be =
        makeReq(uniqueSpec(0), serve::Priority::BestEffort);
    be.submitted = now - 100ms;
    ASSERT_TRUE(q.tryPush(std::move(be)));

    // A sustained interactive overload: without aging, every pop
    // would pick one of these (strict priority order), and new ones
    // keep arriving — the best-effort request would wait forever.
    for (int i = 1; i <= 8; ++i)
        ASSERT_TRUE(q.tryPush(makeReq(
            uniqueSpec(static_cast<std::size_t>(i)),
            serve::Priority::Interactive,
            now + std::chrono::milliseconds(i))));

    // The aged request is boosted at the pop: top class, deadline =
    // its submission time — which precedes every interactive
    // deadline, so it pops first. Its own priority field still says
    // what the client asked for.
    std::vector<serve::ServeRequest> batch = q.popBatch(1);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].spec.name, "u0");
    EXPECT_EQ(batch[0].priority, serve::Priority::BestEffort);
    settle(batch);

    // The interactive backlog then drains in deadline order.
    batch = q.popBatch(1);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].spec.name, "u1");
    settle(batch);
}

TEST(ServeEdf, AgingLeavesFreshBestEffortBehindInteractive)
{
    // A best-effort request younger than the window is not boosted:
    // strict priority order still applies.
    serve::RequestQueue q(8, nullptr,
                          serve::RequestQueue::Order::Edf,
                          serve::RequestQueue::kDefaultCoalesceScan,
                          10s);
    ASSERT_TRUE(q.tryPush(
        makeReq(uniqueSpec(0), serve::Priority::BestEffort)));
    ASSERT_TRUE(q.tryPush(
        makeReq(uniqueSpec(1), serve::Priority::Interactive)));

    std::vector<serve::ServeRequest> batch = q.popBatch(1);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].spec.name, "u1");
    settle(batch);
    batch = q.popBatch(1);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].spec.name, "u0");
    settle(batch);
}

TEST(ServeEdf, BoostedRequestIsNoLongerADisplacementVictim)
{
    serve::RequestQueue q(2, nullptr,
                          serve::RequestQueue::Order::Edf,
                          serve::RequestQueue::kDefaultCoalesceScan,
                          50ms);
    serve::Clock::time_point now = serve::Clock::now();
    serve::ServeRequest be0 =
        makeReq(uniqueSpec(0), serve::Priority::BestEffort);
    be0.submitted = now - 100ms;
    ASSERT_TRUE(q.tryPush(std::move(be0)));
    serve::ServeRequest be1 =
        makeReq(uniqueSpec(1), serve::Priority::BestEffort);
    be1.submitted = now - 80ms;
    ASSERT_TRUE(q.tryPush(std::move(be1)));

    // The pop boosts both aged requests and takes the older one;
    // the younger stays queued, but now in the top class.
    std::vector<serve::ServeRequest> batch = q.popBatch(1);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].spec.name, "u0");
    settle(batch);

    ASSERT_TRUE(q.tryPush(
        makeReq(uniqueSpec(2), serve::Priority::Interactive,
                now + 5ms)));

    // Pre-boost, an arriving interactive request would displace the
    // best-effort one; boosted, nothing queued is less urgent.
    serve::ServeRequest displaced;
    serve::ServeRequest urgent =
        makeReq(uniqueSpec(3), serve::Priority::Interactive,
                now + 1ms);
    EXPECT_EQ(q.offer(std::move(urgent), &displaced),
              serve::RequestQueue::Admit::Full);
    urgent.promise.set_value(serve::Response{});

    batch = q.popBatch(1);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].spec.name, "u1");
    settle(batch);
}

// ---------------------------------------------------------------------
// Scheduler shed paths (deterministic: autoStart=false backlog)
// ---------------------------------------------------------------------

serve::Scheduler::Config
tinyQueueConfig(std::size_t capacity)
{
    serve::Scheduler::Config cfg;
    cfg.shards = 1;
    cfg.workersPerShard = 1;
    cfg.maxBatch = 16;
    cfg.queueCapacity = capacity;
    cfg.autoStart = false;
    cfg.pool.comEngines = 1;
    cfg.pool.stackEngines = 0;
    cfg.pool.fithEngines = 0;
    return cfg;
}

TEST(ServeEdf, InteractiveDisplacesBestEffortUnderOverload)
{
    serve::Scheduler scheduler(tinyQueueConfig(1));
    api::ProgramSpec spec = api::ProgramSpec::workload("fib");

    std::future<serve::Response> evicted = scheduler.trySubmit(
        api::EngineKind::Com, spec, serve::kNoDeadline,
        serve::Priority::BestEffort);
    std::future<serve::Response> urgent = scheduler.trySubmit(
        api::EngineKind::Com, spec, serve::kNoDeadline,
        serve::Priority::Interactive);

    // The best-effort request was shed immediately — before start()
    // — with a positive retry-after hint and its class echoed.
    ASSERT_EQ(evicted.wait_for(0s), std::future_status::ready);
    serve::Response shed = evicted.get();
    EXPECT_EQ(shed.status, serve::ResponseStatus::Rejected);
    EXPECT_EQ(shed.error, "shed under overload");
    EXPECT_GT(shed.retryAfterSeconds, 0.0);
    EXPECT_EQ(shed.priority, serve::Priority::BestEffort);

    scheduler.start();
    serve::Response r = urgent.get();
    EXPECT_EQ(r.status, serve::ResponseStatus::Ok);
    EXPECT_EQ(r.priority, serve::Priority::Interactive);

    serve::Metrics::Snapshot m = scheduler.metricsSnapshot();
    EXPECT_EQ(m.shed[static_cast<std::size_t>(
                  serve::Priority::BestEffort)],
              1u);
    EXPECT_EQ(m.rejected, 1u);
    EXPECT_EQ(m.served, 1u);
}

TEST(ServeEdf, SamePriorityOverflowIsShedWithRetryAfter)
{
    serve::Scheduler scheduler(tinyQueueConfig(1));
    api::ProgramSpec spec = api::ProgramSpec::workload("fib");

    std::future<serve::Response> queued = scheduler.trySubmit(
        api::EngineKind::Com, spec, serve::kNoDeadline,
        serve::Priority::Interactive);
    std::future<serve::Response> refused = scheduler.trySubmit(
        api::EngineKind::Com, spec, serve::kNoDeadline,
        serve::Priority::Interactive);

    // Nothing queued is less urgent, so the NEW request is the one
    // shed — same "queue full" reject as before PR 9, now carrying
    // the back-off hint.
    ASSERT_EQ(refused.wait_for(0s), std::future_status::ready);
    serve::Response r = refused.get();
    EXPECT_EQ(r.status, serve::ResponseStatus::Rejected);
    EXPECT_EQ(r.error, "queue full");
    EXPECT_GT(r.retryAfterSeconds, 0.0);

    scheduler.start();
    EXPECT_EQ(queued.get().status, serve::ResponseStatus::Ok);
}

// ---------------------------------------------------------------------
// Adaptive batch cap (pure function)
// ---------------------------------------------------------------------

TEST(ServeEdf, AdaptBatchCapGrowsUnderBacklog)
{
    EXPECT_EQ(serve::adaptBatchCap(4, 32, 32), 8u);
    EXPECT_EQ(serve::adaptBatchCap(4, 100, 32), 8u);
    // Growth saturates at max_batch.
    EXPECT_EQ(serve::adaptBatchCap(32, 32, 32), 32u);
    EXPECT_EQ(serve::adaptBatchCap(20, 40, 32), 32u);
}

TEST(ServeEdf, AdaptBatchCapShrinksWhenTheQueueRunsDry)
{
    EXPECT_EQ(serve::adaptBatchCap(8, 8, 32), 4u); // 8 <= 32/4
    EXPECT_EQ(serve::adaptBatchCap(8, 0, 32), 4u);
    // Shrink floors at 1 and stays there.
    EXPECT_EQ(serve::adaptBatchCap(1, 0, 32), 1u);
}

TEST(ServeEdf, AdaptBatchCapHoldsInTheHysteresisBand)
{
    // Depths between max/4 and max neither grow nor shrink — a
    // borderline load must not flap the cap every pop.
    EXPECT_EQ(serve::adaptBatchCap(8, 9, 32), 8u);
    EXPECT_EQ(serve::adaptBatchCap(8, 16, 32), 8u);
    EXPECT_EQ(serve::adaptBatchCap(8, 31, 32), 8u);
}

TEST(ServeEdf, AdaptBatchCapClampsDegenerateInputs)
{
    // Unbatchable scheduler: the cap is pinned to 1.
    EXPECT_EQ(serve::adaptBatchCap(16, 100, 1), 1u);
    EXPECT_EQ(serve::adaptBatchCap(16, 100, 0), 1u);
    // Out-of-range current values are clamped before the rules run.
    EXPECT_EQ(serve::adaptBatchCap(0, 32, 32), 2u);
    EXPECT_EQ(serve::adaptBatchCap(100, 16, 32), 32u);
}

// ---------------------------------------------------------------------
// Bounded coalescing scan
// ---------------------------------------------------------------------

TEST(ServeEdf, CoalesceScanBoundLimitsTheLockHeldSearch)
{
    // coalesce_scan=4: a batch-mate 3 positions past the head is
    // found; one 6 positions past is NOT — that is the whole point
    // of the bound (lock hold time per pop stays O(scan)).
    api::ProgramSpec mate = api::ProgramSpec::workload("fib");
    serve::RequestQueue q(16, nullptr,
                          serve::RequestQueue::Order::Edf, 4);
    ASSERT_TRUE(q.tryPush(makeReq(mate)));       // head
    ASSERT_TRUE(q.tryPush(makeReq(uniqueSpec(0))));
    ASSERT_TRUE(q.tryPush(makeReq(uniqueSpec(1))));
    ASSERT_TRUE(q.tryPush(makeReq(mate)));       // within the bound
    ASSERT_TRUE(q.tryPush(makeReq(uniqueSpec(2))));
    ASSERT_TRUE(q.tryPush(makeReq(uniqueSpec(3))));
    ASSERT_TRUE(q.tryPush(makeReq(uniqueSpec(4))));
    ASSERT_TRUE(q.tryPush(makeReq(mate)));       // beyond the bound

    std::vector<serve::ServeRequest> batch = q.popBatch(16);
    EXPECT_EQ(batch.size(), 2u); // head + the in-bound mate only
    settle(batch);
    EXPECT_EQ(q.depth(), 6u);    // the far mate is still queued
}

TEST(ServeEdf, DeepUniqueSourceQueueDrainsLinearly)
{
    // The regression this guards: an unbounded coalescing scan made
    // each pop O(queue) under the lock — a deep queue of unique
    // sources cost O(n^2) string compares to drain. With the bound,
    // each pop examines at most kDefaultCoalesceScan candidates, so
    // this drain is ~n*64 comparisons and finishes instantly even
    // under TSan; the quadratic version visibly dragged.
    constexpr std::size_t kDeep = 4096;
    serve::RequestQueue q(kDeep);
    for (std::size_t i = 0; i < kDeep; ++i)
        ASSERT_TRUE(q.tryPush(makeReq(uniqueSpec(i))));

    std::size_t drained = 0;
    while (drained < kDeep) {
        std::vector<serve::ServeRequest> batch = q.popBatch(16);
        ASSERT_EQ(batch.size(), 1u); // nothing coalesces
        drained += batch.size();
        settle(batch);
    }
    EXPECT_EQ(q.depth(), 0u);
}

// ---------------------------------------------------------------------
// Shed retry-after on the wire (v3) and the client's bounded retry
// ---------------------------------------------------------------------

TEST(ServeEdf, RetryAfterSurvivesAV3FrameRoundTrip)
{
    serve::Response shed;
    shed.status = serve::ResponseStatus::Rejected;
    shed.error = "shed under overload";
    shed.retryAfterSeconds = 0.25;
    shed.priority = serve::Priority::BestEffort;

    std::string bytes = net::encodeRunResponse(
        net::RunResponseFrame::fromResponse(7, shed));
    net::FrameView view;
    std::size_t consumed = 0;
    ASSERT_EQ(net::peekFrame(bytes, &view, &consumed),
              net::DecodeStatus::Frame);
    EXPECT_EQ(view.version, net::kProtocolVersion);
    net::RunResponseFrame frame;
    ASSERT_TRUE(net::decodeRunResponse(view, &frame));
    serve::Response back = frame.toResponse();
    EXPECT_EQ(back.status, serve::ResponseStatus::Rejected);
    EXPECT_DOUBLE_EQ(back.retryAfterSeconds, 0.25);
    EXPECT_EQ(back.priority, serve::Priority::BestEffort);
}

TEST(ServeEdf, V2ReplyDropsTheHintCleanly)
{
    // A v2 peer asked, so the reply is encoded at v2: the trailing
    // retry-after + priority fields are simply absent and decode to
    // their v2 meanings (no hint, Interactive).
    serve::Response shed;
    shed.status = serve::ResponseStatus::Rejected;
    shed.retryAfterSeconds = 0.25;
    shed.priority = serve::Priority::Batch;

    std::string bytes = net::encodeRunResponse(
        net::RunResponseFrame::fromResponse(7, shed), 2);
    net::FrameView view;
    std::size_t consumed = 0;
    ASSERT_EQ(net::peekFrame(bytes, &view, &consumed),
              net::DecodeStatus::Frame);
    EXPECT_EQ(view.version, 2u);
    net::RunResponseFrame frame;
    ASSERT_TRUE(net::decodeRunResponse(view, &frame));
    EXPECT_DOUBLE_EQ(frame.retryAfterSeconds, 0.0);
    EXPECT_EQ(frame.priority, serve::Priority::Interactive);
}

TEST(ServeEdf, V2RequestPayloadIsByteIdenticalToV3)
{
    // The v3 RunRequest reuses the byte v2 reserved as zero for the
    // priority, so an Interactive v3 request and a v2 request differ
    // ONLY in the header's version field — the compatibility the
    // whole scheme rests on.
    net::RunRequestFrame req = net::RunRequestFrame::fromSpec(
        3, api::EngineKind::Fith,
        api::ProgramSpec::fith("add", "1 2 + ."), 0);
    std::string v3 = net::encodeRunRequest(req, 3);
    std::string v2 = net::encodeRunRequest(req, 2);
    ASSERT_EQ(v3.size(), v2.size());
    EXPECT_EQ(v3.substr(net::kHeaderSize), v2.substr(net::kHeaderSize));

    // And the v2 bytes decode with the v2 meaning: Interactive.
    net::FrameView view;
    std::size_t consumed = 0;
    ASSERT_EQ(net::peekFrame(v2, &view, &consumed),
              net::DecodeStatus::Frame);
    EXPECT_EQ(view.version, 2u);
    net::RunRequestFrame out;
    ASSERT_TRUE(net::decodeRunRequest(view, &out));
    EXPECT_EQ(out.priority, serve::Priority::Interactive);
}

/**
 * A single-connection scripted server: sheds the first @p sheds
 * RunRequests with a retry-after hint, then serves one Ok. Lets the
 * client's retry loop be tested against real sockets without having
 * to manufacture genuine overload.
 */
class SheddingServer
{
  public:
    explicit SheddingServer(std::size_t sheds) : sheds_(sheds)
    {
        listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        EXPECT_GE(listenFd_, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0;
        EXPECT_EQ(::bind(listenFd_,
                         reinterpret_cast<const sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        socklen_t len = sizeof(addr);
        EXPECT_EQ(::getsockname(
                      listenFd_,
                      reinterpret_cast<sockaddr *>(&addr), &len),
                  0);
        port_ = ntohs(addr.sin_port);
        EXPECT_EQ(::listen(listenFd_, 1), 0);
        thread_ = std::thread([this] { serve(); });
    }

    ~SheddingServer()
    {
        thread_.join();
        ::close(listenFd_);
    }

    std::uint16_t port() const { return port_; }
    std::size_t requestsSeen() const { return seen_; }

  private:
    void
    serve()
    {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            return;
        std::string buf;
        bool done = false;
        while (!done) {
            char chunk[4096];
            ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0)
                break;
            buf.append(chunk, static_cast<std::size_t>(n));
            net::FrameView view;
            std::size_t consumed = 0;
            while (net::peekFrame(buf, &view, &consumed) ==
                   net::DecodeStatus::Frame) {
                net::RunRequestFrame req;
                ASSERT_TRUE(net::decodeRunRequest(view, &req));
                buf.erase(0, consumed);
                ++seen_;

                serve::Response resp;
                if (seen_ <= sheds_) {
                    resp.status = serve::ResponseStatus::Rejected;
                    resp.error = "shed under overload";
                    resp.retryAfterSeconds = 0.005;
                } else {
                    resp.status = serve::ResponseStatus::Ok;
                    resp.outcome.ok = true;
                    done = true;
                }
                resp.priority = req.priority;
                std::string reply = net::encodeRunResponse(
                    net::RunResponseFrame::fromResponse(
                        req.requestId, resp));
                ::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
            }
        }
        ::close(fd);
    }

    std::size_t sheds_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    /** Written by the server thread, read by the test after the
     *  client saw the matching reply (TSan-clean via atomic). */
    std::atomic<std::size_t> seen_{0};
    std::thread thread_;
};

TEST(ServeEdf, ClientRetriesShedResponsesUpToTheLimit)
{
    SheddingServer server(2); // shed twice, then serve
    net::Client client;
    net::Client::Config cfg;
    cfg.port = server.port();
    cfg.retryLimit = 3;
    ASSERT_TRUE(client.connect(cfg)) << client.error();

    serve::Response r = client.run(
        api::EngineKind::Fith, api::ProgramSpec::fith("x", "1 ."), 0,
        serve::Priority::BestEffort);
    EXPECT_EQ(r.status, serve::ResponseStatus::Ok);
    EXPECT_EQ(r.priority, serve::Priority::BestEffort);
    client.close();
    EXPECT_EQ(server.requestsSeen(), 3u); // original + 2 retries
}

TEST(ServeEdf, ClientHandsBackTheShedResponseWhenRetriesRunOut)
{
    SheddingServer server(10); // sheds more times than the limit
    net::Client client;
    net::Client::Config cfg;
    cfg.port = server.port();
    cfg.retryLimit = 2;
    ASSERT_TRUE(client.connect(cfg)) << client.error();

    serve::Response r = client.run(api::EngineKind::Fith,
                                   api::ProgramSpec::fith("x", "1 ."));
    EXPECT_EQ(r.status, serve::ResponseStatus::Rejected);
    EXPECT_EQ(r.error, "shed under overload");
    EXPECT_GT(r.retryAfterSeconds, 0.0);
    // The server must see exactly 1 + retryLimit attempts, then the
    // client closes — the loop is bounded, not while(shed).
    client.close();
    EXPECT_EQ(server.requestsSeen(), 3u);
}

} // namespace
