/**
 * @file
 * Trace machinery, trace-driven cache simulation and the Section 2.3
 * baseline models (register windows, stack cache, software method
 * caches) — including the monotonicity properties the Figure 10/11
 * curves depend on.
 */

#include <gtest/gtest.h>

#include "baseline/method_cache.hpp"
#include "baseline/register_windows.hpp"
#include "baseline/stack_cache.hpp"
#include "fith/fith_programs.hpp"
#include "sim/rng.hpp"
#include "trace/cache_sim.hpp"
#include "trace/trace.hpp"

using namespace com;

TEST(TraceTest, TextRoundTrip)
{
    trace::Trace t;
    t.record(10, 3, 1);
    t.record(11, 4, 2);
    trace::Trace u = trace::Trace::fromText(t.toText());
    ASSERT_EQ(u.size(), 2u);
    EXPECT_EQ(u.entries()[0], t.entries()[0]);
    EXPECT_EQ(u.entries()[1], t.entries()[1]);
}

TEST(TraceTest, DistinctCountsAreExact)
{
    trace::Trace t;
    t.record(1, 1, 1);
    t.record(1, 1, 1);
    t.record(2, 1, 2);
    EXPECT_EQ(t.distinctAddresses(), 2u);
    EXPECT_EQ(t.distinctKeys(), 2u);
}

TEST(CacheSim, PerfectLocalityHitsAfterWarmup)
{
    trace::Trace t;
    for (int i = 0; i < 1000; ++i)
        t.record(5, 1, 1); // one address, one key
    trace::SweepPoint p = trace::simulateIcache(t, 8, 1);
    EXPECT_DOUBLE_EQ(p.hitRatio, 1.0);
}

TEST(CacheSim, WarmupExcludesColdMisses)
{
    trace::Trace t;
    // 100 distinct cold addresses, then heavy reuse of one.
    for (int i = 0; i < 100; ++i)
        t.record(static_cast<std::uint32_t>(i), 1, 1);
    for (int i = 0; i < 300; ++i)
        t.record(7, 1, 1);
    trace::SweepPoint warm = trace::simulateIcache(t, 256, 2,
                                                   cache::ReplPolicy::Lru,
                                                   0.25);
    trace::SweepPoint cold = trace::simulateIcache(t, 256, 2,
                                                   cache::ReplPolicy::Lru,
                                                   0.0);
    EXPECT_GT(warm.hitRatio, cold.hitRatio);
}

TEST(CacheSim, HitRatioMonotonicInSizeOnRealTrace)
{
    // The Figure 10/11 property: larger caches never hurt (same ways,
    // LRU, warmed) on the actual workload trace.
    static trace::Trace t = fith::collectSuiteTrace(42, 60'000);
    double prev = -1.0;
    for (std::size_t size : {8u, 32u, 128u, 512u, 2048u}) {
        trace::SweepPoint p = trace::simulateItlb(t, size, 2);
        EXPECT_GE(p.hitRatio + 1e-9, prev) << "size " << size;
        prev = p.hitRatio;
    }
}

TEST(CacheSim, TwoWayBeatsDirectMappedOnRealTrace)
{
    // "a great deal can be gained by having at least a 2-way
    //  associative cache" — at the paper's 512-entry design point.
    static trace::Trace t = fith::collectSuiteTrace(42, 60'000);
    trace::SweepPoint direct = trace::simulateItlb(t, 512, 1);
    trace::SweepPoint two_way = trace::simulateItlb(t, 512, 2);
    EXPECT_GE(two_way.hitRatio, direct.hitRatio);
}

// ---------------------------------------------------------------------
// Register windows
// ---------------------------------------------------------------------

TEST(Windows, NoTrafficWithinWindowDepth)
{
    baseline::RegisterWindows w(8, 32);
    for (int i = 0; i < 6; ++i)
        w.onCall();
    for (int i = 0; i < 6; ++i)
        w.onReturn();
    EXPECT_EQ(w.memoryTraffic(), 0u);
    // But cleaning is unavoidable: every window is software-cleared.
    EXPECT_EQ(w.wordsCleaned(), 6u * 32u);
}

TEST(Windows, DeepRecursionSpillsAndFills)
{
    baseline::RegisterWindows w(8, 32);
    for (int i = 0; i < 20; ++i)
        w.onCall();
    EXPECT_EQ(w.overflows(), 12u);
    EXPECT_EQ(w.wordsSpilled(), 12u * 32u);
    for (int i = 0; i < 20; ++i)
        w.onReturn();
    EXPECT_GT(w.wordsFilled(), 0u);
}

TEST(Windows, ProcessSwitchFlushesEverything)
{
    baseline::RegisterWindows w(8, 32);
    for (int i = 0; i < 5; ++i)
        w.onCall();
    w.onProcessSwitch();
    EXPECT_EQ(w.flushes(), 1u);
    EXPECT_EQ(w.wordsSpilled(), 5u * 32u);
    EXPECT_EQ(w.occupied(), 0u);
}

TEST(Windows, NonLifoForcesFlush)
{
    baseline::RegisterWindows w(8, 32);
    for (int i = 0; i < 4; ++i)
        w.onCall();
    w.onNonLifo();
    EXPECT_EQ(w.flushes(), 1u);
    EXPECT_EQ(w.wordsSpilled(), 4u * 32u);
}

// ---------------------------------------------------------------------
// Stack cache
// ---------------------------------------------------------------------

TEST(StackCacheTest, SpillsOnlyTheExcess)
{
    baseline::StackCache sc(128, 32); // 4 frames fit
    for (int i = 0; i < 5; ++i)
        sc.onCall();
    EXPECT_EQ(sc.wordsSpilled(), 32u); // one frame's worth
    EXPECT_EQ(sc.residentWords(), 128u);
}

TEST(StackCacheTest, RefillsSpilledCaller)
{
    baseline::StackCache sc(64, 32); // 2 frames fit
    for (int i = 0; i < 4; ++i)
        sc.onCall();
    for (int i = 0; i < 4; ++i)
        sc.onReturn();
    EXPECT_GT(sc.wordsFilled(), 0u);
}

TEST(StackCacheTest, FlushOnSwitch)
{
    baseline::StackCache sc(1024, 32);
    for (int i = 0; i < 3; ++i)
        sc.onCall();
    sc.onProcessSwitch();
    EXPECT_EQ(sc.residentWords(), 0u);
    EXPECT_EQ(sc.wordsSpilled(), 96u);
}

// ---------------------------------------------------------------------
// Software method caches
// ---------------------------------------------------------------------

TEST(MethodCache, NoCachePaysFullLookupAlways)
{
    trace::Trace t;
    for (int i = 0; i < 100; ++i)
        t.record(1, 5, 1);
    baseline::SoftCacheResult r =
        baseline::simulateSoftwareCache(t, 0, 1);
    EXPECT_DOUBLE_EQ(r.instructionsPerSend, 60.0);
}

TEST(MethodCache, CachingCutsCostByOrderOfMagnitude)
{
    static trace::Trace t = fith::collectSuiteTrace(42, 60'000);
    auto lineup = baseline::methodCacheLineup(t);
    ASSERT_EQ(lineup.size(), 4u);
    const auto &none = lineup[0];
    const auto &direct = lineup[1];
    const auto &hw = lineup[3];
    EXPECT_GT(none.instructionsPerSend,
              direct.instructionsPerSend * 4);
    EXPECT_LT(hw.instructionsPerSend, 1.0); // ITLB hits are free
}

TEST(MethodCache, HpTwoWayBeatsDirectMapped)
{
    // "The Hewlett-Packard implementation uses a two way set
    //  association to great advantage."
    static trace::Trace t = fith::collectSuiteTrace(42, 60'000);
    auto lineup = baseline::methodCacheLineup(t);
    EXPECT_LE(lineup[2].instructionsPerSend,
              lineup[1].instructionsPerSend + 1e-9);
}
