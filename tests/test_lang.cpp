/**
 * @file
 * Language pipeline tests: lexer, parser, both code generators and
 * both execution targets. Every workload must produce its expected
 * checksum on the COM *and* on the stack baseline.
 */

#include <gtest/gtest.h>

#include "api/engine.hpp"
#include "lang/parser.hpp"
#include "lang/workloads.hpp"

using namespace com;

namespace {

/** Run source on a fresh engine of @p kind; return main's result. */
std::int32_t
runOn(api::EngineKind kind, const std::string &src,
      std::uint64_t *operations = nullptr)
{
    std::unique_ptr<api::Engine> engine = api::makeEngine(kind);
    api::RunOutcome r =
        engine->run(api::ProgramSpec::smalltalk("test", src));
    EXPECT_TRUE(r.ok) << r.error;
    if (operations)
        *operations = r.operations;
    EXPECT_TRUE(r.result.isInt()) << "main returned non-integer";
    return r.result.isInt() ? r.result.asInt() : -1;
}

/** Run source on a fresh COM; return main's integer result. */
std::int32_t
runOnCom(const std::string &src, std::uint64_t *instructions = nullptr)
{
    return runOn(api::EngineKind::Com, src, instructions);
}

/** Run source on a fresh stack VM; return main's integer result. */
std::int32_t
runOnStack(const std::string &src, std::uint64_t *bytecodes = nullptr)
{
    return runOn(api::EngineKind::Stack, src, bytecodes);
}

} // namespace

TEST(LangLexer, TokenKinds)
{
    auto toks = lang::lex("foo bar: + 12 3.5 'str' #sym := ^ . ( ) [ ] |");
    ASSERT_GE(toks.size(), 15u);
    EXPECT_EQ(toks[0].kind, lang::Tok::Ident);
    EXPECT_EQ(toks[1].kind, lang::Tok::Keyword);
    EXPECT_EQ(toks[1].text, "bar:");
    EXPECT_EQ(toks[2].kind, lang::Tok::BinarySel);
    EXPECT_EQ(toks[3].kind, lang::Tok::Integer);
    EXPECT_EQ(toks[4].kind, lang::Tok::Float);
    EXPECT_EQ(toks[5].kind, lang::Tok::String);
    EXPECT_EQ(toks[6].kind, lang::Tok::Symbol);
    EXPECT_EQ(toks[7].kind, lang::Tok::Assign);
}

TEST(LangLexer, CommentsAreSkipped)
{
    auto toks = lang::lex("a \"this is ignored\" b");
    ASSERT_EQ(toks.size(), 3u); // a, b, End
    EXPECT_EQ(toks[1].text, "b");
}

TEST(LangParser, ClassAndMethodShapes)
{
    lang::Program p = lang::parse(R"(
class Point extends Object [
    | x y |
    x [ ^x ]
    setX: ax y: ay [ x := ax. y := ay ]
    + other [ ^x + other x ]
]
main [ | p | ^3 + 4 ]
)");
    ASSERT_EQ(p.classes.size(), 1u);
    EXPECT_EQ(p.classes[0].name, "Point");
    EXPECT_EQ(p.classes[0].fields.size(), 2u);
    ASSERT_EQ(p.classes[0].methods.size(), 3u);
    EXPECT_EQ(p.classes[0].methods[1].selector, "setX:y:");
    EXPECT_EQ(p.classes[0].methods[1].argNames.size(), 2u);
    EXPECT_EQ(p.classes[0].methods[2].selector, "+");
    EXPECT_TRUE(p.hasMain);
}

TEST(LangParser, PrecedenceUnaryBinaryKeyword)
{
    // "a foo + b bar: c baz" parses as (a foo) + b bar: (c baz).
    lang::Program p = lang::parse("main [ ^1 factorial + 2 max: 3 neg ]");
    const lang::Expr &e = *p.mainBody[0];
    ASSERT_EQ(e.kind, lang::ExprKind::Send);
    EXPECT_EQ(e.text, "max:");
    ASSERT_EQ(e.receiver->kind, lang::ExprKind::Send);
    EXPECT_EQ(e.receiver->text, "+");
}

TEST(LangCom, SimpleArithmetic)
{
    EXPECT_EQ(runOnCom("main [ ^2 + 3 * 4 ]"), 20); // left-to-right
}

TEST(LangCom, TempsAndAssignment)
{
    EXPECT_EQ(runOnCom("main [ | a b | a := 6. b := a * 7. ^b ]"), 42);
}

TEST(LangCom, IfTrueIfFalse)
{
    EXPECT_EQ(runOnCom(
        "main [ ^3 < 4 ifTrue: [ 1 ] ifFalse: [ 2 ] ]"), 1);
    EXPECT_EQ(runOnCom(
        "main [ ^4 < 3 ifTrue: [ 1 ] ifFalse: [ 2 ] ]"), 2);
}

TEST(LangCom, WhileLoop)
{
    EXPECT_EQ(runOnCom(R"(
main [ | i sum |
    i := 1. sum := 0.
    [ i <= 10 ] whileTrue: [ sum := sum + i. i := i + 1 ].
    ^sum
])"),
              55);
}

TEST(LangCom, ToDoLoop)
{
    EXPECT_EQ(runOnCom(
        "main [ | s | s := 0. 1 to: 10 do: [ :i | s := s + i ]. ^s ]"),
        55);
}

TEST(LangCom, ClassWithFieldsAndMethods)
{
    EXPECT_EQ(runOnCom(R"(
class Counter [
    | n |
    init [ n := 0 ]
    bump [ n := n + 1 ]
    n [ ^n ]
]
main [ | c |
    c := Counter new.
    c init.
    5 timesRepeat: [ c bump ].
    ^c n
])"),
              5);
}

TEST(LangCom, PolymorphicDispatch)
{
    EXPECT_EQ(runOnCom(R"(
class A [
    tag [ ^1 ]
]
class B extends A [
    tag [ ^2 ]
]
main [ | x y |
    x := A new.
    y := B new.
    ^x tag * 10 + y tag
])"),
              12);
}

TEST(LangCom, GreaterThanCompilesToSwappedLt)
{
    EXPECT_EQ(runOnCom("main [ ^5 > 3 ifTrue: [ 1 ] ifFalse: [ 0 ] ]"),
              1);
    EXPECT_EQ(runOnCom("main [ ^3 >= 3 ifTrue: [ 1 ] ifFalse: [ 0 ] ]"),
              1);
}

TEST(LangStack, SimpleArithmetic)
{
    EXPECT_EQ(runOnStack("main [ ^2 + 3 * 4 ]"), 20);
}

TEST(LangStack, ControlFlow)
{
    EXPECT_EQ(runOnStack(R"(
main [ | i sum |
    i := 1. sum := 0.
    [ i <= 10 ] whileTrue: [ sum := sum + i. i := i + 1 ].
    ^sum
])"),
              55);
}

TEST(LangStack, ClassesAndDispatch)
{
    EXPECT_EQ(runOnStack(R"(
class A [
    tag [ ^1 ]
]
class B extends A [
    tag [ ^2 ]
]
main [ ^A new tag * 10 + (B new tag) ]
)"),
              12);
}

// ---------------------------------------------------------------------
// The full workload suite, on both machines.
// ---------------------------------------------------------------------

class WorkloadSuite
    : public ::testing::TestWithParam<lang::Workload>
{
};

TEST_P(WorkloadSuite, ComProducesExpected)
{
    const lang::Workload &w = GetParam();
    EXPECT_EQ(runOnCom(w.source), w.expected) << w.name;
}

TEST_P(WorkloadSuite, StackVmProducesExpected)
{
    const lang::Workload &w = GetParam();
    EXPECT_EQ(runOnStack(w.source), w.expected) << w.name;
}

TEST_P(WorkloadSuite, BothMachinesAgree)
{
    const lang::Workload &w = GetParam();
    EXPECT_EQ(runOnCom(w.source), runOnStack(w.source)) << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSuite,
    ::testing::ValuesIn(lang::workloads()),
    [](const ::testing::TestParamInfo<lang::Workload> &info) {
        return info.param.name;
    });
