#include <gtest/gtest.h>

TEST(Smoke, BuildsAndRuns)
{
    EXPECT_EQ(1 + 1, 2);
}
