/**
 * @file
 * ISA encoding and primitive function-unit tests, including
 * property-style sweeps over encode/decode round trips and the
 * multiple-precision arithmetic support (Carry/Mult1/Mult2).
 */

#include <gtest/gtest.h>

#include "core/assembler.hpp"
#include "core/constant_table.hpp"
#include "core/isa.hpp"
#include "core/machine.hpp"
#include "core/primitives.hpp"
#include "sim/rng.hpp"

using namespace com;
using core::Instr;
using core::Op;
using core::Operand;
using mem::Word;

TEST(Isa, ThreeOperandRoundTrip)
{
    Instr i = Instr::make(Op::Add, Operand::cur(4), Operand::next(7),
                          Operand::cons(3), true);
    Instr d = Instr::decode(i.encode());
    EXPECT_EQ(d.op, Op::Add);
    EXPECT_TRUE(d.ret);
    EXPECT_FALSE(d.extended);
    EXPECT_EQ(d.a, Operand::cur(4));
    EXPECT_EQ(d.b, Operand::next(7));
    EXPECT_EQ(d.c, Operand::cons(3));
}

TEST(Isa, ExtendedRoundTrip)
{
    Instr i = Instr::makeSend(0x3ffff, 2);
    Instr d = Instr::decode(i.encode());
    EXPECT_TRUE(d.extended);
    EXPECT_EQ(d.extSelector, 0x3ffffu);
    EXPECT_EQ(d.implicitCount, 2);
}

TEST(Isa, RandomEncodeDecodeRoundTrips)
{
    sim::Rng rng(17);
    for (int n = 0; n < 5000; ++n) {
        Instr i;
        if (rng.chance(0.2)) {
            i = Instr::makeSend(
                static_cast<std::uint32_t>(rng.below(1u << 22)),
                static_cast<std::uint8_t>(rng.below(3)),
                rng.chance(0.5));
        } else {
            auto operand = [&rng]() {
                switch (rng.below(3)) {
                  case 0:
                    return Operand::cur(static_cast<std::uint8_t>(
                        rng.below(32)));
                  case 1:
                    return Operand::next(static_cast<std::uint8_t>(
                        rng.below(32)));
                  default:
                    return Operand::cons(static_cast<std::uint8_t>(
                        rng.below(128)));
                }
            };
            i = Instr::make(
                static_cast<Op>(rng.below(
                    static_cast<std::uint64_t>(Op::kFirstUserOp))),
                operand(), operand(), operand(), rng.chance(0.5));
        }
        Instr d = Instr::decode(i.encode());
        ASSERT_EQ(d.encode(), i.encode());
        ASSERT_TRUE(d == i);
    }
}

TEST(Isa, DispatchSpecExcludesDestination)
{
    // Value-producing ops must not key the ITLB on the destination's
    // stale class (it would inflate the key population for nothing).
    core::DispatchSpec add = core::dispatchSpec(Op::Add);
    EXPECT_FALSE(add.useA);
    EXPECT_TRUE(add.useB);
    EXPECT_TRUE(add.useC);
    core::DispatchSpec put = core::dispatchSpec(Op::PutRes);
    EXPECT_TRUE(put.useA);
    core::DispatchSpec jmp = core::dispatchSpec(Op::Fjmp);
    EXPECT_TRUE(jmp.useA);
    EXPECT_FALSE(jmp.useB);
}

// ---------------------------------------------------------------------
// Value primitives
// ---------------------------------------------------------------------

namespace {

struct PrimEnv
{
    obj::SelectorTable selectors;
    core::ConstantTable consts{selectors};

    core::ValueResult
    eval(Op op, Word b, Word c)
    {
        return core::evalValuePrimitive(op, b, c, consts);
    }
};

} // namespace

TEST(Primitives, IntegerArithmetic)
{
    PrimEnv env;
    EXPECT_EQ(env.eval(Op::Add, Word::fromInt(2), Word::fromInt(40))
                  .value.asInt(),
              42);
    EXPECT_EQ(env.eval(Op::Sub, Word::fromInt(2), Word::fromInt(40))
                  .value.asInt(),
              -38);
    EXPECT_EQ(env.eval(Op::Mul, Word::fromInt(-6), Word::fromInt(7))
                  .value.asInt(),
              -42);
    EXPECT_EQ(env.eval(Op::Div, Word::fromInt(42), Word::fromInt(5))
                  .value.asInt(),
              8);
}

TEST(Primitives, FlooringModuloFollowsDivisorSign)
{
    PrimEnv env;
    EXPECT_EQ(env.eval(Op::Mod, Word::fromInt(7), Word::fromInt(3))
                  .value.asInt(),
              1);
    EXPECT_EQ(env.eval(Op::Mod, Word::fromInt(-7), Word::fromInt(3))
                  .value.asInt(),
              2);
    EXPECT_EQ(env.eval(Op::Mod, Word::fromInt(7), Word::fromInt(-3))
                  .value.asInt(),
              -2);
}

TEST(Primitives, MixedModeProducesFloat)
{
    PrimEnv env;
    core::ValueResult r =
        env.eval(Op::Add, Word::fromInt(1), Word::fromFloat(0.5f));
    EXPECT_FLOAT_EQ(r.value.asFloat(), 1.5f);
    r = env.eval(Op::Mul, Word::fromFloat(2.5f), Word::fromInt(4));
    EXPECT_FLOAT_EQ(r.value.asFloat(), 10.0f);
}

TEST(Primitives, DivideByZeroFaults)
{
    PrimEnv env;
    EXPECT_EQ(env.eval(Op::Div, Word::fromInt(1), Word::fromInt(0))
                  .fault,
              core::GuestFault::DivideByZero);
    EXPECT_EQ(env.eval(Op::Mod, Word::fromInt(1), Word::fromInt(0))
                  .fault,
              core::GuestFault::DivideByZero);
}

TEST(Primitives, MultiplePrecisionSupport)
{
    // "These instructions, defined for small integer, allow multiple
    //  precision integer arithmetic to be implemented without flags."
    PrimEnv env;
    // Carry of 0xffffffff + 1 is 1; of 1 + 1 is 0.
    EXPECT_EQ(env.eval(Op::Carry, Word::fromInt(-1), Word::fromInt(1))
                  .value.asInt(),
              1);
    EXPECT_EQ(env.eval(Op::Carry, Word::fromInt(1), Word::fromInt(1))
                  .value.asInt(),
              0);
    // 0x10000 * 0x10000 = 2^32: low word 0, high word 1.
    Word big = Word::fromInt(0x10000);
    EXPECT_EQ(env.eval(Op::Mult1, big, big).value.asInt(), 0);
    EXPECT_EQ(env.eval(Op::Mult2, big, big).value.asInt(), 1);
}

TEST(Primitives, MultiPrecisionComposes64BitAdd)
{
    // Property: for random 64-bit values split into 32-bit halves,
    // Add/Carry implement a correct 64-bit addition.
    PrimEnv env;
    sim::Rng rng(23);
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t x = rng.next(), y = rng.next();
        Word xl = Word::fromInt(static_cast<std::int32_t>(x));
        Word xh = Word::fromInt(static_cast<std::int32_t>(x >> 32));
        Word yl = Word::fromInt(static_cast<std::int32_t>(y));
        Word yh = Word::fromInt(static_cast<std::int32_t>(y >> 32));

        std::uint32_t lo = static_cast<std::uint32_t>(
            env.eval(Op::Add, xl, yl).value.asInt());
        std::int32_t carry = env.eval(Op::Carry, xl, yl).value.asInt();
        std::uint32_t hi = static_cast<std::uint32_t>(
            env.eval(Op::Add,
                     env.eval(Op::Add, xh, yh).value,
                     Word::fromInt(carry))
                .value.asInt());
        std::uint64_t got =
            (static_cast<std::uint64_t>(hi) << 32) | lo;
        ASSERT_EQ(got, x + y);
    }
}

TEST(Primitives, BitFieldOperations)
{
    PrimEnv env;
    EXPECT_EQ(env.eval(Op::Shift, Word::fromInt(1), Word::fromInt(4))
                  .value.asInt(),
              16);
    EXPECT_EQ(env.eval(Op::Shift, Word::fromInt(256), Word::fromInt(-4))
                  .value.asInt(),
              16);
    EXPECT_EQ(env.eval(Op::AShift, Word::fromInt(-16), Word::fromInt(-2))
                  .value.asInt(),
              -4);
    EXPECT_EQ(env.eval(Op::Rotate, Word::fromInt(1), Word::fromInt(33))
                  .value.asInt(),
              2);
    EXPECT_EQ(env.eval(Op::Mask, Word::fromInt(0xff), Word::fromInt(0x0f))
                  .value.asInt(),
              0xf0);
}

TEST(Primitives, ComparisonsReturnBooleanAtoms)
{
    PrimEnv env;
    core::ValueResult lt =
        env.eval(Op::Lt, Word::fromInt(1), Word::fromInt(2));
    EXPECT_EQ(lt.value.asAtom(), env.consts.trueAtom());
    core::ValueResult same = env.eval(Op::Same, Word::fromInt(1),
                                      Word::fromFloat(1.0f));
    // Same is identity: an int and a float are never the same object.
    EXPECT_EQ(same.value.asAtom(), env.consts.falseAtom());
}

TEST(Primitives, ApplicabilityMatchesPaperTable)
{
    using core::primitiveApplicable;
    constexpr mem::ClassId I = 1, F = 2, A = 3;
    // Arithmetic: int and float, mixed modes primitive; Mod int only.
    EXPECT_TRUE(primitiveApplicable(Op::Add, 0, I, I));
    EXPECT_TRUE(primitiveApplicable(Op::Add, 0, I, F));
    EXPECT_FALSE(primitiveApplicable(Op::Add, 0, A, I));
    EXPECT_TRUE(primitiveApplicable(Op::Mod, 0, I, I));
    EXPECT_FALSE(primitiveApplicable(Op::Mod, 0, F, I));
    // Logical: integers as bit fields.
    EXPECT_FALSE(primitiveApplicable(Op::Xor, 0, F, F));
    // Same: all types.
    EXPECT_TRUE(primitiveApplicable(Op::Same, 0, A, I));
    // User class receivers are pointer classes for At.
    EXPECT_TRUE(primitiveApplicable(Op::At, 0, 19, I));
    EXPECT_FALSE(primitiveApplicable(Op::At, 0, 19, F));
}

// ---------------------------------------------------------------------
// Constant table
// ---------------------------------------------------------------------

TEST(Constants, FixedEntriesAndDedup)
{
    obj::SelectorTable st;
    core::ConstantTable ct(st);
    EXPECT_EQ(ct.at(core::kConstNil), ct.nilWord());
    EXPECT_EQ(ct.at(core::kConstTrue), ct.trueWord());
    std::uint8_t a = ct.intern(Word::fromInt(42));
    std::uint8_t b = ct.intern(Word::fromInt(42));
    EXPECT_EQ(a, b);
    EXPECT_NE(ct.intern(Word::fromFloat(42.0f)), a); // different tag
}

TEST(Constants, OverflowIsFatal)
{
    obj::SelectorTable st;
    core::ConstantTable ct(st);
    for (int i = 0; i < 125; ++i)
        ct.intern(Word::fromInt(1000 + i));
    EXPECT_EQ(ct.size(), 128u);
    EXPECT_THROW(ct.intern(Word::fromInt(9999)), sim::FatalError);
}

// ---------------------------------------------------------------------
// Assembler details
// ---------------------------------------------------------------------

TEST(AssemblerTest, DisassembleRoundTrips)
{
    core::Machine m;
    core::Assembler as(m);
    std::vector<Instr> code = as.assemble(R"(
        add   c4, c1, =5
        putres.r c2, c4
    )");
    ASSERT_EQ(code.size(), 2u);
    EXPECT_EQ(code[0].op, Op::Add);
    EXPECT_TRUE(code[1].ret);
    std::string d = core::Assembler::disassemble(code[1]);
    EXPECT_NE(d.find("putres"), std::string::npos);
    EXPECT_NE(d.find(".r"), std::string::npos);
}

TEST(AssemblerTest, UnknownMnemonicIsFatal)
{
    core::Machine m;
    core::Assembler as(m);
    EXPECT_THROW(as.assemble("frobnicate c1, c2, c3"),
                 sim::FatalError);
}

TEST(AssemblerTest, UnknownLabelIsFatal)
{
    core::Machine m;
    core::Assembler as(m);
    EXPECT_THROW(as.assemble("jmp @nowhere"), sim::FatalError);
}

TEST(AssemblerTest, BackwardAndForwardJumpsResolve)
{
    core::Machine m;
    core::Assembler as(m);
    std::vector<Instr> code = as.assemble(R"(
    top:
        jt c1, @end
        jmp @top
    end:
        halt
    )");
    ASSERT_EQ(code.size(), 3u);
    EXPECT_EQ(code[0].op, Op::Fjmp);  // forward
    EXPECT_EQ(code[1].op, Op::Rjmp);  // backward
}
