/**
 * @file
 * comsim_routerd — the multi-process shard router (net/router.hpp).
 *
 * Forks --workers comsim_served processes, listens on --host:--port
 * (0 picks a free port, printed as "listening on HOST:PORT"), and
 * routes each request to the worker the stable source hash names.
 * A crashed worker is restarted in place; SIGTERM drains gracefully
 * (every in-flight request resolves, workers exit 0, then we do).
 * SIGUSR1 forwards to every worker, which dumps its flight recorder
 * to the shared stderr.
 */

#include <csignal>
#include <cstdio>
#include <string>

#include "bench/flags.hpp"
#include "net/router.hpp"

namespace {

com::net::Router *g_router = nullptr;

void
onSignal(int)
{
    if (g_router)
        g_router->requestDrain(); // async-signal-safe
}

void
onTraceSignal(int)
{
    if (g_router)
        g_router->requestTraceDump(); // async-signal-safe
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    std::uint64_t port = 0;
    std::uint64_t workers = 2;
    std::string worker_path;
    std::uint64_t workers_per_shard = 2;
    std::uint64_t queue_capacity = 1024;
    std::uint64_t max_batch = 32;
    std::uint64_t max_attempts = 3;
    std::uint64_t max_connections = 128;
    std::uint64_t recorder = 256;
    std::uint64_t slow_ms = 0;

    com::bench::FlagSet flags(
        "comsim_routerd",
        "multi-process shard router over comsim_served workers");
    flags.addString("host", &host, "listening address");
    flags.addUint("port", &port, "listening port (0 = pick free)");
    flags.addUint("workers", &workers,
                  "worker processes (the shard count)");
    flags.addString("worker-path", &worker_path,
                    "comsim_served binary (default: our sibling)");
    flags.addUint("workers-per-shard", &workers_per_shard,
                  "scheduler threads inside each worker");
    flags.addUint("queue-capacity", &queue_capacity,
                  "queue capacity inside each worker");
    flags.addUint("max-batch", &max_batch,
                  "requests per session checkout in each worker");
    flags.addUint("max-attempts", &max_attempts,
                  "re-sends after worker deaths before WorkerLost");
    flags.addUint("max-connections", &max_connections,
                  "accepted-connection cap");
    flags.addUint("recorder", &recorder,
                  "flight-recorder spans per shard in each worker");
    flags.addUint("slow-ms", &slow_ms,
                  "workers keep full spans of requests slower than "
                  "this (0 = off)");
    flags.parse(argc, argv);

    com::net::Router::Config cfg;
    cfg.host = host;
    cfg.port = static_cast<std::uint16_t>(port);
    cfg.workers = workers;
    cfg.workerPath = worker_path;
    cfg.maxAttempts = max_attempts;
    cfg.maxConnections = max_connections;
    cfg.workerArgs = {
        "--workers-per-shard", std::to_string(workers_per_shard),
        "--queue-capacity",    std::to_string(queue_capacity),
        "--max-batch",         std::to_string(max_batch),
        "--recorder",          std::to_string(recorder),
        "--slow-ms",           std::to_string(slow_ms),
    };

    std::signal(SIGPIPE, SIG_IGN);
    com::net::Router router(cfg);
    g_router = &router;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::signal(SIGUSR1, onTraceSignal);

    std::printf("listening on %s:%u\n", host.c_str(),
                router.port());
    std::fflush(stdout);
    int rc = router.run();
    g_router = nullptr;
    return rc;
}
