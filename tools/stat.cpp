/**
 * @file
 * comsim_stat — live stage-latency breakdown of a running server.
 *
 * Connects to a comsim_served or comsim_routerd (the router answers
 * with fleet-merged numbers) and, by default, polls MetricsRequest
 * every --interval seconds, printing one table row per poll with the
 * *interval's* rates and stage p50s — each row diffs two cumulative
 * snapshots with LatencyHistogram::Snapshot::delta, so a long-lived
 * server shows what is happening now, not its lifetime average.
 *
 * One-shot modes:
 *   --prom=1    print the Prometheus text rendering of one snapshot
 *               (the same bytes an HTTP GET on the serve port yields)
 *   --trace=1   fetch the flight recorder (TraceRequest) and print
 *               the span table (serve/flight_recorder.hpp)
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/flags.hpp"
#include "net/client.hpp"
#include "serve/flight_recorder.hpp"
#include "serve/prometheus.hpp"

namespace {

/** A histogram-delta p50 in milliseconds, for table cells. */
double
p50Ms(const com::serve::LatencyHistogram::Snapshot &h)
{
    return h.p50Seconds * 1e3;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    std::uint64_t port = 0;
    double interval = 2.0;
    std::uint64_t count = 0;
    std::uint64_t prom = 0;
    std::uint64_t trace = 0;

    com::bench::FlagSet flags(
        "comsim_stat",
        "live stage-latency breakdown of a comsim_served/routerd");
    flags.addString("host", &host, "server address");
    flags.addUint("port", &port, "server port (required)");
    flags.addDouble("interval", &interval,
                    "seconds between polls (live table mode)");
    flags.addUint("count", &count,
                  "table rows to print before exiting (0 = forever)");
    flags.addUint("prom", &prom,
                  "1 = print one Prometheus text snapshot and exit");
    flags.addUint("trace", &trace,
                  "1 = print the flight-recorder spans and exit");
    flags.parse(argc, argv);

    if (port == 0) {
        std::fprintf(stderr, "comsim_stat: --port is required\n");
        flags.usage(stderr);
        return 2;
    }

    com::net::Client client;
    com::net::Client::Config ccfg;
    ccfg.host = host;
    ccfg.port = static_cast<std::uint16_t>(port);
    if (!client.connect(ccfg)) {
        std::fprintf(stderr, "comsim_stat: %s\n",
                     client.error().c_str());
        return 1;
    }

    if (trace > 0) {
        std::vector<com::serve::FlightSpan> spans;
        if (!client.trace(&spans)) {
            std::fprintf(stderr, "comsim_stat: %s\n",
                         client.error().c_str());
            return 1;
        }
        std::string text = com::serve::renderFlightSpans(
            spans, host + ":" + std::to_string(port));
        std::fwrite(text.data(), 1, text.size(), stdout);
        return 0;
    }

    com::serve::Metrics::Snapshot snap;
    if (!client.metrics(&snap)) {
        std::fprintf(stderr, "comsim_stat: %s\n",
                     client.error().c_str());
        return 1;
    }

    if (prom > 0) {
        std::string text = com::serve::renderPrometheus(snap);
        std::fwrite(text.data(), 1, text.size(), stdout);
        return 0;
    }

    using Hist = com::serve::LatencyHistogram::Snapshot;
    com::serve::Metrics::Snapshot prev = snap;
    for (std::uint64_t row = 0; count == 0 || row < count; ++row) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(interval));
        com::serve::Metrics::Snapshot cur;
        if (!client.metrics(&cur)) {
            std::fprintf(stderr, "comsim_stat: %s\n",
                         client.error().c_str());
            return 1;
        }
        if (row % 20 == 0)
            std::printf("%8s %8s %6s %9s %9s %9s %9s %9s %9s %6s "
                        "%5s\n",
                        "rps", "ok", "fail", "queue_p50", "pool_p50",
                        "warm_p50", "exec_p50", "verif_p50",
                        "e2e_p50", "depth", "util");
        // Counters are cumulative; a worker restart can make them
        // step backwards, so clamp like the histogram deltas do.
        auto diff = [](std::uint64_t after, std::uint64_t before) {
            return after >= before ? after - before : 0;
        };
        Hist lat = Hist::delta(cur.latency, prev.latency);
        Hist queue = Hist::delta(cur.queueWait, prev.queueWait);
        Hist pool = Hist::delta(cur.poolWait, prev.poolWait);
        Hist warm = Hist::delta(cur.warmRestore, prev.warmRestore);
        Hist exec = Hist::delta(cur.execute, prev.execute);
        Hist verify = Hist::delta(cur.verify, prev.verify);
        std::uint64_t done = diff(cur.served, prev.served) +
                             diff(cur.failed, prev.failed) +
                             diff(cur.expired, prev.expired);
        std::printf("%8.1f %8llu %6llu %8.2fm %8.2fm %8.2fm %8.2fm "
                    "%8.2fm %8.2fm %6llu %4.0f%%\n",
                    static_cast<double>(done) / interval,
                    static_cast<unsigned long long>(
                        diff(cur.served, prev.served)),
                    static_cast<unsigned long long>(
                        diff(cur.failed, prev.failed) +
                        diff(cur.expired, prev.expired)),
                    p50Ms(queue), p50Ms(pool), p50Ms(warm),
                    p50Ms(exec), p50Ms(verify), p50Ms(lat),
                    static_cast<unsigned long long>(cur.queueDepth),
                    cur.utilization * 100.0);
        std::fflush(stdout);
        prev = cur;
    }
    return 0;
}
