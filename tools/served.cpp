/**
 * @file
 * comsim_served — one wire-protocol serving process.
 *
 * Two modes:
 *   - standalone: bind --host:--port (0 picks a free port, printed as
 *     "listening on HOST:PORT" for scripts) and serve clients;
 *   - router worker: --control-fd N serves exactly that inherited
 *     pre-connected socket (comsim_routerd forks us this way).
 *
 * SIGTERM / SIGINT drain gracefully: stop accepting, resolve every
 * accepted request, flush, exit 0. SIGUSR1 dumps the flight recorder
 * (per-request span table, serve/flight_recorder.hpp) to stderr
 * without disturbing service; a fatal error dumps it too on the way
 * out, so the last thing a dying server says is where its requests'
 * time went.
 */

#include <csignal>
#include <cstdio>
#include <exception>

#include "bench/flags.hpp"
#include "net/server.hpp"

namespace {

com::net::Server *g_server = nullptr;

void
onSignal(int)
{
    if (g_server)
        g_server->requestDrain(); // async-signal-safe
}

void
onTraceSignal(int)
{
    if (g_server)
        g_server->requestTraceDump(); // async-signal-safe
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    std::uint64_t port = 0;
    // 0 = standalone (fd 0 is stdin, never a control socket).
    std::uint64_t control_fd = 0;
    std::uint64_t shards = 1;
    std::uint64_t workers_per_shard = 2;
    std::uint64_t queue_capacity = 1024;
    std::uint64_t max_batch = 32;
    std::uint64_t pool_size = 0;
    std::uint64_t max_connections = 128;
    std::uint64_t recorder = 256;
    std::uint64_t slow_ms = 0;

    com::bench::FlagSet flags(
        "comsim_served",
        "wire-protocol serving process (net/server.hpp)");
    flags.addString("host", &host, "listening address");
    flags.addUint("port", &port, "listening port (0 = pick free)");
    flags.addUint("control-fd", &control_fd,
                  "serve this inherited fd instead of listening");
    flags.addUint("shards", &shards, "scheduler shards");
    flags.addUint("workers-per-shard", &workers_per_shard,
                  "worker threads per shard");
    flags.addUint("queue-capacity", &queue_capacity,
                  "per-shard queue capacity");
    flags.addUint("max-batch", &max_batch,
                  "requests per session checkout");
    flags.addUint("pool-size", &pool_size,
                  "engines per kind in each pool (0 = default)");
    flags.addUint("max-connections", &max_connections,
                  "accepted-connection cap");
    flags.addUint("recorder", &recorder,
                  "flight-recorder spans kept per shard");
    flags.addUint("slow-ms", &slow_ms,
                  "keep full spans of requests slower than this "
                  "(0 = off)");
    flags.parse(argc, argv);

    com::net::Server::Config cfg;
    cfg.host = host;
    cfg.port = static_cast<std::uint16_t>(port);
    cfg.controlFd = control_fd > 0 ? static_cast<int>(control_fd)
                                   : -1;
    cfg.maxConnections = max_connections;
    cfg.scheduler.shards = shards;
    cfg.scheduler.workersPerShard = workers_per_shard;
    cfg.scheduler.queueCapacity = queue_capacity;
    cfg.scheduler.maxBatch = max_batch;
    cfg.scheduler.flightRecorderCapacity = recorder;
    cfg.scheduler.slowThreshold =
        std::chrono::milliseconds(slow_ms);
    if (pool_size > 0) {
        cfg.scheduler.pool.comEngines = pool_size;
        cfg.scheduler.pool.stackEngines = pool_size;
        cfg.scheduler.pool.fithEngines = pool_size;
    }

    com::net::Server server(cfg);
    g_server = &server;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::signal(SIGUSR1, onTraceSignal);
    std::signal(SIGPIPE, SIG_IGN);

    if (cfg.controlFd < 0) {
        std::printf("listening on %s:%u\n", host.c_str(),
                    server.port());
        std::fflush(stdout);
    }
    try {
        server.run();
    } catch (const std::exception &e) {
        // Last words: the flight recorder says where request time
        // went right up to the failure.
        std::string dump = server.scheduler().traceDumpText();
        std::fwrite(dump.data(), 1, dump.size(), stderr);
        std::fprintf(stderr, "comsim_served: fatal: %s\n", e.what());
        g_server = nullptr;
        return 1;
    }
    g_server = nullptr;
    return 0;
}
