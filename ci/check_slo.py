#!/usr/bin/env python3
"""The CI SLO smoke: assert a bench_serve trajectory kept its word.

Run after an oversubscribed open-loop bench_serve pass (arrival rate
above service capacity, a --priority-mix carrying all three classes,
--slo-ms set). Checks, for every serving entry in the file:

  * failures == 0 — overload must shed or expire, never corrupt
    (a checksum mismatch under load is a real bug, not noise);
  * interactive_p99_ms stays under --max-interactive-p99-ms;
  * slo_attained >= --min-slo-attained where an SLO was declared.

usage: check_slo.py BENCH.json --max-interactive-p99-ms 500
                    [--min-slo-attained 0.9]
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("path")
    ap.add_argument("--max-interactive-p99-ms", type=float,
                    required=True)
    ap.add_argument("--min-slo-attained", type=float, default=0.0)
    args = ap.parse_args()

    with open(args.path) as f:
        doc = json.load(f)
    serve = [b for b in doc.get("benchmarks", [])
             if b["name"].startswith("BM_Serve/")]
    if not serve:
        print("no serving entries in", args.path, file=sys.stderr)
        return 1

    bad = 0
    for b in serve:
        name = b["name"]
        if b.get("failures", 0) != 0:
            print("FAIL: %s has %d failures" % (name, b["failures"]),
                  file=sys.stderr)
            bad += 1
        p99 = b.get("interactive_p99_ms", 0.0)
        if p99 > args.max_interactive_p99_ms:
            print("FAIL: %s interactive p99 %.2fms > %.2fms"
                  % (name, p99, args.max_interactive_p99_ms),
                  file=sys.stderr)
            bad += 1
        if b.get("slo_ms", 0.0) > 0.0:
            att = b.get("slo_attained", 0.0)
            if att < args.min_slo_attained:
                print("FAIL: %s slo_attained %.4f < %.4f"
                      % (name, att, args.min_slo_attained),
                      file=sys.stderr)
                bad += 1
        print("%s: interactive p99 %.2fms, slo_attained %.4f, "
              "shed %d, failures %d"
              % (name, p99, b.get("slo_attained", 0.0),
                 b.get("shed", 0), b.get("failures", 0)))
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
