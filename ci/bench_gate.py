#!/usr/bin/env python3
"""The CI perf-regression gate.

Compares a fresh BENCH_perf.json run against the committed baseline
and fails (exit 1) only when an entry's rate dropped by more than the
threshold (default 40% — CI runners are noisy, so this is a cliff
detector, not a 2%-drift detector). Entries present on only one side
are reported but never fail the gate: new benchmarks appear and old
scenarios get renamed as the repo grows.

A markdown delta table is appended to the file named by --summary
(pass $GITHUB_STEP_SUMMARY in CI) so the numbers are one click away
on the job page even when the gate passes.

usage: bench_gate.py BASELINE CURRENT [--threshold 0.40]
                     [--summary FILE]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: b for b in doc.get("benchmarks", [])}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.40,
                    help="max allowed fractional rate drop")
    ap.add_argument("--summary", default=None,
                    help="markdown summary file to append to")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    rows = []
    failures = []
    for name in sorted(set(base) | set(cur)):
        b = base.get(name)
        c = cur.get(name)
        if b is None:
            rows.append((name, None, c["rate"], None, "new"))
            continue
        if c is None:
            rows.append((name, b["rate"], None, None, "not run"))
            continue
        if b["rate"] <= 0:
            rows.append((name, b["rate"], c["rate"], None, "no baseline"))
            continue
        delta = (c["rate"] - b["rate"]) / b["rate"]
        verdict = "ok"
        if delta < -args.threshold:
            verdict = "REGRESSION"
            failures.append((name, b["rate"], c["rate"], delta))
        rows.append((name, b["rate"], c["rate"], delta, verdict))

    lines = [
        "### Bench gate (fail below -%.0f%%)" % (args.threshold * 100),
        "",
        "| benchmark | baseline | current | delta | verdict |",
        "|---|---:|---:|---:|---|",
    ]
    for name, b, c, delta, verdict in rows:
        lines.append("| %s | %s | %s | %s | %s |" % (
            name,
            "%.1f" % b if b is not None else "—",
            "%.1f" % c if c is not None else "—",
            "%+.1f%%" % (delta * 100) if delta is not None else "—",
            verdict,
        ))
    table = "\n".join(lines)
    print(table)

    if args.summary:
        with open(args.summary, "a") as f:
            f.write(table + "\n\n")

    if failures:
        for name, b, c, delta in failures:
            print("FAIL: %s dropped %.1f%% (%.1f -> %.1f)"
                  % (name, -delta * 100, b, c), file=sys.stderr)
        return 1
    print("bench gate ok: %d compared, %d baseline-only, %d new"
          % (sum(1 for r in rows if r[3] is not None),
             sum(1 for r in rows if r[4] == "not run"),
             sum(1 for r in rows if r[4] == "new")))
    return 0


if __name__ == "__main__":
    sys.exit(main())
