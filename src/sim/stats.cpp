#include "sim/stats.hpp"

#include <iomanip>

#include "sim/logging.hpp"

namespace com::sim {

Histogram::Histogram(std::size_t num_bins, std::uint64_t bin_width)
    : bins_(num_bins + 1, 0), binWidth_(bin_width ? bin_width : 1)
{
}

void
Histogram::sample(std::uint64_t v)
{
    std::size_t idx = static_cast<std::size_t>(v / binWidth_);
    if (idx >= bins_.size() - 1)
        idx = bins_.size() - 1;
    ++bins_[idx];
    ++count_;
    sum_ += v;
    if (count_ == 1) {
        min_ = max_ = v;
    } else {
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }
}

void
Histogram::reset()
{
    for (auto &b : bins_)
        b = 0;
    count_ = sum_ = min_ = max_ = 0;
}

double
Histogram::mean() const
{
    return count_ ? static_cast<double>(sum_) / count_ : 0.0;
}

std::uint64_t
Histogram::bin(std::size_t i) const
{
    panicIf(i >= bins_.size(), "histogram bin index out of range");
    return bins_[i];
}

double
Histogram::fractionBelow(std::uint64_t v) const
{
    if (count_ == 0)
        return 0.0;
    std::uint64_t below = 0;
    // Count whole bins entirely below v; exact when binWidth_ == 1.
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        std::uint64_t bin_end = (i + 1) * binWidth_;
        if (i == bins_.size() - 1 || bin_end > v)
            break;
        below += bins_[i];
    }
    return static_cast<double>(below) / count_;
}

void
StatGroup::addCounter(const std::string &stat_name, const Counter *c,
                      const std::string &desc)
{
    counters_.push_back({stat_name, c, desc});
}

void
StatGroup::addHistogram(const std::string &stat_name, const Histogram *h,
                        const std::string &desc)
{
    hists_.push_back({stat_name, h, desc});
}

void
StatGroup::addRatio(const std::string &stat_name, const Counter *numer,
                    const Counter *denom, const std::string &desc)
{
    ratios_.push_back({stat_name, numer, denom, desc});
}

void
StatGroup::addChild(const StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string base =
        prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &e : counters_) {
        os << base << "." << e.name << " " << e.counter->value();
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
    for (const auto &e : ratios_) {
        double denom = static_cast<double>(e.denom->value());
        double v = denom > 0
            ? static_cast<double>(e.numer->value()) / denom : 0.0;
        os << base << "." << e.name << " "
           << std::fixed << std::setprecision(6) << v;
        os.unsetf(std::ios::floatfield);
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
    for (const auto &e : hists_) {
        os << base << "." << e.name
           << " count=" << e.hist->count()
           << " mean=" << std::fixed << std::setprecision(3)
           << e.hist->mean()
           << " min=" << e.hist->min()
           << " max=" << e.hist->max();
        os.unsetf(std::ios::floatfield);
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
    for (const auto *child : children_)
        child->dump(os, base);
}

std::uint64_t
StatGroup::counterValue(const std::string &stat_name) const
{
    for (const auto &e : counters_)
        if (e.name == stat_name)
            return e.counter->value();
    panic("no counter named '", stat_name, "' in group '", name_, "'");
}

double
StatGroup::ratioValue(const std::string &stat_name) const
{
    for (const auto &e : ratios_) {
        if (e.name == stat_name) {
            double denom = static_cast<double>(e.denom->value());
            return denom > 0
                ? static_cast<double>(e.numer->value()) / denom : 0.0;
        }
    }
    panic("no ratio named '", stat_name, "' in group '", name_, "'");
}

} // namespace com::sim
