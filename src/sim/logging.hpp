/**
 * @file
 * Simulator status and error reporting.
 *
 * Follows the gem5 convention in spirit: panic() is for conditions that
 * indicate a bug in the simulator itself; fatal() is for conditions caused
 * by the user (bad configuration, malformed guest programs).
 * warn()/inform() report conditions that do not stop simulation.
 *
 * Deviation from gem5 (documented): panic/fatal throw typed exceptions
 * (PanicError / FatalError) instead of calling abort()/exit(1), so the
 * test suite can assert on error behaviour and embedding applications can
 * recover at a top-level boundary. Both print to stderr before throwing.
 */

#ifndef COMSIM_SIM_LOGGING_HPP
#define COMSIM_SIM_LOGGING_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace com::sim {

/** Thrown by panic(): an internal simulator invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): user input or configuration is unusable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Destination and verbosity control for non-fatal messages. */
class LogConfig
{
  public:
    /** Suppress inform() output (warnings still print). */
    static void quiet(bool q);
    /** @return true if inform() output is suppressed. */
    static bool isQuiet();
};

namespace detail {

[[noreturn]] void panicImpl(const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Stream-concatenate a parameter pack into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Report an internal simulator bug and throw PanicError.
 * Use only for "can't happen" conditions.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * Report an unrecoverable user-caused error and throw FatalError.
 * Use for bad configuration or malformed guest programs.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (!LogConfig::isQuiet())
        detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Simulator-bug assertion: panics with a message when condition holds. */
template <typename... Args>
void
panicIf(bool condition, Args &&...args)
{
    if (condition)
        panic(std::forward<Args>(args)...);
}

/** User-error assertion: fatal()s with a message when condition holds. */
template <typename... Args>
void
fatalIf(bool condition, Args &&...args)
{
    if (condition)
        fatal(std::forward<Args>(args)...);
}

} // namespace com::sim

#endif // COMSIM_SIM_LOGGING_HPP
