#include "sim/logging.hpp"

#include <cstdio>

namespace com::sim {

namespace {
bool quietFlag = false;
} // namespace

void
LogConfig::quiet(bool q)
{
    quietFlag = q;
}

bool
LogConfig::isQuiet()
{
    return quietFlag;
}

namespace detail {

void
panicImpl(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::fflush(stderr);
    throw PanicError(msg);
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::fflush(stderr);
    throw FatalError(msg);
}

void
warnImpl(const std::string &msg)
{
    if (!LogConfig::isQuiet())
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace com::sim
