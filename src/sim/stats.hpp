/**
 * @file
 * Lightweight statistics framework for simulation models.
 *
 * Models own StatGroup instances; each group holds named scalar counters,
 * ratios and histograms. Groups can nest, producing a dotted hierarchy in
 * dumps (e.g. "machine.itlb.hits"). All values are deterministic.
 */

#ifndef COMSIM_SIM_STATS_HPP
#define COMSIM_SIM_STATS_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace com::sim {

/** A monotonically increasing (or explicitly set) scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    /** Increment by @p n (default 1). */
    void operator+=(std::uint64_t n) { value_ += n; }
    /** Pre-increment. */
    Counter &operator++() { ++value_; return *this; }
    /** Post-increment (value discarded). */
    void operator++(int) { ++value_; }
    /** Overwrite the value (used for level gauges). */
    void set(std::uint64_t v) { value_ = v; }
    /** Reset to zero. */
    void reset() { value_ = 0; }
    /** @return the current count. */
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A histogram over integer samples with fixed-width bins plus
 * min/max/mean tracking.
 */
class Histogram
{
  public:
    /**
     * @param num_bins number of bins
     * @param bin_width width of each bin; samples >= num_bins*bin_width
     *        land in the overflow bin
     */
    explicit Histogram(std::size_t num_bins = 16,
                       std::uint64_t bin_width = 1);

    /** Record one sample. */
    void sample(std::uint64_t v);
    /** Discard all samples. */
    void reset();

    /** @return total number of samples recorded. */
    std::uint64_t count() const { return count_; }
    /** @return sum of all samples. */
    std::uint64_t sum() const { return sum_; }
    /** @return arithmetic mean, or 0 with no samples. */
    double mean() const;
    /** @return smallest sample (0 if empty). */
    std::uint64_t min() const { return count_ ? min_ : 0; }
    /** @return largest sample (0 if empty). */
    std::uint64_t max() const { return max_; }
    /** @return count in bin @p i (the last bin is the overflow bin). */
    std::uint64_t bin(std::size_t i) const;
    /** @return number of bins including the overflow bin. */
    std::size_t numBins() const { return bins_.size(); }
    /**
     * @return fraction of samples strictly below @p v
     *         (exact, from the running tally, only if bin_width==1).
     */
    double fractionBelow(std::uint64_t v) const;

  private:
    std::vector<std::uint64_t> bins_;
    std::uint64_t binWidth_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * A named collection of statistics with optional nested child groups.
 *
 * Statistic objects are owned by the model; the group stores pointers and
 * formats them on dump(). Registration order is preserved in output.
 */
class StatGroup
{
  public:
    /** @param name dotted-path component for this group. */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a counter under @p stat_name with a description. */
    void addCounter(const std::string &stat_name, const Counter *c,
                    const std::string &desc = "");
    /** Register a histogram under @p stat_name. */
    void addHistogram(const std::string &stat_name, const Histogram *h,
                      const std::string &desc = "");
    /**
     * Register a derived ratio numer/denom, reported at dump time
     * (0 when the denominator is 0).
     */
    void addRatio(const std::string &stat_name, const Counter *numer,
                  const Counter *denom, const std::string &desc = "");
    /** Attach a child group (not owned). */
    void addChild(const StatGroup *child);

    /** @return this group's name. */
    const std::string &name() const { return name_; }

    /** Write "prefix.stat value  # desc" lines for the whole subtree. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Look up a registered counter's current value by name. */
    std::uint64_t counterValue(const std::string &stat_name) const;
    /** Look up a registered ratio's current value by name. */
    double ratioValue(const std::string &stat_name) const;

  private:
    struct CounterEntry
    {
        std::string name;
        const Counter *counter;
        std::string desc;
    };
    struct HistEntry
    {
        std::string name;
        const Histogram *hist;
        std::string desc;
    };
    struct RatioEntry
    {
        std::string name;
        const Counter *numer;
        const Counter *denom;
        std::string desc;
    };

    std::string name_;
    std::vector<CounterEntry> counters_;
    std::vector<HistEntry> hists_;
    std::vector<RatioEntry> ratios_;
    std::vector<const StatGroup *> children_;
};

} // namespace com::sim

#endif // COMSIM_SIM_STATS_HPP
