/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * xoshiro256** seeded via SplitMix64. All stochastic behaviour in comsim
 * flows through Rng so runs are bit-reproducible for a given seed.
 */

#ifndef COMSIM_SIM_RNG_HPP
#define COMSIM_SIM_RNG_HPP

#include <cstdint>

namespace com::sim {

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    /** Seed with SplitMix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitMix64(x);
    }

    /** @return next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return uniform integer in [0, bound), bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** @return uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Sample a geometric-ish object size: returns a size in
     * [1, max_size] where small values dominate, matching the
     * "great numbers of small objects, lesser number of large
     * objects" population of the paper (Section 2.2).
     */
    std::uint64_t
    skewedSize(std::uint64_t max_size)
    {
        // Pick a uniformly random number of bits, then a uniform value
        // with that many bits: log-uniform over [1, max_size].
        int max_bits = 1;
        while ((1ull << max_bits) < max_size && max_bits < 63)
            ++max_bits;
        int bits = static_cast<int>(below(static_cast<std::uint64_t>(
            max_bits))) + 1;
        std::uint64_t v = (below(1ull << bits)) | (1ull << (bits - 1));
        return v > max_size ? max_size : v;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitMix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

} // namespace com::sim

#endif // COMSIM_SIM_RNG_HPP
