#include "sim/strutil.hpp"

#include <cstdarg>
#include <cstdio>

namespace com::sim {

std::vector<std::string>
splitTokens(std::string_view s, std::string_view delims)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && delims.find(s[i]) != std::string_view::npos)
            ++i;
        std::size_t start = i;
        while (i < s.size() && delims.find(s[i]) == std::string_view::npos)
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string_view
trim(std::string_view s)
{
    std::size_t b = 0;
    while (b < s.size() && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                            s[b] == '\n'))
        ++b;
    std::size_t e = s.size();
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' ||
                     s[e - 1] == '\r' || s[e - 1] == '\n'))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

std::string
hex(std::uint64_t v)
{
    return format("0x%llx", static_cast<unsigned long long>(v));
}

std::string
percent(double ratio, int decimals)
{
    return format("%.*f%%", decimals, ratio * 100.0);
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

} // namespace com::sim
