/**
 * @file
 * Small string helpers shared by the assembler, Fith tokenizer and the
 * Smalltalk lexer. No std::format on this toolchain (libstdc++ 12), so a
 * minimal printf-style formatter is provided.
 */

#ifndef COMSIM_SIM_STRUTIL_HPP
#define COMSIM_SIM_STRUTIL_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace com::sim {

/** Split @p s on any character in @p delims, dropping empty tokens. */
std::vector<std::string> splitTokens(std::string_view s,
                                     std::string_view delims = " \t\r\n");

/** Strip leading/trailing whitespace. */
std::string_view trim(std::string_view s);

/** @return true if @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Render @p v as 0x-prefixed lowercase hex. */
std::string hex(std::uint64_t v);

/** Render a ratio as "12.34%" with @p decimals decimal places. */
std::string percent(double ratio, int decimals = 2);

/** Left-pad @p s with spaces to @p width. */
std::string padLeft(const std::string &s, std::size_t width);

/** Right-pad @p s with spaces to @p width. */
std::string padRight(const std::string &s, std::size_t width);

} // namespace com::sim

#endif // COMSIM_SIM_STRUTIL_HPP
