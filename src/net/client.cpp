#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

namespace com::net {

namespace {

serve::Response
rejected(std::string why)
{
    serve::Response resp;
    resp.status = serve::ResponseStatus::Rejected;
    resp.error = std::move(why);
    return resp;
}

} // namespace

Client::~Client() { close(); }

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

bool
Client::connect(const Config &cfg)
{
    close();
    responseTimeout_ = cfg.responseTimeout;
    retryLimit_ = cfg.retryLimit;
    maxRetryBackoff_ = cfg.maxRetryBackoff;

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg.port);
    if (::inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) != 1) {
        lastError_ = "bad address: " + cfg.host;
        return false;
    }

    auto give_up = std::chrono::steady_clock::now() +
                   cfg.connectTimeout;
    for (;;) {
        int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            lastError_ = std::string("socket: ") +
                         std::strerror(errno);
            return false;
        }
        if (::connect(fd,
                      reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            fd_ = fd;
            lastError_.clear();
            return true;
        }
        int err = errno;
        ::close(fd);
        // Retry the races a freshly-forked server loses: not yet
        // bound (refused) or not yet forked far enough (reset).
        bool retryable = err == ECONNREFUSED || err == ECONNRESET ||
                         err == EINTR;
        if (!retryable ||
            std::chrono::steady_clock::now() >= give_up) {
            lastError_ = std::string("connect ") + cfg.host + ":" +
                         std::to_string(cfg.port) + ": " +
                         std::strerror(err);
            return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

bool
Client::sendAll(const std::string &frame)
{
    std::size_t sent = 0;
    while (sent < frame.size()) {
        ssize_t n = ::send(fd_, frame.data() + sent,
                           frame.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        lastError_ = std::string("send: ") + std::strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
Client::receive(std::uint64_t want_id, FrameView *view,
                std::size_t *consumed)
{
    auto give_up =
        responseTimeout_.count() > 0
            ? std::chrono::steady_clock::now() + responseTimeout_
            : std::chrono::steady_clock::time_point::max();
    for (;;) {
        DecodeStatus status = peekFrame(buf_, view, consumed);
        if (status == DecodeStatus::Frame) {
            // A response to someone else's id cannot happen on this
            // one-request-at-a-time client; drop such a frame rather
            // than deadlock on it.
            if (view->requestId == want_id)
                return true;
            buf_.erase(0, *consumed);
            continue;
        }
        if (status != DecodeStatus::NeedMore) {
            lastError_ = "protocol error from server";
            close();
            return false;
        }

        auto now = std::chrono::steady_clock::now();
        if (now >= give_up) {
            lastError_ = "timed out waiting for response";
            close();
            return false;
        }
        auto left = std::chrono::duration_cast<
            std::chrono::milliseconds>(give_up - now);
        int timeout_ms =
            give_up == std::chrono::steady_clock::time_point::max()
                ? -1
                : static_cast<int>(
                      std::min<std::int64_t>(left.count(), 1000));

        pollfd pfd{fd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1, timeout_ms);
        if (ready < 0 && errno != EINTR) {
            lastError_ = std::string("poll: ") +
                         std::strerror(errno);
            close();
            return false;
        }
        if (ready <= 0)
            continue;

        char chunk[64 * 1024];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                      errno == EINTR))
            continue;
        lastError_ = n == 0 ? "server closed the connection"
                            : std::string("recv: ") +
                                  std::strerror(errno);
        close();
        return false;
    }
}

serve::Response
Client::run(api::EngineKind kind, const api::ProgramSpec &spec,
            std::uint32_t deadline_ms, serve::Priority priority)
{
    serve::Response resp = runOnce(kind, spec, deadline_ms, priority);
    for (std::size_t attempt = 0; attempt < retryLimit_; ++attempt) {
        // Only a shed rejection (server says when to come back) is
        // worth re-sending; real failures and successes are final.
        if (resp.status != serve::ResponseStatus::Rejected ||
            resp.retryAfterSeconds <= 0.0 || fd_ < 0)
            break;
        auto backoff = std::min<std::chrono::milliseconds>(
            std::chrono::milliseconds(static_cast<std::int64_t>(
                resp.retryAfterSeconds * 1000.0)),
            maxRetryBackoff_);
        std::this_thread::sleep_for(backoff);
        resp = runOnce(kind, spec, deadline_ms, priority);
    }
    return resp;
}

serve::Response
Client::runOnce(api::EngineKind kind, const api::ProgramSpec &spec,
                std::uint32_t deadline_ms, serve::Priority priority)
{
    if (fd_ < 0)
        return rejected("not connected");

    std::uint64_t id = nextId_++;
    RunRequestFrame req = RunRequestFrame::fromSpec(
        id, kind, spec, deadline_ms, priority);
    if (!sendAll(encodeRunRequest(req)))
        return rejected(lastError_);

    FrameView view;
    std::size_t consumed = 0;
    if (!receive(id, &view, &consumed))
        return rejected(lastError_);

    serve::Response resp;
    if (view.type == FrameType::RunResponse) {
        RunResponseFrame frame;
        if (decodeRunResponse(view, &frame)) {
            resp = frame.toResponse();
        } else {
            lastError_ = "undecodable run response";
            resp = rejected(lastError_);
        }
    } else if (view.type == FrameType::Error) {
        ErrorFrame err;
        resp = rejected(
            decodeError(view, &err)
                ? std::string(errorCodeName(err.code)) + ": " +
                      err.message
                : "undecodable error frame");
    } else {
        resp = rejected("unexpected frame type in response");
    }
    buf_.erase(0, consumed);
    return resp;
}

bool
Client::metrics(serve::Metrics::Snapshot *out)
{
    if (fd_ < 0) {
        lastError_ = "not connected";
        return false;
    }
    std::uint64_t id = nextId_++;
    if (!sendAll(encodeMetricsRequest(id)))
        return false;

    FrameView view;
    std::size_t consumed = 0;
    if (!receive(id, &view, &consumed))
        return false;

    bool ok = false;
    if (view.type == FrameType::MetricsResponse) {
        MetricsResponseFrame frame;
        if (decodeMetricsResponse(view, &frame)) {
            *out = frame.snapshot;
            ok = true;
        } else {
            lastError_ = "undecodable metrics response";
        }
    } else if (view.type == FrameType::Error) {
        ErrorFrame err;
        lastError_ = decodeError(view, &err)
                         ? err.message
                         : "undecodable error frame";
    } else {
        lastError_ = "unexpected frame type in response";
    }
    buf_.erase(0, consumed);
    return ok;
}

bool
Client::trace(std::vector<serve::FlightSpan> *out)
{
    if (fd_ < 0) {
        lastError_ = "not connected";
        return false;
    }
    std::uint64_t id = nextId_++;
    if (!sendAll(encodeTraceRequest(id)))
        return false;

    FrameView view;
    std::size_t consumed = 0;
    if (!receive(id, &view, &consumed))
        return false;

    bool ok = false;
    if (view.type == FrameType::TraceResponse) {
        TraceResponseFrame frame;
        if (decodeTraceResponse(view, &frame)) {
            *out = std::move(frame.spans);
            ok = true;
        } else {
            lastError_ = "undecodable trace response";
        }
    } else if (view.type == FrameType::Error) {
        ErrorFrame err;
        lastError_ = decodeError(view, &err)
                         ? err.message
                         : "undecodable error frame";
    } else {
        lastError_ = "unexpected frame type in response";
    }
    buf_.erase(0, consumed);
    return ok;
}

} // namespace com::net
