/**
 * @file
 * The socket server: one serve::Scheduler behind the wire protocol.
 *
 * A single poll(2) event loop owns every connection. Sockets are
 * nonblocking; each connection accumulates bytes into a read buffer
 * until whole frames appear (net/frame.hpp), and queues encoded
 * responses into a write buffer that drains as the socket allows.
 * RunRequest frames are submitted to the scheduler; the returned
 * futures are polled from the event loop (wait_for(0)) and completed
 * responses are written back in completion order — request ids, not
 * arrival order, match responses to requests, so callers may
 * pipeline.
 *
 * Overload never blocks the loop: when the scheduler's shard queue is
 * full, the decoded request parks connection-side and the loop stops
 * *reading* that connection — TCP back-pressure pushes the overload
 * to the sender instead of building an unbounded backlog or spinning.
 *
 * Observability rides the same port: a connection whose first bytes
 * are "GET " is a Prometheus scraper, not a frame peer — it gets one
 * HTTP/1.0 response carrying serve::renderPrometheus() and a close.
 * TraceRequest frames return the flight recorder's spans, and
 * requestTraceDump() (SIGUSR1 in comsim_served) prints the human
 * rendering to stderr from the event loop.
 *
 * Malformed payloads are answered with an Error frame and skipped
 * (the connection survives — see frame.hpp); bad magic, a version
 * mismatch, or an oversized length close the connection after a
 * best-effort Error frame, since the stream has no resync point.
 *
 * Graceful drain (SIGTERM in comsim_served, via requestDrain(), which
 * is async-signal-safe): stop accepting connections and stop reading
 * new frames, serve everything already accepted — every submitted
 * future resolves and flushes — then close, stop the scheduler and
 * return from run(). The process exits 0 with no request dropped.
 *
 * Two modes:
 *   - listening: bind host:port (port 0 = kernel-assigned, see
 *     port()) and accept clients;
 *   - control-fd (router worker): serve exactly one pre-connected
 *     socket inherited from the parent (net/router.hpp); EOF on it
 *     means the parent is gone, which drains and returns.
 */

#ifndef COMSIM_NET_SERVER_HPP
#define COMSIM_NET_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "serve/scheduler.hpp"

namespace com::net {

class Server
{
  public:
    struct Config
    {
        /** Listening address (ignored with controlFd >= 0). */
        std::string host = "127.0.0.1";
        /** Listening port; 0 picks a free one (read it via port()). */
        std::uint16_t port = 0;
        /** Serve exactly this connected socket instead of listening
         *  (the router-worker mode); -1 = listen normally. */
        int controlFd = -1;
        /** The scheduler this server fronts. */
        serve::Scheduler::Config scheduler;
        /** Accepted-connection cap; further accepts are closed. */
        std::size_t maxConnections = 128;
    };

    /** Binds and listens (or adopts the control fd) and starts the
     *  scheduler; fatal()s when the address cannot be bound. */
    explicit Server(const Config &cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** The bound port (the configured one, or the kernel's pick). */
    std::uint16_t port() const { return port_; }

    /** The scheduler behind the wire (tests and tools). */
    serve::Scheduler &scheduler() { return *scheduler_; }

    /**
     * Serve until drained: runs the event loop, returns once
     * requestDrain() was called AND every accepted request has
     * resolved and flushed (or every connection is gone). The
     * scheduler is stopped (drained) before returning.
     */
    void run();

    /**
     * Begin graceful drain. Async-signal-safe (a flag store plus a
     * self-pipe write), callable from any thread or signal handler.
     */
    void requestDrain();

    /**
     * Ask the event loop to dump the flight recorder to stderr.
     * Async-signal-safe the same way — comsim_served wires SIGUSR1
     * to this, so a wedged-looking server can be asked where its
     * requests' time went without stopping it.
     */
    void requestTraceDump();

    /** @return true once requestDrain() was called. */
    bool
    draining() const
    {
        return drain_.load(std::memory_order_acquire);
    }

    /** Frames answered over the server's lifetime (tests). */
    std::uint64_t framesServed() const { return framesServed_; }

  private:
    /** A request decoded but not yet accepted by the scheduler
     *  (its shard queue was full at the time). */
    struct Parked
    {
        std::uint64_t id = 0;
        api::EngineKind kind = api::EngineKind::Com;
        api::ProgramSpec spec;
        serve::Clock::time_point deadline = serve::kNoDeadline;
        serve::Priority priority = serve::Priority::Interactive;
        /** The requester's protocol version (replies match it). */
        std::uint16_t version = kProtocolVersion;
        /** When the frame arrived — latency runs from here even when
         *  the request parks and is offered again later. */
        serve::Clock::time_point received{};
    };

    /** A submitted request whose future has not resolved yet. */
    struct Pending
    {
        std::uint64_t id = 0;
        /** The requester's protocol version (replies match it). */
        std::uint16_t version = kProtocolVersion;
        std::future<serve::Response> future;
    };

    struct Conn
    {
        int fd = -1;
        std::string in;
        std::string out;
        std::deque<Parked> parked;
        std::deque<Pending> pending;
        /** Flush out, then close (protocol-fatal streams). */
        bool closeAfterFlush = false;
        /** The peer spoke HTTP ("GET ..."), not frames: it is a
         *  scraper, answered once with the Prometheus text. */
        bool http = false;
        /** Marked for removal at the end of the loop turn. */
        bool dead = false;
        /** Stop reading (draining, or parked requests exist). */
        bool
        paused(bool draining) const
        {
            return draining || !parked.empty() || closeAfterFlush;
        }
    };

    void openListener(const Config &cfg);
    void acceptNew();
    /** Drain readable bytes; @return false to drop the connection. */
    bool readInput(Conn &conn);
    /** Consume whole frames from conn.in; @return false to drop. */
    bool consumeFrames(Conn &conn);
    /** Answer a plain-HTTP GET with the Prometheus rendering. */
    void handleHttp(Conn &conn);
    /** Handle one whole frame; @return false to drop the conn. */
    bool handleFrame(Conn &conn, const FrameView &view);
    void submitOrPark(Conn &conn, Parked &&req);
    /** Retry parked submissions (queue may have room now). */
    void pumpParked(Conn &conn);
    /** Complete resolved futures into the write buffer. */
    void pumpFutures(Conn &conn);
    /** Write as much of conn.out as the socket takes;
     *  @return false on a dead socket. */
    bool flushOutput(Conn &conn);
    void sendError(Conn &conn, std::uint64_t id, ErrorCode code,
                   std::string message,
                   std::uint16_t version = kProtocolVersion);
    bool workRemains() const;

    std::unique_ptr<serve::Scheduler> scheduler_;
    int listenFd_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;
    std::uint16_t port_ = 0;
    std::size_t maxConnections_;
    bool controlMode_ = false;
    std::atomic<bool> drain_{false};
    std::atomic<bool> traceDump_{false};
    std::uint64_t framesServed_ = 0;
    std::vector<std::unique_ptr<Conn>> conns_;
};

} // namespace com::net

#endif // COMSIM_NET_SERVER_HPP
