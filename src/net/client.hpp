/**
 * @file
 * The blocking remote client: one TCP connection speaking the wire
 * protocol (net/frame.hpp) to a comsim_served or comsim_routerd.
 *
 * Deliberately simple — a synchronous request/response library for
 * bench_serve's --remote mode and for tests. One Client is one
 * connection and is NOT thread-safe; concurrent load comes from one
 * Client per thread (mirroring bench_serve's local closed-loop
 * workers). connect() retries with a backoff so clients may start
 * before the server finishes binding (process races in tests and CI).
 *
 * run() sends a RunRequest and blocks until the matching RunResponse
 * or Error frame arrives, the receive deadline passes, or the
 * connection dies. Server-side Error frames and transport failures
 * both surface as a Rejected/Failed serve::Response with the reason
 * in .error — callers get one uniform result type, remote or local.
 */

#ifndef COMSIM_NET_CLIENT_HPP
#define COMSIM_NET_CLIENT_HPP

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "serve/request.hpp"

namespace com::net {

class Client
{
  public:
    struct Config
    {
        std::string host = "127.0.0.1";
        std::uint16_t port = 0;
        /** Keep retrying connect() this long before giving up. */
        std::chrono::milliseconds connectTimeout{2000};
        /** Longest run() waits on a response; 0 = wait forever. */
        std::chrono::milliseconds responseTimeout{30000};
        /**
         * Times run() re-sends a request the server shed under
         * overload (a Rejected response carrying retryAfterSeconds),
         * sleeping the hinted back-off between attempts. 0 = hand
         * the shed response straight back to the caller.
         */
        std::size_t retryLimit = 0;
        /** Cap on one honored retry-after sleep (a hostile or
         *  confused server must not park a client for minutes). */
        std::chrono::milliseconds maxRetryBackoff{1000};
    };

    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Connect to @p cfg's host:port, retrying ECONNREFUSED with a
     * small backoff until connectTimeout elapses. @return false when
     * the server never became reachable (error() says why).
     */
    bool connect(const Config &cfg);

    /** Close the connection (idempotent). */
    void close();

    bool connected() const { return fd_ >= 0; }

    /** The last transport-level failure reason. */
    const std::string &error() const { return lastError_; }

    /**
     * Run one program remotely and block for the result.
     * @p deadline_ms rides in the frame (the server's queue deadline);
     * 0 means none. @p priority is the request's service class (v3).
     * Transport failures and server Error frames come back as
     * Rejected responses with .error set — never an exception. When
     * Config::retryLimit > 0, a shed response (Rejected with a
     * retry-after hint) is retried that many times, sleeping the
     * hinted back-off first; the last response wins.
     */
    serve::Response
    run(api::EngineKind kind, const api::ProgramSpec &spec,
        std::uint32_t deadline_ms = 0,
        serve::Priority priority = serve::Priority::Interactive);

    /**
     * Fetch the server's merged metrics snapshot. @return false on
     * transport failure or a refusal (error() says why).
     */
    bool metrics(serve::Metrics::Snapshot *out);

    /**
     * Fetch the server's flight-recorder spans (the router returns
     * every worker's, concatenated). @return false on transport
     * failure or a refusal (error() says why).
     */
    bool trace(std::vector<serve::FlightSpan> *out);

  private:
    /** One send + receive of a RunRequest (no retry logic). */
    serve::Response runOnce(api::EngineKind kind,
                            const api::ProgramSpec &spec,
                            std::uint32_t deadline_ms,
                            serve::Priority priority);
    /** Send all of @p frame; @return false on a dead socket. */
    bool sendAll(const std::string &frame);
    /**
     * Block until one whole frame with @p want_id is buffered and
     * peek it into @p view (borrowing into buf_). @return false on
     * timeout, EOF, or a protocol-fatal stream.
     */
    bool receive(std::uint64_t want_id, FrameView *view,
                 std::size_t *consumed);

    int fd_ = -1;
    std::uint64_t nextId_ = 1;
    std::string buf_;
    std::string lastError_;
    std::chrono::milliseconds responseTimeout_{30000};
    std::size_t retryLimit_ = 0;
    std::chrono::milliseconds maxRetryBackoff_{1000};
};

} // namespace com::net

#endif // COMSIM_NET_CLIENT_HPP
