/**
 * @file
 * The multi-process shard router: comsim_routerd's engine.
 *
 * The in-process scheduler shards requests across queues by a stable
 * hash of the program source (serve::sourceShard). The router lifts
 * that exact function one level up: it forks N worker *processes*
 * (comsim_served in control-fd mode, each owning its own scheduler,
 * engine pools and program caches), listens on one TCP port, and
 * forwards each RunRequest to the worker sourceShard(source, N) names
 * — so one program's requests always land on one worker's hot caches,
 * whether sharding happens in-process or across processes.
 *
 * Forwarding is frame-copy cheap: the request id lives at a fixed
 * offset in every frame (net/frame.hpp), so the router rewrites just
 * those eight bytes (patchRequestId) to a router-global id on the way
 * in and back to the client's id on the way out — no re-encode.
 *
 * Fault containment: a worker that dies (crash, SIGKILL) is detected
 * by EOF on its socketpair, reaped, and restarted; its in-flight
 * requests are re-sent to the replacement (programs are pure, so the
 * retry is idempotent), bounded by maxAttempts before the client gets
 * an Error(WorkerLost). Other workers and every client connection
 * ride through undisturbed.
 *
 * MetricsRequest frames fan out to every worker; the per-worker
 * serve::Metrics::Snapshots merge (Snapshot::merge) into one
 * fleet-wide answer. TraceRequest fans out the same way and the
 * workers' flight-recorder spans concatenate (each span names its
 * shard). A plain-HTTP "GET " on the frame port is a Prometheus
 * scraper: it triggers the same metrics fan-out and the merged
 * snapshot renders as text once every share arrives. SIGUSR1
 * (requestTraceDump) forwards to every live worker, so each dumps
 * its recorder to the shared stderr.
 *
 * Graceful drain (SIGTERM in comsim_routerd via requestDrain):
 * stop accepting and stop reading clients, relay every in-flight
 * response, then SIGTERM the (now idle) workers and wait for them to
 * exit cleanly. run() returns 0 only when every worker did.
 */

#ifndef COMSIM_NET_ROUTER_HPP
#define COMSIM_NET_ROUTER_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <sys/types.h>
#include <vector>

#include "net/frame.hpp"
#include "serve/metrics.hpp"

namespace com::net {

class Router
{
  public:
    struct Config
    {
        std::string host = "127.0.0.1";
        /** Listening port; 0 picks a free one (read it via port()). */
        std::uint16_t port = 0;
        /** Worker processes to fork (the shard count); >= 1. */
        std::size_t workers = 2;
        /** comsim_served binary; "" = sibling of /proc/self/exe. */
        std::string workerPath;
        /** Extra argv passed to every worker (scheduler sizing). */
        std::vector<std::string> workerArgs;
        /** Times one request may be re-sent after worker deaths
         *  before the client gets Error(WorkerLost). */
        std::size_t maxAttempts = 3;
        std::size_t maxConnections = 128;
    };

    /** Binds the listener and forks the workers; fatal()s when the
     *  port cannot be bound or a worker cannot be spawned. */
    explicit Router(const Config &cfg);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    std::uint16_t port() const { return port_; }

    /**
     * Route until drained. @return the exit code for the process:
     * 0 when every worker exited cleanly after the drain.
     */
    int run();

    /** Begin graceful drain; async-signal-safe. */
    void requestDrain();

    /** Forward a flight-recorder dump request (SIGUSR1) to every
     *  live worker; async-signal-safe the same way. */
    void requestTraceDump();

    /** Worker @p i's current pid (tests kill one mid-run). */
    pid_t workerPid(std::size_t i) const;

    /** Times any worker was restarted after dying. */
    std::uint64_t restarts() const;

    std::size_t workerCount() const { return workers_.size(); }

  private:
    struct Worker
    {
        std::size_t shard = 0;
        pid_t pid = -1;
        int fd = -1; ///< router end of the socketpair
        std::string in;
        std::string out;
        bool alive = false;
    };

    struct Conn
    {
        std::uint64_t id = 0;
        int fd = -1;
        std::string in;
        std::string out;
        bool closeAfterFlush = false;
        bool dead = false;
        /** The peer spoke HTTP ("GET ..."): a Prometheus scraper.
         *  Answered once the metrics fan-out it triggered merges. */
        bool http = false;
    };

    /** One forwarded RunRequest awaiting its worker's response.
     *  The worker's reply rides back as a raw frame copy, so it
     *  already carries the client's header version; only the
     *  router-originated Error(WorkerLost) needs it remembered. */
    struct Inflight
    {
        std::uint64_t connId = 0;  ///< which client gets the answer
        std::uint64_t clientId = 0; ///< the id that client used
        std::size_t shard = 0;
        /** The client's protocol version (for WorkerLost errors). */
        std::uint16_t version = kProtocolVersion;
        std::string frame; ///< patched bytes, kept for re-send
        std::size_t attempts = 1;
    };

    /** One client MetricsRequest fanned out across the fleet. */
    struct MetricsAgg
    {
        std::uint64_t connId = 0;
        std::uint64_t clientId = 0;
        /** The client's version: workers answer the fan-out at v3
         *  (full snapshots merge), the reply re-encodes down. */
        std::uint16_t version = kProtocolVersion;
        std::size_t remaining = 0;
        serve::Metrics::Snapshot merged;
        /** Render as an HTTP Prometheus page, not a frame. */
        bool http = false;
    };

    /** One client TraceRequest fanned out across the fleet. */
    struct TraceAgg
    {
        std::uint64_t connId = 0;
        std::uint64_t clientId = 0;
        /** The client's version (the reply is re-encoded at it). */
        std::uint16_t version = kProtocolVersion;
        std::size_t remaining = 0;
        std::vector<serve::FlightSpan> spans;
    };

    void openListener(const Config &cfg);
    void spawnWorker(std::size_t shard);
    void handleWorkerDeath(std::size_t shard);
    void acceptNew();
    bool readInto(int fd, std::string &buf, bool *closed);
    void consumeClientFrames(Conn &conn);
    void consumeWorkerFrames(Worker &worker);
    void forwardRun(Conn &conn, const FrameView &view,
                    const unsigned char *raw, std::size_t raw_len);
    void broadcastMetrics(Conn &conn, std::uint64_t client_id,
                          bool http,
                          std::uint16_t version = kProtocolVersion);
    void broadcastTrace(Conn &conn, std::uint64_t client_id,
                        std::uint16_t version);
    /** Answer the client once an aggregation's last share landed. */
    void completeMetricsAgg(const MetricsAgg &agg);
    void completeTraceAgg(TraceAgg &agg);
    /** Consume an HTTP request head; kicks off a metrics fan-out. */
    void handleHttp(Conn &conn);
    void replyError(Conn &conn, std::uint64_t id, ErrorCode code,
                    std::string message,
                    std::uint16_t version = kProtocolVersion);
    Conn *findConn(std::uint64_t conn_id);
    bool flush(int fd, std::string &out);
    /** SIGTERM every worker and reap; @return true when all were
     *  alive-and-exited-0 (or already gone by our own hand). */
    bool shutdownWorkers();

    Config cfg_;
    int listenFd_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> drain_{false};
    std::atomic<bool> traceDump_{false};
    std::uint64_t nextRouterId_ = 1;
    std::uint64_t nextConnId_ = 1;
    std::uint64_t restarts_ = 0;
    mutable std::mutex workerMu_; ///< guards pids for workerPid()
    std::vector<Worker> workers_;
    std::vector<std::unique_ptr<Conn>> conns_;
    std::map<std::uint64_t, Inflight> inflight_;
    std::map<std::uint64_t, MetricsAgg> metricsAggs_;
    std::map<std::uint64_t, TraceAgg> traceAggs_;
    /** One worker's share of a metrics or trace fan-out. */
    struct MetricsSub
    {
        std::uint64_t aggId = 0;
        std::size_t shard = 0;
    };
    /** routerId -> aggregation it feeds (metrics subrequests). */
    std::map<std::uint64_t, MetricsSub> metricsSub_;
    /** routerId -> aggregation it feeds (trace subrequests). */
    std::map<std::uint64_t, MetricsSub> traceSub_;
};

} // namespace com::net

#endif // COMSIM_NET_ROUTER_HPP
