#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "serve/prometheus.hpp"
#include "sim/logging.hpp"

namespace com::net {

namespace {

/** Read buffer granularity. */
constexpr std::size_t kReadChunk = 64 * 1024;
/** Most bytes one connection may consume per loop turn (fairness). */
constexpr std::size_t kReadBudget = 512 * 1024;
/** Longest HTTP request head a scraper may send before we give up. */
constexpr std::size_t kMaxHttpHead = 8 * 1024;

/** @return true when @p in is (a prefix of) an HTTP GET line —
 *  i.e. cannot be this protocol, whose frames start "COMF". */
bool
looksLikeHttpGet(const std::string &in)
{
    static const char kGet[] = "GET ";
    std::size_t n = std::min(in.size(), sizeof(kGet) - 1);
    return n > 0 && in.compare(0, n, kGet, n) == 0;
}

void
setNonblocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

Server::Server(const Config &cfg)
    : maxConnections_(std::max<std::size_t>(cfg.maxConnections, 1)),
      controlMode_(cfg.controlFd >= 0)
{
    scheduler_ = std::make_unique<serve::Scheduler>(cfg.scheduler);

    int pipefds[2];
    sim::fatalIf(::pipe2(pipefds, O_NONBLOCK | O_CLOEXEC) != 0,
                 "server: pipe2 failed: ", std::strerror(errno));
    wakeRead_ = pipefds[0];
    wakeWrite_ = pipefds[1];

    if (controlMode_) {
        setNonblocking(cfg.controlFd);
        auto conn = std::make_unique<Conn>();
        conn->fd = cfg.controlFd;
        conns_.push_back(std::move(conn));
    } else {
        openListener(cfg);
    }
}

Server::~Server()
{
    for (auto &conn : conns_)
        if (conn->fd >= 0)
            ::close(conn->fd);
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (wakeRead_ >= 0)
        ::close(wakeRead_);
    if (wakeWrite_ >= 0)
        ::close(wakeWrite_);
}

void
Server::openListener(const Config &cfg)
{
    listenFd_ = ::socket(AF_INET,
                         SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    sim::fatalIf(listenFd_ < 0,
                 "server: socket failed: ", std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg.port);
    sim::fatalIf(
        ::inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) != 1,
        "server: bad listen address: ", cfg.host);
    // Evaluate errno only after the call: inside a fatalIf argument
    // list its read could be sequenced before the bind itself.
    if (::bind(listenFd_, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        sim::fatal("server: cannot bind ", cfg.host, ":", cfg.port,
                   ": ", std::strerror(errno));
    if (::listen(listenFd_, 128) != 0)
        sim::fatal("server: listen failed: ", std::strerror(errno));

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                  &len);
    port_ = ntohs(bound.sin_port);
}

void
Server::requestDrain()
{
    drain_.store(true, std::memory_order_release);
    // Wake the poll loop; async-signal-safe (write on a pipe).
    char byte = 'd';
    [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &byte, 1);
}

void
Server::requestTraceDump()
{
    traceDump_.store(true, std::memory_order_release);
    char byte = 't';
    [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &byte, 1);
}

void
Server::acceptNew()
{
    for (;;) {
        int fd = ::accept4(listenFd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0)
            return; // EAGAIN / transient
        if (conns_.size() >= maxConnections_) {
            ::close(fd);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conns_.push_back(std::move(conn));
    }
}

bool
Server::readInput(Conn &conn)
{
    std::size_t taken = 0;
    while (taken < kReadBudget) {
        char buf[kReadChunk];
        ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            conn.in.append(buf, static_cast<std::size_t>(n));
            taken += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0)
            return false; // peer closed
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        if (errno == EINTR)
            continue;
        return false;
    }
    return true;
}

void
Server::sendError(Conn &conn, std::uint64_t id, ErrorCode code,
                  std::string message, std::uint16_t version)
{
    ErrorFrame err;
    err.requestId = id;
    err.code = code;
    err.message = std::move(message);
    conn.out.append(encodeError(err, version));
    ++framesServed_;
}

void
Server::submitOrPark(Conn &conn, Parked &&req)
{
    std::future<serve::Response> future;
    serve::Scheduler::Admission verdict = scheduler_->offer(
        req.kind, req.spec, req.deadline, req.received, &future,
        req.priority);
    if (verdict == serve::Scheduler::Admission::QueueFull) {
        conn.parked.push_back(std::move(req));
        return;
    }
    conn.pending.push_back(
        Pending{req.id, req.version, std::move(future)});
}

void
Server::pumpParked(Conn &conn)
{
    while (!conn.parked.empty()) {
        Parked &head = conn.parked.front();
        std::future<serve::Response> future;
        serve::Scheduler::Admission verdict = scheduler_->offer(
            head.kind, head.spec, head.deadline, head.received,
            &future, head.priority);
        if (verdict == serve::Scheduler::Admission::QueueFull)
            return; // still no room; keep holding
        conn.pending.push_back(
            Pending{head.id, head.version, std::move(future)});
        conn.parked.pop_front();
    }
}

bool
Server::handleFrame(Conn &conn, const FrameView &view)
{
    switch (view.type) {
      case FrameType::RunRequest: {
        RunRequestFrame req;
        if (!decodeRunRequest(view, &req)) {
            sendError(conn, view.requestId, ErrorCode::BadFrame,
                      "malformed run request payload", view.version);
            return true; // frame skipped; connection survives
        }
        Parked parked;
        parked.id = req.requestId;
        parked.kind = req.kind;
        parked.spec = req.toSpec();
        parked.priority = req.priority;
        parked.version = view.version;
        parked.received = serve::Clock::now();
        parked.deadline =
            req.deadlineMs > 0
                ? parked.received +
                      std::chrono::milliseconds(req.deadlineMs)
                : serve::kNoDeadline;
        submitOrPark(conn, std::move(parked));
        return true;
      }
      case FrameType::MetricsRequest: {
        MetricsResponseFrame resp;
        resp.requestId = view.requestId;
        resp.snapshot = scheduler_->metricsSnapshot();
        conn.out.append(encodeMetricsResponse(resp, view.version));
        ++framesServed_;
        return true;
      }
      case FrameType::TraceRequest: {
        TraceResponseFrame resp;
        resp.requestId = view.requestId;
        resp.spans = scheduler_->traceSpans();
        if (resp.spans.size() > kMaxTraceSpans)
            resp.spans.resize(kMaxTraceSpans);
        conn.out.append(encodeTraceResponse(resp, view.version));
        ++framesServed_;
        return true;
      }
      case FrameType::RunResponse:
      case FrameType::MetricsResponse:
      case FrameType::TraceResponse:
      case FrameType::Error:
      default:
        // A server only *receives* requests; anything else is a
        // confused peer. Skippable, so the connection survives.
        sendError(conn, view.requestId, ErrorCode::UnknownType,
                  "server does not accept this frame type",
                  view.version);
        return true;
    }
}

bool
Server::consumeFrames(Conn &conn)
{
    std::size_t at = 0;
    bool keep = true;
    while (keep) {
        FrameView view;
        std::size_t consumed = 0;
        DecodeStatus status = peekFrame(
            reinterpret_cast<const unsigned char *>(conn.in.data()) +
                at,
            conn.in.size() - at, &view, &consumed);
        if (status == DecodeStatus::NeedMore)
            break;
        if (status == DecodeStatus::BadVersion) {
            sendError(conn, 0, ErrorCode::VersionMismatch,
                      "protocol version mismatch");
            conn.closeAfterFlush = true;
            break;
        }
        if (status != DecodeStatus::Frame) {
            // BadMagic / TooLarge: not resynchronizable.
            sendError(conn, 0, ErrorCode::BadFrame,
                      status == DecodeStatus::TooLarge
                          ? "frame exceeds size bound"
                          : "bad frame magic");
            conn.closeAfterFlush = true;
            break;
        }
        keep = handleFrame(conn, view);
        at += consumed;
    }
    if (at > 0)
        conn.in.erase(0, at);
    return keep;
}

void
Server::handleHttp(Conn &conn)
{
    conn.http = true;
    // Wait for the whole request head; any GET path gets the same
    // answer, so the path itself is never parsed.
    if (conn.in.find("\r\n\r\n") == std::string::npos &&
        conn.in.find("\n\n") == std::string::npos) {
        if (conn.in.size() > kMaxHttpHead) {
            conn.in.clear();
            conn.closeAfterFlush = true;
        }
        return;
    }
    conn.in.clear();
    std::string body =
        serve::renderPrometheus(scheduler_->metricsSnapshot());
    char head[160];
    std::snprintf(head, sizeof(head),
                  "HTTP/1.0 200 OK\r\n"
                  "Content-Type: text/plain; version=0.0.4; "
                  "charset=utf-8\r\n"
                  "Content-Length: %zu\r\n"
                  "Connection: close\r\n"
                  "\r\n",
                  body.size());
    conn.out.append(head);
    conn.out.append(body);
    conn.closeAfterFlush = true;
    ++framesServed_;
}

void
Server::pumpFutures(Conn &conn)
{
    for (std::size_t i = 0; i < conn.pending.size();) {
        Pending &p = conn.pending[i];
        if (p.future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
            ++i;
            continue;
        }
        serve::Response resp = p.future.get();
        conn.out.append(
            encodeRunResponse(RunResponseFrame::fromResponse(
                                  p.id, resp),
                              p.version));
        ++framesServed_;
        conn.pending.erase(conn.pending.begin() +
                           static_cast<std::ptrdiff_t>(i));
    }
}

bool
Server::flushOutput(Conn &conn)
{
    while (!conn.out.empty()) {
        ssize_t n = ::send(conn.fd, conn.out.data(), conn.out.size(),
                           MSG_NOSIGNAL);
        if (n > 0) {
            conn.out.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

bool
Server::workRemains() const
{
    for (const auto &conn : conns_)
        if (!conn->pending.empty() || !conn->parked.empty() ||
            !conn->out.empty())
            return true;
    return false;
}

void
Server::run()
{
    std::vector<pollfd> fds;
    std::vector<Conn *> fdConn;
    for (;;) {
        bool draining = drain_.load(std::memory_order_acquire);
        if (draining && listenFd_ >= 0) {
            ::close(listenFd_); // stop accepting; drain what we hold
            listenFd_ = -1;
        }

        fds.clear();
        fdConn.clear();
        fds.push_back({wakeRead_, POLLIN, 0});
        fdConn.push_back(nullptr);
        if (listenFd_ >= 0) {
            fds.push_back({listenFd_, POLLIN, 0});
            fdConn.push_back(nullptr);
        }
        for (auto &conn : conns_) {
            short events = 0;
            if (!conn->paused(draining))
                events |= POLLIN;
            if (!conn->out.empty())
                events |= POLLOUT;
            fds.push_back({conn->fd, events, 0});
            fdConn.push_back(conn.get());
        }

        // Futures resolve in scheduler workers with no fd to poll;
        // take short naps while any are outstanding.
        bool busy = false;
        for (auto &conn : conns_)
            if (!conn->pending.empty() || !conn->parked.empty())
                busy = true;
        int timeout_ms = busy ? 1 : (draining ? 10 : -1);

        int ready = ::poll(fds.data(),
                           static_cast<nfds_t>(fds.size()),
                           timeout_ms);
        if (ready < 0 && errno != EINTR)
            sim::fatal("server: poll failed: ", std::strerror(errno));

        // Drain the wake pipe (its only job is interrupting poll).
        if (fds[0].revents & POLLIN) {
            char buf[64];
            while (::read(wakeRead_, buf, sizeof(buf)) > 0) {
            }
        }
        if (traceDump_.exchange(false, std::memory_order_acq_rel)) {
            std::string text = scheduler_->traceDumpText();
            std::fwrite(text.data(), 1, text.size(), stderr);
            std::fflush(stderr);
        }
        if (listenFd_ >= 0 && fds.size() > 1 &&
            (fds[1].revents & POLLIN))
            acceptNew();

        for (std::size_t i = 0; i < fds.size(); ++i) {
            Conn *conn = fdConn[i];
            if (!conn)
                continue;
            bool drop = false;
            if (fds[i].revents & (POLLERR | POLLNVAL))
                drop = true;
            if (!drop && (fds[i].revents & POLLIN))
                drop = !readInput(*conn);
            // A HUP with no readable data left means the peer is
            // fully gone (readInput above consumed any remainder).
            if (!drop && (fds[i].revents & POLLHUP) &&
                conn->in.empty() && conn->pending.empty() &&
                conn->parked.empty())
                drop = true;
            conn->dead = drop;
        }

        for (auto &conn : conns_) {
            if (conn->dead)
                continue;
            if (!conn->in.empty() && !conn->closeAfterFlush) {
                if (conn->http || looksLikeHttpGet(conn->in))
                    handleHttp(*conn);
                else
                    conn->dead = !consumeFrames(*conn);
            }
            if (conn->dead)
                continue;
            pumpParked(*conn);
            pumpFutures(*conn);
            if (!flushOutput(*conn)) {
                conn->dead = true;
                continue;
            }
            if (conn->closeAfterFlush && conn->out.empty() &&
                conn->pending.empty())
                conn->dead = true;
        }

        for (std::size_t i = 0; i < conns_.size();) {
            if (conns_[i]->dead) {
                ::close(conns_[i]->fd);
                conns_.erase(conns_.begin() +
                             static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }

        if (controlMode_ && conns_.empty())
            break; // the parent router is gone; nothing to serve
        if (draining && !workRemains())
            break; // every accepted request resolved and flushed
    }

    for (auto &conn : conns_) {
        ::close(conn->fd);
        conn->fd = -1;
    }
    conns_.clear();
    // Drain the scheduler too: queued work resolves before exit.
    scheduler_->stop();
}

} // namespace com::net
