#include "net/router.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <utility>

#include "serve/prometheus.hpp"
#include "serve/scheduler.hpp" // sourceShard
#include "sim/logging.hpp"

namespace com::net {

namespace {

/** Longest HTTP request head a scraper may send before we give up. */
constexpr std::size_t kMaxHttpHead = 8 * 1024;

/** @return true when @p in is (a prefix of) an HTTP GET line —
 *  i.e. cannot be this protocol, whose frames start "COMF". */
bool
looksLikeHttpGet(const std::string &in)
{
    static const char kGet[] = "GET ";
    std::size_t n = std::min(in.size(), sizeof(kGet) - 1);
    return n > 0 && in.compare(0, n, kGet, n) == 0;
}

void
setNonblocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** The directory of the running binary, for finding comsim_served. */
std::string
siblingPath(const char *name)
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return name;
    buf[n] = '\0';
    std::string path(buf);
    std::size_t slash = path.rfind('/');
    if (slash == std::string::npos)
        return name;
    return path.substr(0, slash + 1) + name;
}

} // namespace

Router::Router(const Config &cfg) : cfg_(cfg)
{
    sim::fatalIf(cfg_.workers == 0, "router: needs >= 1 worker");
    if (cfg_.workerPath.empty())
        cfg_.workerPath = siblingPath("comsim_served");
    sim::fatalIf(::access(cfg_.workerPath.c_str(), X_OK) != 0,
                 "router: worker binary not executable: ",
                 cfg_.workerPath);

    int pipefds[2];
    sim::fatalIf(::pipe2(pipefds, O_NONBLOCK | O_CLOEXEC) != 0,
                 "router: pipe2 failed: ", std::strerror(errno));
    wakeRead_ = pipefds[0];
    wakeWrite_ = pipefds[1];

    openListener(cfg_);
    workers_.resize(cfg_.workers);
    for (std::size_t i = 0; i < cfg_.workers; ++i) {
        workers_[i].shard = i;
        spawnWorker(i);
    }
}

Router::~Router()
{
    for (auto &conn : conns_)
        if (conn->fd >= 0)
            ::close(conn->fd);
    for (auto &w : workers_) {
        if (w.fd >= 0)
            ::close(w.fd);
        if (w.alive && w.pid > 0) {
            ::kill(w.pid, SIGKILL);
            ::waitpid(w.pid, nullptr, 0);
        }
    }
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (wakeRead_ >= 0)
        ::close(wakeRead_);
    if (wakeWrite_ >= 0)
        ::close(wakeWrite_);
}

void
Router::openListener(const Config &cfg)
{
    listenFd_ = ::socket(AF_INET,
                         SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    sim::fatalIf(listenFd_ < 0,
                 "router: socket failed: ", std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg.port);
    sim::fatalIf(
        ::inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) != 1,
        "router: bad listen address: ", cfg.host);
    // Evaluate errno only after the call: inside a fatalIf argument
    // list its read could be sequenced before the bind itself.
    if (::bind(listenFd_, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        sim::fatal("router: cannot bind ", cfg.host, ":", cfg.port,
                   ": ", std::strerror(errno));
    if (::listen(listenFd_, 128) != 0)
        sim::fatal("router: listen failed: ", std::strerror(errno));

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                  &len);
    port_ = ntohs(bound.sin_port);
}

void
Router::spawnWorker(std::size_t shard)
{
    // CLOEXEC on both ends: a worker forked later must not inherit
    // this pair, or its copy would hold the stream open past the
    // owner's death and break EOF-based death detection / shutdown.
    int sv[2];
    sim::fatalIf(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0,
                              sv) != 0,
                 "router: socketpair failed: ",
                 std::strerror(errno));

    pid_t pid = ::fork();
    sim::fatalIf(pid < 0,
                 "router: fork failed: ", std::strerror(errno));
    if (pid == 0) {
        // Child: worker's end becomes fd 3, everything else of the
        // router's is close-on-exec or closed here.
        ::close(sv[0]);
        if (sv[1] != 3) {
            ::dup2(sv[1], 3); // dup2 clears CLOEXEC on the copy
            ::close(sv[1]);
        } else {
            int fl = ::fcntl(3, F_GETFD, 0);
            ::fcntl(3, F_SETFD, fl & ~FD_CLOEXEC);
        }
        std::vector<std::string> args;
        args.push_back(cfg_.workerPath);
        args.push_back("--control-fd");
        args.push_back("3");
        for (const auto &extra : cfg_.workerArgs)
            args.push_back(extra);
        std::vector<char *> argv;
        for (auto &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(cfg_.workerPath.c_str(), argv.data());
        ::_exit(127); // exec failed; parent sees instant EOF
    }

    ::close(sv[1]);
    setNonblocking(sv[0]);

    Worker &w = workers_[shard];
    w.fd = sv[0];
    w.in.clear();
    w.out.clear();
    w.alive = true;
    {
        std::lock_guard<std::mutex> lock(workerMu_);
        w.pid = pid;
    }
}

void
Router::handleWorkerDeath(std::size_t shard)
{
    Worker &w = workers_[shard];
    if (!w.alive)
        return;
    w.alive = false;
    if (w.fd >= 0) {
        ::close(w.fd);
        w.fd = -1;
    }
    if (w.pid > 0)
        ::waitpid(w.pid, nullptr, 0); // EOF means it already exited
    ++restarts_;

    // Fan-out shares with the dead worker arrive as empty.
    for (auto it = metricsSub_.begin(); it != metricsSub_.end();) {
        if (it->second.shard != shard) {
            ++it;
            continue;
        }
        auto agg = metricsAggs_.find(it->second.aggId);
        it = metricsSub_.erase(it);
        if (agg == metricsAggs_.end())
            continue;
        if (--agg->second.remaining == 0) {
            completeMetricsAgg(agg->second);
            metricsAggs_.erase(agg);
        }
    }
    for (auto it = traceSub_.begin(); it != traceSub_.end();) {
        if (it->second.shard != shard) {
            ++it;
            continue;
        }
        auto agg = traceAggs_.find(it->second.aggId);
        it = traceSub_.erase(it);
        if (agg == traceAggs_.end())
            continue;
        if (--agg->second.remaining == 0) {
            completeTraceAgg(agg->second);
            traceAggs_.erase(agg);
        }
    }

    spawnWorker(shard);

    // Re-send the dead worker's in-flight requests to the fresh one.
    // Programs are pure, so a rerun is idempotent; the attempt bound
    // keeps a poison request from crash-looping the shard forever.
    Worker &fresh = workers_[shard];
    for (auto it = inflight_.begin(); it != inflight_.end();) {
        Inflight &f = it->second;
        if (f.shard != shard) {
            ++it;
            continue;
        }
        if (++f.attempts > cfg_.maxAttempts) {
            if (Conn *conn = findConn(f.connId))
                replyError(*conn, f.clientId, ErrorCode::WorkerLost,
                           "worker died too many times serving this",
                           f.version);
            it = inflight_.erase(it);
            continue;
        }
        fresh.out.append(f.frame);
        ++it;
    }
}

void
Router::acceptNew()
{
    for (;;) {
        int fd = ::accept4(listenFd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0)
            return;
        if (conns_.size() >= cfg_.maxConnections) {
            ::close(fd);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        auto conn = std::make_unique<Conn>();
        conn->id = nextConnId_++;
        conn->fd = fd;
        conns_.push_back(std::move(conn));
    }
}

bool
Router::readInto(int fd, std::string &buf, bool *closed)
{
    *closed = false;
    for (;;) {
        char chunk[64 * 1024];
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buf.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            *closed = true;
            return true;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        if (errno == EINTR)
            continue;
        *closed = true;
        return true;
    }
}

Router::Conn *
Router::findConn(std::uint64_t conn_id)
{
    for (auto &conn : conns_)
        if (conn->id == conn_id && !conn->dead)
            return conn.get();
    return nullptr;
}

void
Router::replyError(Conn &conn, std::uint64_t id, ErrorCode code,
                   std::string message, std::uint16_t version)
{
    ErrorFrame err;
    err.requestId = id;
    err.code = code;
    err.message = std::move(message);
    conn.out.append(encodeError(err, version));
}

void
Router::forwardRun(Conn &conn, const FrameView &view,
                   const unsigned char *raw, std::size_t raw_len)
{
    RunRequestFrame req;
    if (!decodeRunRequest(view, &req)) {
        replyError(conn, view.requestId, ErrorCode::BadFrame,
                   "malformed run request payload", view.version);
        return;
    }
    std::size_t shard =
        serve::sourceShard(req.source, workers_.size());

    std::uint64_t router_id = nextRouterId_++;
    Inflight flight;
    flight.connId = conn.id;
    flight.clientId = view.requestId;
    flight.shard = shard;
    flight.version = view.version;
    flight.frame.assign(reinterpret_cast<const char *>(raw),
                        raw_len);
    patchRequestId(flight.frame, router_id);

    workers_[shard].out.append(flight.frame);
    inflight_.emplace(router_id, std::move(flight));
}

void
Router::completeMetricsAgg(const MetricsAgg &agg)
{
    Conn *conn = findConn(agg.connId);
    if (!conn)
        return;
    if (agg.http) {
        std::string body = serve::renderPrometheus(agg.merged);
        char head[160];
        std::snprintf(head, sizeof(head),
                      "HTTP/1.0 200 OK\r\n"
                      "Content-Type: text/plain; version=0.0.4; "
                      "charset=utf-8\r\n"
                      "Content-Length: %zu\r\n"
                      "Connection: close\r\n"
                      "\r\n",
                      body.size());
        conn->out.append(head);
        conn->out.append(body);
        conn->closeAfterFlush = true;
        return;
    }
    MetricsResponseFrame resp;
    resp.requestId = agg.clientId;
    resp.snapshot = agg.merged;
    conn->out.append(encodeMetricsResponse(resp, agg.version));
}

void
Router::completeTraceAgg(TraceAgg &agg)
{
    Conn *conn = findConn(agg.connId);
    if (!conn)
        return;
    TraceResponseFrame resp;
    resp.requestId = agg.clientId;
    if (agg.spans.size() > kMaxTraceSpans)
        agg.spans.resize(kMaxTraceSpans);
    resp.spans = std::move(agg.spans);
    conn->out.append(encodeTraceResponse(resp, agg.version));
}

void
Router::broadcastMetrics(Conn &conn, std::uint64_t client_id,
                         bool http, std::uint16_t version)
{
    std::uint64_t agg_id = nextRouterId_++;
    MetricsAgg agg;
    agg.connId = conn.id;
    agg.clientId = client_id;
    agg.version = version;
    agg.http = http;
    for (auto &w : workers_) {
        if (!w.alive)
            continue;
        std::uint64_t router_id = nextRouterId_++;
        w.out.append(encodeMetricsRequest(router_id));
        metricsSub_[router_id] = MetricsSub{agg_id, w.shard};
        ++agg.remaining;
    }
    if (agg.remaining == 0) {
        completeMetricsAgg(agg); // empty fleet: empty snapshot
        return;
    }
    metricsAggs_.emplace(agg_id, std::move(agg));
}

void
Router::broadcastTrace(Conn &conn, std::uint64_t client_id,
                       std::uint16_t version)
{
    std::uint64_t agg_id = nextRouterId_++;
    TraceAgg agg;
    agg.connId = conn.id;
    agg.clientId = client_id;
    agg.version = version;
    for (auto &w : workers_) {
        if (!w.alive)
            continue;
        std::uint64_t router_id = nextRouterId_++;
        w.out.append(encodeTraceRequest(router_id));
        traceSub_[router_id] = MetricsSub{agg_id, w.shard};
        ++agg.remaining;
    }
    if (agg.remaining == 0) {
        completeTraceAgg(agg);
        return;
    }
    traceAggs_.emplace(agg_id, std::move(agg));
}

void
Router::handleHttp(Conn &conn)
{
    conn.http = true;
    if (conn.in.find("\r\n\r\n") == std::string::npos &&
        conn.in.find("\n\n") == std::string::npos) {
        if (conn.in.size() > kMaxHttpHead) {
            conn.in.clear();
            conn.closeAfterFlush = true;
        }
        return;
    }
    conn.in.clear();
    // The answer needs every worker's snapshot; reuse the metrics
    // fan-out and render once the last share lands.
    broadcastMetrics(conn, 0, /*http=*/true);
}

void
Router::consumeClientFrames(Conn &conn)
{
    std::size_t at = 0;
    for (;;) {
        FrameView view;
        std::size_t consumed = 0;
        const auto *base =
            reinterpret_cast<const unsigned char *>(conn.in.data()) +
            at;
        DecodeStatus status =
            peekFrame(base, conn.in.size() - at, &view, &consumed);
        if (status == DecodeStatus::NeedMore)
            break;
        if (status != DecodeStatus::Frame) {
            replyError(conn, 0,
                       status == DecodeStatus::BadVersion
                           ? ErrorCode::VersionMismatch
                           : ErrorCode::BadFrame,
                       "unrecoverable frame stream");
            conn.closeAfterFlush = true;
            break;
        }
        switch (view.type) {
          case FrameType::RunRequest:
            forwardRun(conn, view, base, consumed);
            break;
          case FrameType::MetricsRequest:
            broadcastMetrics(conn, view.requestId, /*http=*/false,
                             view.version);
            break;
          case FrameType::TraceRequest:
            broadcastTrace(conn, view.requestId, view.version);
            break;
          default:
            replyError(conn, view.requestId, ErrorCode::UnknownType,
                       "router does not accept this frame type",
                       view.version);
            break;
        }
        at += consumed;
    }
    if (at > 0)
        conn.in.erase(0, at);
}

void
Router::consumeWorkerFrames(Worker &worker)
{
    std::size_t at = 0;
    bool poisoned = false;
    while (!poisoned) {
        FrameView view;
        std::size_t consumed = 0;
        const auto *base = reinterpret_cast<const unsigned char *>(
                               worker.in.data()) +
                           at;
        DecodeStatus status = peekFrame(base, worker.in.size() - at,
                                        &view, &consumed);
        if (status == DecodeStatus::NeedMore)
            break;
        if (status != DecodeStatus::Frame) {
            poisoned = true; // a worker speaking garbage is dead to us
            break;
        }
        switch (view.type) {
          case FrameType::RunResponse:
          case FrameType::Error: {
            auto it = inflight_.find(view.requestId);
            if (it != inflight_.end()) {
                if (Conn *conn = findConn(it->second.connId)) {
                    std::string frame(
                        reinterpret_cast<const char *>(base),
                        consumed);
                    patchRequestId(frame, it->second.clientId);
                    conn->out.append(frame);
                }
                inflight_.erase(it);
            }
            break;
          }
          case FrameType::MetricsResponse: {
            auto sub = metricsSub_.find(view.requestId);
            if (sub == metricsSub_.end())
                break;
            std::uint64_t agg_id = sub->second.aggId;
            metricsSub_.erase(sub);
            auto agg = metricsAggs_.find(agg_id);
            if (agg == metricsAggs_.end())
                break;
            MetricsResponseFrame frame;
            if (decodeMetricsResponse(view, &frame))
                agg->second.merged.merge(frame.snapshot);
            if (--agg->second.remaining == 0) {
                completeMetricsAgg(agg->second);
                metricsAggs_.erase(agg);
            }
            break;
          }
          case FrameType::TraceResponse: {
            auto sub = traceSub_.find(view.requestId);
            if (sub == traceSub_.end())
                break;
            std::uint64_t agg_id = sub->second.aggId;
            traceSub_.erase(sub);
            auto agg = traceAggs_.find(agg_id);
            if (agg == traceAggs_.end())
                break;
            TraceResponseFrame frame;
            if (decodeTraceResponse(view, &frame))
                agg->second.spans.insert(
                    agg->second.spans.end(),
                    std::make_move_iterator(frame.spans.begin()),
                    std::make_move_iterator(frame.spans.end()));
            if (--agg->second.remaining == 0) {
                completeTraceAgg(agg->second);
                traceAggs_.erase(agg);
            }
            break;
          }
          default:
            break; // a worker never originates requests; ignore
        }
        at += consumed;
    }
    if (at > 0)
        worker.in.erase(0, at);
    if (poisoned) {
        std::size_t shard = worker.shard;
        if (workers_[shard].pid > 0)
            ::kill(workers_[shard].pid, SIGKILL);
        handleWorkerDeath(shard);
    }
}

bool
Router::flush(int fd, std::string &out)
{
    while (!out.empty()) {
        ssize_t n = ::send(fd, out.data(), out.size(), MSG_NOSIGNAL);
        if (n > 0) {
            out.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

void
Router::requestDrain()
{
    drain_.store(true, std::memory_order_release);
    char byte = 'd';
    [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &byte, 1);
}

void
Router::requestTraceDump()
{
    traceDump_.store(true, std::memory_order_release);
    char byte = 't';
    [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &byte, 1);
}

pid_t
Router::workerPid(std::size_t i) const
{
    std::lock_guard<std::mutex> lock(workerMu_);
    return i < workers_.size() ? workers_[i].pid : -1;
}

std::uint64_t
Router::restarts() const
{
    std::lock_guard<std::mutex> lock(workerMu_);
    return restarts_;
}

bool
Router::shutdownWorkers()
{
    bool all_clean = true;
    for (auto &w : workers_) {
        if (!w.alive)
            continue;
        ::kill(w.pid, SIGTERM);
    }
    for (auto &w : workers_) {
        if (!w.alive)
            continue;
        if (w.fd >= 0) {
            ::close(w.fd); // EOF backs up the SIGTERM drain
            w.fd = -1;
        }
        int status = 0;
        pid_t got = ::waitpid(w.pid, &status, 0);
        if (got != w.pid || !WIFEXITED(status) ||
            WEXITSTATUS(status) != 0)
            all_clean = false;
        w.alive = false;
    }
    return all_clean;
}

int
Router::run()
{
    std::vector<pollfd> fds;
    // Parallel tags: which Conn / Worker a pollfd row belongs to.
    std::vector<Conn *> fdConn;
    std::vector<int> fdWorker;

    for (;;) {
        bool draining = drain_.load(std::memory_order_acquire);
        if (draining && listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }

        fds.clear();
        fdConn.clear();
        fdWorker.clear();
        auto push = [&](int fd, short events, Conn *conn,
                        int worker) {
            fds.push_back({fd, events, 0});
            fdConn.push_back(conn);
            fdWorker.push_back(worker);
        };
        push(wakeRead_, POLLIN, nullptr, -1);
        if (listenFd_ >= 0)
            push(listenFd_, POLLIN, nullptr, -1);
        for (auto &w : workers_) {
            if (!w.alive)
                continue;
            short events = POLLIN;
            if (!w.out.empty())
                events |= POLLOUT;
            push(w.fd, events, nullptr,
                 static_cast<int>(w.shard));
        }
        for (auto &conn : conns_) {
            short events = 0;
            if (!draining && !conn->closeAfterFlush)
                events |= POLLIN;
            if (!conn->out.empty())
                events |= POLLOUT;
            push(conn->fd, events, conn.get(), -1);
        }

        int ready = ::poll(fds.data(),
                           static_cast<nfds_t>(fds.size()),
                           draining ? 50 : -1);
        if (ready < 0 && errno != EINTR)
            sim::fatal("router: poll failed: ",
                       std::strerror(errno));

        if (fds[0].revents & POLLIN) {
            char buf[64];
            while (::read(wakeRead_, buf, sizeof(buf)) > 0) {
            }
        }
        if (traceDump_.exchange(false, std::memory_order_acq_rel)) {
            // Each worker dumps its own recorder to the shared
            // stderr (SIGUSR1 is wired to Server::requestTraceDump
            // in comsim_served).
            for (auto &w : workers_)
                if (w.alive && w.pid > 0)
                    ::kill(w.pid, SIGUSR1);
        }
        if (listenFd_ >= 0 && fds.size() > 1 &&
            (fds[1].revents & POLLIN))
            acceptNew();

        // Workers first: deaths re-route in-flight work before any
        // new frames pick a shard.
        for (std::size_t i = 0; i < fds.size(); ++i) {
            int shard = fdWorker[i];
            if (shard < 0)
                continue;
            Worker &w = workers_[static_cast<std::size_t>(shard)];
            if (!w.alive || w.fd != fds[i].fd)
                continue; // replaced mid-loop by an earlier death
            bool closed = false;
            if (fds[i].revents &
                (POLLIN | POLLHUP | POLLERR | POLLNVAL))
                readInto(w.fd, w.in, &closed);
            consumeWorkerFrames(w);
            if (closed)
                handleWorkerDeath(
                    static_cast<std::size_t>(shard));
        }

        for (std::size_t i = 0; i < fds.size(); ++i) {
            Conn *conn = fdConn[i];
            if (!conn || conn->fd != fds[i].fd)
                continue;
            if (fds[i].revents & (POLLERR | POLLNVAL)) {
                conn->dead = true;
                continue;
            }
            if (fds[i].revents & POLLIN) {
                bool closed = false;
                readInto(conn->fd, conn->in, &closed);
                if (closed)
                    conn->dead = true;
            } else if ((fds[i].revents & POLLHUP) &&
                       conn->in.empty()) {
                conn->dead = true;
            }
        }

        for (auto &conn : conns_) {
            if (conn->dead)
                continue;
            if (!conn->in.empty() && !conn->closeAfterFlush) {
                if (conn->http || looksLikeHttpGet(conn->in))
                    handleHttp(*conn);
                else
                    consumeClientFrames(*conn);
            }
            if (!flush(conn->fd, conn->out)) {
                conn->dead = true;
                continue;
            }
            if (conn->closeAfterFlush && conn->out.empty())
                conn->dead = true;
        }
        for (auto &w : workers_) {
            if (!w.alive)
                continue;
            if (!flush(w.fd, w.out)) {
                std::size_t shard = w.shard;
                handleWorkerDeath(shard);
            }
        }

        for (std::size_t i = 0; i < conns_.size();) {
            if (conns_[i]->dead) {
                ::close(conns_[i]->fd);
                conns_.erase(conns_.begin() +
                             static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }

        if (draining && inflight_.empty() &&
            metricsAggs_.empty() && traceAggs_.empty()) {
            bool flushed = true;
            for (auto &conn : conns_)
                if (!conn->out.empty())
                    flushed = false;
            if (flushed)
                break;
        }
    }

    for (auto &conn : conns_) {
        ::close(conn->fd);
        conn->fd = -1;
    }
    conns_.clear();
    return shutdownWorkers() ? 0 : 1;
}

} // namespace com::net
