#include "net/frame.hpp"

#include <bit>
#include <cstring>

#include "sim/logging.hpp"

namespace com::net {

namespace {

constexpr unsigned char kMagic[4] = {'C', 'O', 'M', 'F'};

/** Append little-endian integers and length-prefixed strings. */
class Writer
{
  public:
    void
    u8(std::uint8_t v)
    {
        out_.push_back(static_cast<char>(v));
    }
    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }
    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }
    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }
    void
    f64(double v)
    {
        u64(std::bit_cast<std::uint64_t>(v));
    }
    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        out_.append(s);
    }
    void
    word(mem::Word w)
    {
        u32(w.bits());
        u8(static_cast<std::uint8_t>(w.tag()));
    }

    std::string &bytes() { return out_; }

  private:
    std::string out_;
};

/** Bounds-checked little-endian reads; one failure poisons the rest. */
class Reader
{
  public:
    Reader(const unsigned char *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::uint8_t
    u8()
    {
        if (at_ + 1 > size_)
            return fail();
        return data_[at_++];
    }
    std::uint16_t
    u16()
    {
        std::uint16_t lo = u8(), hi = u8();
        return static_cast<std::uint16_t>(lo | (hi << 8));
    }
    std::uint32_t
    u32()
    {
        std::uint32_t lo = u16(), hi = u16();
        return lo | (hi << 16);
    }
    std::uint64_t
    u64()
    {
        std::uint64_t lo = u32(), hi = u32();
        return lo | (hi << 32);
    }
    double
    f64()
    {
        return std::bit_cast<double>(u64());
    }
    bool
    str(std::string *out)
    {
        std::uint32_t n = u32();
        if (!ok_ || at_ + n > size_) {
            ok_ = false;
            return false;
        }
        out->assign(reinterpret_cast<const char *>(data_ + at_), n);
        at_ += n;
        return true;
    }

    bool ok() const { return ok_; }
    /** @return true when every byte was consumed cleanly (catches
     *  payloads with trailing garbage). */
    bool done() const { return ok_ && at_ == size_; }

  private:
    std::uint8_t
    fail()
    {
        ok_ = false;
        return 0;
    }

    const unsigned char *data_;
    std::size_t size_;
    std::size_t at_ = 0;
    bool ok_ = true;
};

/** Wrap @p payload in a header stamped @p version. */
std::string
finishFrame(FrameType type, Writer &payload, std::uint16_t version)
{
    Writer head;
    head.bytes().append(reinterpret_cast<const char *>(kMagic), 4);
    head.u16(version);
    head.u16(static_cast<std::uint16_t>(type));
    head.u32(static_cast<std::uint32_t>(payload.bytes().size()));
    head.bytes().append(payload.bytes());
    return std::move(head.bytes());
}

bool
validTag(std::uint8_t t)
{
    return t < static_cast<std::uint8_t>(mem::kNumTags);
}

/** One latency histogram: moments, percentiles, raw buckets. */
void
writeHistogram(Writer &w, const serve::LatencyHistogram::Snapshot &h)
{
    w.u64(h.count);
    w.f64(h.meanSeconds);
    w.f64(h.maxSeconds);
    w.f64(h.p50Seconds);
    w.f64(h.p95Seconds);
    w.f64(h.p99Seconds);
    for (std::uint64_t b : h.buckets)
        w.u64(b);
}

void
readHistogram(Reader &r, serve::LatencyHistogram::Snapshot *h)
{
    h->count = r.u64();
    h->meanSeconds = r.f64();
    h->maxSeconds = r.f64();
    h->p50Seconds = r.f64();
    h->p95Seconds = r.f64();
    h->p99Seconds = r.f64();
    for (std::uint64_t &b : h->buckets)
        b = r.u64();
}

} // namespace

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::BadFrame:
        return "bad-frame";
      case ErrorCode::VersionMismatch:
        return "version-mismatch";
      case ErrorCode::UnknownType:
        return "unknown-type";
      case ErrorCode::WorkerLost:
        return "worker-lost";
      case ErrorCode::Draining:
        return "draining";
    }
    return "?";
}

api::ProgramSpec
RunRequestFrame::toSpec() const
{
    api::ProgramSpec spec;
    spec.language = language;
    spec.name = name;
    spec.source = source;
    spec.args = args;
    spec.hasExpected = hasExpected;
    spec.expected = expected;
    return spec;
}

RunRequestFrame
RunRequestFrame::fromSpec(std::uint64_t id, api::EngineKind kind,
                          const api::ProgramSpec &spec,
                          std::uint32_t deadline_ms,
                          serve::Priority priority)
{
    RunRequestFrame f;
    f.requestId = id;
    f.kind = kind;
    f.language = spec.language;
    f.name = spec.name;
    f.source = spec.source;
    f.args = spec.args;
    f.hasExpected = spec.hasExpected;
    f.expected = spec.expected;
    f.deadlineMs = deadline_ms;
    f.priority = priority;
    return f;
}

serve::Response
RunResponseFrame::toResponse() const
{
    serve::Response r;
    r.status = status;
    r.error = error;
    r.latencySeconds = latencySeconds;
    r.batchSize = batchSize;
    r.shard = static_cast<std::size_t>(shard);
    r.priority = priority;
    r.retryAfterSeconds = retryAfterSeconds;
    r.outcome.ok = ok;
    r.outcome.error = outcomeError;
    r.outcome.result = result;
    r.outcome.resultText = resultText;
    r.outcome.output = output;
    r.outcome.operations = operations;
    r.outcome.cycles = cycles;
    r.outcome.engine = engine;
    r.outcome.program = program;
    r.outcome.warmRestoreSeconds = warmRestoreSeconds;
    return r;
}

RunResponseFrame
RunResponseFrame::fromResponse(std::uint64_t id,
                               const serve::Response &r)
{
    RunResponseFrame f;
    f.requestId = id;
    f.priority = r.priority;
    f.retryAfterSeconds = r.retryAfterSeconds;
    f.status = r.status;
    f.ok = r.outcome.ok;
    f.result = r.outcome.result;
    f.resultText = r.outcome.resultText;
    f.output = r.outcome.output;
    f.outcomeError = r.outcome.error;
    f.error = r.error;
    f.engine = r.outcome.engine;
    f.program = r.outcome.program;
    f.operations = r.outcome.operations;
    f.cycles = r.outcome.cycles;
    f.latencySeconds = r.latencySeconds;
    f.warmRestoreSeconds = r.outcome.warmRestoreSeconds;
    f.batchSize = r.batchSize;
    f.shard = r.shard;
    return f;
}

std::string
encodeRunRequest(const RunRequestFrame &f, std::uint16_t version)
{
    Writer w;
    w.u64(f.requestId);
    w.u8(static_cast<std::uint8_t>(f.kind));
    w.u8(static_cast<std::uint8_t>(f.language));
    w.u8(f.hasExpected ? 1 : 0);
    // v2 reserved this byte as zero; v3 reads it as the priority
    // (zero = Interactive), so the layouts are byte-identical.
    w.u8(static_cast<std::uint8_t>(f.priority));
    w.u32(static_cast<std::uint32_t>(f.expected));
    w.u32(f.deadlineMs);
    w.str(f.name);
    w.str(f.source);
    w.u32(static_cast<std::uint32_t>(f.args.size()));
    for (mem::Word a : f.args)
        w.word(a);
    return finishFrame(FrameType::RunRequest, w, version);
}

std::string
encodeRunResponse(const RunResponseFrame &f, std::uint16_t version)
{
    Writer w;
    w.u64(f.requestId);
    w.u8(static_cast<std::uint8_t>(f.status));
    w.u8(f.ok ? 1 : 0);
    w.word(f.result);
    w.u64(f.operations);
    w.u64(f.cycles);
    w.f64(f.latencySeconds);
    w.f64(f.warmRestoreSeconds);
    w.u64(f.batchSize);
    w.u64(f.shard);
    w.str(f.resultText);
    w.str(f.output);
    w.str(f.outcomeError);
    w.str(f.error);
    w.str(f.engine);
    w.str(f.program);
    if (version >= 3) {
        w.f64(f.retryAfterSeconds);
        w.u8(static_cast<std::uint8_t>(f.priority));
    }
    return finishFrame(FrameType::RunResponse, w, version);
}

std::string
encodeMetricsRequest(std::uint64_t request_id, std::uint16_t version)
{
    Writer w;
    w.u64(request_id);
    return finishFrame(FrameType::MetricsRequest, w, version);
}

std::string
encodeMetricsResponse(const MetricsResponseFrame &f,
                      std::uint16_t version)
{
    const serve::Metrics::Snapshot &s = f.snapshot;
    Writer w;
    w.u64(f.requestId);
    w.u64(s.submitted);
    w.u64(s.served);
    w.u64(s.failed);
    w.u64(s.rejected);
    w.u64(s.expired);
    w.u64(s.batches);
    w.u64(s.batchedRequests);
    w.f64(s.meanBatch);
    w.u64(s.maxBatch);
    w.u64(s.maxQueueDepth);
    w.u64(s.queueDepth);
    w.u64(s.workers);
    w.f64(s.wallSeconds);
    w.f64(s.busySeconds);
    w.f64(s.workerSeconds);
    w.f64(s.utilization);
    w.u64(s.cacheHits);
    w.u64(s.cacheMisses);
    w.u64(s.cacheInstalls);
    w.u64(s.cacheEvictions);
    w.u64(s.warmStarts);
    w.u64(s.warmStartNanos);
    w.f64(s.warmStartMeanSeconds);
    writeHistogram(w, s.latency);
    writeHistogram(w, s.queueWait);
    writeHistogram(w, s.poolWait);
    writeHistogram(w, s.warmRestore);
    writeHistogram(w, s.execute);
    writeHistogram(w, s.verify);
    if (version >= 3) {
        for (std::size_t i = 0; i < serve::kNumPriorities; ++i)
            w.u64(s.shed[i]);
        w.u64(s.batchCap);
        for (std::size_t i = 0; i < serve::kNumPriorities; ++i)
            writeHistogram(w, s.latencyByPriority[i]);
    }
    return finishFrame(FrameType::MetricsResponse, w, version);
}

std::string
encodeTraceRequest(std::uint64_t request_id, std::uint16_t version)
{
    Writer w;
    w.u64(request_id);
    return finishFrame(FrameType::TraceRequest, w, version);
}

std::string
encodeTraceResponse(const TraceResponseFrame &f,
                    std::uint16_t version)
{
    Writer w;
    w.u64(f.requestId);
    w.u32(static_cast<std::uint32_t>(f.spans.size()));
    for (const serve::FlightSpan &s : f.spans) {
        w.u64(s.seq);
        w.u64(s.submitNanos);
        w.u32(s.queueUs);
        w.u32(s.poolUs);
        w.u32(s.warmUs);
        w.u32(s.execUs);
        w.u32(s.verifyUs);
        w.u32(s.totalUs);
        w.u8(static_cast<std::uint8_t>(s.status));
        w.u8(static_cast<std::uint8_t>(s.kind));
        w.u16(s.shard);
        w.u32(s.batchSize);
        w.u8(s.slow ? 1 : 0);
        w.str(s.program);
    }
    return finishFrame(FrameType::TraceResponse, w, version);
}

std::string
encodeError(const ErrorFrame &f, std::uint16_t version)
{
    Writer w;
    w.u64(f.requestId);
    w.u16(static_cast<std::uint16_t>(f.code));
    w.str(f.message);
    return finishFrame(FrameType::Error, w, version);
}

DecodeStatus
peekFrame(const unsigned char *data, std::size_t len, FrameView *view,
          std::size_t *consumed)
{
    if (len < kHeaderSize) {
        // Reject hopeless streams before the full header arrives: the
        // magic mismatch is visible from the first differing byte.
        for (std::size_t i = 0; i < len && i < 4; ++i)
            if (data[i] != kMagic[i])
                return DecodeStatus::BadMagic;
        return DecodeStatus::NeedMore;
    }
    if (std::memcmp(data, kMagic, 4) != 0)
        return DecodeStatus::BadMagic;
    Reader head(data + 4, kHeaderSize - 4);
    std::uint16_t version = head.u16();
    std::uint16_t type = head.u16();
    std::uint32_t size = head.u32();
    if (version < kMinProtocolVersion || version > kProtocolVersion)
        return DecodeStatus::BadVersion;
    if (size > kMaxPayloadBytes)
        return DecodeStatus::TooLarge;
    if (len < kHeaderSize + size)
        return DecodeStatus::NeedMore;
    view->type = static_cast<FrameType>(type);
    view->version = version;
    view->payload = data + kHeaderSize;
    view->size = size;
    view->requestId = 0;
    if (size >= 8) {
        Reader id(view->payload, 8);
        view->requestId = id.u64();
    }
    *consumed = kHeaderSize + size;
    return DecodeStatus::Frame;
}

DecodeStatus
peekFrame(const std::string &buffer, FrameView *view,
          std::size_t *consumed)
{
    return peekFrame(
        reinterpret_cast<const unsigned char *>(buffer.data()),
        buffer.size(), view, consumed);
}

bool
decodeRunRequest(const FrameView &view, RunRequestFrame *out)
{
    if (view.type != FrameType::RunRequest)
        return false;
    Reader r(view.payload, view.size);
    out->requestId = r.u64();
    std::uint8_t kind = r.u8();
    std::uint8_t language = r.u8();
    std::uint8_t has_expected = r.u8();
    // v2 reserved this byte as zero; v3 carries the priority here.
    std::uint8_t priority = r.u8();
    out->expected = static_cast<std::int32_t>(r.u32());
    out->deadlineMs = r.u32();
    if (!r.str(&out->name) || !r.str(&out->source))
        return false;
    std::uint32_t nargs = r.u32();
    if (!r.ok() ||
        nargs > view.size / 5) // each encoded arg is 5 bytes
        return false;
    out->args.clear();
    out->args.reserve(nargs);
    for (std::uint32_t i = 0; i < nargs; ++i) {
        std::uint32_t bits = r.u32();
        std::uint8_t tag = r.u8();
        if (!r.ok() || !validTag(tag))
            return false;
        out->args.emplace_back(bits, static_cast<mem::Tag>(tag));
    }
    if (kind >= api::kNumEngineKinds || language > 2 ||
        has_expected > 1 || priority >= serve::kNumPriorities)
        return false;
    out->kind = static_cast<api::EngineKind>(kind);
    out->language = static_cast<api::Language>(language);
    out->hasExpected = has_expected == 1;
    out->priority = static_cast<serve::Priority>(priority);
    return r.done();
}

bool
decodeRunResponse(const FrameView &view, RunResponseFrame *out)
{
    if (view.type != FrameType::RunResponse)
        return false;
    Reader r(view.payload, view.size);
    out->requestId = r.u64();
    std::uint8_t status = r.u8();
    std::uint8_t ok = r.u8();
    std::uint32_t bits = r.u32();
    std::uint8_t tag = r.u8();
    out->operations = r.u64();
    out->cycles = r.u64();
    out->latencySeconds = r.f64();
    out->warmRestoreSeconds = r.f64();
    out->batchSize = r.u64();
    out->shard = r.u64();
    if (!r.str(&out->resultText) || !r.str(&out->output) ||
        !r.str(&out->outcomeError) || !r.str(&out->error) ||
        !r.str(&out->engine) || !r.str(&out->program))
        return false;
    out->retryAfterSeconds = 0.0;
    std::uint8_t priority = 0;
    if (view.version >= 3) {
        out->retryAfterSeconds = r.f64();
        priority = r.u8();
    }
    if (status > 3 || ok > 1 || !validTag(tag) ||
        priority >= serve::kNumPriorities)
        return false;
    out->status = static_cast<serve::ResponseStatus>(status);
    out->ok = ok == 1;
    out->result = mem::Word(bits, static_cast<mem::Tag>(tag));
    out->priority = static_cast<serve::Priority>(priority);
    return r.done();
}

bool
decodeMetricsResponse(const FrameView &view, MetricsResponseFrame *out)
{
    if (view.type != FrameType::MetricsResponse)
        return false;
    Reader r(view.payload, view.size);
    serve::Metrics::Snapshot &s = out->snapshot;
    out->requestId = r.u64();
    s.submitted = r.u64();
    s.served = r.u64();
    s.failed = r.u64();
    s.rejected = r.u64();
    s.expired = r.u64();
    s.batches = r.u64();
    s.batchedRequests = r.u64();
    s.meanBatch = r.f64();
    s.maxBatch = r.u64();
    s.maxQueueDepth = r.u64();
    s.queueDepth = r.u64();
    s.workers = r.u64();
    s.wallSeconds = r.f64();
    s.busySeconds = r.f64();
    s.workerSeconds = r.f64();
    s.utilization = r.f64();
    s.cacheHits = r.u64();
    s.cacheMisses = r.u64();
    s.cacheInstalls = r.u64();
    s.cacheEvictions = r.u64();
    s.warmStarts = r.u64();
    s.warmStartNanos = r.u64();
    s.warmStartMeanSeconds = r.f64();
    readHistogram(r, &s.latency);
    readHistogram(r, &s.queueWait);
    readHistogram(r, &s.poolWait);
    readHistogram(r, &s.warmRestore);
    readHistogram(r, &s.execute);
    readHistogram(r, &s.verify);
    if (view.version >= 3) {
        for (std::size_t i = 0; i < serve::kNumPriorities; ++i)
            s.shed[i] = r.u64();
        s.batchCap = r.u64();
        for (std::size_t i = 0; i < serve::kNumPriorities; ++i)
            readHistogram(r, &s.latencyByPriority[i]);
    }
    return r.done();
}

bool
decodeTraceResponse(const FrameView &view, TraceResponseFrame *out)
{
    if (view.type != FrameType::TraceResponse)
        return false;
    Reader r(view.payload, view.size);
    out->requestId = r.u64();
    std::uint32_t count = r.u32();
    // Each encoded span is at least 41 bytes; a count the payload
    // cannot possibly hold is malformed (and must not reserve()).
    if (!r.ok() || count > kMaxTraceSpans ||
        count > view.size / 41)
        return false;
    out->spans.clear();
    out->spans.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        serve::FlightSpan s;
        s.seq = r.u64();
        s.submitNanos = r.u64();
        s.queueUs = r.u32();
        s.poolUs = r.u32();
        s.warmUs = r.u32();
        s.execUs = r.u32();
        s.verifyUs = r.u32();
        s.totalUs = r.u32();
        std::uint8_t status = r.u8();
        std::uint8_t kind = r.u8();
        s.shard = r.u16();
        s.batchSize = r.u32();
        std::uint8_t slow = r.u8();
        if (!r.str(&s.program))
            return false;
        if (status > 3 || kind >= api::kNumEngineKinds || slow > 1)
            return false;
        s.status = static_cast<serve::ResponseStatus>(status);
        s.kind = static_cast<api::EngineKind>(kind);
        s.slow = slow == 1;
        out->spans.push_back(std::move(s));
    }
    return r.done();
}

bool
decodeError(const FrameView &view, ErrorFrame *out)
{
    if (view.type != FrameType::Error)
        return false;
    Reader r(view.payload, view.size);
    out->requestId = r.u64();
    std::uint16_t code = r.u16();
    if (!r.str(&out->message))
        return false;
    if (code < 1 || code > 5)
        return false;
    out->code = static_cast<ErrorCode>(code);
    return r.done();
}

void
patchRequestId(std::string &frame, std::uint64_t request_id)
{
    sim::fatalIf(frame.size() < kRequestIdOffset + 8,
                 "patchRequestId: frame too short");
    for (std::size_t i = 0; i < 8; ++i)
        frame[kRequestIdOffset + i] =
            static_cast<char>(request_id >> (8 * i));
}

} // namespace com::net
