/**
 * @file
 * The wire protocol of the serving front-end: length-prefixed binary
 * frames, versioned and bounded.
 *
 * Every frame is a fixed 12-byte header followed by a payload:
 *
 *   offset  size  field
 *        0     4  magic "COMF" (raw bytes, in order)
 *        4     2  protocol version (little-endian u16)
 *        6     2  frame type (little-endian u16, FrameType)
 *        8     4  payload length (little-endian u32, bounded by
 *                 kMaxPayloadBytes)
 *       12     n  payload
 *
 * Every payload begins with a little-endian u64 *request id*, echoed
 * verbatim in the matching response, so callers may pipeline requests
 * and match completions out of order. The fixed offset is load-bearing:
 * the router (net/router.hpp) forwards frames between clients and
 * worker processes by rewriting just those eight bytes
 * (patchRequestId) instead of re-encoding.
 *
 * All integers are little-endian, serialized byte-by-byte (no struct
 * punning), so the codec is byte-order portable. Strings are u32
 * length + raw bytes. Doubles travel as their IEEE-754 bit pattern in
 * a u64.
 *
 * Error containment: a frame whose header is well-formed but whose
 * payload does not decode is *skippable* — the length prefix names
 * where the next frame starts, so a server rejects it with an Error
 * frame and keeps the connection. Only unrecoverable streams (bad
 * magic, version mismatch, oversized length — no resync point) close
 * the connection.
 */

#ifndef COMSIM_NET_FRAME_HPP
#define COMSIM_NET_FRAME_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "serve/flight_recorder.hpp"
#include "serve/metrics.hpp"
#include "serve/request.hpp"

namespace com::net {

/** Bumped on any incompatible wire change; versions outside the
 *  accepted window [kMinProtocolVersion, kProtocolVersion] are
 *  refused.
 *  v2: stage-latency histograms in MetricsResponse, warm-restore
 *  seconds in RunResponse, and the TraceRequest/TraceResponse pair
 *  (the flight recorder over the wire).
 *  v3: priority classes and overload shedding — RunRequest carries a
 *  Priority in its (previously reserved, always-zero) byte, so the
 *  request encoding is byte-identical to v2 and a v2 peer's requests
 *  decode as Interactive; RunResponse appends retryAfterSeconds and
 *  the echoed priority; MetricsResponse appends per-class shed
 *  counters, the adaptive batch cap, and per-class latency
 *  histograms. Responses are encoded at the *requester's* version
 *  (a v2 client still decodes every reply), which FrameView::version
 *  makes visible to servers and the router. */
constexpr std::uint16_t kProtocolVersion = 3;

/** Oldest peer version still accepted (and answered in kind). */
constexpr std::uint16_t kMinProtocolVersion = 2;

/** Header bytes before the payload. */
constexpr std::size_t kHeaderSize = 12;

/** Offset of the u64 request id (start of every payload). */
constexpr std::size_t kRequestIdOffset = kHeaderSize;

/** Largest accepted payload (a program source, comfortably). */
constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;

/** What a frame carries. */
enum class FrameType : std::uint16_t
{
    RunRequest = 1,      ///< client -> server: run one program
    RunResponse = 2,     ///< server -> client: how the run ended
    MetricsRequest = 3,  ///< client -> server: snapshot the counters
    MetricsResponse = 4, ///< server -> client: Metrics::Snapshot
    Error = 5,           ///< server -> client: request-level refusal
    TraceRequest = 6,    ///< client -> server: dump the recorder
    TraceResponse = 7,   ///< server -> client: flight-recorder spans
};

/** Why a request came back as an Error frame. */
enum class ErrorCode : std::uint16_t
{
    BadFrame = 1,        ///< payload did not decode (frame skipped)
    VersionMismatch = 2, ///< header version != kProtocolVersion
    UnknownType = 3,     ///< frame type the server does not speak
    WorkerLost = 4,      ///< router: worker died too often on this
    Draining = 5,        ///< server is shutting down gracefully
};

/** @return a short name for @p code ("bad-frame", ...). */
const char *errorCodeName(ErrorCode code);

/** A request to run one program on one engine kind. */
struct RunRequestFrame
{
    std::uint64_t requestId = 0;
    api::EngineKind kind = api::EngineKind::Com;
    api::Language language = api::Language::Smalltalk;
    std::string name;
    std::string source;
    std::vector<mem::Word> args;
    bool hasExpected = false;
    std::int32_t expected = 0;
    /** Relative deadline in ms from server receipt; 0 = none. */
    std::uint32_t deadlineMs = 0;
    /** Service class (v3; rides the byte v2 reserved as zero, so a
     *  v2 peer's requests decode as Interactive). */
    serve::Priority priority = serve::Priority::Interactive;

    /** The ProgramSpec this frame names. */
    api::ProgramSpec toSpec() const;
    /** Build a frame from a spec (the client-side constructor). */
    static RunRequestFrame fromSpec(
        std::uint64_t id, api::EngineKind kind,
        const api::ProgramSpec &spec, std::uint32_t deadline_ms,
        serve::Priority priority = serve::Priority::Interactive);
};

/** How one run ended: a serve::Response, flattened for the wire. */
struct RunResponseFrame
{
    std::uint64_t requestId = 0;
    serve::ResponseStatus status = serve::ResponseStatus::Rejected;
    bool ok = false; ///< RunOutcome::ok
    mem::Word result;
    std::string resultText;
    std::string output;
    std::string outcomeError; ///< RunOutcome::error
    std::string error;        ///< Response::error (non-Ok reasons)
    std::string engine;
    std::string program;
    std::uint64_t operations = 0;
    std::uint64_t cycles = 0;
    double latencySeconds = 0.0;
    double warmRestoreSeconds = 0.0;
    std::uint64_t batchSize = 0;
    std::uint64_t shard = 0;
    /** Overload back-off hint (v3; zero when absent or v2). */
    double retryAfterSeconds = 0.0;
    /** Echoed service class (v3; Interactive when v2). */
    serve::Priority priority = serve::Priority::Interactive;

    /** Rebuild the serve::Response this frame flattened. */
    serve::Response toResponse() const;
    /** Flatten @p r (the server-side constructor). */
    static RunResponseFrame fromResponse(std::uint64_t id,
                                         const serve::Response &r);
};

/** A request-level refusal (the connection survives). */
struct ErrorFrame
{
    std::uint64_t requestId = 0;
    ErrorCode code = ErrorCode::BadFrame;
    std::string message;
};

/** A serve::Metrics::Snapshot, histogram buckets included. */
struct MetricsResponseFrame
{
    std::uint64_t requestId = 0;
    serve::Metrics::Snapshot snapshot;
};

/** The flight recorder's spans (TraceResponse). The router merges
 *  per-worker lists by concatenation — spans carry their shard. */
struct TraceResponseFrame
{
    std::uint64_t requestId = 0;
    std::vector<serve::FlightSpan> spans;
};

/** Spans one TraceResponse may carry (bounds a malicious count). */
constexpr std::uint32_t kMaxTraceSpans = 65536;

// Encoders: complete frames (header + payload), ready to write.
// The version parameter sets the header version AND the payload
// layout where they differ (v3 appends fields) — a reply must be
// encoded at the requester's version (FrameView::version), since a
// v2 peer refuses v3 headers outright.
std::string encodeRunRequest(const RunRequestFrame &f,
                             std::uint16_t version = kProtocolVersion);
std::string encodeRunResponse(const RunResponseFrame &f,
                              std::uint16_t version = kProtocolVersion);
std::string encodeMetricsRequest(
    std::uint64_t request_id,
    std::uint16_t version = kProtocolVersion);
std::string encodeMetricsResponse(
    const MetricsResponseFrame &f,
    std::uint16_t version = kProtocolVersion);
std::string encodeTraceRequest(
    std::uint64_t request_id,
    std::uint16_t version = kProtocolVersion);
std::string encodeTraceResponse(
    const TraceResponseFrame &f,
    std::uint16_t version = kProtocolVersion);
std::string encodeError(const ErrorFrame &f,
                        std::uint16_t version = kProtocolVersion);

/** What peekFrame found at the front of a byte stream. */
enum class DecodeStatus : std::uint8_t
{
    NeedMore,   ///< header or payload incomplete; read more bytes
    Frame,      ///< one whole frame is available
    BadMagic,   ///< not this protocol; close the connection
    BadVersion, ///< incompatible peer; refuse + close
    TooLarge,   ///< length exceeds kMaxPayloadBytes; close
};

/** A decoded header plus a borrowed view of its payload. */
struct FrameView
{
    FrameType type = FrameType::Error;
    /** The header's protocol version (within the accepted window).
     *  Decoders branch on it; replies are encoded at it. */
    std::uint16_t version = kProtocolVersion;
    /** The payload's leading u64 (0 when the payload is shorter). */
    std::uint64_t requestId = 0;
    const unsigned char *payload = nullptr;
    std::size_t size = 0;
};

/**
 * Examine the start of @p data for one frame. On Frame, @p view
 * borrows into @p data and @p consumed is the total frame size
 * (header + payload) to drop from the stream. The payload is NOT
 * validated here — typed decoders below do that, so a malformed
 * payload can be skipped frame-wise.
 */
DecodeStatus peekFrame(const unsigned char *data, std::size_t len,
                       FrameView *view, std::size_t *consumed);

/** String-buffer convenience overload. */
DecodeStatus peekFrame(const std::string &buffer, FrameView *view,
                       std::size_t *consumed);

// Typed payload decoders. @return false when the payload is
// malformed (truncated, over-long strings, enum out of range);
// the caller skips the frame and answers with an Error frame.
bool decodeRunRequest(const FrameView &view, RunRequestFrame *out);
bool decodeRunResponse(const FrameView &view, RunResponseFrame *out);
bool decodeMetricsResponse(const FrameView &view,
                           MetricsResponseFrame *out);
bool decodeTraceResponse(const FrameView &view,
                         TraceResponseFrame *out);
bool decodeError(const FrameView &view, ErrorFrame *out);

/**
 * Rewrite the request id of an encoded frame in place (the router's
 * forwarding primitive). @p frame must hold at least a header and the
 * leading payload u64.
 */
void patchRequestId(std::string &frame, std::uint64_t request_id);

} // namespace com::net

#endif // COMSIM_NET_FRAME_HPP
