/**
 * @file
 * The zero-address stack machine baseline (paper Section 5).
 *
 * "Stack machines while offering small code size require almost twice
 * as many instructions to implement a given source language program
 * than a three address machine. Our initial design studies indicated
 * that executing a stack machine instruction would take about the same
 * amount of time as executing a three address instruction."
 *
 * This VM is a Smalltalk-80-flavoured bytecode machine (push/store
 * locals and fields, push literals, sends, jumps) with the same late
 * binding semantics as the COM: sends dispatch on the receiver's class
 * through per-class method tables. Its instruction counts, beside the
 * COM's, regenerate the T-stack comparison; its timing model charges
 * the paper's assumption of equal per-instruction cost.
 */

#ifndef COMSIM_LANG_STACK_VM_HPP
#define COMSIM_LANG_STACK_VM_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/word.hpp"
#include "obj/selector_table.hpp"
#include "sim/stats.hpp"

namespace com::lang {

/** Stack bytecodes. */
enum class SOp : std::uint8_t
{
    PushLocal,  ///< a = local index (arguments first, then temps)
    StoreLocal, ///< pops into local a
    PushField,  ///< a = field index of the receiver
    StoreField, ///< pops into field a
    PushSelf,
    PushLit,    ///< a = literal index
    Pop,
    Dup,
    Send,       ///< a = selector id, b = argument count
    Return,     ///< return TOS to the caller
    ReturnSelf,
    Jump,       ///< a = relative offset (from the next instruction)
    JumpTrue,   ///< pops condition
    JumpFalse,  ///< pops condition
};

/** @return bytecode mnemonic. */
const char *sopName(SOp op);

/** One bytecode. */
struct SInstr
{
    SOp op;
    std::int32_t a = 0;
    std::int32_t b = 0;
};

/** One compiled method. */
struct SMethod
{
    std::string selector;
    std::vector<SInstr> code;
    std::vector<mem::Word> literals;
    unsigned numArgs = 0;
    unsigned numTemps = 0;
};

/** Per-class compiled methods for the stack VM. */
struct SClass
{
    std::string name;
    std::int32_t superId = -1;
    std::uint32_t numFields = 0; ///< including inherited
    std::unordered_map<obj::SelectorId, SMethod> methods;
};

/** Why the VM stopped. */
struct SResult
{
    bool ok = false;
    std::string error;
    std::uint64_t bytecodes = 0; ///< instructions executed
    std::uint64_t sends = 0;     ///< message sends performed
    std::uint64_t cycles = 0;    ///< 2 cycles per bytecode (paper)
    mem::Word result;
};

/**
 * The stack VM. Classes and methods are installed by StackCompiler;
 * objects live in a host-side store.
 */
class StackVm
{
  public:
    StackVm();

    /** Register a class; @return its id. */
    std::int32_t defineClass(const std::string &name,
                             std::int32_t super_id,
                             std::uint32_t num_fields);
    /** Install a method on a class. */
    void installMethod(std::int32_t cls, SMethod method);
    /** Class id by name (-1 if unknown). */
    std::int32_t classByName(const std::string &name) const;

    /** The selector intern table (shared with the compiler). */
    obj::SelectorTable &selectors() { return selectors_; }

    /** Run @p entry with receiver nil. */
    SResult run(const SMethod &entry,
                std::uint64_t max_bytecodes = 50'000'000);

    /** Output accumulated by 'print'. */
    const std::string &output() const { return output_; }
    /** Discard accumulated output. */
    void clearOutput() { output_.clear(); }
    /** Allocate a VM object of class @p cls with @p words words. */
    mem::Word allocObject(std::int32_t cls, std::uint32_t words);
    /** Host-side string contents of a VM string object. */
    std::string readString(mem::Word w) const;
    /** Make a VM string object. */
    mem::Word makeString(const std::string &s);

    /** Objects allocated so far. */
    std::uint64_t allocations() const { return allocs_; }

  private:
    struct Frame
    {
        const SMethod *method;
        std::size_t ip;
        std::vector<mem::Word> locals;
        mem::Word receiver;
        std::int32_t receiverCls;
    };

    /**
     * Built-in primitive operations, resolved from the selector id
     * through a flat table (built at construction) instead of comparing
     * selector spellings on every send.
     */
    enum class SPrim : std::uint8_t
    {
        None = 0,
        Add, Sub, Mul, Div, Mod,
        Lt, Le, Gt, Ge, Eq, Ne,
        BitAnd, BitOr, BitXor,
        Identical, Negated,
        New, NewSized,
        At, AtPut, Size,
        Print,
    };

    /** Class of a word for dispatch. */
    std::int32_t classOf(const mem::Word &w) const;
    const SMethod *lookup(std::int32_t cls, obj::SelectorId sel) const;
    /** Try a built-in primitive; true if handled. */
    bool tryPrimitive(obj::SelectorId sel, unsigned argc, bool &failed,
                      std::string &err);
    /** Flat-table primitive resolution for @p sel. */
    SPrim
    primFor(obj::SelectorId sel) const
    {
        return sel < primOf_.size() ? static_cast<SPrim>(primOf_[sel])
                                    : SPrim::None;
    }

    obj::SelectorTable selectors_;
    std::vector<std::uint8_t> primOf_; ///< SelectorId -> SPrim
    std::vector<SClass> classes_;
    std::unordered_map<std::string, std::int32_t> classIds_;

    // Object store: payload of ObjectPtr words indexes objects_.
    std::vector<std::vector<mem::Word>> objects_;
    std::vector<std::int32_t> objectCls_;
    std::uint64_t allocs_ = 0;

    std::vector<mem::Word> stack_;
    std::vector<Frame> frames_;
    std::string output_;
    std::uint64_t sends_ = 0;

    // Well-known ids resolved once.
    std::int32_t intCls_, floatCls_, atomCls_, nilCls_, arrayCls_,
        stringCls_, rootCls_;
    std::uint32_t trueAtom_, falseAtom_, nilAtom_;
};

} // namespace com::lang

#endif // COMSIM_LANG_STACK_VM_HPP
