#include "lang/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "sim/logging.hpp"

namespace com::lang {

const char *
tokName(Tok t)
{
    switch (t) {
      case Tok::End: return "end";
      case Tok::Ident: return "identifier";
      case Tok::Keyword: return "keyword";
      case Tok::BinarySel: return "binary selector";
      case Tok::Integer: return "integer";
      case Tok::Float: return "float";
      case Tok::String: return "string";
      case Tok::Symbol: return "symbol";
      case Tok::Assign: return ":=";
      case Tok::Caret: return "^";
      case Tok::Dot: return ".";
      case Tok::Semicolon: return ";";
      case Tok::LParen: return "(";
      case Tok::RParen: return ")";
      case Tok::LBracket: return "[";
      case Tok::RBracket: return "]";
      case Tok::Pipe: return "|";
      case Tok::Colon: return ":";
    }
    return "?";
}

namespace {

bool
isBinaryChar(char c)
{
    switch (c) {
      case '+': case '-': case '*': case '/': case '\\': case '<':
      case '>': case '=': case '~': case '@': case '%': case '&':
      case '?': case '!': case ',':
        return true;
      default:
        return false;
    }
}

} // namespace

std::vector<Token>
lex(const std::string &src)
{
    std::vector<Token> out;
    std::size_t i = 0;
    int line = 1;

    auto peek = [&](std::size_t k = 0) -> char {
        return i + k < src.size() ? src[i + k] : '\0';
    };

    while (i < src.size()) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '"') { // comment
            ++i;
            while (i < src.size() && src[i] != '"') {
                if (src[i] == '\n')
                    ++line;
                ++i;
            }
            sim::fatalIf(i >= src.size(), "lex: unterminated comment at "
                         "line ", line);
            ++i;
            continue;
        }

        Token t;
        t.line = line;

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t start = i;
            while (i < src.size() &&
                   (std::isalnum(static_cast<unsigned char>(src[i])) ||
                    src[i] == '_'))
                ++i;
            t.text = src.substr(start, i - start);
            if (peek() == ':' && peek(1) != '=') {
                ++i;
                t.kind = Tok::Keyword;
                t.text += ':';
            } else {
                t.kind = Tok::Ident;
            }
            out.push_back(t);
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '-' && std::isdigit(static_cast<unsigned char>(
                             peek(1))) &&
             (out.empty() || (out.back().kind != Tok::Ident &&
                              out.back().kind != Tok::Integer &&
                              out.back().kind != Tok::Float &&
                              out.back().kind != Tok::RParen)))) {
            std::size_t start = i;
            if (c == '-')
                ++i;
            bool dot = false;
            while (i < src.size() &&
                   (std::isdigit(static_cast<unsigned char>(src[i])) ||
                    (src[i] == '.' && !dot &&
                     std::isdigit(static_cast<unsigned char>(
                         peek(1)))))) {
                if (src[i] == '.')
                    dot = true;
                ++i;
            }
            std::string text = src.substr(start, i - start);
            if (dot) {
                t.kind = Tok::Float;
                t.floatVal = std::strtod(text.c_str(), nullptr);
            } else {
                t.kind = Tok::Integer;
                t.intVal = std::strtoll(text.c_str(), nullptr, 10);
            }
            t.text = text;
            out.push_back(t);
            continue;
        }

        if (c == '\'') {
            ++i;
            std::string s;
            while (i < src.size() && src[i] != '\'') {
                if (src[i] == '\n')
                    ++line;
                s += src[i++];
            }
            sim::fatalIf(i >= src.size(),
                         "lex: unterminated string at line ", line);
            ++i;
            t.kind = Tok::String;
            t.text = s;
            out.push_back(t);
            continue;
        }

        if (c == '#') {
            ++i;
            std::size_t start = i;
            while (i < src.size() &&
                   (std::isalnum(static_cast<unsigned char>(src[i])) ||
                    src[i] == '_' || src[i] == ':'))
                ++i;
            sim::fatalIf(i == start, "lex: empty symbol at line ", line);
            t.kind = Tok::Symbol;
            t.text = src.substr(start, i - start);
            out.push_back(t);
            continue;
        }

        if (c == ':' && peek(1) == '=') {
            i += 2;
            t.kind = Tok::Assign;
            out.push_back(t);
            continue;
        }

        switch (c) {
          case '^': t.kind = Tok::Caret; break;
          case '.': t.kind = Tok::Dot; break;
          case ';': t.kind = Tok::Semicolon; break;
          case '(': t.kind = Tok::LParen; break;
          case ')': t.kind = Tok::RParen; break;
          case '[': t.kind = Tok::LBracket; break;
          case ']': t.kind = Tok::RBracket; break;
          case '|': t.kind = Tok::Pipe; break;
          case ':': t.kind = Tok::Colon; break;
          default:
            if (isBinaryChar(c)) {
                std::size_t start = i;
                while (i < src.size() && isBinaryChar(src[i]) &&
                       i - start < 2)
                    ++i;
                t.kind = Tok::BinarySel;
                t.text = src.substr(start, i - start);
                out.push_back(t);
                continue;
            }
            sim::fatal("lex: unexpected character '", std::string(1, c),
                       "' at line ", line);
        }
        ++i;
        out.push_back(t);
    }

    Token end;
    end.kind = Tok::End;
    end.line = line;
    out.push_back(end);
    return out;
}

} // namespace com::lang
