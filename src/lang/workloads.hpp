/**
 * @file
 * Smalltalk workloads: the measurement programs of the reproduction.
 *
 * Each workload carries its source (compiled by BOTH back ends: the
 * COM three-address compiler and the stack baseline), the integer its
 * main method returns (a checksum the tests verify on both machines),
 * and a short description. The suite covers the behaviours the paper's
 * claims rest on:
 *
 *  - polymorphic sort: one sort method over SmallInt and Point
 *    receivers — the late-binding "general code" story of Section 2.1;
 *  - richards-like task scheduler: message-dense OO control flow;
 *  - nqueens / bintree / sieve: recursion and allocation pressure
 *    (context statistics of Section 2.3);
 *  - matrix: floating point arithmetic (mixed-mode primitives);
 *  - bank: class hierarchies with super-defined fields;
 *  - dictionary: an open-addressing hash table written in the guest
 *    language (method lookup stress).
 */

#ifndef COMSIM_LANG_WORKLOADS_HPP
#define COMSIM_LANG_WORKLOADS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace com::lang {

/** One guest workload. */
struct Workload
{
    std::string name;
    std::string description;
    std::string source;
    std::int32_t expected; ///< main's integer return value
};

/** The full suite. */
const std::vector<Workload> &workloads();

/** The suite's workload names, in suite order. */
std::vector<std::string> workloadNames();

/**
 * Look a workload up by name. Fatal if unknown — the error lists the
 * available names so a mistyped --workloads= flag is self-explaining.
 */
const Workload &workload(const std::string &name);

/** @return the workload named @p name, or nullptr if unknown. */
const Workload *findWorkload(const std::string &name);

} // namespace com::lang

#endif // COMSIM_LANG_WORKLOADS_HPP
