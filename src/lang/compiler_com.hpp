/**
 * @file
 * The Smalltalk -> COM compiler (paper Section 4, Figure 9).
 *
 * Maps the Smalltalk execution model onto the COM: each method runs in
 * a 32-word context laid out per Figure 8 (RCP, RIP, arg0 = result
 * pointer, arg1 = receiver, further arguments, then temporaries, then
 * expression temporaries — the subset forgoes an expression stack, so
 * "a temporary ... may arise from expression evaluation").
 *
 * Sends compile to abstract instructions: well-known selectors emit
 * their primitive opcode tokens directly (+ stays one instruction when
 * both operands are small integers at run time, and becomes a method
 * call for user classes — late binding with no compiler involvement).
 * Unary and single-argument user selectors use the three-address
 * format, whose operand expansion the hardware performs; multi-keyword
 * selectors stage their arguments into the next context and use the
 * extended send format (Section 3.5's zero-operand instructions).
 *
 * Control flow (ifTrue:/ifFalse:/and:/or:/whileTrue:/timesRepeat:/
 * to:do:/to:by:do:) inlines blocks into branches; block contexts are
 * not created (closures out of scope; see DESIGN.md).
 *
 * Returns compile exactly as the paper's example: the result is stored
 * through the caller-provided pointer in arg0 and the instruction's
 * return bit ends the activation ("c0=c2 (return)").
 */

#ifndef COMSIM_LANG_COMPILER_COM_HPP
#define COMSIM_LANG_COMPILER_COM_HPP

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/machine.hpp"
#include "lang/ast.hpp"

namespace com::lang {

/** Compilation results for inspection. */
struct CompiledProgram
{
    std::uint64_t entryVaddr = 0;       ///< the main method object
    std::size_t methodsInstalled = 0;
    std::size_t instructionsEmitted = 0;
};

/** The COM back end. */
class ComCompiler
{
  public:
    explicit ComCompiler(core::Machine &machine) : machine_(machine) {}

    /** Compile a parsed program into @p machine_. */
    CompiledProgram compile(const Program &program);

    /** Parse and compile source text. */
    CompiledProgram compileSource(const std::string &source);

  private:
    friend class MethodEmitter;

    /** Define all classes (any declaration order). */
    void defineClasses(const Program &program);
    /** Field name -> index maps, inherited fields included. */
    std::unordered_map<std::string, std::uint32_t>
    fieldMapOf(const ClassDef &cd) const;

    core::Machine &machine_;
    std::unordered_map<std::string, const ClassDef *> classByName_;
};

} // namespace com::lang

#endif // COMSIM_LANG_COMPILER_COM_HPP
