/**
 * @file
 * Recursive-descent parser for the Smalltalk subset.
 *
 * Grammar (Smalltalk-80 expression precedence: unary > binary >
 * keyword):
 *
 *   program   := (classDef | mainDef)*
 *   classDef  := 'class' IDENT ('extends' IDENT)?
 *                '[' ('|' IDENT* '|')? methodDef* ']'
 *   methodDef := pattern '[' ('|' IDENT* '|')? statements ']'
 *   pattern   := IDENT | BINSEL IDENT | (KEYWORD IDENT)+
 *   mainDef   := 'main' '[' ('|' IDENT* '|')? statements ']'
 *   statements:= (statement '.')* statement?
 *   statement := '^' expr | expr
 *   expr      := IDENT ':=' expr | keywordExpr
 *   keywordExpr := binExpr (KEYWORD binExpr)*     ( one send )
 *   binExpr   := unaryExpr (BINSEL unaryExpr)*
 *   unaryExpr := primary IDENT*
 *   primary   := literal | IDENT | 'self' | '(' expr ')' | block
 *   block     := '[' (':' IDENT)* ('|')? statements ']'
 *
 * Cascades (';') are supported on keyword/binary sends.
 */

#ifndef COMSIM_LANG_PARSER_HPP
#define COMSIM_LANG_PARSER_HPP

#include <string>

#include "lang/ast.hpp"
#include "lang/lexer.hpp"

namespace com::lang {

/** Parse @p source; fatal()s with line numbers on syntax errors. */
Program parse(const std::string &source);

} // namespace com::lang

#endif // COMSIM_LANG_PARSER_HPP
