#include "lang/parser.hpp"

#include "sim/logging.hpp"

namespace com::lang {

namespace {

/** Parser state over the token stream. */
class Parser
{
  public:
    explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

    Program
    parseProgram()
    {
        Program p;
        while (cur().kind != Tok::End) {
            sim::fatalIf(cur().kind != Tok::Ident, "parse line ",
                         cur().line, ": expected 'class' or 'main', got ",
                         tokName(cur().kind));
            if (cur().text == "class") {
                p.classes.push_back(parseClass());
            } else if (cur().text == "main") {
                sim::fatalIf(p.hasMain, "parse line ", cur().line,
                             ": duplicate main");
                advance();
                expect(Tok::LBracket, "main body");
                parseTemps(p.mainTemps);
                p.mainBody = parseStatements();
                expect(Tok::RBracket, "end of main");
                p.hasMain = true;
            } else {
                sim::fatal("parse line ", cur().line,
                           ": expected 'class' or 'main', got '",
                           cur().text, "'");
            }
        }
        return p;
    }

  private:
    const Token &cur() const { return toks_[pos_]; }
    const Token &
    peek(std::size_t k = 1) const
    {
        std::size_t i = pos_ + k;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }
    void advance() { if (pos_ + 1 < toks_.size()) ++pos_; }

    void
    expect(Tok kind, const char *what)
    {
        sim::fatalIf(cur().kind != kind, "parse line ", cur().line,
                     ": expected ", tokName(kind), " (", what, "), got ",
                     tokName(cur().kind), " '", cur().text, "'");
        advance();
    }

    std::string
    expectIdent(const char *what)
    {
        sim::fatalIf(cur().kind != Tok::Ident, "parse line ", cur().line,
                     ": expected identifier (", what, ")");
        std::string s = cur().text;
        advance();
        return s;
    }

    ClassDef
    parseClass()
    {
        ClassDef cd;
        cd.line = cur().line;
        advance(); // 'class'
        cd.name = expectIdent("class name");
        if (cur().kind == Tok::Ident && cur().text == "extends") {
            advance();
            cd.superName = expectIdent("superclass name");
        }
        expect(Tok::LBracket, "class body");
        parseTemps(cd.fields);
        while (cur().kind != Tok::RBracket)
            cd.methods.push_back(parseMethod());
        expect(Tok::RBracket, "end of class");
        return cd;
    }

    void
    parseTemps(std::vector<std::string> &out)
    {
        if (cur().kind != Tok::Pipe)
            return;
        advance();
        while (cur().kind == Tok::Ident) {
            out.push_back(cur().text);
            advance();
        }
        expect(Tok::Pipe, "end of variable list");
    }

    MethodDef
    parseMethod()
    {
        MethodDef md;
        md.line = cur().line;
        if (cur().kind == Tok::Ident) {
            md.selector = cur().text;
            advance();
        } else if (cur().kind == Tok::BinarySel) {
            md.selector = cur().text;
            advance();
            md.argNames.push_back(expectIdent("binary argument"));
        } else if (cur().kind == Tok::Keyword) {
            while (cur().kind == Tok::Keyword) {
                md.selector += cur().text;
                advance();
                md.argNames.push_back(expectIdent("keyword argument"));
            }
        } else {
            sim::fatal("parse line ", cur().line,
                       ": expected method pattern");
        }
        expect(Tok::LBracket, "method body");
        parseTemps(md.temps);
        md.body = parseStatements();
        expect(Tok::RBracket, "end of method");
        return md;
    }

    std::vector<ExprPtr>
    parseStatements()
    {
        std::vector<ExprPtr> stmts;
        while (cur().kind != Tok::RBracket && cur().kind != Tok::End) {
            bool is_return = false;
            if (cur().kind == Tok::Caret) {
                is_return = true;
                advance();
            }
            ExprPtr e = parseExpr();
            e->isReturn = is_return;
            stmts.push_back(std::move(e));
            if (cur().kind == Tok::Dot) {
                advance();
                continue;
            }
            break;
        }
        return stmts;
    }

    ExprPtr
    parseExpr()
    {
        if (cur().kind == Tok::Ident && peek().kind == Tok::Assign) {
            int line = cur().line;
            std::string name = cur().text;
            advance();
            advance();
            ExprPtr value = parseExpr();
            ExprPtr e = Expr::make(ExprKind::Assign, line);
            e->text = name;
            e->args.push_back(std::move(value));
            return e;
        }
        return parseKeywordExpr();
    }

    ExprPtr
    parseKeywordExpr()
    {
        ExprPtr recv = parseBinaryExpr();
        if (cur().kind != Tok::Keyword)
            return parseCascadeTail(std::move(recv));
        int line = cur().line;
        std::string selector;
        std::vector<ExprPtr> args;
        while (cur().kind == Tok::Keyword) {
            selector += cur().text;
            advance();
            args.push_back(parseBinaryExpr());
        }
        ExprPtr e = Expr::make(ExprKind::Send, line);
        e->text = selector;
        e->receiver = std::move(recv);
        e->args = std::move(args);
        return parseCascadeTail(std::move(e));
    }

    /** ';' cascades: value is the original receiver's last message. */
    ExprPtr
    parseCascadeTail(ExprPtr first)
    {
        if (cur().kind != Tok::Semicolon ||
            first->kind != ExprKind::Send)
            return first;
        ExprPtr casc = Expr::make(ExprKind::Cascade, first->line);
        while (cur().kind == Tok::Semicolon) {
            advance();
            // Each cascade member: selector (+args) without receiver.
            ExprPtr msg = Expr::make(ExprKind::Send, cur().line);
            if (cur().kind == Tok::Ident) {
                msg->text = cur().text;
                advance();
            } else if (cur().kind == Tok::BinarySel) {
                msg->text = cur().text;
                advance();
                msg->args.push_back(parseUnaryExpr());
            } else if (cur().kind == Tok::Keyword) {
                while (cur().kind == Tok::Keyword) {
                    msg->text += cur().text;
                    advance();
                    msg->args.push_back(parseBinaryExpr());
                }
            } else {
                sim::fatal("parse line ", cur().line,
                           ": expected message after ';'");
            }
            casc->cascade.push_back(std::move(msg));
        }
        casc->receiver = std::move(first);
        return casc;
    }

    ExprPtr
    parseBinaryExpr()
    {
        ExprPtr left = parseUnaryExpr();
        while (cur().kind == Tok::BinarySel) {
            int line = cur().line;
            std::string sel = cur().text;
            advance();
            ExprPtr right = parseUnaryExpr();
            ExprPtr e = Expr::make(ExprKind::Send, line);
            e->text = sel;
            e->receiver = std::move(left);
            e->args.push_back(std::move(right));
            left = std::move(e);
        }
        return left;
    }

    ExprPtr
    parseUnaryExpr()
    {
        ExprPtr recv = parsePrimary();
        while (cur().kind == Tok::Ident && peek().kind != Tok::Assign) {
            int line = cur().line;
            std::string sel = cur().text;
            advance();
            ExprPtr e = Expr::make(ExprKind::Send, line);
            e->text = sel;
            e->receiver = std::move(recv);
            recv = std::move(e);
        }
        return recv;
    }

    ExprPtr
    parsePrimary()
    {
        const Token &t = cur();
        switch (t.kind) {
          case Tok::Integer: {
            ExprPtr e = Expr::make(ExprKind::IntLit, t.line);
            e->intVal = t.intVal;
            advance();
            return e;
          }
          case Tok::Float: {
            ExprPtr e = Expr::make(ExprKind::FloatLit, t.line);
            e->floatVal = t.floatVal;
            advance();
            return e;
          }
          case Tok::String: {
            ExprPtr e = Expr::make(ExprKind::StringLit, t.line);
            e->text = t.text;
            advance();
            return e;
          }
          case Tok::Symbol: {
            ExprPtr e = Expr::make(ExprKind::SymbolLit, t.line);
            e->text = t.text;
            advance();
            return e;
          }
          case Tok::LParen: {
            advance();
            ExprPtr e = parseExpr();
            expect(Tok::RParen, "closing parenthesis");
            return e;
          }
          case Tok::LBracket:
            return parseBlock();
          case Tok::Ident: {
            ExprPtr e;
            if (t.text == "self")
                e = Expr::make(ExprKind::SelfRef, t.line);
            else if (t.text == "true")
                e = Expr::make(ExprKind::TrueLit, t.line);
            else if (t.text == "false")
                e = Expr::make(ExprKind::FalseLit, t.line);
            else if (t.text == "nil")
                e = Expr::make(ExprKind::NilLit, t.line);
            else {
                e = Expr::make(ExprKind::VarRef, t.line);
                e->text = t.text;
            }
            advance();
            return e;
          }
          default:
            sim::fatal("parse line ", t.line,
                       ": unexpected token ", tokName(t.kind),
                       " in expression");
        }
    }

    ExprPtr
    parseBlock()
    {
        int line = cur().line;
        expect(Tok::LBracket, "block");
        ExprPtr e = Expr::make(ExprKind::Block, line);
        while (cur().kind == Tok::Colon) {
            advance();
            e->params.push_back(expectIdent("block parameter"));
        }
        if (!e->params.empty())
            expect(Tok::Pipe, "block parameter list");
        e->body = parseStatements();
        expect(Tok::RBracket, "end of block");
        return e;
    }

    std::vector<Token> toks_;
    std::size_t pos_ = 0;
};

} // namespace

Program
parse(const std::string &source)
{
    Parser p(lex(source));
    return p.parseProgram();
}

} // namespace com::lang
