#include "lang/compiler_com.hpp"

#include <cctype>

#include "lang/parser.hpp"
#include "sim/logging.hpp"
#include "sim/strutil.hpp"

namespace com::lang {

using core::Instr;
using core::Machine;
using core::Mode;
using core::Op;
using core::Operand;
using mem::ClassId;
using mem::Word;
using obj::kCtxArg0;
using obj::kCtxFirstArg;
using obj::kCtxReceiver;

namespace {

/** Well-known selectors that compile straight to primitive tokens. */
struct PrimSel
{
    const char *selector;
    Op op;
    unsigned arity;
};

const PrimSel kPrimSels[] = {
    {"+", Op::Add, 1},        {"-", Op::Sub, 1},
    {"*", Op::Mul, 1},        {"/", Op::Div, 1},
    {"\\\\", Op::Mod, 1},     {"<", Op::Lt, 1},
    {"<=", Op::Le, 1},        {"=", Op::Eq, 1},
    {"~=", Op::Ne, 1},        {"==", Op::Same, 1},
    {"bitAnd:", Op::And, 1},  {"bitOr:", Op::Or, 1},
    {"bitXor:", Op::Xor, 1},  {"bitShift:", Op::Shift, 1},
    {"negated", Op::Neg, 0},  {"bitNot", Op::Not, 0},
};

bool
isCapitalized(const std::string &s)
{
    return !s.empty() && std::isupper(static_cast<unsigned char>(s[0]));
}

} // namespace

/**
 * Emits the code of one method: slot allocation, expression
 * compilation, label patching.
 */
class MethodEmitter
{
  public:
    MethodEmitter(ComCompiler &cc, Machine &m,
                  const std::unordered_map<std::string, std::uint32_t>
                      &fields,
                  const std::vector<std::string> &args,
                  const std::vector<std::string> &temps, int line)
        : cc_(cc), machine_(m), fields_(fields), line_(line)
    {
        std::uint8_t slot = kCtxFirstArg;
        for (const std::string &a : args) {
            sim::fatalIf(vars_.count(a), "line ", line,
                         ": duplicate argument '", a, "'");
            vars_[a] = slot++;
        }
        for (const std::string &t : temps) {
            sim::fatalIf(vars_.count(t), "line ", line,
                         ": duplicate temporary '", t, "'");
            vars_[t] = slot++;
        }
        firstScratch_ = slot;
        nextScratch_ = slot;
        checkSlots(line);
    }

    /** Compile the statement list and finish with a default return. */
    std::vector<Instr>
    emitBody(const std::vector<ExprPtr> &body)
    {
        bool ended_with_return = false;
        for (const ExprPtr &stmt : body) {
            ended_with_return = false;
            if (stmt->isReturn) {
                Operand v = value(*stmt);
                emitReturn(v);
                ended_with_return = true;
            } else {
                Operand v = value(*stmt);
                release(v);
            }
            resetScratch();
        }
        if (!ended_with_return)
            emitReturn(Operand::cur(kCtxReceiver)); // ^self
        patchLabels();
        return std::move(code_);
    }

  private:
    // ------------------------------------------------------------------
    // Slots
    // ------------------------------------------------------------------

    void
    checkSlots(int line) const
    {
        sim::fatalIf(nextScratch_ > 32, "line ", line,
                     ": method needs more than 32 context words; the "
                     "COM would allocate overflow space from the heap "
                     "(unsupported by this compiler)");
    }

    std::uint8_t
    allocScratch(int line)
    {
        std::uint8_t s = nextScratch_++;
        checkSlots(line);
        return s;
    }

    void resetScratch() { nextScratch_ = firstScratch_; }

    /** Free a scratch operand if it is the most recent allocation. */
    void
    release(const Operand &o)
    {
        if (o.mode == Mode::CtxCur && o.index >= firstScratch_ &&
            o.index + 1 == nextScratch_)
            --nextScratch_;
    }

    // ------------------------------------------------------------------
    // Emission helpers
    // ------------------------------------------------------------------

    void emit(Instr i) { code_.push_back(i); }

    /** Ensure @p o can sit in the B descriptor (materialize consts). */
    Operand
    asSlot(const Operand &o, int line)
    {
        if (o.mode != Mode::Const)
            return o;
        std::uint8_t s = allocScratch(line);
        emit(Instr::make(Op::Move, Operand::cur(s), o,
                         Operand::cur(0)));
        return Operand::cur(s);
    }

    Operand
    constant(Word w)
    {
        return Operand::cons(machine_.constants().intern(w));
    }

    std::size_t
    newLabel()
    {
        labels_.push_back(SIZE_MAX);
        return labels_.size() - 1;
    }

    void bind(std::size_t label) { labels_[label] = code_.size(); }

    /** Emit a branch to @p label, patched later. Kind: 'j','t','f'. */
    void
    emitBranch(char kind, std::size_t label, Operand cond)
    {
        patches_.push_back(Patch{code_.size(), label, kind});
        // Placeholder: condition in A, offset patched into C.
        Operand a = kind == 'j' ? constant(machine_.constants()
                                               .trueWord())
                                : cond;
        emit(Instr::make(Op::Fjmp, a, Operand::cur(0),
                         Operand::cur(0)));
    }

    void
    patchLabels()
    {
        for (const Patch &p : patches_) {
            std::size_t target = labels_[p.label];
            sim::panicIf(target == SIZE_MAX, "unbound label");
            std::int64_t delta = static_cast<std::int64_t>(target) -
                                 static_cast<std::int64_t>(p.instr) - 1;
            Instr &ins = code_[p.instr];
            bool forward = delta >= 0;
            std::int64_t mag = forward ? delta : -delta;
            if (p.kind == 'f')
                ins.op = forward ? Op::FjmpF : Op::RjmpF;
            else
                ins.op = forward ? Op::Fjmp : Op::Rjmp;
            ins.c = constant(Word::fromInt(
                static_cast<std::int32_t>(mag)));
        }
    }

    void
    emitReturn(const Operand &v)
    {
        // "*c0 = value (return)": store through the result pointer in
        // arg0 and set the return bit.
        Operand value_slot = v;
        emit(Instr::make(Op::PutRes, Operand::cur(kCtxArg0), value_slot,
                         Operand::cur(0), /*ret=*/true));
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /** Compile @p e, returning the operand holding its value. */
    Operand
    value(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::IntLit:
            return constant(Word::fromInt(
                static_cast<std::int32_t>(e.intVal)));
          case ExprKind::FloatLit:
            return constant(Word::fromFloat(
                static_cast<float>(e.floatVal)));
          case ExprKind::StringLit:
            return constant(Word::fromPointer(
                static_cast<std::uint32_t>(
                    machine_.makeString(e.text))));
          case ExprKind::SymbolLit:
            return constant(Word::fromAtom(
                machine_.selectors().intern(e.text)));
          case ExprKind::TrueLit:
            return constant(machine_.constants().trueWord());
          case ExprKind::FalseLit:
            return constant(machine_.constants().falseWord());
          case ExprKind::NilLit:
            return constant(machine_.constants().nilWord());
          case ExprKind::SelfRef:
            return Operand::cur(kCtxReceiver);
          case ExprKind::VarRef:
            return compileVarRef(e);
          case ExprKind::Assign:
            return compileAssign(e);
          case ExprKind::Send:
            return compileSend(e);
          case ExprKind::Cascade:
            return compileCascade(e);
          case ExprKind::Block:
            sim::fatal("line ", e.line,
                       ": blocks are only supported as arguments of "
                       "the inlined control-flow selectors");
        }
        sim::panic("unhandled expression kind");
    }

    Operand
    compileVarRef(const Expr &e)
    {
        auto vit = vars_.find(e.text);
        if (vit != vars_.end())
            return Operand::cur(vit->second);
        auto fit = fields_.find(e.text);
        if (fit != fields_.end()) {
            std::uint8_t dst = allocScratch(e.line);
            emit(Instr::make(Op::At, Operand::cur(dst),
                             Operand::cur(kCtxReceiver),
                             constant(Word::fromInt(
                                 static_cast<std::int32_t>(
                                     fit->second)))));
            return Operand::cur(dst);
        }
        if (isCapitalized(e.text)) {
            // Class literal: the class-name atom (receiver of new/new:).
            return constant(Word::fromAtom(
                machine_.selectors().intern(e.text)));
        }
        sim::fatal("line ", e.line, ": unknown variable '", e.text,
                   "'");
    }

    Operand
    compileAssign(const Expr &e)
    {
        const Expr &rhs = *e.args[0];
        auto vit = vars_.find(e.text);
        if (vit != vars_.end()) {
            Operand dst = Operand::cur(vit->second);
            Operand v = value(rhs);
            if (!(v == dst))
                emit(Instr::make(Op::Move, dst, v, Operand::cur(0)));
            release(v);
            return dst;
        }
        auto fit = fields_.find(e.text);
        if (fit != fields_.end()) {
            Operand v = asSlot(value(rhs), e.line);
            emit(Instr::make(Op::AtPut, v,
                             Operand::cur(kCtxReceiver),
                             constant(Word::fromInt(
                                 static_cast<std::int32_t>(
                                     fit->second)))));
            return v;
        }
        sim::fatal("line ", e.line, ": assignment to unknown variable '",
                   e.text, "'");
    }

    Operand
    compileCascade(const Expr &e)
    {
        // Evaluate the full first send; re-send the cascaded messages
        // to the same receiver. Value: the last message's result.
        const Expr &first = *e.receiver;
        sim::fatalIf(first.kind != ExprKind::Send, "line ", e.line,
                     ": cascade needs a message receiver");
        Operand recv = asSlot(value(*first.receiver), e.line);

        Operand result = emitSendTo(recv, first.text, first.args,
                                    first.line);
        for (const ExprPtr &msg : e.cascade) {
            release(result);
            result = emitSendTo(recv, msg->text, msg->args, msg->line);
        }
        return result;
    }

    Operand
    compileSend(const Expr &e)
    {
        // Inlined control flow first.
        if (Operand out; compileControlFlow(e, out))
            return out;

        Operand recv = asSlot(value(*e.receiver), e.line);
        return emitSendTo(recv, e.text, e.args, e.line);
    }

    /** Emit a (possibly primitive) send of @p sel to @p recv. */
    Operand
    emitSendTo(Operand recv, const std::string &sel,
               const std::vector<ExprPtr> &args, int line)
    {
        // '>' and '>=' have no opcode tokens of their own: the paper's
        // comparison set is <, <=, =, ~=; the compiler swaps operands.
        if (sel == ">" || sel == ">=") {
            Operand arg = asSlot(value(*args[0]), line);
            std::uint8_t dst = allocScratch(line);
            emit(Instr::make(sel == ">" ? Op::Lt : Op::Le,
                             Operand::cur(dst), arg, recv));
            release(arg);
            return Operand::cur(dst);
        }

        // at:/at:put: are real messages (a class may override them);
        // the At/AtPut *instructions* are reserved for field access.
        // Their default implementations are the Object host routines.

        for (const PrimSel &ps : kPrimSels) {
            if (sel == ps.selector) {
                Operand arg = ps.arity
                                  ? value(*args[0])
                                  : Operand::cur(0);
                std::uint8_t dst = allocScratch(line);
                emit(Instr::make(ps.op, Operand::cur(dst), recv, arg));
                release(arg);
                return Operand::cur(dst);
            }
        }

        unsigned arity = static_cast<unsigned>(args.size());
        Op token = arity <= 1 ? machine_.assignOpcode(sel)
                              : Op::kExtendedOp;
        std::uint8_t dst = allocScratch(line);

        if (token != Op::kExtendedOp) {
            // Three-address send: the hardware expands and copies the
            // operands into the new context.
            Operand arg = arity ? value(*args[0]) : Operand::cur(0);
            emit(Instr::make(token, Operand::cur(dst), recv, arg));
            release(arg);
            return Operand::cur(dst);
        }

        // Extended send: stage result pointer, receiver and arguments
        // into the next context, then issue the zero-operand send.
        std::vector<Operand> arg_ops;
        for (const ExprPtr &a : args)
            arg_ops.push_back(value(*a));
        emit(Instr::make(Op::Movea, Operand::next(kCtxArg0),
                         Operand::cur(dst), Operand::cur(0)));
        emit(Instr::make(Op::Move, Operand::next(kCtxReceiver), recv,
                         Operand::cur(0)));
        for (std::size_t i = 0; i < arg_ops.size(); ++i)
            emit(Instr::make(Op::Move,
                             Operand::next(static_cast<std::uint8_t>(
                                 kCtxFirstArg + i)),
                             arg_ops[i], Operand::cur(0)));
        for (auto it = arg_ops.rbegin(); it != arg_ops.rend(); ++it)
            release(*it);
        std::uint32_t sid = machine_.selectors().intern(sel);
        emit(Instr::makeSend(sid, arity ? 2 : 1));
        return Operand::cur(dst);
    }

    // ------------------------------------------------------------------
    // Inlined control flow
    // ------------------------------------------------------------------

    /** Compile the block @p b inline; value lands in @p dst. */
    void
    inlineBlockInto(const Expr &b, std::uint8_t dst)
    {
        sim::fatalIf(b.kind != ExprKind::Block, "line ", b.line,
                     ": expected a block argument here");
        sim::fatalIf(!b.params.empty(), "line ", b.line,
                     ": this block takes no parameters");
        Operand last = constant(machine_.constants().nilWord());
        for (const ExprPtr &stmt : b.body) {
            if (stmt->isReturn) {
                Operand v = value(*stmt);
                emitReturn(v);
                release(v);
                continue;
            }
            release(last);
            last = value(*stmt);
        }
        if (!(last == Operand::cur(dst)))
            emit(Instr::make(Op::Move, Operand::cur(dst), last,
                             Operand::cur(0)));
        release(last);
    }

    bool
    compileControlFlow(const Expr &e, Operand &out)
    {
        const std::string &sel = e.text;

        if (sel == "ifTrue:" || sel == "ifFalse:" ||
            sel == "ifTrue:ifFalse:" || sel == "ifFalse:ifTrue:") {
            Operand cond = value(*e.receiver);
            std::uint8_t dst = allocScratch(e.line);
            bool true_first = sel[2] == 'T'; // ifTrue...
            std::size_t l_other = newLabel();
            std::size_t l_end = newLabel();
            emitBranch(true_first ? 'f' : 't', l_other, cond);
            release(cond);
            inlineBlockInto(*e.args[0], dst);
            emitBranch('j', l_end, Operand::cur(0));
            bind(l_other);
            if (e.args.size() > 1) {
                inlineBlockInto(*e.args[1], dst);
            } else {
                emit(Instr::make(Op::Move, Operand::cur(dst),
                                 constant(machine_.constants()
                                              .nilWord()),
                                 Operand::cur(0)));
            }
            bind(l_end);
            out = Operand::cur(dst);
            return true;
        }

        if (sel == "and:" || sel == "or:") {
            Operand cond = value(*e.receiver);
            std::uint8_t dst = allocScratch(e.line);
            if (!(cond == Operand::cur(dst)))
                emit(Instr::make(Op::Move, Operand::cur(dst), cond,
                                 Operand::cur(0)));
            release(cond);
            std::size_t l_end = newLabel();
            emitBranch(sel == "and:" ? 'f' : 't', l_end,
                       Operand::cur(dst));
            inlineBlockInto(*e.args[0], dst);
            bind(l_end);
            out = Operand::cur(dst);
            return true;
        }

        if (sel == "whileTrue:" || sel == "whileFalse:") {
            sim::fatalIf(e.receiver->kind != ExprKind::Block, "line ",
                         e.line, ": ", sel,
                         " needs a block receiver [cond]");
            std::uint8_t cond_slot = allocScratch(e.line);
            std::size_t l_top = newLabel();
            std::size_t l_end = newLabel();
            bind(l_top);
            inlineBlockInto(*e.receiver, cond_slot);
            emitBranch(sel == "whileTrue:" ? 'f' : 't', l_end,
                       Operand::cur(cond_slot));
            std::uint8_t body_slot = allocScratch(e.line);
            inlineBlockInto(*e.args[0], body_slot);
            --nextScratch_; // body slot
            emitBranch('j', l_top, Operand::cur(0));
            bind(l_end);
            out = constant(machine_.constants().nilWord());
            --nextScratch_; // cond slot
            return true;
        }

        if (sel == "timesRepeat:") {
            Operand n = asSlot(value(*e.receiver), e.line);
            std::uint8_t i_slot = allocScratch(e.line);
            std::uint8_t t_slot = allocScratch(e.line);
            emit(Instr::make(Op::Move, Operand::cur(i_slot),
                             constant(Word::fromInt(0)),
                             Operand::cur(0)));
            std::size_t l_top = newLabel();
            std::size_t l_end = newLabel();
            bind(l_top);
            emit(Instr::make(Op::Lt, Operand::cur(t_slot),
                             Operand::cur(i_slot), n));
            emitBranch('f', l_end, Operand::cur(t_slot));
            std::uint8_t body_slot = allocScratch(e.line);
            inlineBlockInto(*e.args[0], body_slot);
            --nextScratch_;
            emit(Instr::make(Op::Add, Operand::cur(i_slot),
                             Operand::cur(i_slot),
                             constant(Word::fromInt(1))));
            emitBranch('j', l_top, Operand::cur(0));
            bind(l_end);
            out = constant(machine_.constants().nilWord());
            nextScratch_ = i_slot; // free i and t
            release(n);
            return true;
        }

        if (sel == "to:do:" || sel == "to:by:do:") {
            const Expr &blk = *e.args.back();
            sim::fatalIf(blk.kind != ExprKind::Block ||
                         blk.params.size() != 1,
                         "line ", e.line,
                         ": to:do: needs a one-parameter block");
            std::int64_t by = 1;
            if (sel == "to:by:do:") {
                sim::fatalIf(e.args[1]->kind != ExprKind::IntLit,
                             "line ", e.line,
                             ": to:by:do: needs a literal integer step");
                by = e.args[1]->intVal;
                sim::fatalIf(by == 0, "line ", e.line,
                             ": zero step in to:by:do:");
            }
            Operand from = value(*e.receiver);
            Operand to = asSlot(value(*e.args[0]), e.line);

            std::uint8_t i_slot = allocScratch(e.line);
            sim::fatalIf(vars_.count(blk.params[0]), "line ", e.line,
                         ": loop variable shadows an existing name");
            vars_[blk.params[0]] = i_slot;
            std::uint8_t t_slot = allocScratch(e.line);

            emit(Instr::make(Op::Move, Operand::cur(i_slot), from,
                             Operand::cur(0)));
            release(from);
            std::size_t l_top = newLabel();
            std::size_t l_end = newLabel();
            bind(l_top);
            if (by > 0)
                emit(Instr::make(Op::Le, Operand::cur(t_slot),
                                 Operand::cur(i_slot), to));
            else
                emit(Instr::make(Op::Le, Operand::cur(t_slot), to,
                                 Operand::cur(i_slot)));
            emitBranch('f', l_end, Operand::cur(t_slot));
            std::uint8_t body_slot = allocScratch(e.line);
            // Inline the body with the loop variable bound.
            {
                Operand last = constant(machine_.constants().nilWord());
                for (const ExprPtr &stmt : blk.body) {
                    if (stmt->isReturn) {
                        Operand v = value(*stmt);
                        emitReturn(v);
                        release(v);
                        continue;
                    }
                    release(last);
                    last = value(*stmt);
                }
                release(last);
                (void)body_slot;
            }
            --nextScratch_;
            emit(Instr::make(Op::Add, Operand::cur(i_slot),
                             Operand::cur(i_slot),
                             constant(Word::fromInt(
                                 static_cast<std::int32_t>(by)))));
            emitBranch('j', l_top, Operand::cur(0));
            bind(l_end);
            vars_.erase(blk.params[0]);
            out = constant(machine_.constants().nilWord());
            nextScratch_ = i_slot; // free the loop variable and t
            release(to);
            return true;
        }

        return false;
    }

    struct Patch
    {
        std::size_t instr;
        std::size_t label;
        char kind; // 'j' unconditional, 't' if-true, 'f' if-false
    };

    ComCompiler &cc_;
    Machine &machine_;
    const std::unordered_map<std::string, std::uint32_t> &fields_;
    int line_;
    std::unordered_map<std::string, std::uint8_t> vars_;
    std::uint8_t firstScratch_ = 0;
    std::uint8_t nextScratch_ = 0;
    std::vector<Instr> code_;
    std::vector<std::size_t> labels_;
    std::vector<Patch> patches_;
};

void
ComCompiler::defineClasses(const Program &program)
{
    classByName_.clear();
    for (const ClassDef &cd : program.classes)
        classByName_[cd.name] = &cd;

    // Define in dependency order; detect cycles.
    std::size_t defined = 0, last = SIZE_MAX;
    while (defined < program.classes.size() && defined != last) {
        last = defined;
        for (const ClassDef &cd : program.classes) {
            if (machine_.classes().tryByName(cd.name) != obj::kNoClass)
                continue;
            ClassId super = machine_.classes().objectClass();
            if (!cd.superName.empty()) {
                super = machine_.classes().tryByName(cd.superName);
                if (super == obj::kNoClass)
                    continue; // superclass not defined yet
            }
            machine_.classes().define(cd.name, super,
                                      static_cast<std::uint32_t>(
                                          cd.fields.size()),
                                      /*indexed=*/false);
            ++defined;
        }
    }
    sim::fatalIf(defined < program.classes.size(),
                 "class hierarchy has a cycle or unknown superclass");
}

std::unordered_map<std::string, std::uint32_t>
ComCompiler::fieldMapOf(const ClassDef &cd) const
{
    std::unordered_map<std::string, std::uint32_t> map;
    // Walk up the source-level chain, inherited fields first.
    std::vector<const ClassDef *> chain;
    const ClassDef *c = &cd;
    while (c) {
        chain.push_back(c);
        if (c->superName.empty())
            break;
        auto it = classByName_.find(c->superName);
        c = it == classByName_.end() ? nullptr : it->second;
    }
    std::uint32_t idx = 0;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it)
        for (const std::string &f : (*it)->fields) {
            sim::fatalIf(map.count(f) != 0, "class ", cd.name,
                         ": duplicate field '", f, "' in hierarchy");
            map[f] = idx++;
        }
    return map;
}

CompiledProgram
ComCompiler::compile(const Program &program)
{
    CompiledProgram out;
    defineClasses(program);

    for (const ClassDef &cd : program.classes) {
        ClassId cls = machine_.classes().byName(cd.name);
        auto fields = fieldMapOf(cd);
        for (const MethodDef &md : cd.methods) {
            MethodEmitter em(*this, machine_, fields, md.argNames,
                             md.temps, md.line);
            std::vector<Instr> code = em.emitBody(md.body);
            out.instructionsEmitted += code.size();
            machine_.installMethod(cls, md.selector, code);
            ++out.methodsInstalled;
        }
    }

    if (program.hasMain) {
        std::unordered_map<std::string, std::uint32_t> no_fields;
        MethodEmitter em(*this, machine_, no_fields, {},
                         program.mainTemps, 0);
        std::vector<Instr> code = em.emitBody(program.mainBody);
        out.instructionsEmitted += code.size();
        out.entryVaddr = machine_.makeMethodObject(code);
    }
    return out;
}

CompiledProgram
ComCompiler::compileSource(const std::string &source)
{
    Program p = parse(source);
    return compile(p);
}

} // namespace com::lang
