/**
 * @file
 * Abstract syntax tree for the Smalltalk subset.
 *
 * Expressions are the usual Smalltalk forms: literals, variable
 * references, unary / binary / keyword message sends, assignments and
 * returns. Blocks appear only as arguments (or receivers) of the
 * inlined control-flow selectors — ifTrue:/ifFalse:/and:/or:,
 * whileTrue:, timesRepeat:, to:do: — and compile to branches, never to
 * block contexts (closures are out of scope; DESIGN.md documents the
 * restriction and its relation to the paper's non-LIFO context story).
 */

#ifndef COMSIM_LANG_AST_HPP
#define COMSIM_LANG_AST_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace com::lang {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Expression node kinds. */
enum class ExprKind : std::uint8_t
{
    IntLit,
    FloatLit,
    StringLit,
    SymbolLit,
    TrueLit,
    FalseLit,
    NilLit,
    SelfRef,
    VarRef,     ///< temp, argument, field or class name
    Assign,     ///< var := expr
    Send,       ///< receiver selector: args
    Block,      ///< [ :a | statements ] — control-flow positions only
    Cascade,    ///< receiver msg1; msg2; ... (value: receiver)
};

/** One expression node. */
struct Expr
{
    ExprKind kind;
    int line = 0;

    // Literals.
    std::int64_t intVal = 0;
    double floatVal = 0.0;
    std::string text; ///< var name / string / symbol / selector

    // Send: receiver (null for cascaded sends inherits), arguments.
    ExprPtr receiver;
    std::vector<ExprPtr> args;

    // Block: parameters and body.
    std::vector<std::string> params;
    std::vector<ExprPtr> body;      ///< statements
    std::vector<ExprPtr> cascade;   ///< additional sends for Cascade
    bool isReturn = false;          ///< statement was ^expr

    static ExprPtr
    make(ExprKind k, int line)
    {
        auto e = std::make_unique<Expr>();
        e->kind = k;
        e->line = line;
        return e;
    }
};

/** One method definition. */
struct MethodDef
{
    std::string selector;             ///< "x", "+", "setX:y:"
    std::vector<std::string> argNames;
    std::vector<std::string> temps;
    std::vector<ExprPtr> body;        ///< statements (isReturn on Expr)
    int line = 0;
};

/** One class definition. */
struct ClassDef
{
    std::string name;
    std::string superName;            ///< "" = Object
    std::vector<std::string> fields;
    std::vector<MethodDef> methods;
    int line = 0;
};

/** A whole program: classes plus an optional main body. */
struct Program
{
    std::vector<ClassDef> classes;
    /** The entry: a method body (temps + statements). */
    std::vector<std::string> mainTemps;
    std::vector<ExprPtr> mainBody;
    bool hasMain = false;
};

} // namespace com::lang

#endif // COMSIM_LANG_AST_HPP
