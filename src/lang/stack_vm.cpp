#include "lang/stack_vm.hpp"

#include <cmath>

#include "sim/logging.hpp"
#include "sim/strutil.hpp"

namespace com::lang {

using mem::Tag;
using mem::Word;

const char *
sopName(SOp op)
{
    switch (op) {
      case SOp::PushLocal: return "pushLocal";
      case SOp::StoreLocal: return "storeLocal";
      case SOp::PushField: return "pushField";
      case SOp::StoreField: return "storeField";
      case SOp::PushSelf: return "pushSelf";
      case SOp::PushLit: return "pushLit";
      case SOp::Pop: return "pop";
      case SOp::Dup: return "dup";
      case SOp::Send: return "send";
      case SOp::Return: return "return";
      case SOp::ReturnSelf: return "returnSelf";
      case SOp::Jump: return "jump";
      case SOp::JumpTrue: return "jumpTrue";
      case SOp::JumpFalse: return "jumpFalse";
    }
    return "?";
}

StackVm::StackVm()
{
    nilAtom_ = selectors_.intern("nil");
    trueAtom_ = selectors_.intern("true");
    falseAtom_ = selectors_.intern("false");
    // Primitive classes mirror the COM's tag classes.
    nilCls_ = defineClass("UndefinedObject", -1, 0);
    intCls_ = defineClass("SmallInteger", -1, 0);
    floatCls_ = defineClass("Float", -1, 0);
    atomCls_ = defineClass("Symbol", -1, 0);
    rootCls_ = defineClass("Object", -1, 0);
    arrayCls_ = defineClass("Array", rootCls_, 0);
    stringCls_ = defineClass("String", rootCls_, 0);

    // Flat selector -> primitive table: sends resolve built-ins with
    // one indexed load instead of spelling comparisons.
    auto prim = [this](const char *name, SPrim p) {
        obj::SelectorId sel = selectors_.intern(name);
        if (sel >= primOf_.size())
            primOf_.resize(sel + 1,
                           static_cast<std::uint8_t>(SPrim::None));
        primOf_[sel] = static_cast<std::uint8_t>(p);
    };
    prim("+", SPrim::Add);
    prim("-", SPrim::Sub);
    prim("*", SPrim::Mul);
    prim("/", SPrim::Div);
    prim("\\\\", SPrim::Mod);
    prim("<", SPrim::Lt);
    prim("<=", SPrim::Le);
    prim(">", SPrim::Gt);
    prim(">=", SPrim::Ge);
    prim("=", SPrim::Eq);
    prim("~=", SPrim::Ne);
    prim("bitAnd:", SPrim::BitAnd);
    prim("bitOr:", SPrim::BitOr);
    prim("bitXor:", SPrim::BitXor);
    prim("==", SPrim::Identical);
    prim("negated", SPrim::Negated);
    prim("new", SPrim::New);
    prim("new:", SPrim::NewSized);
    prim("at:", SPrim::At);
    prim("at:put:", SPrim::AtPut);
    prim("size", SPrim::Size);
    prim("print", SPrim::Print);
}

std::int32_t
StackVm::defineClass(const std::string &name, std::int32_t super_id,
                     std::uint32_t num_fields)
{
    sim::fatalIf(classIds_.count(name) != 0, "stackvm: class '", name,
                 "' already defined");
    SClass c;
    c.name = name;
    c.superId = super_id;
    std::uint32_t inherited =
        super_id >= 0
            ? classes_[static_cast<std::size_t>(super_id)].numFields
            : 0;
    c.numFields = inherited + num_fields;
    classes_.push_back(std::move(c));
    std::int32_t id = static_cast<std::int32_t>(classes_.size() - 1);
    classIds_[name] = id;
    return id;
}

void
StackVm::installMethod(std::int32_t cls, SMethod method)
{
    obj::SelectorId sel = selectors_.intern(method.selector);
    classes_[static_cast<std::size_t>(cls)].methods[sel] =
        std::move(method);
}

std::int32_t
StackVm::classByName(const std::string &name) const
{
    auto it = classIds_.find(name);
    return it == classIds_.end() ? -1 : it->second;
}

mem::Word
StackVm::allocObject(std::int32_t cls, std::uint32_t words)
{
    // Fresh slots read as nil (Smalltalk semantics), so guest code can
    // compare uninitialized fields with nil.
    objects_.emplace_back(words, Word::fromAtom(nilAtom_));
    objectCls_.push_back(cls);
    ++allocs_;
    return Word::fromPointer(
        static_cast<std::uint32_t>(objects_.size() - 1));
}

mem::Word
StackVm::makeString(const std::string &s)
{
    Word w = allocObject(stringCls_,
                         static_cast<std::uint32_t>(
                             s.empty() ? 1 : s.size()));
    auto &obj = objects_[w.asPointer()];
    for (std::size_t i = 0; i < s.size(); ++i)
        obj[i] = Word::fromInt(static_cast<unsigned char>(s[i]));
    return w;
}

std::string
StackVm::readString(mem::Word w) const
{
    if (!w.isPointer() || w.asPointer() >= objects_.size())
        return "";
    std::string out;
    for (const Word &ch : objects_[w.asPointer()])
        if (ch.isInt())
            out.push_back(static_cast<char>(ch.asInt()));
    return out;
}

std::int32_t
StackVm::classOf(const mem::Word &w) const
{
    switch (w.tag()) {
      case Tag::SmallInt: return intCls_;
      case Tag::Float: return floatCls_;
      case Tag::Atom:
        return w.asAtom() == nilAtom_ ? nilCls_ : atomCls_;
      case Tag::ObjectPtr:
        if (w.asPointer() < objectCls_.size())
            return objectCls_[w.asPointer()];
        return rootCls_;
      default:
        return nilCls_;
    }
}

const SMethod *
StackVm::lookup(std::int32_t cls, obj::SelectorId sel) const
{
    std::int32_t c = cls;
    while (c >= 0) {
        const SClass &sc = classes_[static_cast<std::size_t>(c)];
        auto it = sc.methods.find(sel);
        if (it != sc.methods.end())
            return &it->second;
        c = sc.superId;
    }
    return nullptr;
}

bool
StackVm::tryPrimitive(obj::SelectorId sel, unsigned argc, bool &failed,
                      std::string &err)
{
    failed = false;
    SPrim prim = primFor(sel);
    if (prim == SPrim::None)
        return false;
    // Operands: receiver at depth argc, args above it.
    auto arg = [&](unsigned i) -> Word & {
        return stack_[stack_.size() - argc + i];
    };
    Word &recv = stack_[stack_.size() - argc - 1];

    auto numeric = [](const Word &w) { return w.isInt() || w.isFloat(); };
    auto dval = [](const Word &w) {
        return w.isInt() ? static_cast<double>(w.asInt())
                         : static_cast<double>(w.asFloat());
    };
    auto finish = [&](Word w) {
        stack_.resize(stack_.size() - argc - 1);
        stack_.push_back(w);
        return true;
    };
    auto boolWord = [&](bool b) {
        return Word::fromAtom(b ? trueAtom_ : falseAtom_);
    };
    auto fail = [&](const char *msg) {
        failed = true;
        err = msg;
        return true;
    };

    bool binary_numeric =
        argc == 1 && numeric(recv) && numeric(arg(0));
    bool both_int =
        binary_numeric && recv.isInt() && arg(0).isInt();

    switch (prim) {
      case SPrim::Add:
        if (!binary_numeric)
            return false;
        return finish(both_int
                          ? Word::fromInt(recv.asInt() + arg(0).asInt())
                          : Word::fromFloat(static_cast<float>(
                                dval(recv) + dval(arg(0)))));
      case SPrim::Sub:
        if (!binary_numeric)
            return false;
        return finish(both_int
                          ? Word::fromInt(recv.asInt() - arg(0).asInt())
                          : Word::fromFloat(static_cast<float>(
                                dval(recv) - dval(arg(0)))));
      case SPrim::Mul:
        if (!binary_numeric)
            return false;
        return finish(both_int
                          ? Word::fromInt(recv.asInt() * arg(0).asInt())
                          : Word::fromFloat(static_cast<float>(
                                dval(recv) * dval(arg(0)))));
      case SPrim::Div:
        if (!binary_numeric)
            return false;
        if (dval(arg(0)) == 0.0)
            return fail("divide by zero");
        return finish(both_int
                          ? Word::fromInt(recv.asInt() / arg(0).asInt())
                          : Word::fromFloat(static_cast<float>(
                                dval(recv) / dval(arg(0)))));
      case SPrim::Mod: {
        if (!binary_numeric)
            return false;
        if (!both_int || arg(0).asInt() == 0)
            return fail("bad modulo");
        std::int64_t m = recv.asInt() % arg(0).asInt();
        if (m != 0 && ((m < 0) != (arg(0).asInt() < 0)))
            m += arg(0).asInt();
        return finish(Word::fromInt(static_cast<std::int32_t>(m)));
      }
      case SPrim::Lt:
        if (!binary_numeric)
            return false;
        return finish(boolWord(dval(recv) < dval(arg(0))));
      case SPrim::Le:
        if (!binary_numeric)
            return false;
        return finish(boolWord(dval(recv) <= dval(arg(0))));
      case SPrim::Gt:
        if (!binary_numeric)
            return false;
        return finish(boolWord(dval(recv) > dval(arg(0))));
      case SPrim::Ge:
        if (!binary_numeric)
            return false;
        return finish(boolWord(dval(recv) >= dval(arg(0))));
      case SPrim::Eq:
        if (binary_numeric)
            return finish(boolWord(dval(recv) == dval(arg(0))));
        if (argc == 1 && recv.isAtom() && arg(0).isAtom())
            return finish(boolWord(recv.asAtom() == arg(0).asAtom()));
        return false;
      case SPrim::Ne:
        if (binary_numeric)
            return finish(boolWord(dval(recv) != dval(arg(0))));
        if (argc == 1 && recv.isAtom() && arg(0).isAtom())
            return finish(boolWord(recv.asAtom() != arg(0).asAtom()));
        return false;
      case SPrim::BitAnd:
        if (!both_int)
            return false;
        return finish(Word::fromInt(recv.asInt() & arg(0).asInt()));
      case SPrim::BitOr:
        if (!both_int)
            return false;
        return finish(Word::fromInt(recv.asInt() | arg(0).asInt()));
      case SPrim::BitXor:
        if (!both_int)
            return false;
        return finish(Word::fromInt(recv.asInt() ^ arg(0).asInt()));
      case SPrim::Identical:
        if (argc != 1)
            return false;
        return finish(boolWord(recv == arg(0)));
      case SPrim::Negated:
        if (argc != 0 || !numeric(recv))
            return false;
        return finish(recv.isInt()
                          ? Word::fromInt(-recv.asInt())
                          : Word::fromFloat(-recv.asFloat()));

      case SPrim::New:
      case SPrim::NewSized: {
        // Class-atom constructors.
        if (!recv.isAtom())
            return false;
        std::int32_t cls = classByName(selectors_.name(recv.asAtom()));
        if (cls < 0)
            return fail("new sent to unknown class");
        std::uint32_t extra = 0;
        if (prim == SPrim::NewSized) {
            if (!arg(0).isInt() || arg(0).asInt() < 0)
                return fail("new: bad size");
            extra = static_cast<std::uint32_t>(arg(0).asInt());
        }
        return finish(allocObject(
            cls, classes_[static_cast<std::size_t>(cls)].numFields +
                     extra));
      }

      // Indexed access on VM objects (0-based, as on the COM).
      case SPrim::At: {
        if (argc != 1 || !recv.isPointer() ||
            recv.asPointer() >= objects_.size())
            return false;
        auto &obj = objects_[recv.asPointer()];
        if (!arg(0).isInt() || arg(0).asInt() < 0 ||
            static_cast<std::size_t>(arg(0).asInt()) >= obj.size())
            return fail("index out of range");
        return finish(obj[static_cast<std::size_t>(arg(0).asInt())]);
      }
      case SPrim::AtPut: {
        if (argc != 2 || !recv.isPointer() ||
            recv.asPointer() >= objects_.size())
            return false;
        auto &obj = objects_[recv.asPointer()];
        if (!arg(0).isInt() || arg(0).asInt() < 0 ||
            static_cast<std::size_t>(arg(0).asInt()) >= obj.size())
            return fail("index out of range");
        Word v = arg(1);
        obj[static_cast<std::size_t>(arg(0).asInt())] = v;
        return finish(v);
      }
      case SPrim::Size:
        if (argc != 0 || !recv.isPointer() ||
            recv.asPointer() >= objects_.size())
            return false;
        return finish(Word::fromInt(static_cast<std::int32_t>(
            objects_[recv.asPointer()].size())));

      case SPrim::Print: {
        if (argc != 0)
            return false;
        std::string repr;
        switch (recv.tag()) {
          case Tag::SmallInt:
            repr = sim::format("%d", recv.asInt());
            break;
          case Tag::Float:
            repr = sim::format("%g",
                               static_cast<double>(recv.asFloat()));
            break;
          case Tag::Atom:
            repr = selectors_.name(recv.asAtom());
            break;
          case Tag::ObjectPtr:
            repr = classOf(recv) == stringCls_
                       ? "'" + readString(recv) + "'"
                       : "a " + classes_[static_cast<std::size_t>(
                                             classOf(recv))]
                                     .name;
            break;
          default:
            repr = "nil";
        }
        output_ += repr + "\n";
        return finish(recv);
      }

      case SPrim::None:
        break;
    }
    return false;
}

SResult
StackVm::run(const SMethod &entry, std::uint64_t max_bytecodes)
{
    SResult res;
    stack_.clear();
    frames_.clear();

    Frame f;
    f.method = &entry;
    f.ip = 0;
    f.locals.assign(entry.numArgs + entry.numTemps,
                    Word::fromAtom(nilAtom_));
    f.receiver = Word::fromAtom(nilAtom_);
    f.receiverCls = nilCls_;
    frames_.push_back(std::move(f));

    std::uint64_t executed = 0;
    while (executed < max_bytecodes) {
        Frame &fr = frames_.back();
        if (fr.ip >= fr.method->code.size()) {
            res.error = "fell off method end";
            break;
        }
        const SInstr &ins = fr.method->code[fr.ip];
        ++executed;
        ++fr.ip;

        switch (ins.op) {
          case SOp::PushLocal:
            stack_.push_back(fr.locals[static_cast<std::size_t>(
                ins.a)]);
            continue;
          case SOp::StoreLocal:
            fr.locals[static_cast<std::size_t>(ins.a)] = stack_.back();
            stack_.pop_back();
            continue;
          case SOp::PushField: {
            auto &obj = objects_[fr.receiver.asPointer()];
            stack_.push_back(obj[static_cast<std::size_t>(ins.a)]);
            continue;
          }
          case SOp::StoreField: {
            auto &obj = objects_[fr.receiver.asPointer()];
            obj[static_cast<std::size_t>(ins.a)] = stack_.back();
            stack_.pop_back();
            continue;
          }
          case SOp::PushSelf:
            stack_.push_back(fr.receiver);
            continue;
          case SOp::PushLit:
            stack_.push_back(fr.method->literals[
                static_cast<std::size_t>(ins.a)]);
            continue;
          case SOp::Pop:
            stack_.pop_back();
            continue;
          case SOp::Dup:
            stack_.push_back(stack_.back());
            continue;
          case SOp::Jump:
            fr.ip = static_cast<std::size_t>(
                static_cast<std::int64_t>(fr.ip) + ins.a);
            continue;
          case SOp::JumpTrue:
          case SOp::JumpFalse: {
            Word c = stack_.back();
            stack_.pop_back();
            bool truthy = c.isAtom() ? c.asAtom() == trueAtom_
                        : c.isInt() ? c.asInt() != 0
                                    : false;
            if (truthy == (ins.op == SOp::JumpTrue))
                fr.ip = static_cast<std::size_t>(
                    static_cast<std::int64_t>(fr.ip) + ins.a);
            continue;
          }
          case SOp::Return:
          case SOp::ReturnSelf: {
            Word result = ins.op == SOp::Return ? stack_.back()
                                                : fr.receiver;
            if (ins.op == SOp::Return)
                stack_.pop_back();
            frames_.pop_back();
            if (frames_.empty()) {
                res.ok = true;
                res.result = result;
                res.bytecodes = executed;
                res.sends = sends_;
                res.cycles = executed * 2;
                return res;
            }
            stack_.push_back(result);
            continue;
          }
          case SOp::Send: {
            obj::SelectorId sel =
                static_cast<obj::SelectorId>(ins.a);
            unsigned argc = static_cast<unsigned>(ins.b);
            ++sends_;
            Word recv = stack_[stack_.size() - argc - 1];
            std::int32_t cls = classOf(recv);
            const SMethod *m = lookup(cls, sel);
            if (m) {
                Frame nf;
                nf.method = m;
                nf.ip = 0;
                nf.locals.assign(m->numArgs + m->numTemps,
                                 Word::fromAtom(nilAtom_));
                for (unsigned i = 0; i < argc; ++i)
                    nf.locals[argc - 1 - i] = stack_[stack_.size() -
                                                     1 - i];
                nf.receiver = recv;
                nf.receiverCls = cls;
                stack_.resize(stack_.size() - argc - 1);
                frames_.push_back(std::move(nf));
                continue;
            }
            bool failed = false;
            std::string err;
            if (tryPrimitive(sel, argc, failed, err)) {
                if (failed) {
                    res.error = err;
                    res.bytecodes = executed;
                    res.sends = sends_;
                    res.cycles = executed * 2;
                    return res;
                }
                continue;
            }
            res.error = sim::format(
                "'%s' not understood by %s",
                selectors_.name(sel).c_str(),
                classes_[static_cast<std::size_t>(cls)].name.c_str());
            res.bytecodes = executed;
            res.sends = sends_;
            res.cycles = executed * 2;
            return res;
          }
        }
    }
    if (res.error.empty())
        res.error = "bytecode limit exceeded";
    res.bytecodes = executed;
    res.sends = sends_;
    res.cycles = executed * 2;
    return res;
}

} // namespace com::lang
