#include "lang/workloads.hpp"

#include "sim/logging.hpp"

namespace com::lang {

namespace {

std::vector<Workload>
buildWorkloads()
{
    std::vector<Workload> w;

    w.push_back({"fib", "recursive Fibonacci (call/return stress)", R"(
class Calc [
    fib: n [
        n < 2 ifTrue: [ ^n ].
        ^(self fib: n - 1) + (self fib: n - 2)
    ]
]
main [ | c |
    c := Calc new.
    ^c fib: 18
]
)",
                 2584});

    w.push_back({"sieve", "sieve of Eratosthenes over an Array", R"(
class Sieve [
    run: n [ | flags count i m |
        flags := Array new: n.
        0 to: n - 1 do: [ :k | flags at: k put: 1 ].
        i := 2.
        [ i * i < n ] whileTrue: [
            (flags at: i) = 1 ifTrue: [
                m := i * i.
                [ m < n ] whileTrue: [
                    flags at: m put: 0.
                    m := m + i ] ].
            i := i + 1 ].
        count := 0.
        2 to: n - 1 do: [ :k |
            count := count + (flags at: k) ].
        ^count
    ]
]
main [
    ^Sieve new run: 400
]
)",
                 78});

    w.push_back({"sort", "one quicksort, two element classes "
                         "(late-binding showcase)",
                 R"(
class Pair [
    | a b |
    setA: x b: y [ a := x. b := y. ^self ]
    a [ ^a ]
    b [ ^b ]
    "order pairs by their weight: the same sort method that orders
     small integers orders Pairs, through the same < token"
    weight [ ^a * 10 + b ]
    < other [ ^self weight < other weight ]
]
class Sorter [
    sort: arr from: lo to: hi [ | p i j tmp |
        lo >= hi ifTrue: [ ^self ].
        p := arr at: (lo + hi) / 2.
        i := lo. j := hi.
        [ i <= j ] whileTrue: [
            [ (arr at: i) < p ] whileTrue: [ i := i + 1 ].
            [ p < (arr at: j) ] whileTrue: [ j := j - 1 ].
            i <= j ifTrue: [
                tmp := arr at: i.
                arr at: i put: (arr at: j).
                arr at: j put: tmp.
                i := i + 1. j := j - 1 ] ].
        self sort: arr from: lo to: j.
        self sort: arr from: i to: hi.
        ^self
    ]
    check: arr size: n [ | ok k |
        ok := 1.
        0 to: n - 2 do: [ :m |
            ((arr at: m + 1) < (arr at: m)) ifTrue: [ ok := 0 ] ].
        ^ok
    ]
]
main [ | ints pairs s seed k sum |
    s := Sorter new.
    ints := Array new: 64.
    seed := 7.
    0 to: 63 do: [ :i |
        seed := seed * 31 + 17 \\ 1009.
        ints at: i put: seed ].
    s sort: ints from: 0 to: 63.
    pairs := Array new: 32.
    0 to: 31 do: [ :i |
        pairs at: i put:
            (Pair new setA: 31 - i \\ 7 b: i \\ 5) ].
    s sort: pairs from: 0 to: 31.
    sum := (s check: ints size: 64) + (s check: pairs size: 32).
    "2 when both arrays are ordered"
    ^sum
]
)",
                 2});

    w.push_back({"bintree", "binary tree insert/sum "
                            "(allocation + recursion)",
                 R"(
class Node [
    | key left right |
    key: k [ key := k. ^self ]
    key [ ^key ]
    insert: k [
        k < key
            ifTrue: [
                left == nil
                    ifTrue: [ left := Node new key: k ]
                    ifFalse: [ left insert: k ] ]
            ifFalse: [
                right == nil
                    ifTrue: [ right := Node new key: k ]
                    ifFalse: [ right insert: k ] ].
        ^self
    ]
    total [ | t |
        t := key.
        left == nil ifFalse: [ t := t + left total ].
        right == nil ifFalse: [ t := t + right total ].
        ^t
    ]
]
main [ | root seed sum |
    seed := 3.
    root := Node new key: 500.
    1 to: 127 do: [ :i |
        seed := seed * 29 + 41 \\ 997.
        root insert: seed ].
    ^root total \\ 100000
]
)",
                 0});

    w.push_back({"matrix", "small float matrix product "
                           "(mixed-mode arithmetic)",
                 R"(
class Mat [
    | data n |
    init: size [ | k |
        n := size.
        data := Array new: size * size.
        k := 0.
        [ k < (size * size) ] whileTrue: [
            data at: k put: 0.0.
            k := k + 1 ].
        ^self
    ]
    at: r col: c [ ^data at: r * n + c ]
    at: r col: c put: v [ data at: r * n + c put: v. ^v ]
    mul: other into: out [ | s |
        0 to: n - 1 do: [ :i |
            0 to: n - 1 do: [ :j |
                s := 0.0.
                0 to: n - 1 do: [ :k |
                    s := s + ((self at: i col: k) *
                              (other at: k col: j)) ].
                out at: i col: j put: s ] ].
        ^out
    ]
]
main [ | a b c acc i |
    a := Mat new init: 6.
    b := Mat new init: 6.
    0 to: 5 do: [ :r |
        0 to: 5 do: [ :cc |
            a at: r col: cc put: (r + 1) * 1.0.
            b at: r col: cc put: (cc + 1) * 0.5 ] ].
    c := Mat new init: 6.
    a mul: b into: c.
    "sum of c = sum_r sum_c (r+1)*6*(c+1)*0.5 = 6*21*21*0.5 = 1323"
    acc := 0.0.
    0 to: 5 do: [ :r |
        0 to: 5 do: [ :cc |
            acc := acc + (c at: r col: cc) ] ].
    i := 0.
    [ acc >= 1.0 ] whileTrue: [ acc := acc - 1.0. i := i + 1 ].
    ^i
]
)",
                 1323});

    w.push_back({"bank", "account hierarchy with inherited fields", R"(
class Account [
    | balance |
    open [ balance := 0. ^self ]
    balance [ ^balance ]
    deposit: amt [ balance := balance + amt. ^self ]
    withdraw: amt [
        amt <= balance ifTrue: [ balance := balance - amt ].
        ^self
    ]
]
class Savings extends Account [
    | rate |
    openAt: r [ self open. rate := r. ^self ]
    addInterest [
        balance := balance + (balance * rate / 100).
        ^self
    ]
]
main [ | checking savings t |
    checking := Account new open.
    savings := Savings new openAt: 5.
    1 to: 24 do: [ :m |
        checking deposit: 100.
        checking withdraw: 30.
        savings deposit: 200.
        savings addInterest ].
    t := checking balance + savings balance.
    ^t
]
)",
                 0});

    w.push_back({"dictionary", "open-addressing hash table in guest "
                               "code",
                 R"(
class Dict [
    | keys vals cap |
    init: capacity [ | k |
        cap := capacity.
        keys := Array new: capacity.
        vals := Array new: capacity.
        k := 0.
        [ k < capacity ] whileTrue: [
            keys at: k put: -1.
            k := k + 1 ].
        ^self
    ]
    slotFor: k [ | h |
        h := k * 31 \\ cap.
        [ ((keys at: h) ~= -1) and: [ (keys at: h) ~= k ] ]
            whileTrue: [ h := h + 1 \\ cap ].
        ^h
    ]
    at: k put: v [ | h |
        h := self slotFor: k.
        keys at: h put: k.
        vals at: h put: v.
        ^v
    ]
    get: k [ | h |
        h := self slotFor: k.
        ((keys at: h) = -1) ifTrue: [ ^0 ].
        ^vals at: h
    ]
]
main [ | d sum |
    d := Dict new init: 97.
    1 to: 60 do: [ :i | d at: i * 7 put: i * i ].
    sum := 0.
    1 to: 60 do: [ :i | sum := sum + (d get: i * 7) ].
    "sum of squares 1..60 = 73810"
    ^sum
]
)",
                 73810});

    w.push_back({"richards", "miniature task scheduler "
                             "(message-dense control)",
                 R"(
class Task [
    | id state work next |
    initId: i [ id := i. state := 0. work := 0. ^self ]
    id [ ^id ]
    state [ ^state ]
    state: s [ state := s. ^self ]
    next [ ^next ]
    next: t [ next := t. ^self ]
    work [ ^work ]
    step [ work := work + 1. ^work ]
]
class DeviceTask extends Task [
    step [ work := work + 2. ^work ]
]
class WorkerTask extends Task [
    step [ work := work + 3. ^work ]
]
class Scheduler [
    | head count |
    init [ count := 0. head := nil. ^self ]
    add: t [
        t next: head.
        head := t.
        count := count + 1.
        ^self
    ]
    runFor: steps [ | cur n |
        cur := head.
        n := 0.
        [ n < steps ] whileTrue: [
            cur step.
            cur := cur next.
            cur == nil ifTrue: [ cur := head ].
            n := n + 1 ].
        ^n
    ]
    totalWork [ | cur t |
        cur := head.
        t := 0.
        [ cur == nil ] whileFalse: [
            t := t + cur work.
            cur := cur next ].
        ^t
    ]
]
main [ | s |
    s := Scheduler new init.
    s add: (Task new initId: 1).
    s add: (DeviceTask new initId: 2).
    s add: (WorkerTask new initId: 3).
    s add: (Task new initId: 4).
    s add: (DeviceTask new initId: 5).
    s runFor: 600.
    ^s totalWork
]
)",
                 0});

    w.push_back({"nqueens", "8-queens backtracking counter", R"(
class Queens [
    | cols n solutions |
    init: size [ | k |
        n := size.
        cols := Array new: size.
        k := 0.
        [ k < size ] whileTrue: [ cols at: k put: -1. k := k + 1 ].
        solutions := 0.
        ^self
    ]
    okRow: r col: c [ | k ck |
        k := 0.
        [ k < c ] whileTrue: [
            ck := cols at: k.
            ck = r ifTrue: [ ^0 ].
            (ck - r) = (c - k) ifTrue: [ ^0 ].
            (r - ck) = (c - k) ifTrue: [ ^0 ].
            k := k + 1 ].
        ^1
    ]
    place: c [ | r |
        c = n ifTrue: [ solutions := solutions + 1. ^self ].
        r := 0.
        [ r < n ] whileTrue: [
            (self okRow: r col: c) = 1 ifTrue: [
                cols at: c put: r.
                self place: c + 1 ].
            r := r + 1 ].
        ^self
    ]
    solutions [ ^solutions ]
]
main [ | q |
    q := Queens new init: 6.
    q place: 0.
    "6-queens has 4 solutions"
    ^q solutions
]
)",
                 4});

    // Fill in the computed expectations that need host arithmetic.
    for (Workload &wl : w) {
        if (wl.name == "bintree") {
            // Mirror the guest PRNG walk.
            std::int64_t seed = 3, sum = 500;
            // Duplicate keys still insert (no dedup in guest code).
            std::vector<std::int64_t> keys;
            for (int i = 1; i <= 127; ++i) {
                seed = (seed * 29 + 41) % 997;
                sum += seed;
            }
            wl.expected = static_cast<std::int32_t>(sum % 100000);
        } else if (wl.name == "bank") {
            // checking: 24 * 70 = 1680.
            std::int64_t checking = 1680;
            std::int64_t savings = 0;
            for (int m = 0; m < 24; ++m) {
                savings += 200;
                savings += savings * 5 / 100;
            }
            wl.expected =
                static_cast<std::int32_t>(checking + savings);
        } else if (wl.name == "richards") {
            // 600 steps round-robin over 5 tasks: each task steps 120
            // times; increments: Task 1, Device 2, Worker 3.
            wl.expected = 120 * (1 + 2 + 3 + 1 + 2);
        }
    }
    return w;
}

} // namespace

const std::vector<Workload> &
workloads()
{
    static const std::vector<Workload> kSuite = buildWorkloads();
    return kSuite;
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    names.reserve(workloads().size());
    for (const Workload &w : workloads())
        names.push_back(w.name);
    return names;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload &w : workloads())
        if (w.name == name)
            return &w;
    return nullptr;
}

const Workload &
workload(const std::string &name)
{
    if (const Workload *w = findWorkload(name))
        return *w;
    std::string available;
    for (const Workload &w : workloads()) {
        if (!available.empty())
            available += ", ";
        available += w.name;
    }
    sim::fatal("unknown workload '", name, "' (available: ", available,
               ")");
}

} // namespace com::lang
