/**
 * @file
 * The Smalltalk -> stack-bytecode compiler (baseline back end).
 *
 * Compiles the same AST the COM back end consumes into the zero-address
 * bytecodes of lang/stack_vm.hpp, using the same inlining decisions for
 * the control-flow selectors so the T-stack instruction-count
 * comparison isolates exactly the paper's variable: expression
 * evaluation through a stack versus three-address code.
 */

#ifndef COMSIM_LANG_COMPILER_STACK_HPP
#define COMSIM_LANG_COMPILER_STACK_HPP

#include <string>

#include "lang/ast.hpp"
#include "lang/stack_vm.hpp"

namespace com::lang {

/** Compilation results. */
struct StackCompiled
{
    SMethod entry;                   ///< the main method
    std::size_t methodsInstalled = 0;
    std::size_t instructionsEmitted = 0;
    /**
     * Static code size under a Smalltalk-80-like byte encoding: one
     * byte for the common zero-operand forms (push self, pop, dup,
     * returns), two bytes for operand-carrying bytecodes and sends.
     */
    std::size_t codeBytes = 0;
};

/** The stack back end. */
class StackCompiler
{
  public:
    explicit StackCompiler(StackVm &vm) : vm_(vm) {}

    /** Compile @p program into @p vm_; @return the entry method. */
    StackCompiled compile(const Program &program);

    /** Parse and compile source text. */
    StackCompiled compileSource(const std::string &source);

  private:
    StackVm &vm_;
};

} // namespace com::lang

#endif // COMSIM_LANG_COMPILER_STACK_HPP
