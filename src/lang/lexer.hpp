/**
 * @file
 * Lexer for the Smalltalk subset (see lang/parser.hpp for the grammar).
 *
 * Token kinds follow Smalltalk-80: identifiers, keywords (identifier
 * followed by ':'), binary selector characters, integer/float/string/
 * symbol literals, plus the handful of punctuation marks the subset
 * needs. Comments are Smalltalk double-quoted: "like this".
 */

#ifndef COMSIM_LANG_LEXER_HPP
#define COMSIM_LANG_LEXER_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace com::lang {

/** Token kinds. */
enum class Tok : std::uint8_t
{
    End,
    Ident,      ///< identifier (possibly capitalized: class name)
    Keyword,    ///< identifier: (with the colon)
    BinarySel,  ///< one of + - * / \ < > = ~ @ % & ? ! , sequences
    Integer,
    Float,
    String,     ///< 'text'
    Symbol,     ///< #name
    Assign,     ///< :=
    Caret,      ///< ^
    Dot,        ///< .
    Semicolon,  ///< ;
    LParen,
    RParen,
    LBracket,
    RBracket,
    Pipe,       ///< |
    Colon,      ///< : (block argument marker)
};

/** One token with position for diagnostics. */
struct Token
{
    Tok kind = Tok::End;
    std::string text;     ///< spelling (identifiers, selectors, strings)
    std::int64_t intVal = 0;
    double floatVal = 0.0;
    int line = 0;
};

/** @return printable token-kind name. */
const char *tokName(Tok t);

/** Tokenize @p source; fatal()s with a line number on bad input. */
std::vector<Token> lex(const std::string &source);

} // namespace com::lang

#endif // COMSIM_LANG_LEXER_HPP
