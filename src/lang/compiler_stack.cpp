#include "lang/compiler_stack.hpp"

#include <cctype>
#include <unordered_map>

#include "lang/parser.hpp"
#include "sim/logging.hpp"

namespace com::lang {

using mem::Word;

namespace {

bool
isCapitalized(const std::string &s)
{
    return !s.empty() && std::isupper(static_cast<unsigned char>(s[0]));
}

/** Emits bytecodes for one method. */
class StackEmitter
{
  public:
    StackEmitter(StackVm &vm,
                 const std::unordered_map<std::string, std::uint32_t>
                     &fields,
                 const std::vector<std::string> &args,
                 const std::vector<std::string> &temps)
        : vm_(vm), fields_(fields)
    {
        for (const std::string &a : args)
            locals_[a] = static_cast<std::int32_t>(locals_.size());
        numArgs_ = static_cast<unsigned>(args.size());
        for (const std::string &t : temps)
            locals_[t] = static_cast<std::int32_t>(locals_.size());
        numTemps_ = static_cast<unsigned>(temps.size());
    }

    SMethod
    emitBody(const std::string &selector,
             const std::vector<ExprPtr> &body)
    {
        for (const ExprPtr &stmt : body) {
            if (stmt->isReturn) {
                value(*stmt);
                emit(SOp::Return);
            } else {
                value(*stmt);
                emit(SOp::Pop);
            }
        }
        emit(SOp::ReturnSelf);
        method_.selector = selector;
        method_.numArgs = numArgs_;
        method_.numTemps = numTemps_ + extraTemps_;
        return std::move(method_);
    }

  private:
    void
    emit(SOp op, std::int32_t a = 0, std::int32_t b = 0)
    {
        method_.code.push_back(SInstr{op, a, b});
    }

    std::int32_t
    literal(Word w)
    {
        for (std::size_t i = 0; i < method_.literals.size(); ++i)
            if (method_.literals[i] == w)
                return static_cast<std::int32_t>(i);
        method_.literals.push_back(w);
        return static_cast<std::int32_t>(method_.literals.size() - 1);
    }

    std::size_t here() const { return method_.code.size(); }

    void
    patch(std::size_t at, std::size_t target)
    {
        method_.code[at].a = static_cast<std::int32_t>(
            static_cast<std::int64_t>(target) -
            static_cast<std::int64_t>(at) - 1);
    }

    void
    value(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::IntLit:
            emit(SOp::PushLit, literal(Word::fromInt(
                static_cast<std::int32_t>(e.intVal))));
            return;
          case ExprKind::FloatLit:
            emit(SOp::PushLit, literal(Word::fromFloat(
                static_cast<float>(e.floatVal))));
            return;
          case ExprKind::StringLit:
            emit(SOp::PushLit, literal(vm_.makeString(e.text)));
            return;
          case ExprKind::SymbolLit:
            emit(SOp::PushLit, literal(Word::fromAtom(
                vm_.selectors().intern(e.text))));
            return;
          case ExprKind::TrueLit:
            emit(SOp::PushLit, literal(Word::fromAtom(
                vm_.selectors().intern("true"))));
            return;
          case ExprKind::FalseLit:
            emit(SOp::PushLit, literal(Word::fromAtom(
                vm_.selectors().intern("false"))));
            return;
          case ExprKind::NilLit:
            emit(SOp::PushLit, literal(Word::fromAtom(
                vm_.selectors().intern("nil"))));
            return;
          case ExprKind::SelfRef:
            emit(SOp::PushSelf);
            return;
          case ExprKind::VarRef: {
            auto lit = locals_.find(e.text);
            if (lit != locals_.end()) {
                emit(SOp::PushLocal, lit->second);
                return;
            }
            auto fit = fields_.find(e.text);
            if (fit != fields_.end()) {
                emit(SOp::PushField,
                     static_cast<std::int32_t>(fit->second));
                return;
            }
            sim::fatalIf(!isCapitalized(e.text), "line ", e.line,
                         ": unknown variable '", e.text, "'");
            emit(SOp::PushLit, literal(Word::fromAtom(
                vm_.selectors().intern(e.text))));
            return;
          }
          case ExprKind::Assign: {
            value(*e.args[0]);
            emit(SOp::Dup);
            auto lit = locals_.find(e.text);
            if (lit != locals_.end()) {
                emit(SOp::StoreLocal, lit->second);
                return;
            }
            auto fit = fields_.find(e.text);
            sim::fatalIf(fit == fields_.end(), "line ", e.line,
                         ": assignment to unknown variable '", e.text,
                         "'");
            emit(SOp::StoreField,
                 static_cast<std::int32_t>(fit->second));
            return;
          }
          case ExprKind::Send:
            compileSend(e);
            return;
          case ExprKind::Cascade: {
            const Expr &first = *e.receiver;
            sim::fatalIf(first.kind != ExprKind::Send, "line ", e.line,
                         ": cascade needs a message receiver");
            // Evaluate the receiver once into a hidden temp.
            value(*first.receiver);
            std::int32_t tmp = hiddenTemp();
            emit(SOp::StoreLocal, tmp);
            emit(SOp::PushLocal, tmp);
            sendTo(first.text, first.args);
            for (const ExprPtr &msg : e.cascade) {
                emit(SOp::Pop);
                emit(SOp::PushLocal, tmp);
                sendTo(msg->text, msg->args);
            }
            return;
          }
          case ExprKind::Block:
            sim::fatal("line ", e.line,
                       ": blocks are only supported as arguments of "
                       "the inlined control-flow selectors");
        }
    }

    std::int32_t
    hiddenTemp()
    {
        std::int32_t idx = static_cast<std::int32_t>(
            numArgs_ + numTemps_ + extraTemps_);
        ++extraTemps_;
        return idx;
    }

    void
    sendTo(const std::string &sel, const std::vector<ExprPtr> &args)
    {
        for (const ExprPtr &a : args)
            value(*a);
        emit(SOp::Send,
             static_cast<std::int32_t>(vm_.selectors().intern(sel)),
             static_cast<std::int32_t>(args.size()));
    }

    void
    inlineBlock(const Expr &b)
    {
        sim::fatalIf(b.kind != ExprKind::Block, "line ", b.line,
                     ": expected a block argument");
        sim::fatalIf(!b.params.empty(), "line ", b.line,
                     ": this block takes no parameters");
        bool pushed = false;
        for (const ExprPtr &stmt : b.body) {
            if (stmt->isReturn) {
                value(*stmt);
                emit(SOp::Return);
                continue;
            }
            if (pushed)
                emit(SOp::Pop);
            value(*stmt);
            pushed = true;
        }
        if (!pushed)
            emit(SOp::PushLit, literal(Word::fromAtom(
                vm_.selectors().intern("nil"))));
    }

    void
    compileSend(const Expr &e)
    {
        const std::string &sel = e.text;

        if (sel == "ifTrue:" || sel == "ifFalse:" ||
            sel == "ifTrue:ifFalse:" || sel == "ifFalse:ifTrue:") {
            value(*e.receiver);
            bool true_first = sel[2] == 'T';
            std::size_t j1 = here();
            emit(true_first ? SOp::JumpFalse : SOp::JumpTrue);
            inlineBlock(*e.args[0]);
            std::size_t j2 = here();
            emit(SOp::Jump);
            patch(j1, here());
            if (e.args.size() > 1)
                inlineBlock(*e.args[1]);
            else
                emit(SOp::PushLit, literal(Word::fromAtom(
                    vm_.selectors().intern("nil"))));
            patch(j2, here());
            return;
        }

        if (sel == "and:" || sel == "or:") {
            value(*e.receiver);
            emit(SOp::Dup);
            std::size_t j1 = here();
            emit(sel == "and:" ? SOp::JumpFalse : SOp::JumpTrue);
            emit(SOp::Pop);
            inlineBlock(*e.args[0]);
            patch(j1, here());
            return;
        }

        if (sel == "whileTrue:" || sel == "whileFalse:") {
            sim::fatalIf(e.receiver->kind != ExprKind::Block, "line ",
                         e.line, ": ", sel, " needs a block receiver");
            std::size_t top = here();
            inlineBlock(*e.receiver);
            std::size_t j1 = here();
            emit(sel == "whileTrue:" ? SOp::JumpFalse : SOp::JumpTrue);
            inlineBlock(*e.args[0]);
            emit(SOp::Pop);
            std::size_t j2 = here();
            emit(SOp::Jump);
            patch(j2, top);
            patch(j1, here());
            emit(SOp::PushLit, literal(Word::fromAtom(
                vm_.selectors().intern("nil"))));
            return;
        }

        if (sel == "timesRepeat:") {
            value(*e.receiver);
            std::int32_t n = hiddenTemp();
            emit(SOp::StoreLocal, n);
            emit(SOp::PushLit, literal(Word::fromInt(0)));
            std::int32_t i = hiddenTemp();
            emit(SOp::StoreLocal, i);
            std::size_t top = here();
            emit(SOp::PushLocal, i);
            emit(SOp::PushLocal, n);
            sendTo("<", {});
            // sendTo with explicit argc: '<' takes 1 arg already on
            // stack; emit manually instead:
            method_.code.pop_back();
            emit(SOp::Send,
                 static_cast<std::int32_t>(
                     vm_.selectors().intern("<")),
                 1);
            std::size_t j1 = here();
            emit(SOp::JumpFalse);
            inlineBlock(*e.args[0]);
            emit(SOp::Pop);
            emit(SOp::PushLocal, i);
            emit(SOp::PushLit, literal(Word::fromInt(1)));
            emit(SOp::Send,
                 static_cast<std::int32_t>(
                     vm_.selectors().intern("+")),
                 1);
            emit(SOp::StoreLocal, i);
            std::size_t j2 = here();
            emit(SOp::Jump);
            patch(j2, top);
            patch(j1, here());
            emit(SOp::PushLit, literal(Word::fromAtom(
                vm_.selectors().intern("nil"))));
            return;
        }

        if (sel == "to:do:" || sel == "to:by:do:") {
            const Expr &blk = *e.args.back();
            sim::fatalIf(blk.kind != ExprKind::Block ||
                         blk.params.size() != 1,
                         "line ", e.line,
                         ": to:do: needs a one-parameter block");
            std::int64_t by = 1;
            if (sel == "to:by:do:") {
                sim::fatalIf(e.args[1]->kind != ExprKind::IntLit,
                             "line ", e.line,
                             ": to:by:do: needs a literal step");
                by = e.args[1]->intVal;
            }
            value(*e.receiver);
            std::int32_t i = hiddenTemp();
            sim::fatalIf(locals_.count(blk.params[0]) != 0, "line ",
                         e.line, ": loop variable shadows a name");
            locals_[blk.params[0]] = i;
            emit(SOp::StoreLocal, i);
            value(*e.args[0]);
            std::int32_t limit = hiddenTemp();
            emit(SOp::StoreLocal, limit);
            std::size_t top = here();
            if (by > 0) {
                emit(SOp::PushLocal, i);
                emit(SOp::PushLocal, limit);
            } else {
                emit(SOp::PushLocal, limit);
                emit(SOp::PushLocal, i);
            }
            emit(SOp::Send,
                 static_cast<std::int32_t>(
                     vm_.selectors().intern("<=")),
                 1);
            std::size_t j1 = here();
            emit(SOp::JumpFalse);
            bool pushed = false;
            for (const ExprPtr &stmt : blk.body) {
                if (stmt->isReturn) {
                    value(*stmt);
                    emit(SOp::Return);
                    continue;
                }
                if (pushed)
                    emit(SOp::Pop);
                value(*stmt);
                pushed = true;
            }
            if (pushed)
                emit(SOp::Pop);
            emit(SOp::PushLocal, i);
            emit(SOp::PushLit, literal(Word::fromInt(
                static_cast<std::int32_t>(by))));
            emit(SOp::Send,
                 static_cast<std::int32_t>(
                     vm_.selectors().intern("+")),
                 1);
            emit(SOp::StoreLocal, i);
            std::size_t j2 = here();
            emit(SOp::Jump);
            patch(j2, top);
            patch(j1, here());
            locals_.erase(blk.params[0]);
            emit(SOp::PushLit, literal(Word::fromAtom(
                vm_.selectors().intern("nil"))));
            return;
        }

        // Ordinary send.
        value(*e.receiver);
        sendTo(sel, e.args);
    }

    StackVm &vm_;
    const std::unordered_map<std::string, std::uint32_t> &fields_;
    std::unordered_map<std::string, std::int32_t> locals_;
    unsigned numArgs_ = 0;
    unsigned numTemps_ = 0;
    unsigned extraTemps_ = 0;
    SMethod method_;
};

/** Byte size of one method under the documented byte encoding. */
std::size_t
methodBytes(const SMethod &m)
{
    std::size_t bytes = 0;
    for (const SInstr &i : m.code) {
        switch (i.op) {
          case SOp::PushSelf:
          case SOp::Pop:
          case SOp::Dup:
          case SOp::Return:
          case SOp::ReturnSelf:
            bytes += 1;
            break;
          default:
            bytes += 2;
            break;
        }
    }
    return bytes;
}

/** Field maps mirroring the COM compiler's layout. */
std::unordered_map<std::string, std::uint32_t>
fieldMap(const std::unordered_map<std::string, const ClassDef *> &by,
         const ClassDef &cd)
{
    std::unordered_map<std::string, std::uint32_t> map;
    std::vector<const ClassDef *> chain;
    const ClassDef *c = &cd;
    while (c) {
        chain.push_back(c);
        if (c->superName.empty())
            break;
        auto it = by.find(c->superName);
        c = it == by.end() ? nullptr : it->second;
    }
    std::uint32_t idx = 0;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it)
        for (const std::string &f : (*it)->fields)
            map[f] = idx++;
    return map;
}

} // namespace

StackCompiled
StackCompiler::compile(const Program &program)
{
    StackCompiled out;
    std::unordered_map<std::string, const ClassDef *> by_name;
    for (const ClassDef &cd : program.classes)
        by_name[cd.name] = &cd;

    // Define classes in dependency order.
    std::size_t defined = 0, last = SIZE_MAX;
    while (defined < program.classes.size() && defined != last) {
        last = defined;
        for (const ClassDef &cd : program.classes) {
            if (vm_.classByName(cd.name) >= 0)
                continue;
            std::int32_t super = vm_.classByName("Object");
            if (!cd.superName.empty()) {
                super = vm_.classByName(cd.superName);
                if (super < 0)
                    continue;
            }
            vm_.defineClass(cd.name, super,
                            static_cast<std::uint32_t>(
                                cd.fields.size()));
            ++defined;
        }
    }
    sim::fatalIf(defined < program.classes.size(),
                 "class hierarchy has a cycle or unknown superclass");

    for (const ClassDef &cd : program.classes) {
        std::int32_t cls = vm_.classByName(cd.name);
        auto fields = fieldMap(by_name, cd);
        for (const MethodDef &md : cd.methods) {
            StackEmitter em(vm_, fields, md.argNames, md.temps);
            SMethod m = em.emitBody(md.selector, md.body);
            out.instructionsEmitted += m.code.size();
            out.codeBytes += methodBytes(m);
            vm_.installMethod(cls, std::move(m));
            ++out.methodsInstalled;
        }
    }

    if (program.hasMain) {
        std::unordered_map<std::string, std::uint32_t> no_fields;
        StackEmitter em(vm_, no_fields, {}, program.mainTemps);
        out.entry = em.emitBody("main", program.mainBody);
        out.instructionsEmitted += out.entry.code.size();
        out.codeBytes += methodBytes(out.entry);
    }
    return out;
}

StackCompiled
StackCompiler::compileSource(const std::string &source)
{
    Program p = parse(source);
    return compile(p);
}

} // namespace com::lang
