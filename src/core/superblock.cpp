/**
 * @file
 * Superblock translation and the threaded-code runner.
 *
 * Split from machine.cpp: these are the only Machine methods that
 * execute guest instructions without going through fetch()/step(), and
 * keeping them in one file makes the bit-identity argument local. The
 * contract, checked by tests/test_timing_parity.cpp across on/off and
 * toggled-mid-run configurations:
 *
 *   For every instruction a superblock executes, every guest-visible
 *   probe and charge happens exactly as step() would have done it, in
 *   the same order — the icache lookup (a pre-bound rehit is
 *   stamp-for-stamp a lookup hit; misses fill and stall identically),
 *   the operand reads with their context-cache touches and ATLB class
 *   probes (constant-mode operands holding non-pointer words are the
 *   exception: their read has no guest-visible effect at all, so it is
 *   done once at translation), the ITLB lookup (rehit again), and the
 *   primitive/call/return effects — except the two commutative
 *   pipeline counters of issue(), folded into one issueFolded() at
 *   block exit.
 *
 * Execution threads through per-shape handlers (computed goto where
 * the compiler supports it): when a superinstruction's ITLB binding is
 * first made, the bound entry's shape — value primitive, conditional
 * jump, data access, result write, defined-method call — is recorded,
 * and later executions jump straight to the matching handler after
 * revalidating the binding with two integer compares, skipping the
 * interpreter's dispatch chain entirely.
 *
 * Everything surprising side-exits after the current instruction with
 * the fold applied, leaving the machine mid-method exactly where the
 * interpreter would be; run() then continues with plain step()s.
 */

#include "core/machine.hpp"

#include "mem/fp_address.hpp"

namespace com::core {

using mem::FpAddress;
using mem::Word;

SuperBlock *
Machine::translateSuperblock()
{
    // Context-area words can be rewritten through the context cache
    // without touching backing memory; the invalidation bus could not
    // observe that, so context code is never translated (the decoded
    // cache applies the same exclusion).
    if (ipAbs_ == 0 || ipAbs_ >= ipLimitAbs_ ||
        contexts_->containsAbs(ipAbs_))
        return nullptr;

    auto block = std::make_unique<SuperBlock>();
    block->entryAbs = ipAbs_;
    mem::AbsAddr limit = ipLimitAbs_;
    if (limit - ipAbs_ > cfg_.superblockMaxLen)
        limit = ipAbs_ + cfg_.superblockMaxLen;

    // Precompute a constant-mode operand when the table already holds
    // a non-pointer word at its index: the runtime read would have no
    // guest-visible effect (no context-cache touch, no ATLB probe —
    // the class of a non-pointer is a pure function of the word), and
    // the table is append-only while this block can live — images are
    // restored only through the invalidation bus's reset. Words not
    // yet interned, and pointer constants (whose class comes from a
    // guest-visible ATLB translation), stay on the runtime path.
    auto preconst = [this](const Operand &o, bool &flag, Word &w,
                           mem::ClassId &cls) {
        if (o.mode != Mode::Const || o.index >= constants_->size())
            return;
        Word v = constants_->at(o.index);
        if (v.isPointer())
            return;
        flag = true;
        w = v;
        cls = v.primitiveClass();
    };

    for (mem::AbsAddr abs = ipAbs_; abs < limit; ++abs) {
        Word w = memory_.peek(abs);
        if (!w.isInstruction())
            break; // the interpreter's ExecuteData path handles it
        SuperInstr si;
        si.instr = Instr::decode(w.bits());
        if (si.instr.extended) {
            // Zero-operand sends read their receiver/argument from
            // next-context slots at execution time; only the dispatch
            // key's class usage is fixed here (it gates the binding
            // guard exactly as buildDispatchKey zeroes unused
            // classes).
            si.exec = SuperExec::ExtSend;
            si.useB = si.instr.implicitCount >= 1;
            si.useC = si.instr.implicitCount >= 2;
            block->code.push_back(si);
            continue;
        }
        if (si.instr.op == Op::Nop || si.instr.op == Op::Halt ||
            si.instr.op == Op::Movea) {
            si.exec = SuperExec::Bypass;
        } else {
            si.exec = SuperExec::Generic;
            const OpTraits &traits = opTraits(si.instr.op);
            si.readsA = traits.readsA;
            si.readsSources = traits.readsSources;
            si.useA = traits.spec.useA;
            si.useB = traits.spec.useB;
            si.useC = traits.spec.useC;
            if (si.readsA)
                preconst(si.instr.a, si.constA, si.preA, si.preAcls);
            if (si.readsSources) {
                preconst(si.instr.b, si.constB, si.preB, si.preBcls);
                preconst(si.instr.c, si.constC, si.preC, si.preCcls);
            }
        }
        bool ends = si.instr.ret; // returns always transfer control
        block->code.push_back(si);
        if (ends)
            break;
    }
    if (block->code.empty())
        return nullptr;
    return superblocks_.insert(std::move(block));
}

/**
 * Record the execution shape of a freshly bound ITLB resolution so
 * later guarded executions thread straight to the specialized handler.
 */
void
Machine::bindSpecialize(SuperInstr &si, const cache::MethodEntry &entry)
{
    if (si.instr.extended)
        return; // ExtSend keeps its context-staged operand path
    if (!entry.primitive) {
        si.exec = SuperExec::Call;
        si.methodVaddr = entry.methodVaddr;
        si.argWords = entry.argWords;
        return;
    }
    if (entry.functionUnit >= kHostBase) {
        si.exec = SuperExec::Generic; // host routines can do anything
        return;
    }
    Op fu = static_cast<Op>(entry.functionUnit);
    si.fu = fu;
    if (isValuePrimitive(fu)) {
        switch (fu) {
          case Op::Move:
            si.exec = SuperExec::ValueMove;
            break;
          case Op::Add:
            si.exec = SuperExec::ValueAdd;
            break;
          case Op::Mul:
            si.exec = SuperExec::ValueMul;
            break;
          case Op::Lt:
            si.exec = SuperExec::ValueLt;
            break;
          case Op::Eq:
            si.exec = SuperExec::ValueEq;
            break;
          default:
            si.exec = SuperExec::Value;
            break;
        }
    } else if (fu == Op::Fjmp || fu == Op::Rjmp || fu == Op::FjmpF ||
             fu == Op::RjmpF)
        si.exec = SuperExec::Jump;
    else if (fu == Op::At || fu == Op::AtPut)
        si.exec = SuperExec::Data;
    else if (fu == Op::PutRes)
        si.exec = SuperExec::PutRes;
    else
        si.exec = SuperExec::Generic;
}

/**
 * classOfWord with the pointer case's ATLB lookup replayed through a
 * bound slot when the vaddr repeats. Bit-identical: the replayed
 * lookup registers exactly one hit, and the class it returns is the
 * bound descriptor's — unchanged while the generation holds.
 * Non-pointer words never consult the ATLB in either version.
 */
mem::ClassId
Machine::classOfWordBound(const Word &w, AtlbBind &bind)
{
    if (!w.isPointer())
        return w.primitiveClass();
    if (bind.bound && bind.gen == atlb_->generation() &&
        w.asPointer() == bind.ptr) {
        // Same vaddr, unchanged descriptor: the zero-offset checks
        // resolve as they did at bind time (Ok), so only the hit is
        // registered and the class replayed.
        atlb_->rehit(bind.slot);
        return bind.cls;
    }
    std::uint64_t lat = 0;
    void *slot = nullptr;
    mem::XlateResult r = atlb_->translateBind(
        *segments_, w.asPointer(), 0, false, &lat, &slot);
    if (lat)
        pipeline_.stallAtlbMiss(lat);
    if (!r.ok()) {
        // Dangling capability: raw pointer class (classOfWord).
        bind.bound = false;
        return static_cast<mem::ClassId>(mem::Tag::ObjectPtr);
    }
    bind.bound = slot != nullptr;
    bind.slot = slot;
    bind.gen = atlb_->generation();
    bind.ptr = w.asPointer();
    bind.cls = r.cls;
    return r.cls;
}

/** readOperand with the class probe bound (classOfWordBound). */
void
Machine::readOperandBound(const Operand &o, OperandVal &out,
                          AtlbBind &bind)
{
    switch (o.mode) {
      case Mode::Const:
        out.w = constants_->at(o.index);
        break;
      case Mode::CtxCur:
        out.w = ctxCache_->read(cache::CtxVia::Current, o.index);
        countDataRef(true);
        break;
      case Mode::CtxNext:
        out.w = ctxCache_->read(cache::CtxVia::Next, o.index);
        countDataRef(true);
        break;
    }
    out.cls = classOfWordBound(out.w, bind);
    out.valid = true;
}

/**
 * setIp() that also records a target binding on @p si: while the ATLB
 * generation holds and the target repeats, the Jump handler replays
 * the translation (one registered hit) and the descriptor-derived
 * bounds without the set hash, the way scan or the table find.
 */
GuestFault
Machine::setIpBind(std::uint64_t vaddr, SuperInstr &si)
{
    std::uint64_t lat = 0;
    void *slot = nullptr;
    mem::XlateResult r =
        atlb_->translateBind(*segments_, vaddr, 0, false, &lat, &slot);
    if (lat)
        pipeline_.stallAtlbMiss(lat);
    if (!r.ok()) {
        faultDetail_ = "control transfer to unmapped address";
        si.jt.bound = false;
        return GuestFault::BadJump;
    }
    const mem::SegmentDescriptor *d = segments_->findDescriptor(
        FpAddress::segKey(cfg_.addrFormat, vaddr));
    sim::panicIf(!d, "descriptor vanished during setIp");
    ip_ = vaddr;
    ipAbs_ = r.abs;
    ipLimitAbs_ = d->base + d->length;
    controlTransferred_ = true;
    si.jt.bound = slot != nullptr;
    si.jt.slot = slot;
    si.jt.gen = atlb_->generation();
    si.jt.ptr = vaddr;
    si.jtAbs = r.abs;
    si.jtLimit = ipLimitAbs_;
    return GuestFault::None;
}

GuestFault
Machine::runSuperblock(SuperBlock &sb, std::uint64_t budget)
{
    sim::panicIf(ipAbs_ != sb.entryAbs,
                 "superblock entered away from its entry");

    SuperBlock *cur = &sb;
    std::uint64_t epoch0 = superblocks_.epoch();
    std::uint32_t n = cur->len();
    std::uint32_t i = 0;
    std::uint64_t folded = 0;
    GuestFault f = GuestFault::None;

    // Threaded dispatch over the per-superinstruction execution
    // shapes: computed goto where the compiler supports it, an
    // equivalent switch chain otherwise. Order must match SuperExec.
#if defined(__GNUC__) || defined(__clang__)
#define COMSIM_THREADED_DISPATCH 1
    static const void *const kExecTable[] = {
        &&do_bypass, &&do_generic, &&do_value,  &&do_jump,
        &&do_data,   &&do_putres,  &&do_call,   &&do_vmove,
        &&do_vadd,   &&do_vmul,    &&do_vlt,    &&do_veq,
        &&do_extsend,
    };
#endif

    for (;;) {
        // The executing block may have been retired under our feet (a
        // store into its own range, a GC from a call's context
        // allocation or a host routine): the memory stays alive on
        // the graveyard until run()'s safe point, but the translation
        // may be stale from the next instruction on.
        if (superblocks_.epoch() != epoch0)
            break;
        if (folded >= budget)
            break;
        if (i >= n)
            break; // fell off the end: straight-line continuation
        SuperInstr &si = cur->code[i];
        const Instr &instr = si.instr;

        // fetch()-equivalent: the simulated icache probe (and miss
        // fill + stall) is per-instruction and identical; the fetch
        // address is fixed per superinstruction, so a bound slot is
        // re-registered with a generation compare instead of a hash
        // and a way scan.
        if (si.icBound && si.icGen == icache_->generation()) {
            icache_->rehit(si.icSlot);
        } else {
            void *ic_slot = nullptr;
            if (icache_->lookupBind(ipAbs_, &ic_slot)) {
                si.icBound = true;
                si.icSlot = ic_slot;
                si.icGen = icache_->generation();
            } else {
                si.icBound = false;
                icache_->insert(ipAbs_, 0);
                pipeline_.stallIcacheMiss(cfg_.icacheMissPenalty);
            }
        }

        controlTransferred_ = false;
        ++folded; // issue() folded at exit

        // Step 2: operand reads, exactly as step() orders them —
        // except precomputed non-pointer constants, whose read has no
        // guest-visible effect.
        OperandVal a, b, c;
        if (si.readsA) {
            if (si.constA) {
                a.w = si.preA;
                a.cls = si.preAcls;
                a.valid = true;
            } else {
                readOperandBound(instr.a, a, si.clsA);
            }
        }
        if (si.readsSources) {
            if (si.constB) {
                b.w = si.preB;
                b.cls = si.preBcls;
                b.valid = true;
            } else {
                readOperandBound(instr.b, b, si.clsB);
            }
            if (si.constC) {
                c.w = si.preC;
                c.cls = si.preCcls;
                c.valid = true;
            } else {
                readOperandBound(instr.c, c, si.clsC);
            }
        }

        // Step 3, guarded: the binding holds while the ITLB is
        // structurally unchanged and the runtime operand classes
        // equal the bound key's (the opcode is fixed, and unused
        // class fields are zero on both sides). A passing guard makes
        // the rehit below stamp-for-stamp identical to the full
        // lookup hit it replaces.
#define COMSIM_SB_GUARD()                                              \
    (si.bound && si.gen == itlb_->generation() &&                      \
     (!si.useA || a.cls == si.key.classA) &&                           \
     (!si.useB || b.cls == si.key.classB) &&                           \
     (!si.useC || c.cls == si.key.classC))

#if COMSIM_THREADED_DISPATCH
        goto *kExecTable[static_cast<std::uint8_t>(si.exec)];
#else
        switch (si.exec) {
          case SuperExec::Bypass:
            goto do_bypass;
          case SuperExec::Generic:
            goto do_generic;
          case SuperExec::Value:
            goto do_value;
          case SuperExec::Jump:
            goto do_jump;
          case SuperExec::Data:
            goto do_data;
          case SuperExec::PutRes:
            goto do_putres;
          case SuperExec::Call:
            goto do_call;
          case SuperExec::ValueMove:
            goto do_vmove;
          case SuperExec::ValueAdd:
            goto do_vadd;
          case SuperExec::ValueMul:
            goto do_vmul;
          case SuperExec::ValueLt:
            goto do_vlt;
          case SuperExec::ValueEq:
            goto do_veq;
          case SuperExec::ExtSend:
            goto do_extsend;
        }
#endif

    do_bypass:
        // nop/halt/movea: dispatch() short-circuits before the ITLB.
        f = dispatch(instr, a, b, c);
        goto post;

    do_value:
        if (!COMSIM_SB_GUARD())
            goto do_rebind;
        itlb_->rehit(si.slot);
        {
            ValueResult vr =
                evalValuePrimitive(si.fu, b.w, c.w, *constants_);
            if (vr.fault != GuestFault::None) {
                f = vr.fault;
                goto post;
            }
            writeOperand(instr.a, vr.value);
        }
        goto post;

        // Per-opcode value handlers. Integer operands take an inlined
        // path computing exactly what evalValuePrimitive computes for
        // two ints (wrapping 32-bit arithmetic; comparisons through
        // double are exact for 32-bit ints, so the int compare is the
        // same boolean); any other tags fall back to the shared
        // routine. Neither path can fault except where noted.

    do_vmove:
        if (!COMSIM_SB_GUARD())
            goto do_rebind;
        itlb_->rehit(si.slot);
        writeOperand(instr.a, b.w); // Move: result is b, no fault
        goto post;

    do_vadd:
        if (!COMSIM_SB_GUARD())
            goto do_rebind;
        itlb_->rehit(si.slot);
        if (b.w.isInt() && c.w.isInt()) {
            writeOperand(
                instr.a,
                Word::fromInt(static_cast<std::int32_t>(
                    static_cast<std::uint32_t>(b.w.asInt()) +
                    static_cast<std::uint32_t>(c.w.asInt()))));
        } else {
            ValueResult vr =
                evalValuePrimitive(Op::Add, b.w, c.w, *constants_);
            writeOperand(instr.a, vr.value);
        }
        goto post;

    do_vmul:
        if (!COMSIM_SB_GUARD())
            goto do_rebind;
        itlb_->rehit(si.slot);
        if (b.w.isInt() && c.w.isInt()) {
            writeOperand(
                instr.a,
                Word::fromInt(static_cast<std::int32_t>(
                    static_cast<std::uint32_t>(b.w.asInt()) *
                    static_cast<std::uint32_t>(c.w.asInt()))));
        } else {
            ValueResult vr =
                evalValuePrimitive(Op::Mul, b.w, c.w, *constants_);
            writeOperand(instr.a, vr.value);
        }
        goto post;

    do_vlt:
        if (!COMSIM_SB_GUARD())
            goto do_rebind;
        itlb_->rehit(si.slot);
        if (b.w.isInt() && c.w.isInt()) {
            writeOperand(instr.a, constants_->boolWord(
                                      b.w.asInt() < c.w.asInt()));
        } else {
            ValueResult vr =
                evalValuePrimitive(Op::Lt, b.w, c.w, *constants_);
            writeOperand(instr.a, vr.value);
        }
        goto post;

    do_veq:
        if (!COMSIM_SB_GUARD())
            goto do_rebind;
        itlb_->rehit(si.slot);
        if (b.w.isInt() && c.w.isInt()) {
            writeOperand(instr.a, constants_->boolWord(
                                      b.w.asInt() == c.w.asInt()));
        } else {
            ValueResult vr =
                evalValuePrimitive(Op::Eq, b.w, c.w, *constants_);
            writeOperand(instr.a, vr.value);
        }
        goto post;

    do_jump:
        if (!COMSIM_SB_GUARD())
            goto do_rebind;
        itlb_->rehit(si.slot);
        {
            bool truthy;
            if (a.w.isAtom()) {
                truthy = a.w.asAtom() == constants_->trueAtom();
            } else if (a.w.isInt()) {
                truthy = a.w.asInt() != 0;
            } else {
                faultDetail_ = "jump condition has no truth value";
                f = GuestFault::BadJump;
                goto post;
            }
            bool want_true = si.fu == Op::Fjmp || si.fu == Op::Rjmp;
            if (truthy != want_true)
                goto post; // not taken
            if (!c.w.isInt()) {
                faultDetail_ = "jump offset must be an integer";
                f = GuestFault::BadJump;
                goto post;
            }
            std::int64_t off = c.w.asInt();
            bool forward = si.fu == Op::Fjmp || si.fu == Op::FjmpF;
            std::uint64_t target = FpAddress::addOffset(
                cfg_.addrFormat, ip_, forward ? 1 + off : 1 - off);
            pipeline_.chargeBranchDelay();
            if (si.jt.bound && si.jt.gen == atlb_->generation() &&
                target == si.jt.ptr) {
                // Replay of setIp on the bound target: the zero-offset
                // translation resolved Ok at bind time and the
                // descriptor is unchanged, so register the hit and
                // restore the recorded result.
                atlb_->rehit(si.jt.slot);
                ip_ = target;
                ipAbs_ = si.jtAbs;
                ipLimitAbs_ = si.jtLimit;
                controlTransferred_ = true;
                f = GuestFault::None;
            } else {
                f = setIpBind(target, si);
            }
        }
        goto post;

    do_data:
        if (!COMSIM_SB_GUARD())
            goto do_rebind;
        itlb_->rehit(si.slot);
        {
            // dataAccess with its first base translation optionally
            // replayed through a bound ATLB slot (at:/at:put: on the
            // same object repeats the segment); the offset-dependent
            // checks run per call, and everything after translation
            // is the shared dataAccessResolved tail.
            OperandVal av = a;
            bool is_put = instr.op == Op::AtPut;
            std::int32_t idx = c.w.asInt();
            if (idx < 0) {
                faultDetail_ = "negative index";
                f = GuestFault::Bounds;
                goto post;
            }
            std::uint64_t base = b.w.asPointer();
            mem::XlateResult r;
            bool first = true;
            for (int attempt = 0;; ++attempt) {
                if (first && si.da.bound &&
                    si.da.gen == atlb_->generation() &&
                    base == si.da.ptr) {
                    r = atlb_->translateBound(si.da.slot, *segments_,
                                              base,
                                              static_cast<std::uint64_t>(
                                                  idx),
                                              is_put);
                } else {
                    std::uint64_t lat = 0;
                    void *slot = nullptr;
                    r = atlb_->translateBind(
                        *segments_, base,
                        static_cast<std::uint64_t>(idx), is_put, &lat,
                        &slot);
                    if (first) {
                        si.da.bound = slot != nullptr;
                        si.da.slot = slot;
                        si.da.gen = atlb_->generation();
                        si.da.ptr = base;
                    }
                    if (lat)
                        pipeline_.stallAtlbMiss(lat);
                }
                first = false;
                if (r.status != mem::XlateStatus::GrowthTrap)
                    break;
                // Growth trap: retry with the replacement segment
                // (the trap handler semantics of dataAccess).
                pipeline_.chargeTrap(cfg_.growthTrapCost);
                base = FpAddress::addOffset(cfg_.addrFormat, r.newVaddr,
                                            -idx);
                if (instr.b.mode != Mode::Const)
                    writeOperand(instr.b,
                                 Word::fromPointer(
                                     static_cast<std::uint32_t>(base)));
                sim::panicIf(attempt > 2,
                             "growth trap did not converge");
            }
            f = dataAccessResolved(instr, av, r, is_put);
        }
        goto post;

    do_putres:
        if (!COMSIM_SB_GUARD())
            goto do_rebind;
        itlb_->rehit(si.slot);
        f = writeThroughPointer(a.w, b.w);
        goto post;

    do_call:
        if (!COMSIM_SB_GUARD())
            goto do_rebind;
        itlb_->rehit(si.slot);
        f = performCall(si.methodVaddr, si.argWords, instr, a, b, c);
        goto post;

    do_generic:
        if (!COMSIM_SB_GUARD())
            goto do_rebind;
        f = executeResolved(instr, a, b, c, *itlb_->rehit(si.slot));
        goto post;

    do_extsend:
        // step()'s extended-send path: the receiver and argument were
        // staged in the next context by the program, and their class
        // probes replay through bound ATLB slots like ordinary
        // operand reads. Dispatch stays generic — executeResolved
        // handles host routines, primitives and defined methods the
        // same way dispatch() would.
        if (instr.implicitCount >= 1) {
            b.w = ctxCache_->read(cache::CtxVia::Next,
                                  obj::kCtxReceiver);
            countDataRef(true);
            b.cls = classOfWordBound(b.w, si.clsB);
            b.valid = true;
        }
        if (instr.implicitCount >= 2) {
            c.w = ctxCache_->read(cache::CtxVia::Next,
                                  obj::kCtxFirstArg);
            countDataRef(true);
            c.cls = classOfWordBound(c.w, si.clsC);
            c.valid = true;
        }
        sim::panicIf(instr.ret,
                     "return bit on an extended send is not supported");
        if (!COMSIM_SB_GUARD())
            goto do_rebind;
        f = executeResolved(instr, a, b, c, *itlb_->rehit(si.slot));
        goto post;

    do_rebind: {
        // Guard failure (or never bound): the full lookup, identical
        // to dispatch()'s step 3, re-binding and re-specializing on a
        // hit. A miss resolves through the standard method lookup and
        // fills the ITLB; the fill bumps the generation, so binding
        // waits for the next execution's lookupBind.
        cache::ItlbKey key;
        mem::ClassId receiver_cls;
        obj::SelectorId sel;
        buildDispatchKey(instr, a, b, c, key, receiver_cls, sel);
        void *slot = nullptr;
        // Lives here, not in the miss branch below: resolveItlbMiss
        // hands back &filled, which executeResolved still reads
        // after that branch closes.
        cache::MethodEntry filled;
        const cache::MethodEntry *me = itlb_->lookupBind(key, &slot);
        if (me) {
            si.bound = true;
            si.slot = slot;
            si.gen = itlb_->generation();
            si.key = key;
            bindSpecialize(si, *me);
        } else {
            si.bound = false;
            si.exec = SuperExec::Generic;
            me = resolveItlbMiss(key, instr, receiver_cls, sel, filled,
                                 f);
            if (!me)
                goto post; // DNU: f is set
        }
        f = executeResolved(instr, a, b, c, *me);
        goto post;
    }

    post:
        if (f != GuestFault::None)
            break;
        if (instr.ret && !finished_) {
            bool fin = false;
            f = performReturn(fin);
            if (f != GuestFault::None)
                break;
            finished_ = fin;
            if (finished_)
                break;
        }
        if (controlTransferred_) {
            // Chain: run() would re-enter a block at this transfer
            // target on its very next iteration anyway (its maintain()
            // in between is a no-op while the context cache is idle),
            // so continue here and keep folding, skipping the
            // per-entry loop overhead. A fresh find() result is live
            // by construction, so the epoch watermark restarts. Any
            // other condition run() would check — a block tail
            // aliased past the current method's limit, context-cache
            // pressure — side-exits as before.
            SuperBlock *next = superblocks_.find(ipAbs_);
            if (next && next->entryAbs + next->len() <= ipLimitAbs_ &&
                ctxCache_->maintainIdle()) {
                cur = next;
                n = cur->len();
                i = 0;
                epoch0 = superblocks_.epoch();
                continue;
            }
            break; // side exit: the transfer already set the IP
        }
        ip_ = FpAddress::addOffset(cfg_.addrFormat, ip_, 1);
        ++ipAbs_;
        // Batching is only exact while the per-instruction
        // maintain() calls we skip are no-ops; an in-block context
        // fault-in can end that, so hand back to the interpreter
        // (run() performs this instruction's maintain() either way).
        if (!ctxCache_->maintainIdle())
            break;
        ++i;
    }

    pipeline_.issueFolded(folded);
    return f;
#undef COMSIM_SB_GUARD
#undef COMSIM_THREADED_DISPATCH
}

} // namespace com::core
