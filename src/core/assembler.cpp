#include "core/assembler.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>

#include "sim/strutil.hpp"

namespace com::core {

namespace {

/** A parsed line before label resolution. */
struct PendingInstr
{
    std::string mnemonic;
    bool ret = false;
    std::vector<std::string> operands;
    int line = 0;
};

/** @return the Op for a base mnemonic, if it names one. */
std::optional<Op>
opForMnemonic(const std::string &m)
{
    for (unsigned t = 0; t < static_cast<unsigned>(Op::kFirstUserOp);
         ++t) {
        Op op = static_cast<Op>(t);
        if (m == opName(op))
            return op;
    }
    return std::nullopt;
}

/** Split a line into comma-separated operand fields. */
std::vector<std::string>
splitOperands(std::string_view rest)
{
    std::vector<std::string> out;
    std::string cur;
    bool in_string = false;
    for (char ch : rest) {
        if (ch == '"')
            in_string = !in_string;
        if (ch == ',' && !in_string) {
            std::string t(sim::trim(cur));
            if (!t.empty())
                out.push_back(t);
            cur.clear();
        } else {
            cur += ch;
        }
    }
    std::string t(sim::trim(cur));
    if (!t.empty())
        out.push_back(t);
    return out;
}

} // namespace

std::vector<Instr>
Assembler::assemble(const std::string &source)
{
    // Pass 1: strip comments, collect labels and pending instructions.
    std::map<std::string, std::size_t> labels;
    std::vector<PendingInstr> pending;

    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
        std::size_t eol = source.find('\n', pos);
        if (eol == std::string::npos)
            eol = source.size();
        std::string line = source.substr(pos, eol - pos);
        pos = eol + 1;
        ++line_no;

        std::size_t sc = line.find(';');
        if (sc != std::string::npos)
            line = line.substr(0, sc);
        std::string trimmed(sim::trim(line));
        if (trimmed.empty())
            continue;

        // Labels (possibly several per line, then an instruction).
        while (true) {
            std::size_t colon = trimmed.find(':');
            if (colon == std::string::npos)
                break;
            std::string head(sim::trim(trimmed.substr(0, colon)));
            bool is_label = !head.empty();
            for (char ch : head)
                if (!std::isalnum(static_cast<unsigned char>(ch)) &&
                    ch != '_')
                    is_label = false;
            // Keyword selectors inside quotes also contain ':'; only
            // treat a leading bare identifier as a label.
            if (!is_label || head.find('"') != std::string::npos)
                break;
            sim::fatalIf(labels.count(head) != 0, "asm line ", line_no,
                         ": duplicate label '", head, "'");
            labels[head] = pending.size();
            trimmed = std::string(sim::trim(trimmed.substr(colon + 1)));
            if (trimmed.empty())
                break;
        }
        if (trimmed.empty())
            continue;

        PendingInstr pi;
        pi.line = line_no;
        std::size_t sp = trimmed.find_first_of(" \t");
        pi.mnemonic = trimmed.substr(0, sp);
        if (sp != std::string::npos)
            pi.operands = splitOperands(
                std::string_view(trimmed).substr(sp + 1));
        if (pi.mnemonic.size() > 2 &&
            pi.mnemonic.substr(pi.mnemonic.size() - 2) == ".r") {
            pi.ret = true;
            pi.mnemonic = pi.mnemonic.substr(0, pi.mnemonic.size() - 2);
        }
        pending.push_back(std::move(pi));
    }

    // Pass 2: encode.
    auto parseOperand = [&](const std::string &text,
                            int line) -> Operand {
        sim::fatalIf(text.empty(), "asm line ", line, ": empty operand");
        if (text[0] == 'c' || text[0] == 'n') {
            char *end = nullptr;
            long idx = std::strtol(text.c_str() + 1, &end, 10);
            sim::fatalIf(*end != '\0' || idx < 0 || idx >= 32,
                         "asm line ", line, ": bad context operand '",
                         text, "'");
            return text[0] == 'c'
                       ? Operand::cur(static_cast<std::uint8_t>(idx))
                       : Operand::next(static_cast<std::uint8_t>(idx));
        }
        if (text[0] == '#') {
            long idx = std::strtol(text.c_str() + 1, nullptr, 10);
            sim::fatalIf(idx < 0 || idx >= 128, "asm line ", line,
                         ": bad constant index '", text, "'");
            return Operand::cons(static_cast<std::uint8_t>(idx));
        }
        if (text[0] == '=') {
            std::string lit = text.substr(1);
            mem::Word w;
            if (lit == "true") {
                w = machine_.constants().trueWord();
            } else if (lit == "false") {
                w = machine_.constants().falseWord();
            } else if (lit == "nil") {
                w = machine_.constants().nilWord();
            } else if (lit.size() > 1 && lit[0] == '#') {
                w = mem::Word::fromAtom(
                    machine_.selectors().intern(lit.substr(1)));
            } else if (lit.find('.') != std::string::npos) {
                w = mem::Word::fromFloat(std::strtof(lit.c_str(),
                                                     nullptr));
            } else {
                char *end = nullptr;
                long v = std::strtol(lit.c_str(), &end, 0);
                sim::fatalIf(*end != '\0', "asm line ", line,
                             ": bad literal '", text, "'");
                w = mem::Word::fromInt(static_cast<std::int32_t>(v));
            }
            return Operand::cons(machine_.constants().intern(w));
        }
        sim::fatal("asm line ", line, ": unparseable operand '", text,
                   "'");
    };

    auto labelTarget = [&](const std::string &text,
                           int line) -> std::size_t {
        sim::fatalIf(text.empty() || text[0] != '@', "asm line ", line,
                     ": expected @label, got '", text, "'");
        auto it = labels.find(text.substr(1));
        sim::fatalIf(it == labels.end(), "asm line ", line,
                     ": unknown label '", text, "'");
        return it->second;
    };

    auto quoted = [&](const std::string &text, int line) -> std::string {
        sim::fatalIf(text.size() < 2 || text.front() != '"' ||
                     text.back() != '"',
                     "asm line ", line, ": expected \"selector\"");
        return text.substr(1, text.size() - 2);
    };

    std::vector<Instr> code;
    for (std::size_t pc = 0; pc < pending.size(); ++pc) {
        const PendingInstr &pi = pending[pc];
        const auto &ops = pi.operands;
        const int ln = pi.line;
        const std::string &m = pi.mnemonic;

        auto emitJump = [&](Op fwd, Op rev, const Operand &cond,
                            std::size_t target) {
            // Offsets are relative to the instruction after the jump.
            std::int64_t delta = static_cast<std::int64_t>(target) -
                                 static_cast<std::int64_t>(pc) - 1;
            Op op = delta >= 0 ? fwd : rev;
            std::int64_t mag = delta >= 0 ? delta : -delta;
            Operand off = Operand::cons(machine_.constants().intern(
                mem::Word::fromInt(static_cast<std::int32_t>(mag))));
            code.push_back(Instr::make(op, cond, Operand::cur(0), off,
                                       pi.ret));
        };

        if (m == "jmp") {
            sim::fatalIf(ops.size() != 1, "asm line ", ln,
                         ": jmp takes @label");
            Operand cond = Operand::cons(kConstTrue);
            emitJump(Op::Fjmp, Op::Rjmp, cond, labelTarget(ops[0], ln));
            continue;
        }
        if (m == "jt" || m == "jf") {
            sim::fatalIf(ops.size() != 2, "asm line ", ln, ": ", m,
                         " takes cond, @label");
            Operand cond = parseOperand(ops[0], ln);
            if (m == "jt")
                emitJump(Op::Fjmp, Op::Rjmp, cond,
                         labelTarget(ops[1], ln));
            else
                emitJump(Op::FjmpF, Op::RjmpF, cond,
                         labelTarget(ops[1], ln));
            continue;
        }
        if (m == "send") {
            sim::fatalIf(ops.size() != 2, "asm line ", ln,
                         ": send takes \"selector\", count");
            std::string sel = quoted(ops[0], ln);
            long count = std::strtol(ops[1].c_str(), nullptr, 10);
            sim::fatalIf(count < 0 || count > 2, "asm line ", ln,
                         ": implicit count must be 0..2");
            std::uint32_t sid = machine_.selectors().intern(sel);
            code.push_back(Instr::makeSend(
                sid, static_cast<std::uint8_t>(count), pi.ret));
            continue;
        }
        if (m == "msg") {
            sim::fatalIf(ops.size() != 4, "asm line ", ln,
                         ": msg takes \"selector\", A, B, C");
            std::string sel = quoted(ops[0], ln);
            Op op = machine_.assignOpcode(sel);
            sim::fatalIf(op == Op::kExtendedOp, "asm line ", ln,
                         ": opcode token space full for '", sel, "'");
            code.push_back(Instr::make(op, parseOperand(ops[1], ln),
                                       parseOperand(ops[2], ln),
                                       parseOperand(ops[3], ln),
                                       pi.ret));
            continue;
        }

        std::optional<Op> op = opForMnemonic(m);
        sim::fatalIf(!op, "asm line ", ln, ": unknown mnemonic '", m,
                     "'");
        Operand a = Operand::cur(0), b = Operand::cur(0),
                c = Operand::cur(0);
        if (ops.size() >= 1)
            a = parseOperand(ops[0], ln);
        if (ops.size() >= 2)
            b = parseOperand(ops[1], ln);
        if (ops.size() >= 3)
            c = parseOperand(ops[2], ln);
        sim::fatalIf(ops.size() > 3, "asm line ", ln,
                     ": too many operands");
        code.push_back(Instr::make(*op, a, b, c, pi.ret));
    }
    return code;
}

std::uint64_t
Assembler::assembleMethod(mem::ClassId cls, const std::string &selector,
                          const std::string &source)
{
    return machine_.installMethod(cls, selector, assemble(source));
}

std::string
Assembler::disassemble(const Instr &instr)
{
    auto operand = [](const Operand &o) -> std::string {
        switch (o.mode) {
          case Mode::CtxCur:
            return sim::format("c%u", o.index);
          case Mode::CtxNext:
            return sim::format("n%u", o.index);
          case Mode::Const:
            return sim::format("#%u", o.index);
        }
        return "?";
    };
    if (instr.extended)
        return sim::format("send sel=%u count=%u%s", instr.extSelector,
                           instr.implicitCount,
                           instr.ret ? " .r" : "");
    return sim::format("%s%s %s, %s, %s", opName(instr.op),
                       instr.ret ? ".r" : "",
                       operand(instr.a).c_str(),
                       operand(instr.b).c_str(),
                       operand(instr.c).c_str());
}

} // namespace com::core
