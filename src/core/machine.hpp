/**
 * @file
 * The Caltech Object Machine (paper Section 3).
 *
 * Processor state is six registers (Section 3.2): the context pointer
 * (CP), next context pointer (NCP), free context pointer (FP), the
 * instruction pointer (IP), the team space number (SN) and process
 * status (PS). There are no general registers: all accesses go to one
 * name space, with the context cache providing register-speed access to
 * the current and next contexts.
 *
 * Interpretation follows the five steps of Figure 5: (1) the IP looks
 * the next instruction up in the instruction cache; (2) operands and
 * their tags are fetched from the context cache or the constant
 * generator; (3) the opcode and operand types are translated by the
 * ITLB into either a primitive function-unit selection or a method
 * pointer; (4) primitive operations execute; (5) results are stored and
 * the IP is incremented. Non-primitive methods detected at step 3 flush
 * the prefetched instruction and run the method call sequence of
 * Section 3.6.
 *
 * The machine is functional + timing: architectural state is exact;
 * the Pipeline object accumulates the cycle costs the paper specifies.
 */

#ifndef COMSIM_CORE_MACHINE_HPP
#define COMSIM_CORE_MACHINE_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/atlb.hpp"
#include "cache/context_cache.hpp"
#include "cache/itlb.hpp"
#include "cache/set_assoc.hpp"
#include "core/constant_table.hpp"
#include "core/decoded_cache.hpp"
#include "core/invalidation_bus.hpp"
#include "core/isa.hpp"
#include "core/pipeline.hpp"
#include "core/primitives.hpp"
#include "core/superblock.hpp"
#include "mem/absolute_space.hpp"
#include "mem/hierarchy.hpp"
#include "mem/segment_table.hpp"
#include "mem/tagged_memory.hpp"
#include "obj/class_table.hpp"
#include "obj/context.hpp"
#include "obj/gc.hpp"
#include "obj/method_dictionary.hpp"
#include "obj/object_heap.hpp"
#include "obj/selector_table.hpp"
#include "trace/hotpath.hpp"

namespace com::core {

/** Construction-time configuration of a Machine. */
struct MachineConfig
{
    mem::FpFormat addrFormat = mem::kFp32;
    unsigned absSpaceOrder = 26;          ///< 64 M-word absolute region
    std::size_t contextPoolSize = 4096;   ///< contexts in the pool
    std::size_t ctxCacheBlocks = 32;      ///< context cache blocks
    std::size_t itlbSets = 256;           ///< 512-entry 2-way (paper)
    std::size_t itlbWays = 2;
    std::uint64_t itlbMissPenalty = 24;   ///< full method lookup cost
    std::size_t icacheSets = 2048;        ///< 4096-entry 2-way (paper)
    std::size_t icacheWays = 2;
    std::uint64_t icacheMissPenalty = 4;
    std::size_t atlbSets = 64;
    std::size_t atlbWays = 2;
    std::uint64_t atlbMissPenalty = 4;
    std::uint64_t backingLatency = 20;    ///< beyond-main-memory cost
    std::uint64_t growthTrapCost = 12;    ///< pointer fix-up trap
    bool privileged = true;               ///< PS privilege (as: allowed)
    /**
     * Memoize decoded instructions on simulated i-cache hits (host
     * throughput only; guest cycles and cache statistics are identical
     * either way — the timing-parity regression test runs both
     * settings). Off reproduces the original fetch-decode path.
     */
    bool enableDecodedCache = true;
    std::size_t decodedCacheLines = 8192; ///< power of two
    /**
     * Translate hot straight-line sequences into superblock threaded
     * code (host throughput only; guest cycles and every cache
     * statistic are bit-identical either way — the timing-parity suite
     * runs on, off and toggled mid-run). Off interprets one step() at
     * a time.
     */
    bool enableSuperblocks = true;
    /** Entry-point executions before a sequence is promoted. */
    std::uint32_t superblockThreshold = 16;
    /** Longest straight-line sequence translated into one block. */
    std::uint32_t superblockMaxLen = 64;
    /** Hierarchy levels; empty selects a default single main memory. */
    std::vector<mem::LevelConfig> hierarchy;
};

/** Why run() stopped. */
struct RunResult
{
    GuestFault fault = GuestFault::None; ///< None: see finished/capped
    bool finished = false;  ///< entry method returned
    bool capped = false;    ///< instruction limit reached
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::string message;    ///< human-readable stop reason
};

/** One instruction trace record (Section 5 methodology). */
struct TraceRecord
{
    std::uint32_t ipBits;    ///< virtual instruction address
    std::uint32_t opcodeKey; ///< opcode token or extended selector key
    mem::ClassId receiverClass; ///< dispatch class
};

/** Per-instruction trace callback. */
using TraceSink = std::function<void(const TraceRecord &)>;

/**
 * The COM. Owns every subsystem: tagged memory, absolute space, a team
 * segment table, the object heap, context pool, class/selector/method
 * tables, ITLB, ATLB, instruction cache, context cache, the memory
 * hierarchy and the pipeline timing model.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg = MachineConfig{});
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    // ------------------------------------------------------------------
    // Program construction
    // ------------------------------------------------------------------

    /**
     * Assign a three-operand opcode token to @p selector, reusing any
     * existing assignment. Well-known selectors ("+", "at:put:", ...)
     * map to their primitive tokens. When the 7-bit token space is
     * full, returns Op::kExtendedOp: the compiler must use extended
     * sends for this selector.
     */
    Op assignOpcode(const std::string &selector);

    /** @return selector id carried by @p op (interning if needed). */
    obj::SelectorId selectorOf(Op op);

    /**
     * Create a method code object holding @p code and install it as
     * (@p cls, @p selector). @return the method object's vaddr.
     */
    std::uint64_t installMethod(mem::ClassId cls,
                                const std::string &selector,
                                const std::vector<Instr> &code);

    /** Create a raw code object without installing it. */
    std::uint64_t makeMethodObject(const std::vector<Instr> &code);

    /**
     * Install a host routine ("system defined routine", Section 2.1)
     * for (@p cls, @p selector). The routine receives the receiver and
     * argument words; setting @c has_result stores @c result at the
     * instruction's destination like any primitive. Host routines model
     * firmware: they execute in the OP step at primitive cost.
     */
    using HostRoutine = std::function<GuestFault(
        Machine &, mem::Word receiver, mem::Word arg,
        mem::Word &result, bool &has_result)>;
    void installHostRoutine(mem::ClassId cls, const std::string &selector,
                            HostRoutine fn);

    /** Install the standard host routines (new, new:, print, ...). */
    void installStandardLibrary();

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /**
     * Call @p method_vaddr with @p receiver and @p args from a fresh
     * boot context and run to completion (or @p max_instructions).
     * The entry method's result is retrievable via lastResult().
     */
    RunResult call(std::uint64_t method_vaddr, mem::Word receiver,
                   const std::vector<mem::Word> &args,
                   std::uint64_t max_instructions = 50'000'000);

    /** Result word stored by the entry method's return. */
    mem::Word lastResult();

    /** Continue running after a cap (not after a fault). */
    RunResult run(std::uint64_t max_instructions);

    /**
     * Restore the machine to its just-constructed state so it can be
     * reused for another program (the EnginePool's checkout/checkin
     * cycle). Guest-visibly indistinguishable from a fresh Machine —
     * a reset machine reproduces a fresh machine's cycles, statistics
     * and output bit-for-bit (tests/test_machine_reset.cpp) — but
     * cheaper: the absolute-space region is kept and the backing
     * store's resident pages are cleared in place rather than
     * reconstructed, so repeated programs reuse warm host memory.
     * Installed methods, host routines, trace sinks and accumulated
     * output are all dropped; re-run installStandardLibrary() before
     * the next program.
     */
    void reset();

    /**
     * A complete machine image: every piece of guest-visible state —
     * tagged-memory pages (shared copy-on-write, never deep-copied),
     * segment/constant/class/selector/method tables, cache contents
     * and statistics, pipeline accounting, registers and run state —
     * plus the host-side program-construction state (opcode tokens,
     * host routines, method metadata) needed to keep executing.
     *
     * An image lets a machine warm-start a cached program:
     * restoreImage() on a freshly reset machine is bit-identical to
     * re-running every step that produced the captured state — for an
     * image captured after compile + install, that is reinstalling
     * the library and recompiling the source; for one captured after
     * a run, it is also re-executing the (deterministic) program.
     * The warm-image parity tests prove cycles, cache statistics and
     * output match exactly.
     * Images are immutable once captured and safe to share across
     * machines and threads: host routines never capture their machine,
     * and writes through a restored page clone it first.
     */
    struct Image
    {
        mem::TaggedMemory::Snapshot memory;
        mem::AbsoluteSpace::Snapshot space;
        mem::SegmentTable::Snapshot segments;
        obj::ClassTable classes;
        obj::SelectorTable selectors;
        obj::MethodRegistry::Snapshot methods;
        obj::ObjectHeap::Snapshot heap;
        obj::ContextPool::Snapshot contexts;
        std::optional<ConstantTable> constants;
        cache::Itlb::Snapshot itlb;
        cache::Atlb::Snapshot atlb;
        cache::ContextCache::Snapshot ctxCache;
        cache::SetAssocCache<std::uint64_t, char>::Snapshot icache;
        mem::MemoryHierarchy::Snapshot hierarchy;
        obj::GarbageCollector::Snapshot gc;
        Pipeline::Snapshot pipeline;

        std::uint64_t cp = 0, ncp = 0, ip = 0;
        std::uint32_t sn = 0, ps = 0;
        mem::AbsAddr ipAbs = 0, ipLimitAbs = 0;

        std::unordered_map<std::string, Op> opcodeOf;
        std::array<obj::SelectorId, kOpTableSize> selectorOfOp{};
        std::uint8_t nextUserOp = 0;
        std::vector<HostRoutine> hostRoutines;
        std::unordered_map<std::uint64_t, std::uint64_t> methodLength;
        std::vector<std::uint64_t> methodObjects;

        std::unordered_set<std::uint64_t> escaped;
        std::uint64_t bootCtx = 0;
        bool finished = false;
        bool controlTransferred = false;
        std::uint64_t ctxRefs = 0, heapRefs = 0;
        std::string faultDetail;
        std::string output;
    };

    /**
     * Capture the machine's complete state as a shareable image.
     * Cheap: tagged-memory pages are shared copy-on-write, so cost is
     * proportional to table sizes, not the 64M-word space. After
     * capture this machine keeps running normally (its next write to a
     * shared page clones it).
     */
    std::shared_ptr<const Image> captureImage();

    /**
     * Overwrite this machine's state with @p img. The machine must
     * have the same MachineConfig as the image's source. Typically
     * called on a freshly reset machine to warm-start a cached
     * program; afterwards the machine is bit-identical to the one the
     * image was captured from.
     */
    void restoreImage(const Image &img);

    /** Install a per-instruction trace sink (fig. 10/11 experiments). */
    void setTraceSink(TraceSink sink) { traceSink_ = std::move(sink); }

    /**
     * Record mnemonics for the Figure 6 staircase (off by default:
     * string formatting per instruction is measurable overhead).
     */
    void setRecordMnemonics(bool on) { recordMnemonics_ = on; }

    /** Text printed by guest 'print' sends since the last clear. */
    const std::string &output() const { return output_; }
    /** Discard accumulated guest output. */
    void clearOutput() { output_.clear(); }
    /** Append to guest output (host routines). */
    void appendOutput(const std::string &s) { output_ += s; }

    /** Force a garbage collection (also callable from host routines). */
    obj::GarbageCollector::Result collectGarbage();

    // ------------------------------------------------------------------
    // Registers (Section 3.2)
    // ------------------------------------------------------------------

    /** Current context pointer (virtual). */
    std::uint64_t cp() const { return cp_; }
    /** Next context pointer (virtual). */
    std::uint64_t ncp() const { return ncp_; }
    /** Free context pointer: head of the context free list. */
    std::uint64_t fp() const { return contexts_->freeHead(); }
    /** Instruction pointer (virtual). */
    std::uint64_t ip() const { return ip_; }
    /** Team space number. */
    std::uint32_t sn() const { return sn_; }
    /** Process status. */
    std::uint32_t ps() const { return ps_; }

    // ------------------------------------------------------------------
    // Subsystem access
    // ------------------------------------------------------------------

    obj::ClassTable &classes() { return classes_; }
    obj::SelectorTable &selectors() { return selectors_; }
    obj::MethodRegistry &methods() { return *methods_; }
    obj::ObjectHeap &heap() { return *heap_; }
    obj::ContextPool &contextPool() { return *contexts_; }
    ConstantTable &constants() { return *constants_; }
    cache::Itlb &itlb() { return *itlb_; }
    cache::Atlb &atlb() { return *atlb_; }
    cache::ContextCache &contextCache() { return *ctxCache_; }
    mem::MemoryHierarchy &hierarchy() { return *hierarchy_; }
    mem::TaggedMemory &memory() { return memory_; }
    mem::SegmentTable &segments() { return *segments_; }
    mem::AbsoluteSpace &absoluteSpace() { return *space_; }
    Pipeline &pipeline() { return pipeline_; }
    obj::GarbageCollector &gc() { return *gc_; }
    const MachineConfig &config() const { return cfg_; }

    /** The instruction cache (word-granular, absolute-addressed). */
    cache::SetAssocCache<std::uint64_t, char> &icache()
    {
        return *icache_;
    }

    /** The host-side decoded-instruction memo (diagnostics/tests). */
    const DecodedCache &decodedCache() const { return decoded_; }

    /** The host-side superblock store (diagnostics/tests). */
    const SuperblockCache &superblockCache() const
    {
        return superblocks_;
    }

    /**
     * Toggle superblock execution at run time (between run() calls).
     * Existing translations are kept; they are simply not entered
     * while disabled. Guest-invisible either way.
     */
    void setSuperblocksEnabled(bool on)
    {
        cfg_.enableSuperblocks = on;
    }

    // ------------------------------------------------------------------
    // Reference classification (T-ctx experiment)
    // ------------------------------------------------------------------

    /** Data references that targeted contexts. */
    std::uint64_t contextRefs() const { return ctxRefs_; }
    /** Data references that targeted non-context objects. */
    std::uint64_t heapRefs() const { return heapRefs_; }

    // ------------------------------------------------------------------
    // Helpers shared with host routines and tests
    // ------------------------------------------------------------------

    /** Allocate a guest string object holding @p s (one char/word). */
    std::uint64_t makeString(const std::string &s);

    /**
     * Initialize every word of the object at @p vaddr to nil (fresh
     * instances follow Smalltalk semantics, so guest code can compare
     * unset fields with nil).
     */
    void fillWithNil(std::uint64_t vaddr);

    /** Read the guest string at @p vaddr back to a host string. */
    std::string readString(std::uint64_t vaddr);

    /** Store @p value through a result pointer word. */
    GuestFault writeThroughPointer(mem::Word pointer, mem::Word value);

    /**
     * Timed indexed load through the full translation path (growth
     * traps retried, hierarchy/context-cache latency charged). Used by
     * the at: host routine; the At instruction shares the same path.
     */
    GuestFault indexedLoad(mem::Word base, std::int32_t index,
                           mem::Word &out);

    /** Timed indexed store; see indexedLoad(). */
    GuestFault indexedStore(mem::Word base, std::int32_t index,
                            mem::Word value);

    /**
     * Read the i-th staged argument of the extended send currently
     * being dispatched (next-context slot kCtxFirstArg + i). Host
     * routines with more than one argument use this.
     */
    mem::Word hostExtraArg(unsigned i);

    /** Read a data word via the full translation path (no timing). */
    mem::Word peekData(std::uint64_t vaddr, std::uint64_t index);

    /** Render @p w for diagnostics ("42", "3.5", "#foo", "ptr[...]"). */
    std::string describeWord(mem::Word w);

    /** Record a fault detail string (host routines, trap handlers). */
    void setFaultDetail(std::string s) { faultDetail_ = std::move(s); }

  private:
    /**
     * Build every subsystem above the absolute space. Shared by the
     * constructor and reset(): both must produce the same deterministic
     * initial state (same allocation addresses, same opcode table).
     */
    void init();

    struct OperandVal
    {
        mem::Word w;
        mem::ClassId cls = 0;
        bool valid = false;
    };

    /** Fetch + decode the instruction at ip_. */
    GuestFault fetch(Instr &out);
    /** Read an operand (value + class) per its descriptor. */
    GuestFault readOperand(const Operand &o, OperandVal &out);
    /** Resolve the class of a word (pointers consult the ATLB). */
    mem::ClassId classOfWord(const mem::Word &w);
    /** Write @p w to destination operand @p o. */
    void writeOperand(const Operand &o, mem::Word w);
    /** Effective address of operand @p o (movea). */
    GuestFault effectiveAddress(const Operand &o, mem::Word &out);

    /** Execute one instruction. Returns a fault or None. */
    GuestFault step();
    /** Dispatch through the ITLB; may run the call sequence. */
    GuestFault dispatch(const Instr &instr, const OperandVal &a,
                        const OperandVal &b, const OperandVal &c);
    /** Build the ITLB key + receiver class + selector for dispatch. */
    void buildDispatchKey(const Instr &instr, const OperandVal &a,
                          const OperandVal &b, const OperandVal &c,
                          cache::ItlbKey &key,
                          mem::ClassId &receiver_cls,
                          obj::SelectorId &sel) const;
    /**
     * The ITLB miss path: stall, method-dictionary lookup, primitive
     * fallback, fill. @return &filled, or nullptr with @p fault set
     * (DoesNotUnderstand).
     */
    const cache::MethodEntry *resolveItlbMiss(
        const cache::ItlbKey &key, const Instr &instr,
        mem::ClassId receiver_cls, obj::SelectorId sel,
        cache::MethodEntry &filled, GuestFault &fault);
    /** Steps 4-5 for a resolved method entry (shared with blocks). */
    GuestFault executeResolved(const Instr &instr, const OperandVal &a,
                               const OperandVal &b, const OperandVal &c,
                               const cache::MethodEntry &entry);
    /**
     * Translate the straight-line sequence at the current IP into a
     * superblock. @return the installed block, or nullptr when the
     * location is not translatable (context-area code, immediate
     * extended send, untagged word).
     */
    SuperBlock *translateSuperblock();
    /** Record a bound resolution's execution shape on @p si. */
    static void bindSpecialize(SuperInstr &si,
                               const cache::MethodEntry &entry);
    /**
     * Execute @p sb from its entry (which must equal ipAbs_) for at
     * most @p budget instructions, folding commutative pipeline
     * counters at exit. Bit-identical to step()-ing the same
     * instructions. @return the fault that stopped the block, or None.
     */
    GuestFault runSuperblock(SuperBlock &sb, std::uint64_t budget);
    /** May the run loop enter/translate superblocks right now? */
    bool superblockEligible() const
    {
        return !traceSink_ && !recordMnemonics_ &&
               ctxCache_->maintainIdle() && ipAbs_ != 0;
    }
    /** The Section 3.6 method call sequence. */
    GuestFault performCall(std::uint64_t method_vaddr,
                           unsigned operand_words, const Instr &instr,
                           const OperandVal &a, const OperandVal &b,
                           const OperandVal &c);
    /** The return sequence (return bit set). */
    GuestFault performReturn(bool &finished);
    /** The xfer control transfer. */
    GuestFault performXfer(const OperandVal &target);
    /** at: / at:put: through the full translation + hierarchy path. */
    GuestFault dataAccess(const Instr &instr, OperandVal &a,
                          const OperandVal &b, const OperandVal &c);
    /** The post-translation half of dataAccess (shared with blocks). */
    GuestFault dataAccessResolved(const Instr &instr, OperandVal &a,
                                  const mem::XlateResult &r,
                                  bool is_put);
    /** classOfWord with a bound ATLB slot for the pointer probe. */
    mem::ClassId classOfWordBound(const mem::Word &w, AtlbBind &bind);
    /** readOperand with a bound ATLB slot for the class probe. */
    void readOperandBound(const Operand &o, OperandVal &out,
                          AtlbBind &bind);
    /** setIp that records a jump-target binding on @p si. */
    GuestFault setIpBind(std::uint64_t vaddr, SuperInstr &si);

    /** Allocate and register a fresh next context. */
    GuestFault allocNextContext();
    /** Set ip_ (and pretranslated bounds) to @p vaddr. */
    GuestFault setIp(std::uint64_t vaddr);
    /** Mark the context named by @p vaddr as escaped (non-LIFO). */
    void markEscaped(std::uint64_t ctx_vaddr);
    /** Note a data reference for the context/heap split. */
    void countDataRef(bool is_context);
    /** Walk the RCP chain from the current context (for prefetch). */
    std::vector<mem::AbsAddr> rcpChain(std::size_t max_depth);

    MachineConfig cfg_;

    // Substrates (construction order matters).
    mem::TaggedMemory memory_;
    std::unique_ptr<mem::AbsoluteSpace> space_;
    std::unique_ptr<mem::SegmentTable> segments_;
    obj::ClassTable classes_;
    obj::SelectorTable selectors_;
    std::unique_ptr<obj::MethodRegistry> methods_;
    std::unique_ptr<obj::ObjectHeap> heap_;
    std::unique_ptr<obj::ContextPool> contexts_;
    std::unique_ptr<ConstantTable> constants_;
    std::unique_ptr<cache::Itlb> itlb_;
    std::unique_ptr<cache::Atlb> atlb_;
    std::unique_ptr<cache::ContextCache> ctxCache_;
    std::unique_ptr<cache::SetAssocCache<std::uint64_t, char>> icache_;
    std::unique_ptr<mem::MemoryHierarchy> hierarchy_;
    std::unique_ptr<obj::GarbageCollector> gc_;
    Pipeline pipeline_;
    DecodedCache decoded_;

    // Superblock threaded code: the shared invalidation bus (decoded
    // cache + superblock cache subscribe), the promoted-block store
    // and the entry-point profiler that feeds promotion.
    CodeInvalidationBus codeBus_;
    SuperblockCache superblocks_;
    trace::HotPathProfiler hotpath_;

    // Registers.
    std::uint64_t cp_ = 0;
    std::uint64_t ncp_ = 0;
    std::uint64_t ip_ = 0;
    std::uint32_t sn_ = 0;
    std::uint32_t ps_ = 0;

    // Pretranslated IP (special hardware register of Section 3.6).
    mem::AbsAddr ipAbs_ = 0;
    mem::AbsAddr ipLimitAbs_ = 0;

    // Opcode token assignment. The token -> selector direction is a
    // flat table indexed by the 8-bit opcode: dispatch() consults it
    // once per simulated instruction, so it must be one load, not a
    // hash probe.
    std::unordered_map<std::string, Op> opcodeOf_;
    std::array<obj::SelectorId, kOpTableSize> selectorOfOp_;
    std::uint8_t nextUserOp_ =
        static_cast<std::uint8_t>(Op::kFirstUserOp);

    // Host routines.
    std::vector<HostRoutine> hostRoutines_;
    static constexpr std::uint32_t kHostBase = 0x40000000u;

    // Method metadata: code object vaddr -> word count.
    std::unordered_map<std::uint64_t, std::uint64_t> methodLength_;
    std::vector<std::uint64_t> methodObjects_; ///< GC roots

    // Run state.
    std::unordered_set<std::uint64_t> escaped_;
    std::uint64_t bootCtx_ = 0;
    bool finished_ = false;
    bool controlTransferred_ = false;
    bool recordMnemonics_ = false;
    TraceSink traceSink_;
    std::uint64_t ctxRefs_ = 0;
    std::uint64_t heapRefs_ = 0;
    std::string faultDetail_;
    std::string output_;

    /** Boot-context slot receiving the entry method's result. */
    static constexpr std::uint64_t kBootResultSlot = 4;
};

} // namespace com::core

#endif // COMSIM_CORE_MACHINE_HPP
