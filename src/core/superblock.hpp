/**
 * @file
 * Superblock threaded code: hot straight-line guest sequences
 * translated into pre-bound superinstruction chains.
 *
 * The decoded-instruction cache (PR 1) memoizes single decodings; a
 * superblock is its compound form. Once the hot-path profiler
 * (trace/hotpath.hpp) promotes an entry point, the machine translates
 * the straight-line sequence from that point up to the first
 * control-transfer candidate into a SuperBlock: operand decode and
 * dispatch-kind classification happen once at translation time, and the
 * ITLB resolution of each superinstruction is bound lazily to a cache
 * slot that later executions revalidate with two compares instead of a
 * hash and a way scan.
 *
 * Execution (Machine::runSuperblock, superblock.cpp) is bit-identical
 * to interpreting the same instructions one step() at a time: every
 * guest-visible probe (icache, ATLB, context cache) still happens per
 * instruction in program order, ITLB hits are re-registered through
 * the stamp-exact rehit path, and only the commutative pipeline
 * counters (instructions, base cycles) are folded into one update at
 * block exit. Any surprise — fault, taken branch, call, return,
 * binding-guard failure, DNU, context-cache pressure, invalidation —
 * side-exits to the interpreter with the partial stats already exact.
 *
 * Invalidation: superblocks die on exactly the decoded cache's events,
 * delivered over the shared CodeInvalidationBus. Because a block spans
 * a range of words, a store retires every block whose
 * [entry, entry+len) contains the stored address. Retired blocks are
 * kept on a graveyard until the run loop's next safe point so a block
 * can invalidate itself mid-execution (a store into its own range)
 * without freeing memory the runner is still reading; the runner
 * checks the cache epoch before every superinstruction and side-exits
 * when it moved.
 */

#ifndef COMSIM_CORE_SUPERBLOCK_HPP
#define COMSIM_CORE_SUPERBLOCK_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cache/itlb.hpp"
#include "core/invalidation_bus.hpp"
#include "core/isa.hpp"
#include "mem/word.hpp"
#include "sim/logging.hpp"

namespace com::core {

/**
 * How a superinstruction executes: Bypass is fixed at translation
 * (non-message opcodes); everything else starts Generic and is
 * specialized when its ITLB resolution is first bound — the bound
 * entry determines the execution shape (value primitive, conditional
 * jump, data access, result write, method call), and the runner
 * threads directly to the matching handler while the binding guard
 * holds. Host routines and rarer primitives stay Generic.
 */
enum class SuperExec : std::uint8_t
{
    Bypass,  ///< nop/halt/movea: no ITLB involvement
    Generic, ///< unbound, or bound to an unspecialized resolution
    Value,   ///< bound: value primitive `fu` (add, lt, ...)
    Jump,    ///< bound: conditional jump primitive `fu`
    Data,    ///< bound: at: / at:put: memory access
    PutRes,  ///< bound: write-through result store
    Call,    ///< bound: defined method (`methodVaddr`, `argWords`)

    // The hottest value primitives get their own handlers: each calls
    // evalValuePrimitive with a compile-time-constant opcode, so the
    // optimizer folds the opcode switch away at the call site. The
    // results are the same function, so they are identical bit for
    // bit; everything else stays on the generic Value handler.
    ValueMove, ///< bound: move
    ValueAdd,  ///< bound: add
    ValueMul,  ///< bound: mul
    ValueLt,   ///< bound: lt
    ValueEq,   ///< bound: eq

    /**
     * Extended (zero-operand) send: operands were staged in the next
     * context by the preceding instructions, so there is nothing to
     * pre-decode — the handler replicates step()'s extended path
     * (context-staged reads, selector-keyed dispatch) with the class
     * probes and the ITLB resolution bound like any other
     * superinstruction. Always dispatches through executeResolved();
     * never re-specialized (the staged reads precede any
     * specialization's assumptions).
     */
    ExtSend,
};

/**
 * A generation-guarded ATLB slot binding for one probe site whose
 * pointer repeats across executions (an operand's class probe, a data
 * access's base translation). While the ATLB's structural generation
 * is unchanged and the runtime pointer equals the bound one, the probe
 * is replayed as a rehit — statistics identical to the full lookup it
 * replaces.
 */
struct AtlbBind
{
    void *slot = nullptr;
    std::uint64_t gen = 0;
    std::uint64_t ptr = 0; ///< bound pointer value (vaddr)
    mem::ClassId cls = 0;  ///< descriptor class at bind time
    bool bound = false;
};

/** One pre-decoded, pre-classified instruction of a superblock. */
struct SuperInstr
{
    Instr instr; ///< decoded once at translation time
    SuperExec exec = SuperExec::Generic;

    // Translation-time operand facts: which operands the opcode reads
    // (OpTraits), which classes enter the dispatch key (DispatchSpec),
    // and — for constant-mode operands holding non-pointer words,
    // whose read has no guest-visible side effect — the operand value
    // and class, precomputed so execution skips the table read and
    // tag inspection. Pointer constants stay on the runtime path:
    // their class comes from a guest-visible ATLB probe.
    bool readsA = false, readsSources = false;
    bool useA = false, useB = false, useC = false;
    bool constA = false, constB = false, constC = false;
    mem::Word preA, preB, preC;
    mem::ClassId preAcls = 0, preBcls = 0, preCcls = 0;

    // Lazily bound ITLB resolution: valid while `gen` matches the
    // ITLB's structural generation and the runtime operand classes
    // equal the bound key's (the opcode is fixed per superinstruction,
    // so comparing the class fields compares the whole key). A failed
    // guard falls back to the full lookup (and rebinds); statistics
    // are identical either way.
    cache::ItlbKey key{};
    void *slot = nullptr;
    std::uint64_t gen = 0;
    bool bound = false;

    // Specialization payload captured from the bound MethodEntry.
    Op fu = Op::Nop;               ///< Value / Jump
    std::uint64_t methodVaddr = 0; ///< Call
    std::uint32_t argWords = 0;    ///< Call

    // Lazily bound instruction-cache slot for this superinstruction's
    // (fixed) fetch address — the same generation-guarded rehit trick
    // as the ITLB binding, for the per-instruction icache probe.
    void *icSlot = nullptr;
    std::uint64_t icGen = 0;
    bool icBound = false;

    // ATLB slot bindings: one per operand-class probe (pointer-valued
    // operands repeat their vaddr across executions) and one for the
    // data-access base translation (at:/at:put: on the same object).
    AtlbBind clsA, clsB, clsC;
    AtlbBind da;

    // Taken-jump target binding: setIp() on a repeating target vaddr
    // replays its translation (and the descriptor-derived bounds)
    // while the ATLB generation holds.
    AtlbBind jt;
    mem::AbsAddr jtAbs = 0;   ///< bound ipAbs_ of the target
    mem::AbsAddr jtLimit = 0; ///< bound ipLimitAbs_ of the target
};

/** A promoted straight-line sequence: entry PC to side-exit. */
struct SuperBlock
{
    mem::AbsAddr entryAbs = 0;
    std::vector<SuperInstr> code;

    std::uint32_t len() const
    {
        return static_cast<std::uint32_t>(code.size());
    }
};

/**
 * The machine's superblock store: entry-address keyed, probed on every
 * control-transfer target, invalidated over the shared bus.
 */
class SuperblockCache : public CodeInvalidationListener
{
  public:
    /** @param index_slots power-of-two size of the O(1) probe index */
    explicit SuperblockCache(std::size_t index_slots = 2048)
        : index_(index_slots), mask_(index_slots - 1)
    {
        sim::fatalIf(index_slots == 0 ||
                         (index_slots & (index_slots - 1)) != 0,
                     "superblock index size must be a power of two, "
                     "got ",
                     index_slots);
    }

    /** O(1) probe for a block entered at @p abs; nullptr if none. */
    SuperBlock *
    find(mem::AbsAddr abs)
    {
        const IndexSlot &s =
            index_[static_cast<std::size_t>(abs) & mask_];
        return s.abs == abs ? s.block : nullptr;
    }

    /**
     * Install @p block (replacing any block at the same entry).
     * @return the raw pointer, valid until the next invalidation.
     */
    SuperBlock *
    insert(std::unique_ptr<SuperBlock> block)
    {
        SuperBlock *raw = block.get();
        if (raw->len() > maxLen_)
            maxLen_ = raw->len();
        if (raw->entryAbs < rangeLo_)
            rangeLo_ = raw->entryAbs;
        if (raw->entryAbs + raw->len() > rangeHi_)
            rangeHi_ = raw->entryAbs + raw->len();
        auto it = blocks_.find(raw->entryAbs);
        if (it != blocks_.end())
            retire(it);
        blocks_.emplace(raw->entryAbs, std::move(block));
        IndexSlot &s =
            index_[static_cast<std::size_t>(raw->entryAbs) & mask_];
        s.abs = raw->entryAbs;
        s.block = raw;
        return raw;
    }

    /**
     * Monotone invalidation epoch: bumped whenever any block is
     * retired. The runner snapshots it at block entry and side-exits
     * if it moved — the executing block may be on the graveyard.
     */
    std::uint64_t epoch() const { return epoch_; }

    /**
     * Free retired blocks. Only called from the run loop's safe point
     * (no superblock mid-execution), never from bus callbacks, which
     * may fire from inside a block that is invalidating itself.
     */
    void reclaim() { retired_.clear(); }

    /** Live (non-retired) block count. */
    std::size_t size() const { return blocks_.size(); }
    /** Blocks retired by stores into their range (diagnostics). */
    std::uint64_t storeInvalidations() const { return storeInvals_; }

    // CodeInvalidationListener --------------------------------------

    /** Retire every block whose translated range contains @p abs. */
    void
    onCodeStore(mem::AbsAddr abs) override
    {
        // Every guest store publishes here, and most stores land in
        // data segments far from any translated code: reject those
        // with the (monotone, conservative) live range before paying
        // for the map walk.
        if (abs < rangeLo_ || abs >= rangeHi_)
            return;
        if (blocks_.empty() || maxLen_ == 0)
            return;
        // Straight-line blocks: only entries within maxLen_ words at
        // or below abs can reach it (interval stabbing on the sorted
        // starts with a bounded length).
        auto it = blocks_.upper_bound(abs);
        while (it != blocks_.begin()) {
            --it;
            mem::AbsAddr entry = it->first;
            if (abs - entry >= maxLen_)
                break;
            if (entry + it->second->len() > abs) {
                ++storeInvals_;
                it = retire(it);
            }
        }
    }

    void
    onCodeInvalidateAll() override
    {
        retireAll();
    }

    void
    onCodeReset() override
    {
        retireAll();
        maxLen_ = 0;
        storeInvals_ = 0;
        rangeLo_ = kNoAbs;
        rangeHi_ = 0;
    }

  private:
    struct IndexSlot
    {
        mem::AbsAddr abs = kNoAbs;
        SuperBlock *block = nullptr;
    };

    static constexpr mem::AbsAddr kNoAbs = ~0ull;

    using BlockMap = std::map<mem::AbsAddr, std::unique_ptr<SuperBlock>>;

    /** Move one block to the graveyard. @return the next iterator. */
    BlockMap::iterator
    retire(BlockMap::iterator it)
    {
        unindex(*it->second);
        retired_.push_back(std::move(it->second));
        ++epoch_;
        return blocks_.erase(it);
    }

    void
    retireAll()
    {
        for (auto it = blocks_.begin(); it != blocks_.end();)
            it = retire(it);
    }

    void
    unindex(const SuperBlock &b)
    {
        IndexSlot &s =
            index_[static_cast<std::size_t>(b.entryAbs) & mask_];
        if (s.abs == b.entryAbs) {
            s.abs = kNoAbs;
            s.block = nullptr;
        }
    }

    BlockMap blocks_; ///< sorted by entry for range invalidation
    std::vector<std::unique_ptr<SuperBlock>> retired_; ///< graveyard
    std::vector<IndexSlot> index_;
    std::size_t mask_;
    std::uint32_t maxLen_ = 0; ///< longest block ever inserted
    std::uint64_t epoch_ = 0;
    std::uint64_t storeInvals_ = 0;
    // Union of every live range ever inserted (never shrunk on
    // retire: a stale superset only costs a map walk, never misses a
    // block). Reset with the rest of the state on onCodeReset.
    mem::AbsAddr rangeLo_ = kNoAbs;
    mem::AbsAddr rangeHi_ = 0;
};

} // namespace com::core

#endif // COMSIM_CORE_SUPERBLOCK_HPP
