/**
 * @file
 * The COM pipeline timing model (paper Section 3.6, Figures 5-6).
 *
 * Instruction interpretation proceeds in five steps — Fetch, Read, ITLB,
 * OP, Write — pipelined so that a new instruction starts every two clock
 * cycles (the rate is limited by the context cache, which performs two
 * reads or one write per cycle but not both).
 *
 * Timing rules from the paper, all modeled here:
 *   - base cost: 2 cycles per instruction issued;
 *   - branches are delayed one clock cycle (MIPS-style) — we charge the
 *     cycle rather than architecturally executing a delay slot (see
 *     DESIGN.md);
 *   - a method call with no operands delays execution four clock
 *     cycles: two for the causing instruction, one to flush the fetched
 *     next instruction, one for the call operations, plus one cycle per
 *     operand copied into the new context;
 *   - returns are detected early and cost only two clock cycles (the
 *     base cost; no extra charge);
 *   - the pipeline stalls on a miss in any cache and on at:/at:put:
 *     memory accesses.
 *
 * The model also keeps a short trace for rendering the Figure 6
 * pipeline staircase.
 */

#ifndef COMSIM_CORE_PIPELINE_HPP
#define COMSIM_CORE_PIPELINE_HPP

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>

#include "sim/stats.hpp"

namespace com::core {

/** Cycle accounting for the five-step COM pipeline. */
class Pipeline
{
  public:
    Pipeline();

    /**
     * Charge the base cost of one issued instruction (2 cycles).
     *
     * @p mnemonic feeds the Figure 6 staircase trace and is a C string
     * (or nullptr) on purpose: the interpreter issues once per guest
     * instruction, and the common no-tracing path must not construct a
     * std::string. Inlined so that path folds to two counter bumps.
     */
    void
    issue(const char *mnemonic = nullptr)
    {
        ++instrs_;
        cycles_ += 2;
        if (mnemonic && mnemonic[0] != '\0')
            recordMnemonic(mnemonic);
    }

    /**
     * Charge the base cost of @p n issued instructions in one update
     * (the superblock runner folds its per-instruction issues into a
     * single call at block exit). Identical totals to @p n issue()
     * calls with no mnemonic: the two counters are commutative with
     * every stall charge interleaved between them.
     */
    void
    issueFolded(std::uint64_t n)
    {
        instrs_ += n;
        cycles_ += 2 * n;
    }

    // The charge/stall helpers below are one or two counter bumps
    // each, issued from the interpreter's per-instruction path, so all
    // are defined inline.

    /** Charge the one-cycle branch delay of a taken branch. */
    void
    chargeBranchDelay()
    {
        cycles_ += 1;
        branchCycles_ += 1;
    }

    /**
     * Charge a method call: one cycle to flush the prefetched
     * instruction, one for the call operations, plus one per operand
     * copied to the new context. (The two base cycles of the causing
     * instruction are charged by issue().)
     */
    void
    chargeCall(unsigned operands_copied)
    {
        ++calls_;
        // One cycle flushing the prefetched instruction, one
        // performing the call operations (store IP, CP <- NCP,
        // initiate allocation, set IP), then one per operand expanded
        // into the new context.
        cycles_ += 2;
        callCycles_ += 2;
        cycles_ += operands_copied;
        operandCopyCycles_ += operands_copied;
        callCycles_ += operands_copied;
    }

    /** Record a method return (no extra cycles; detected early). */
    void
    chargeReturn()
    {
        // "Since return can be detected early in the pipeline it can
        // be processed with no delay. Thus method returns cost only
        // two clock cycles" — the base cost already charged by
        // issue().
        ++returns_;
    }

    /** Stall for an ITLB miss (full method lookup). */
    void
    stallItlbMiss(std::uint64_t cycles)
    {
        cycles_ += cycles;
        itlbCycles_ += cycles;
    }
    /** Stall for an instruction cache miss. */
    void
    stallIcacheMiss(std::uint64_t cycles)
    {
        cycles_ += cycles;
        icacheCycles_ += cycles;
    }
    /** Stall for an ATLB miss (segment table walk). */
    void
    stallAtlbMiss(std::uint64_t cycles)
    {
        cycles_ += cycles;
        atlbCycles_ += cycles;
    }
    /** Stall for an at:/at:put: memory hierarchy access. */
    void
    stallMemory(std::uint64_t cycles)
    {
        cycles_ += cycles;
        memCycles_ += cycles;
    }
    /** Stall for context cache fault-in / forced eviction. */
    void
    stallContextCache(std::uint64_t cycles)
    {
        cycles_ += cycles;
        ctxCycles_ += cycles;
    }
    /** Charge a trap handler (growth trap pointer fix-up). */
    void
    chargeTrap(std::uint64_t cycles)
    {
        cycles_ += cycles;
        trapCycles_ += cycles;
    }

    /** Instructions issued. */
    std::uint64_t instructions() const { return instrs_.value(); }
    /** Total cycles including stalls. */
    std::uint64_t cycles() const { return cycles_.value(); }
    /** Cycles per instruction. */
    double
    cpi() const
    {
        return instrs_.value()
            ? static_cast<double>(cycles_.value()) / instrs_.value()
            : 0.0;
    }

    /** Method calls charged. */
    std::uint64_t calls() const { return calls_.value(); }
    /** Method returns charged. */
    std::uint64_t returns() const { return returns_.value(); }
    /** Taken-branch delay cycles. */
    std::uint64_t branchDelays() const { return branchCycles_.value(); }
    /** Call-overhead cycles (flush + call ops + operand copies). */
    std::uint64_t callOverhead() const { return callCycles_.value(); }
    /** ITLB-miss stall cycles. */
    std::uint64_t itlbStalls() const { return itlbCycles_.value(); }
    /** Instruction-cache stall cycles. */
    std::uint64_t icacheStalls() const { return icacheCycles_.value(); }
    /** ATLB stall cycles. */
    std::uint64_t atlbStalls() const { return atlbCycles_.value(); }
    /** Memory (at:/at:put:) stall cycles. */
    std::uint64_t memoryStalls() const { return memCycles_.value(); }
    /** Context cache stall cycles. */
    std::uint64_t contextStalls() const { return ctxCycles_.value(); }
    /** Trap handler cycles. */
    std::uint64_t trapCycles() const { return trapCycles_.value(); }

    /** Reset all counters. */
    void reset();

    /** Full counter + trace state, as captured by snapshot(). */
    struct Snapshot
    {
        std::uint64_t instrs = 0, cycles = 0, calls = 0, returns = 0;
        std::uint64_t branchCycles = 0, callCycles = 0,
                      operandCopyCycles = 0;
        std::uint64_t itlbCycles = 0, icacheCycles = 0, atlbCycles = 0;
        std::uint64_t memCycles = 0, ctxCycles = 0, trapCycles = 0;
        std::deque<std::string> recent;
    };

    /** Capture all pipeline accounting (for machine images). */
    Snapshot
    snapshot() const
    {
        return Snapshot{instrs_.value(),
                        cycles_.value(),
                        calls_.value(),
                        returns_.value(),
                        branchCycles_.value(),
                        callCycles_.value(),
                        operandCopyCycles_.value(),
                        itlbCycles_.value(),
                        icacheCycles_.value(),
                        atlbCycles_.value(),
                        memCycles_.value(),
                        ctxCycles_.value(),
                        trapCycles_.value(),
                        recent_};
    }

    /** Restore accounting captured by snapshot(). */
    void
    restore(const Snapshot &s)
    {
        instrs_.set(s.instrs);
        cycles_.set(s.cycles);
        calls_.set(s.calls);
        returns_.set(s.returns);
        branchCycles_.set(s.branchCycles);
        callCycles_.set(s.callCycles);
        operandCopyCycles_.set(s.operandCopyCycles);
        itlbCycles_.set(s.itlbCycles);
        icacheCycles_.set(s.icacheCycles);
        atlbCycles_.set(s.atlbCycles);
        memCycles_.set(s.memCycles);
        ctxCycles_.set(s.ctxCycles);
        trapCycles_.set(s.trapCycles);
        recent_ = s.recent;
    }

    /**
     * Render the Figure 6 staircase for the last @p n issued
     * instructions: five stage boxes per instruction, successive
     * instructions offset by one stage (a new instruction every two
     * clock cycles).
     */
    void renderStaircase(std::ostream &os, std::size_t n = 3) const;

    /** Statistics group ("pipeline"). */
    const sim::StatGroup &stats() const { return stats_; }

  private:
    /** Slow path of issue(): append to the staircase trace. */
    void recordMnemonic(const char *mnemonic);

    sim::Counter instrs_;
    sim::Counter cycles_;
    sim::Counter calls_;
    sim::Counter returns_;
    sim::Counter branchCycles_;
    sim::Counter callCycles_;
    sim::Counter operandCopyCycles_;
    sim::Counter itlbCycles_;
    sim::Counter icacheCycles_;
    sim::Counter atlbCycles_;
    sim::Counter memCycles_;
    sim::Counter ctxCycles_;
    sim::Counter trapCycles_;
    sim::StatGroup stats_;

    static constexpr std::size_t kTraceDepth = 16;
    std::deque<std::string> recent_;
};

} // namespace com::core

#endif // COMSIM_CORE_PIPELINE_HPP
