/**
 * @file
 * The COM instruction set (paper Sections 3.3-3.5, Figure 4).
 *
 * All instructions are 32 bits and follow the same interpretation
 * sequence. An instruction is *abstract*: the opcode is a message token
 * whose meaning depends on the classes of its operands (Section 2.1).
 * If the machine supports a primitive method for (opcode, operand
 * classes) the operation is performed directly; otherwise a method call
 * results.
 *
 * Encoding (see DESIGN.md for the resolution of the paper's Figure 4
 * internal inconsistency — a 12-bit opcode plus three 8-bit operands
 * does not fit 32 bits):
 *
 *   three-operand format
 *     [31]    return bit ("an instruction with the return bit set")
 *     [30:24] opcode token (0..126)
 *     [23:16] operand descriptor A (destination)
 *     [15:8]  operand descriptor B (first source; receiver)
 *     [7:0]   operand descriptor C (second source)
 *
 *   zero-operand (extended) format: opcode token 127 escapes
 *     [31]    return bit
 *     [30:24] 127
 *     [23:22] implicit operand count (0..2): how many locals of the
 *             next context participate in dispatch (Section 3.5)
 *     [21:0]  extended selector token
 *
 * Operand descriptors (Section 3.4): two addressing modes.
 *     [7] = 0: context mode; [6] selects current (0) or next (1)
 *              context, [4:0] the word offset within it
 *     [7] = 1: constant mode (last operand only); [6:0] indexes the
 *              constant table
 */

#ifndef COMSIM_CORE_ISA_HPP
#define COMSIM_CORE_ISA_HPP

#include <array>
#include <cstdint>
#include <string>

#include "sim/logging.hpp"

namespace com::core {

/**
 * Primitive opcode tokens. Each token is a message name; the tokens
 * below have primitive methods for the classes listed in Section 3.3.
 * Tokens from kFirstUserOp to kExtendedOp-1 are assigned to program
 * selectors by the compiler; token kExtendedOp escapes to the extended
 * format.
 */
enum class Op : std::uint8_t
{
    Nop = 0,

    // Arithmetic (small integer and, except Mod, floating point;
    // mixed int/float modes are primitive).
    Add, Sub, Mul, Div, Mod, Neg,

    // Multiple precision arithmetic support (small integer): carry of
    // a+b, low and high words of a*b, so multiprecision arithmetic
    // needs no flags.
    Carry, Mult1, Mult2,

    // Logical and bit field (small integers as bit fields).
    Shift, AShift, Rotate, Mask, And, Or, Not, Xor,

    // Comparisons; Same (object identity) is defined for all types.
    Lt, Le, Eq, Ne, Same,

    // Moves. Movea computes the effective address of an operand (used
    // to pass pointers, e.g. the result slot). At/AtPut access data
    // outside the current/next contexts (the only memory instructions).
    // PutRes stores through a pointer (the "*c0=c2" of Figure 9).
    Move, Movea, At, AtPut, PutRes,

    // Tag access. As retags a word (conditionally privileged, to
    // prevent forging virtual addresses); Tag reads a word's tag.
    As, Tag,

    // Control: forward/reverse jumps within a method (defined for
    // integer/boolean condition objects) and the general context
    // transfer (supports block contexts, process switch, interrupts).
    // FjmpF/RjmpF are the jump-if-false senses (extension; Smalltalk
    // ifFalse: compiles to them directly).
    Fjmp, Rjmp, FjmpF, RjmpF, Xfer,

    // Simulation control.
    Halt,

    kFirstUserOp, ///< first token available for program selectors

    kExtendedOp = 127, ///< escape to the extended (zero-operand) format
};

/** Number of three-operand opcode tokens. */
constexpr unsigned kNumOpTokens = 128;

/** Operand addressing modes (Section 3.4). */
enum class Mode : std::uint8_t
{
    CtxCur,  ///< word of the current context
    CtxNext, ///< word of the next context
    Const,   ///< constant table entry (last operand only)
};

/** One decoded operand descriptor. */
struct Operand
{
    Mode mode = Mode::CtxCur;
    std::uint8_t index = 0; ///< context offset or constant index

    /** Shorthand constructors. */
    static Operand cur(std::uint8_t i) { return {Mode::CtxCur, i}; }
    static Operand next(std::uint8_t i) { return {Mode::CtxNext, i}; }
    static Operand cons(std::uint8_t i) { return {Mode::Const, i}; }

    friend bool
    operator==(const Operand &x, const Operand &y)
    {
        return x.mode == y.mode && x.index == y.index;
    }
};

/** A decoded instruction (either format). */
struct Instr
{
    bool extended = false;   ///< extended (zero-operand) format
    bool ret = false;        ///< return bit
    Op op = Op::Nop;         ///< three-operand opcode token
    Operand a, b, c;         ///< operand descriptors (3-op format)
    std::uint8_t implicitCount = 0; ///< extended: locals in dispatch
    std::uint32_t extSelector = 0;  ///< extended: selector token

    /** Encode to the 32-bit instruction word. */
    std::uint32_t encode() const;

    /** Decode from a 32-bit instruction word. */
    static Instr decode(std::uint32_t word);

    /** Build a three-operand instruction. */
    static Instr
    make(Op op, Operand a, Operand b, Operand c, bool ret = false)
    {
        Instr i;
        i.op = op;
        i.a = a;
        i.b = b;
        i.c = c;
        i.ret = ret;
        return i;
    }

    /** Build an extended send. */
    static Instr
    makeSend(std::uint32_t selector, std::uint8_t implicit_count,
             bool ret = false)
    {
        Instr i;
        i.extended = true;
        i.extSelector = selector;
        i.implicitCount = implicit_count;
        i.ret = ret;
        return i;
    }

    friend bool
    operator==(const Instr &x, const Instr &y)
    {
        return x.encode() == y.encode();
    }
};

/**
 * Which operand classes participate in abstract-instruction dispatch
 * for a given opcode (see DESIGN.md): destination classes are excluded
 * for value-producing operations, since the old destination value does
 * not change the meaning of the message.
 */
struct DispatchSpec
{
    bool useA = false;
    bool useB = false;
    bool useC = false;
};

/**
 * Per-opcode interpretation traits, resolved once per token instead of
 * per dispatch. The interpreter hot path indexes a flat 256-entry table
 * (any 8-bit token is a valid index) rather than running switches:
 *
 *   - spec: which operand classes form the ITLB key;
 *   - readsA: the destination operand is consumed as a source;
 *   - readsSources: the B and C operands are fetched.
 */
struct OpTraits
{
    DispatchSpec spec;
    bool readsA = false;
    bool readsSources = true;
};

/** Size of the flat opcode-indexed tables (any uint8 token indexes). */
constexpr std::size_t kOpTableSize = 256;

namespace detail {

/** The dispatch relevance of @p op (constexpr so tables fold). */
constexpr DispatchSpec
specFor(Op op)
{
    switch (op) {
      // Value-producing A <- B op C: meaning depends on the sources.
      case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
      case Op::Mod: case Op::Carry: case Op::Mult1: case Op::Mult2:
      case Op::Shift: case Op::AShift: case Op::Rotate: case Op::Mask:
      case Op::And: case Op::Or: case Op::Xor:
      case Op::Lt: case Op::Le: case Op::Eq: case Op::Ne: case Op::Same:
        return {false, true, true};
      // Unary A <- op B.
      case Op::Neg: case Op::Not: case Op::Move: case Op::Movea:
      case Op::Tag:
        return {false, true, false};
      // At: A <- B at: C — object class and index class both matter.
      case Op::At:
        return {false, true, true};
      // AtPut: B at: C put: A — dispatch on the container and index.
      case Op::AtPut:
        return {false, true, true};
      // PutRes: *A <- B — dispatch on the pointer.
      case Op::PutRes:
        return {true, false, false};
      // As: A <- B as: C(tag) — privileged retag, dispatch on B.
      case Op::As:
        return {false, true, false};
      // Jumps dispatch on the condition class.
      case Op::Fjmp: case Op::Rjmp: case Op::FjmpF: case Op::RjmpF:
        return {true, false, false};
      // Xfer dispatches on the target context pointer.
      case Op::Xfer:
        return {true, false, false};
      case Op::Nop: case Op::Halt:
        return {false, false, false};
      default:
        // User-assigned selector tokens: receiver is B, argument is C.
        return {false, true, true};
    }
}

constexpr std::array<OpTraits, kOpTableSize>
buildOpTraits()
{
    std::array<OpTraits, kOpTableSize> t{};
    for (std::size_t i = 0; i < kOpTableSize; ++i) {
        Op op = static_cast<Op>(i);
        t[i].spec = specFor(op);
        // The destination operand A is read when the opcode consumes
        // it as a source: exactly the opcodes that dispatch on A, plus
        // AtPut (which dispatches on B/C but stores the value read
        // from A).
        t[i].readsA = t[i].spec.useA || op == Op::AtPut;
        t[i].readsSources =
            op != Op::Nop && op != Op::Halt && op != Op::Movea;
    }
    return t;
}

inline constexpr std::array<OpTraits, kOpTableSize> kOpTraits =
    buildOpTraits();

} // namespace detail

/** @return the interpretation traits of @p op (flat table load). */
inline const OpTraits &
opTraits(Op op)
{
    return detail::kOpTraits[static_cast<std::uint8_t>(op)];
}

/** @return the dispatch relevance of @p op. */
inline DispatchSpec
dispatchSpec(Op op)
{
    return opTraits(op).spec;
}

/** @return mnemonic for @p op ("add", "at:put:", ...). */
const char *opName(Op op);

/**
 * @return the canonical Smalltalk selector spelled by this opcode
 * token ("+", "-", "at:put:", ...), or "" for non-message tokens
 * (Nop, Halt, jumps).
 */
const char *opSelector(Op op);

/** @return true when @p op is one of the primitive tokens. */
inline bool
isPrimitiveToken(Op op)
{
    return static_cast<unsigned>(op) <
           static_cast<unsigned>(Op::kFirstUserOp);
}

/** ITLB key opcode value used for extended sends of @p selector. */
inline std::uint32_t
extendedOpKey(std::uint32_t selector)
{
    return 0x80000000u | selector;
}

} // namespace com::core

#endif // COMSIM_CORE_ISA_HPP
