/**
 * @file
 * Primitive methods: the COM's function units (paper Section 3.3).
 *
 * Primitive methods execute directly in the OP pipeline step; their
 * ITLB entries carry the primitive bit and a function-unit selector.
 * This module implements the *value* primitives — arithmetic, multiple
 * precision support, logical/bit field operations, comparisons, move
 * and tag read — as pure functions of the operand words. Primitives
 * with machine-state effects (movea, at:, at:put:, putres, as:, jumps,
 * xfer, halt) are executed by the Machine, but their applicability is
 * declared here so dispatch has a single source of truth.
 *
 * Abstract-instruction safety (Section 2.1): applying a token to
 * classes for which neither a primitive nor a defined method exists is
 * not an executable error state — dispatch raises doesNotUnderstand
 * before anything runs. "It is impossible to express an erroneous
 * operation."
 */

#ifndef COMSIM_CORE_PRIMITIVES_HPP
#define COMSIM_CORE_PRIMITIVES_HPP

#include <cstdint>

#include "core/constant_table.hpp"
#include "core/isa.hpp"
#include "mem/word.hpp"

namespace com::core {

/** Guest-visible fault conditions (trap causes). */
enum class GuestFault : std::uint8_t
{
    None = 0,
    DoesNotUnderstand, ///< no method for (opcode, operand classes)
    DivideByZero,
    ExecuteData,       ///< IP names a word not tagged Instruction
    Bounds,            ///< segment bounds violation
    Protection,        ///< write through a read-only capability
    NoSegment,         ///< unmapped virtual address
    PrivilegedAs,      ///< as: forging a pointer without privilege
    BadPointer,        ///< operand not a valid object pointer
    ContextOverflow,   ///< context pool exhausted
    BadJump,           ///< jump outside the method
    Halted,            ///< explicit halt instruction
};

/** @return printable fault name. */
const char *guestFaultName(GuestFault f);

/**
 * Does the machine implement (op, classA, classB, classC) as a
 * primitive method? Classes follow dispatchSpec(op): irrelevant
 * operands are passed as 0 (Uninit).
 */
bool primitiveApplicable(Op op, mem::ClassId cls_a, mem::ClassId cls_b,
                         mem::ClassId cls_c);

/** Result of a value primitive. */
struct ValueResult
{
    GuestFault fault = GuestFault::None;
    mem::Word value;
};

/**
 * @return true when @p op is a value primitive (pure function of its
 * operand words), executed here rather than in the Machine. Constexpr
 * and inline: dispatch consults this once per simulated instruction.
 */
constexpr bool
isValuePrimitive(Op op)
{
    switch (op) {
      case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
      case Op::Mod: case Op::Neg:
      case Op::Carry: case Op::Mult1: case Op::Mult2:
      case Op::Shift: case Op::AShift: case Op::Rotate: case Op::Mask:
      case Op::And: case Op::Or: case Op::Not: case Op::Xor:
      case Op::Lt: case Op::Le: case Op::Eq: case Op::Ne: case Op::Same:
      case Op::Move: case Op::Tag:
        return true;
      default:
        return false;
    }
}

/**
 * Execute a value primitive. Pre-condition: primitiveApplicable() held
 * for the operands' classes, so tag mismatches are simulator bugs, not
 * guest faults — except arithmetic faults (divide by zero), which are
 * reported.
 *
 * @param op the opcode token
 * @param b operand B (receiver / first source)
 * @param c operand C (second source)
 * @param consts the constant table (for boolean results)
 */
ValueResult evalValuePrimitive(Op op, mem::Word b, mem::Word c,
                               const ConstantTable &consts);

} // namespace com::core

#endif // COMSIM_CORE_PRIMITIVES_HPP
