/**
 * @file
 * A textual assembler for COM code.
 *
 * Exists for tests, examples and the Smalltalk compiler's debug output;
 * the COM itself only ever sees encoded 32-bit instruction words.
 *
 * Syntax (one instruction per line, ';' comments):
 *
 *     label:
 *         move   c4, c1          ; current-context word 4 <- word 1
 *         add    c5, c4, =1      ; '=' literals intern into the
 *         lt     c6, c5, =10     ;   constant table (ints, floats,
 *         jt     c6, @loop       ;   =true =false =nil =#atom)
 *         jf     c6, @done
 *         jmp    @loop           ; pseudo-ops select fjmp/rjmp
 *         msg    "min:", c4, c1, c2   ; user-selector 3-address send
 *         send   "run", 1        ; extended send, 1 implicit operand
 *         putres.r c2, c4        ; '.r' sets the return bit
 *
 * Operands: cN = current context word N, nN = next context word N,
 * #K = raw constant index, =lit = interned literal, @label = branch
 * target (pseudo-ops only).
 */

#ifndef COMSIM_CORE_ASSEMBLER_HPP
#define COMSIM_CORE_ASSEMBLER_HPP

#include <string>
#include <vector>

#include "core/isa.hpp"
#include "core/machine.hpp"

namespace com::core {

/** Two-pass assembler over a Machine (for constants and selectors). */
class Assembler
{
  public:
    explicit Assembler(Machine &machine) : machine_(machine) {}

    /**
     * Assemble @p source into instructions. Literals are interned into
     * the machine's constant table; "msg" selectors are assigned
     * opcode tokens. fatal()s on syntax errors with line numbers.
     */
    std::vector<Instr> assemble(const std::string &source);

    /** Assemble and install as (@p cls, @p selector). @return vaddr. */
    std::uint64_t assembleMethod(mem::ClassId cls,
                                 const std::string &selector,
                                 const std::string &source);

    /** Disassemble one instruction for diagnostics. */
    static std::string disassemble(const Instr &instr);

  private:
    Machine &machine_;
};

} // namespace com::core

#endif // COMSIM_CORE_ASSEMBLER_HPP
