/**
 * @file
 * Host-side decoded-instruction cache for the interpreter fast path.
 *
 * Pure host optimization with no guest-visible effect: the simulated
 * instruction cache (Section 3.6) still models hits, misses and stall
 * cycles exactly as before. What this cache removes is the *host* work
 * per simulated fetch — the backing-store hash probe, the tag check and
 * the bitfield decode — by memoizing the decoded form of instruction
 * words keyed on their absolute address.
 *
 * Consistency contract (enforced by Machine):
 *   - an entry is only consulted when the simulated i-cache hits, so
 *     timing statistics cannot diverge;
 *   - a line is filled only after the fetched word passed the
 *     instruction-tag check, so the ExecuteData fault path is identical;
 *   - guest stores invalidate the addressed line (self-modifying code
 *     behaves exactly like the non-cached interpreter), and garbage
 *     collections invalidate everything (absolute addresses can be
 *     recycled onto fresh objects afterwards).
 *
 * Direct-mapped on the low address bits: method code is contiguous, so
 * conflicts are rare, and a probe is one load plus one compare.
 */

#ifndef COMSIM_CORE_DECODED_CACHE_HPP
#define COMSIM_CORE_DECODED_CACHE_HPP

#include <cstdint>
#include <vector>

#include "core/invalidation_bus.hpp"
#include "core/isa.hpp"
#include "mem/word.hpp"
#include "sim/logging.hpp"

namespace com::core {

/** Direct-mapped absolute-address -> decoded Instr memo. */
class DecodedCache : public CodeInvalidationListener
{
  public:
    /** @param lines power-of-two number of direct-mapped lines */
    explicit DecodedCache(std::size_t lines = 8192)
        : lines_(lines), mask_(lines - 1)
    {
        sim::fatalIf(lines == 0 || (lines & (lines - 1)) != 0,
                     "decoded cache line count must be a power of two, "
                     "got ",
                     lines);
    }

    /** @return the decoded instruction at @p abs, or nullptr. */
    const Instr *
    find(mem::AbsAddr abs)
    {
        const Line &l = lines_[static_cast<std::size_t>(abs) & mask_];
        if (l.abs == abs) {
            ++hits_;
            return &l.instr;
        }
        ++misses_;
        return nullptr;
    }

    /** Memoize @p instr as the decoding of the word at @p abs. */
    void
    fill(mem::AbsAddr abs, const Instr &instr)
    {
        Line &l = lines_[static_cast<std::size_t>(abs) & mask_];
        l.abs = abs;
        l.instr = instr;
    }

    /** Drop the line holding @p abs, if any (guest store to code). */
    void
    invalidate(mem::AbsAddr abs)
    {
        Line &l = lines_[static_cast<std::size_t>(abs) & mask_];
        if (l.abs == abs)
            l.abs = kEmpty;
    }

    /** Drop everything (GC may recycle absolute addresses). */
    void
    invalidateAll()
    {
        for (Line &l : lines_)
            l.abs = kEmpty;
        ++generations_;
    }

    /** Restore the just-constructed state (machine reset). */
    void
    reset()
    {
        for (Line &l : lines_)
            l.abs = kEmpty;
        hits_ = 0;
        misses_ = 0;
        generations_ = 0;
    }

    // CodeInvalidationListener: the bus events map one-to-one onto
    // the operations above.
    void onCodeStore(mem::AbsAddr abs) override { invalidate(abs); }
    void onCodeInvalidateAll() override { invalidateAll(); }
    void onCodeReset() override { reset(); }

    /** Host-side probe hits (diagnostics; not a guest statistic). */
    std::uint64_t hits() const { return hits_; }
    /** Host-side probe misses (diagnostics; not a guest statistic). */
    std::uint64_t misses() const { return misses_; }
    /** Full invalidations performed. */
    std::uint64_t generations() const { return generations_; }
    /** Number of direct-mapped lines. */
    std::size_t size() const { return lines_.size(); }

  private:
    // Absolute address 0 holds the absolute space's origin and never
    // contains code fetched through this cache, but use an explicit
    // out-of-band tag anyway.
    static constexpr mem::AbsAddr kEmpty = ~0ull;

    struct Line
    {
        mem::AbsAddr abs = kEmpty;
        Instr instr;
    };

    std::vector<Line> lines_;
    std::size_t mask_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t generations_ = 0;
};

} // namespace com::core

#endif // COMSIM_CORE_DECODED_CACHE_HPP
