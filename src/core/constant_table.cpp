#include "core/constant_table.hpp"

#include "sim/logging.hpp"

namespace com::core {

ConstantTable::ConstantTable(obj::SelectorTable &selectors)
{
    nilAtom_ = selectors.intern("nil");
    trueAtom_ = selectors.intern("true");
    falseAtom_ = selectors.intern("false");
    entries_.push_back(mem::Word::fromAtom(nilAtom_));
    entries_.push_back(mem::Word::fromAtom(trueAtom_));
    entries_.push_back(mem::Word::fromAtom(falseAtom_));
}

std::uint8_t
ConstantTable::intern(mem::Word w)
{
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (entries_[i] == w)
            return static_cast<std::uint8_t>(i);
    sim::fatalIf(entries_.size() >= kMaxEntries,
                 "constant table full (", kMaxEntries, " entries)");
    entries_.push_back(w);
    return static_cast<std::uint8_t>(entries_.size() - 1);
}

mem::Word
ConstantTable::at(std::uint8_t index) const
{
    sim::panicIf(index >= entries_.size(),
                 "constant index ", static_cast<int>(index),
                 " out of range");
    return entries_[index];
}

} // namespace com::core
