#include "core/pipeline.hpp"

#include "sim/strutil.hpp"

namespace com::core {

Pipeline::Pipeline() : stats_("pipeline")
{
    stats_.addCounter("instructions", &instrs_, "instructions issued");
    stats_.addCounter("cycles", &cycles_, "total cycles incl. stalls");
    stats_.addCounter("calls", &calls_, "method calls");
    stats_.addCounter("returns", &returns_, "method returns");
    stats_.addCounter("branch_delay_cycles", &branchCycles_,
                      "taken-branch delay cycles");
    stats_.addCounter("call_overhead_cycles", &callCycles_,
                      "flush + call-op cycles");
    stats_.addCounter("operand_copy_cycles", &operandCopyCycles_,
                      "operand copy cycles on calls");
    stats_.addCounter("itlb_stall_cycles", &itlbCycles_,
                      "ITLB miss stalls");
    stats_.addCounter("icache_stall_cycles", &icacheCycles_,
                      "instruction cache miss stalls");
    stats_.addCounter("atlb_stall_cycles", &atlbCycles_,
                      "ATLB miss stalls");
    stats_.addCounter("memory_stall_cycles", &memCycles_,
                      "at:/at:put: hierarchy stalls");
    stats_.addCounter("context_stall_cycles", &ctxCycles_,
                      "context cache stalls");
    stats_.addCounter("trap_cycles", &trapCycles_,
                      "trap handler cycles");
}

void
Pipeline::recordMnemonic(const char *mnemonic)
{
    recent_.emplace_back(mnemonic);
    if (recent_.size() > kTraceDepth)
        recent_.pop_front();
}

void
Pipeline::reset()
{
    instrs_.reset();
    cycles_.reset();
    calls_.reset();
    returns_.reset();
    branchCycles_.reset();
    callCycles_.reset();
    operandCopyCycles_.reset();
    itlbCycles_.reset();
    icacheCycles_.reset();
    atlbCycles_.reset();
    memCycles_.reset();
    ctxCycles_.reset();
    trapCycles_.reset();
    recent_.clear();
}

void
Pipeline::renderStaircase(std::ostream &os, std::size_t n) const
{
    // Reproduce Figure 6: one column per instruction, five stage boxes
    // per column, each column starting one stage (two clock cycles)
    // after its predecessor.
    static const char *stages[5] = {"Fetch", "Read ", "ITLB ", " OP  ",
                                    "Write"};
    std::size_t count = n < recent_.size() ? n : recent_.size();
    if (count == 0)
        return;
    std::size_t first = recent_.size() - count;

    std::string header;
    for (std::size_t i = 0; i < count; ++i)
        header += sim::padRight(recent_[first + i], 10);
    os << header << "\n";

    const std::string box_border = "+-------+ ";
    const std::string blank(10, ' ');
    std::size_t rows = count + 4; // last instruction ends 4 rows later
    for (std::size_t r = 0; r < rows; ++r) {
        std::string top, mid;
        for (std::size_t i = 0; i < count; ++i) {
            bool active = r >= i && r < i + 5;
            top += active ? box_border : blank;
            if (active)
                mid += "| " + std::string(stages[r - i]) + " | ";
            else
                mid += blank;
        }
        os << top << "\n" << mid << "\n";
    }
    // Closing borders for columns still active in the final row.
    std::string bottom;
    for (std::size_t i = 0; i < count; ++i)
        bottom += (rows - 1 >= i && rows - 1 < i + 5) ? box_border
                                                      : blank;
    os << bottom << "\n";
}

} // namespace com::core
