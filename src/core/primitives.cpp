#include "core/primitives.hpp"

#include <cmath>

namespace com::core {

namespace {

using mem::ClassId;
using mem::Tag;
using mem::Word;

constexpr ClassId kInt = static_cast<ClassId>(Tag::SmallInt);
constexpr ClassId kFloat = static_cast<ClassId>(Tag::Float);
constexpr ClassId kAtom = static_cast<ClassId>(Tag::Atom);
constexpr ClassId kPtr = static_cast<ClassId>(Tag::ObjectPtr);

/** Is @p c a numeric primitive class? */
bool
numeric(ClassId c)
{
    return c == kInt || c == kFloat;
}

/**
 * Is @p c the class of a pointer-valued word? Either the raw
 * ObjectPtr tag class (a dangling capability) or any object class
 * resolved through a segment descriptor.
 */
bool
pointerClass(ClassId c)
{
    return c == kPtr || c >= mem::kFirstUserClass;
}

/** Coerce a numeric word to double for mixed-mode arithmetic. */
double
toDouble(const Word &w)
{
    return w.isInt() ? static_cast<double>(w.asInt())
                     : static_cast<double>(w.asFloat());
}

/** Wrap-around 32-bit signed addition/subtraction helpers. */
std::int32_t
wrapAdd(std::int32_t a, std::int32_t b)
{
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                     static_cast<std::uint32_t>(b));
}

std::int32_t
wrapSub(std::int32_t a, std::int32_t b)
{
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) -
                                     static_cast<std::uint32_t>(b));
}

std::int32_t
wrapMul(std::int32_t a, std::int32_t b)
{
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) *
                                     static_cast<std::uint32_t>(b));
}

} // namespace

const char *
guestFaultName(GuestFault f)
{
    switch (f) {
      case GuestFault::None: return "none";
      case GuestFault::DoesNotUnderstand: return "doesNotUnderstand";
      case GuestFault::DivideByZero: return "divideByZero";
      case GuestFault::ExecuteData: return "executeData";
      case GuestFault::Bounds: return "bounds";
      case GuestFault::Protection: return "protection";
      case GuestFault::NoSegment: return "noSegment";
      case GuestFault::PrivilegedAs: return "privilegedAs";
      case GuestFault::BadPointer: return "badPointer";
      case GuestFault::ContextOverflow: return "contextOverflow";
      case GuestFault::BadJump: return "badJump";
      case GuestFault::Halted: return "halted";
    }
    return "?";
}

bool
primitiveApplicable(Op op, mem::ClassId cls_a, mem::ClassId cls_b,
                    mem::ClassId cls_c)
{
    switch (op) {
      case Op::Nop:
      case Op::Halt:
        return true;

      // Arithmetic: int/float including mixed modes; Mod int only.
      case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
        return numeric(cls_b) && numeric(cls_c);
      case Op::Mod:
        return cls_b == kInt && cls_c == kInt;
      case Op::Neg:
        return numeric(cls_b);

      // Multiple precision support: small integers only.
      case Op::Carry: case Op::Mult1: case Op::Mult2:
        return cls_b == kInt && cls_c == kInt;

      // Logical / bit field: small integers as bit fields.
      case Op::Shift: case Op::AShift: case Op::Rotate: case Op::Mask:
      case Op::And: case Op::Or: case Op::Xor:
        return cls_b == kInt && cls_c == kInt;
      case Op::Not:
        return cls_b == kInt;

      // Comparisons: int and float (mixed allowed); Same for all.
      case Op::Lt: case Op::Le:
        return numeric(cls_b) && numeric(cls_c);
      case Op::Eq: case Op::Ne:
        return (numeric(cls_b) && numeric(cls_c)) ||
               (cls_b == kAtom && cls_c == kAtom);
      case Op::Same:
        return true;

      // Move is defined for all types; movea for any operand.
      case Op::Move: case Op::Movea:
        return true;

      // Memory instructions need an object pointer base and an
      // integer index.
      case Op::At:
        return pointerClass(cls_b) && cls_c == kInt;
      case Op::AtPut:
        return pointerClass(cls_b) && cls_c == kInt;
      case Op::PutRes:
        return pointerClass(cls_a);

      // Tag access.
      case Op::As:
        return true;
      case Op::Tag:
        return true;

      // Jumps: condition may be an integer or a boolean atom.
      case Op::Fjmp: case Op::Rjmp: case Op::FjmpF: case Op::RjmpF:
        return cls_a == kInt || cls_a == kAtom;

      // Xfer transfers to a context named by an object pointer.
      case Op::Xfer:
        return pointerClass(cls_a);

      default:
        return false; // user selector tokens are never primitive
    }
}

ValueResult
evalValuePrimitive(Op op, mem::Word b, mem::Word c,
                   const ConstantTable &consts)
{
    ValueResult r;
    const bool both_int = b.isInt() && c.isInt();

    switch (op) {
      case Op::Add:
        if (both_int)
            r.value = Word::fromInt(wrapAdd(b.asInt(), c.asInt()));
        else
            r.value = Word::fromFloat(
                static_cast<float>(toDouble(b) + toDouble(c)));
        return r;
      case Op::Sub:
        if (both_int)
            r.value = Word::fromInt(wrapSub(b.asInt(), c.asInt()));
        else
            r.value = Word::fromFloat(
                static_cast<float>(toDouble(b) - toDouble(c)));
        return r;
      case Op::Mul:
        if (both_int)
            r.value = Word::fromInt(wrapMul(b.asInt(), c.asInt()));
        else
            r.value = Word::fromFloat(
                static_cast<float>(toDouble(b) * toDouble(c)));
        return r;
      case Op::Div:
        if (both_int) {
            if (c.asInt() == 0) {
                r.fault = GuestFault::DivideByZero;
                return r;
            }
            r.value = Word::fromInt(b.asInt() / c.asInt());
        } else {
            double denom = toDouble(c);
            if (denom == 0.0) {
                r.fault = GuestFault::DivideByZero;
                return r;
            }
            r.value = Word::fromFloat(
                static_cast<float>(toDouble(b) / denom));
        }
        return r;
      case Op::Mod: {
        if (c.asInt() == 0) {
            r.fault = GuestFault::DivideByZero;
            return r;
        }
        // Smalltalk-style flooring modulo: result sign follows divisor.
        std::int64_t bi = b.asInt(), ci = c.asInt();
        std::int64_t m = bi % ci;
        if (m != 0 && ((m < 0) != (ci < 0)))
            m += ci;
        r.value = Word::fromInt(static_cast<std::int32_t>(m));
        return r;
      }
      case Op::Neg:
        if (b.isInt())
            r.value = Word::fromInt(wrapSub(0, b.asInt()));
        else
            r.value = Word::fromFloat(-b.asFloat());
        return r;

      case Op::Carry: {
        // Carry-out of unsigned addition: multiprecision without flags.
        std::uint64_t s = static_cast<std::uint32_t>(b.asInt());
        s += static_cast<std::uint32_t>(c.asInt());
        r.value = Word::fromInt(s > 0xffffffffull ? 1 : 0);
        return r;
      }
      case Op::Mult1: {
        // Low 32 bits of the unsigned product.
        std::uint64_t p =
            static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(b.asInt())) *
            static_cast<std::uint32_t>(c.asInt());
        r.value = Word::fromInt(
            static_cast<std::int32_t>(p & 0xffffffffull));
        return r;
      }
      case Op::Mult2: {
        // High 32 bits of the unsigned product.
        std::uint64_t p =
            static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(b.asInt())) *
            static_cast<std::uint32_t>(c.asInt());
        r.value = Word::fromInt(static_cast<std::int32_t>(p >> 32));
        return r;
      }

      case Op::Shift: {
        // Positive: logical left; negative: logical right.
        std::int32_t s = c.asInt();
        std::uint32_t v = static_cast<std::uint32_t>(b.asInt());
        if (s >= 32 || s <= -32)
            v = 0;
        else if (s >= 0)
            v <<= s;
        else
            v >>= -s;
        r.value = Word::fromInt(static_cast<std::int32_t>(v));
        return r;
      }
      case Op::AShift: {
        // Positive: left; negative: arithmetic right.
        std::int32_t s = c.asInt();
        std::int32_t v = b.asInt();
        if (s >= 32)
            v = 0;
        else if (s >= 0)
            v = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(v) << s);
        else if (s <= -32)
            v = v < 0 ? -1 : 0;
        else
            v >>= -s;
        r.value = Word::fromInt(v);
        return r;
      }
      case Op::Rotate: {
        std::uint32_t v = static_cast<std::uint32_t>(b.asInt());
        std::uint32_t s = static_cast<std::uint32_t>(c.asInt()) & 31;
        if (s)
            v = (v << s) | (v >> (32 - s));
        r.value = Word::fromInt(static_cast<std::int32_t>(v));
        return r;
      }
      case Op::Mask:
        // Clear the bits selected by C (bit-field extraction support).
        r.value = Word::fromInt(b.asInt() & ~c.asInt());
        return r;
      case Op::And:
        r.value = Word::fromInt(b.asInt() & c.asInt());
        return r;
      case Op::Or:
        r.value = Word::fromInt(b.asInt() | c.asInt());
        return r;
      case Op::Not:
        r.value = Word::fromInt(~b.asInt());
        return r;
      case Op::Xor:
        r.value = Word::fromInt(b.asInt() ^ c.asInt());
        return r;

      case Op::Lt:
        r.value = consts.boolWord(toDouble(b) < toDouble(c));
        return r;
      case Op::Le:
        r.value = consts.boolWord(toDouble(b) <= toDouble(c));
        return r;
      case Op::Eq:
        if (b.isAtom() && c.isAtom())
            r.value = consts.boolWord(b.asAtom() == c.asAtom());
        else
            r.value = consts.boolWord(toDouble(b) == toDouble(c));
        return r;
      case Op::Ne:
        if (b.isAtom() && c.isAtom())
            r.value = consts.boolWord(b.asAtom() != c.asAtom());
        else
            r.value = consts.boolWord(toDouble(b) != toDouble(c));
        return r;
      case Op::Same:
        // Object identity: same bits, same tag.
        r.value = consts.boolWord(b == c);
        return r;

      case Op::Move:
        r.value = b;
        return r;
      case Op::Tag:
        r.value = Word::fromInt(static_cast<std::int32_t>(b.tag()));
        return r;

      default:
        sim::panic("evalValuePrimitive on non-value opcode ",
                   opName(op));
    }
}

} // namespace com::core
