#include "core/machine.hpp"

#include "mem/fp_address.hpp"
#include "sim/strutil.hpp"

namespace com::core {

using mem::AbsAddr;
using mem::ClassId;
using mem::FpAddress;
using mem::Tag;
using mem::Word;
using mem::XlateStatus;

namespace {

constexpr ClassId kIntCls = static_cast<ClassId>(Tag::SmallInt);
constexpr ClassId kAtomCls = static_cast<ClassId>(Tag::Atom);
constexpr ClassId kPtrCls = static_cast<ClassId>(Tag::ObjectPtr);

} // namespace

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg), decoded_(cfg.decodedCacheLines)
{
    // Both host-side translation caches drop state on the same guest
    // events; the bus is the single point publishing them.
    codeBus_.subscribe(&decoded_);
    codeBus_.subscribe(&superblocks_);
    space_ = std::make_unique<mem::AbsoluteSpace>(0, cfg.absSpaceOrder);
    init();
}

void
Machine::init()
{
    const MachineConfig &cfg = cfg_;
    selectorOfOp_.fill(obj::SelectorTable::kNotFound);
    segments_ = std::make_unique<mem::SegmentTable>(cfg.addrFormat,
                                                    *space_, 0);
    methods_ = std::make_unique<obj::MethodRegistry>(classes_);
    heap_ = std::make_unique<obj::ObjectHeap>(*segments_, memory_,
                                              classes_);
    contexts_ = std::make_unique<obj::ContextPool>(
        *segments_, memory_, classes_.contextClass(),
        cfg.contextPoolSize);
    constants_ = std::make_unique<ConstantTable>(selectors_);
    itlb_ = std::make_unique<cache::Itlb>(cfg.itlbSets, cfg.itlbWays,
                                          cache::ReplPolicy::Lru,
                                          cfg.itlbMissPenalty);
    atlb_ = std::make_unique<cache::Atlb>(cfg.atlbSets, cfg.atlbWays,
                                          cfg.atlbMissPenalty);
    atlb_->watch(*segments_);
    ctxCache_ = std::make_unique<cache::ContextCache>(
        memory_, cfg.ctxCacheBlocks, obj::kContextWords, 2);
    icache_ = std::make_unique<
        cache::SetAssocCache<std::uint64_t, char>>(
        cfg.icacheSets, cfg.icacheWays, cache::ReplPolicy::Lru,
        "icache");

    std::vector<mem::LevelConfig> levels = cfg.hierarchy;
    if (levels.empty()) {
        // Default: one main-memory level, hashed set-associative over
        // absolute space (Section 3.1), 1 M words.
        levels.push_back(mem::LevelConfig{"main", 64, 1024, 16, 3,
                                          cache::ReplPolicy::Lru});
    }
    hierarchy_ = std::make_unique<mem::MemoryHierarchy>(
        levels, cfg.backingLatency);

    gc_ = std::make_unique<obj::GarbageCollector>(*heap_, *contexts_);
    gc_->addRootProvider([this](std::vector<std::uint64_t> &roots) {
        if (cp_)
            roots.push_back(cp_);
        if (ncp_)
            roots.push_back(ncp_);
        if (bootCtx_)
            roots.push_back(bootCtx_);
        for (std::uint64_t m : methodObjects_)
            roots.push_back(m);
        for (const Word &w : constants_->entries())
            if (w.isPointer())
                roots.push_back(w.asPointer());
    });

    ps_ = cfg.privileged ? 1 : 0;

    // Pre-assign the primitive opcode tokens to their selectors.
    for (unsigned t = 0; t < static_cast<unsigned>(Op::kFirstUserOp);
         ++t) {
        Op op = static_cast<Op>(t);
        const char *sel = opSelector(op);
        if (sel[0] != '\0') {
            opcodeOf_[sel] = op;
            selectorOfOp_[static_cast<std::uint8_t>(t)] =
                selectors_.intern(sel);
        }
    }
}

Machine::~Machine() = default;

void
Machine::reset()
{
    // Tear down in reverse dependency order. The ATLB watches the
    // segment table, the context pool threads its free list through
    // the backing store, and the GC's root provider captures `this`;
    // all of them are rebuilt from scratch by init().
    gc_.reset();
    hierarchy_.reset();
    icache_.reset();
    ctxCache_.reset();
    atlb_.reset();
    itlb_.reset();
    constants_.reset();
    contexts_.reset();
    heap_.reset();
    methods_.reset();
    segments_.reset();

    // The two big substrates are re-initialized in place: the
    // absolute-space region survives and backing pages stay resident
    // (cleared), which is what makes reset cheaper than construction.
    memory_.reset();
    space_->reset();

    classes_ = obj::ClassTable();
    selectors_ = obj::SelectorTable();
    pipeline_.reset();
    codeBus_.reset();
    superblocks_.reclaim();
    hotpath_.clear();

    opcodeOf_.clear();
    nextUserOp_ = static_cast<std::uint8_t>(Op::kFirstUserOp);
    hostRoutines_.clear();
    methodLength_.clear();
    methodObjects_.clear();
    escaped_.clear();
    cp_ = 0;
    ncp_ = 0;
    ip_ = 0;
    sn_ = 0;
    ps_ = 0;
    ipAbs_ = 0;
    ipLimitAbs_ = 0;
    bootCtx_ = 0;
    finished_ = false;
    controlTransferred_ = false;
    recordMnemonics_ = false;
    traceSink_ = nullptr;
    ctxRefs_ = 0;
    heapRefs_ = 0;
    faultDetail_.clear();
    output_.clear();

    init();
}

std::shared_ptr<const Machine::Image>
Machine::captureImage()
{
    auto img = std::make_shared<Image>();
    img->memory = memory_.snapshot();
    img->space = space_->snapshot();
    img->segments = segments_->snapshot();
    img->classes = classes_;
    img->selectors = selectors_;
    img->methods = methods_->snapshot();
    img->heap = heap_->snapshot();
    img->contexts = contexts_->snapshot();
    img->constants = *constants_;
    img->itlb = itlb_->snapshot();
    img->atlb = atlb_->snapshot();
    img->ctxCache = ctxCache_->snapshot();
    img->icache = icache_->snapshot();
    img->hierarchy = hierarchy_->snapshot();
    img->gc = gc_->snapshot();
    img->pipeline = pipeline_.snapshot();

    img->cp = cp_;
    img->ncp = ncp_;
    img->ip = ip_;
    img->sn = sn_;
    img->ps = ps_;
    img->ipAbs = ipAbs_;
    img->ipLimitAbs = ipLimitAbs_;

    img->opcodeOf = opcodeOf_;
    img->selectorOfOp = selectorOfOp_;
    img->nextUserOp = nextUserOp_;
    img->hostRoutines = hostRoutines_;
    img->methodLength = methodLength_;
    img->methodObjects = methodObjects_;

    img->escaped = escaped_;
    img->bootCtx = bootCtx_;
    img->finished = finished_;
    img->controlTransferred = controlTransferred_;
    img->ctxRefs = ctxRefs_;
    img->heapRefs = heapRefs_;
    img->faultDetail = faultDetail_;
    img->output = output_;
    return img;
}

void
Machine::restoreImage(const Image &img)
{
    // Every subsystem is overwritten in place: the objects themselves
    // (and with them the ATLB's segment-table listener, the GC's root
    // provider and every StatGroup registration) survive, only their
    // state is replaced.
    memory_.restore(img.memory);
    space_->restore(img.space);
    segments_->restore(img.segments);
    classes_ = img.classes;
    selectors_ = img.selectors;
    methods_->restore(img.methods);
    heap_->restore(img.heap);
    contexts_->restore(img.contexts);
    *constants_ = *img.constants;
    itlb_->restore(img.itlb);
    atlb_->restore(img.atlb);
    ctxCache_->restore(img.ctxCache);
    icache_->restore(img.icache);
    hierarchy_->restore(img.hierarchy);
    gc_->restore(img.gc);
    pipeline_.restore(img.pipeline);
    // The decoded memo and superblock store are host-side
    // accelerators, not guest state; they are not captured, so start
    // them empty and let them repopulate.
    codeBus_.reset();
    superblocks_.reclaim();
    hotpath_.clear();

    cp_ = img.cp;
    ncp_ = img.ncp;
    ip_ = img.ip;
    sn_ = img.sn;
    ps_ = img.ps;
    ipAbs_ = img.ipAbs;
    ipLimitAbs_ = img.ipLimitAbs;

    opcodeOf_ = img.opcodeOf;
    selectorOfOp_ = img.selectorOfOp;
    nextUserOp_ = img.nextUserOp;
    hostRoutines_ = img.hostRoutines;
    methodLength_ = img.methodLength;
    methodObjects_ = img.methodObjects;

    escaped_ = img.escaped;
    bootCtx_ = img.bootCtx;
    finished_ = img.finished;
    controlTransferred_ = img.controlTransferred;
    ctxRefs_ = img.ctxRefs;
    heapRefs_ = img.heapRefs;
    faultDetail_ = img.faultDetail;
    output_ = img.output;
}

// ----------------------------------------------------------------------
// Program construction
// ----------------------------------------------------------------------

Op
Machine::assignOpcode(const std::string &selector)
{
    auto it = opcodeOf_.find(selector);
    if (it != opcodeOf_.end())
        return it->second;
    if (nextUserOp_ >= static_cast<std::uint8_t>(Op::kExtendedOp))
        return Op::kExtendedOp; // token space full: extended sends
    Op op = static_cast<Op>(nextUserOp_++);
    opcodeOf_[selector] = op;
    selectorOfOp_[static_cast<std::uint8_t>(op)] =
        selectors_.intern(selector);
    return op;
}

obj::SelectorId
Machine::selectorOf(Op op)
{
    obj::SelectorId sel = selectorOfOp_[static_cast<std::uint8_t>(op)];
    sim::panicIf(sel == obj::SelectorTable::kNotFound,
                 "opcode token ", opName(op), " carries no selector");
    return sel;
}

std::uint64_t
Machine::makeMethodObject(const std::vector<Instr> &code)
{
    sim::fatalIf(code.empty(), "method must contain instructions");
    std::uint64_t vaddr =
        heap_->allocateRaw(classes_.methodClass(), code.size());
    mem::XlateResult r = segments_->translate(vaddr, 0, true);
    sim::panicIf(!r.ok(), "method object translation failed");
    for (std::size_t i = 0; i < code.size(); ++i)
        memory_.poke(r.abs + i,
                     Word::fromInstruction(code[i].encode()));
    methodLength_[vaddr] = code.size();
    methodObjects_.push_back(vaddr);
    return vaddr;
}

std::uint64_t
Machine::installMethod(mem::ClassId cls, const std::string &selector,
                       const std::vector<Instr> &code)
{
    std::uint64_t vaddr = makeMethodObject(code);
    obj::SelectorId sel = selectors_.intern(selector);
    unsigned arity = obj::SelectorTable::arityOf(selector);
    cache::MethodEntry e;
    e.primitive = false;
    e.methodVaddr = vaddr;
    e.argWords = static_cast<std::uint8_t>(
        arity >= 1 ? 3 : 2); // arg0 + receiver (+ one argument)
    methods_->install(cls, sel, e);
    // A redefinition must not leave stale translations around
    // (Section 2.1's extensibility story).
    itlb_->invalidateAll();
    return vaddr;
}

void
Machine::installHostRoutine(mem::ClassId cls, const std::string &selector,
                            HostRoutine fn)
{
    obj::SelectorId sel = selectors_.intern(selector);
    unsigned arity = obj::SelectorTable::arityOf(selector);
    cache::MethodEntry e;
    e.primitive = true;
    e.functionUnit =
        kHostBase + static_cast<std::uint32_t>(hostRoutines_.size());
    e.argWords = static_cast<std::uint8_t>(arity >= 1 ? 3 : 2);
    hostRoutines_.push_back(std::move(fn));
    methods_->install(cls, sel, e);
    itlb_->invalidateAll();
}

// ----------------------------------------------------------------------
// Execution setup
// ----------------------------------------------------------------------

RunResult
Machine::call(std::uint64_t method_vaddr, mem::Word receiver,
              const std::vector<mem::Word> &args,
              std::uint64_t max_instructions)
{
    faultDetail_.clear();
    finished_ = false;

    // Boot context: represents "the caller of the entry method".
    obj::ContextPool::Ctx boot = contexts_->allocate();
    escaped_.erase(boot.vaddr);
    bootCtx_ = boot.vaddr;
    ctxCache_->allocateNext(boot.abs);
    ctxCache_->callAdvance();
    cp_ = boot.vaddr;
    ctxCache_->write(cache::CtxVia::Current, obj::kCtxRcp,
                     Word::fromPointer(static_cast<std::uint32_t>(
                         obj::kNullCtxPtr)));
    // Boot RIP stays Uninit: returning into it ends the run.

    // Entry context, staged as next.
    GuestFault f = allocNextContext();
    if (f != GuestFault::None)
        return RunResult{f, false, false, 0, 0, guestFaultName(f)};

    std::uint64_t result_slot =
        FpAddress::addOffset(cfg_.addrFormat, bootCtx_,
                             static_cast<std::int64_t>(kBootResultSlot));
    ctxCache_->write(cache::CtxVia::Next, obj::kCtxArg0,
                     Word::fromPointer(
                         static_cast<std::uint32_t>(result_slot)));
    ctxCache_->write(cache::CtxVia::Next, obj::kCtxReceiver, receiver);
    for (std::size_t i = 0; i < args.size(); ++i) {
        sim::fatalIf(obj::kCtxFirstArg + i >= obj::kContextWords,
                     "too many entry arguments");
        ctxCache_->write(cache::CtxVia::Next,
                         obj::kCtxFirstArg + i, args[i]);
    }

    // Manual call sequence into the entry method.
    ctxCache_->callAdvance();
    cp_ = ncp_;
    f = allocNextContext();
    if (f != GuestFault::None)
        return RunResult{f, false, false, 0, 0, guestFaultName(f)};
    f = setIp(method_vaddr);
    if (f != GuestFault::None)
        return RunResult{f, false, false, 0, 0, guestFaultName(f)};

    return run(max_instructions);
}

mem::Word
Machine::lastResult()
{
    sim::panicIf(bootCtx_ == 0, "lastResult before any call");
    std::uint64_t stall = 0;
    return ctxCache_->readAbs(contexts_->absOf(bootCtx_),
                              kBootResultSlot, &stall);
}

RunResult
Machine::run(std::uint64_t max_instructions)
{
    RunResult res;
    std::uint64_t start_instrs = pipeline_.instructions();
    std::uint64_t executed = 0;

    // Superblocks are entered (and promoted) only at straight-line
    // entry points: the first instruction of the run and every
    // control-transfer target. The loop top is the translation safe
    // point — no block is mid-execution here, so retired blocks can
    // be freed.
    bool at_entry = true;

    while (executed < max_instructions) {
        GuestFault f;
        if (cfg_.enableSuperblocks && at_entry && superblockEligible()) {
            superblocks_.reclaim();
            SuperBlock *sb = superblocks_.find(ipAbs_);
            // A shorter method descriptor can alias a previously
            // translated entry (same entry word, tighter ipLimitAbs_);
            // the block's tail would run past this method's end, so
            // interpret instead — step() raises the fetch fault.
            if (sb && sb->entryAbs + sb->len() > ipLimitAbs_)
                sb = nullptr;
            else if (!sb &&
                     hotpath_.bump(ipAbs_) == cfg_.superblockThreshold)
                sb = translateSuperblock();
            f = sb ? runSuperblock(*sb, max_instructions - executed)
                   : step();
        } else {
            f = step();
        }
        at_entry = controlTransferred_;
        executed = pipeline_.instructions() - start_instrs;
        if (finished_) {
            res.finished = true;
            res.message = "entry method returned";
            break;
        }
        if (f != GuestFault::None) {
            res.fault = f;
            res.message = guestFaultName(f);
            if (!faultDetail_.empty())
                res.message += ": " + faultDetail_;
            break;
        }
        ctxCache_->maintain();
    }
    if (!res.finished && res.fault == GuestFault::None) {
        res.capped = true;
        res.message = "instruction limit reached";
    }
    res.instructions = executed;
    res.cycles = pipeline_.cycles();
    return res;
}

obj::GarbageCollector::Result
Machine::collectGarbage()
{
    // The cache may hold the freshest copies of live contexts.
    ctxCache_->flushAll();
    // Swept segments may be recycled onto fresh objects: memoized
    // decodings and superblocks keyed by absolute address would go
    // stale. (A GC can fire mid-superblock — via a call's context
    // allocation or the guest 'collect' routine — so retired blocks
    // stay on the graveyard until the run loop's safe point.)
    codeBus_.invalidateAll();
    // Promotion fires on counter == threshold exactly; counters
    // already past it would never re-promote the blocks the
    // invalidation just retired, so restart the count.
    hotpath_.clear();
    return gc_->collect();
}

// ----------------------------------------------------------------------
// The interpretation loop (Figure 5)
// ----------------------------------------------------------------------

GuestFault
Machine::fetch(Instr &out)
{
    sim::panicIf(ipAbs_ == 0 && ip_ == 0, "fetch with no IP set");
    if (ipAbs_ >= ipLimitAbs_) {
        faultDetail_ = "instruction fetch ran off the method end";
        return GuestFault::ExecuteData;
    }
    // Step 1: the IP looks up the next instruction in the icache. The
    // simulated hit/miss accounting is identical on both host paths;
    // on a hit the memoized decoding (if still valid) skips the host
    // backing-store probe, the tag check and the bitfield decode.
    if (icache_->lookup(ipAbs_)) {
        if (cfg_.enableDecodedCache) {
            const Instr *d = decoded_.find(ipAbs_);
            if (d) {
                out = *d;
                return GuestFault::None;
            }
        }
    } else {
        icache_->insert(ipAbs_, 0);
        pipeline_.stallIcacheMiss(cfg_.icacheMissPenalty);
    }
    Word w = memory_.peek(ipAbs_);
    if (!w.isInstruction()) {
        // Instruction safety: attempting to execute data is trapped.
        faultDetail_ = "word at IP is tagged " +
                       std::string(mem::tagName(w.tag()));
        return GuestFault::ExecuteData;
    }
    out = Instr::decode(w.bits());
    // Context blocks are excluded from the memo: their words can be
    // rewritten through the context cache without touching backing
    // memory, which the invalidation contract could not observe.
    if (cfg_.enableDecodedCache && !contexts_->containsAbs(ipAbs_))
        decoded_.fill(ipAbs_, out);
    return GuestFault::None;
}

mem::ClassId
Machine::classOfWord(const mem::Word &w)
{
    if (!w.isPointer())
        return w.primitiveClass();
    std::uint64_t lat = 0;
    mem::XlateResult r =
        atlb_->translate(*segments_, w.asPointer(), 0, false, &lat);
    if (lat)
        pipeline_.stallAtlbMiss(lat);
    if (!r.ok())
        return kPtrCls; // dangling capability: raw pointer class
    return r.cls;
}

GuestFault
Machine::readOperand(const Operand &o, OperandVal &out)
{
    switch (o.mode) {
      case Mode::Const:
        out.w = constants_->at(o.index);
        break;
      case Mode::CtxCur:
        out.w = ctxCache_->read(cache::CtxVia::Current, o.index);
        countDataRef(true);
        break;
      case Mode::CtxNext:
        out.w = ctxCache_->read(cache::CtxVia::Next, o.index);
        countDataRef(true);
        break;
    }
    out.cls = classOfWord(out.w);
    out.valid = true;
    return GuestFault::None;
}

void
Machine::writeOperand(const Operand &o, mem::Word w)
{
    switch (o.mode) {
      case Mode::Const:
        sim::panic("write to a constant-mode operand");
      case Mode::CtxCur:
        ctxCache_->write(cache::CtxVia::Current, o.index, w);
        countDataRef(true);
        return;
      case Mode::CtxNext:
        ctxCache_->write(cache::CtxVia::Next, o.index, w);
        countDataRef(true);
        return;
    }
}

GuestFault
Machine::effectiveAddress(const Operand &o, mem::Word &out)
{
    std::uint64_t base = 0;
    switch (o.mode) {
      case Mode::Const:
        faultDetail_ = "effective address of a constant";
        return GuestFault::BadPointer;
      case Mode::CtxCur:
        base = cp_;
        break;
      case Mode::CtxNext:
        base = ncp_;
        break;
    }
    out = Word::fromPointer(static_cast<std::uint32_t>(
        FpAddress::addOffset(cfg_.addrFormat, base, o.index)));
    return GuestFault::None;
}

void
Machine::countDataRef(bool is_context)
{
    if (is_context)
        ++ctxRefs_;
    else
        ++heapRefs_;
}

GuestFault
Machine::step()
{
    controlTransferred_ = false;

    Instr instr;
    GuestFault f = fetch(instr);
    if (f != GuestFault::None)
        return f;

    pipeline_.issue(recordMnemonics_
                        ? (instr.extended ? "send" : opName(instr.op))
                        : nullptr);

    OperandVal a, b, c;

    if (instr.extended) {
        // Operands were staged in the next context by the program.
        if (instr.implicitCount >= 1) {
            b.w = ctxCache_->read(cache::CtxVia::Next, obj::kCtxReceiver);
            countDataRef(true);
            b.cls = classOfWord(b.w);
            b.valid = true;
        }
        if (instr.implicitCount >= 2) {
            c.w = ctxCache_->read(cache::CtxVia::Next, obj::kCtxFirstArg);
            countDataRef(true);
            c.cls = classOfWord(c.w);
            c.valid = true;
        }
        if (traceSink_)
            traceSink_(TraceRecord{
                static_cast<std::uint32_t>(ip_),
                extendedOpKey(instr.extSelector), b.cls});
        sim::panicIf(instr.ret,
                     "return bit on an extended send is not supported");
        f = dispatch(instr, a, b, c);
        if (f != GuestFault::None)
            return f;
        if (!controlTransferred_) {
            ip_ = FpAddress::addOffset(cfg_.addrFormat, ip_, 1);
            ++ipAbs_;
        }
        return GuestFault::None;
    }

    // Step 2: read operands and their tags. The destination operand A
    // is only read when the opcode consumes it as a source.
    const OpTraits &traits = opTraits(instr.op);
    if (traits.readsA)
        readOperand(instr.a, a);
    if (traits.readsSources) {
        readOperand(instr.b, b);
        readOperand(instr.c, c);
    }

    if (traceSink_) {
        const DispatchSpec &spec = traits.spec;
        ClassId dispatch_cls = spec.useB ? b.cls
                             : spec.useA ? a.cls
                                         : 0;
        traceSink_(TraceRecord{static_cast<std::uint32_t>(ip_),
                               static_cast<std::uint32_t>(instr.op),
                               dispatch_cls});
    }

    f = dispatch(instr, a, b, c);
    if (f != GuestFault::None)
        return f;

    if (instr.ret && !finished_) {
        bool fin = false;
        f = performReturn(fin);
        if (f != GuestFault::None)
            return f;
        finished_ = fin;
        if (finished_)
            return GuestFault::None;
    }

    if (!controlTransferred_) {
        ip_ = FpAddress::addOffset(cfg_.addrFormat, ip_, 1);
        ++ipAbs_;
    }
    return GuestFault::None;
}

GuestFault
Machine::dispatch(const Instr &instr, const OperandVal &a,
                  const OperandVal &b, const OperandVal &c)
{
    // Non-message opcodes bypass the ITLB.
    if (!instr.extended) {
        if (instr.op == Op::Nop)
            return GuestFault::None;
        if (instr.op == Op::Halt) {
            faultDetail_ = "halt instruction";
            return GuestFault::Halted;
        }
        if (instr.op == Op::Movea) {
            Word ea;
            GuestFault f = effectiveAddress(instr.b, ea);
            if (f != GuestFault::None)
                return f;
            writeOperand(instr.a, ea);
            return GuestFault::None;
        }
    }

    // Step 3: build the ITLB key from the opcode and operand classes.
    cache::ItlbKey key;
    ClassId receiver_cls;
    obj::SelectorId sel;
    buildDispatchKey(instr, a, b, c, key, receiver_cls, sel);

    const cache::MethodEntry *hit = itlb_->lookup(key);
    cache::MethodEntry filled;
    if (!hit) {
        GuestFault miss = GuestFault::None;
        hit = resolveItlbMiss(key, instr, receiver_cls, sel, filled,
                              miss);
        if (!hit)
            return miss;
    }
    return executeResolved(instr, a, b, c, *hit);
}

void
Machine::buildDispatchKey(const Instr &instr, const OperandVal &a,
                          const OperandVal &b, const OperandVal &c,
                          cache::ItlbKey &key,
                          mem::ClassId &receiver_cls,
                          obj::SelectorId &sel) const
{
    if (instr.extended) {
        key.opcode = extendedOpKey(instr.extSelector);
        key.classB = instr.implicitCount >= 1 ? b.cls : 0;
        key.classC = instr.implicitCount >= 2 ? c.cls : 0;
        receiver_cls = key.classB;
        sel = instr.extSelector;
    } else {
        const DispatchSpec &spec = opTraits(instr.op).spec;
        key.opcode = static_cast<std::uint32_t>(instr.op);
        key.classA = spec.useA ? a.cls : 0;
        key.classB = spec.useB ? b.cls : 0;
        key.classC = spec.useC ? c.cls : 0;
        receiver_cls = spec.useB ? b.cls : key.classA;
        sel = selectorOfOp_[static_cast<std::uint8_t>(instr.op)];
    }
}

const cache::MethodEntry *
Machine::resolveItlbMiss(const cache::ItlbKey &key, const Instr &instr,
                         mem::ClassId receiver_cls, obj::SelectorId sel,
                         cache::MethodEntry &filled, GuestFault &fault)
{
    // ITLB miss: pull the instruction descriptor in via the
    // standard method lookup (the step that always occurs in a
    // Smalltalk execution).
    pipeline_.stallItlbMiss(itlb_->missPenalty());
    bool resolved = false;
    // The message dictionary is consulted first so a class may
    // override a primitive token ("smooth extensibility": the
    // same opcode may reference microcode, a user procedure or a
    // system routine — Section 2.1).
    if (sel != obj::SelectorTable::kNotFound) {
        obj::MethodRegistry::LookupResult lr =
            methods_->lookup(receiver_cls, sel);
        if (lr.entry) {
            filled = *lr.entry;
            resolved = true;
        }
    }
    if (!resolved && !instr.extended && isPrimitiveToken(instr.op) &&
        primitiveApplicable(instr.op, key.classA, key.classB,
                            key.classC)) {
        filled.primitive = true;
        filled.functionUnit = static_cast<std::uint32_t>(instr.op);
        filled.argWords = 0;
        resolved = true;
    }
    if (!resolved) {
        faultDetail_ = sim::format(
            "selector '%s' not understood by class %u",
            sel != obj::SelectorTable::kNotFound
                ? selectors_.name(sel).c_str()
                : (instr.extended ? "?" : opName(instr.op)),
            static_cast<unsigned>(receiver_cls));
        fault = GuestFault::DoesNotUnderstand;
        return nullptr;
    }
    itlb_->fill(key, filled);
    return &filled;
}

GuestFault
Machine::executeResolved(const Instr &instr, const OperandVal &a,
                         const OperandVal &b, const OperandVal &c,
                         const cache::MethodEntry &entry)
{
    // Step 4: primitive methods set up hardware data paths; host
    // routines run as firmware; defined methods trigger the call
    // sequence of Section 3.6.
    if (entry.primitive) {
        if (entry.functionUnit >= kHostBase) {
            std::uint32_t idx = entry.functionUnit - kHostBase;
            sim::panicIf(idx >= hostRoutines_.size(),
                         "bad host routine index");
            Word result;
            bool has_result = false;
            GuestFault f = hostRoutines_[idx](*this, b.w, c.w, result,
                                              has_result);
            if (f != GuestFault::None)
                return f;
            if (has_result) {
                if (instr.extended) {
                    Word dest = ctxCache_->read(cache::CtxVia::Next,
                                                obj::kCtxArg0);
                    countDataRef(true);
                    return writeThroughPointer(dest, result);
                }
                writeOperand(instr.a, result);
            }
            return GuestFault::None;
        }
        Op fu = static_cast<Op>(entry.functionUnit);
        if (isValuePrimitive(fu)) {
            ValueResult vr = evalValuePrimitive(fu, b.w, c.w,
                                                *constants_);
            if (vr.fault != GuestFault::None)
                return vr.fault;
            writeOperand(instr.a, vr.value);
            return GuestFault::None;
        }
        // Machine primitives with state effects.
        switch (fu) {
          case Op::At:
          case Op::AtPut: {
            OperandVal av = a;
            if (fu == Op::At) {
                // At writes A; AtPut reads it (already read).
            }
            return dataAccess(instr, av, b, c);
          }
          case Op::PutRes:
            return writeThroughPointer(a.w, b.w);
          case Op::As: {
            if (!c.w.isInt()) {
                faultDetail_ = "as: tag operand must be an integer";
                return GuestFault::BadPointer;
            }
            std::int32_t t = c.w.asInt();
            if (t < 0 || t >= static_cast<std::int32_t>(mem::kNumTags)) {
                faultDetail_ = "as: tag out of range";
                return GuestFault::BadPointer;
            }
            Tag tag = static_cast<Tag>(t);
            if (tag == Tag::ObjectPtr && (ps_ & 1) == 0) {
                // Conditionally privileged: no forging capabilities.
                faultDetail_ = "as: forging a pointer without privilege";
                return GuestFault::PrivilegedAs;
            }
            writeOperand(instr.a, Word(b.w.bits(), tag));
            return GuestFault::None;
          }
          case Op::Fjmp:
          case Op::Rjmp:
          case Op::FjmpF:
          case Op::RjmpF: {
            bool truthy;
            if (a.w.isAtom()) {
                truthy = a.w.asAtom() == constants_->trueAtom();
            } else if (a.w.isInt()) {
                truthy = a.w.asInt() != 0;
            } else {
                faultDetail_ = "jump condition has no truth value";
                return GuestFault::BadJump;
            }
            bool want_true = fu == Op::Fjmp || fu == Op::Rjmp;
            bool taken = truthy == want_true;
            if (!taken)
                return GuestFault::None;
            if (!c.w.isInt()) {
                faultDetail_ = "jump offset must be an integer";
                return GuestFault::BadJump;
            }
            std::int64_t off = c.w.asInt();
            bool forward = fu == Op::Fjmp || fu == Op::FjmpF;
            std::uint64_t target = FpAddress::addOffset(
                cfg_.addrFormat, ip_, forward ? 1 + off : 1 - off);
            pipeline_.chargeBranchDelay();
            return setIp(target);
          }
          case Op::Xfer:
            return performXfer(a);
          default:
            sim::panic("unhandled machine primitive ", opName(fu));
        }
    }

    // Defined method: run the call sequence, copying the instruction's
    // operands into the new context ("the processor expands the
    // operands into words and copies them to the new context").
    unsigned words = instr.extended ? 0 : entry.argWords;
    return performCall(entry.methodVaddr, words, instr, a, b, c);
}

GuestFault
Machine::performCall(std::uint64_t method_vaddr, unsigned operand_words,
                     const Instr &instr, const OperandVal &a,
                     const OperandVal &b, const OperandVal &c)
{
    (void)a;
    // Store the continuation into the current context.
    ctxCache_->write(cache::CtxVia::Current, obj::kCtxRip,
                     Word::fromPointer(static_cast<std::uint32_t>(
                         FpAddress::addOffset(cfg_.addrFormat, ip_, 1))));
    countDataRef(true);

    if (operand_words >= 1) {
        Word ea;
        GuestFault f = effectiveAddress(instr.a, ea);
        if (f != GuestFault::None)
            return f;
        ctxCache_->write(cache::CtxVia::Next, obj::kCtxArg0, ea);
        countDataRef(true);
    }
    if (operand_words >= 2) {
        ctxCache_->write(cache::CtxVia::Next, obj::kCtxReceiver, b.w);
        countDataRef(true);
    }
    if (operand_words >= 3) {
        ctxCache_->write(cache::CtxVia::Next, obj::kCtxFirstArg, c.w);
        countDataRef(true);
    }

    // CP <- NCP; the CP was already stored as RCP when the next
    // context was created.
    ctxCache_->callAdvance();
    cp_ = ncp_;

    GuestFault f = allocNextContext();
    if (f != GuestFault::None)
        return f;

    f = setIp(method_vaddr);
    if (f != GuestFault::None)
        return f;
    pipeline_.chargeCall(operand_words);
    return GuestFault::None;
}

GuestFault
Machine::performReturn(bool &finished)
{
    Word rcp = ctxCache_->read(cache::CtxVia::Current, obj::kCtxRcp);
    countDataRef(true);
    if (!rcp.isPointer() || rcp.asPointer() == obj::kNullCtxPtr) {
        finished = true;
        return GuestFault::None;
    }
    std::uint64_t caller = rcp.asPointer();
    if (!contexts_->isAllocated(caller)) {
        faultDetail_ = "return into a freed context";
        return GuestFault::BadPointer;
    }

    // The dangling next context (allocated for the returning method)
    // is recycled through the free list unless it escaped.
    if (ncp_ && !escaped_.count(ncp_)) {
        ctxCache_->discard(contexts_->absOf(ncp_));
        contexts_->free(ncp_, /*lifo=*/true);
    }

    // The current vector moves back to the next vector; the directory
    // association sets the current vector to the caller.
    std::uint64_t old_cur = cp_;
    std::uint64_t stall =
        ctxCache_->returnRestore(contexts_->absOf(caller));
    if (stall)
        pipeline_.stallContextCache(stall);
    ncp_ = old_cur;
    cp_ = caller;

    Word rip = ctxCache_->read(cache::CtxVia::Current, obj::kCtxRip);
    countDataRef(true);
    if (!rip.isPointer()) {
        // Returned into the boot context: the run is complete.
        finished = true;
        pipeline_.chargeReturn();
        return GuestFault::None;
    }
    GuestFault f = setIp(rip.asPointer());
    if (f != GuestFault::None)
        return f;
    pipeline_.chargeReturn();
    finished = false;
    return GuestFault::None;
}

GuestFault
Machine::performXfer(const OperandVal &target)
{
    if (!target.w.isPointer() ||
        !contexts_->isAllocated(target.w.asPointer())) {
        faultDetail_ = "xfer target is not a live context";
        return GuestFault::BadPointer;
    }
    std::uint64_t tvaddr = target.w.asPointer();

    // Save this process's continuation and detach from stack
    // discipline: both contexts become non-LIFO.
    ctxCache_->write(cache::CtxVia::Current, obj::kCtxRip,
                     Word::fromPointer(static_cast<std::uint32_t>(
                         FpAddress::addOffset(cfg_.addrFormat, ip_, 1))));
    countDataRef(true);
    markEscaped(cp_);
    markEscaped(tvaddr);

    // The scratch next context is recycled.
    if (ncp_ && !escaped_.count(ncp_)) {
        ctxCache_->discard(contexts_->absOf(ncp_));
        contexts_->free(ncp_, /*lifo=*/true);
    }

    std::uint64_t stall =
        ctxCache_->switchTo(contexts_->absOf(tvaddr), 0);
    if (stall)
        pipeline_.stallContextCache(stall);
    cp_ = tvaddr;

    GuestFault f = allocNextContext();
    if (f != GuestFault::None)
        return f;

    Word rip = ctxCache_->read(cache::CtxVia::Current, obj::kCtxRip);
    countDataRef(true);
    if (!rip.isPointer()) {
        faultDetail_ = "xfer target has no continuation";
        return GuestFault::BadJump;
    }
    f = setIp(rip.asPointer());
    if (f != GuestFault::None)
        return f;
    pipeline_.chargeCall(0);
    return GuestFault::None;
}

GuestFault
Machine::dataAccess(const Instr &instr, OperandVal &a,
                    const OperandVal &b, const OperandVal &c)
{
    bool is_put = instr.op == Op::AtPut;
    std::int32_t idx = c.w.asInt();
    if (idx < 0) {
        faultDetail_ = "negative index";
        return GuestFault::Bounds;
    }

    std::uint64_t base = b.w.asPointer();
    mem::XlateResult r;
    for (int attempt = 0;; ++attempt) {
        std::uint64_t lat = 0;
        r = atlb_->translate(*segments_, base,
                             static_cast<std::uint64_t>(idx), is_put,
                             &lat);
        if (lat)
            pipeline_.stallAtlbMiss(lat);
        if (r.status != XlateStatus::GrowthTrap)
            break;
        // Growth trap: the handler replaces the old segment number
        // with the new one (Section 2.2) and retries.
        pipeline_.chargeTrap(cfg_.growthTrapCost);
        base = FpAddress::addOffset(cfg_.addrFormat, r.newVaddr, -idx);
        if (instr.b.mode != Mode::Const)
            writeOperand(instr.b, Word::fromPointer(
                static_cast<std::uint32_t>(base)));
        sim::panicIf(attempt > 2, "growth trap did not converge");
    }
    return dataAccessResolved(instr, a, r, is_put);
}

GuestFault
Machine::dataAccessResolved(const Instr &instr, OperandVal &a,
                            const mem::XlateResult &r, bool is_put)
{
    switch (r.status) {
      case XlateStatus::Ok:
        break;
      case XlateStatus::Bounds:
        faultDetail_ = "index beyond object length";
        return GuestFault::Bounds;
      case XlateStatus::NoSegment:
        faultDetail_ = "unmapped object pointer";
        return GuestFault::NoSegment;
      case XlateStatus::ProtFault:
        faultDetail_ = "write through read-only capability";
        return GuestFault::Protection;
      default:
        sim::panic("unexpected translation status");
    }

    if (contexts_->containsAbs(r.abs)) {
        // Context words are served by the (dual-ported) context cache.
        AbsAddr block = r.abs - (r.abs % obj::kContextWords);
        std::size_t off = static_cast<std::size_t>(
            r.abs % obj::kContextWords);
        std::uint64_t stall = 0;
        if (is_put) {
            ctxCache_->writeAbs(block, off, a.w, &stall);
            if (a.w.isPointer() &&
                contexts_->isAllocated(a.w.asPointer()))
                markEscaped(a.w.asPointer());
        } else {
            Word v = ctxCache_->readAbs(block, off, &stall);
            writeOperand(instr.a, v);
        }
        if (stall)
            pipeline_.stallContextCache(stall);
        countDataRef(true);
        return GuestFault::None;
    }

    // Step through the absolute -> physical hierarchy.
    mem::AccessResult ar = hierarchy_->access(r.abs, is_put);
    pipeline_.stallMemory(ar.latency);
    countDataRef(false);
    if (is_put) {
        memory_.write(r.abs, a.w);
        codeBus_.store(r.abs); // self-modifying code stays exact
        if (a.w.isPointer() && contexts_->isAllocated(a.w.asPointer()))
            markEscaped(a.w.asPointer());
    } else {
        Word v = memory_.read(r.abs);
        writeOperand(instr.a, v);
    }
    return GuestFault::None;
}

GuestFault
Machine::indexedLoad(mem::Word base, std::int32_t index, mem::Word &out)
{
    if (!base.isPointer()) {
        faultDetail_ = "at: on a non-pointer";
        return GuestFault::BadPointer;
    }
    if (index < 0) {
        faultDetail_ = "negative index";
        return GuestFault::Bounds;
    }
    std::uint64_t b = base.asPointer();
    mem::XlateResult r;
    for (int attempt = 0;; ++attempt) {
        std::uint64_t lat = 0;
        r = atlb_->translate(*segments_, b,
                             static_cast<std::uint64_t>(index), false,
                             &lat);
        if (lat)
            pipeline_.stallAtlbMiss(lat);
        if (r.status != XlateStatus::GrowthTrap)
            break;
        pipeline_.chargeTrap(cfg_.growthTrapCost);
        b = FpAddress::addOffset(cfg_.addrFormat, r.newVaddr, -index);
        sim::panicIf(attempt > 2, "growth trap did not converge");
    }
    if (r.status == XlateStatus::Bounds) {
        faultDetail_ = "index beyond object length";
        return GuestFault::Bounds;
    }
    if (!r.ok()) {
        faultDetail_ = "unmapped object pointer";
        return GuestFault::NoSegment;
    }
    if (contexts_->containsAbs(r.abs)) {
        AbsAddr block = r.abs - (r.abs % obj::kContextWords);
        std::uint64_t stall = 0;
        out = ctxCache_->readAbs(block,
                                 static_cast<std::size_t>(
                                     r.abs % obj::kContextWords),
                                 &stall);
        if (stall)
            pipeline_.stallContextCache(stall);
        countDataRef(true);
        return GuestFault::None;
    }
    mem::AccessResult ar = hierarchy_->access(r.abs, false);
    pipeline_.stallMemory(ar.latency);
    countDataRef(false);
    out = memory_.read(r.abs);
    return GuestFault::None;
}

GuestFault
Machine::indexedStore(mem::Word base, std::int32_t index,
                      mem::Word value)
{
    if (!base.isPointer()) {
        faultDetail_ = "at:put: on a non-pointer";
        return GuestFault::BadPointer;
    }
    if (index < 0) {
        faultDetail_ = "negative index";
        return GuestFault::Bounds;
    }
    std::uint64_t b = base.asPointer();
    mem::XlateResult r;
    for (int attempt = 0;; ++attempt) {
        std::uint64_t lat = 0;
        r = atlb_->translate(*segments_, b,
                             static_cast<std::uint64_t>(index), true,
                             &lat);
        if (lat)
            pipeline_.stallAtlbMiss(lat);
        if (r.status != XlateStatus::GrowthTrap)
            break;
        pipeline_.chargeTrap(cfg_.growthTrapCost);
        b = FpAddress::addOffset(cfg_.addrFormat, r.newVaddr, -index);
        sim::panicIf(attempt > 2, "growth trap did not converge");
    }
    if (r.status == XlateStatus::Bounds) {
        faultDetail_ = "index beyond object length";
        return GuestFault::Bounds;
    }
    if (r.status == XlateStatus::ProtFault) {
        faultDetail_ = "write through read-only capability";
        return GuestFault::Protection;
    }
    if (!r.ok()) {
        faultDetail_ = "unmapped object pointer";
        return GuestFault::NoSegment;
    }
    if (contexts_->containsAbs(r.abs)) {
        AbsAddr block = r.abs - (r.abs % obj::kContextWords);
        std::uint64_t stall = 0;
        ctxCache_->writeAbs(block,
                            static_cast<std::size_t>(
                                r.abs % obj::kContextWords),
                            value, &stall);
        if (stall)
            pipeline_.stallContextCache(stall);
        countDataRef(true);
    } else {
        mem::AccessResult ar = hierarchy_->access(r.abs, true);
        pipeline_.stallMemory(ar.latency);
        memory_.write(r.abs, value);
        codeBus_.store(r.abs); // self-modifying code stays exact
        countDataRef(false);
    }
    if (value.isPointer() && contexts_->isAllocated(value.asPointer()))
        markEscaped(value.asPointer());
    return GuestFault::None;
}

mem::Word
Machine::hostExtraArg(unsigned i)
{
    mem::Word w = ctxCache_->read(cache::CtxVia::Next,
                                  obj::kCtxFirstArg + i);
    countDataRef(true);
    return w;
}

GuestFault
Machine::allocNextContext()
{
    if (contexts_->liveCount() >= contexts_->capacity()) {
        collectGarbage();
        if (contexts_->liveCount() >= contexts_->capacity()) {
            faultDetail_ = "context pool exhausted";
            return GuestFault::ContextOverflow;
        }
    }
    obj::ContextPool::Ctx ctx = contexts_->allocate();
    escaped_.erase(ctx.vaddr);
    std::uint64_t stall = ctxCache_->allocateNext(ctx.abs);
    if (stall)
        pipeline_.stallContextCache(stall);
    ctxCache_->write(cache::CtxVia::Next, obj::kCtxRcp,
                     Word::fromPointer(
                         static_cast<std::uint32_t>(cp_)));
    countDataRef(true);
    ncp_ = ctx.vaddr;
    return GuestFault::None;
}

GuestFault
Machine::setIp(std::uint64_t vaddr)
{
    std::uint64_t lat = 0;
    mem::XlateResult r =
        atlb_->translate(*segments_, vaddr, 0, false, &lat);
    if (lat)
        pipeline_.stallAtlbMiss(lat);
    if (!r.ok()) {
        faultDetail_ = "control transfer to unmapped address";
        return GuestFault::BadJump;
    }
    const mem::SegmentDescriptor *d = segments_->findDescriptor(
        FpAddress::segKey(cfg_.addrFormat, vaddr));
    sim::panicIf(!d, "descriptor vanished during setIp");
    ip_ = vaddr;
    ipAbs_ = r.abs;
    ipLimitAbs_ = d->base + d->length;
    controlTransferred_ = true;
    return GuestFault::None;
}

void
Machine::markEscaped(std::uint64_t ctx_vaddr)
{
    if (contexts_->isAllocated(ctx_vaddr))
        escaped_.insert(ctx_vaddr);
}

std::vector<mem::AbsAddr>
Machine::rcpChain(std::size_t max_depth)
{
    std::vector<mem::AbsAddr> chain;
    std::uint64_t v = cp_;
    for (std::size_t i = 0; i < max_depth && v &&
                            v != obj::kNullCtxPtr; ++i) {
        if (!contexts_->isAllocated(v))
            break;
        AbsAddr abs = contexts_->absOf(v);
        chain.push_back(abs);
        Word rcp = memory_.peek(abs + obj::kCtxRcp);
        if (!rcp.isPointer())
            break;
        v = rcp.asPointer();
    }
    return chain;
}

// ----------------------------------------------------------------------
// Helpers
// ----------------------------------------------------------------------

GuestFault
Machine::writeThroughPointer(mem::Word pointer, mem::Word value)
{
    if (!pointer.isPointer()) {
        faultDetail_ = "store through a non-pointer";
        return GuestFault::BadPointer;
    }
    std::uint64_t lat = 0;
    mem::XlateResult r = atlb_->translate(
        *segments_, pointer.asPointer(), 0, true, &lat);
    if (lat)
        pipeline_.stallAtlbMiss(lat);
    if (r.status == XlateStatus::ProtFault) {
        faultDetail_ = "store through read-only capability";
        return GuestFault::Protection;
    }
    if (!r.ok()) {
        faultDetail_ = "store through dangling pointer";
        return GuestFault::BadPointer;
    }
    if (contexts_->containsAbs(r.abs)) {
        AbsAddr block = r.abs - (r.abs % obj::kContextWords);
        std::size_t off =
            static_cast<std::size_t>(r.abs % obj::kContextWords);
        std::uint64_t stall = 0;
        ctxCache_->writeAbs(block, off, value, &stall);
        if (stall)
            pipeline_.stallContextCache(stall);
        countDataRef(true);
    } else {
        mem::AccessResult ar = hierarchy_->access(r.abs, true);
        pipeline_.stallMemory(ar.latency);
        memory_.write(r.abs, value);
        codeBus_.store(r.abs); // self-modifying code stays exact
        countDataRef(false);
    }
    if (value.isPointer() && contexts_->isAllocated(value.asPointer()))
        markEscaped(value.asPointer());
    return GuestFault::None;
}

mem::Word
Machine::peekData(std::uint64_t vaddr, std::uint64_t index)
{
    mem::XlateResult r = segments_->translate(vaddr, index, false);
    sim::panicIf(!r.ok(), "peekData fault");
    if (contexts_->containsAbs(r.abs) &&
        ctxCache_->isResident(r.abs - (r.abs % obj::kContextWords))) {
        std::uint64_t stall = 0;
        return ctxCache_->readAbs(r.abs - (r.abs % obj::kContextWords),
                                  static_cast<std::size_t>(
                                      r.abs % obj::kContextWords),
                                  &stall);
    }
    return memory_.peek(r.abs);
}

void
Machine::fillWithNil(std::uint64_t vaddr)
{
    std::uint64_t len = heap_->lengthOf(vaddr);
    mem::XlateResult r = segments_->translate(vaddr, 0, true);
    sim::panicIf(!r.ok(), "fillWithNil translation failed");
    Word nil = constants_->nilWord();
    for (std::uint64_t i = 0; i < len; ++i)
        memory_.poke(r.abs + i, nil);
}

std::uint64_t
Machine::makeString(const std::string &s)
{
    std::uint64_t words = s.empty() ? 1 : s.size();
    std::uint64_t vaddr =
        heap_->allocateRaw(classes_.stringClass(), words);
    mem::XlateResult r = segments_->translate(vaddr, 0, true);
    sim::panicIf(!r.ok(), "string translation failed");
    for (std::size_t i = 0; i < s.size(); ++i)
        memory_.poke(r.abs + i,
                     Word::fromInt(static_cast<unsigned char>(s[i])));
    return vaddr;
}

std::string
Machine::readString(std::uint64_t vaddr)
{
    std::uint64_t len = heap_->lengthOf(vaddr);
    std::string out;
    for (std::uint64_t i = 0; i < len; ++i) {
        Word w = peekData(vaddr, i);
        if (!w.isInt())
            break;
        out.push_back(static_cast<char>(w.asInt()));
    }
    return out;
}

std::string
Machine::describeWord(mem::Word w)
{
    switch (w.tag()) {
      case Tag::Uninit:
        return "uninit";
      case Tag::SmallInt:
        return sim::format("%d", w.asInt());
      case Tag::Float:
        return sim::format("%g", static_cast<double>(w.asFloat()));
      case Tag::Atom: {
        std::uint32_t id = w.asAtom();
        if (id < selectors_.size())
            return selectors_.name(id);
        return sim::format("#atom%u", id);
      }
      case Tag::Instruction:
        return "<instruction>";
      case Tag::ObjectPtr: {
        std::uint64_t key =
            FpAddress::segKey(cfg_.addrFormat, w.asPointer());
        const mem::SegmentDescriptor *d = segments_->findDescriptor(key);
        if (!d)
            return "<dangling>";
        if (d->cls == classes_.stringClass())
            return "'" + readString(w.asPointer()) + "'";
        return sim::format("a %s",
                           classes_.info(d->cls).name.c_str());
      }
    }
    return "?";
}

// ----------------------------------------------------------------------
// Standard library (system defined routines)
// ----------------------------------------------------------------------

void
Machine::installStandardLibrary()
{
    // Atom receivers act as class literals: 'Point new'.
    installHostRoutine(
        kAtomCls, "new",
        [](Machine &m, Word recv, Word, Word &result, bool &has) {
            std::uint32_t atom = recv.asAtom();
            mem::ClassId cls = m.classes().tryByName(
                m.selectors().name(atom));
            if (cls == obj::kNoClass) {
                m.setFaultDetail("new sent to unknown class atom");
                return GuestFault::DoesNotUnderstand;
            }
            std::uint64_t v = m.heap().allocateInstance(cls, 0);
            m.fillWithNil(v);
            result = Word::fromPointer(
                static_cast<std::uint32_t>(v));
            has = true;
            return GuestFault::None;
        });

    installHostRoutine(
        kAtomCls, "new:",
        [](Machine &m, Word recv, Word arg, Word &result, bool &has) {
            std::uint32_t atom = recv.asAtom();
            mem::ClassId cls = m.classes().tryByName(
                m.selectors().name(atom));
            if (cls == obj::kNoClass || !arg.isInt() ||
                arg.asInt() < 0) {
                m.setFaultDetail("new: bad class atom or size");
                return GuestFault::DoesNotUnderstand;
            }
            std::uint64_t v = m.heap().allocateInstance(
                cls, static_cast<std::uint64_t>(arg.asInt()));
            m.fillWithNil(v);
            result = Word::fromPointer(
                static_cast<std::uint32_t>(v));
            has = true;
            return GuestFault::None;
        });

    // The default at:/at:put: message protocol on every object: raw
    // indexed access, overridable by any class (the Dict workload
    // does). These are the "system defined routines" the extensibility
    // story of Section 2.1 describes.
    installHostRoutine(
        classes_.objectClass(), "at:",
        [](Machine &m, Word recv, Word arg, Word &result, bool &has) {
            if (!arg.isInt()) {
                m.setFaultDetail("at: index must be an integer");
                return GuestFault::Bounds;
            }
            GuestFault f = m.indexedLoad(recv, arg.asInt(), result);
            has = f == GuestFault::None;
            return f;
        });

    installHostRoutine(
        classes_.objectClass(), "at:put:",
        [](Machine &m, Word recv, Word arg, Word &result, bool &has) {
            if (!arg.isInt()) {
                m.setFaultDetail("at:put: index must be an integer");
                return GuestFault::Bounds;
            }
            Word v = m.hostExtraArg(1);
            GuestFault f = m.indexedStore(recv, arg.asInt(), v);
            result = v;
            has = f == GuestFault::None;
            return f;
        });

    // size: length of any object (inherited by all user classes).
    installHostRoutine(
        classes_.objectClass(), "size",
        [](Machine &m, Word recv, Word, Word &result, bool &has) {
            if (!recv.isPointer())
                return GuestFault::BadPointer;
            result = Word::fromInt(static_cast<std::int32_t>(
                m.heap().lengthOf(recv.asPointer())));
            has = true;
            return GuestFault::None;
        });

    // grow: — grow an indexed object, returning the (possibly new)
    // name. Exercises the floating point aliasing machinery.
    installHostRoutine(
        classes_.objectClass(), "grow:",
        [](Machine &m, Word recv, Word arg, Word &result, bool &has) {
            if (!recv.isPointer() || !arg.isInt() || arg.asInt() <= 0)
                return GuestFault::BadPointer;
            std::uint64_t nv = m.segments().growObject(
                recv.asPointer(),
                static_cast<std::uint64_t>(arg.asInt()), m.memory());
            result = Word::fromPointer(
                static_cast<std::uint32_t>(nv));
            has = true;
            return GuestFault::None;
        });

    // print for every primitive class plus objects.
    auto print_fn = [](Machine &m, Word recv, Word, Word &result,
                       bool &has) {
        m.appendOutput(m.describeWord(recv) + "\n");
        result = recv;
        has = true;
        return GuestFault::None;
    };
    installHostRoutine(kIntCls, "print", print_fn);
    installHostRoutine(static_cast<ClassId>(Tag::Float), "print",
                       print_fn);
    installHostRoutine(kAtomCls, "print", print_fn);
    installHostRoutine(classes_.objectClass(), "print", print_fn);

    // collect — force a garbage collection from guest code.
    installHostRoutine(
        kAtomCls, "collect",
        [](Machine &m, Word, Word, Word &result, bool &has) {
            auto r = m.collectGarbage();
            result = Word::fromInt(static_cast<std::int32_t>(
                r.sweptObjects + r.sweptContexts));
            has = true;
            return GuestFault::None;
        });
}

} // namespace com::core
