#include "core/isa.hpp"

namespace com::core {

namespace {

/** Encode one operand descriptor to 8 bits. */
std::uint8_t
encodeOperand(const Operand &o)
{
    switch (o.mode) {
      case Mode::CtxCur:
        return o.index & 0x3f;
      case Mode::CtxNext:
        return 0x40 | (o.index & 0x3f);
      case Mode::Const:
        return 0x80 | (o.index & 0x7f);
    }
    sim::panic("bad operand mode");
}

/** Decode one 8-bit operand descriptor. */
Operand
decodeOperand(std::uint8_t bits)
{
    Operand o;
    if (bits & 0x80) {
        o.mode = Mode::Const;
        o.index = bits & 0x7f;
    } else {
        o.mode = (bits & 0x40) ? Mode::CtxNext : Mode::CtxCur;
        o.index = bits & 0x3f;
    }
    return o;
}

} // namespace

std::uint32_t
Instr::encode() const
{
    std::uint32_t w = 0;
    if (ret)
        w |= 0x80000000u;
    if (extended) {
        w |= static_cast<std::uint32_t>(Op::kExtendedOp) << 24;
        sim::panicIf(implicitCount > 2,
                     "extended implicit count must be 0..2");
        sim::panicIf(extSelector >= (1u << 22),
                     "extended selector token overflows 22 bits");
        w |= static_cast<std::uint32_t>(implicitCount) << 22;
        w |= extSelector;
        return w;
    }
    sim::panicIf(static_cast<unsigned>(op) >= 127,
                 "opcode token out of range");
    w |= static_cast<std::uint32_t>(op) << 24;
    w |= static_cast<std::uint32_t>(encodeOperand(a)) << 16;
    w |= static_cast<std::uint32_t>(encodeOperand(b)) << 8;
    w |= static_cast<std::uint32_t>(encodeOperand(c));
    return w;
}

Instr
Instr::decode(std::uint32_t word)
{
    Instr i;
    i.ret = (word & 0x80000000u) != 0;
    std::uint8_t tok = (word >> 24) & 0x7f;
    if (tok == static_cast<std::uint8_t>(Op::kExtendedOp)) {
        i.extended = true;
        i.implicitCount = (word >> 22) & 0x3;
        i.extSelector = word & 0x3fffff;
        return i;
    }
    i.op = static_cast<Op>(tok);
    i.a = decodeOperand((word >> 16) & 0xff);
    i.b = decodeOperand((word >> 8) & 0xff);
    i.c = decodeOperand(word & 0xff);
    return i;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Div: return "div";
      case Op::Mod: return "mod";
      case Op::Neg: return "neg";
      case Op::Carry: return "carry";
      case Op::Mult1: return "mult1";
      case Op::Mult2: return "mult2";
      case Op::Shift: return "shift";
      case Op::AShift: return "ashift";
      case Op::Rotate: return "rotate";
      case Op::Mask: return "mask";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Not: return "not";
      case Op::Xor: return "xor";
      case Op::Lt: return "lt";
      case Op::Le: return "le";
      case Op::Eq: return "eq";
      case Op::Ne: return "ne";
      case Op::Same: return "same";
      case Op::Move: return "move";
      case Op::Movea: return "movea";
      case Op::At: return "at";
      case Op::AtPut: return "atput";
      case Op::PutRes: return "putres";
      case Op::As: return "as";
      case Op::Tag: return "tag";
      case Op::Fjmp: return "fjmp";
      case Op::Rjmp: return "rjmp";
      case Op::FjmpF: return "fjmpf";
      case Op::RjmpF: return "rjmpf";
      case Op::Xfer: return "xfer";
      case Op::Halt: return "halt";
      case Op::kFirstUserOp: return "user0";
      case Op::kExtendedOp: return "send";
    }
    return "op?";
}

const char *
opSelector(Op op)
{
    switch (op) {
      case Op::Add: return "+";
      case Op::Sub: return "-";
      case Op::Mul: return "*";
      case Op::Div: return "/";
      case Op::Mod: return "\\\\";
      case Op::Neg: return "negated";
      case Op::Carry: return "carry:";
      case Op::Mult1: return "mult1:";
      case Op::Mult2: return "mult2:";
      case Op::Shift: return "bitShift:";
      case Op::AShift: return "arithShift:";
      case Op::Rotate: return "rotate:";
      case Op::Mask: return "mask:";
      case Op::And: return "bitAnd:";
      case Op::Or: return "bitOr:";
      case Op::Not: return "bitNot";
      case Op::Xor: return "bitXor:";
      case Op::Lt: return "<";
      case Op::Le: return "<=";
      case Op::Eq: return "=";
      case Op::Ne: return "~=";
      case Op::Same: return "==";
      // Move, movea, at:, at:put:, putres, as: and tag are *internal*
      // load/store/control instructions, not message selectors: the
      // compiler emits them for field access and plumbing, and guest
      // classes must be able to define at:/at:put: messages of their
      // own without capturing raw stores (see DESIGN.md).
      default: return "";
    }
}

} // namespace com::core
