/**
 * @file
 * The constant table (paper Section 3.4).
 *
 * "The constant mode can only be used in the last operand descriptor of
 * an instruction. ... The remaining bits index a constant table which
 * can be used to hold frequently referenced constants including short
 * integers, bit fields for byte insertion and the objects true, false,
 * and nil."
 *
 * The table is a small processor-local store (the "constant generator"
 * of Figure 5): reads cost no memory access. Entries 0..2 are fixed as
 * nil, true and false. The assembler and compiler intern constants here
 * with deduplication; the 7-bit descriptor field caps the table at 128
 * entries.
 */

#ifndef COMSIM_CORE_CONSTANT_TABLE_HPP
#define COMSIM_CORE_CONSTANT_TABLE_HPP

#include <cstdint>
#include <vector>

#include "mem/word.hpp"
#include "obj/selector_table.hpp"

namespace com::core {

/** Fixed constant indices. */
enum : std::uint8_t
{
    kConstNil = 0,
    kConstTrue = 1,
    kConstFalse = 2,
};

/** The per-machine constant table. */
class ConstantTable
{
  public:
    /** Interns nil/true/false atoms through @p selectors. */
    explicit ConstantTable(obj::SelectorTable &selectors);

    /** Maximum entries expressible by the 7-bit constant index. */
    static constexpr std::size_t kMaxEntries = 128;

    /**
     * Intern @p w, returning its index; reuses an existing identical
     * entry. fatal()s when the table is full.
     */
    std::uint8_t intern(mem::Word w);

    /** Read entry @p index. */
    mem::Word at(std::uint8_t index) const;

    /** Number of live entries. */
    std::size_t size() const { return entries_.size(); }

    /** The atom id of 'nil'. */
    std::uint32_t nilAtom() const { return nilAtom_; }
    /** The atom id of 'true'. */
    std::uint32_t trueAtom() const { return trueAtom_; }
    /** The atom id of 'false'. */
    std::uint32_t falseAtom() const { return falseAtom_; }

    /** The word for true. */
    mem::Word trueWord() const { return mem::Word::fromAtom(trueAtom_); }
    /** The word for false. */
    mem::Word falseWord() const
    {
        return mem::Word::fromAtom(falseAtom_);
    }
    /** The word for nil. */
    mem::Word nilWord() const { return mem::Word::fromAtom(nilAtom_); }

    /** Boolean word helper. */
    mem::Word
    boolWord(bool b) const
    {
        return b ? trueWord() : falseWord();
    }

    /** All entries (GC root scanning). */
    const std::vector<mem::Word> &entries() const { return entries_; }

  private:
    std::vector<mem::Word> entries_;
    std::uint32_t nilAtom_;
    std::uint32_t trueAtom_;
    std::uint32_t falseAtom_;
};

} // namespace com::core

#endif // COMSIM_CORE_CONSTANT_TABLE_HPP
