/**
 * @file
 * Shared code-invalidation bus for host-side translation caches.
 *
 * Two consumers memoize work keyed on absolute code addresses: the
 * decoded-instruction cache (PR 1) and the superblock cache. Both must
 * drop state on exactly the same events, or a stale translation would
 * diverge from the word-by-word interpreter:
 *
 *   - a guest store into a translated range (self-modifying code);
 *   - a garbage collection (swept segments may be recycled onto fresh
 *     objects, so absolute addresses no longer name the same words);
 *   - Machine::reset() / restoreImage() (host caches are not part of
 *     a machine image and restart empty).
 *
 * Rather than each store site in machine.cpp knowing every consumer,
 * the machine publishes the event once here and subscribers fan it
 * out. Subscribers are raw pointers owned elsewhere (the Machine owns
 * both the bus and every consumer, so lifetimes are trivially nested).
 */

#ifndef COMSIM_CORE_INVALIDATION_BUS_HPP
#define COMSIM_CORE_INVALIDATION_BUS_HPP

#include <vector>

#include "mem/word.hpp"

namespace com::core {

/** Subscriber interface for code-invalidation events. */
class CodeInvalidationListener
{
  public:
    virtual ~CodeInvalidationListener() = default;

    /** A guest store hit the word at @p abs. */
    virtual void onCodeStore(mem::AbsAddr abs) = 0;

    /** A GC may have recycled absolute addresses: drop everything. */
    virtual void onCodeInvalidateAll() = 0;

    /** Machine reset / image restore: return to the empty state. */
    virtual void onCodeReset() = 0;
};

/** Fan-out point for the three invalidation events. */
class CodeInvalidationBus
{
  public:
    /** Register @p l (not owned); no unsubscribe — lifetimes nest. */
    void subscribe(CodeInvalidationListener *l)
    {
        listeners_.push_back(l);
    }

    /** Publish a guest store into the word at @p abs. */
    void
    store(mem::AbsAddr abs)
    {
        for (CodeInvalidationListener *l : listeners_)
            l->onCodeStore(abs);
    }

    /** Publish a whole-space invalidation (garbage collection). */
    void
    invalidateAll()
    {
        for (CodeInvalidationListener *l : listeners_)
            l->onCodeInvalidateAll();
    }

    /** Publish a machine reset / image restore. */
    void
    reset()
    {
        for (CodeInvalidationListener *l : listeners_)
            l->onCodeReset();
    }

  private:
    std::vector<CodeInvalidationListener *> listeners_;
};

} // namespace com::core

#endif // COMSIM_CORE_INVALIDATION_BUS_HPP
