#include "baseline/method_cache.hpp"

#include "cache/itlb.hpp"
#include "cache/set_assoc.hpp"
#include "trace/cache_sim.hpp"

namespace com::baseline {

SoftCacheResult
simulateSoftwareCache(const trace::Trace &t, std::size_t entries,
                      std::size_t ways, const SoftCacheCost &cost)
{
    SoftCacheResult r;
    r.entries = entries;
    r.ways = ways;
    r.dispatches = t.size();

    if (entries == 0) {
        r.name = "no cache";
        r.hitRatio = 0.0;
        r.totalInstructions = t.size() * cost.missInstructions;
        r.instructionsPerSend =
            static_cast<double>(cost.missInstructions);
        return r;
    }

    trace::SweepPoint p =
        trace::simulateItlb(t, entries, ways, cache::ReplPolicy::Lru,
                            /*warmup_fraction=*/0.0);
    r.hitRatio = p.hitRatio;
    r.totalInstructions = p.hits * cost.hitInstructions +
                          p.misses * cost.missInstructions;
    r.instructionsPerSend =
        t.size() ? static_cast<double>(r.totalInstructions) /
                       static_cast<double>(t.size())
                 : 0.0;
    return r;
}

std::vector<SoftCacheResult>
methodCacheLineup(const trace::Trace &t)
{
    std::vector<SoftCacheResult> out;

    out.push_back(simulateSoftwareCache(t, 0, 1));

    SoftCacheResult direct = simulateSoftwareCache(t, 512, 1);
    direct.name = "direct-mapped software (Smalltalk-80 guide)";
    out.push_back(direct);

    SoftCacheResult hp = simulateSoftwareCache(t, 512, 2);
    hp.name = "2-way software (Hewlett-Packard)";
    out.push_back(hp);

    // The hardware ITLB: association pipelined with execution, so a
    // hit costs no instructions at all; only misses pay the lookup.
    SoftCacheCost itlb_cost;
    itlb_cost.hitInstructions = 0;
    SoftCacheResult hw = simulateSoftwareCache(t, 512, 2, itlb_cost);
    hw.name = "hardware ITLB (512-entry 2-way)";
    out.push_back(hw);

    return out;
}

} // namespace com::baseline
