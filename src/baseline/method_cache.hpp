/**
 * @file
 * Software method-lookup cache baselines (paper Sections 1.2 and 5).
 *
 * "The original Smalltalk implementer's guide suggests caching of
 * message hashes. Their caching strategy is direct mapping. The
 * Hewlett-Packard implementation uses a two way set association to
 * great advantage." Section 5 notes that the direct-mapped ITLB curve
 * agrees "within a few percent" with the Berkeley software cache data.
 *
 * This model replays (opcode, class) trace streams against software
 * caches and charges instruction costs: a hash+probe cost per hit and
 * the full dictionary-lookup cost per miss — quantifying how much
 * lookup overhead software caching leaves behind for the ITLB to
 * remove (the hardware's hit cost is zero: the association pipelines
 * with execution, Section 2.1).
 */

#ifndef COMSIM_BASELINE_METHOD_CACHE_HPP
#define COMSIM_BASELINE_METHOD_CACHE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace com::baseline {

/** Cost model for a software method cache. */
struct SoftCacheCost
{
    std::uint64_t hitInstructions = 8;   ///< hash, probe, compare, call
    std::uint64_t missInstructions = 60; ///< full dictionary lookup
};

/** Result of replaying a trace against one configuration. */
struct SoftCacheResult
{
    std::string name;
    std::size_t entries = 0;
    std::size_t ways = 0;
    double hitRatio = 0.0;
    std::uint64_t dispatches = 0;
    std::uint64_t totalInstructions = 0;
    double instructionsPerSend = 0.0;
};

/**
 * Replay @p t against a software method cache of @p entries entries
 * and @p ways ways (entries == 0 models no cache: every dispatch pays
 * the full lookup).
 */
SoftCacheResult simulateSoftwareCache(const trace::Trace &t,
                                      std::size_t entries,
                                      std::size_t ways,
                                      const SoftCacheCost &cost = {});

/**
 * The Section 1.2 lineup: no cache, Smalltalk-80 guide direct-mapped,
 * HP two-way, plus the hardware ITLB reference (zero hit cost).
 */
std::vector<SoftCacheResult> methodCacheLineup(const trace::Trace &t);

} // namespace com::baseline

#endif // COMSIM_BASELINE_METHOD_CACHE_HPP
