#include "baseline/register_windows.hpp"

namespace com::baseline {

RegisterWindows::RegisterWindows(std::size_t num_windows,
                                 std::size_t window_words)
    : numWindows_(num_windows), windowWords_(window_words),
      stats_("register_windows")
{
    stats_.addCounter("calls", &calls_, "procedure calls");
    stats_.addCounter("returns", &returns_, "procedure returns");
    stats_.addCounter("overflows", &overflows_, "overflow traps");
    stats_.addCounter("underflows", &underflows_, "underflow traps");
    stats_.addCounter("words_spilled", &spilled_,
                      "words written to memory");
    stats_.addCounter("words_filled", &filled_,
                      "words read back from memory");
    stats_.addCounter("words_cleaned", &cleaned_,
                      "words cleaned by software on allocation");
    stats_.addCounter("flushes", &flushes_,
                      "full flushes (non-LIFO or process switch)");
}

void
RegisterWindows::onCall()
{
    ++calls_;
    if (occupied_ == numWindows_) {
        // Overflow: spill the oldest window.
        ++overflows_;
        spilled_ += windowWords_;
        ++spilledDepth_;
        --occupied_;
    }
    ++occupied_;
    // No clear-on-allocate hardware: software must initialize the
    // window before use.
    cleaned_ += windowWords_;
}

void
RegisterWindows::onReturn()
{
    ++returns_;
    if (occupied_ == 0) {
        // Underflow: fill the caller's window from memory.
        ++underflows_;
        if (spilledDepth_ > 0) {
            filled_ += windowWords_;
            --spilledDepth_;
        }
        return;
    }
    --occupied_;
    if (occupied_ == 0 && spilledDepth_ > 0) {
        ++underflows_;
        filled_ += windowWords_;
        --spilledDepth_;
        ++occupied_;
    }
}

void
RegisterWindows::flushAll()
{
    ++flushes_;
    spilled_ += occupied_ * windowWords_;
    spilledDepth_ += occupied_;
    occupied_ = 0;
}

void
RegisterWindows::onNonLifo()
{
    // The trap for non-LIFO contexts: the window contents must move to
    // memory so the context can outlive the stack discipline.
    flushAll();
}

void
RegisterWindows::onProcessSwitch()
{
    // Windows are addressed relative to the window pointer, not by
    // absolute context addresses, so nothing survives a switch.
    flushAll();
    spilledDepth_ = 0; // the new process starts with cold windows
}

} // namespace com::baseline
