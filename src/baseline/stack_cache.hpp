/**
 * @file
 * C-machine-style stack cache (paper Section 2.3 comparison baseline;
 * Ditzel & McLellan, "Register Allocation for Free").
 *
 * The stack cache holds the top of a *contiguous* stack in a circular
 * word buffer. Frames are pushed and popped; when the buffer fills,
 * words spill from the bottom; when it drains, words fill back. Like
 * register windows it cannot represent non-contiguous frames, so
 * non-LIFO contexts and process switches flush it; unlike the context
 * cache there is no clear-on-allocate, so frames are cleaned by
 * software.
 */

#ifndef COMSIM_BASELINE_STACK_CACHE_HPP
#define COMSIM_BASELINE_STACK_CACHE_HPP

#include <cstdint>

#include "sim/stats.hpp"

namespace com::baseline {

/** The stack-cache model. */
class StackCache
{
  public:
    /**
     * @param capacity_words words in the circular buffer
     *        (the C machine paper's design point: ~1K)
     * @param frame_words words pushed per call (32: context-sized)
     */
    explicit StackCache(std::size_t capacity_words = 1024,
                        std::size_t frame_words = 32);

    /** Push a frame; spills from the bottom when full. */
    void onCall();
    /** Pop a frame; fills from memory when the caller was spilled. */
    void onReturn();
    /** Non-LIFO context: flush the buffer. */
    void onNonLifo();
    /** Process switch: flush the buffer. */
    void onProcessSwitch();

    /** Resident words right now. */
    std::size_t residentWords() const { return resident_; }
    /** Total words spilled to memory. */
    std::uint64_t wordsSpilled() const { return spilled_.value(); }
    /** Total words filled from memory. */
    std::uint64_t wordsFilled() const { return filled_.value(); }
    /** Words cleaned by software on frame allocation. */
    std::uint64_t wordsCleaned() const { return cleaned_.value(); }
    /** Flush events. */
    std::uint64_t flushes() const { return flushes_.value(); }
    /** Total word traffic to and from memory. */
    std::uint64_t
    memoryTraffic() const
    {
        return spilled_.value() + filled_.value();
    }

    /** Statistics group ("stack_cache"). */
    const sim::StatGroup &stats() const { return stats_; }

  private:
    std::size_t capacity_;
    std::size_t frameWords_;
    std::size_t resident_ = 0;   ///< words in the buffer
    std::uint64_t depthWords_ = 0; ///< total stack depth in words

    sim::Counter calls_;
    sim::Counter returns_;
    sim::Counter spilled_;
    sim::Counter filled_;
    sim::Counter cleaned_;
    sim::Counter flushes_;
    sim::StatGroup stats_;
};

} // namespace com::baseline

#endif // COMSIM_BASELINE_STACK_CACHE_HPP
