#include "baseline/stack_cache.hpp"

namespace com::baseline {

StackCache::StackCache(std::size_t capacity_words,
                       std::size_t frame_words)
    : capacity_(capacity_words), frameWords_(frame_words),
      stats_("stack_cache")
{
    stats_.addCounter("calls", &calls_, "frames pushed");
    stats_.addCounter("returns", &returns_, "frames popped");
    stats_.addCounter("words_spilled", &spilled_,
                      "words written to memory");
    stats_.addCounter("words_filled", &filled_,
                      "words read back from memory");
    stats_.addCounter("words_cleaned", &cleaned_,
                      "words cleaned by software on allocation");
    stats_.addCounter("flushes", &flushes_,
                      "full flushes (non-LIFO or process switch)");
}

void
StackCache::onCall()
{
    ++calls_;
    depthWords_ += frameWords_;
    resident_ += frameWords_;
    if (resident_ > capacity_) {
        // Spill the excess from the bottom of the buffer.
        std::size_t excess = resident_ - capacity_;
        spilled_ += excess;
        resident_ = capacity_;
    }
    cleaned_ += frameWords_;
}

void
StackCache::onReturn()
{
    ++returns_;
    if (depthWords_ < frameWords_)
        return; // stack empty: ignore
    depthWords_ -= frameWords_;
    if (resident_ >= frameWords_) {
        resident_ -= frameWords_;
    } else {
        resident_ = 0;
    }
    // If the caller's frame had been spilled, fill it back.
    if (resident_ < frameWords_ && depthWords_ >= frameWords_) {
        std::size_t need = frameWords_ - resident_;
        filled_ += need;
        resident_ += need;
    }
}

void
StackCache::onNonLifo()
{
    ++flushes_;
    spilled_ += resident_;
    resident_ = 0;
}

void
StackCache::onProcessSwitch()
{
    ++flushes_;
    spilled_ += resident_;
    resident_ = 0;
    depthWords_ = 0;
}

} // namespace com::baseline
