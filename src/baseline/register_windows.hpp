/**
 * @file
 * SOAR-style register windows (paper Section 2.3 comparison baseline).
 *
 * "Contexts are allocated via the RISC register window scheme with a
 * trap for non-LIFO contexts" — windows live in a circular on-chip
 * buffer addressed *relatively* (by window pointer), which gives them
 * the three weaknesses the context cache removes:
 *
 *   1. windows must be contiguous: a non-LIFO context forces a trap
 *      that flushes the buffer to memory;
 *   2. window contents are not named by absolute addresses, so a
 *      process switch invalidates (flushes) every window;
 *   3. a freshly allocated window holds the previous occupant's data
 *      and must be cleaned by software.
 *
 * The model counts calls, returns, overflow/underflow traps and the
 * words moved to and from memory, under the same event stream the
 * ContextCache and C-machine stack cache models consume (see
 * baseline/stack_cache.hpp and bench/ablation_windows).
 */

#ifndef COMSIM_BASELINE_REGISTER_WINDOWS_HPP
#define COMSIM_BASELINE_REGISTER_WINDOWS_HPP

#include <cstdint>

#include "sim/stats.hpp"

namespace com::baseline {

/** The register-window model. */
class RegisterWindows
{
  public:
    /**
     * @param num_windows windows in the circular buffer (SOAR: 8)
     * @param window_words registers per window (32, matching the
     *        context size)
     */
    explicit RegisterWindows(std::size_t num_windows = 8,
                             std::size_t window_words = 32);

    /** A procedure call: advance; may overflow (spill one window). */
    void onCall();
    /** A return: retreat; may underflow (fill one window). */
    void onReturn();
    /** A non-LIFO context creation: trap and flush everything. */
    void onNonLifo();
    /** A process switch: flush every occupied window. */
    void onProcessSwitch();

    /** Occupied windows right now. */
    std::size_t occupied() const { return occupied_; }
    /** Overflow traps taken. */
    std::uint64_t overflows() const { return overflows_.value(); }
    /** Underflow traps taken. */
    std::uint64_t underflows() const { return underflows_.value(); }
    /** Total words written to memory (spills + flushes). */
    std::uint64_t wordsSpilled() const { return spilled_.value(); }
    /** Total words read back from memory. */
    std::uint64_t wordsFilled() const { return filled_.value(); }
    /** Words cleaned by software on allocation (always, by design). */
    std::uint64_t wordsCleaned() const { return cleaned_.value(); }
    /** Flush events (non-LIFO + switches). */
    std::uint64_t flushes() const { return flushes_.value(); }

    /**
     * Total memory traffic in words: the headline number the
     * context-cache comparison uses.
     */
    std::uint64_t
    memoryTraffic() const
    {
        return spilled_.value() + filled_.value();
    }

    /** Statistics group ("register_windows"). */
    const sim::StatGroup &stats() const { return stats_; }

  private:
    void flushAll();

    std::size_t numWindows_;
    std::size_t windowWords_;
    std::size_t occupied_ = 0;
    /** Call depth below the resident windows (spilled frames). */
    std::uint64_t spilledDepth_ = 0;

    sim::Counter calls_;
    sim::Counter returns_;
    sim::Counter overflows_;
    sim::Counter underflows_;
    sim::Counter spilled_;
    sim::Counter filled_;
    sim::Counter cleaned_;
    sim::Counter flushes_;
    sim::StatGroup stats_;
};

} // namespace com::baseline

#endif // COMSIM_BASELINE_REGISTER_WINDOWS_HPP
