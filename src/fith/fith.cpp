#include "fith/fith.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "sim/logging.hpp"
#include "sim/strutil.hpp"

namespace com::fith {

using mem::Tag;
using mem::Word;

namespace {

/** Case-insensitive compare for control words. */
bool
iequals(const std::string &a, const char *b)
{
    std::size_t n = 0;
    for (; b[n] != '\0'; ++n) {
        if (n >= a.size() ||
            std::tolower(static_cast<unsigned char>(a[n])) !=
                std::tolower(static_cast<unsigned char>(b[n])))
            return false;
    }
    return n == a.size();
}

bool
isNumber(const std::string &t, bool &is_float)
{
    if (t.empty())
        return false;
    std::size_t i = (t[0] == '-' || t[0] == '+') ? 1 : 0;
    if (i >= t.size())
        return false;
    bool digits = false, dot = false;
    for (; i < t.size(); ++i) {
        if (std::isdigit(static_cast<unsigned char>(t[i]))) {
            digits = true;
        } else if (t[i] == '.' && !dot) {
            dot = true;
        } else {
            return false;
        }
    }
    is_float = dot;
    return digits;
}

double
numval(const Word &w)
{
    return w.isInt() ? static_cast<double>(w.asInt())
                     : static_cast<double>(w.asFloat());
}

} // namespace

FithMachine::FithMachine()
{
    trueAtom_ = tokens_.intern("true");
    falseAtom_ = tokens_.intern("false");
    installPrimitives();
}

std::vector<std::string>
FithMachine::tokenize(const std::string &src)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < src.size()) {
        while (i < src.size() &&
               std::isspace(static_cast<unsigned char>(src[i])))
            ++i;
        if (i >= src.size())
            break;
        if (src[i] == '\\') { // line comment
            while (i < src.size() && src[i] != '\n')
                ++i;
            continue;
        }
        if (src[i] == '(') { // inline comment
            while (i < src.size() && src[i] != ')')
                ++i;
            if (i < src.size())
                ++i;
            continue;
        }
        std::size_t start = i;
        while (i < src.size() &&
               !std::isspace(static_cast<unsigned char>(src[i])))
            ++i;
        out.push_back(src.substr(start, i - start));
    }
    return out;
}

std::size_t
FithMachine::compile(const std::vector<std::string> &toks, std::size_t i,
                     bool in_definition)
{
    // Control stack of (kind, patch address) entries.
    struct Ctl
    {
        char kind; // 'i' IF, 'e' ELSE, 'b' BEGIN, 'w' WHILE, 'd' DO
        std::uint32_t addr;
    };
    std::vector<Ctl> ctl;

    auto here = [&] {
        return static_cast<std::uint32_t>(code_.size());
    };

    for (; i < toks.size(); ++i) {
        const std::string &t = toks[i];
        if (t == ";") {
            sim::fatalIf(!in_definition, "fith: ';' outside definition");
            sim::fatalIf(!ctl.empty(),
                         "fith: unterminated control structure");
            code_.push_back(Cell{CellKind::Exit, 0, 0, 0.0f, 0});
            return i + 1;
        }
        bool is_float = false;
        if (isNumber(t, is_float)) {
            if (is_float)
                code_.push_back(Cell{CellKind::PushFloat, 0, 0,
                                     std::strtof(t.c_str(), nullptr),
                                     0});
            else
                code_.push_back(Cell{CellKind::PushInt, 0,
                                     static_cast<std::int32_t>(
                                         std::strtol(t.c_str(), nullptr,
                                                     10)),
                                     0.0f, 0});
            continue;
        }
        if (t[0] == '\'') {
            code_.push_back(Cell{CellKind::PushAtom, 0, 0, 0.0f,
                                 tokens_.intern(t.substr(1))});
            continue;
        }
        if (iequals(t, "if")) {
            ctl.push_back(Ctl{'i', here()});
            code_.push_back(
                Cell{CellKind::BranchIfFalse, 0, 0, 0.0f, 0});
            continue;
        }
        if (iequals(t, "else")) {
            sim::fatalIf(ctl.empty() || ctl.back().kind != 'i',
                         "fith: ELSE without IF");
            std::uint32_t if_addr = ctl.back().addr;
            ctl.pop_back();
            ctl.push_back(Ctl{'e', here()});
            code_.push_back(Cell{CellKind::Branch, 0, 0, 0.0f, 0});
            code_[if_addr].arg = static_cast<std::int32_t>(
                here() - if_addr - 1);
            continue;
        }
        if (iequals(t, "then")) {
            sim::fatalIf(ctl.empty() || (ctl.back().kind != 'i' &&
                                         ctl.back().kind != 'e'),
                         "fith: THEN without IF");
            std::uint32_t addr = ctl.back().addr;
            ctl.pop_back();
            code_[addr].arg = static_cast<std::int32_t>(
                here() - addr - 1);
            continue;
        }
        if (iequals(t, "begin")) {
            ctl.push_back(Ctl{'b', here()});
            continue;
        }
        if (iequals(t, "until")) {
            sim::fatalIf(ctl.empty() || ctl.back().kind != 'b',
                         "fith: UNTIL without BEGIN");
            std::uint32_t begin_addr = ctl.back().addr;
            ctl.pop_back();
            code_.push_back(Cell{
                CellKind::BranchIfFalse,
                0,
                static_cast<std::int32_t>(begin_addr) -
                    static_cast<std::int32_t>(here()) - 1,
                0.0f, 0});
            continue;
        }
        if (iequals(t, "while")) {
            sim::fatalIf(ctl.empty() || ctl.back().kind != 'b',
                         "fith: WHILE without BEGIN");
            ctl.push_back(Ctl{'w', here()});
            code_.push_back(
                Cell{CellKind::BranchIfFalse, 0, 0, 0.0f, 0});
            continue;
        }
        if (iequals(t, "repeat")) {
            sim::fatalIf(ctl.size() < 2 || ctl.back().kind != 'w',
                         "fith: REPEAT without WHILE");
            std::uint32_t while_addr = ctl.back().addr;
            ctl.pop_back();
            std::uint32_t begin_addr = ctl.back().addr;
            ctl.pop_back();
            code_.push_back(Cell{
                CellKind::Branch,
                0,
                static_cast<std::int32_t>(begin_addr) -
                    static_cast<std::int32_t>(here()) - 1,
                0.0f, 0});
            code_[while_addr].arg = static_cast<std::int32_t>(
                here() - while_addr - 1);
            continue;
        }
        if (iequals(t, "do")) {
            code_.push_back(Cell{CellKind::DoInit, 0, 0, 0.0f, 0});
            ctl.push_back(Ctl{'d', here()});
            continue;
        }
        if (iequals(t, "loop")) {
            sim::fatalIf(ctl.empty() || ctl.back().kind != 'd',
                         "fith: LOOP without DO");
            std::uint32_t body = ctl.back().addr;
            ctl.pop_back();
            code_.push_back(Cell{
                CellKind::LoopInc,
                0,
                static_cast<std::int32_t>(body) -
                    static_cast<std::int32_t>(here()) - 1,
                0.0f, 0});
            continue;
        }
        if (iequals(t, "i")) {
            code_.push_back(Cell{CellKind::PushIndexI, 0, 0, 0.0f, 0});
            continue;
        }
        if (iequals(t, "j")) {
            code_.push_back(Cell{CellKind::PushIndexJ, 0, 0, 0.0f, 0});
            continue;
        }
        // Plain token: an abstract instruction.
        code_.push_back(Cell{CellKind::Token, tokens_.intern(t), 0,
                             0.0f, 0});
    }
    sim::fatalIf(in_definition, "fith: definition missing ';'");
    sim::fatalIf(!ctl.empty(), "fith: unterminated control structure");
    return i;
}

FithResult
FithMachine::run(const std::string &source, std::uint64_t max_steps)
{
    return runCompiled(compileSource(source), max_steps);
}

std::vector<std::uint32_t>
FithMachine::compileSource(const std::string &source)
{
    std::vector<std::string> toks = tokenize(source);

    // Split definitions from immediate code, compiling as we go.
    std::vector<std::uint32_t> immediate_starts;
    std::size_t i = 0;
    while (i < toks.size()) {
        if (toks[i] == ":") {
            sim::fatalIf(i + 1 >= toks.size(), "fith: ':' needs a name");
            std::uint32_t op = tokens_.intern(toks[i + 1]);
            std::uint32_t start =
                static_cast<std::uint32_t>(code_.size());
            i = compile(toks, i + 2, true);
            methods_[key(op, FithClass::Any)] = Definition{start};
        } else if (toks[i] == "::") {
            sim::fatalIf(i + 2 >= toks.size(),
                         "fith: '::' needs class and name");
            const std::string &cls_name = toks[i + 1];
            FithClass cls;
            if (cls_name == "Int") cls = FithClass::Int;
            else if (cls_name == "Float") cls = FithClass::Float;
            else if (cls_name == "Atom") cls = FithClass::Atom;
            else if (cls_name == "Array") cls = FithClass::Array;
            else if (cls_name == "Any") cls = FithClass::Any;
            else
                sim::fatal("fith: unknown class '", cls_name, "'");
            std::uint32_t op = tokens_.intern(toks[i + 2]);
            std::uint32_t start =
                static_cast<std::uint32_t>(code_.size());
            i = compile(toks, i + 3, true);
            methods_[key(op, cls)] = Definition{start};
        } else {
            // Immediate code: compile up to the next definition.
            std::size_t j = i;
            while (j < toks.size() && toks[j] != ":" && toks[j] != "::")
                ++j;
            std::vector<std::string> chunk(toks.begin() +
                                               static_cast<long>(i),
                                           toks.begin() +
                                               static_cast<long>(j));
            std::uint32_t start =
                static_cast<std::uint32_t>(code_.size());
            compile(chunk, 0, false);
            code_.push_back(Cell{CellKind::Exit, 0, 0, 0.0f, 0});
            immediate_starts.push_back(start);
            i = j;
        }
    }
    return immediate_starts;
}

FithResult
FithMachine::runCompiled(const std::vector<std::uint32_t> &starts,
                         std::uint64_t max_steps)
{
    FithResult res;
    res.ok = true;
    for (std::uint32_t start : starts) {
        FithResult r = execute(start, max_steps);
        res.steps += r.steps;
        if (!r.ok) {
            res.ok = false;
            res.error = r.error;
            break;
        }
    }
    return res;
}

FithClass
FithMachine::tosClass() const
{
    if (stack_.empty())
        return FithClass::None;
    const Word &w = stack_.back();
    switch (w.tag()) {
      case Tag::SmallInt: return FithClass::Int;
      case Tag::Float: return FithClass::Float;
      case Tag::Atom: return FithClass::Atom;
      case Tag::ObjectPtr: return FithClass::Array;
      default: return FithClass::None;
    }
}

mem::Word
FithMachine::pop()
{
    sim::panicIf(stack_.empty(), "fith: pop from empty stack");
    Word w = stack_.back();
    stack_.pop_back();
    return w;
}

bool
FithMachine::popTwo(mem::Word &a, mem::Word &b)
{
    if (stack_.size() < 2) {
        error_ = "stack underflow";
        return false;
    }
    b = pop();
    a = pop();
    return true;
}

FithResult
FithMachine::execute(std::uint32_t start, std::uint64_t max_steps)
{
    FithResult res;
    std::uint32_t ip = start;
    std::size_t rstack_base = rstack_.size();
    error_.clear();

    auto truthy = [&](const Word &w) {
        if (w.isAtom())
            return w.asAtom() == trueAtom_;
        if (w.isInt())
            return w.asInt() != 0;
        return false;
    };

    std::uint64_t steps = 0;
    while (steps < max_steps) {
        sim::panicIf(ip >= code_.size(), "fith: ip out of code space");
        const Cell &cell = code_[ip];
        ++steps;

        switch (cell.kind) {
          case CellKind::PushInt:
            if (tracing_)
                trace_.record(ip, 0xfff0, 0);
            push(Word::fromInt(cell.arg));
            ++ip;
            continue;
          case CellKind::PushFloat:
            if (tracing_)
                trace_.record(ip, 0xfff0, 0);
            push(Word::fromFloat(cell.farg));
            ++ip;
            continue;
          case CellKind::PushAtom:
            if (tracing_)
                trace_.record(ip, 0xfff0, 0);
            push(Word::fromAtom(cell.atom));
            ++ip;
            continue;
          case CellKind::Branch:
            if (tracing_)
                trace_.record(ip, 0xfff1, 0);
            ip = static_cast<std::uint32_t>(
                static_cast<std::int64_t>(ip) + 1 + cell.arg);
            continue;
          case CellKind::BranchIfFalse: {
            if (tracing_)
                trace_.record(ip, 0xfff2, static_cast<mem::ClassId>(
                                              tosClass()));
            if (stack_.empty()) {
                res.error = "stack underflow in branch";
                res.steps = steps;
                return res;
            }
            Word w = pop();
            if (!truthy(w))
                ip = static_cast<std::uint32_t>(
                    static_cast<std::int64_t>(ip) + 1 + cell.arg);
            else
                ++ip;
            continue;
          }
          case CellKind::DoInit: {
            if (tracing_)
                trace_.record(ip, 0xfff3, 0);
            Word limit, startw;
            if (!popTwo(limit, startw)) {
                res.error = error_;
                res.steps = steps;
                return res;
            }
            loops_.push_back(LoopFrame{startw.asInt(), limit.asInt()});
            ++ip;
            continue;
          }
          case CellKind::LoopInc: {
            if (tracing_)
                trace_.record(ip, 0xfff4, 0);
            sim::panicIf(loops_.empty(), "fith: LOOP without frame");
            LoopFrame &f = loops_.back();
            ++f.index;
            if (f.index < f.limit) {
                ip = static_cast<std::uint32_t>(
                    static_cast<std::int64_t>(ip) + 1 + cell.arg);
            } else {
                loops_.pop_back();
                ++ip;
            }
            continue;
          }
          case CellKind::PushIndexI:
            if (tracing_)
                trace_.record(ip, 0xfff5, 0);
            sim::panicIf(loops_.empty(), "fith: I outside DO LOOP");
            push(Word::fromInt(loops_.back().index));
            ++ip;
            continue;
          case CellKind::PushIndexJ:
            if (tracing_)
                trace_.record(ip, 0xfff6, 0);
            sim::panicIf(loops_.size() < 2, "fith: J needs two loops");
            push(Word::fromInt(loops_[loops_.size() - 2].index));
            ++ip;
            continue;
          case CellKind::Exit:
            if (rstack_.size() == rstack_base) {
                res.ok = true;
                res.steps = steps;
                return res;
            }
            ip = rstack_.back();
            rstack_.pop_back();
            continue;
          case CellKind::Token:
            break;
        }

        // Abstract instruction: dispatch on the class of the TOS.
        FithClass cls = tosClass();
        ++dispatches_;
        if (tracing_)
            trace_.record(ip, cell.op,
                          static_cast<mem::ClassId>(cls));

        // Exact class first, then the Any chain (superclass walk).
        auto prim_it = primitives_.find(key(cell.op, cls));
        if (prim_it == primitives_.end())
            prim_it = primitives_.find(key(cell.op, FithClass::Any));
        auto meth_it = methods_.find(key(cell.op, cls));
        if (meth_it == methods_.end())
            meth_it = methods_.find(key(cell.op, FithClass::Any));
        ++lookups_;

        if (meth_it != methods_.end()) {
            rstack_.push_back(ip + 1);
            ip = meth_it->second.start;
            continue;
        }
        if (prim_it != primitives_.end()) {
            if (!prim_it->second(*this)) {
                res.error = sim::format(
                    "'%s' failed: %s",
                    tokens_.name(cell.op).c_str(), error_.c_str());
                res.steps = steps;
                return res;
            }
            ++ip;
            continue;
        }
        res.error = sim::format("'%s' not understood by class %u",
                                tokens_.name(cell.op).c_str(),
                                static_cast<unsigned>(cls));
        res.steps = steps;
        return res;
    }
    res.error = "step limit exceeded";
    res.steps = steps;
    return res;
}

void
FithMachine::prim(const std::string &name, FithClass cls, Primitive fn)
{
    primitives_[key(tokens_.intern(name), cls)] = std::move(fn);
}

void
FithMachine::installPrimitives()
{
    auto arith = [this](const char *name, auto fn) {
        auto body = [this, fn](FithMachine &m) {
            Word a, b;
            if (!m.popTwo(a, b))
                return false;
            if (a.isInt() && b.isInt()) {
                std::int64_t r = fn(static_cast<std::int64_t>(a.asInt()),
                                    static_cast<std::int64_t>(b.asInt()));
                m.push(Word::fromInt(static_cast<std::int32_t>(r)));
            } else {
                double r = fn(numval(a), numval(b));
                m.push(Word::fromFloat(static_cast<float>(r)));
            }
            return true;
        };
        prim(name, FithClass::Int, body);
        prim(name, FithClass::Float, body);
    };
    arith("+", [](auto a, auto b) { return a + b; });
    arith("-", [](auto a, auto b) { return a - b; });
    arith("*", [](auto a, auto b) { return a * b; });
    arith("min", [](auto a, auto b) { return a < b ? a : b; });
    arith("max", [](auto a, auto b) { return a < b ? b : a; });

    auto divlike = [this](const char *name, bool is_mod) {
        auto body = [this, is_mod](FithMachine &m) {
            Word a, b;
            if (!m.popTwo(a, b))
                return false;
            if (a.isInt() && b.isInt()) {
                if (b.asInt() == 0) {
                    m.error_ = "divide by zero";
                    return false;
                }
                m.push(Word::fromInt(is_mod ? a.asInt() % b.asInt()
                                            : a.asInt() / b.asInt()));
            } else {
                double d = numval(b);
                if (d == 0.0) {
                    m.error_ = "divide by zero";
                    return false;
                }
                m.push(Word::fromFloat(static_cast<float>(
                    is_mod ? std::fmod(numval(a), d) : numval(a) / d)));
            }
            return true;
        };
        prim(name, FithClass::Int, body);
        prim(name, FithClass::Float, body);
    };
    divlike("/", false);
    divlike("mod", true);

    auto cmp = [this](const char *name, auto fn) {
        auto body = [this, fn](FithMachine &m) {
            Word a, b;
            if (!m.popTwo(a, b))
                return false;
            bool r;
            if (a.isAtom() && b.isAtom())
                r = fn(static_cast<double>(a.asAtom()),
                       static_cast<double>(b.asAtom()));
            else
                r = fn(numval(a), numval(b));
            m.push(Word::fromAtom(r ? m.trueAtom_ : m.falseAtom_));
            return true;
        };
        prim(name, FithClass::Int, body);
        prim(name, FithClass::Float, body);
        prim(name, FithClass::Atom, body);
    };
    cmp("<", [](double a, double b) { return a < b; });
    cmp("<=", [](double a, double b) { return a <= b; });
    cmp(">", [](double a, double b) { return a > b; });
    cmp(">=", [](double a, double b) { return a >= b; });
    cmp("=", [](double a, double b) { return a == b; });
    cmp("<>", [](double a, double b) { return a != b; });

    auto logical = [this](const char *name, auto fn) {
        prim(name, FithClass::Int, [this, fn](FithMachine &m) {
            Word a, b;
            if (!m.popTwo(a, b))
                return false;
            m.push(Word::fromInt(fn(a.asInt(), b.asInt())));
            return true;
        });
        // Boolean sense on atoms.
        prim(name, FithClass::Atom, [this, fn](FithMachine &m) {
            Word a, b;
            if (!m.popTwo(a, b))
                return false;
            bool av = a.isAtom() && a.asAtom() == m.trueAtom_;
            bool bv = b.isAtom() && b.asAtom() == m.trueAtom_;
            bool r = fn(av ? 1 : 0, bv ? 1 : 0) != 0;
            m.push(Word::fromAtom(r ? m.trueAtom_ : m.falseAtom_));
            return true;
        });
    };
    logical("and", [](std::int32_t a, std::int32_t b) { return a & b; });
    logical("or", [](std::int32_t a, std::int32_t b) { return a | b; });
    logical("xor", [](std::int32_t a, std::int32_t b) { return a ^ b; });

    prim("invert", FithClass::Int, [](FithMachine &m) {
        Word a = m.pop();
        m.push(Word::fromInt(~a.asInt()));
        return true;
    });
    prim("neg", FithClass::Int, [](FithMachine &m) {
        m.push(Word::fromInt(-m.pop().asInt()));
        return true;
    });
    prim("neg", FithClass::Float, [](FithMachine &m) {
        m.push(Word::fromFloat(-m.pop().asFloat()));
        return true;
    });
    prim("abs", FithClass::Int, [](FithMachine &m) {
        std::int32_t v = m.pop().asInt();
        m.push(Word::fromInt(v < 0 ? -v : v));
        return true;
    });
    prim("abs", FithClass::Float, [](FithMachine &m) {
        m.push(Word::fromFloat(std::fabs(m.pop().asFloat())));
        return true;
    });

    // Stack manipulation: class-independent.
    auto any = [this](const char *name, Primitive fn) {
        prim(name, FithClass::Any, std::move(fn));
    };
    any("dup", [](FithMachine &m) {
        if (m.stack_.empty()) {
            m.error_ = "stack underflow";
            return false;
        }
        m.push(m.stack_.back());
        return true;
    });
    any("drop", [](FithMachine &m) {
        if (m.stack_.empty()) {
            m.error_ = "stack underflow";
            return false;
        }
        m.pop();
        return true;
    });
    any("swap", [](FithMachine &m) {
        Word a, b;
        if (!m.popTwo(a, b))
            return false;
        m.push(b);
        m.push(a);
        return true;
    });
    any("over", [](FithMachine &m) {
        if (m.stack_.size() < 2) {
            m.error_ = "stack underflow";
            return false;
        }
        m.push(m.stack_[m.stack_.size() - 2]);
        return true;
    });
    any("rot", [](FithMachine &m) {
        if (m.stack_.size() < 3) {
            m.error_ = "stack underflow";
            return false;
        }
        Word c = m.pop(), b = m.pop(), a = m.pop();
        m.push(b);
        m.push(c);
        m.push(a);
        return true;
    });
    any("nip", [](FithMachine &m) {
        Word a, b;
        if (!m.popTwo(a, b))
            return false;
        m.push(b);
        return true;
    });
    any("depth", [](FithMachine &m) {
        m.push(Word::fromInt(
            static_cast<std::int32_t>(m.stack_.size())));
        return true;
    });
    // n pick: copy the nth item below the (popped) count to the top;
    // 0 pick == dup.
    prim("pick", FithClass::Int, [](FithMachine &m) {
        std::int32_t n = m.pop().asInt();
        if (n < 0 || static_cast<std::size_t>(n) >= m.stack_.size()) {
            m.error_ = "pick out of range";
            return false;
        }
        m.push(m.stack_[m.stack_.size() - 1 -
                        static_cast<std::size_t>(n)]);
        return true;
    });
    any(".", [](FithMachine &m) {
        if (m.stack_.empty()) {
            m.error_ = "stack underflow";
            return false;
        }
        Word w = m.pop();
        switch (w.tag()) {
          case Tag::SmallInt:
            m.output_ += sim::format("%d ", w.asInt());
            break;
          case Tag::Float:
            m.output_ += sim::format("%g ",
                                     static_cast<double>(w.asFloat()));
            break;
          case Tag::Atom:
            m.output_ += m.tokens_.name(w.asAtom()) + " ";
            break;
          default:
            m.output_ += "? ";
        }
        return true;
    });

    // Arrays. `n array` allocates; handles are ObjectPtr words whose
    // payload indexes arrays_.
    prim("array", FithClass::Int, [](FithMachine &m) {
        std::int32_t n = m.pop().asInt();
        if (n < 0) {
            m.error_ = "negative array size";
            return false;
        }
        m.arrays_.emplace_back(static_cast<std::size_t>(n),
                               Word::fromInt(0));
        m.push(Word::fromPointer(static_cast<std::uint32_t>(
            m.arrays_.size() - 1)));
        return true;
    });
    // a i @  ( fetch: TOS is the index -> dispatch on Int )
    prim("@", FithClass::Int, [](FithMachine &m) {
        Word idx, arr;
        if (m.stack_.size() < 2) {
            m.error_ = "stack underflow";
            return false;
        }
        idx = m.pop();
        arr = m.pop();
        if (!arr.isPointer() ||
            arr.asPointer() >= m.arrays_.size()) {
            m.error_ = "@ needs an array";
            return false;
        }
        auto &v = m.arrays_[arr.asPointer()];
        std::int32_t i = idx.asInt();
        if (i < 0 || static_cast<std::size_t>(i) >= v.size()) {
            m.error_ = "array index out of range";
            return false;
        }
        m.push(v[static_cast<std::size_t>(i)]);
        return true;
    });
    // v a i !  ( store )
    prim("!", FithClass::Int, [](FithMachine &m) {
        if (m.stack_.size() < 3) {
            m.error_ = "stack underflow";
            return false;
        }
        Word idx = m.pop(), arr = m.pop(), val = m.pop();
        if (!arr.isPointer() ||
            arr.asPointer() >= m.arrays_.size()) {
            m.error_ = "! needs an array";
            return false;
        }
        auto &v = m.arrays_[arr.asPointer()];
        std::int32_t i = idx.asInt();
        if (i < 0 || static_cast<std::size_t>(i) >= v.size()) {
            m.error_ = "array index out of range";
            return false;
        }
        v[static_cast<std::size_t>(i)] = val;
        return true;
    });
    prim("len", FithClass::Array, [](FithMachine &m) {
        Word arr = m.pop();
        m.push(Word::fromInt(static_cast<std::int32_t>(
            m.arrays_[arr.asPointer()].size())));
        return true;
    });
}

} // namespace com::fith
