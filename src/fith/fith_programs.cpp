#include "fith/fith_programs.hpp"

#include "fith/fith.hpp"
#include "sim/logging.hpp"
#include "sim/rng.hpp"
#include "sim/strutil.hpp"

namespace com::fith {

std::vector<FithProgram>
standardPrograms()
{
    std::vector<FithProgram> out;

    out.push_back({"sieve", R"(
        \ Sieve of Eratosthenes over a 400-element flag array.
        : sieve ( -- count )
          400 array                      ( a )
          400 0 DO 1 over I ! LOOP       ( a : all flags set )
          2 BEGIN dup dup * 400 < WHILE  ( a p )
            dup dup *                    ( a p m )
            BEGIN dup 400 < WHILE
              0 3 pick 2 pick !          ( clear flags[m] )
              over +                     ( m += p )
            REPEAT drop
            1 +
          REPEAT drop
          0 swap                         ( count a )
          400 2 DO dup I @ rot + swap LOOP drop ;
        sieve .
    )"});

    out.push_back({"fib", R"(
        \ Recursive Fibonacci: heavy call/return traffic.
        :: Int fib dup 2 < IF ELSE dup 1 - fib swap 2 - fib + THEN ;
        16 fib .
    )"});

    out.push_back({"arrays", R"(
        \ Array fill, sum and running max over pseudo-random values.
        : mkarr ( n -- a )
          dup array swap 0 DO
            I 31 * 17 + 97 mod over I !
          LOOP ;
        : asum ( a -- s )
          0 swap dup len 0 DO dup I @ rot + swap LOOP drop ;
        : amax ( a -- mx )
          0 swap dup len 0 DO dup I @ rot max swap LOOP drop ;
        64 mkarr dup asum . amax .
        96 mkarr dup asum . amax .
    )"});

    out.push_back({"numeric", R"(
        \ Mixed int/float kernel: dot products and scaling. The same
        \ selectors dispatch on both Int and Float, doubling the ITLB
        \ key population.
        : dotstep ( acc x y -- acc' ) * + ;
        : intsum   0 100 0 DO I I dotstep LOOP ;
        : floatsum 0.0 100 0 DO I 1 * 0.5 + I 2 * 0.25 + dotstep LOOP ;
        intsum . floatsum .
        intsum drop floatsum drop
    )"});

    out.push_back({"atoms", R"(
        \ Atom (symbol) churn: comparisons dispatching on Atom.
        : flipflop 'alpha = IF 'beta ELSE 'alpha THEN ;
        'alpha 60 0 DO flipflop LOOP .
    )"});

    out.push_back({"collatz", R"(
        \ Collatz lengths: data-dependent control flow.
        :: Int next dup 2 mod 0 = IF 2 / ELSE 3 * 1 + THEN ;
        :: Int clen 0 swap BEGIN dup 1 > WHILE next swap 1 + swap
           REPEAT drop ;
        0 60 1 DO I clen max LOOP .
    )"});

    return out;
}

std::string
syntheticProgram(std::uint64_t seed, unsigned num_defs, unsigned calls,
                 const std::string &prefix)
{
    const char *p = prefix.c_str();
    sim::Rng rng(seed);
    std::string src;
    std::vector<bool> is_float(num_defs);

    // Small leaf definitions over Int and Float: arithmetic bodies of
    // varying length so instruction addresses spread out.
    for (unsigned d = 0; d < num_defs; ++d) {
        is_float[d] = rng.chance(0.3);
        src += is_float[d] ? ":: Float " : ":: Int ";
        src += sim::format("%sw%u ", p, d);
        unsigned body = 2 + static_cast<unsigned>(rng.below(6));
        for (unsigned k = 0; k < body; ++k) {
            switch (rng.below(6)) {
              case 0: src += sim::format("%u + ",
                                         1 + (unsigned)rng.below(9));
                      break;
              case 1: src += sim::format("%u * ",
                                         1 + (unsigned)rng.below(5));
                      break;
              case 2: src += sim::format("%u - ",
                                         1 + (unsigned)rng.below(9));
                      break;
              case 3: src += "dup + "; break;
              case 4: src += sim::format("%u max ",
                                         (unsigned)rng.below(50));
                      break;
              default: src += sim::format("%u min ",
                                          50 + (unsigned)rng.below(50));
                       break;
            }
        }
        src += ";\n";
        // A caller wrapping it, to deepen the call graph. The wrapper
        // coerces to float first when the leaf dispatches on Float.
        if (d % 3 == 0)
            src += sim::format(":: Int %sc%u %s%sw%u ;\n", p, d,
                               is_float[d] ? "0.5 + " : "", p, d);
    }

    // A sweep definition touches every word once, so every definition
    // contributes code addresses and an ITLB key (the cold tail).
    src += sim::format(": %ssweep ", p);
    for (unsigned d = 0; d < num_defs; ++d)
        src += sim::format("%u %s%sw%u drop ", 3 + d % 7,
                           is_float[d] ? "0.5 + " : "", p, d);
    src += ";\n";

    // The driver: rotate through a hot subset in a loop (skewed reuse,
    // the way real method populations behave), with periodic sweeps.
    src += sim::format(": %sdriver ", p);
    src += sim::format("%u 0 DO ", calls);
    for (unsigned pick = 0; pick < 12; ++pick) {
        std::uint64_t d = rng.below(num_defs);
        if (rng.chance(0.7))
            d = rng.below(num_defs / 4 + 1); // hot subset
        src += sim::format("I %s%sw%u drop ",
                           is_float[d] ? "0.5 + " : "", p,
                           static_cast<unsigned>(d));
    }
    src += sim::format("I 8 mod 0 = IF %ssweep THEN ", p);
    src += sim::format("LOOP ;\n%sdriver\n", p);
    return src;
}

trace::Trace
collectSuiteTrace(std::uint64_t seed, std::size_t min_entries)
{
    // One machine across rounds: each round's synthetic program gets a
    // unique prefix, so its definitions occupy fresh code addresses and
    // fresh selector tokens -- the trace's working set grows the way a
    // long-running image's does, while the standard programs re-run at
    // their original addresses and provide the hot, reused core.
    FithMachine fm;
    fm.setTracing(true);
    std::uint64_t round = 0;
    while (fm.trace().size() < min_entries) {
        for (const FithProgram &p : standardPrograms()) {
            FithResult r = fm.run(p.source);
            sim::panicIf(!r.ok, "fith workload '", p.name,
                         "' failed: ", r.error);
        }
        std::string prefix = sim::format("r%u_",
                                         static_cast<unsigned>(round));
        FithResult r = fm.run(
            syntheticProgram(seed + round, 96, 120, prefix));
        sim::panicIf(!r.ok, "fith synthetic workload failed: ",
                     r.error);
        ++round;
    }
    return fm.trace();
}

} // namespace com::fith
