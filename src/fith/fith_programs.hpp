/**
 * @file
 * Built-in Fith workloads (paper Section 5 trace sources).
 *
 * The paper traced "large Fith programs", the longest about 20,000
 * instructions. These workloads regenerate comparable traces: a mix of
 * handwritten programs (sieve, recursive fib, bubble sort, numeric
 * kernels, atom churn) plus a deterministic synthetic program generator
 * that produces many small polymorphic definitions called in rotating
 * patterns — matching the method-rich footprint of real Smalltalk-style
 * code, which drives the ITLB and instruction-cache working sets of
 * Figures 10 and 11.
 */

#ifndef COMSIM_FITH_FITH_PROGRAMS_HPP
#define COMSIM_FITH_FITH_PROGRAMS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace com::fith {

/** A named workload. */
struct FithProgram
{
    std::string name;
    std::string source;
};

/** The handwritten workload suite. */
std::vector<FithProgram> standardPrograms();

/**
 * Generate a deterministic synthetic program: @p num_defs small
 * definitions over mixed classes, invoked in @p calls rotating calls.
 * @p prefix namespaces the definitions so successive programs loaded
 * into one machine occupy fresh code addresses and selector tokens.
 */
std::string syntheticProgram(std::uint64_t seed, unsigned num_defs,
                             unsigned calls,
                             const std::string &prefix = "");

/**
 * Run the whole suite (standard + synthetic) and return the combined
 * trace, at least @p min_entries long.
 */
trace::Trace collectSuiteTrace(std::uint64_t seed = 42,
                               std::size_t min_entries = 200'000);

} // namespace com::fith

#endif // COMSIM_FITH_FITH_PROGRAMS_HPP
