/**
 * @file
 * The Fith Machine (paper Section 5).
 *
 * "The Fith language combines the syntax of Forth with the semantics of
 * Smalltalk. Since Fith is a stack based language, the Fith Machine was
 * a stack machine ... however the instruction translation mechanisms of
 * the two machines are identical."
 *
 * Every executed word is an abstract instruction: its meaning depends
 * on the class of the object on top of the stack. Methods are defined
 * per class (`:: Int double 2 * ;`) or for all classes (`: sq dup * ;`,
 * installed under the pseudo-class Any and found when no class-specific
 * method exists — a one-level superclass chain).
 *
 * The interpreter was the paper's trace generator: it recorded, for
 * each instruction interpreted, the address of the instruction, the
 * opcode, and the type of the object on top of the stack. This
 * implementation emits exactly that record stream into trace::Trace for
 * the Figure 10/11 cache experiments.
 *
 * Supported syntax:
 *   - integers (`42`), floats (`3.5`), atoms (`'foo`)
 *   - `: name ... ;` universal definition, `:: Class name ... ;`
 *     class-specific definition (Class in Int Float Atom Array Any)
 *   - IF ... ELSE ... THEN, BEGIN ... UNTIL, BEGIN ... WHILE ... REPEAT,
 *     DO ... LOOP with I and J (case-insensitive control words)
 *   - `( ... )` and `\ ...` comments
 *   - stack words: dup drop swap over rot nip depth
 *   - arithmetic: + - * / mod neg abs min max
 *   - comparison: < <= > >= = <> (push atoms true/false)
 *   - logic on ints: and or xor invert; on booleans: both and or work
 *   - arrays: `n array` (new n-element array), `a i @` fetch,
 *     `v a i !` store, `a len` length
 *   - output: `.` pops and prints to the output buffer
 */

#ifndef COMSIM_FITH_FITH_HPP
#define COMSIM_FITH_FITH_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/word.hpp"
#include "obj/selector_table.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace com::fith {

/** Fith value classes (trace classes). */
enum class FithClass : mem::ClassId
{
    None = 0,
    Int = 1,
    Float = 2,
    Atom = 3,
    Array = 6,
    Any = 15,
};

/** Result of running a Fith program. */
struct FithResult
{
    bool ok = false;
    std::uint64_t steps = 0;
    std::string error;
};

/**
 * The Fith interpreter: tokenizer, compiler (control-flow resolution),
 * per-class dictionaries and the threaded-code executor with trace
 * emission.
 */
class FithMachine
{
  public:
    FithMachine();

    /**
     * Compile and run @p source. Definitions accumulate across calls;
     * top-level code outside definitions executes immediately.
     */
    FithResult run(const std::string &source,
                   std::uint64_t max_steps = 10'000'000);

    /**
     * Compile @p source without executing: definitions are installed
     * and immediate code is emitted but deferred.
     * @return code-space start addresses of the immediate chunks, in
     *         source order — pass to runCompiled() to execute
     */
    std::vector<std::uint32_t> compileSource(const std::string &source);

    /** Execute immediate chunks produced by compileSource(). */
    FithResult runCompiled(const std::vector<std::uint32_t> &starts,
                           std::uint64_t max_steps = 10'000'000);

    /**
     * The compiled form of a program (token table, code space, method
     * dictionary, immediate-chunk starts); defined after the class so
     * it can use the private cell types. Lets a program cache skip
     * re-compilation: capture on a freshly constructed machine after
     * compileSource(), restore onto another freshly constructed
     * machine and call runCompiled() with the captured starts.
     * Primitive token ids are assigned deterministically at
     * construction, so the captured token table is valid on any
     * machine of this class.
     */
    struct CompiledState;

    /** Capture the compiled program (post-compileSource). */
    CompiledState captureCompiled(
        std::vector<std::uint32_t> immediate_starts) const;

    /** Restore a compiled program captured on an identical machine. */
    void restoreCompiled(const CompiledState &s);

    /** Enable/disable trace recording (off by default). */
    void setTracing(bool on) { tracing_ = on; }
    /** The recorded trace. */
    const trace::Trace &trace() const { return trace_; }
    /** Clear the recorded trace. */
    void clearTrace() { trace_.clear(); }

    /** The data stack (top at back) for assertions. */
    const std::vector<mem::Word> &stack() const { return stack_; }
    /** Pop the top of stack (test helper). */
    mem::Word pop();

    /** Output accumulated by `.` and `emit`. */
    const std::string &output() const { return output_; }
    /** Clear the output buffer. */
    void clearOutput() { output_.clear(); }

    /** Total cells in the code space (footprint check). */
    std::size_t codeSize() const { return code_.size(); }
    /** Total dispatched (abstract) instructions executed. */
    std::uint64_t dispatches() const { return dispatches_.value(); }
    /** Full method lookups (misses of the dispatch cache model). */
    std::uint64_t lookups() const { return lookups_.value(); }

  private:
    enum class CellKind : std::uint8_t
    {
        Token,      ///< abstract instruction: dispatch on TOS class
        PushInt,
        PushFloat,
        PushAtom,
        Branch,         ///< unconditional relative branch
        BranchIfFalse,  ///< pops condition
        DoInit,         ///< pops (start, limit) onto the loop stack
        LoopInc,        ///< bump index; branch back while index < limit
        PushIndexI,
        PushIndexJ,
        Exit,           ///< return from definition
    };

    struct Cell
    {
        CellKind kind;
        std::uint32_t op = 0;   ///< token id for Token cells
        std::int32_t arg = 0;   ///< branch offset / literal int
        float farg = 0.0f;
        std::uint32_t atom = 0;
    };

    struct Definition
    {
        std::uint32_t start; ///< code-space address of the first cell
    };

    /** Key for method lookup: (token id, class). */
    using MethodKey = std::uint64_t;
    static MethodKey
    key(std::uint32_t op, FithClass cls)
    {
        return (static_cast<std::uint64_t>(op) << 16) |
               static_cast<std::uint64_t>(cls);
    }

    using Primitive = std::function<bool(FithMachine &)>;

    /** Tokenize, handling comments. */
    static std::vector<std::string> tokenize(const std::string &src);
    /** Compile tokens from @p i into code_, returning past-end index. */
    std::size_t compile(const std::vector<std::string> &toks,
                        std::size_t i, bool in_definition);
    /** Execute the cells starting at @p start until Exit/end. */
    FithResult execute(std::uint32_t start, std::uint64_t max_steps);

    /** Class of the top of stack (None when empty). */
    FithClass tosClass() const;
    void push(mem::Word w) { stack_.push_back(w); }
    bool popTwo(mem::Word &a, mem::Word &b);
    void installPrimitives();
    void prim(const std::string &name, FithClass cls, Primitive fn);

    obj::SelectorTable tokens_;
    std::vector<Cell> code_;
    std::unordered_map<MethodKey, Definition> methods_;
    std::unordered_map<MethodKey, Primitive> primitives_;

    std::vector<mem::Word> stack_;
    std::vector<std::uint32_t> rstack_;
    struct LoopFrame
    {
        std::int32_t index;
        std::int32_t limit;
    };
    std::vector<LoopFrame> loops_;
    std::vector<std::vector<mem::Word>> arrays_;

    bool tracing_ = false;
    trace::Trace trace_;
    std::string output_;
    std::string error_;

    std::uint32_t trueAtom_;
    std::uint32_t falseAtom_;

    sim::Counter dispatches_;
    sim::Counter lookups_;
};

struct FithMachine::CompiledState
{
    obj::SelectorTable tokens;
    std::vector<Cell> code;
    std::unordered_map<MethodKey, Definition> methods;
    std::vector<std::uint32_t> immediateStarts;
};

inline FithMachine::CompiledState
FithMachine::captureCompiled(
    std::vector<std::uint32_t> immediate_starts) const
{
    return CompiledState{tokens_, code_, methods_,
                         std::move(immediate_starts)};
}

inline void
FithMachine::restoreCompiled(const CompiledState &s)
{
    tokens_ = s.tokens;
    code_ = s.code;
    methods_ = s.methods;
}

} // namespace com::fith

#endif // COMSIM_FITH_FITH_HPP
