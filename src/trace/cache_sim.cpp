#include "trace/cache_sim.hpp"

#include "cache/itlb.hpp"
#include "sim/logging.hpp"

namespace com::trace {

namespace {

/** Replay helper shared by the ITLB and icache paths. */
template <typename KeyFn>
SweepPoint
replay(const Trace &t, std::size_t entries, std::size_t ways,
       cache::ReplPolicy policy, double warmup_fraction, KeyFn key_fn)
{
    sim::fatalIf(ways == 0 || entries % ways != 0,
                 "cache entries (", entries,
                 ") must be a multiple of ways (", ways, ")");
    cache::SetAssocCache<std::uint64_t, char> c(entries / ways, ways,
                                                policy, "trace_cache");
    const auto &es = t.entries();
    std::size_t warm = static_cast<std::size_t>(
        static_cast<double>(es.size()) * warmup_fraction);

    for (std::size_t i = 0; i < es.size(); ++i) {
        if (i == warm)
            c.resetStats();
        std::uint64_t key = key_fn(es[i]);
        if (!c.lookup(key))
            c.insert(key, 0);
    }

    SweepPoint p;
    p.entries = entries;
    p.ways = ways;
    p.hits = c.hits();
    p.misses = c.misses();
    p.hitRatio = c.hitRatio();
    return p;
}

/** ITLB key: opcode and operand class, mixed for set spreading. */
std::uint64_t
itlbKey(const Entry &e)
{
    cache::ItlbKey k;
    k.opcode = e.opcode;
    k.classB = e.cls;
    return cache::ItlbKeyHash{}(k);
}

} // namespace

SweepPoint
simulateItlb(const Trace &t, std::size_t entries, std::size_t ways,
             cache::ReplPolicy policy, double warmup_fraction)
{
    return replay(t, entries, ways, policy, warmup_fraction, itlbKey);
}

SweepPoint
simulateIcache(const Trace &t, std::size_t entries, std::size_t ways,
               cache::ReplPolicy policy, double warmup_fraction)
{
    return replay(t, entries, ways, policy, warmup_fraction,
                  [](const Entry &e) {
                      return static_cast<std::uint64_t>(e.address);
                  });
}

std::vector<SweepPoint>
sweepItlb(const Trace &t, const std::vector<std::size_t> &sizes,
          const std::vector<std::size_t> &ways_list,
          double warmup_fraction)
{
    std::vector<SweepPoint> out;
    for (std::size_t ways : ways_list)
        for (std::size_t size : sizes)
            if (size >= ways)
                out.push_back(simulateItlb(t, size, ways,
                                           cache::ReplPolicy::Lru,
                                           warmup_fraction));
    return out;
}

std::vector<SweepPoint>
sweepIcache(const Trace &t, const std::vector<std::size_t> &sizes,
            const std::vector<std::size_t> &ways_list,
            double warmup_fraction)
{
    std::vector<SweepPoint> out;
    for (std::size_t ways : ways_list)
        for (std::size_t size : sizes)
            if (size >= ways)
                out.push_back(simulateIcache(t, size, ways,
                                             cache::ReplPolicy::Lru,
                                             warmup_fraction));
    return out;
}

} // namespace com::trace
