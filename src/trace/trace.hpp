/**
 * @file
 * Instruction traces (paper Section 5 methodology).
 *
 * "Traces of large Fith programs were produced by instrumenting the
 * Fith interpreter ... to record for each instruction interpreted: the
 * address of the instruction, the opcode, and the type of object on the
 * top of the stack."
 *
 * comsim traces carry exactly those three fields. Both the Fith
 * interpreter (fith/) and the COM (core/machine) emit them; the
 * trace-driven cache simulator (trace/cache_sim) replays them against
 * ITLB and instruction cache configurations to regenerate Figures 10
 * and 11.
 */

#ifndef COMSIM_TRACE_TRACE_HPP
#define COMSIM_TRACE_TRACE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "mem/word.hpp"

namespace com::trace {

/** One trace entry: (instruction address, opcode, operand class). */
struct Entry
{
    std::uint32_t address;   ///< instruction address
    std::uint32_t opcode;    ///< opcode / message token
    mem::ClassId cls;        ///< class of the dispatched-on operand

    friend bool
    operator==(const Entry &a, const Entry &b)
    {
        return a.address == b.address && a.opcode == b.opcode &&
               a.cls == b.cls;
    }
};

/** An in-memory instruction trace. */
class Trace
{
  public:
    Trace() = default;

    /** Append one entry. */
    void
    record(std::uint32_t address, std::uint32_t opcode, mem::ClassId cls)
    {
        entries_.push_back(Entry{address, opcode, cls});
    }

    /** Append an entry struct. */
    void record(const Entry &e) { entries_.push_back(e); }

    /** All entries in order. */
    const std::vector<Entry> &entries() const { return entries_; }
    /** Number of entries. */
    std::size_t size() const { return entries_.size(); }
    /** Discard all entries. */
    void clear() { entries_.clear(); }

    /** Count of distinct (opcode, class) pairs (ITLB working set). */
    std::size_t distinctKeys() const;
    /** Count of distinct instruction addresses (icache working set). */
    std::size_t distinctAddresses() const;

    /** Serialize to a compact text form ("addr op cls" per line). */
    std::string toText() const;
    /** Parse the text form produced by toText(). */
    static Trace fromText(const std::string &text);

    /** Save to a file (text form). */
    void save(const std::string &path) const;
    /** Load from a file. */
    static Trace load(const std::string &path);

  private:
    std::vector<Entry> entries_;
};

} // namespace com::trace

#endif // COMSIM_TRACE_TRACE_HPP
