#include "trace/trace.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "sim/logging.hpp"

namespace com::trace {

std::size_t
Trace::distinctKeys() const
{
    std::unordered_set<std::uint64_t> keys;
    for (const Entry &e : entries_)
        keys.insert((static_cast<std::uint64_t>(e.opcode) << 16) |
                    e.cls);
    return keys.size();
}

std::size_t
Trace::distinctAddresses() const
{
    std::unordered_set<std::uint32_t> addrs;
    for (const Entry &e : entries_)
        addrs.insert(e.address);
    return addrs.size();
}

std::string
Trace::toText() const
{
    std::ostringstream os;
    for (const Entry &e : entries_)
        os << e.address << " " << e.opcode << " " << e.cls << "\n";
    return os.str();
}

Trace
Trace::fromText(const std::string &text)
{
    Trace t;
    std::istringstream is(text);
    std::uint64_t a, o, c;
    while (is >> a >> o >> c)
        t.record(static_cast<std::uint32_t>(a),
                 static_cast<std::uint32_t>(o),
                 static_cast<mem::ClassId>(c));
    return t;
}

void
Trace::save(const std::string &path) const
{
    std::ofstream f(path);
    sim::fatalIf(!f, "cannot open trace file '", path, "' for writing");
    f << toText();
}

Trace
Trace::load(const std::string &path)
{
    std::ifstream f(path);
    sim::fatalIf(!f, "cannot open trace file '", path, "'");
    std::ostringstream os;
    os << f.rdbuf();
    return fromText(os.str());
}

} // namespace com::trace
