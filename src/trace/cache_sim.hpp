/**
 * @file
 * Trace-driven cache simulation (paper Section 5).
 *
 * The paper's experiments ran address traces through "a cache simulator
 * which processed address traces to produce cache statistics", with a
 * warmup trace run first "to avoid biasing the results by the initial
 * faulting in of data into the caches". This harness reproduces that
 * methodology: replay a warmup prefix, reset statistics, replay the
 * measurement portion, report hit ratios.
 */

#ifndef COMSIM_TRACE_CACHE_SIM_HPP
#define COMSIM_TRACE_CACHE_SIM_HPP

#include <cstdint>
#include <vector>

#include "cache/set_assoc.hpp"
#include "trace/trace.hpp"

namespace com::trace {

/** One (size, associativity) measurement. */
struct SweepPoint
{
    std::size_t entries;   ///< total cache entries
    std::size_t ways;      ///< associativity
    double hitRatio;       ///< measured on the post-warmup portion
    std::uint64_t hits;
    std::uint64_t misses;
};

/**
 * Replay @p t against an ITLB of the given shape, keyed on
 * (opcode, class) exactly as Section 2.1 specifies.
 *
 * @param warmup_fraction fraction of the trace replayed before the
 *        statistics reset (paper methodology)
 */
SweepPoint simulateItlb(const Trace &t, std::size_t entries,
                        std::size_t ways,
                        cache::ReplPolicy policy = cache::ReplPolicy::Lru,
                        double warmup_fraction = 0.25);

/**
 * Replay @p t against an instruction cache keyed on instruction
 * address (word granular; see EXPERIMENTS.md for the entry-size
 * discussion).
 */
SweepPoint simulateIcache(const Trace &t, std::size_t entries,
                          std::size_t ways,
                          cache::ReplPolicy policy =
                              cache::ReplPolicy::Lru,
                          double warmup_fraction = 0.25);

/**
 * Sweep a cache across sizes and associativities: the Figure 10/11
 * harness. Sizes are entry counts (8..4096 in the paper).
 */
std::vector<SweepPoint>
sweepItlb(const Trace &t, const std::vector<std::size_t> &sizes,
          const std::vector<std::size_t> &ways_list,
          double warmup_fraction = 0.25);

/** Icache counterpart of sweepItlb. */
std::vector<SweepPoint>
sweepIcache(const Trace &t, const std::vector<std::size_t> &sizes,
            const std::vector<std::size_t> &ways_list,
            double warmup_fraction = 0.25);

} // namespace com::trace

#endif // COMSIM_TRACE_CACHE_SIM_HPP
