/**
 * @file
 * Lightweight hot-path profiler for superblock promotion.
 *
 * The trace machinery of Section 5 records full per-instruction streams
 * for offline cache experiments; this is its minimal online counterpart.
 * The interpreter reports every straight-line entry point it lands on
 * (the target of a control transfer), and the profiler counts entries
 * per absolute address in a direct-mapped table. When a counter reaches
 * the promotion threshold the machine translates the straight-line
 * sequence starting there into a superblock (core/superblock.hpp).
 *
 * Direct-mapped on the low address bits with conflict stealing: a
 * colliding address resets the slot and starts counting for itself.
 * That loses counts under heavy aliasing, which only delays promotion —
 * never affects correctness (superblock execution is bit-identical to
 * interpretation, so when a block forms is guest-invisible).
 */

#ifndef COMSIM_TRACE_HOTPATH_HPP
#define COMSIM_TRACE_HOTPATH_HPP

#include <cstdint>
#include <vector>

#include "sim/logging.hpp"

namespace com::trace {

/** Direct-mapped entry-point counter table. */
class HotPathProfiler
{
  public:
    /** @param slots power-of-two table size */
    explicit HotPathProfiler(std::size_t slots = 2048)
        : slots_(slots), mask_(slots - 1)
    {
        sim::fatalIf(slots == 0 || (slots & (slots - 1)) != 0,
                     "hot-path table size must be a power of two, got ",
                     slots);
    }

    /**
     * Count one entry of the straight-line sequence at @p abs.
     * @return the updated count (1 on first sight or after a conflict
     *         stole the slot).
     */
    std::uint32_t
    bump(std::uint64_t abs)
    {
        Slot &s = slots_[static_cast<std::size_t>(abs) & mask_];
        if (s.abs != abs) {
            s.abs = abs;
            s.count = 0;
        }
        return ++s.count;
    }

    /** Forget all counts (machine reset / image restore). */
    void
    clear()
    {
        for (Slot &s : slots_) {
            s.abs = kEmpty;
            s.count = 0;
        }
    }

    /** Table size in slots. */
    std::size_t size() const { return slots_.size(); }

  private:
    static constexpr std::uint64_t kEmpty = ~0ull;

    struct Slot
    {
        std::uint64_t abs = kEmpty;
        std::uint32_t count = 0;
    };

    std::vector<Slot> slots_;
    std::size_t mask_;
};

} // namespace com::trace

#endif // COMSIM_TRACE_HOTPATH_HPP
