/**
 * @file
 * Prometheus text-exposition rendering of serve::Metrics::Snapshot.
 *
 * One function, no dependencies on the transport: the socket server
 * answers a plain-HTTP GET on its frame port with this text (see
 * net/server.hpp), the router serves the fleet-merged snapshot the
 * same way, and comsim_stat --prom prints it for piping.
 *
 * Format contract (prometheus.io/docs/instrumenting/exposition_formats):
 *   - every metric is preceded by `# HELP` and `# TYPE` lines;
 *   - counters end in `_total`;
 *   - each log-bucket LatencyHistogram renders as a cumulative
 *     histogram: `_bucket{le="..."}` series (le = the bucket's upper
 *     bound, 2^(i+1) microseconds, in seconds), a final
 *     `_bucket{le="+Inf"}`, then `_sum` and `_count`. Trailing empty
 *     buckets are elided (the cumulative counts stay exact).
 * tests/test_obs_prometheus.cpp pins these invariants and CI lints
 * the scraped output with an independent checker.
 */

#ifndef COMSIM_SERVE_PROMETHEUS_HPP
#define COMSIM_SERVE_PROMETHEUS_HPP

#include <string>

#include "serve/metrics.hpp"

namespace com::serve {

/** Render @p s in the Prometheus text exposition format. */
std::string renderPrometheus(const Metrics::Snapshot &s);

} // namespace com::serve

#endif // COMSIM_SERVE_PROMETHEUS_HPP
