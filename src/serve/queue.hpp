/**
 * @file
 * A bounded, thread-safe request queue with batch-coalescing pop.
 *
 * This is the admission-control point of the serving layer: tryPush()
 * refuses work when the queue is at capacity (callers turn that into
 * a Rejected response immediately, instead of letting an overloaded
 * server build an unbounded backlog), while push() blocks — the
 * closed-loop/back-pressure mode a load generator uses for maximum
 * throughput.
 *
 * popBatch() is where batching starts: it takes the oldest request
 * and, under the same lock, extracts every queued request with the
 * same batch key (engine kind + language + source text, see
 * ServeRequest::sameBatch) up to the batch limit. The scheduler runs
 * the whole batch on ONE session checkout, so the memoized compile
 * and the end-of-checkout reset amortize across the batch.
 */

#ifndef COMSIM_SERVE_QUEUE_HPP
#define COMSIM_SERVE_QUEUE_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/metrics.hpp"
#include "serve/request.hpp"

namespace com::serve {

class RequestQueue
{
  public:
    /**
     * @param capacity admission limit (>= 1)
     * @param metrics queue-depth sink (may be null)
     */
    explicit RequestQueue(std::size_t capacity,
                          Metrics *metrics = nullptr)
        : capacity_(capacity == 0 ? 1 : capacity), metrics_(metrics)
    {
    }

    /**
     * Admission-controlled enqueue. @return false — leaving @p req
     * untouched — when the queue is full or closed.
     */
    bool
    tryPush(ServeRequest &&req)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || q_.size() >= capacity_)
                return false;
            q_.push_back(std::move(req));
            noteDepthLocked();
        }
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Blocking enqueue: waits for space instead of rejecting (the
     * back-pressure path). @return false only if the queue closed
     * while waiting.
     */
    bool
    push(ServeRequest &&req)
    {
        {
            std::unique_lock<std::mutex> lock(mu_);
            notFull_.wait(lock, [this] {
                return closed_ || q_.size() < capacity_;
            });
            if (closed_)
                return false;
            q_.push_back(std::move(req));
            noteDepthLocked();
        }
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Pop the oldest request plus every queued request with the same
     * batch key, up to @p max_batch total. Blocks while the queue is
     * empty and open; @return an empty vector once the queue is
     * closed AND drained (the worker-exit signal).
     */
    std::vector<ServeRequest>
    popBatch(std::size_t max_batch)
    {
        std::vector<ServeRequest> batch;
        {
            std::unique_lock<std::mutex> lock(mu_);
            notEmpty_.wait(lock,
                           [this] { return closed_ || !q_.empty(); });
            if (q_.empty())
                return batch; // closed and drained
            batch.push_back(std::move(q_.front()));
            q_.pop_front();
            for (auto it = q_.begin();
                 it != q_.end() && batch.size() < max_batch;) {
                if (batch.front().sameBatch(*it)) {
                    batch.push_back(std::move(*it));
                    it = q_.erase(it);
                } else {
                    ++it;
                }
            }
            if (metrics_)
                metrics_->countDequeued(batch.size());
        }
        notFull_.notify_all();
        return batch;
    }

    /**
     * Refuse new work. Waiting poppers drain what is queued, then
     * get empty batches; waiting pushers return false.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    /** Requests currently queued. */
    std::size_t
    depth() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return q_.size();
    }

    /** @return true once close() ran (no new work accepted). */
    bool
    isClosed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

    /** Admission limit. */
    std::size_t capacity() const { return capacity_; }

  private:
    void
    noteDepthLocked()
    {
        if (metrics_)
            metrics_->countEnqueued();
    }

    const std::size_t capacity_;
    Metrics *metrics_;
    mutable std::mutex mu_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<ServeRequest> q_;
    bool closed_ = false;
};

} // namespace com::serve

#endif // COMSIM_SERVE_QUEUE_HPP
