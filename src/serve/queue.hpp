/**
 * @file
 * A bounded, thread-safe request queue with deadline-aware ordering
 * and batch-coalescing pop.
 *
 * This is the admission-control point of the serving layer: tryPush()
 * refuses work when the queue is at capacity (callers turn that into
 * a Rejected response immediately, instead of letting an overloaded
 * server build an unbounded backlog), while push() blocks — the
 * closed-loop/back-pressure mode a load generator uses for maximum
 * throughput. offer() adds the overload-shedding variant: when the
 * queue is full, an urgent request may displace the least urgent
 * queued one (lowest-priority-first, latest-deadline within a class),
 * which the caller completes as shed with a retry-after hint.
 *
 * Ordering (Order::Edf, the default): requests dequeue by
 * (priority, deadline, arrival seq) — interactive before batch before
 * best-effort, earliest absolute deadline first within a class, FIFO
 * among equals. Deadline-less requests sort after deadlined ones of
 * the same class (kNoDeadline is time_point::max), so with no
 * deadlines and one class the order degenerates to exact FIFO.
 * Order::Fifo ignores priority and deadline entirely — the measured
 * baseline the EDF A/B compares against — and never displaces.
 *
 * Aging (Edf only, off by default): strict priority order starves
 * best-effort work under a sustained interactive load. With a nonzero
 * aging window, a queued request that has waited longer than the
 * window since submission is boosted once — re-keyed to the top
 * priority class with its submission time as the deadline, so aged
 * requests interleave with interactive ones in submission order and
 * are no longer displacement victims. The boost changes only the
 * queue key, never the request's own priority field (metrics and
 * responses still report the class the client asked for). This bounds
 * the wait of any admitted request by roughly the aging window plus
 * the drain time of the interactive work submitted before it.
 *
 * popBatch() is where batching starts: it takes the head and, under
 * the same lock, extracts every queued request with the same batch
 * key (engine kind + language + source text, see
 * ServeRequest::sameBatch) up to the batch limit. The scheduler runs
 * the whole batch on ONE session checkout, so the memoized compile
 * and the end-of-checkout reset amortize across the batch. The
 * coalescing scan is bounded (coalesceScan candidates past the head):
 * an unbounded scan held the lock for O(queue) per pop, turning a
 * deep queue of unique-source requests into O(n^2) total dequeue
 * work.
 */

#ifndef COMSIM_SERVE_QUEUE_HPP
#define COMSIM_SERVE_QUEUE_HPP

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "serve/metrics.hpp"
#include "serve/request.hpp"

namespace com::serve {

class RequestQueue
{
  public:
    /** Dequeue policy. */
    enum class Order : std::uint8_t
    {
        Edf,  ///< (priority, deadline, arrival) — the default
        Fifo, ///< arrival only — the A/B baseline; never displaces
    };

    /** How offer() disposed of a request. */
    enum class Admit : std::uint8_t
    {
        Queued,    ///< inserted; queue had room
        Displaced, ///< inserted; the least urgent request was evicted
        Full,      ///< refused — nothing queued is less urgent
        Closed,    ///< refused — the queue no longer accepts work
    };

    /** Default bound on the coalescing scan past the head. */
    static constexpr std::size_t kDefaultCoalesceScan = 64;

    /**
     * @param capacity admission limit (>= 1)
     * @param metrics queue-depth sink (may be null)
     * @param order dequeue policy (see Order)
     * @param coalesce_scan batch-mate candidates examined past the
     *        head per pop (>= 1; bounds lock hold time)
     * @param aging boost a request queued longer than this to the top
     *        priority class (zero disables; Edf only)
     */
    explicit RequestQueue(std::size_t capacity,
                          Metrics *metrics = nullptr,
                          Order order = Order::Edf,
                          std::size_t coalesce_scan =
                              kDefaultCoalesceScan,
                          std::chrono::nanoseconds aging =
                              std::chrono::nanoseconds{0})
        : capacity_(capacity == 0 ? 1 : capacity), metrics_(metrics),
          order_(order),
          coalesceScan_(coalesce_scan == 0 ? 1 : coalesce_scan),
          aging_(order == Order::Edf ? aging
                                     : std::chrono::nanoseconds{0})
    {
    }

    /**
     * Admission-controlled enqueue. @return false — leaving @p req
     * untouched — when the queue is full or closed.
     */
    bool
    tryPush(ServeRequest &&req)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || q_.size() >= capacity_)
                return false;
            insertLocked(std::move(req));
            noteDepthLocked();
        }
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Shedding enqueue: like tryPush, but a full EDF queue admits
     * @p req anyway when some queued request is strictly less urgent
     * (greater Priority value) — that victim moves to @p displaced
     * and the caller completes it as shed. On Full or Closed, @p req
     * is left untouched; @p displaced is written only on Displaced.
     */
    Admit
    offer(ServeRequest &&req, ServeRequest *displaced)
    {
        Admit verdict;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_)
                return Admit::Closed;
            if (q_.size() < capacity_) {
                insertLocked(std::move(req));
                noteDepthLocked();
                verdict = Admit::Queued;
            } else {
                if (order_ != Order::Edf)
                    return Admit::Full;
                auto victim = std::prev(q_.end());
                if (victim->first.priority <=
                    static_cast<std::uint8_t>(req.priority))
                    return Admit::Full;
                *displaced = std::move(victim->second);
                q_.erase(victim);
                insertLocked(std::move(req));
                // Depth is unchanged: one out, one in.
                verdict = Admit::Displaced;
            }
        }
        notEmpty_.notify_one();
        return verdict;
    }

    /**
     * Blocking enqueue: waits for space instead of rejecting (the
     * back-pressure path). @return false only if the queue closed
     * while waiting.
     */
    bool
    push(ServeRequest &&req)
    {
        {
            std::unique_lock<std::mutex> lock(mu_);
            notFull_.wait(lock, [this] {
                return closed_ || q_.size() < capacity_;
            });
            if (closed_)
                return false;
            insertLocked(std::move(req));
            noteDepthLocked();
        }
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Pop the head request (per Order) plus every queued request with
     * the same batch key among the next coalesceScan candidates, up
     * to @p max_batch total. Blocks while the queue is empty and
     * open; @return an empty vector once the queue is closed AND
     * drained (the worker-exit signal).
     */
    std::vector<ServeRequest>
    popBatch(std::size_t max_batch)
    {
        std::vector<ServeRequest> batch;
        {
            std::unique_lock<std::mutex> lock(mu_);
            notEmpty_.wait(lock,
                           [this] { return closed_ || !q_.empty(); });
            if (q_.empty())
                return batch; // closed and drained
            boostAgedLocked();
            batch.push_back(std::move(q_.begin()->second));
            q_.erase(q_.begin());
            std::size_t scanned = 0;
            for (auto it = q_.begin();
                 it != q_.end() && batch.size() < max_batch &&
                 scanned < coalesceScan_;
                 ++scanned) {
                if (batch.front().sameBatch(it->second)) {
                    batch.push_back(std::move(it->second));
                    it = q_.erase(it);
                } else {
                    ++it;
                }
            }
            if (metrics_)
                metrics_->countDequeued(batch.size());
        }
        notFull_.notify_all();
        return batch;
    }

    /**
     * Refuse new work. Waiting poppers drain what is queued, then
     * get empty batches; waiting pushers return false.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    /** Requests currently queued. */
    std::size_t
    depth() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return q_.size();
    }

    /** @return true once close() ran (no new work accepted). */
    bool
    isClosed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

    /** Admission limit. */
    std::size_t capacity() const { return capacity_; }

    /** Dequeue policy. */
    Order order() const { return order_; }

  private:
    /** Dequeue order: smallest key pops first. Under Order::Fifo the
     *  priority and deadline components are pinned, leaving seq. */
    struct OrderKey
    {
        std::uint8_t priority = 0;
        Clock::time_point deadline{};
        std::uint64_t seq = 0;

        bool
        operator<(const OrderKey &o) const
        {
            if (priority != o.priority)
                return priority < o.priority;
            if (deadline != o.deadline)
                return deadline < o.deadline;
            return seq < o.seq;
        }
    };

    void
    insertLocked(ServeRequest &&req)
    {
        OrderKey key;
        key.seq = nextSeq_++;
        if (order_ == Order::Edf) {
            key.priority = static_cast<std::uint8_t>(req.priority);
            key.deadline = req.deadline;
        }
        // Aging watches non-top-priority entries. The boost scan
        // walks the watch list front to back and stops at the first
        // non-aged record, which is only a valid early-out because
        // submission times are non-decreasing in insertion order
        // (the scheduler stamps them at submit time).
        if (aging_ > std::chrono::nanoseconds{0} && key.priority != 0)
            aged_.push_back(AgeRecord{key, req.submitted});
        q_.emplace(key, std::move(req));
    }

    void
    noteDepthLocked()
    {
        if (metrics_)
            metrics_->countEnqueued();
    }

    /**
     * Re-key every watched request that has waited past the aging
     * window into the top priority class with its submission time as
     * the deadline. Boosted entries leave the watch list (the boost
     * happens at most once) and are no longer displacement victims.
     * Records whose request already left the queue (popped, coalesced
     * into a batch, or displaced) just fall off the watch list; the
     * scan stops at the first non-aged record (see insertLocked).
     */
    void
    boostAgedLocked()
    {
        if (aging_ <= std::chrono::nanoseconds{0} || aged_.empty())
            return;
        Clock::time_point now = Clock::now();
        while (!aged_.empty()) {
            const AgeRecord &rec = aged_.front();
            if (now - rec.submitted < aging_)
                break;
            auto it = q_.find(rec.key);
            if (it != q_.end()) {
                OrderKey boosted;
                boosted.priority = 0;
                boosted.deadline = rec.submitted;
                boosted.seq = rec.key.seq;
                ServeRequest req = std::move(it->second);
                q_.erase(it);
                q_.emplace(boosted, std::move(req));
            }
            aged_.pop_front();
        }
    }

    /** One aging watch: where the request was keyed at insert, and
     *  when its wait began. */
    struct AgeRecord
    {
        OrderKey key;
        Clock::time_point submitted{};
    };

    const std::size_t capacity_;
    Metrics *metrics_;
    const Order order_;
    const std::size_t coalesceScan_;
    const std::chrono::nanoseconds aging_;
    mutable std::mutex mu_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::map<OrderKey, ServeRequest> q_;
    std::deque<AgeRecord> aged_;
    std::uint64_t nextSeq_ = 0;
    bool closed_ = false;
};

} // namespace com::serve

#endif // COMSIM_SERVE_QUEUE_HPP
