/**
 * @file
 * Serving metrics: latency histograms, batch sizes, queue depth and
 * worker utilization.
 *
 * Every counter is lock-free (relaxed atomics updated from the
 * scheduler's hot path); snapshot() folds them into a plain struct
 * for reporting. The latency histogram uses power-of-two microsecond
 * buckets — percentile queries (p50/p95/p99) resolve to the geometric
 * midpoint of the containing bucket, which is plenty for a trajectory
 * number (the load generator also computes exact percentiles from its
 * own recorded latencies; this histogram is what the *scheduler* can
 * report without remembering every request).
 */

#ifndef COMSIM_SERVE_METRICS_HPP
#define COMSIM_SERVE_METRICS_HPP

#include <array>
#include <atomic>
#include <cstdint>

#include "serve/request.hpp"

namespace com::serve {

/**
 * A fixed-bucket log-scale histogram of latencies. Bucket i counts
 * samples in [2^i, 2^(i+1)) microseconds; bucket 0 also absorbs
 * sub-microsecond samples. Thread-safe for concurrent record().
 */
class LatencyHistogram
{
  public:
    /** Buckets cover up to ~2^39 µs (~6 days) — effectively open. */
    static constexpr std::size_t kBuckets = 40;

    /** Count one latency sample. */
    void record(double seconds);

    struct Snapshot
    {
        std::uint64_t count = 0;
        double meanSeconds = 0.0;
        double maxSeconds = 0.0;
        double p50Seconds = 0.0;
        double p95Seconds = 0.0;
        double p99Seconds = 0.0;
        /** The raw bucket counts behind the percentiles ([2^i,
         *  2^(i+1)) µs each), so snapshots from different histograms
         *  — or different *processes* — can be combined exactly. */
        std::array<std::uint64_t, kBuckets> buckets{};

        /**
         * Fold @p other into this snapshot: bucket counts and moments
         * sum (the mean is count-weighted, the max is the larger),
         * percentiles are recomputed from the combined buckets.
         */
        void merge(const Snapshot &other);

        /**
         * @return @p after minus @p before — the histogram of just
         * the samples recorded between the two snapshots of one
         * monotonically-growing histogram. Bucket counts subtract
         * clamped at zero (a restarted worker's counters reset, so a
         * raw subtraction could go negative — see counterDelta in
         * bench/serve.cpp); the count is the clamped bucket sum so
         * percentiles stay consistent with the buckets, the mean is
         * recomputed from the clamped nano sums, and the max is
         * @p after's (a lifetime max cannot be windowed — it is an
         * upper bound for the interval).
         */
        static Snapshot delta(const Snapshot &after,
                              const Snapshot &before);
    };

    /** Fold the counters into percentiles (approximate, see file
     *  comment) and moments (exact). */
    Snapshot snapshot() const;

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sumNanos_{0};
    std::atomic<std::uint64_t> maxNanos_{0};
};

/**
 * The scheduler's aggregate counters. One Metrics instance covers all
 * shards; shard-local state (queue depth) reports through it so a
 * single snapshot describes the whole serving layer.
 */
class Metrics
{
  public:
    struct Snapshot
    {
        std::uint64_t submitted = 0;
        std::uint64_t served = 0; ///< Ok responses
        std::uint64_t failed = 0;
        std::uint64_t rejected = 0;
        std::uint64_t expired = 0;
        std::uint64_t batches = 0; ///< session checkouts that ran work
        double meanBatch = 0.0;    ///< requests per checkout
        std::uint64_t maxBatch = 0;
        /** Deepest the queues got (summed across shards). */
        std::uint64_t maxQueueDepth = 0;
        std::uint64_t queueDepth = 0; ///< at snapshot time, all shards
        /** Fraction of worker-seconds spent holding a session,
         *  given the observed wall time (0 when unknown). */
        double utilization = 0.0;
        LatencyHistogram::Snapshot latency;

        // Per-stage latency breakdown (the span-tracing tentpole):
        // where a request's end-to-end latency went. Counts differ —
        // every completed request records queue/pool waits, only
        // requests that reached an engine record execute/verify, and
        // only warm-started runs record a warm restore.
        LatencyHistogram::Snapshot queueWait; ///< submitted->dequeued
        LatencyHistogram::Snapshot poolWait; ///< dequeued->session
        LatencyHistogram::Snapshot warmRestore; ///< image restore
        LatencyHistogram::Snapshot execute;     ///< engine run wall
        LatencyHistogram::Snapshot verify;      ///< checksum check

        /** Completed-request latency split by service class (the
         *  aggregate `latency` histogram counts every class). */
        std::array<LatencyHistogram::Snapshot, kNumPriorities>
            latencyByPriority{};
        /** Requests shed under overload, per service class — the
         *  Rejected-with-retry-after subset of `rejected`. */
        std::array<std::uint64_t, kNumPriorities> shed{};
        /** The adaptive batch-size ceiling currently in effect
         *  (largest across shards; merge takes the larger). Zero
         *  when the scheduler does not fill it in. */
        std::uint64_t batchCap = 0;

        // Raw ingredients behind the derived numbers, kept so
        // snapshots can be merged (router-side aggregation across
        // worker processes) and diffed (a benchmark isolating one
        // scenario on a long-lived server) without losing exactness.
        std::uint64_t batchedRequests = 0; ///< Σ batch sizes
        std::uint64_t workers = 0;         ///< worker threads covered
        double wallSeconds = 0.0;          ///< observed serving wall
        double busySeconds = 0.0;          ///< Σ session-held seconds
        /** Utilization denominator: Σ wall×workers per source. */
        double workerSeconds = 0.0;

        // Program-cache counters, summed across the shards' caches.
        // Metrics::snapshot() leaves these zero (the caches live in
        // the pools, not here); Scheduler::metricsSnapshot() fills
        // them in. All zero when caching is off.
        std::uint64_t cacheHits = 0;
        std::uint64_t cacheMisses = 0;
        std::uint64_t cacheInstalls = 0;
        std::uint64_t cacheEvictions = 0;
        std::uint64_t warmStarts = 0;
        /** Mean time one warm start spent restoring (seconds). */
        double warmStartMeanSeconds = 0.0;
        /** Total warm-start restore time (merge ingredient). */
        std::uint64_t warmStartNanos = 0;

        /**
         * Fold @p other into this snapshot. Counters and raw
         * ingredients sum; meanBatch, utilization and the warm-start
         * mean are recomputed from the summed ingredients (so merging
         * is exact, not an average of averages); maxima take the
         * larger (wallSeconds too — parallel processes overlap, their
         * walls do not add); queue depths sum (the combined system's
         * total backlog). The latency histograms merge bucket-wise.
         * Router-side aggregation of per-worker-process snapshots and
         * any future multi-scheduler caller both use this.
         */
        void merge(const Snapshot &other);
    };

    void
    countSubmitted()
    {
        submitted_.fetch_add(1, std::memory_order_relaxed);
    }
    void
    countOutcome(bool ok)
    {
        (ok ? served_ : failed_).fetch_add(1, std::memory_order_relaxed);
    }
    void
    countRejected()
    {
        rejected_.fetch_add(1, std::memory_order_relaxed);
    }
    void
    countExpired()
    {
        expired_.fetch_add(1, std::memory_order_relaxed);
    }
    /** One request of class @p p was shed under overload (counted
     *  against `rejected` separately by the caller). */
    void
    countShed(Priority p)
    {
        shed_[static_cast<std::size_t>(p)].fetch_add(
            1, std::memory_order_relaxed);
    }

    /** One batch of @p size requests ran on one session checkout. */
    void recordBatch(std::uint64_t size);

    /** One request entered a queue. Counts the global (all-shard)
     *  depth so the gauge and its max are exact totals, not one
     *  shard's last write. */
    void countEnqueued();
    /** @p n requests left a queue. */
    void
    countDequeued(std::uint64_t n)
    {
        queueDepth_.fetch_sub(n, std::memory_order_relaxed);
    }

    /** A worker spent @p nanos holding a session. */
    void
    addBusyNanos(std::uint64_t nanos)
    {
        busyNanos_.fetch_add(nanos, std::memory_order_relaxed);
    }

    /** Latency of completed (served/failed/expired) requests. */
    LatencyHistogram &
    latency()
    {
        return latency_;
    }

    /** The per-class slice of latency() (same samples, split). */
    LatencyHistogram &
    latencyFor(Priority p)
    {
        return latencyByPriority_[static_cast<std::size_t>(p)];
    }

    // Stage histograms (see Snapshot's stage fields). All relaxed-
    // atomic like latency(): stamping is a few fetch_adds per
    // request per stage, cheap enough for the hot path.
    LatencyHistogram &queueWait() { return queueWait_; }
    LatencyHistogram &poolWait() { return poolWait_; }
    LatencyHistogram &warmRestore() { return warmRestore_; }
    LatencyHistogram &execute() { return execute_; }
    LatencyHistogram &verify() { return verify_; }

    /**
     * @param wallSeconds observed serving wall time (for utilization;
     *        pass 0 when unknown)
     * @param workers total scheduler worker threads
     */
    Snapshot snapshot(double wallSeconds, std::size_t workers) const;

  private:
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> served_{0};
    std::atomic<std::uint64_t> failed_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> expired_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> batchedRequests_{0};
    std::atomic<std::uint64_t> maxBatch_{0};
    std::atomic<std::uint64_t> maxQueueDepth_{0};
    std::atomic<std::uint64_t> queueDepth_{0};
    std::atomic<std::uint64_t> busyNanos_{0};
    std::array<std::atomic<std::uint64_t>, kNumPriorities> shed_{};
    LatencyHistogram latency_;
    LatencyHistogram queueWait_;
    LatencyHistogram poolWait_;
    LatencyHistogram warmRestore_;
    LatencyHistogram execute_;
    LatencyHistogram verify_;
    std::array<LatencyHistogram, kNumPriorities> latencyByPriority_;
};

} // namespace com::serve

#endif // COMSIM_SERVE_METRICS_HPP
