/**
 * @file
 * The batch scheduler: the serving layer's front door.
 *
 * PR 2's bench_serve paid one session checkout, one (memoized but
 * freshly reset, so cold) compile and one reset per request. The
 * scheduler turns that into a served system:
 *
 *   submit / trySubmit
 *        |  shard router: hash(source) -> one of N shards, so one
 *        |  program's requests meet in one queue (compile-cache
 *        v  locality) and shards contend on independent locks
 *   RequestQueue (bounded; tryPush rejects when full — admission
 *        |  control — and every request carries an optional deadline)
 *        v
 *   worker threads: popBatch() coalesces same-(kind, language,
 *        source) requests, checks one session out of the shard's
 *        EnginePool via tryCheckoutFor (re-checking deadlines while
 *        blocked), runs the whole batch on that session — ONE compile,
 *        ONE reset, k runs — and completes each request's future.
 *
 * Responses are checksum-verified where the spec carries an expected
 * value (a mismatch is a Failed response, never a silently wrong Ok).
 * Metrics (serve/metrics.hpp) record queue depth, batch sizes, worker
 * utilization and a latency histogram.
 */

#ifndef COMSIM_SERVE_SCHEDULER_HPP
#define COMSIM_SERVE_SCHEDULER_HPP

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "serve/flight_recorder.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"

namespace com::serve {

/**
 * The shard a program's source text routes to, out of @p shards.
 *
 * FNV-1a on the bytes — deliberately NOT std::hash: the wire-protocol
 * router (net/router.hpp) must shard across worker *processes* with
 * the same function the in-process scheduler uses across its shards,
 * so one program's requests always land on one worker's (hot) caches.
 * A stable, implementation-independent hash makes that a contract
 * instead of a coincidence.
 */
std::size_t sourceShard(const std::string &source, std::size_t shards);

/**
 * The load-adaptive batch ceiling: the next cap given the @p current
 * one and the shard queue's @p depth just after a pop. Shallow queues
 * shrink the cap toward 1 (latency mode: a request never waits for
 * batch-mates that are not coming); a backlog of @p max_batch or more
 * doubles it toward @p max_batch (throughput mode: amortize the
 * checkout). Depths between max_batch/4 and max_batch hold the cap
 * steady — the hysteresis band that keeps a borderline load from
 * flapping. Pure function, unit-tested directly.
 */
std::size_t adaptBatchCap(std::size_t current, std::size_t depth,
                          std::size_t max_batch);

class Scheduler
{
  public:
    struct Config
    {
        /** Independent shards (queue + pool each); >= 1. */
        std::size_t shards = 1;
        /** Worker threads per shard; >= 1. */
        std::size_t workersPerShard = 2;
        /** Per-shard queue capacity (admission limit). */
        std::size_t queueCapacity = 1024;
        /** Most requests one session checkout may serve. */
        std::size_t maxBatch = 32;
        /** How long a worker waits for an engine before re-checking
         *  its batch's deadlines. */
        std::chrono::nanoseconds checkoutTimeout =
            std::chrono::milliseconds(5);
        /** Per-shard engine pool sizing. */
        api::EnginePool::Config pool{};
        /**
         * Capacity of each shard's compiled-program cache (0 turns
         * caching off). One cache per shard, shared by the shard's
         * engines: the shard router already sends one program's
         * requests to one shard, so a hot program compiles once per
         * shard and every later request warm-starts from the cached
         * image. Ignored when pool.programCache is set explicitly.
         */
        std::size_t programCacheCapacity = 64;
        /**
         * Per-shard flight-recorder ring capacity: the last N
         * completed-request spans stay inspectable (SIGUSR1 dump,
         * TraceRequest over the wire). 0 disables recording.
         */
        std::size_t flightRecorderCapacity = 256;
        /**
         * Requests whose total latency exceeds this keep their full
         * span in the recorder's slow capture (zero disables; see
         * FlightRecorder).
         */
        std::chrono::nanoseconds slowThreshold{0};
        /**
         * Dequeue policy: Edf (the default) orders each shard's
         * queue by (priority, deadline, arrival) and sheds the least
         * urgent request when a full queue receives a more urgent
         * one; Fifo is the measured baseline — arrival order only,
         * no displacement.
         */
        RequestQueue::Order queueOrder = RequestQueue::Order::Edf;
        /** Bound on popBatch's same-source coalescing scan (lock
         *  hold time per pop). */
        std::size_t coalesceScan = RequestQueue::kDefaultCoalesceScan;
        /**
         * Deadline aging: a queued request waiting longer than this
         * many milliseconds is boosted once to the top priority
         * class, bounding best-effort starvation under sustained
         * higher-priority load (0 disables; Edf only — see
         * RequestQueue).
         */
        std::uint64_t agingMs = 0;
        /** Construct started (serving). Tests construct stopped,
         *  queue deterministic backlogs, then call start(). */
        bool autoStart = true;
    };

    explicit Scheduler(const Config &cfg);

    /** stop()s and joins the workers; queued requests drain first. */
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Admission-controlled submit: if the target shard's queue is
     * full (or the scheduler is stopped, or the pools hold no
     * engine of @p kind at all), the returned future is already
     * resolved to a Rejected response. Never blocks.
     */
    std::future<Response>
    trySubmit(api::EngineKind kind, api::ProgramSpec spec,
              Clock::time_point deadline = kNoDeadline,
              Priority priority = Priority::Interactive);

    /**
     * Back-pressure submit: blocks until the target shard's queue
     * has room. Only rejects when the scheduler stops while waiting.
     */
    std::future<Response>
    submit(api::EngineKind kind, api::ProgramSpec spec,
           Clock::time_point deadline = kNoDeadline,
           Priority priority = Priority::Interactive);

    /** How offer() disposed of a request. */
    enum class Admission : std::uint8_t
    {
        Accepted,  ///< queued; @p out is the live future
        QueueFull, ///< hold the request and retry; @p spec returned
        Stopped,   ///< @p out is an already-Rejected future
        NoEngine,  ///< @p out is an already-Rejected future
    };

    /**
     * Nonblocking submit for callers that can *hold* work instead of
     * rejecting it — the socket server (net/server.hpp) parks the
     * request and stops reading its connection, turning a full shard
     * queue into TCP back-pressure on the sender. On QueueFull, @p
     * spec is handed back intact, nothing is counted against the
     * metrics, and no future exists; every other result behaves like
     * trySubmit. @p submitted is when the request first arrived (a
     * parked-and-retried request's latency runs from its original
     * receipt, not the retry); pass Clock::now() for fresh work.
     */
    Admission offer(api::EngineKind kind, api::ProgramSpec &spec,
                    Clock::time_point deadline,
                    Clock::time_point submitted,
                    std::future<Response> *out,
                    Priority priority = Priority::Interactive);

    /** Start the worker threads (no-op when already started). */
    void start();

    /**
     * Stop accepting work and join the workers. Already-queued
     * requests are served (drain, not abandon) — their futures all
     * resolve before stop() returns.
     */
    void stop();

    /** Shard @p spec routes to: hash of the source text. */
    std::size_t shardFor(const api::ProgramSpec &spec) const;

    /** A shard's engine pool (accounting inspection). */
    api::EnginePool &pool(std::size_t shard);

    /** A shard's program cache (nullptr when caching is off). */
    const std::shared_ptr<api::ProgramCache> &
    programCache(std::size_t shard);

    std::size_t shardCount() const { return shards_.size(); }
    /** Total worker threads across shards. */
    std::size_t
    workerCount() const
    {
        return shards_.size() * workersPerShard_;
    }

    /** The live counters (latency histogram, batch stats, ...). */
    Metrics &metrics() { return metrics_; }

    /** Fold the counters; wall time measured since start(). */
    Metrics::Snapshot metricsSnapshot() const;

    /**
     * Every shard's flight-recorder spans (rings + slow captures),
     * ordered by submit time. Safe while serving — collection is
     * lock-free against the workers (see FlightRecorder).
     */
    std::vector<FlightSpan> traceSpans() const;

    /** The spans rendered as the human-readable dump. */
    std::string traceDumpText() const;

  private:
    struct Shard
    {
        explicit Shard(std::size_t queue_capacity,
                       const api::EnginePool::Config &pool_cfg,
                       Metrics *metrics, std::size_t recorder_capacity,
                       Clock::time_point epoch,
                       std::chrono::nanoseconds slow_threshold,
                       RequestQueue::Order order,
                       std::size_t coalesce_scan,
                       std::chrono::nanoseconds aging,
                       std::size_t initial_cap)
            : queue(queue_capacity, metrics, order, coalesce_scan,
                    aging),
              pool(pool_cfg),
              recorder(recorder_capacity, epoch, slow_threshold),
              batchCap(initial_cap)
        {
        }
        RequestQueue queue;
        api::EnginePool pool;
        FlightRecorder recorder;
        /** The adaptive batch ceiling (see adaptBatchCap); workers
         *  of one shard share it, racing relaxed — a heuristic. */
        std::atomic<std::size_t> batchCap;
        std::vector<std::thread> workers;
    };

    static ServeRequest makeRequest(api::EngineKind kind,
                                    api::ProgramSpec &&spec,
                                    Clock::time_point deadline,
                                    Priority priority);
    bool servableKind(api::EngineKind kind) const;
    void workerLoop(Shard &shard);
    /** Complete @p req without running it. @p retry_after > 0 marks
     *  a load-shed rejection and rides out on the response. */
    void finish(ServeRequest &req, ResponseStatus status,
                std::string error, std::size_t shard_index,
                double retry_after = 0.0);
    /** Complete @p victim as shed under overload: Rejected with the
     *  live retry-after hint, counted per class. */
    void shedRequest(ServeRequest &victim, std::size_t shard_index);
    /** How long an overloaded caller should back off: the live
     *  queue-wait p95, clamped (a fallback when no waits were
     *  recorded yet). */
    double retryAfterHint();
    /**
     * Fold @p req's span into the stage histograms and the shard's
     * flight recorder. @p exec_seconds < 0 means the request never
     * reached an engine (stages it never crossed are not recorded).
     */
    void recordSpan(const ServeRequest &req, ResponseStatus status,
                    std::size_t shard_index, Clock::time_point now,
                    double exec_seconds, double verify_seconds,
                    double warm_seconds, std::uint64_t batch_size);

    const std::size_t workersPerShard_;
    const std::size_t maxBatch_;
    const std::chrono::nanoseconds checkoutTimeout_;
    Metrics metrics_;
    std::vector<std::unique_ptr<Shard>> shards_;
    mutable std::mutex lifecycle_;
    bool started_ = false;
    bool stopped_ = false;
    Clock::time_point startTime_{};
};

} // namespace com::serve

#endif // COMSIM_SERVE_SCHEDULER_HPP
