#include "serve/prometheus.hpp"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace com::serve {

namespace {

void
line(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out += buf;
    out += '\n';
}

void
counter(std::string &out, const char *name, const char *help,
        std::uint64_t value)
{
    line(out, "# HELP %s %s", name, help);
    line(out, "# TYPE %s counter", name);
    line(out, "%s %llu", name,
         static_cast<unsigned long long>(value));
}

void
counterSeconds(std::string &out, const char *name, const char *help,
               double value)
{
    line(out, "# HELP %s %s", name, help);
    line(out, "# TYPE %s counter", name);
    line(out, "%s %.9g", name, value);
}

void
gauge(std::string &out, const char *name, const char *help,
      double value)
{
    line(out, "# HELP %s %s", name, help);
    line(out, "# TYPE %s gauge", name);
    line(out, "%s %.9g", name, value);
}

void
histogram(std::string &out, const char *name, const char *help,
          const LatencyHistogram::Snapshot &h)
{
    line(out, "# HELP %s %s", name, help);
    line(out, "# TYPE %s histogram", name);
    std::size_t last = 0; // one past the last nonempty bucket
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i)
        if (h.buckets[i] > 0)
            last = i + 1;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < last; ++i) {
        cumulative += h.buckets[i];
        double le = std::exp2(static_cast<double>(i + 1)) * 1e-6;
        line(out, "%s_bucket{le=\"%.9g\"} %llu", name, le,
             static_cast<unsigned long long>(cumulative));
    }
    line(out, "%s_bucket{le=\"+Inf\"} %llu", name,
         static_cast<unsigned long long>(h.count));
    line(out, "%s_sum %.9g", name,
         h.meanSeconds * static_cast<double>(h.count));
    line(out, "%s_count %llu", name,
         static_cast<unsigned long long>(h.count));
}

} // namespace

std::string
renderPrometheus(const Metrics::Snapshot &s)
{
    std::string out;
    out.reserve(8192);

    counter(out, "comsim_requests_submitted_total",
            "Requests accepted by the serving layer.", s.submitted);
    counter(out, "comsim_requests_served_total",
            "Requests that completed Ok (checksum verified).",
            s.served);
    counter(out, "comsim_requests_failed_total",
            "Requests that ran but errored or missed their checksum.",
            s.failed);
    counter(out, "comsim_requests_rejected_total",
            "Requests refused by admission control.", s.rejected);
    counter(out, "comsim_requests_expired_total",
            "Requests whose deadline passed before they ran.",
            s.expired);
    counter(out, "comsim_batches_total",
            "Session checkouts that served at least one request.",
            s.batches);
    counter(out, "comsim_batched_requests_total",
            "Requests summed over all batches.", s.batchedRequests);
    counter(out, "comsim_cache_hits_total",
            "Program-cache lookups that warm-started.", s.cacheHits);
    counter(out, "comsim_cache_misses_total",
            "Program-cache lookups that compiled cold.",
            s.cacheMisses);
    counter(out, "comsim_cache_installs_total",
            "Artifacts installed into the program cache.",
            s.cacheInstalls);
    counter(out, "comsim_cache_evictions_total",
            "Artifacts evicted from the program cache.",
            s.cacheEvictions);
    counter(out, "comsim_warm_starts_total",
            "Runs restored from a cached artifact.", s.warmStarts);
    {
        const char *name = "comsim_requests_shed_total";
        line(out, "# HELP %s Requests shed under overload, by class.",
             name);
        line(out, "# TYPE %s counter", name);
        for (std::size_t i = 0; i < kNumPriorities; ++i)
            line(out, "%s{priority=\"%s\"} %llu", name,
                 priorityName(static_cast<Priority>(i)),
                 static_cast<unsigned long long>(s.shed[i]));
    }
    counterSeconds(out, "comsim_busy_seconds_total",
                   "Worker-seconds spent holding a session.",
                   s.busySeconds);

    gauge(out, "comsim_queue_depth",
          "Requests queued across all shards at scrape time.",
          static_cast<double>(s.queueDepth));
    gauge(out, "comsim_queue_depth_max",
          "Deepest the queues have been (summed across shards).",
          static_cast<double>(s.maxQueueDepth));
    gauge(out, "comsim_batch_max", "Largest batch served so far.",
          static_cast<double>(s.maxBatch));
    gauge(out, "comsim_batch_cap",
          "Adaptive batch-size ceiling currently in effect.",
          static_cast<double>(s.batchCap));
    gauge(out, "comsim_workers", "Scheduler worker threads.",
          static_cast<double>(s.workers));
    gauge(out, "comsim_utilization",
          "Busy worker-seconds over wall worker-seconds.",
          s.utilization);
    gauge(out, "comsim_wall_seconds",
          "Observed serving wall time.", s.wallSeconds);

    histogram(out, "comsim_request_latency_seconds",
              "Submit-to-completion latency of completed requests.",
              s.latency);
    histogram(out, "comsim_stage_queue_wait_seconds",
              "Span stage: submitted to dequeued.", s.queueWait);
    histogram(out, "comsim_stage_pool_wait_seconds",
              "Span stage: dequeued to session acquired.",
              s.poolWait);
    histogram(out, "comsim_stage_warm_restore_seconds",
              "Span stage: warm-start artifact restore.",
              s.warmRestore);
    histogram(out, "comsim_stage_execute_seconds",
              "Span stage: engine run wall time.", s.execute);
    histogram(out, "comsim_stage_verify_seconds",
              "Span stage: checksum verification.", s.verify);
    // Per-class latency as separate families, not labels: the
    // histogram helper emits cumulative le= buckets per family, and
    // interleaving label values inside one family would break that.
    histogram(out, "comsim_request_latency_interactive_seconds",
              "Completed-request latency, interactive class.",
              s.latencyByPriority[0]);
    histogram(out, "comsim_request_latency_batch_seconds",
              "Completed-request latency, batch class.",
              s.latencyByPriority[1]);
    histogram(out, "comsim_request_latency_besteffort_seconds",
              "Completed-request latency, best-effort class.",
              s.latencyByPriority[2]);
    return out;
}

} // namespace com::serve
