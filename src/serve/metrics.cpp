#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace com::serve {

namespace {

/** Raise @p target to @p value if larger (relaxed CAS loop). */
void
raiseMax(std::atomic<std::uint64_t> &target, std::uint64_t value)
{
    std::uint64_t seen = target.load(std::memory_order_relaxed);
    while (seen < value &&
           !target.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
    }
}

/** Geometric midpoint of bucket @p i ([2^i, 2^(i+1)) µs), seconds. */
double
bucketMidSeconds(std::size_t i)
{
    double lo = std::exp2(static_cast<double>(i));
    return lo * std::sqrt(2.0) * 1e-6;
}

} // namespace

void
LatencyHistogram::record(double seconds)
{
    if (seconds < 0.0)
        seconds = 0.0;
    auto nanos = static_cast<std::uint64_t>(seconds * 1e9);
    auto micros = nanos / 1000;
    std::size_t bucket = 0;
    while (bucket + 1 < kBuckets && (micros >> (bucket + 1)) != 0)
        ++bucket;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sumNanos_.fetch_add(nanos, std::memory_order_relaxed);
    raiseMax(maxNanos_, nanos);
}

LatencyHistogram::Snapshot
LatencyHistogram::snapshot() const
{
    std::array<std::uint64_t, kBuckets> counts;
    for (std::size_t i = 0; i < kBuckets; ++i)
        counts[i] = buckets_[i].load(std::memory_order_relaxed);

    Snapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    if (s.count == 0)
        return s;
    s.meanSeconds =
        static_cast<double>(sumNanos_.load(std::memory_order_relaxed)) /
        static_cast<double>(s.count) * 1e-9;
    s.maxSeconds =
        static_cast<double>(maxNanos_.load(std::memory_order_relaxed)) *
        1e-9;

    auto quantile = [&](double q) {
        auto target = static_cast<std::uint64_t>(
            std::ceil(q * static_cast<double>(s.count)));
        target = std::max<std::uint64_t>(target, 1);
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            seen += counts[i];
            if (seen >= target)
                return std::min(bucketMidSeconds(i), s.maxSeconds);
        }
        return s.maxSeconds;
    };
    s.p50Seconds = quantile(0.50);
    s.p95Seconds = quantile(0.95);
    s.p99Seconds = quantile(0.99);
    return s;
}

void
Metrics::recordBatch(std::uint64_t size)
{
    batches_.fetch_add(1, std::memory_order_relaxed);
    batchedRequests_.fetch_add(size, std::memory_order_relaxed);
    raiseMax(maxBatch_, size);
}

void
Metrics::countEnqueued()
{
    std::uint64_t depth =
        queueDepth_.fetch_add(1, std::memory_order_relaxed) + 1;
    raiseMax(maxQueueDepth_, depth);
}

Metrics::Snapshot
Metrics::snapshot(double wallSeconds, std::size_t workers) const
{
    Snapshot s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.served = served_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.expired = expired_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    std::uint64_t batched =
        batchedRequests_.load(std::memory_order_relaxed);
    s.meanBatch = s.batches > 0 ? static_cast<double>(batched) /
                                      static_cast<double>(s.batches)
                                : 0.0;
    s.maxBatch = maxBatch_.load(std::memory_order_relaxed);
    s.maxQueueDepth = maxQueueDepth_.load(std::memory_order_relaxed);
    s.queueDepth = queueDepth_.load(std::memory_order_relaxed);
    if (wallSeconds > 0.0 && workers > 0) {
        double busy =
            static_cast<double>(
                busyNanos_.load(std::memory_order_relaxed)) *
            1e-9;
        s.utilization =
            busy / (wallSeconds * static_cast<double>(workers));
    }
    s.latency = latency_.snapshot();
    return s;
}

} // namespace com::serve
