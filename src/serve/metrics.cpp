#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace com::serve {

namespace {

/** Raise @p target to @p value if larger (relaxed CAS loop). */
void
raiseMax(std::atomic<std::uint64_t> &target, std::uint64_t value)
{
    std::uint64_t seen = target.load(std::memory_order_relaxed);
    while (seen < value &&
           !target.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
    }
}

/** Geometric midpoint of bucket @p i ([2^i, 2^(i+1)) µs), seconds. */
double
bucketMidSeconds(std::size_t i)
{
    double lo = std::exp2(static_cast<double>(i));
    return lo * std::sqrt(2.0) * 1e-6;
}

/** The @p q quantile of @p counts (see bucketMidSeconds), capped at
 *  the exact observed @p maxSeconds. */
double
bucketQuantile(
    const std::array<std::uint64_t, LatencyHistogram::kBuckets> &counts,
    std::uint64_t total, double q, double maxSeconds)
{
    auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    target = std::max<std::uint64_t>(target, 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
        seen += counts[i];
        if (seen >= target)
            return std::min(bucketMidSeconds(i), maxSeconds);
    }
    return maxSeconds;
}

} // namespace

void
LatencyHistogram::record(double seconds)
{
    if (seconds < 0.0)
        seconds = 0.0;
    auto nanos = static_cast<std::uint64_t>(seconds * 1e9);
    auto micros = nanos / 1000;
    std::size_t bucket = 0;
    while (bucket + 1 < kBuckets && (micros >> (bucket + 1)) != 0)
        ++bucket;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sumNanos_.fetch_add(nanos, std::memory_order_relaxed);
    raiseMax(maxNanos_, nanos);
}

LatencyHistogram::Snapshot
LatencyHistogram::snapshot() const
{
    Snapshot s;
    for (std::size_t i = 0; i < kBuckets; ++i)
        s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);

    s.count = count_.load(std::memory_order_relaxed);
    if (s.count == 0)
        return s;
    s.meanSeconds =
        static_cast<double>(sumNanos_.load(std::memory_order_relaxed)) /
        static_cast<double>(s.count) * 1e-9;
    s.maxSeconds =
        static_cast<double>(maxNanos_.load(std::memory_order_relaxed)) *
        1e-9;
    s.p50Seconds = bucketQuantile(s.buckets, s.count, 0.50, s.maxSeconds);
    s.p95Seconds = bucketQuantile(s.buckets, s.count, 0.95, s.maxSeconds);
    s.p99Seconds = bucketQuantile(s.buckets, s.count, 0.99, s.maxSeconds);
    return s;
}

void
LatencyHistogram::Snapshot::merge(const Snapshot &other)
{
    std::uint64_t total = count + other.count;
    if (total == 0)
        return;
    meanSeconds = (meanSeconds * static_cast<double>(count) +
                   other.meanSeconds * static_cast<double>(other.count)) /
                  static_cast<double>(total);
    count = total;
    maxSeconds = std::max(maxSeconds, other.maxSeconds);
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets[i] += other.buckets[i];
    p50Seconds = bucketQuantile(buckets, count, 0.50, maxSeconds);
    p95Seconds = bucketQuantile(buckets, count, 0.95, maxSeconds);
    p99Seconds = bucketQuantile(buckets, count, 0.99, maxSeconds);
}

LatencyHistogram::Snapshot
LatencyHistogram::Snapshot::delta(const Snapshot &after,
                                  const Snapshot &before)
{
    Snapshot d;
    for (std::size_t i = 0; i < kBuckets; ++i)
        d.buckets[i] = after.buckets[i] >= before.buckets[i]
                           ? after.buckets[i] - before.buckets[i]
                           : 0;
    for (std::uint64_t b : d.buckets)
        d.count += b;
    if (d.count == 0)
        return d;
    double sum_after =
        after.meanSeconds * static_cast<double>(after.count);
    double sum_before =
        before.meanSeconds * static_cast<double>(before.count);
    double sum = std::max(sum_after - sum_before, 0.0);
    d.meanSeconds = sum / static_cast<double>(d.count);
    d.maxSeconds = after.maxSeconds;
    d.p50Seconds = bucketQuantile(d.buckets, d.count, 0.50, d.maxSeconds);
    d.p95Seconds = bucketQuantile(d.buckets, d.count, 0.95, d.maxSeconds);
    d.p99Seconds = bucketQuantile(d.buckets, d.count, 0.99, d.maxSeconds);
    return d;
}

void
Metrics::recordBatch(std::uint64_t size)
{
    batches_.fetch_add(1, std::memory_order_relaxed);
    batchedRequests_.fetch_add(size, std::memory_order_relaxed);
    raiseMax(maxBatch_, size);
}

void
Metrics::countEnqueued()
{
    std::uint64_t depth =
        queueDepth_.fetch_add(1, std::memory_order_relaxed) + 1;
    raiseMax(maxQueueDepth_, depth);
}

Metrics::Snapshot
Metrics::snapshot(double wallSeconds, std::size_t workers) const
{
    Snapshot s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.served = served_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.expired = expired_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    std::uint64_t batched =
        batchedRequests_.load(std::memory_order_relaxed);
    s.meanBatch = s.batches > 0 ? static_cast<double>(batched) /
                                      static_cast<double>(s.batches)
                                : 0.0;
    s.maxBatch = maxBatch_.load(std::memory_order_relaxed);
    s.maxQueueDepth = maxQueueDepth_.load(std::memory_order_relaxed);
    s.queueDepth = queueDepth_.load(std::memory_order_relaxed);
    s.batchedRequests = batched;
    s.workers = workers;
    s.wallSeconds = wallSeconds;
    s.busySeconds =
        static_cast<double>(busyNanos_.load(std::memory_order_relaxed)) *
        1e-9;
    s.workerSeconds = wallSeconds * static_cast<double>(workers);
    if (s.workerSeconds > 0.0)
        s.utilization = s.busySeconds / s.workerSeconds;
    s.latency = latency_.snapshot();
    s.queueWait = queueWait_.snapshot();
    s.poolWait = poolWait_.snapshot();
    s.warmRestore = warmRestore_.snapshot();
    s.execute = execute_.snapshot();
    s.verify = verify_.snapshot();
    for (std::size_t i = 0; i < kNumPriorities; ++i) {
        s.latencyByPriority[i] = latencyByPriority_[i].snapshot();
        s.shed[i] = shed_[i].load(std::memory_order_relaxed);
    }
    return s;
}

void
Metrics::Snapshot::merge(const Snapshot &other)
{
    submitted += other.submitted;
    served += other.served;
    failed += other.failed;
    rejected += other.rejected;
    expired += other.expired;
    batches += other.batches;
    batchedRequests += other.batchedRequests;
    meanBatch = batches > 0 ? static_cast<double>(batchedRequests) /
                                  static_cast<double>(batches)
                            : 0.0;
    maxBatch = std::max(maxBatch, other.maxBatch);
    maxQueueDepth += other.maxQueueDepth;
    queueDepth += other.queueDepth;
    workers += other.workers;
    wallSeconds = std::max(wallSeconds, other.wallSeconds);
    busySeconds += other.busySeconds;
    workerSeconds += other.workerSeconds;
    utilization =
        workerSeconds > 0.0 ? busySeconds / workerSeconds : 0.0;
    latency.merge(other.latency);
    queueWait.merge(other.queueWait);
    poolWait.merge(other.poolWait);
    warmRestore.merge(other.warmRestore);
    execute.merge(other.execute);
    verify.merge(other.verify);
    for (std::size_t i = 0; i < kNumPriorities; ++i) {
        latencyByPriority[i].merge(other.latencyByPriority[i]);
        shed[i] += other.shed[i];
    }
    batchCap = std::max(batchCap, other.batchCap);
    cacheHits += other.cacheHits;
    cacheMisses += other.cacheMisses;
    cacheInstalls += other.cacheInstalls;
    cacheEvictions += other.cacheEvictions;
    warmStarts += other.warmStarts;
    warmStartNanos += other.warmStartNanos;
    warmStartMeanSeconds =
        warmStarts > 0 ? static_cast<double>(warmStartNanos) / 1e9 /
                             static_cast<double>(warmStarts)
                       : 0.0;
}

} // namespace com::serve
