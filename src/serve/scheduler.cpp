#include "serve/scheduler.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iterator>
#include <string>
#include <utility>

#include "api/program_cache.hpp"
#include "sim/logging.hpp"

namespace com::serve {

const char *
responseStatusName(ResponseStatus status)
{
    switch (status) {
      case ResponseStatus::Ok:
        return "ok";
      case ResponseStatus::Rejected:
        return "rejected";
      case ResponseStatus::Expired:
        return "expired";
      case ResponseStatus::Failed:
        return "failed";
    }
    return "?";
}

const char *
priorityName(Priority p)
{
    switch (p) {
      case Priority::Interactive:
        return "interactive";
      case Priority::Batch:
        return "batch";
      case Priority::BestEffort:
        return "besteffort";
    }
    return "?";
}

std::size_t
adaptBatchCap(std::size_t current, std::size_t depth,
              std::size_t max_batch)
{
    if (max_batch <= 1)
        return 1;
    if (current < 1)
        current = 1;
    if (current > max_batch)
        current = max_batch;
    if (depth >= max_batch)
        return std::min(current * 2, max_batch);
    if (depth <= max_batch / 4)
        return std::max<std::size_t>(current / 2, 1);
    return current; // hysteresis band: hold
}

Scheduler::Scheduler(const Config &cfg)
    : workersPerShard_(std::max<std::size_t>(cfg.workersPerShard, 1)),
      maxBatch_(std::max<std::size_t>(cfg.maxBatch, 1)),
      checkoutTimeout_(cfg.checkoutTimeout)
{
    std::size_t shard_count = std::max<std::size_t>(cfg.shards, 1);
    shards_.reserve(shard_count);
    Clock::time_point epoch = Clock::now();
    for (std::size_t i = 0; i < shard_count; ++i) {
        api::EnginePool::Config pool_cfg = cfg.pool;
        if (cfg.programCacheCapacity > 0 && !pool_cfg.programCache)
            pool_cfg.programCache = std::make_shared<api::ProgramCache>(
                cfg.programCacheCapacity);
        shards_.push_back(std::make_unique<Shard>(
            cfg.queueCapacity, pool_cfg, &metrics_,
            cfg.flightRecorderCapacity, epoch, cfg.slowThreshold,
            cfg.queueOrder, cfg.coalesceScan,
            std::chrono::milliseconds(cfg.agingMs), maxBatch_));
    }
    if (cfg.autoStart)
        start();
}

Scheduler::~Scheduler() { stop(); }

void
Scheduler::start()
{
    std::lock_guard<std::mutex> lock(lifecycle_);
    if (started_ || stopped_)
        return;
    started_ = true;
    startTime_ = Clock::now();
    for (auto &shard : shards_)
        for (std::size_t w = 0; w < workersPerShard_; ++w)
            shard->workers.emplace_back(
                [this, &shard] { workerLoop(*shard); });
}

void
Scheduler::stop()
{
    std::lock_guard<std::mutex> lock(lifecycle_);
    if (stopped_)
        return;
    stopped_ = true;
    for (auto &shard : shards_)
        shard->queue.close();
    if (!started_) {
        // Never ran: drain by hand so no future is left dangling.
        for (auto &shard : shards_)
            for (std::vector<ServeRequest> batch =
                     shard->queue.popBatch(maxBatch_);
                 !batch.empty();
                 batch = shard->queue.popBatch(maxBatch_))
                for (ServeRequest &req : batch) {
                    metrics_.countRejected();
                    Response r;
                    r.status = ResponseStatus::Rejected;
                    r.error = "scheduler stopped before serving";
                    r.priority = req.priority;
                    req.promise.set_value(std::move(r));
                }
        return;
    }
    for (auto &shard : shards_)
        for (std::thread &t : shard->workers)
            t.join();
}

std::size_t
sourceShard(const std::string &source, std::size_t shards)
{
    if (shards <= 1)
        return 0;
    // FNV-1a, 64-bit: stable across builds and processes (the router
    // depends on matching this — see the header comment).
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : source) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h % shards);
}

std::size_t
Scheduler::shardFor(const api::ProgramSpec &spec) const
{
    return sourceShard(spec.source, shards_.size());
}

api::EnginePool &
Scheduler::pool(std::size_t shard)
{
    sim::fatalIf(shard >= shards_.size(), "no such shard: ", shard);
    return shards_[shard]->pool;
}

const std::shared_ptr<api::ProgramCache> &
Scheduler::programCache(std::size_t shard)
{
    sim::fatalIf(shard >= shards_.size(), "no such shard: ", shard);
    return shards_[shard]->pool.programCache();
}

ServeRequest
Scheduler::makeRequest(api::EngineKind kind, api::ProgramSpec &&spec,
                       Clock::time_point deadline, Priority priority)
{
    ServeRequest req;
    req.kind = kind;
    req.spec = std::move(spec);
    req.submitted = Clock::now();
    req.deadline = deadline;
    req.priority = priority;
    return req;
}

double
Scheduler::retryAfterHint()
{
    constexpr double kFallback = 0.05; // no waits recorded yet
    constexpr double kMin = 0.01, kMax = 5.0;
    LatencyHistogram::Snapshot waits =
        metrics_.queueWait().snapshot();
    double hint = waits.count > 0 ? waits.p95Seconds : kFallback;
    return std::clamp(hint, kMin, kMax);
}

void
Scheduler::shedRequest(ServeRequest &victim, std::size_t shard_index)
{
    metrics_.countShed(victim.priority);
    finish(victim, ResponseStatus::Rejected, "shed under overload",
           shard_index, retryAfterHint());
}

bool
Scheduler::servableKind(api::EngineKind kind) const
{
    // Every shard's pool is sized identically, so shard 0 speaks for
    // all. A kind with no engines must be rejected at submit time: a
    // worker hitting an engineless pool would fatal() and take the
    // serving thread (and process) down with it.
    return shards_[0]->pool.capacity(kind) > 0;
}

std::future<Response>
Scheduler::trySubmit(api::EngineKind kind, api::ProgramSpec spec,
                     Clock::time_point deadline, Priority priority)
{
    metrics_.countSubmitted();
    std::size_t shard_index = shardFor(spec);
    ServeRequest req =
        makeRequest(kind, std::move(spec), deadline, priority);
    std::future<Response> future = req.promise.get_future();
    if (!servableKind(kind)) {
        metrics_.countRejected();
        Response r;
        r.status = ResponseStatus::Rejected;
        r.error = std::string("pool holds no ") +
                  api::engineKindName(kind) + " engines";
        r.shard = shard_index;
        r.priority = priority;
        req.promise.set_value(std::move(r));
        return future;
    }
    ServeRequest displaced;
    switch (shards_[shard_index]->queue.offer(std::move(req),
                                              &displaced)) {
      case RequestQueue::Admit::Queued:
        break;
      case RequestQueue::Admit::Displaced:
        // req is queued; a less urgent request made room and is
        // completed as shed, with the live retry-after hint.
        shedRequest(displaced, shard_index);
        break;
      case RequestQueue::Admit::Closed: {
        // offer left req intact: reject on its still-held promise.
        // Shutdown is not overload — no retry hint; the scheduler
        // will never accept again.
        metrics_.countRejected();
        Response r;
        r.status = ResponseStatus::Rejected;
        r.error = "scheduler stopped";
        r.shard = shard_index;
        r.priority = priority;
        req.promise.set_value(std::move(r));
        break;
      }
      case RequestQueue::Admit::Full: {
        // Nothing queued is less urgent than req: req itself is the
        // one to shed, told how long to back off.
        metrics_.countShed(priority);
        metrics_.countRejected();
        Response r;
        r.status = ResponseStatus::Rejected;
        r.error = "queue full";
        r.shard = shard_index;
        r.priority = priority;
        r.retryAfterSeconds = retryAfterHint();
        req.promise.set_value(std::move(r));
        break;
      }
    }
    return future;
}

Scheduler::Admission
Scheduler::offer(api::EngineKind kind, api::ProgramSpec &spec,
                 Clock::time_point deadline,
                 Clock::time_point submitted,
                 std::future<Response> *out, Priority priority)
{
    std::size_t shard_index = shardFor(spec);
    if (!servableKind(kind)) {
        metrics_.countSubmitted();
        metrics_.countRejected();
        ServeRequest req =
            makeRequest(kind, std::move(spec), deadline, priority);
        req.submitted = submitted;
        *out = req.promise.get_future();
        Response r;
        r.status = ResponseStatus::Rejected;
        r.error = std::string("pool holds no ") +
                  api::engineKindName(kind) + " engines";
        r.shard = shard_index;
        r.priority = priority;
        req.promise.set_value(std::move(r));
        return Admission::NoEngine;
    }
    ServeRequest req =
        makeRequest(kind, std::move(spec), deadline, priority);
    req.submitted = submitted;
    *out = req.promise.get_future();
    ServeRequest displaced;
    switch (shards_[shard_index]->queue.offer(std::move(req),
                                              &displaced)) {
      case RequestQueue::Admit::Queued:
        metrics_.countSubmitted();
        return Admission::Accepted;
      case RequestQueue::Admit::Displaced:
        // req jumped a full queue; the evicted (less urgent) request
        // is completed as shed with a retry-after hint — its caller
        // already holds the future that now resolves.
        metrics_.countSubmitted();
        shedRequest(displaced, shard_index);
        return Admission::Accepted;
      case RequestQueue::Admit::Closed: {
        metrics_.countSubmitted();
        metrics_.countRejected();
        Response r;
        r.status = ResponseStatus::Rejected;
        r.error = "scheduler stopped";
        r.shard = shard_index;
        r.priority = priority;
        req.promise.set_value(std::move(r));
        return Admission::Stopped;
      }
      case RequestQueue::Admit::Full:
        break;
    }
    // offer left req intact: hand the program back to the caller,
    // which parks it (TCP back-pressure) instead of shedding.
    spec = std::move(req.spec);
    *out = std::future<Response>{};
    return Admission::QueueFull;
}

std::future<Response>
Scheduler::submit(api::EngineKind kind, api::ProgramSpec spec,
                  Clock::time_point deadline, Priority priority)
{
    metrics_.countSubmitted();
    std::size_t shard_index = shardFor(spec);
    ServeRequest req =
        makeRequest(kind, std::move(spec), deadline, priority);
    std::future<Response> future = req.promise.get_future();
    if (!servableKind(kind)) {
        metrics_.countRejected();
        Response r;
        r.status = ResponseStatus::Rejected;
        r.error = std::string("pool holds no ") +
                  api::engineKindName(kind) + " engines";
        r.shard = shard_index;
        r.priority = priority;
        req.promise.set_value(std::move(r));
        return future;
    }
    if (!shards_[shard_index]->queue.push(std::move(req))) {
        metrics_.countRejected();
        Response r;
        r.status = ResponseStatus::Rejected;
        r.error = "scheduler stopped";
        r.shard = shard_index;
        r.priority = priority;
        req.promise.set_value(std::move(r));
    }
    return future;
}

namespace {

double
stageSeconds(Clock::time_point from, Clock::time_point to)
{
    double s = std::chrono::duration<double>(to - from).count();
    return s > 0.0 ? s : 0.0;
}

/** Seconds -> saturating u32 microseconds (FlightSpan durations). */
std::uint32_t
stageMicros(double seconds)
{
    if (seconds <= 0.0)
        return 0;
    double us = seconds * 1e6;
    if (us >= 4294967295.0)
        return 0xffffffffu;
    return static_cast<std::uint32_t>(us);
}

} // namespace

void
Scheduler::recordSpan(const ServeRequest &req, ResponseStatus status,
                      std::size_t shard_index, Clock::time_point now,
                      double exec_seconds, double verify_seconds,
                      double warm_seconds, std::uint64_t batch_size)
{
    constexpr Clock::time_point kUnset{};
    bool dequeued = req.dequeued != kUnset;
    bool acquired = req.sessionAcquired != kUnset;
    double queue_s =
        dequeued ? stageSeconds(req.submitted, req.dequeued) : 0.0;
    double pool_s =
        acquired ? stageSeconds(req.dequeued, req.sessionAcquired)
                 : 0.0;
    if (dequeued)
        metrics_.queueWait().record(queue_s);
    if (acquired)
        metrics_.poolWait().record(pool_s);
    if (exec_seconds >= 0.0) {
        metrics_.execute().record(exec_seconds);
        metrics_.verify().record(verify_seconds);
    }
    if (warm_seconds > 0.0)
        metrics_.warmRestore().record(warm_seconds);

    FlightRecorder &recorder = shards_[shard_index]->recorder;
    FlightSpan span;
    std::chrono::nanoseconds since_epoch = req.submitted -
                                           recorder.epoch();
    span.submitNanos =
        since_epoch.count() > 0
            ? static_cast<std::uint64_t>(since_epoch.count())
            : 0;
    span.queueUs = stageMicros(queue_s);
    span.poolUs = stageMicros(pool_s);
    span.warmUs = stageMicros(warm_seconds);
    span.execUs = stageMicros(exec_seconds);
    span.verifyUs = stageMicros(verify_seconds);
    span.totalUs =
        stageMicros(stageSeconds(req.submitted, now));
    span.status = status;
    span.kind = req.kind;
    span.shard = static_cast<std::uint16_t>(shard_index);
    span.batchSize = static_cast<std::uint32_t>(batch_size);
    span.program = req.spec.name;
    recorder.record(std::move(span));
}

void
Scheduler::finish(ServeRequest &req, ResponseStatus status,
                  std::string error, std::size_t shard_index,
                  double retry_after)
{
    Response r;
    r.status = status;
    r.error = std::move(error);
    r.shard = shard_index;
    r.priority = req.priority;
    r.retryAfterSeconds = retry_after;
    Clock::time_point now = Clock::now();
    r.latencySeconds =
        std::chrono::duration<double>(now - req.submitted).count();
    if (status == ResponseStatus::Expired)
        metrics_.countExpired();
    else if (status == ResponseStatus::Rejected)
        metrics_.countRejected();
    metrics_.latency().record(r.latencySeconds);
    metrics_.latencyFor(req.priority).record(r.latencySeconds);
    recordSpan(req, status, shard_index, now, -1.0, 0.0, 0.0, 0);
    req.promise.set_value(std::move(r));
}

void
Scheduler::workerLoop(Shard &shard)
{
    std::size_t shard_index = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i)
        if (shards_[i].get() == &shard)
            shard_index = i;

    for (;;) {
        std::size_t cap =
            shard.batchCap.load(std::memory_order_relaxed);
        std::vector<ServeRequest> batch = shard.queue.popBatch(cap);
        if (batch.empty())
            return; // queue closed and drained

        // Adapt the batch ceiling to the backlog left behind:
        // shallow queues shrink it (latency mode), pressure grows it
        // back toward maxBatch (throughput mode). Workers of one
        // shard race on the cap relaxed — it is a heuristic.
        std::size_t next = adaptBatchCap(cap, shard.queue.depth(),
                                         maxBatch_);
        if (next != cap)
            shard.batchCap.store(next, std::memory_order_relaxed);

        // Deadline gate #1: anything already expired is completed
        // without costing an engine.
        std::vector<ServeRequest> live;
        live.reserve(batch.size());
        Clock::time_point now = Clock::now();
        for (ServeRequest &req : batch) {
            req.dequeued = now;
            if (req.expiredBy(now))
                finish(req, ResponseStatus::Expired,
                       "deadline expired in queue", shard_index);
            else
                live.push_back(std::move(req));
        }
        if (live.empty())
            continue;

        // One session serves the whole batch. While the pool is
        // busy, keep expiring: a request with a deadline must get
        // its Expired response even if no engine frees up in time.
        api::EngineKind kind = live.front().kind;
        api::Session session;
        while (!session && !live.empty()) {
            session =
                shard.pool.tryCheckoutFor(kind, checkoutTimeout_);
            if (session)
                break;
            now = Clock::now();
            std::vector<ServeRequest> still;
            still.reserve(live.size());
            for (ServeRequest &req : live) {
                if (req.expiredBy(now))
                    finish(req, ResponseStatus::Expired,
                           "deadline expired awaiting an engine",
                           shard_index);
                else
                    still.push_back(std::move(req));
            }
            live.swap(still);
        }
        if (live.empty())
            continue;

        Clock::time_point busy_start = Clock::now();
        std::uint64_t batch_size = live.size();
        metrics_.recordBatch(batch_size);
        for (ServeRequest &req : live)
            req.sessionAcquired = busy_start;
        for (ServeRequest &req : live) {
            now = Clock::now();
            if (req.expiredBy(now)) {
                finish(req, ResponseStatus::Expired,
                       "deadline expired in batch", shard_index);
                continue;
            }
            Response r;
            Clock::time_point run_start = Clock::now();
            r.outcome = session.run(req.spec);
            Clock::time_point run_end = Clock::now();
            if (!r.outcome.ok) {
                r.status = ResponseStatus::Failed;
                r.error = r.outcome.error;
            } else if (!r.outcome.matches(req.spec)) {
                r.status = ResponseStatus::Failed;
                r.error = "checksum mismatch: expected " +
                          std::to_string(req.spec.expected) +
                          ", got " + r.outcome.resultText;
            } else {
                r.status = ResponseStatus::Ok;
            }
            r.batchSize = batch_size;
            r.shard = shard_index;
            r.priority = req.priority;
            now = Clock::now();
            r.latencySeconds =
                std::chrono::duration<double>(now - req.submitted)
                    .count();
            metrics_.countOutcome(r.status == ResponseStatus::Ok);
            metrics_.latency().record(r.latencySeconds);
            metrics_.latencyFor(req.priority)
                .record(r.latencySeconds);
            recordSpan(req, r.status, shard_index, now,
                       stageSeconds(run_start, run_end),
                       stageSeconds(run_end, now),
                       r.outcome.warmRestoreSeconds, batch_size);
            req.promise.set_value(std::move(r));
        }
        session.release(); // one reset for the whole batch
        metrics_.addBusyNanos(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - busy_start)
                .count()));
    }
}

Metrics::Snapshot
Scheduler::metricsSnapshot() const
{
    double wall = 0.0;
    {
        std::lock_guard<std::mutex> lock(lifecycle_);
        if (started_)
            wall = std::chrono::duration<double>(Clock::now() -
                                                 startTime_)
                       .count();
    }
    // queueDepth is exact in the shared counters: queues count
    // enqueues/dequeues globally (see Metrics::countEnqueued).
    Metrics::Snapshot s = metrics_.snapshot(wall, workerCount());
    for (const auto &shard : shards_) {
        const std::shared_ptr<api::ProgramCache> &cache =
            shard->pool.programCache();
        if (!cache)
            continue;
        api::ProgramCache::Counters c = cache->counters();
        s.cacheHits += c.hits;
        s.cacheMisses += c.misses;
        s.cacheInstalls += c.installs;
        s.cacheEvictions += c.evictions;
        s.warmStarts += c.warmStarts;
        s.warmStartNanos += c.warmNanos;
    }
    if (s.warmStarts > 0)
        s.warmStartMeanSeconds =
            static_cast<double>(s.warmStartNanos) / 1e9 /
            static_cast<double>(s.warmStarts);
    for (const auto &shard : shards_)
        s.batchCap = std::max<std::uint64_t>(
            s.batchCap,
            shard->batchCap.load(std::memory_order_relaxed));
    return s;
}

std::vector<FlightSpan>
Scheduler::traceSpans() const
{
    std::vector<FlightSpan> all;
    for (const auto &shard : shards_) {
        std::vector<FlightSpan> spans = shard->recorder.collect();
        all.insert(all.end(),
                   std::make_move_iterator(spans.begin()),
                   std::make_move_iterator(spans.end()));
    }
    std::sort(all.begin(), all.end(),
              [](const FlightSpan &a, const FlightSpan &b) {
                  return a.submitNanos < b.submitNanos;
              });
    return all;
}

std::string
Scheduler::traceDumpText() const
{
    return renderFlightSpans(traceSpans(),
                             std::to_string(shards_.size()) +
                                 " shard(s)");
}

} // namespace com::serve
