/**
 * @file
 * The flight recorder: a lock-free ring of the last N completed
 * request spans, plus a bounded capture of slow requests.
 *
 * Each shard of the scheduler owns one recorder. Workers record()
 * a FlightSpan as they resolve each request — a handful of relaxed
 * atomic stores, cheap enough for the hot path — and a diagnostic
 * reader (SIGUSR1 dump, TraceRequest over the wire, dump-on-fatal)
 * collect()s concurrently without stopping the world.
 *
 * The ring is a seqlock per slot with every field stored in atomic
 * words, so a concurrent dump is race-free by construction (TSan
 * agrees): the writer invalidates the slot's sequence word, publishes
 * the payload with relaxed stores behind a release fence, then
 * publishes the new sequence; the reader re-checks the sequence
 * around its payload reads (acquire fence in between) and skips
 * slots it caught mid-write. A writer lapped a full ring-length
 * while another writer stalls inside the same slot could in theory
 * blend two spans' fields under one valid sequence — harmless for a
 * diagnostic buffer, and unreachable in practice with worker counts
 * orders of magnitude below the capacity.
 *
 * The slow capture is the opposite trade: requests whose total
 * latency exceeds a configurable threshold are rare, so they keep
 * their *full* span (untruncated program name) in a small mutex-
 * guarded deque of the most recent kMaxSlowSpans.
 */

#ifndef COMSIM_SERVE_FLIGHT_RECORDER_HPP
#define COMSIM_SERVE_FLIGHT_RECORDER_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace com::serve {

/** One completed request's span, decoded. Durations saturate at
 *  ~71 minutes per stage (u32 microseconds) — far past anything the
 *  serving layer lets live that long. */
struct FlightSpan
{
    std::uint64_t seq = 0; ///< completion number within the shard
    /** When the request was submitted, nanoseconds after the
     *  recorder's epoch (the scheduler's construction). */
    std::uint64_t submitNanos = 0;
    std::uint32_t queueUs = 0;  ///< submitted -> dequeued
    std::uint32_t poolUs = 0;   ///< dequeued -> session acquired
    std::uint32_t warmUs = 0;   ///< warm-start artifact restore
    std::uint32_t execUs = 0;   ///< engine run wall time
    std::uint32_t verifyUs = 0; ///< checksum verification
    std::uint32_t totalUs = 0;  ///< submitted -> resolved
    ResponseStatus status = ResponseStatus::Ok;
    api::EngineKind kind = api::EngineKind::Com;
    std::uint16_t shard = 0;
    std::uint32_t batchSize = 0;
    /** True for entries from the slow capture (full program name). */
    bool slow = false;
    /** Program name; ring entries truncate to kProgramChars. */
    std::string program;
};

class FlightRecorder
{
  public:
    /** Ring slots pack the program name into three words. */
    static constexpr std::size_t kProgramChars = 24;
    /** Most slow spans kept (newest win). */
    static constexpr std::size_t kMaxSlowSpans = 64;

    /**
     * @param capacity ring slots (0 disables the ring; the slow
     *        capture still works)
     * @param epoch the time submitNanos counts from
     * @param slow_threshold total latency beyond which a span joins
     *        the slow capture (zero disables it)
     */
    FlightRecorder(std::size_t capacity, Clock::time_point epoch,
                   std::chrono::nanoseconds slow_threshold);

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Record one completed span (span.seq is assigned here). */
    void record(FlightSpan span);

    /**
     * Every live span: the ring's surviving entries (program names
     * truncated) followed by the slow capture, each sorted oldest
     * first. Safe concurrently with record().
     */
    std::vector<FlightSpan> collect() const;

    std::size_t capacity() const { return slots_.size(); }
    Clock::time_point epoch() const { return epoch_; }
    std::chrono::nanoseconds
    slowThreshold() const
    {
        return slowThreshold_;
    }

  private:
    /** Payload words behind each slot's seqlock (see file comment):
     *    0  submitNanos
     *    1  queueUs | poolUs<<32
     *    2  warmUs | execUs<<32
     *    3  verifyUs | totalUs<<32
     *    4  status | kind<<8 | shard<<16 | batchSize<<32
     *    5..7  program name bytes (kProgramChars)
     */
    static constexpr std::size_t kPayloadWords = 8;

    struct Slot
    {
        std::atomic<std::uint64_t> seq{0}; ///< 0 = never written
        std::array<std::atomic<std::uint64_t>, kPayloadWords> words{};
    };

    const Clock::time_point epoch_;
    const std::chrono::nanoseconds slowThreshold_;
    std::vector<Slot> slots_;
    std::atomic<std::uint64_t> head_{0};

    mutable std::mutex slowMu_;
    std::deque<FlightSpan> slow_;
    std::uint64_t slowSeq_ = 0;
};

/**
 * Render @p spans as the human-readable dump (SIGUSR1, fatal, the
 * comsim_stat --trace mode): one fixed-width row per span, slowest
 * stages visible at a glance. @p heading labels the dump source.
 */
std::string renderFlightSpans(const std::vector<FlightSpan> &spans,
                              const std::string &heading);

} // namespace com::serve

#endif // COMSIM_SERVE_FLIGHT_RECORDER_HPP
