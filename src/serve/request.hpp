/**
 * @file
 * Request/response types of the serving layer.
 *
 * A ServeRequest names what to run (engine kind + ProgramSpec), when
 * it was submitted, and by when it must start (an absolute deadline;
 * kNoDeadline means "whenever"). A Response reports how the request
 * ended: served (checksum verified where the spec carries one),
 * rejected by admission control, expired before it reached an engine,
 * or failed during execution — plus the observed submit-to-completion
 * latency and the size of the batch it rode in.
 */

#ifndef COMSIM_SERVE_REQUEST_HPP
#define COMSIM_SERVE_REQUEST_HPP

#include <chrono>
#include <cstdint>
#include <future>
#include <string>

#include "api/engine.hpp"

namespace com::serve {

/** The clock every serve-layer timestamp uses. */
using Clock = std::chrono::steady_clock;

/** "No deadline": the request waits as long as it takes. */
constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

/**
 * A request's service class. Lower values are more urgent: the queue
 * orders by (priority, deadline, arrival), so interactive requests
 * jump batch traffic and best-effort yields to both. The numeric
 * values are a wire contract — v2 RunRequest frames carry a reserved
 * zero byte exactly where v3 carries the priority, so a v2 peer's
 * requests decode as Interactive.
 */
enum class Priority : std::uint8_t
{
    Interactive = 0, ///< latency-sensitive; jumps the queue
    Batch = 1,       ///< throughput traffic; the former default
    BestEffort = 2,  ///< first to be shed under overload
};

/** Distinct priority classes (array extents, wire bounds). */
constexpr std::size_t kNumPriorities = 3;

/** @return "interactive" / "batch" / "besteffort". */
const char *priorityName(Priority p);

/** How a request left the serving layer. */
enum class ResponseStatus : std::uint8_t
{
    Ok,       ///< ran to completion, checksum verified where known
    Rejected, ///< admission control refused it (queue full / stopped)
    Expired,  ///< deadline passed before the run started
    Failed,   ///< ran but errored or missed its checksum
};

/** @return "ok" / "rejected" / "expired" / "failed". */
const char *responseStatusName(ResponseStatus status);

/** What the serving layer hands back for one request. */
struct Response
{
    ResponseStatus status = ResponseStatus::Rejected;
    /** The engine's outcome (Ok and Failed responses only). */
    api::RunOutcome outcome;
    /** Why the request was not served (non-Ok responses). */
    std::string error;
    /** Submit-to-completion latency. */
    double latencySeconds = 0.0;
    /** Requests sharing the session checkout that ran this one
     *  (0 when the request never reached an engine). */
    std::uint64_t batchSize = 0;
    /** Shard that handled the request. */
    std::size_t shard = 0;
    /** The request's service class, echoed back. */
    Priority priority = Priority::Interactive;
    /**
     * Overload hint on Rejected responses: how long the caller
     * should back off before retrying, derived from the live
     * queue-wait histogram (0 = no hint; the rejection was not
     * load-related, e.g. the scheduler stopped).
     */
    double retryAfterSeconds = 0.0;

    bool ok() const { return status == ResponseStatus::Ok; }
};

/**
 * One queued unit of work. Internal to the scheduler: callers hold
 * the matching std::future<Response>.
 */
struct ServeRequest
{
    api::EngineKind kind = api::EngineKind::Com;
    api::ProgramSpec spec;
    Clock::time_point submitted{};
    Clock::time_point deadline = kNoDeadline;
    Priority priority = Priority::Interactive;
    std::promise<Response> promise;

    // Span timeline, stamped by the scheduler as the request crosses
    // stages (plain writes — each request is owned by exactly one
    // worker thread once popped). A default (epoch) value means the
    // stage was never reached (e.g. expired in the queue).
    Clock::time_point dequeued{};        ///< left the shard queue
    Clock::time_point sessionAcquired{}; ///< batch got its engine

    bool
    expiredBy(Clock::time_point now) const
    {
        return deadline != kNoDeadline && now > deadline;
    }

    /** Requests with equal batch keys share one compile and one
     *  session checkout (args and names may differ). */
    bool
    sameBatch(const ServeRequest &other) const
    {
        return kind == other.kind &&
               spec.language == other.spec.language &&
               spec.source == other.spec.source;
    }
};

} // namespace com::serve

#endif // COMSIM_SERVE_REQUEST_HPP
