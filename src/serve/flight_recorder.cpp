#include "serve/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>

namespace com::serve {

namespace {

std::uint64_t
packPair(std::uint32_t lo, std::uint32_t hi)
{
    return static_cast<std::uint64_t>(lo) |
           (static_cast<std::uint64_t>(hi) << 32);
}

std::uint64_t
packMeta(ResponseStatus status, api::EngineKind kind,
         std::uint16_t shard, std::uint32_t batch)
{
    return static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(status)) |
           (static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(kind))
            << 8) |
           (static_cast<std::uint64_t>(shard) << 16) |
           (static_cast<std::uint64_t>(batch) << 32);
}

} // namespace

FlightRecorder::FlightRecorder(std::size_t capacity,
                               Clock::time_point epoch,
                               std::chrono::nanoseconds slow_threshold)
    : epoch_(epoch), slowThreshold_(slow_threshold), slots_(capacity)
{
}

void
FlightRecorder::record(FlightSpan span)
{
    if (slowThreshold_.count() > 0 &&
        span.totalUs >= static_cast<std::uint64_t>(
                            slowThreshold_.count() / 1000)) {
        std::lock_guard<std::mutex> lock(slowMu_);
        FlightSpan full = span;
        full.seq = slowSeq_++;
        full.slow = true;
        slow_.push_back(std::move(full));
        if (slow_.size() > kMaxSlowSpans)
            slow_.pop_front();
    }
    if (slots_.empty())
        return;

    std::uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = slots_[idx % slots_.size()];

    // Seqlock write: invalidate, fence, payload, publish. The
    // release fence pairs with collect()'s acquire fence so a reader
    // that observed any payload word of this write must also observe
    // the invalidation — a torn span can never pass the seq check.
    slot.seq.store(0, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);

    slot.words[0].store(span.submitNanos, std::memory_order_relaxed);
    slot.words[1].store(packPair(span.queueUs, span.poolUs),
                        std::memory_order_relaxed);
    slot.words[2].store(packPair(span.warmUs, span.execUs),
                        std::memory_order_relaxed);
    slot.words[3].store(packPair(span.verifyUs, span.totalUs),
                        std::memory_order_relaxed);
    slot.words[4].store(packMeta(span.status, span.kind, span.shard,
                                 span.batchSize),
                        std::memory_order_relaxed);
    for (std::size_t w = 0; w < 3; ++w) {
        std::uint64_t packed = 0;
        for (std::size_t b = 0; b < 8; ++b) {
            std::size_t at = w * 8 + b;
            unsigned char c = at < span.program.size()
                                  ? static_cast<unsigned char>(
                                        span.program[at])
                                  : 0;
            packed |= static_cast<std::uint64_t>(c) << (8 * b);
        }
        slot.words[5 + w].store(packed, std::memory_order_relaxed);
    }

    slot.seq.store(idx + 1, std::memory_order_release);
}

std::vector<FlightSpan>
FlightRecorder::collect() const
{
    std::vector<FlightSpan> out;
    out.reserve(slots_.size());
    for (const Slot &slot : slots_) {
        std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
        if (s1 == 0)
            continue; // never written, or mid-write
        std::array<std::uint64_t, kPayloadWords> words;
        for (std::size_t w = 0; w < kPayloadWords; ++w)
            words[w] = slot.words[w].load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        std::uint64_t s2 = slot.seq.load(std::memory_order_relaxed);
        if (s1 != s2)
            continue; // caught a writer mid-update; skip the slot

        FlightSpan span;
        span.seq = s1 - 1;
        span.submitNanos = words[0];
        span.queueUs = static_cast<std::uint32_t>(words[1]);
        span.poolUs = static_cast<std::uint32_t>(words[1] >> 32);
        span.warmUs = static_cast<std::uint32_t>(words[2]);
        span.execUs = static_cast<std::uint32_t>(words[2] >> 32);
        span.verifyUs = static_cast<std::uint32_t>(words[3]);
        span.totalUs = static_cast<std::uint32_t>(words[3] >> 32);
        span.status =
            static_cast<ResponseStatus>(words[4] & 0xff);
        span.kind =
            static_cast<api::EngineKind>((words[4] >> 8) & 0xff);
        span.shard =
            static_cast<std::uint16_t>((words[4] >> 16) & 0xffff);
        span.batchSize = static_cast<std::uint32_t>(words[4] >> 32);
        char name[kProgramChars];
        for (std::size_t w = 0; w < 3; ++w)
            for (std::size_t b = 0; b < 8; ++b)
                name[w * 8 + b] = static_cast<char>(
                    (words[5 + w] >> (8 * b)) & 0xff);
        std::size_t len = 0;
        while (len < kProgramChars && name[len] != '\0')
            ++len;
        span.program.assign(name, len);
        out.push_back(std::move(span));
    }
    std::sort(out.begin(), out.end(),
              [](const FlightSpan &a, const FlightSpan &b) {
                  return a.seq < b.seq;
              });

    std::lock_guard<std::mutex> lock(slowMu_);
    out.insert(out.end(), slow_.begin(), slow_.end());
    return out;
}

std::string
renderFlightSpans(const std::vector<FlightSpan> &spans,
                  const std::string &heading)
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "== flight recorder: %s (%zu spans) ==\n",
                  heading.c_str(), spans.size());
    out += line;
    std::snprintf(
        line, sizeof(line),
        "%8s %10s %6s %5s %5s %5s %9s %9s %9s %9s %9s %9s  %s\n",
        "seq", "t+ms", "shard", "stat", "kind", "batch", "queue_us",
        "pool_us", "warm_us", "exec_us", "verif_us", "total_us",
        "program");
    out += line;
    for (const FlightSpan &s : spans) {
        std::snprintf(
            line, sizeof(line),
            "%7llu%c %10.1f %6u %5.5s %5s %5u %9u %9u %9u %9u %9u "
            "%9u  %s\n",
            static_cast<unsigned long long>(s.seq),
            s.slow ? '!' : ' ',
            static_cast<double>(s.submitNanos) / 1e6, s.shard,
            responseStatusName(s.status), api::engineKindName(s.kind),
            s.batchSize, s.queueUs, s.poolUs, s.warmUs, s.execUs,
            s.verifyUs, s.totalUs, s.program.c_str());
        out += line;
    }
    return out;
}

} // namespace com::serve
