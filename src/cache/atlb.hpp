/**
 * @file
 * Address translation lookaside buffer (paper Section 3.1).
 *
 * "A virtual address is translated to an absolute address aided by an
 * address translation lookaside buffer (ATLB)." The ATLB caches segment
 * descriptors keyed by (team space number, segment key), where the
 * segment key combines the exponent and segment field of a floating
 * point virtual address.
 *
 * Because virtual addresses may be aliased and objects may move in
 * physical memory, the COM never caches virtual -> physical directly;
 * the ATLB covers only the naming step. Mapping changes (object growth,
 * frees) invalidate the affected entry via the segment table's change
 * listener.
 */

#ifndef COMSIM_CACHE_ATLB_HPP
#define COMSIM_CACHE_ATLB_HPP

#include <cstdint>

#include "cache/set_assoc.hpp"
#include "mem/fp_address.hpp"
#include "mem/segment_table.hpp"

namespace com::cache {

/** ATLB lookup key: team space number + segment descriptor key. */
struct AtlbKey
{
    std::uint32_t team;
    std::uint64_t segKey;

    friend bool
    operator==(const AtlbKey &a, const AtlbKey &b)
    {
        return a.team == b.team && a.segKey == b.segKey;
    }
};

/** Mixing hash so sets spread across team and segment bits. */
struct AtlbKeyHash
{
    std::uint64_t
    operator()(const AtlbKey &k) const
    {
        std::uint64_t h = k.segKey * 0x9e3779b97f4a7c15ull;
        h ^= (static_cast<std::uint64_t>(k.team) + 0x7f4a7c15ull) *
             0xbf58476d1ce4e5b9ull;
        return h ^ (h >> 29);
    }
};

/**
 * The ATLB: a set-associative cache of segment descriptors that fronts
 * a team's SegmentTable. translate() applies the same bounds, growth
 * and protection checks as the table itself, using the cached
 * descriptor on a hit.
 */
class Atlb
{
  public:
    /**
     * @param num_sets power-of-two set count
     * @param ways associativity
     * @param miss_penalty extra cycles modeled for a table walk
     */
    Atlb(std::size_t num_sets, std::size_t ways,
         std::uint64_t miss_penalty = 4);

    /**
     * Translate through the ATLB, walking @p table on a miss and
     * filling. Faulting translations (bounds, growth, protection) are
     * returned unchanged and never cached.
     *
     * @param table the team's segment table (backing store)
     * @param vaddr floating point virtual address
     * @param extra_offset additional word index (for at:/at:put:)
     * @param want_write true for stores
     * @param[out] latency cycles consumed (0 on hit, missPenalty on
     *             miss); may be null
     */
    mem::XlateResult translate(const mem::SegmentTable &table,
                               std::uint64_t vaddr,
                               std::uint64_t extra_offset = 0,
                               bool want_write = false,
                               std::uint64_t *latency = nullptr);
    // (defined inline below the class: the interpreter translates at
    // least one operand per simulated instruction)

    /**
     * Like translate(), but on a cache hit also hands back an opaque
     * slot handle for translateBound(). Statistics, fills and stalls
     * are identical to translate(); a miss leaves @p slot_out null
     * (the fill bumped the generation, so binding waits for the next
     * call).
     */
    mem::XlateResult translateBind(const mem::SegmentTable &table,
                                   std::uint64_t vaddr,
                                   std::uint64_t extra_offset,
                                   bool want_write,
                                   std::uint64_t *latency,
                                   void **slot_out);

    /**
     * Replay translate() through a slot bound by translateBind(). The
     * caller must have verified generation() is unchanged and that
     * @p vaddr carries the bound segment bits for the same table: the
     * result — and every statistic — is then bit-identical to the
     * translate() hit it replaces, skipping the set hash and the way
     * scan. Offset-dependent checks (growth, bounds, protection) are
     * still applied per call.
     */
    mem::XlateResult translateBound(void *slot,
                                    const mem::SegmentTable &table,
                                    std::uint64_t vaddr,
                                    std::uint64_t extra_offset,
                                    bool want_write);

    /**
     * Re-register a hit on a bound slot without re-applying the
     * checks: for callers replaying a translation whose inputs are
     * bit-identical to bind time (same vaddr, zero extra offset), so
     * the cached result is known to hold. Statistics match one
     * translate() hit.
     */
    void rehit(void *slot) { cache_.rehit(slot); }

    /** Structural generation of the underlying cache (bindings). */
    std::uint64_t generation() const { return cache_.generation(); }

    /**
     * Attach to @p table so growth/free invalidate the matching entry.
     * Call once per table routed through this ATLB.
     */
    void watch(mem::SegmentTable &table);

    /** Drop one entry (mapping change). */
    void invalidate(std::uint32_t team, std::uint64_t seg_key);

    /** Drop everything (not needed on process switch; see paper 2.3). */
    void invalidateAll() { cache_.invalidateAll(); }

    /** Hit ratio so far. */
    double hitRatio() const { return cache_.hitRatio(); }
    /** Underlying cache statistics. */
    const sim::StatGroup &stats() const { return cache_.stats(); }
    /** Reset statistics, keeping contents. */
    void resetStats() { cache_.resetStats(); }
    /** Modeled miss penalty in cycles. */
    std::uint64_t missPenalty() const { return missPenalty_; }

    /** Snapshot type of the underlying cache (machine images). */
    using Snapshot =
        SetAssocCache<AtlbKey, mem::SegmentDescriptor,
                      AtlbKeyHash>::Snapshot;

    /** Capture contents + statistics. */
    Snapshot snapshot() const { return cache_.snapshot(); }
    /** Restore a snapshot onto a same-shaped ATLB. */
    void restore(const Snapshot &s) { cache_.restore(s); }

  private:
    /** The offset-dependent checks shared by every translate flavor. */
    static mem::XlateResult
    applyDescriptor(const mem::FpFormat &fmt,
                    const mem::SegmentDescriptor &desc,
                    const mem::FpDecoded &d, std::uint64_t extra_offset,
                    bool want_write);

    SetAssocCache<AtlbKey, mem::SegmentDescriptor, AtlbKeyHash> cache_;
    std::uint64_t missPenalty_;
};

inline mem::XlateResult
Atlb::applyDescriptor(const mem::FpFormat &fmt,
                      const mem::SegmentDescriptor &desc,
                      const mem::FpDecoded &d,
                      std::uint64_t extra_offset, bool want_write)
{
    mem::XlateResult r;
    std::uint64_t off = d.offset + extra_offset;
    if (desc.alias && off >= (1ull << d.exponent)) {
        r.status = mem::XlateStatus::GrowthTrap;
        r.newVaddr = mem::FpAddress::addOffset(
            fmt, desc.aliasVaddr, static_cast<std::int64_t>(off));
        return r;
    }
    if (off >= desc.length) {
        r.status = mem::XlateStatus::Bounds;
        return r;
    }
    if (want_write && !desc.writable) {
        r.status = mem::XlateStatus::ProtFault;
        return r;
    }
    r.status = mem::XlateStatus::Ok;
    r.abs = desc.base + off;
    r.cls = desc.cls;
    return r;
}

inline mem::XlateResult
Atlb::translate(const mem::SegmentTable &table, std::uint64_t vaddr,
                std::uint64_t extra_offset, bool want_write,
                std::uint64_t *latency)
{
    const mem::FpFormat &fmt = table.format();
    mem::FpDecoded d = mem::FpAddress::decode(fmt, vaddr);
    AtlbKey key{table.teamId(),
                (d.exponent << fmt.mantissaBits) | d.segField};

    if (latency)
        *latency = 0;

    const mem::SegmentDescriptor *desc = cache_.lookup(key);
    if (!desc) {
        // Miss: walk the team's table.
        if (latency)
            *latency = missPenalty_;
        const mem::SegmentDescriptor *walked =
            table.findDescriptor(key.segKey);
        if (!walked) {
            mem::XlateResult r;
            r.status = mem::XlateStatus::NoSegment;
            return r;
        }
        cache_.insert(key, *walked);
        desc = walked;
    }

    // Apply the same checks the segment table applies, against the
    // cached descriptor.
    return applyDescriptor(fmt, *desc, d, extra_offset, want_write);
}

inline mem::XlateResult
Atlb::translateBind(const mem::SegmentTable &table, std::uint64_t vaddr,
                    std::uint64_t extra_offset, bool want_write,
                    std::uint64_t *latency, void **slot_out)
{
    const mem::FpFormat &fmt = table.format();
    mem::FpDecoded d = mem::FpAddress::decode(fmt, vaddr);
    AtlbKey key{table.teamId(),
                (d.exponent << fmt.mantissaBits) | d.segField};

    if (latency)
        *latency = 0;
    *slot_out = nullptr;

    const mem::SegmentDescriptor *desc = cache_.lookupBind(key, slot_out);
    if (!desc) {
        if (latency)
            *latency = missPenalty_;
        const mem::SegmentDescriptor *walked =
            table.findDescriptor(key.segKey);
        if (!walked) {
            mem::XlateResult r;
            r.status = mem::XlateStatus::NoSegment;
            return r;
        }
        cache_.insert(key, *walked);
        desc = walked;
    }
    return applyDescriptor(fmt, *desc, d, extra_offset, want_write);
}

inline mem::XlateResult
Atlb::translateBound(void *slot, const mem::SegmentTable &table,
                     std::uint64_t vaddr, std::uint64_t extra_offset,
                     bool want_write)
{
    const mem::FpFormat &fmt = table.format();
    mem::FpDecoded d = mem::FpAddress::decode(fmt, vaddr);
    const mem::SegmentDescriptor *desc = cache_.rehit(slot);
    return applyDescriptor(fmt, *desc, d, extra_offset, want_write);
}

} // namespace com::cache

#endif // COMSIM_CACHE_ATLB_HPP
