#include "cache/itlb.hpp"

#include "sim/logging.hpp"

namespace com::cache {

Itlb::Itlb(std::size_t num_sets, std::size_t ways, ReplPolicy policy,
           std::uint64_t miss_penalty)
    : cache_(num_sets, ways, policy, "itlb"), missPenalty_(miss_penalty)
{
}

Itlb
Itlb::withEntries(std::size_t entries, std::size_t ways,
                  ReplPolicy policy, std::uint64_t miss_penalty)
{
    sim::fatalIf(ways == 0 || entries % ways != 0,
                 "ITLB entries (", entries,
                 ") must be a multiple of ways (", ways, ")");
    return Itlb(entries / ways, ways, policy, miss_penalty);
}

} // namespace com::cache
