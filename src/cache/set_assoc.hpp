/**
 * @file
 * Generic set-associative cache model.
 *
 * Used throughout comsim wherever the paper deploys an associative
 * memory: the instruction translation lookaside buffer (Section 2.1), the
 * address translation lookaside buffer (Section 3.1), the instruction
 * cache (Section 3.6), levels of the absolute->physical hierarchy
 * (Section 3.1), and the context cache directory (Figure 7).
 *
 * The model is a presence/recency/statistics structure; the data payload
 * is an arbitrary Value type supplied by the client.
 */

#ifndef COMSIM_CACHE_SET_ASSOC_HPP
#define COMSIM_CACHE_SET_ASSOC_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/logging.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace com::cache {

/** Victim selection policy. */
enum class ReplPolicy : std::uint8_t
{
    Lru,    ///< least recently used
    Fifo,   ///< oldest insertion
    Random, ///< uniform random way
};

/** @return printable policy name. */
inline const char *
replPolicyName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::Lru: return "lru";
      case ReplPolicy::Fifo: return "fifo";
      case ReplPolicy::Random: return "random";
    }
    return "?";
}

/**
 * A set-associative cache of Key -> Value with configurable replacement.
 *
 * The number of sets must be a power of two. Set selection uses
 * SetHash(key) & (sets-1); for integer keys the default hash is the
 * identity, giving the conventional low-bits indexing (so a direct-mapped
 * instruction cache behaves like real hardware, conflict misses
 * included).
 *
 * @tparam Key entry identity (must be equality comparable)
 * @tparam Value payload stored per entry
 * @tparam SetHash functor mapping Key -> uint64 for set selection
 */
template <typename Key, typename Value, typename SetHash = std::hash<Key>>
class SetAssocCache
{
  public:
    /** An evicted entry returned from insert(). */
    struct Evicted
    {
        Key key;
        Value value;
    };

    /**
     * @param num_sets power-of-two set count
     * @param ways associativity (>=1)
     * @param policy victim selection policy
     * @param name statistics group name
     * @param seed RNG seed for ReplPolicy::Random
     */
    SetAssocCache(std::size_t num_sets, std::size_t ways,
                  ReplPolicy policy, const std::string &name = "cache",
                  std::uint64_t seed = 1)
        : numSets_(num_sets), ways_(ways), policy_(policy),
          slots_(num_sets * ways), rng_(seed), stats_(name)
    {
        sim::fatalIf(num_sets == 0 || (num_sets & (num_sets - 1)) != 0,
                     "cache set count must be a power of two, got ",
                     num_sets);
        sim::fatalIf(ways == 0, "cache must have at least one way");
        stats_.addCounter("hits", &hits_, "lookups that hit");
        stats_.addCounter("misses", &misses_, "lookups that missed");
        stats_.addCounter("evictions", &evictions_,
                          "entries evicted by fills");
        stats_.addCounter("invalidations", &invalidations_,
                          "entries removed by invalidate");
        stats_.addRatio("hit_ratio", &hits_, &lookups_,
                        "hits / lookups");
        stats_.addCounter("lookups", &lookups_, "total lookups");
    }

    /** Total entry capacity (sets x ways). */
    std::size_t capacity() const { return numSets_ * ways_; }
    /** Number of sets. */
    std::size_t numSets() const { return numSets_; }
    /** Associativity. */
    std::size_t ways() const { return ways_; }

    /**
     * Look up @p key; on a hit the entry's recency is refreshed and a
     * pointer to its value is returned (valid until the next mutation).
     * On a miss returns nullptr. Hit/miss statistics are updated.
     *
     * This is the interpreter's fast-path probe: guaranteed
     * non-allocating, raw pointer result (no std::optional), LRU touch
     * inlined in the header so the hit path folds into the caller's
     * dispatch loop. Misses fall through to the caller's slow path
     * (fill/insert/evict), which is unchanged.
     */
    inline Value *
    lookup(const Key &key)
    {
        ++lookups_;
        Entry *set = setFor(key);
        for (std::size_t w = 0; w < ways_; ++w) {
            Entry &e = set[w];
            if (e.stamp != 0 && e.key == key) {
                ++hits_;
                if (policy_ == ReplPolicy::Lru)
                    e.stamp = ++tick_;
                return &e.value;
            }
        }
        ++misses_;
        return nullptr;
    }

    /**
     * Like lookup(), but on a hit also hands back an opaque slot
     * handle for later rehit() calls. Statistics and recency updates
     * are identical to lookup(); the handle stays valid until the
     * cache's generation() changes.
     */
    inline Value *
    lookupBind(const Key &key, void **slot_out)
    {
        ++lookups_;
        Entry *set = setFor(key);
        for (std::size_t w = 0; w < ways_; ++w) {
            Entry &e = set[w];
            if (e.stamp != 0 && e.key == key) {
                ++hits_;
                if (policy_ == ReplPolicy::Lru)
                    e.stamp = ++tick_;
                *slot_out = &e;
                return &e.value;
            }
        }
        ++misses_;
        return nullptr;
    }

    /**
     * Re-register a hit on a slot previously returned by lookupBind().
     * The caller must have verified the cache's generation() is
     * unchanged since binding (so the slot still holds the bound key).
     * Performs exactly the statistics and recency updates of a
     * lookup() hit — one lookup, one hit, one LRU touch — skipping
     * the set hash and the way scan.
     */
    inline Value *
    rehit(void *slot)
    {
        Entry *e = static_cast<Entry *>(slot);
        ++lookups_;
        ++hits_;
        if (policy_ == ReplPolicy::Lru)
            e->stamp = ++tick_;
        return &e->value;
    }

    /**
     * Structural generation: bumped by every mutation that can move,
     * replace or remove an existing entry (same-key replace, evicting
     * insert, erase, invalidateAll, restore). An insert that fills an
     * empty way leaves it unchanged — no existing entry moved. While
     * unchanged, a slot handle from lookupBind() still maps its bound
     * key and value. Plain lookups only refresh recency and never
     * bump it.
     */
    std::uint64_t generation() const { return generation_; }

    /** Non-statistical, non-recency probe (diagnostics only). */
    const Value *
    probe(const Key &key) const
    {
        const Entry *set = &slots_[setIndex(key) * ways_];
        for (std::size_t w = 0; w < ways_; ++w)
            if (set[w].stamp != 0 && set[w].key == key)
                return &set[w].value;
        return nullptr;
    }

    /**
     * Insert @p key -> @p value (replacing any entry with the same key).
     * @return the victim entry if an eviction was necessary
     */
    std::optional<Evicted>
    insert(const Key &key, Value value)
    {
        Entry *set = setFor(key);
        std::size_t free_slot = ways_;
        std::size_t occupied = 0;
        for (std::size_t i = 0; i < ways_; ++i) {
            if (set[i].stamp == 0) {
                if (free_slot == ways_)
                    free_slot = i;
                continue;
            }
            ++occupied;
            if (set[i].key == key) {
                // Same-key replace: a bound slot's value changes, so
                // generations move.
                ++generation_;
                set[i].value = std::move(value);
                set[i].stamp = ++tick_;
                return std::nullopt;
            }
        }
        if (free_slot != ways_) {
            // Filling an empty way touches no existing entry: every
            // bound slot still holds its bound key and value, so the
            // generation holds. (Cold fills are frequent — e.g. each
            // fresh context's first ATLB translation — and must not
            // churn unrelated bindings.)
            set[free_slot] = Entry{key, std::move(value), ++tick_};
            return std::nullopt;
        }
        ++generation_; // the eviction below replaces an entry
        // Choose a victim (every slot is occupied here).
        std::size_t victim = 0;
        switch (policy_) {
          case ReplPolicy::Lru:
          case ReplPolicy::Fifo:
            for (std::size_t i = 1; i < ways_; ++i)
                if (set[i].stamp < set[victim].stamp)
                    victim = i;
            break;
          case ReplPolicy::Random:
            victim = static_cast<std::size_t>(rng_.below(occupied));
            break;
        }
        ++evictions_;
        Evicted out{set[victim].key, std::move(set[victim].value)};
        set[victim] = Entry{key, std::move(value), ++tick_};
        return out;
    }

    /** Remove @p key if present. @return true if removed. */
    bool
    erase(const Key &key)
    {
        Entry *set = setFor(key);
        for (std::size_t i = 0; i < ways_; ++i) {
            if (set[i].stamp != 0 && set[i].key == key) {
                set[i] = Entry{};
                ++invalidations_;
                ++generation_;
                return true;
            }
        }
        return false;
    }

    /** Drop every entry. */
    void
    invalidateAll()
    {
        ++generation_;
        for (Entry &e : slots_) {
            if (e.stamp != 0) {
                ++invalidations_;
                e = Entry{};
            }
        }
    }

    /** Number of valid entries across all sets. */
    std::size_t
    size() const
    {
        std::size_t n = 0;
        for (const Entry &e : slots_)
            if (e.stamp != 0)
                ++n;
        return n;
    }

    /** Hits so far. */
    std::uint64_t hits() const { return hits_.value(); }
    /** Misses so far. */
    std::uint64_t misses() const { return misses_.value(); }
    /** Hit ratio over all lookups (0 when no lookups). */
    double
    hitRatio() const
    {
        std::uint64_t total = hits_.value() + misses_.value();
        return total ? static_cast<double>(hits_.value()) / total : 0.0;
    }

    /** Reset statistics but keep contents (for warmup-then-measure). */
    void
    resetStats()
    {
        hits_.reset();
        misses_.reset();
        evictions_.reset();
        invalidations_.reset();
        lookups_.reset();
    }

    /** Statistics group. */
    const sim::StatGroup &stats() const { return stats_; }

    /**
     * Full cache state (contents, recency, RNG, counters); defined
     * after the class so it can use the private Entry type.
     */
    struct Snapshot;

    /** Capture contents + statistics (for machine images). */
    Snapshot snapshot() const;

    /** Restore state captured by snapshot() on a same-shaped cache. */
    void restore(const Snapshot &s);

  private:
    /**
     * One cache slot. stamp == 0 marks an empty slot: tick_ starts at
     * 0 and is pre-incremented, so live entries always stamp >= 1.
     * Storage is a single flat array of numSets x ways slots — the
     * interpreter probes a cache several times per simulated
     * instruction, and the flat layout keeps a set's ways in one or
     * two host cache lines with no per-set heap indirection.
     */
    struct Entry
    {
        Key key{};
        Value value{};
        std::uint64_t stamp = 0;
    };

    std::size_t
    setIndex(const Key &key) const
    {
        return static_cast<std::size_t>(SetHash{}(key)) & (numSets_ - 1);
    }

    Entry *setFor(const Key &key)
    {
        return &slots_[setIndex(key) * ways_];
    }

    std::size_t numSets_;
    std::size_t ways_;
    ReplPolicy policy_;
    std::vector<Entry> slots_;
    std::uint64_t tick_ = 0;
    std::uint64_t generation_ = 0;
    sim::Rng rng_;

    sim::Counter hits_;
    sim::Counter misses_;
    sim::Counter evictions_;
    sim::Counter invalidations_;
    sim::Counter lookups_;
    sim::StatGroup stats_;
};

template <typename Key, typename Value, typename SetHash>
struct SetAssocCache<Key, Value, SetHash>::Snapshot
{
    std::vector<Entry> slots;
    std::uint64_t tick = 0;
    sim::Rng rng;
    std::uint64_t hits = 0, misses = 0, evictions = 0,
                  invalidations = 0, lookups = 0;
};

template <typename Key, typename Value, typename SetHash>
typename SetAssocCache<Key, Value, SetHash>::Snapshot
SetAssocCache<Key, Value, SetHash>::snapshot() const
{
    Snapshot s;
    s.slots = slots_;
    s.tick = tick_;
    s.rng = rng_;
    s.hits = hits_.value();
    s.misses = misses_.value();
    s.evictions = evictions_.value();
    s.invalidations = invalidations_.value();
    s.lookups = lookups_.value();
    return s;
}

template <typename Key, typename Value, typename SetHash>
void
SetAssocCache<Key, Value, SetHash>::restore(const Snapshot &s)
{
    ++generation_;
    slots_ = s.slots;
    tick_ = s.tick;
    rng_ = s.rng;
    hits_.set(s.hits);
    misses_.set(s.misses);
    evictions_.set(s.evictions);
    invalidations_.set(s.invalidations);
    lookups_.set(s.lookups);
}

} // namespace com::cache

#endif // COMSIM_CACHE_SET_ASSOC_HPP
