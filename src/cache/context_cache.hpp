/**
 * @file
 * The context cache (paper Sections 2.3, 3.6, Figure 7).
 *
 * A set of 32-word blocks, each able to hold one context, fronted by an
 * associative directory keyed on *absolute* context addresses and four
 * access vectors:
 *
 *   1. current — singleton set naming the current context's block;
 *   2. next    — singleton set naming the next context's block;
 *   3. free    — the set of unused blocks;
 *   4. match   — singleton set produced by a directory match.
 *
 * Current/next accesses bypass the directory entirely (they select the
 * block straight from the vector plus a 5-bit word address), which is
 * what lets the cache replace a register file and fetch two operands in
 * parallel through its dual ports.
 *
 * Allocation takes a free block, clears it in one operation (special
 * circuitry in the memory array) and writes the absolute address into
 * the directory: a new context is never faulted in, and a recycled one
 * is never cleaned by software.
 *
 * Copy-back (Section 2.3): when only `lowWater` blocks remain free the
 * cache copies least-recently-used contexts back to memory, concurrently
 * with execution; when more than half the cache is free, evicted
 * contexts from the return chain are copied back in.
 *
 * Three advantages over register windows / stack caches, all modeled
 * here and measured in bench/ablation_windows:
 *   1. blocks need not be contiguous (non-LIFO contexts don't fragment);
 *   2. associating on absolute addresses means no invalidation on
 *      process switch;
 *   3. automatic initialization of new contexts (clear-on-allocate).
 */

#ifndef COMSIM_CACHE_CONTEXT_CACHE_HPP
#define COMSIM_CACHE_CONTEXT_CACHE_HPP

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/tagged_memory.hpp"
#include "mem/word.hpp"
#include "sim/stats.hpp"

namespace com::cache {

/** Which access path selects the block. */
enum class CtxVia : std::uint8_t
{
    Current, ///< through the current vector (no directory)
    Next,    ///< through the next vector (no directory)
};

/**
 * The context cache. Functionally it owns the freshest copy of every
 * context it holds; evictions and explicit flushes write contexts back
 * to the TaggedMemory backing store.
 */
class ContextCache
{
  public:
    /**
     * @param memory backing store for copy-back and fault-in
     * @param num_blocks number of context-sized blocks (paper: 32)
     * @param block_words words per context (paper: 32)
     * @param low_water start background copy-back when free blocks
     *        drop to this count (paper: 2)
     */
    explicit ContextCache(mem::TaggedMemory &memory,
                          std::size_t num_blocks = 32,
                          std::size_t block_words = 32,
                          std::size_t low_water = 2);

    // ------------------------------------------------------------------
    // Allocation and control transfer
    // ------------------------------------------------------------------

    /**
     * Allocate @p abs as the next context: takes a free block (evicting
     * the LRU cached context if none is free), clears it in one
     * operation and enters it into the directory.
     * @return cycles stalled waiting for an eviction (0 when a free
     *         block was available — the common, copy-back-hidden case)
     */
    std::uint64_t allocateNext(mem::AbsAddr abs);

    /**
     * Method call: the next vector moves to the current vector. The
     * caller must then allocateNext() a fresh context.
     */
    void callAdvance();

    /**
     * Method return: the current vector moves back to the next vector
     * and the directory association for @p caller_abs sets the current
     * vector, faulting the caller's context in from memory if it was
     * copied back.
     * @return cycles stalled faulting the caller context in (0 on a
     *         directory hit)
     */
    std::uint64_t returnRestore(mem::AbsAddr caller_abs);

    /**
     * Release the block holding @p abs without writing it back (the
     * context was freed; its contents are dead). No-op if not cached.
     */
    void discard(mem::AbsAddr abs);

    /**
     * Process switch: re-point current/next at other contexts. Because
     * the directory associates on absolute addresses nothing is
     * invalidated; contexts of the old process stay cached.
     * @return stall cycles from faulting either context in
     */
    std::uint64_t switchTo(mem::AbsAddr current_abs, mem::AbsAddr next_abs);

    /**
     * Background maintenance, called once per simulated instruction:
     * when free blocks are at or below the low-water mark, copy the LRU
     * context back (concurrently — no stall charged); when more than
     * half the cache is free, fault in contexts along the @p rcp_chain
     * (the return path), oldest first.
     */
    void maintain(const std::vector<mem::AbsAddr> &rcp_chain);

    /**
     * The per-instruction maintenance call with no prefetch chain:
     * only the low-water copy-back check. Kept separate (and trivial)
     * so the interpreter loop does not construct an empty vector per
     * simulated instruction.
     */
    void
    maintain()
    {
        if (freeCount_ <= lowWater_) {
            int victim = lruEvictable();
            if (victim != kNone)
                copyBack(victim);
        }
    }

    /**
     * True when maintain() would be a no-op (free blocks above the
     * low-water mark). The superblock runner may batch instructions
     * only while this holds: skipped per-instruction maintain() calls
     * are then statistically invisible.
     */
    bool maintainIdle() const { return freeCount_ > lowWater_; }

    // ------------------------------------------------------------------
    // Data access
    // ------------------------------------------------------------------

    // Current/next reads and writes happen two to three times per
    // simulated instruction (the dual-ported operand fetch of Figure
    // 5); both are defined inline below the class so the interpreter
    // pays an index plus a bounds assert, not a call.

    /** Read a word of the current or next context (no directory). */
    mem::Word read(CtxVia via, std::size_t offset);

    /** Write a word of the current or next context (no directory). */
    void write(CtxVia via, std::size_t offset, mem::Word w);

    /**
     * Read through the directory by absolute address (block may need a
     * fault-in). Used for non-current context access.
     * @param[out] stall cycles spent faulting in; may be null
     */
    mem::Word readAbs(mem::AbsAddr abs, std::size_t offset,
                      std::uint64_t *stall = nullptr);

    /** Write through the directory by absolute address. */
    void writeAbs(mem::AbsAddr abs, std::size_t offset, mem::Word w,
                  std::uint64_t *stall = nullptr);

    /** Write every dirty cached context back to memory. */
    void flushAll();

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /** Absolute address of the current context (0 if none). */
    mem::AbsAddr currentAbs() const;
    /** Absolute address of the next context (0 if none). */
    mem::AbsAddr nextAbs() const;
    /** Number of free blocks (tracked incrementally; O(1)). */
    std::size_t freeBlocks() const { return freeCount_; }
    /** True if @p abs is resident. */
    bool isResident(mem::AbsAddr abs) const;
    /** Words per block. */
    std::size_t blockWords() const { return blockWords_; }
    /** Block count. */
    std::size_t numBlocks() const { return blocks_.size(); }

    /** The free vector as a bit mask (bit i = block i free). */
    std::uint64_t freeVector() const;
    /** The current vector as a bit mask (singleton or empty). */
    std::uint64_t currentVector() const;
    /** The next vector as a bit mask (singleton or empty). */
    std::uint64_t nextVector() const;

    /** Statistics group ("context_cache"). */
    const sim::StatGroup &stats() const { return stats_; }
    /** Reset statistics (contents kept). */
    void resetStats();

    /** Contexts allocated without a fault-in (always, by design). */
    std::uint64_t allocations() const { return allocs_.value(); }
    /** Copy-backs performed (background + forced). */
    std::uint64_t copybacks() const { return copybacks_.value(); }
    /** Return-path directory misses (caller had been copied back). */
    std::uint64_t returnMisses() const { return returnMisses_.value(); }
    /** Return-path directory hits. */
    std::uint64_t returnHits() const { return returnHits_.value(); }
    /** Forced (stalling) evictions during allocate. */
    std::uint64_t forcedEvictions() const { return forced_.value(); }

    /**
     * Full cache state (blocks, directory, vectors, counters);
     * defined after the class so it can use the private Block type.
     */
    struct Snapshot;

    /** Capture contents + statistics (for machine images). */
    Snapshot snapshot() const;

    /** Restore state captured by snapshot() on a same-shaped cache. */
    void restore(const Snapshot &s);

  private:
    static constexpr int kNone = -1;

    struct Block
    {
        bool valid = false;
        bool dirty = false;
        mem::AbsAddr abs = 0;
        std::uint64_t stamp = 0; ///< LRU recency
        std::vector<mem::Word> data;
    };

    /**
     * Directory match: block index holding @p abs, or kNone. Served by
     * an O(1) index over the valid blocks (the hardware directory is
     * associative; the host model used to scan every block on each
     * readAbs/writeAbs). The index is maintained under the invariant
     * that at most one valid block holds any absolute address.
     */
    int
    match(mem::AbsAddr abs) const
    {
        auto it = dir_.find(abs);
        return it == dir_.end() ? kNone : it->second;
    }
    /** First free block, or kNone. */
    int firstFree() const;
    /** LRU valid block excluding current/next, or kNone. */
    int lruEvictable() const;
    /** Copy block @p b back to memory and mark it free. */
    void copyBack(int b);
    /** Load @p abs into a block (evicting if needed). @return stalls. */
    std::uint64_t faultIn(mem::AbsAddr abs, int &block_out);
    void touch(int b) { blocks_[static_cast<std::size_t>(b)].stamp = ++tick_; }
    Block &blk(int b) { return blocks_[static_cast<std::size_t>(b)]; }
    const Block &blk(int b) const
    {
        return blocks_[static_cast<std::size_t>(b)];
    }

    mem::TaggedMemory &memory_;
    std::size_t blockWords_;
    std::size_t lowWater_;
    std::vector<Block> blocks_;
    /** Directory index: absolute address -> valid block holding it. */
    std::unordered_map<mem::AbsAddr, int> dir_;
    std::size_t freeCount_ = 0; ///< invalid blocks, kept in sync
    int current_ = kNone;
    int next_ = kNone;
    std::uint64_t tick_ = 0;

    sim::Counter allocs_;
    sim::Counter clears_;
    sim::Counter copybacks_;
    sim::Counter prefetches_;
    sim::Counter returnHits_;
    sim::Counter returnMisses_;
    sim::Counter forced_;
    sim::Counter reads_;
    sim::Counter writes_;
    sim::StatGroup stats_;
};

inline mem::Word
ContextCache::read(CtxVia via, std::size_t offset)
{
    int b = via == CtxVia::Current ? current_ : next_;
    sim::panicIf(b == kNone, "context cache read with empty ",
                 via == CtxVia::Current ? "current" : "next",
                 " vector");
    sim::panicIf(offset >= blockWords_,
                 "context offset ", offset, " out of range");
    ++reads_;
    touch(b);
    return blk(b).data[offset];
}

inline void
ContextCache::write(CtxVia via, std::size_t offset, mem::Word w)
{
    int b = via == CtxVia::Current ? current_ : next_;
    sim::panicIf(b == kNone, "context cache write with empty ",
                 via == CtxVia::Current ? "current" : "next",
                 " vector");
    sim::panicIf(offset >= blockWords_,
                 "context offset ", offset, " out of range");
    ++writes_;
    Block &blkref = blk(b);
    blkref.data[offset] = w;
    blkref.dirty = true;
    touch(b);
}

struct ContextCache::Snapshot
{
    std::vector<Block> blocks;
    std::unordered_map<mem::AbsAddr, int> dir;
    std::size_t freeCount = 0;
    int current = kNone;
    int next = kNone;
    std::uint64_t tick = 0;
    std::uint64_t allocs = 0, clears = 0, copybacks = 0, prefetches = 0;
    std::uint64_t returnHits = 0, returnMisses = 0, forced = 0;
    std::uint64_t reads = 0, writes = 0;
};

inline ContextCache::Snapshot
ContextCache::snapshot() const
{
    Snapshot s;
    s.blocks = blocks_;
    s.dir = dir_;
    s.freeCount = freeCount_;
    s.current = current_;
    s.next = next_;
    s.tick = tick_;
    s.allocs = allocs_.value();
    s.clears = clears_.value();
    s.copybacks = copybacks_.value();
    s.prefetches = prefetches_.value();
    s.returnHits = returnHits_.value();
    s.returnMisses = returnMisses_.value();
    s.forced = forced_.value();
    s.reads = reads_.value();
    s.writes = writes_.value();
    return s;
}

inline void
ContextCache::restore(const Snapshot &s)
{
    blocks_ = s.blocks;
    dir_ = s.dir;
    freeCount_ = s.freeCount;
    current_ = s.current;
    next_ = s.next;
    tick_ = s.tick;
    allocs_.set(s.allocs);
    clears_.set(s.clears);
    copybacks_.set(s.copybacks);
    prefetches_.set(s.prefetches);
    returnHits_.set(s.returnHits);
    returnMisses_.set(s.returnMisses);
    forced_.set(s.forced);
    reads_.set(s.reads);
    writes_.set(s.writes);
}

} // namespace com::cache

#endif // COMSIM_CACHE_CONTEXT_CACHE_HPP
