#include "cache/atlb.hpp"

#include "mem/fp_address.hpp"

namespace com::cache {

Atlb::Atlb(std::size_t num_sets, std::size_t ways,
           std::uint64_t miss_penalty)
    : cache_(num_sets, ways, ReplPolicy::Lru, "atlb"),
      missPenalty_(miss_penalty)
{
}

mem::XlateResult
Atlb::translate(const mem::SegmentTable &table, std::uint64_t vaddr,
                std::uint64_t extra_offset, bool want_write,
                std::uint64_t *latency)
{
    const mem::FpFormat &fmt = table.format();
    mem::FpDecoded d = mem::FpAddress::decode(fmt, vaddr);
    AtlbKey key{table.teamId(),
                (d.exponent << fmt.mantissaBits) | d.segField};

    if (latency)
        *latency = 0;

    const mem::SegmentDescriptor *desc = cache_.lookup(key);
    bool filled_from_walk = false;
    if (!desc) {
        // Miss: walk the team's table.
        if (latency)
            *latency = missPenalty_;
        const mem::SegmentDescriptor *walked =
            table.findDescriptor(key.segKey);
        if (!walked) {
            mem::XlateResult r;
            r.status = mem::XlateStatus::NoSegment;
            return r;
        }
        cache_.insert(key, *walked);
        desc = cache_.probe(key);
        filled_from_walk = true;
        (void)filled_from_walk;
    }

    // Apply the same checks the segment table applies, against the
    // cached descriptor.
    mem::XlateResult r;
    std::uint64_t off = d.offset + extra_offset;
    if (desc->alias && off >= (1ull << d.exponent)) {
        r.status = mem::XlateStatus::GrowthTrap;
        r.newVaddr = mem::FpAddress::addOffset(
            fmt, desc->aliasVaddr, static_cast<std::int64_t>(off));
        return r;
    }
    if (off >= desc->length) {
        r.status = mem::XlateStatus::Bounds;
        return r;
    }
    if (want_write && !desc->writable) {
        r.status = mem::XlateStatus::ProtFault;
        return r;
    }
    r.status = mem::XlateStatus::Ok;
    r.abs = desc->base + off;
    r.cls = desc->cls;
    return r;
}

void
Atlb::watch(mem::SegmentTable &table)
{
    table.addChangeListener(
        [this](std::uint32_t team, std::uint64_t seg_key) {
            invalidate(team, seg_key);
        });
}

void
Atlb::invalidate(std::uint32_t team, std::uint64_t seg_key)
{
    cache_.erase(AtlbKey{team, seg_key});
}

} // namespace com::cache
