#include "cache/atlb.hpp"

#include "mem/fp_address.hpp"

namespace com::cache {

Atlb::Atlb(std::size_t num_sets, std::size_t ways,
           std::uint64_t miss_penalty)
    : cache_(num_sets, ways, ReplPolicy::Lru, "atlb"),
      missPenalty_(miss_penalty)
{
}

void
Atlb::watch(mem::SegmentTable &table)
{
    table.addChangeListener(
        [this](std::uint32_t team, std::uint64_t seg_key) {
            invalidate(team, seg_key);
        });
}

void
Atlb::invalidate(std::uint32_t team, std::uint64_t seg_key)
{
    cache_.erase(AtlbKey{team, seg_key});
}

} // namespace com::cache
