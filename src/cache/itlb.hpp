/**
 * @file
 * Instruction translation lookaside buffer (paper Section 2.1, Figure 1).
 *
 * The COM's instructions are abstract: the meaning of an opcode depends
 * on the classes of its operands. The ITLB associates a key — an opcode
 * together with the set of operand classes — to a method entry holding:
 *
 *   1) a primitive bit: whether the method is primitive or defined;
 *   2) a method field: for primitives it selects a function unit, for
 *      defined methods it points at the code object.
 *
 * On an ITLB miss, an instruction descriptor is pulled in from the
 * appropriate message dictionary via the standard method lookup — the
 * step that always occurs in a Smalltalk execution. The decoder (core/)
 * performs that fill; this class models only the associative mechanism,
 * so the Section 5 trace experiments can drive it directly.
 */

#ifndef COMSIM_CACHE_ITLB_HPP
#define COMSIM_CACHE_ITLB_HPP

#include <cstdint>

#include "cache/set_assoc.hpp"
#include "mem/word.hpp"

namespace com::cache {

/** ITLB key: opcode plus the (ordered) operand class tuple. */
struct ItlbKey
{
    std::uint32_t opcode = 0;
    mem::ClassId classA = 0;
    mem::ClassId classB = 0;
    mem::ClassId classC = 0;

    friend bool
    operator==(const ItlbKey &a, const ItlbKey &b)
    {
        return a.opcode == b.opcode && a.classA == b.classA &&
               a.classB == b.classB && a.classC == b.classC;
    }
};

/** Mixing hash over all key fields. */
struct ItlbKeyHash
{
    std::uint64_t
    operator()(const ItlbKey &k) const
    {
        std::uint64_t h = k.opcode;
        h = h * 0x100000001b3ull ^ k.classA;
        h = h * 0x100000001b3ull ^ k.classB;
        h = h * 0x100000001b3ull ^ k.classC;
        h *= 0x9e3779b97f4a7c15ull;
        return h ^ (h >> 31);
    }
};

/**
 * One resolved method: the value side of an ITLB entry.
 *
 * For primitive methods, functionUnit selects the hardware data path
 * (an index into the machine's primitive dispatch table). For defined
 * methods, methodVaddr names the code object to call and argWords is
 * the number of operand words the call sequence copies into the new
 * context.
 */
struct MethodEntry
{
    bool primitive = false;
    std::uint32_t functionUnit = 0;  ///< valid when primitive
    std::uint64_t methodVaddr = 0;   ///< valid when !primitive
    std::uint8_t argWords = 0;       ///< operand words copied on call

    friend bool
    operator==(const MethodEntry &a, const MethodEntry &b)
    {
        return a.primitive == b.primitive &&
               a.functionUnit == b.functionUnit &&
               a.methodVaddr == b.methodVaddr && a.argWords == b.argWords;
    }
};

/**
 * The ITLB proper: a set-associative cache from ItlbKey to MethodEntry.
 *
 * A thin wrapper over SetAssocCache that fixes the key/value types and
 * carries the modeled miss penalty (the cost of a full method lookup,
 * which Section 2.1 notes is "quite costly" in software).
 */
class Itlb
{
  public:
    /**
     * @param num_sets power-of-two set count
     * @param ways associativity
     * @param policy replacement policy
     * @param miss_penalty cycles modeled for the dictionary lookup on
     *        a miss
     */
    Itlb(std::size_t num_sets, std::size_t ways,
         ReplPolicy policy = ReplPolicy::Lru,
         std::uint64_t miss_penalty = 24);

    /** Convenience: build with total @p entries split across @p ways. */
    static Itlb withEntries(std::size_t entries, std::size_t ways,
                            ReplPolicy policy = ReplPolicy::Lru,
                            std::uint64_t miss_penalty = 24);

    /** Probe for @p key; nullptr on miss. Updates statistics. */
    MethodEntry *
    lookup(const ItlbKey &key)
    {
        return cache_.lookup(key);
    }

    /**
     * Probe for @p key and bind: on a hit also returns an opaque slot
     * handle usable with rehit() while generation() is unchanged.
     * Statistics are identical to lookup().
     */
    MethodEntry *
    lookupBind(const ItlbKey &key, void **slot_out)
    {
        return cache_.lookupBind(key, slot_out);
    }

    /**
     * Re-register a hit on a pre-bound slot (superblock fast path).
     * Caller must have checked generation() first. Bit-identical to a
     * lookup() hit on that key.
     */
    MethodEntry *rehit(void *slot) { return cache_.rehit(slot); }

    /** Structural generation guarding pre-bound slots. */
    std::uint64_t generation() const { return cache_.generation(); }

    /** Fill after a dictionary lookup. */
    void
    fill(const ItlbKey &key, const MethodEntry &entry)
    {
        cache_.insert(key, entry);
    }

    /** Remove entries (e.g. a method was redefined). */
    void invalidateAll() { cache_.invalidateAll(); }

    /** Hit ratio so far. */
    double hitRatio() const { return cache_.hitRatio(); }
    /** Hits so far. */
    std::uint64_t hits() const { return cache_.hits(); }
    /** Misses so far. */
    std::uint64_t misses() const { return cache_.misses(); }
    /** Reset statistics, keep contents (warmup support). */
    void resetStats() { cache_.resetStats(); }
    /** Total entry capacity. */
    std::size_t capacity() const { return cache_.capacity(); }
    /** Modeled miss penalty in cycles. */
    std::uint64_t missPenalty() const { return missPenalty_; }
    /** Statistics group ("itlb"). */
    const sim::StatGroup &stats() const { return cache_.stats(); }

    /** Snapshot type of the underlying cache (machine images). */
    using Snapshot =
        SetAssocCache<ItlbKey, MethodEntry, ItlbKeyHash>::Snapshot;

    /** Capture contents + statistics. */
    Snapshot snapshot() const { return cache_.snapshot(); }
    /** Restore a snapshot onto a same-shaped ITLB. */
    void restore(const Snapshot &s) { cache_.restore(s); }

  private:
    SetAssocCache<ItlbKey, MethodEntry, ItlbKeyHash> cache_;
    std::uint64_t missPenalty_;
};

} // namespace com::cache

#endif // COMSIM_CACHE_ITLB_HPP
