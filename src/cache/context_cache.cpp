#include "cache/context_cache.hpp"

#include "sim/logging.hpp"

namespace com::cache {

ContextCache::ContextCache(mem::TaggedMemory &memory,
                           std::size_t num_blocks,
                           std::size_t block_words,
                           std::size_t low_water)
    : memory_(memory), blockWords_(block_words), lowWater_(low_water),
      blocks_(num_blocks), stats_("context_cache")
{
    sim::fatalIf(num_blocks < 3,
                 "context cache needs at least current+next+one block");
    freeCount_ = num_blocks;
    for (auto &b : blocks_)
        b.data.assign(blockWords_, mem::Word());

    stats_.addCounter("allocations", &allocs_,
                      "contexts allocated (never faulted in)");
    stats_.addCounter("clears", &clears_,
                      "single-cycle block clears on allocation");
    stats_.addCounter("copybacks", &copybacks_,
                      "contexts copied back to memory");
    stats_.addCounter("prefetches", &prefetches_,
                      "contexts copied back into the cache");
    stats_.addCounter("return_hits", &returnHits_,
                      "returns finding the caller resident");
    stats_.addCounter("return_misses", &returnMisses_,
                      "returns faulting the caller in");
    stats_.addCounter("forced_evictions", &forced_,
                      "allocations that had to stall for an eviction");
    stats_.addCounter("reads", &reads_, "word reads through the cache");
    stats_.addCounter("writes", &writes_, "word writes through the cache");
}

int
ContextCache::firstFree() const
{
    for (std::size_t i = 0; i < blocks_.size(); ++i)
        if (!blocks_[i].valid)
            return static_cast<int>(i);
    return kNone;
}

int
ContextCache::lruEvictable() const
{
    int victim = kNone;
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        int ii = static_cast<int>(i);
        if (!blocks_[i].valid || ii == current_ || ii == next_)
            continue;
        if (victim == kNone ||
            blocks_[i].stamp < blk(victim).stamp)
            victim = ii;
    }
    return victim;
}

void
ContextCache::copyBack(int b)
{
    Block &blkref = blk(b);
    sim::panicIf(!blkref.valid, "copyBack of invalid block");
    if (blkref.dirty) {
        for (std::size_t i = 0; i < blockWords_; ++i)
            memory_.poke(blkref.abs + i, blkref.data[i]);
    }
    ++copybacks_;
    dir_.erase(blkref.abs);
    blkref.valid = false;
    blkref.dirty = false;
    ++freeCount_;
}

std::uint64_t
ContextCache::allocateNext(mem::AbsAddr abs)
{
    // A context reclaimed by the collector is freed without a discard,
    // so its block may still be resident when the pool re-issues the
    // same address. Drop the stale copy first: the fresh allocation is
    // cleared by definition, and two valid blocks must never share an
    // absolute address (the directory index relies on it).
    discard(abs);

    std::uint64_t stall = 0;
    int b = firstFree();
    if (b == kNone) {
        // Copy-back did not keep up: stall for a forced eviction.
        b = lruEvictable();
        sim::panicIf(b == kNone, "context cache wedged: no evictable "
                     "block during allocation");
        copyBack(b);
        ++forced_;
        stall = blockWords_; // one write per word to drain the victim
    }
    Block &blkref = blk(b);
    // Special circuitry clears the whole block in a single operation:
    // the new context is never faulted in and never cleaned by software.
    blkref.data.assign(blockWords_, mem::Word());
    --freeCount_;
    blkref.valid = true;
    blkref.dirty = true;
    blkref.abs = abs;
    dir_[abs] = b;
    touch(b);
    next_ = b;
    ++allocs_;
    ++clears_;
    return stall;
}

void
ContextCache::callAdvance()
{
    sim::panicIf(next_ == kNone, "callAdvance without a next context");
    current_ = next_;
    next_ = kNone;
    touch(current_);
}

std::uint64_t
ContextCache::returnRestore(mem::AbsAddr caller_abs)
{
    next_ = current_;
    if (next_ != kNone)
        touch(next_);

    int b = match(caller_abs);
    std::uint64_t stall = 0;
    if (b != kNone) {
        ++returnHits_;
    } else {
        ++returnMisses_;
        stall = faultIn(caller_abs, b);
    }
    current_ = b;
    touch(current_);
    return stall;
}

void
ContextCache::discard(mem::AbsAddr abs)
{
    int b = match(abs);
    if (b == kNone)
        return;
    Block &blkref = blk(b);
    dir_.erase(blkref.abs);
    blkref.valid = false;
    blkref.dirty = false;
    ++freeCount_;
    if (current_ == b)
        current_ = kNone;
    if (next_ == b)
        next_ = kNone;
}

std::uint64_t
ContextCache::switchTo(mem::AbsAddr current_abs, mem::AbsAddr next_abs)
{
    // No invalidation: the directory associates on absolute addresses,
    // so the old process's contexts simply stay resident.
    std::uint64_t stall = 0;
    int cb = match(current_abs);
    if (cb == kNone)
        stall += faultIn(current_abs, cb);
    current_ = cb;
    touch(cb);

    if (next_abs != 0) {
        int nb = match(next_abs);
        if (nb == kNone)
            stall += faultIn(next_abs, nb);
        next_ = nb;
        touch(nb);
    } else {
        next_ = kNone;
    }
    return stall;
}

std::uint64_t
ContextCache::faultIn(mem::AbsAddr abs, int &block_out)
{
    std::uint64_t stall = 0;
    int b = firstFree();
    if (b == kNone) {
        b = lruEvictable();
        sim::panicIf(b == kNone,
                     "context cache wedged: no evictable block");
        copyBack(b);
        stall += blockWords_;
    }
    Block &blkref = blk(b);
    for (std::size_t i = 0; i < blockWords_; ++i)
        blkref.data[i] = memory_.peek(abs + i);
    --freeCount_;
    blkref.valid = true;
    blkref.dirty = false;
    blkref.abs = abs;
    dir_[abs] = b;
    touch(b);
    stall += blockWords_; // one read per word to load the block
    block_out = b;
    return stall;
}

void
ContextCache::maintain(const std::vector<mem::AbsAddr> &rcp_chain)
{
    std::size_t free_count = freeBlocks();
    if (free_count <= lowWater_) {
        // Background copy-back of the LRU context; concurrent with
        // execution so no stall is charged here.
        maintain();
        return;
    }
    if (free_count > blocks_.size() / 2 && !rcp_chain.empty()) {
        // More than half free: copy contexts back *into* the cache,
        // shallowest first, so returns will hit.
        for (mem::AbsAddr abs : rcp_chain) {
            if (freeBlocks() <= blocks_.size() / 2)
                break;
            if (abs == 0 || match(abs) != kNone)
                continue;
            int b = kNone;
            faultIn(abs, b);
            ++prefetches_;
        }
    }
}

mem::Word
ContextCache::readAbs(mem::AbsAddr abs, std::size_t offset,
                      std::uint64_t *stall)
{
    sim::panicIf(offset >= blockWords_,
                 "context offset ", offset, " out of range");
    int b = match(abs);
    std::uint64_t st = 0;
    if (b == kNone)
        st = faultIn(abs, b);
    if (stall)
        *stall = st;
    ++reads_;
    touch(b);
    return blk(b).data[offset];
}

void
ContextCache::writeAbs(mem::AbsAddr abs, std::size_t offset, mem::Word w,
                       std::uint64_t *stall)
{
    sim::panicIf(offset >= blockWords_,
                 "context offset ", offset, " out of range");
    int b = match(abs);
    std::uint64_t st = 0;
    if (b == kNone)
        st = faultIn(abs, b);
    if (stall)
        *stall = st;
    ++writes_;
    Block &blkref = blk(b);
    blkref.data[offset] = w;
    blkref.dirty = true;
    touch(b);
}

void
ContextCache::flushAll()
{
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        if (blocks_[i].valid && blocks_[i].dirty) {
            for (std::size_t w = 0; w < blockWords_; ++w)
                memory_.poke(blocks_[i].abs + w, blocks_[i].data[w]);
            blocks_[i].dirty = false;
        }
    }
}

mem::AbsAddr
ContextCache::currentAbs() const
{
    return current_ == kNone ? 0 : blk(current_).abs;
}

mem::AbsAddr
ContextCache::nextAbs() const
{
    return next_ == kNone ? 0 : blk(next_).abs;
}

bool
ContextCache::isResident(mem::AbsAddr abs) const
{
    return match(abs) != kNone;
}

std::uint64_t
ContextCache::freeVector() const
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < blocks_.size() && i < 64; ++i)
        if (!blocks_[i].valid)
            v |= 1ull << i;
    return v;
}

std::uint64_t
ContextCache::currentVector() const
{
    return current_ == kNone ? 0 : 1ull << current_;
}

std::uint64_t
ContextCache::nextVector() const
{
    return next_ == kNone ? 0 : 1ull << next_;
}

void
ContextCache::resetStats()
{
    allocs_.reset();
    clears_.reset();
    copybacks_.reset();
    prefetches_.reset();
    returnHits_.reset();
    returnMisses_.reset();
    forced_.reset();
    reads_.reset();
    writes_.reset();
}

} // namespace com::cache
