#include "api/session.hpp"

#include "sim/logging.hpp"

namespace com::api {

Engine &
Session::engine()
{
    sim::fatalIf(!engine_,
                 "Session::engine() on an empty session (released, "
                 "moved-from, or a timed-out checkout)");
    return *engine_;
}

RunOutcome
Session::run(const ProgramSpec &spec, std::uint64_t max_ops)
{
    sim::fatalIf(!engine_,
                 "Session::run(", spec.name,
                 ") on an empty session (released, moved-from, or a "
                 "timed-out checkout)");
    return engine_->run(spec, max_ops);
}

void
Session::release()
{
    if (!pool_ || !engine_)
        return;
    // Reset on the releasing thread so the next checkout is instant
    // and reset work spreads across the serving threads.
    engine_->reset();
    pool_->checkin(kind_, std::move(engine_));
    pool_ = nullptr;
}

EnginePool::EnginePool() : EnginePool(Config{}) {}

EnginePool::EnginePool(const Config &cfg)
    : programCache_(cfg.programCache)
{
    auto fill = [this, &cfg](EngineKind kind, std::size_t n) {
        capacity_[slot(kind)] = n;
        for (std::size_t i = 0; i < n; ++i)
            idle_[slot(kind)].push_back(
                makeEngine(kind, cfg.machineConfig, programCache_));
    };
    fill(EngineKind::Com, cfg.comEngines);
    fill(EngineKind::Stack, cfg.stackEngines);
    fill(EngineKind::Fith, cfg.fithEngines);
}

Session
EnginePool::checkout(EngineKind kind)
{
    std::unique_lock<std::mutex> lock(mu_);
    sim::fatalIf(capacity_[slot(kind)] == 0,
                 "engine pool holds no ", engineKindName(kind),
                 " engines");
    std::vector<std::unique_ptr<Engine>> &bucket = idle_[slot(kind)];
    if (bucket.empty()) {
        ++waits_;
        cv_.wait(lock, [&bucket] { return !bucket.empty(); });
    }
    std::unique_ptr<Engine> engine = std::move(bucket.back());
    bucket.pop_back();
    ++checkouts_;
    return Session(this, kind, std::move(engine));
}

Session
EnginePool::tryCheckoutFor(EngineKind kind,
                           std::chrono::nanoseconds timeout)
{
    std::unique_lock<std::mutex> lock(mu_);
    sim::fatalIf(capacity_[slot(kind)] == 0,
                 "engine pool holds no ", engineKindName(kind),
                 " engines");
    std::vector<std::unique_ptr<Engine>> &bucket = idle_[slot(kind)];
    if (bucket.empty()) {
        ++waits_;
        if (!cv_.wait_for(lock, timeout,
                          [&bucket] { return !bucket.empty(); })) {
            ++timeouts_;
            return Session();
        }
    }
    std::unique_ptr<Engine> engine = std::move(bucket.back());
    bucket.pop_back();
    ++checkouts_;
    return Session(this, kind, std::move(engine));
}

void
EnginePool::checkin(EngineKind kind, std::unique_ptr<Engine> engine)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        idle_[slot(kind)].push_back(std::move(engine));
        ++resets_; // Session::release() reset it before checkin
    }
    cv_.notify_all();
}

std::size_t
EnginePool::capacity(EngineKind kind) const
{
    return capacity_[slot(kind)];
}

std::size_t
EnginePool::idle(EngineKind kind) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return idle_[slot(kind)].size();
}

std::uint64_t
EnginePool::checkouts() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return checkouts_;
}

std::uint64_t
EnginePool::waits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return waits_;
}

std::uint64_t
EnginePool::resets() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return resets_;
}

std::uint64_t
EnginePool::timeouts() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return timeouts_;
}

} // namespace com::api
