#include "api/engine.hpp"

#include <chrono>

#include "api/program_cache.hpp"
#include "core/assembler.hpp"
#include "lang/compiler_com.hpp"
#include "lang/workloads.hpp"
#include "sim/logging.hpp"
#include "sim/strutil.hpp"

namespace com::api {

namespace {

using WarmClock = std::chrono::steady_clock;

/** Engine-independent rendering of a result word. */
std::string
describeResult(const mem::Word &w)
{
    if (w.isInt())
        return sim::format("%d", w.asInt());
    if (w.isFloat())
        return sim::format("%g", static_cast<double>(w.asFloat()));
    if (w.isPointer())
        return "<object>";
    if (w.isAtom())
        return sim::format("#atom%u", w.asAtom());
    return "<none>";
}

} // namespace

const char *
languageName(Language lang)
{
    switch (lang) {
      case Language::Smalltalk:
        return "smalltalk";
      case Language::ComAssembly:
        return "com-asm";
      case Language::Fith:
        return "fith";
    }
    return "?";
}

ProgramSpec
ProgramSpec::smalltalk(std::string name, std::string source)
{
    ProgramSpec s;
    s.language = Language::Smalltalk;
    s.name = std::move(name);
    s.source = std::move(source);
    return s;
}

ProgramSpec
ProgramSpec::comAssembly(std::string name, std::string source)
{
    ProgramSpec s;
    s.language = Language::ComAssembly;
    s.name = std::move(name);
    s.source = std::move(source);
    return s;
}

ProgramSpec
ProgramSpec::fith(std::string name, std::string source)
{
    ProgramSpec s;
    s.language = Language::Fith;
    s.name = std::move(name);
    s.source = std::move(source);
    return s;
}

ProgramSpec
ProgramSpec::workload(const std::string &name)
{
    const lang::Workload &w = lang::workload(name);
    ProgramSpec s = smalltalk(w.name, w.source);
    s.hasExpected = true;
    s.expected = w.expected;
    return s;
}

bool
RunOutcome::matches(const ProgramSpec &spec) const
{
    if (!ok)
        return false;
    if (!spec.hasExpected)
        return true;
    return result.isInt() && result.asInt() == spec.expected;
}

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Com:
        return "com";
      case EngineKind::Stack:
        return "stack";
      case EngineKind::Fith:
        return "fith";
    }
    return "?";
}

bool
parseEngineKind(const std::string &name, EngineKind &out)
{
    if (name == "com")
        out = EngineKind::Com;
    else if (name == "stack")
        out = EngineKind::Stack;
    else if (name == "fith")
        out = EngineKind::Fith;
    else
        return false;
    return true;
}

std::unique_ptr<Engine>
makeEngine(EngineKind kind, const core::MachineConfig &cfg,
           std::shared_ptr<ProgramCache> cache)
{
    std::unique_ptr<Engine> engine;
    switch (kind) {
      case EngineKind::Com:
        engine = std::make_unique<ComEngine>(cfg);
        break;
      case EngineKind::Stack:
        engine = std::make_unique<StackEngine>();
        break;
      case EngineKind::Fith:
        engine = std::make_unique<FithEngine>();
        break;
      default:
        sim::panic("unknown engine kind");
    }
    if (cache)
        engine->setProgramCache(std::move(cache));
    return engine;
}

// ----------------------------------------------------------------------
// ComEngine
// ----------------------------------------------------------------------

ComEngine::ComEngine(const core::MachineConfig &cfg) : machine_(cfg)
{
    machine_.installStandardLibrary();
}

bool
ComEngine::supports(Language lang) const
{
    return lang == Language::Smalltalk || lang == Language::ComAssembly;
}

std::uint64_t
ComEngine::entryFor(const ProgramSpec &spec)
{
    LruMemo<std::uint64_t> &table =
        spec.language == Language::Smalltalk ? smalltalkEntries_
                                             : asmEntries_;
    if (std::uint64_t *memo = table.find(spec.source))
        return *memo;

    // The flag drops *before* compiling so a throwing compile leaves
    // a half-filled machine correctly marked dirty.
    pristine_ = false;

    std::uint64_t entry = 0;
    if (spec.language == Language::Smalltalk) {
        lang::ComCompiler cc(machine_);
        entry = cc.compileSource(spec.source).entryVaddr;
    } else {
        core::Assembler as(machine_);
        entry = machine_.makeMethodObject(as.assemble(spec.source));
    }
    table.insert(spec.source, entry);
    return entry;
}

RunOutcome
ComEngine::run(const ProgramSpec &spec, std::uint64_t max_ops)
{
    RunOutcome out;
    out.engine = name();
    out.program = spec.name;
    if (!supports(spec.language)) {
        out.error = std::string("com engine cannot run ") +
                    languageName(spec.language) + " programs";
        return out;
    }

    if (max_ops == kEngineDefaultMaxOps)
        max_ops = kDefaultMaxOps;
    try {
        // The shared cache applies only from the pristine state (see
        // the pristine_ doc), and replay is only sound for runs whose
        // inputs are entirely the source text: a call with arguments
        // (or a different operation budget) executes normally.
        bool replayable =
            cache_ != nullptr && pristine_ && spec.args.empty();
        if (replayable) {
            auto hit = cache_->findCom(spec.language, spec.source);
            if (hit && hit->maxOps == max_ops) {
                // Deterministic machine + identical program => the
                // recorded first run *is* this run. Restoring its
                // post-run image leaves the machine bit-identical to
                // one that compiled and executed the program here.
                auto t0 = WarmClock::now();
                machine_.restoreImage(*hit->image);
                pristine_ = false;
                LruMemo<std::uint64_t> &table =
                    spec.language == Language::Smalltalk
                        ? smalltalkEntries_
                        : asmEntries_;
                table.insert(spec.source, hit->entryVaddr);
                auto restore = WarmClock::now() - t0;
                cache_->noteWarmStart(restore);
                out = hit->outcome;
                out.engine = name();
                out.program = spec.name;
                out.warmRestoreSeconds =
                    std::chrono::duration<double>(restore).count();
                return out;
            }
        }
        std::uint64_t entry = entryFor(spec);
        machine_.clearOutput();
        core::RunResult r = machine_.call(
            entry, machine_.constants().nilWord(), spec.args, max_ops);
        out.ok = r.finished;
        if (!r.finished)
            out.error = r.message;
        out.operations = r.instructions;
        out.cycles = r.cycles;
        out.result = machine_.lastResult();
        out.resultText = machine_.describeWord(out.result);
        out.output = machine_.output();
        // Only clean, complete runs are worth replaying; a faulted or
        // budget-capped run recompiles (and re-faults) every time.
        if (replayable && out.ok)
            cache_->insertCom(
                spec.language, spec.source,
                ProgramCache::ComEntry{machine_.captureImage(), entry,
                                       out, max_ops});
    } catch (const sim::FatalError &e) {
        // Malformed program (compile error, bad config): report it as
        // a failed outcome instead of unwinding a serving thread. The
        // machine may hold a half-compiled program now; sessions reset
        // on checkin, and direct users see ok=false.
        out.ok = false;
        out.error = e.what();
    }
    return out;
}

void
ComEngine::reset()
{
    machine_.reset();
    machine_.installStandardLibrary();
    smalltalkEntries_.clear();
    asmEntries_.clear();
    pristine_ = true;
}

void
ComEngine::setProgramCache(std::shared_ptr<ProgramCache> cache)
{
    cache_ = std::move(cache);
}

std::uint64_t
ComEngine::memoEvictions() const
{
    return smalltalkEntries_.evictions() + asmEntries_.evictions();
}

// ----------------------------------------------------------------------
// StackEngine
// ----------------------------------------------------------------------

StackEngine::StackEngine() : vm_(std::make_unique<lang::StackVm>()) {}

bool
StackEngine::supports(Language lang) const
{
    return lang == Language::Smalltalk;
}

RunOutcome
StackEngine::run(const ProgramSpec &spec, std::uint64_t max_ops)
{
    RunOutcome out;
    out.engine = name();
    out.program = spec.name;
    if (!supports(spec.language)) {
        out.error = std::string("stack engine cannot run ") +
                    languageName(spec.language) + " programs";
        return out;
    }

    if (max_ops == kEngineDefaultMaxOps)
        max_ops = kDefaultMaxOps;
    try {
        lang::StackCompiled *compiled = entries_.find(spec.source);
        if (compiled == nullptr) {
            bool wasPristine = pristine_;
            pristine_ = false;
            std::shared_ptr<const ProgramCache::StackEntry> hit;
            if (cache_ && wasPristine &&
                (hit = cache_->findStack(spec.source))) {
                // Warm start: the StackVm is a value type, so the
                // post-compile image restores by plain assignment.
                auto t0 = WarmClock::now();
                *vm_ = *hit->vmImage;
                auto restore = WarmClock::now() - t0;
                cache_->noteWarmStart(restore);
                out.warmRestoreSeconds =
                    std::chrono::duration<double>(restore).count();
                compiled = &entries_.insert(spec.source, hit->compiled);
            } else {
                lang::StackCompiler sc(*vm_);
                lang::StackCompiled c = sc.compileSource(spec.source);
                if (cache_ && wasPristine)
                    cache_->insertStack(
                        spec.source,
                        ProgramCache::StackEntry{
                            c, std::make_shared<const lang::StackVm>(
                                   *vm_)});
                compiled = &entries_.insert(spec.source, std::move(c));
            }
        }

        vm_->clearOutput();
        lang::SResult r = vm_->run(compiled->entry, max_ops);
        out.ok = r.ok;
        if (!r.ok)
            out.error = r.error;
        out.operations = r.bytecodes;
        out.cycles = r.cycles;
        out.result = r.result;
        out.resultText = describeResult(out.result);
        out.output = vm_->output();
    } catch (const sim::FatalError &e) {
        out.ok = false;
        out.error = e.what();
    }
    return out;
}

void
StackEngine::reset()
{
    vm_ = std::make_unique<lang::StackVm>();
    entries_.clear();
    pristine_ = true;
}

void
StackEngine::setProgramCache(std::shared_ptr<ProgramCache> cache)
{
    cache_ = std::move(cache);
}

std::uint64_t
StackEngine::memoEvictions() const
{
    return entries_.evictions();
}

// ----------------------------------------------------------------------
// FithEngine
// ----------------------------------------------------------------------

FithEngine::FithEngine()
    : machine_(std::make_unique<fith::FithMachine>())
{
}

bool
FithEngine::supports(Language lang) const
{
    return lang == Language::Fith;
}

RunOutcome
FithEngine::run(const ProgramSpec &spec, std::uint64_t max_ops)
{
    RunOutcome out;
    out.engine = name();
    out.program = spec.name;
    if (!supports(spec.language)) {
        out.error = std::string("fith engine cannot run ") +
                    languageName(spec.language) + " programs";
        return out;
    }

    if (max_ops == kEngineDefaultMaxOps)
        max_ops = kDefaultMaxFithSteps;
    try {
        machine_ = std::make_unique<fith::FithMachine>();
        machine_->setTracing(tracing_);
        fith::FithResult r;
        std::shared_ptr<const ProgramCache::FithEntry> hit;
        if (cache_ && (hit = cache_->findFith(spec.source))) {
            // The machine is always fresh here, so a cached compile
            // restores directly (token ids are deterministic).
            auto t0 = WarmClock::now();
            machine_->restoreCompiled(*hit->compiled);
            auto restore = WarmClock::now() - t0;
            cache_->noteWarmStart(restore);
            out.warmRestoreSeconds =
                std::chrono::duration<double>(restore).count();
            r = machine_->runCompiled(hit->compiled->immediateStarts,
                                      max_ops);
        } else if (cache_) {
            std::vector<std::uint32_t> starts =
                machine_->compileSource(spec.source);
            cache_->insertFith(
                spec.source,
                ProgramCache::FithEntry{
                    std::make_shared<const fith::FithMachine::
                                         CompiledState>(
                        machine_->captureCompiled(starts))});
            r = machine_->runCompiled(starts, max_ops);
        } else {
            r = machine_->run(spec.source, max_ops);
        }
        out.ok = r.ok;
        if (!r.ok)
            out.error = r.error;
        out.operations = r.steps;
        out.output = machine_->output();
        if (!machine_->stack().empty())
            out.result = machine_->stack().back();
        out.resultText = describeResult(out.result);
    } catch (const sim::FatalError &e) {
        out.ok = false;
        out.error = e.what();
    }
    return out;
}

void
FithEngine::reset()
{
    machine_ = std::make_unique<fith::FithMachine>();
}

void
FithEngine::setProgramCache(std::shared_ptr<ProgramCache> cache)
{
    cache_ = std::move(cache);
}

} // namespace com::api
