#include "api/engine.hpp"

#include "core/assembler.hpp"
#include "lang/compiler_com.hpp"
#include "lang/workloads.hpp"
#include "sim/logging.hpp"
#include "sim/strutil.hpp"

namespace com::api {

namespace {

/** Engine-independent rendering of a result word. */
std::string
describeResult(const mem::Word &w)
{
    if (w.isInt())
        return sim::format("%d", w.asInt());
    if (w.isFloat())
        return sim::format("%g", static_cast<double>(w.asFloat()));
    if (w.isPointer())
        return "<object>";
    if (w.isAtom())
        return sim::format("#atom%u", w.asAtom());
    return "<none>";
}

} // namespace

const char *
languageName(Language lang)
{
    switch (lang) {
      case Language::Smalltalk:
        return "smalltalk";
      case Language::ComAssembly:
        return "com-asm";
      case Language::Fith:
        return "fith";
    }
    return "?";
}

ProgramSpec
ProgramSpec::smalltalk(std::string name, std::string source)
{
    ProgramSpec s;
    s.language = Language::Smalltalk;
    s.name = std::move(name);
    s.source = std::move(source);
    return s;
}

ProgramSpec
ProgramSpec::comAssembly(std::string name, std::string source)
{
    ProgramSpec s;
    s.language = Language::ComAssembly;
    s.name = std::move(name);
    s.source = std::move(source);
    return s;
}

ProgramSpec
ProgramSpec::fith(std::string name, std::string source)
{
    ProgramSpec s;
    s.language = Language::Fith;
    s.name = std::move(name);
    s.source = std::move(source);
    return s;
}

ProgramSpec
ProgramSpec::workload(const std::string &name)
{
    const lang::Workload &w = lang::workload(name);
    ProgramSpec s = smalltalk(w.name, w.source);
    s.hasExpected = true;
    s.expected = w.expected;
    return s;
}

bool
RunOutcome::matches(const ProgramSpec &spec) const
{
    if (!ok)
        return false;
    if (!spec.hasExpected)
        return true;
    return result.isInt() && result.asInt() == spec.expected;
}

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Com:
        return "com";
      case EngineKind::Stack:
        return "stack";
      case EngineKind::Fith:
        return "fith";
    }
    return "?";
}

bool
parseEngineKind(const std::string &name, EngineKind &out)
{
    if (name == "com")
        out = EngineKind::Com;
    else if (name == "stack")
        out = EngineKind::Stack;
    else if (name == "fith")
        out = EngineKind::Fith;
    else
        return false;
    return true;
}

std::unique_ptr<Engine>
makeEngine(EngineKind kind, const core::MachineConfig &cfg)
{
    switch (kind) {
      case EngineKind::Com:
        return std::make_unique<ComEngine>(cfg);
      case EngineKind::Stack:
        return std::make_unique<StackEngine>();
      case EngineKind::Fith:
        return std::make_unique<FithEngine>();
    }
    sim::panic("unknown engine kind");
}

// ----------------------------------------------------------------------
// ComEngine
// ----------------------------------------------------------------------

ComEngine::ComEngine(const core::MachineConfig &cfg) : machine_(cfg)
{
    machine_.installStandardLibrary();
}

bool
ComEngine::supports(Language lang) const
{
    return lang == Language::Smalltalk || lang == Language::ComAssembly;
}

std::uint64_t
ComEngine::entryFor(const ProgramSpec &spec)
{
    std::unordered_map<std::string, std::uint64_t> &table =
        spec.language == Language::Smalltalk ? smalltalkEntries_
                                             : asmEntries_;
    auto it = table.find(spec.source);
    if (it != table.end())
        return it->second;

    std::uint64_t entry = 0;
    if (spec.language == Language::Smalltalk) {
        lang::ComCompiler cc(machine_);
        entry = cc.compileSource(spec.source).entryVaddr;
    } else {
        core::Assembler as(machine_);
        entry = machine_.makeMethodObject(as.assemble(spec.source));
    }
    table.emplace(spec.source, entry);
    return entry;
}

RunOutcome
ComEngine::run(const ProgramSpec &spec, std::uint64_t max_ops)
{
    RunOutcome out;
    out.engine = name();
    out.program = spec.name;
    if (!supports(spec.language)) {
        out.error = std::string("com engine cannot run ") +
                    languageName(spec.language) + " programs";
        return out;
    }

    if (max_ops == kEngineDefaultMaxOps)
        max_ops = kDefaultMaxOps;
    try {
        std::uint64_t entry = entryFor(spec);
        machine_.clearOutput();
        core::RunResult r = machine_.call(
            entry, machine_.constants().nilWord(), spec.args, max_ops);
        out.ok = r.finished;
        if (!r.finished)
            out.error = r.message;
        out.operations = r.instructions;
        out.cycles = r.cycles;
        out.result = machine_.lastResult();
        out.resultText = machine_.describeWord(out.result);
        out.output = machine_.output();
    } catch (const sim::FatalError &e) {
        // Malformed program (compile error, bad config): report it as
        // a failed outcome instead of unwinding a serving thread. The
        // machine may hold a half-compiled program now; sessions reset
        // on checkin, and direct users see ok=false.
        out.ok = false;
        out.error = e.what();
    }
    return out;
}

void
ComEngine::reset()
{
    machine_.reset();
    machine_.installStandardLibrary();
    smalltalkEntries_.clear();
    asmEntries_.clear();
}

// ----------------------------------------------------------------------
// StackEngine
// ----------------------------------------------------------------------

StackEngine::StackEngine() : vm_(std::make_unique<lang::StackVm>()) {}

bool
StackEngine::supports(Language lang) const
{
    return lang == Language::Smalltalk;
}

RunOutcome
StackEngine::run(const ProgramSpec &spec, std::uint64_t max_ops)
{
    RunOutcome out;
    out.engine = name();
    out.program = spec.name;
    if (!supports(spec.language)) {
        out.error = std::string("stack engine cannot run ") +
                    languageName(spec.language) + " programs";
        return out;
    }

    if (max_ops == kEngineDefaultMaxOps)
        max_ops = kDefaultMaxOps;
    try {
        auto it = entries_.find(spec.source);
        if (it == entries_.end()) {
            lang::StackCompiler sc(*vm_);
            it = entries_
                     .emplace(spec.source, sc.compileSource(spec.source))
                     .first;
        }

        vm_->clearOutput();
        lang::SResult r = vm_->run(it->second.entry, max_ops);
        out.ok = r.ok;
        if (!r.ok)
            out.error = r.error;
        out.operations = r.bytecodes;
        out.cycles = r.cycles;
        out.result = r.result;
        out.resultText = describeResult(out.result);
        out.output = vm_->output();
    } catch (const sim::FatalError &e) {
        out.ok = false;
        out.error = e.what();
    }
    return out;
}

void
StackEngine::reset()
{
    vm_ = std::make_unique<lang::StackVm>();
    entries_.clear();
}

// ----------------------------------------------------------------------
// FithEngine
// ----------------------------------------------------------------------

FithEngine::FithEngine()
    : machine_(std::make_unique<fith::FithMachine>())
{
}

bool
FithEngine::supports(Language lang) const
{
    return lang == Language::Fith;
}

RunOutcome
FithEngine::run(const ProgramSpec &spec, std::uint64_t max_ops)
{
    RunOutcome out;
    out.engine = name();
    out.program = spec.name;
    if (!supports(spec.language)) {
        out.error = std::string("fith engine cannot run ") +
                    languageName(spec.language) + " programs";
        return out;
    }

    if (max_ops == kEngineDefaultMaxOps)
        max_ops = kDefaultMaxFithSteps;
    try {
        machine_ = std::make_unique<fith::FithMachine>();
        machine_->setTracing(tracing_);
        fith::FithResult r = machine_->run(spec.source, max_ops);
        out.ok = r.ok;
        if (!r.ok)
            out.error = r.error;
        out.operations = r.steps;
        out.output = machine_->output();
        if (!machine_->stack().empty())
            out.result = machine_->stack().back();
        out.resultText = describeResult(out.result);
    } catch (const sim::FatalError &e) {
        out.ok = false;
        out.error = e.what();
    }
    return out;
}

void
FithEngine::reset()
{
    machine_ = std::make_unique<fith::FithMachine>();
}

} // namespace com::api
